(* VM-level unit tests: scheduler determinism, spawn pairing keys,
   counter segments across calls, fuel, and OS error paths. *)

module Machine = Ldx_vm.Machine
module Driver = Ldx_vm.Driver
module Os = Ldx_osim.Os
module Sval = Ldx_osim.Sval
module World = Ldx_osim.World

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let threaded_src =
  {| fn worker(ctx) {
       let shared = ctx[0];
       let wid = ctx[1];
       for (let k = 0; k < 5; k = k + 1) {
         let v = shared[0];
         yield();
         shared[0] = v + wid;
       }
       return wid;
     }
     fn main() {
       let shared = mkarray(1, 0);
       let c1 = mkarray(2, 0); c1[0] = shared; c1[1] = 1;
       let c2 = mkarray(2, 0); c2[0] = shared; c2[1] = 100;
       let t1 = spawn(@worker, c1);
       let t2 = spawn(@worker, c2);
       join(t1); join(t2);
       print(itoa(shared[0]));
     } |}

let run_seed seed =
  (Driver.run_source ~seed threaded_src World.empty).Driver.stdout

let test_scheduler_deterministic_per_seed () =
  List.iter
    (fun seed ->
       check string
         (Printf.sprintf "seed %d reproducible" seed)
         (run_seed seed) (run_seed seed))
    [ 0; 1; 2; 17; 99 ]

let test_scheduler_seed_sensitivity () =
  (* the deliberate lost-update race means SOME seed pair must differ *)
  let outs = List.map run_seed [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let distinct = List.sort_uniq compare outs in
  check bool "race visible across seeds" true (List.length distinct > 1)

let test_spawn_indices_sequential () =
  let prog =
    Ldx_cfg.Lower.lower_source
      {| fn w(x) { return x; }
         fn main() {
           let a = spawn(@w, 1);
           let b = spawn(@w, 2);
           join(a); join(b);
         } |}
  in
  let o = Driver.run prog World.empty in
  let idxs =
    List.map
      (fun (th : Machine.thread) -> th.Machine.spawn_index)
      o.Driver.machine.Machine.threads
  in
  check (Alcotest.list int) "pairing keys" [ 0; 1; 2 ] idxs

let test_counter_segments_restore () =
  (* after returning from an indirect call the outer counter resumes
     from its saved value plus the fixed +1 *)
  let o =
    Driver.run_source ~instrument:true ~record_trace:true
      {| fn callee() { print("in1"); print("in2"); print("in3"); return 0; }
         fn main() {
           print("a");
           let f = @callee;
           let x = f();
           print("b");
         } |}
      World.empty
  in
  let counters = List.map (fun t -> t.Driver.counter) o.Driver.trace in
  (* a=1; fresh segment: 1,2,3; back outside: saved 1 + 1 (call) + 1 = 3 *)
  check (Alcotest.list int) "segment save/restore" [ 1; 1; 2; 3; 3 ] counters

let test_os_bad_fd_paths () =
  let os = Os.create World.empty in
  check (Alcotest.testable (Fmt.of_to_string Sval.to_string) Sval.equal)
    "read bad fd" (Sval.S "")
    (Os.exec os "read" [ Sval.I 42; Sval.I 4 ]);
  check int "write bad fd" (-1)
    (Sval.int_exn (Os.exec os "write" [ Sval.I 42; Sval.S "x" ]));
  check int "seek bad fd" (-1)
    (Sval.int_exn (Os.exec os "seek" [ Sval.I 42; Sval.I 0 ]));
  check bool "bad args raise" true
    (match Os.exec os "open" [ Sval.I 3 ] with
     | exception Os.Os_error _ -> true
     | _ -> false)

let test_os_dir_errors () =
  let os = Os.create World.empty in
  check int "mkdir under missing parent" (-1)
    (Sval.int_exn (Os.exec os "mkdir" [ Sval.S "/a/b" ]));
  check int "unlink missing" (-1)
    (Sval.int_exn (Os.exec os "unlink" [ Sval.S "/nope" ]));
  check int "rename missing" (-1)
    (Sval.int_exn (Os.exec os "rename" [ Sval.S "/a"; Sval.S "/b" ]));
  check int "stat missing" (-1)
    (Sval.int_exn (Os.exec os "stat" [ Sval.S "/nope" ]))

let test_resource_keys () =
  let os = Os.create World.(empty |> with_file "/f" "x") in
  let fd = Sval.int_exn (Os.exec os "open" [ Sval.S "/f" ]) in
  check (Alcotest.list Alcotest.string) "read resolves fd"
    [ "path:/f" ]
    (Os.resource_of_syscall os "read" [ Sval.I fd; Sval.I 4 ]);
  check (Alcotest.list Alcotest.string) "creat includes parent"
    [ "path:/d/new"; "path:/d" ]
    (Os.resource_of_syscall os "creat" [ Sval.S "/d/new" ]);
  check (Alcotest.list Alcotest.string) "open is entry-only"
    [ "path:/f" ]
    (Os.resource_of_syscall os "open" [ Sval.S "/f" ])

let test_fuel_budget_respected () =
  let o =
    Driver.run_source ~max_steps:500
      {| fn main() { let i = 0; while (i >= 0) { i = i + 1; } } |}
      World.empty
  in
  check bool "fuel trap" true (o.Driver.trap <> None);
  check bool "stopped promptly" true (o.Driver.steps <= 600)

(* Regression: a scheduler that names a spawn index with no runnable
   thread behind it must trap cleanly ("scheduler pick: ..."), not
   escape as Not_found from the runnable-set lookup (the pre-fix
   behavior).  Scheduler.Pinned is the hostile policy built for exactly
   this: it never checks runnability. *)
let test_hostile_scheduler_traps () =
  (* pinned to a spawn index that never exists *)
  let sched = Machine.Sched.(instantiate (spec (Pinned 5))) in
  let o =
    Driver.run_source ~sched
      {| fn main() { print("hi"); } |}
      World.empty
  in
  (match o.Driver.trap with
   | Some msg ->
     check bool "names the bad index"
       true
       (msg = "scheduler pick: no thread with spawn index 5")
   | None -> Alcotest.fail "expected a trap, got none");
  (* pinned to a real thread that stops being runnable: main blocks on
     join while the worker still runs *)
  let sched = Machine.Sched.(instantiate (spec (Pinned 0))) in
  let o =
    Driver.run_source ~sched
      {| fn w(x) { for (let k = 0; k < 50; k = k + 1) { yield(); } return x; }
         fn main() { let t = spawn(@w, 1); join(t); } |}
      World.empty
  in
  (match o.Driver.trap with
   | Some msg ->
     check string "names the blocked thread"
       "scheduler pick: thread 0 is not runnable" msg
   | None -> Alcotest.fail "expected a trap, got none")

(* Regression: the fuel check used [>], so an execution got max_steps+1
   steps before trapping.  Pin the exact count: an infinite loop under
   a budget of 100 must execute exactly 100 steps, in both steppers. *)
let test_fuel_exact_step_count () =
  List.iter
    (fun vm ->
       let o =
         Driver.run_source ~max_steps:100 ~vm
           {| fn main() { let i = 0; while (i >= 0) { i = i + 1; } } |}
           World.empty
       in
       check (Alcotest.option string) "fuel trap" (Some "fuel exhausted")
         o.Driver.trap;
       check int "exactly max_steps steps" 100 o.Driver.steps)
    [ Machine.Tree; Machine.Flat ]

let tests =
  [ Alcotest.test_case "scheduler deterministic per seed" `Quick
      test_scheduler_deterministic_per_seed;
    Alcotest.test_case "scheduler seed sensitivity" `Quick
      test_scheduler_seed_sensitivity;
    Alcotest.test_case "spawn indices sequential" `Quick
      test_spawn_indices_sequential;
    Alcotest.test_case "counter segments restore" `Quick
      test_counter_segments_restore;
    Alcotest.test_case "os bad fd paths" `Quick test_os_bad_fd_paths;
    Alcotest.test_case "os dir errors" `Quick test_os_dir_errors;
    Alcotest.test_case "resource keys" `Quick test_resource_keys;
    Alcotest.test_case "fuel budget respected" `Quick test_fuel_budget_respected;
    Alcotest.test_case "hostile scheduler pick traps cleanly" `Quick
      test_hostile_scheduler_traps;
    Alcotest.test_case "fuel exhausts at exactly max_steps" `Quick
      test_fuel_exact_step_count ]
