(* lib/sched: deterministic scheduling, recording/replay, bounded
   exploration — plus the engine/campaign wiring and the pinned
   per-workload syscall counts the scheduler must not shift. *)

module Sched = Ldx_sched.Scheduler
module Schedule = Ldx_sched.Schedule
module Explore = Ldx_sched.Explore
module Engine = Ldx_core.Engine
module Sched_sweep = Ldx_core.Sched_sweep
module Campaign = Ldx_core.Campaign
module Mutation = Ldx_core.Mutation
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry
module Fault = Ldx_osim.Fault
module Sval = Ldx_osim.Sval
module World = Ldx_osim.World
module Driver = Ldx_vm.Driver
module Lower = Ldx_cfg.Lower
module Counter = Ldx_instrument.Counter
module Obs = Ldx_obs
module Gen_minic = Ldx_genprog.Gen_minic

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Schedule log: serialization and cursors.                            *)

let sched_of_list l =
  Array.of_list
    (List.map (fun (t, q) -> { Schedule.s_thread = t; s_quantum = q }) l)

let test_schedule_roundtrip () =
  let s = sched_of_list [ (0, 8); (1, 12); (0, 9); (2, 31) ] in
  (match Schedule.of_string (Schedule.to_string s) with
   | Ok s' -> check bool "roundtrip" true (s = s')
   | Error e -> Alcotest.failf "roundtrip failed: %s" e);
  (match Schedule.of_string "bogus\n0 8\n" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "accepted a bad header");
  match Schedule.of_string "# ldx-sched/1\n0 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a non-positive quantum"

let test_cursor_clone () =
  let s = sched_of_list [ (0, 8); (1, 12); (0, 9) ] in
  let c = Schedule.start s in
  ignore (Schedule.next c);
  let c' = Schedule.copy_cursor c in
  (* the clone continues where the original was... *)
  (match Schedule.next c' with
   | Some e -> check int "clone resumes at entry 1" 1 e.Schedule.s_thread
   | None -> Alcotest.fail "clone exhausted early");
  ignore (Schedule.next c');
  check bool "clone exhausted" true (Schedule.exhausted c');
  (* ...without advancing the original (independent counters, the
     Fault.copy_state discipline) *)
  check int "original unmoved by the clone" 1 (Schedule.pos c);
  match Schedule.next c with
  | Some e -> check int "original still at entry 1" 1 e.Schedule.s_thread
  | None -> Alcotest.fail "original exhausted early"

(* ------------------------------------------------------------------ *)
(* Scheduler policies (unit level).                                    *)

let picks st runnable n =
  Array.init n (fun i ->
      (Sched.pick st ~runnable ~steps:(i * 100)).Sched.d_chosen)

let test_legacy_quantum_formula () =
  check int "quantum formula kept bit-for-bit"
    (8 + ((7 lxor (500 * 2654435761)) land 31))
    (Sched.legacy_quantum ~seed:7 ~steps:500)

let test_round_robin_policy () =
  let st = Sched.instantiate (Sched.legacy ~seed:0) in
  check bool "rr cycles the runnable set in order" true
    (picks st [| 3; 5; 9 |] 6 = [| 3; 5; 9; 3; 5; 9 |])

let test_random_policy_reproducible () =
  let spec = Sched.spec ~seed:42 Sched.Random in
  let a = picks (Sched.instantiate spec) [| 0; 1; 2 |] 64 in
  let b = picks (Sched.instantiate spec) [| 0; 1; 2 |] 64 in
  check bool "same spec, same decisions" true (a = b);
  check bool "every pick is runnable" true
    (Array.for_all (fun t -> t >= 0 && t <= 2) a);
  let c = picks (Sched.instantiate (Sched.spec ~seed:43 Sched.Random)) [| 0; 1; 2 |] 64 in
  check bool "another seed diverges somewhere" true (a <> c)

let test_priority_policy () =
  let st = Sched.instantiate (Sched.spec (Sched.Priority [ (1, 5) ])) in
  check bool "highest priority always runs" true
    (picks st [| 0; 1; 2 |] 4 = [| 1; 1; 1; 1 |]);
  (* among equals (unlisted = priority 0), round-robin *)
  let st = Sched.instantiate (Sched.spec (Sched.Priority [ (9, -1) ])) in
  check bool "round-robin among priority ties" true
    (picks st [| 0; 2; 9 |] 4 = [| 0; 2; 0; 2 |])

let test_forced_overrides () =
  let st =
    Sched.instantiate ~record:true
      (Sched.spec (Sched.Forced [ (1, 2); (3, 2) ]))
  in
  check bool "forced decisions override the rr base" true
    (picks st [| 0; 1; 2 |] 5 = [| 0; 2; 2; 2; 1 |]);
  check bool "forcing away from a runnable thread counts as preemption"
    true
    (Sched.preemptions st > 0)

let test_quantum_override () =
  let st = Sched.instantiate ~record:true (Sched.spec ~quantum:5 Sched.Random) in
  ignore (picks st [| 0; 1 |] 8);
  check bool "fixed quantum honoured" true
    (Array.for_all (fun d -> d.Sched.d_quantum = 5) (Sched.trace st))

let test_state_copy_mid_stream () =
  let spec = Sched.spec ~seed:3 Sched.Random in
  let st = Sched.instantiate spec in
  ignore (picks st [| 0; 1; 2 |] 10);
  let st' = Sched.copy st in
  check bool "clone continues the decision stream exactly" true
    (picks st [| 0; 1; 2 |] 20 = picks st' [| 0; 1; 2 |] 20)

let test_policy_parsing () =
  (match Sched.policy_of_string "rr" with
   | Ok Sched.Round_robin -> ()
   | _ -> Alcotest.fail "rr");
  (match Sched.policy_of_string "random" with
   | Ok Sched.Random -> ()
   | _ -> Alcotest.fail "random");
  (match Sched.policy_of_string "prio:1=5,2=-3" with
   | Ok (Sched.Priority [ (1, 5); (2, -3) ]) -> ()
   | _ -> Alcotest.fail "prio");
  match Sched.policy_of_string "quantum-leap" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown policy"

(* ------------------------------------------------------------------ *)
(* VM integration: the pluggable scheduler is bit-identical to the     *)
(* historical hard-wired one, and recorded schedules replay exactly.   *)

let pbzip2 = Registry.find_exn "Pbzip2"

let test_legacy_bit_identical () =
  let prog = Workload.lower pbzip2 in
  let base = Driver.run ~seed:0 prog pbzip2.Workload.world in
  let explicit =
    Driver.run ~sched:(Sched.instantiate (Sched.legacy ~seed:0)) prog
      pbzip2.Workload.world
  in
  check int "same syscalls" base.Driver.syscalls explicit.Driver.syscalls;
  check int "same cycles" base.Driver.cycles explicit.Driver.cycles;
  check string "same stdout" base.Driver.stdout explicit.Driver.stdout

let summaries_equal (a : Engine.exec_summary) (b : Engine.exec_summary) =
  a.Engine.cycles = b.Engine.cycles
  && a.Engine.steps = b.Engine.steps
  && a.Engine.syscalls = b.Engine.syscalls
  && a.Engine.stdout = b.Engine.stdout

let test_record_replay_identical () =
  let prog, _ = Workload.instrumented pbzip2 in
  let config =
    { (Workload.leak_config pbzip2) with Engine.record_sched = true }
  in
  let r = Engine.run ~config prog pbzip2.Workload.world in
  let schedule =
    match r.Engine.master_schedule with
    | Some s -> s
    | None -> Alcotest.fail "record_sched produced no schedule"
  in
  check bool "a threaded run makes many decisions" true
    (Array.length schedule > 4);
  (* replay the recorded master schedule on both sides: the run must
     reproduce byte-for-byte *)
  let spec = Sched.spec (Sched.Replay schedule) in
  let config' =
    { config with
      Engine.master_sched = Some spec;
      slave_sched = Some spec }
  in
  let r' = Engine.run ~config:config' prog pbzip2.Workload.world in
  check bool "replayed master identical" true
    (summaries_equal r.Engine.master r'.Engine.master);
  check bool "replayed verdict identical" true
    (r.Engine.leak = r'.Engine.leak
     && List.length r.Engine.reports = List.length r'.Engine.reports);
  (* and the schedule survives a serialization roundtrip *)
  match Schedule.of_string (Schedule.to_string schedule) with
  | Ok s -> check bool "schedule text roundtrip" true (s = schedule)
  | Error e -> Alcotest.failf "schedule parse: %s" e

(* The ISSUE-pinned asymmetric per-workload syscall counts: alignment
   accounting changes must not silently shift these. *)
let test_pinned_syscall_counts () =
  List.iter
    (fun (name, master, slave) ->
       let w = Registry.find_exn name in
       let prog, _ = Workload.instrumented w in
       let r = Engine.run ~config:(Workload.leak_config w) prog w.Workload.world in
       check int (name ^ " master syscalls") master r.Engine.master.Engine.syscalls;
       check int (name ^ " slave syscalls") slave r.Engine.slave.Engine.syscalls)
    [ ("403.gcc", 78, 74); ("429.mcf", 51, 62); ("Ngircd", 8, 7) ]

(* ------------------------------------------------------------------ *)
(* Bounded exploration.                                                *)

let table4 = Registry.concurrency

let signatures (t : Sched_sweep.t) =
  List.map (fun v -> v.Sched_sweep.v_signature) t.Sched_sweep.verdicts

let test_explore_distinct_and_deterministic () =
  let prog, _ = Workload.instrumented pbzip2 in
  let config = Workload.leak_config pbzip2 in
  let sweep () =
    Sched_sweep.explore ~bound:2 ~max_schedules:16 ~config prog
      pbzip2.Workload.world
  in
  let t = sweep () in
  check bool "explores >= 10 distinct schedules" true (t.Sched_sweep.schedules >= 10);
  let sigs = signatures t in
  check int "signatures are pairwise distinct"
    (List.length sigs)
    (List.length (List.sort_uniq compare sigs));
  (* base schedule first (breadth-first: 0 forced preemptions) *)
  (match t.Sched_sweep.verdicts with
   | v :: _ -> check bool "base schedule explored first" true (v.Sched_sweep.v_forced = [])
   | [] -> Alcotest.fail "empty sweep");
  check bool "exploration is deterministic" true (signatures (sweep ()) = sigs)

(* Zero sources: every explored schedule reports nothing — schedule
   noise alone never fabricates causality (the PR 4 fault invariant,
   lifted over interleavings). *)
let test_zero_source_clean_all_schedules () =
  List.iter
    (fun (w : Workload.t) ->
       let prog, _ = Workload.instrumented w in
       let t =
         Sched_sweep.explore ~bound:1 ~max_schedules:6
           ~config:(Workload.no_mutation_config w) prog w.Workload.world
       in
       check bool (w.Workload.name ^ " explored > 1 schedule") true
         (t.Sched_sweep.schedules > 1);
       check int (w.Workload.name ^ " zero leaks") 0 t.Sched_sweep.leaks;
       check string (w.Workload.name ^ " stable clean") "schedule-stable clean"
         (Sched_sweep.classification t))
    table4

(* Table 4: the injected leak is detected under EVERY explored
   schedule. *)
let test_leak_detected_all_schedules () =
  List.iter
    (fun (w : Workload.t) ->
       let prog, _ = Workload.instrumented w in
       let t =
         Sched_sweep.explore ~bound:1 ~max_schedules:6
           ~config:(Workload.leak_config w) prog w.Workload.world
       in
       check bool (w.Workload.name ^ " explored > 1 schedule") true
         (t.Sched_sweep.schedules > 1);
       check int (w.Workload.name ^ " leaks under every schedule")
         t.Sched_sweep.schedules t.Sched_sweep.leaks;
       check string (w.Workload.name ^ " stable leak") "schedule-stable leak"
         (Sched_sweep.classification t))
    table4

let test_render_mentions_classification () =
  let prog, _ = Workload.instrumented pbzip2 in
  let t =
    Sched_sweep.explore ~bound:1 ~max_schedules:4
      ~config:(Workload.leak_config pbzip2) prog pbzip2.Workload.world
  in
  let s = Sched_sweep.render t in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check bool "render carries the classification" true
    (contains s (Sched_sweep.classification t));
  check bool "render lists the base schedule" true (contains s "(base)")

(* ------------------------------------------------------------------ *)
(* Campaign wiring.                                                    *)

let test_campaign_of_scheds () =
  let prog, _ = Workload.instrumented pbzip2 in
  let config = Workload.leak_config pbzip2 in
  let params =
    Campaign.of_scheds config
      [ ("rr", Sched.legacy ~seed:0);
        ("random-1", Sched.spec ~seed:1 Sched.Random);
        ("random-2", Sched.spec ~seed:2 Sched.Random) ]
  in
  let outs = Campaign.run ~config prog pbzip2.Workload.world params in
  check int "one outcome per schedule" 3 (List.length outs);
  List.iter
    (fun (o : Campaign.outcome) ->
       match Campaign.result_of o.Campaign.status with
       | Some r ->
         check bool (o.Campaign.params.Campaign.label ^ " leak under its schedule")
           true r.Engine.leak
       | None -> Alcotest.failf "%s crashed" o.Campaign.params.Campaign.label)
    outs

(* [`Auto] on a tiny workload must choose the sequential path (the
   master pass is far below the domain break-even) and say so in the
   metrics — the BENCH 0.70x regression fix. *)
let test_campaign_auto_falls_back_sequential () =
  let prog, _ = Workload.instrumented pbzip2 in
  let config = Workload.leak_config pbzip2 in
  let params = Campaign.of_seeds config [ 1; 2; 3 ] in
  let rec_ = Obs.Recorder.create () in
  let outs =
    Campaign.run ~jobs:4 ~obs:(Obs.Recorder.sink rec_) ~config prog
      pbzip2.Workload.world params
  in
  check int "all tasks ran" 3 (List.length outs);
  let snap = Obs.Recorder.snapshot rec_ in
  check int "auto mode chose sequential" 1
    (Obs.Metrics.counter snap "campaign.mode.sequential");
  check int "task count recorded" 3 (Obs.Metrics.counter snap "campaign.tasks")

(* ------------------------------------------------------------------ *)
(* Property: with zero sources, ANY (schedule, fault-plan) pair yields
   zero reports — dual execution under a shared interleaving and a
   shared fault plan is self-identical. *)

let fault_plan seed =
  Fault.plan ~seed
    [ Fault.rule ~sys:"recv" ~nth:1 Fault.Drop_message;
      Fault.rule ~sys:"recv" (Fault.Short_read 1);
      Fault.rule ~sys:"read" Fault.Transient;
      Fault.rule ~sys:"time" (Fault.Clock_skew 997) ]

let conc_world =
  World.(empty |> with_endpoint "in" [ "7"; "21"; "3"; "9"; "1"; "14" ])

let prop_zero_source_any_schedule_and_faults ((p, seed, faulty) :
    Ldx_lang.Ast.program * int * bool) =
  let prog, _ = Counter.instrument (Lower.lower_program p) in
  let spec = Sched.spec ~seed Sched.Random in
  let config =
    { Engine.default_config with
      Engine.sources = [];
      master_sched = Some spec;
      slave_sched = Some spec;
      faults = (if faulty then Some (fault_plan seed) else None) }
  in
  let r = Engine.run ~config prog conc_world in
  r.Engine.reports = [] && not r.Engine.leak

let qcheck_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"P15 zero sources: any (schedule, faults) silent"
         ~count:60
         ~print:(fun (p, seed, faulty) ->
           Printf.sprintf "seed=%d faults=%b\n%s" seed faulty
             (Gen_minic.print_program p))
         QCheck2.Gen.(triple Gen_minic.gen_conc_program (int_bound 1000) bool)
         prop_zero_source_any_schedule_and_faults) ]

let tests =
  [ ("schedule text roundtrip", `Quick, test_schedule_roundtrip);
    ("schedule cursor clone", `Quick, test_cursor_clone);
    ("legacy quantum formula", `Quick, test_legacy_quantum_formula);
    ("round-robin policy", `Quick, test_round_robin_policy);
    ("random policy reproducible", `Quick, test_random_policy_reproducible);
    ("priority policy", `Quick, test_priority_policy);
    ("forced overrides", `Quick, test_forced_overrides);
    ("quantum override", `Quick, test_quantum_override);
    ("state copy mid-stream", `Quick, test_state_copy_mid_stream);
    ("policy parsing", `Quick, test_policy_parsing);
    ("legacy scheduler bit-identical", `Quick, test_legacy_bit_identical);
    ("record/replay identical", `Quick, test_record_replay_identical);
    ("pinned per-workload syscall counts", `Quick, test_pinned_syscall_counts);
    ("explore: distinct + deterministic", `Quick,
     test_explore_distinct_and_deterministic);
    ("explore: zero sources clean on all schedules", `Slow,
     test_zero_source_clean_all_schedules);
    ("explore: Table 4 leaks on all schedules", `Slow,
     test_leak_detected_all_schedules);
    ("sweep render", `Quick, test_render_mentions_classification);
    ("campaign of_scheds", `Quick, test_campaign_of_scheds);
    ("campaign auto mode sequential fallback", `Quick,
     test_campaign_auto_falls_back_sequential) ]
  @ qcheck_tests
