(* lib/queue + Campaign.Service: the cross-process campaign service.

   - lease arbitration is structural (first record in file order for an
     (index, epoch) wins) and claims never trust their pre-append read;
   - expiry is strict ([now > deadline]) and judged by the claimant;
     heartbeats extend every lease their owner holds;
   - a release hands a task back with no expiry charge; a reclaim
     charges the previous holder (the quarantine-escalation input);
   - outcomes are exactly-once: the first [o] record wins, duplicates
     from wrongly-reclaimed-but-alive workers are ignored;
   - kill-anywhere (qcheck): SIGKILL service workers at random points;
     every task still completes exactly once and the rendered table is
     byte-identical to an uninterrupted single-process run. *)

module Store = Ldx_store.Store
module Q = Ldx_queue.Queue
module Engine = Ldx_core.Engine
module Campaign = Ldx_core.Campaign
module Counter = Ldx_instrument.Counter
module Lower = Ldx_cfg.Lower
module World = Ldx_osim.World

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let with_tmp f =
  let path = Filename.temp_file "ldx_test_queue" ".ldx" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* a bare v2 queue of [n] tasks, no campaign semantics attached *)
let mk_queue ~path n =
  let manifest =
    { Store.fingerprint = Store.fingerprint [ "queue"; "test" ];
      meta = [ ("tasks", string_of_int n) ];
      tasks = List.init n (Printf.sprintf "task#%d") }
  in
  Store.close (Store.checkpoint_entries ~path manifest [])

let view path =
  match Q.load ~path with Ok v -> v | Error e -> Alcotest.fail e

let claim_exn ~path ~owner ~now_us ~ttl_us =
  match Q.claim ~path ~owner ~now_us ~ttl_us () with
  | Ok r -> r
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Claim / expiry / release semantics (deterministic clocks).          *)

let test_claim_fresh () =
  with_tmp @@ fun path ->
  mk_queue ~path 3;
  (match claim_exn ~path ~owner:"w1" ~now_us:1_000 ~ttl_us:500 with
   | Q.Claimed { index = 0; epoch = 0; reclaimed_from = None } -> ()
   | _ -> Alcotest.fail "expected a fresh claim of task 0");
  match (view path).Q.states.(0) with
  | Q.Leased { holder = "w1"; epoch = 0; deadline_us = 1_500 } -> ()
  | _ -> Alcotest.fail "expected w1's lease with deadline now+ttl"

let test_live_leases_mean_wait () =
  with_tmp @@ fun path ->
  mk_queue ~path 2;
  ignore (claim_exn ~path ~owner:"w1" ~now_us:0 ~ttl_us:100);
  ignore (claim_exn ~path ~owner:"w1" ~now_us:0 ~ttl_us:100);
  (* both tasks leased and neither expired — even AT the deadline,
     expiry is strict *)
  (match claim_exn ~path ~owner:"w2" ~now_us:100 ~ttl_us:100 with
   | Q.Wait -> ()
   | _ -> Alcotest.fail "expected Wait while live leases cover the queue");
  check int "nothing is done yet" 2 (Q.remaining (view path))

let test_expiry_reclaims_and_charges () =
  with_tmp @@ fun path ->
  mk_queue ~path 1;
  ignore (claim_exn ~path ~owner:"w1" ~now_us:0 ~ttl_us:100);
  (match claim_exn ~path ~owner:"w2" ~now_us:101 ~ttl_us:100 with
   | Q.Claimed { index = 0; epoch = 1; reclaimed_from = Some "w1" } -> ()
   | _ -> Alcotest.fail "expected a reclaim of w1's expired lease");
  let v = view path in
  check bool "w1 charged with the expiry" true
    (v.Q.expired_owners.(0) = [ "w1" ]);
  match v.Q.states.(0) with
  | Q.Leased { holder = "w2"; epoch = 1; _ } -> ()
  | _ -> Alcotest.fail "expected w2 to hold epoch 1"

let test_heartbeat_extends () =
  with_tmp @@ fun path ->
  mk_queue ~path 1;
  ignore (claim_exn ~path ~owner:"w1" ~now_us:0 ~ttl_us:100);
  Q.heartbeat ~path ~owner:"w1" ~deadline_us:1_000 ();
  (* past the original deadline but inside the heartbeat's *)
  (match claim_exn ~path ~owner:"w2" ~now_us:500 ~ttl_us:100 with
   | Q.Wait -> ()
   | _ -> Alcotest.fail "heartbeat should have kept the lease alive");
  match claim_exn ~path ~owner:"w2" ~now_us:1_001 ~ttl_us:100 with
  | Q.Claimed { reclaimed_from = Some "w1"; _ } -> ()
  | _ -> Alcotest.fail "expected expiry once the heartbeat lapsed too"

let test_release_hands_back_without_charge () =
  with_tmp @@ fun path ->
  mk_queue ~path 1;
  ignore (claim_exn ~path ~owner:"w1" ~now_us:0 ~ttl_us:100);
  Q.release ~path ~index:0 ~owner:"w1" ~epoch:0 ();
  let v = view path in
  (match v.Q.states.(0) with
   | Q.Free { next_epoch = 1 } -> ()
   | _ -> Alcotest.fail "expected Free with the next epoch");
  check bool "a release is not an expiry" true (v.Q.expired_owners.(0) = []);
  (* the released task is immediately claimable, no waiting for TTL *)
  match claim_exn ~path ~owner:"w2" ~now_us:1 ~ttl_us:100 with
  | Q.Claimed { index = 0; epoch = 1; reclaimed_from = None } -> ()
  | _ -> Alcotest.fail "expected a fresh claim at the bumped epoch"

let test_outcome_first_wins () =
  with_tmp @@ fun path ->
  mk_queue ~path 1;
  Q.complete ~path ~index:0 ~payload:"first" ();
  (* a slow worker whose lease was wrongly reclaimed reports late *)
  Q.complete ~path ~index:0 ~payload:"second" ();
  let v = view path in
  (match v.Q.states.(0) with
   | Q.Done { payload = "first" } -> ()
   | _ -> Alcotest.fail "expected the first outcome to win");
  check bool "queue complete, duplicate ignored" true
    (Q.is_complete v && Q.outcomes v = [ (0, "first") ]);
  match claim_exn ~path ~owner:"w" ~now_us:0 ~ttl_us:1 with
  | Q.Drained -> ()
  | _ -> Alcotest.fail "expected Drained on a complete queue"

(* Two workers race a claim for the same (index, epoch): the first
   record in file order wins, regardless of whose deadline is later. *)
let test_arbitration_first_record_wins () =
  with_tmp @@ fun path ->
  mk_queue ~path 1;
  Q.append ~path
    (Store.Lease { index = 0; owner = "early"; epoch = 0; deadline_us = 10 });
  Q.append ~path
    (Store.Lease { index = 0; owner = "late"; epoch = 0; deadline_us = 99 });
  match (view path).Q.states.(0) with
  | Q.Leased { holder = "early"; epoch = 0; _ } -> ()
  | _ -> Alcotest.fail "expected the first record in file order to win"

(* ------------------------------------------------------------------ *)
(* Worker loop (in-process, deterministic clock).                      *)

let test_worker_runs_each_task_once () =
  with_tmp @@ fun path ->
  let n = 5 in
  mk_queue ~path n;
  let runs = Array.make n 0 in
  let outcome =
    Q.Worker.run ~now_us:(fun () -> 0) ~path ~owner:"w1" ~ttl_us:1_000
      ~heartbeat_us:0 ~poll_us:1
      (fun i ->
         runs.(i) <- runs.(i) + 1;
         Printf.sprintf "out-%d" i)
  in
  check bool "worker drained the queue" true (outcome = Q.Worker.Complete);
  Array.iteri
    (fun i c -> check int (Printf.sprintf "task %d ran exactly once" i) 1 c)
    runs;
  let v = view path in
  check bool "every outcome journaled in task order" true
    (Q.outcomes v = List.init n (fun i -> (i, Printf.sprintf "out-%d" i)))

let test_worker_stop_drains_after_inflight () =
  with_tmp @@ fun path ->
  mk_queue ~path 3;
  let stop = ref false in
  let outcome =
    Q.Worker.run ~now_us:(fun () -> 0)
      ~stop:(fun () -> !stop)
      ~path ~owner:"w1" ~ttl_us:1_000 ~heartbeat_us:0 ~poll_us:1
      (fun i ->
         (* a drain lands while task 0 is in flight *)
         stop := true;
         Printf.sprintf "out-%d" i)
  in
  check bool "worker reported a drain" true (outcome = Q.Worker.Drained);
  let v = view path in
  check bool "the in-flight task finished and was journaled" true
    (Q.outcomes v = [ (0, "out-0") ]);
  check int "the rest were never claimed" 2 (Q.remaining v)

(* ------------------------------------------------------------------ *)
(* Campaign service (in-process).                                      *)

let attribution_src =
  {| fn main() {
       let x = socket("x");
       let y = socket("y");
       let vx = recv(x);
       let vy = recv(y);
       send(x, vx);
       send(y, vy);
     } |}

let attribution_world =
  World.(empty |> with_endpoint "x" [ "11" ] |> with_endpoint "y" [ "22" ])

let instrumented src = fst (Counter.instrument (Lower.lower_source src))

let svc_config =
  { Engine.default_config with
    Engine.sources = [ Engine.source ~sys:"recv" () ];
    sinks = Engine.Network_outputs }

let svc_params config = Campaign.of_seeds config [ 0; 1; 2; 3; 4; 5 ]

let run_service_worker ?stop ?runner ~path ~owner ~config prog params =
  Campaign.Service.worker ?stop ?runner ~path ~owner ~ttl_us:2_000_000
    ~heartbeat_us:0 ~poll_us:1_000 ~config prog attribution_world params

(* One service worker over an init'ed queue renders byte-identically to
   Campaign.run ~jobs:1, and re-init on the same file is idempotent
   (the supervisor-restart = resume path). *)
let test_service_matches_single_process () =
  with_tmp @@ fun path ->
  let prog = instrumented attribution_src in
  let config = svc_config in
  let params = svc_params config in
  let reference =
    Campaign.render (Campaign.run ~jobs:1 ~config prog attribution_world params)
  in
  Campaign.Service.init ~path ~config prog attribution_world params;
  (match run_service_worker ~path ~owner:"w1" ~config prog params with
   | Ok `Complete -> ()
   | Ok `Drained -> Alcotest.fail "worker drained unexpectedly"
   | Error e -> Alcotest.fail e);
  (match Campaign.Service.collect ~path params with
   | Error e -> Alcotest.fail e
   | Ok outs ->
     Alcotest.(check string) "service table byte-identical to --jobs 1"
       reference (Campaign.render outs));
  (* restarting the service on the same queue keeps the outcomes *)
  Campaign.Service.init ~path ~config prog attribution_world params;
  match Campaign.Service.collect ~path params with
  | Error e -> Alcotest.fail e
  | Ok outs ->
    Alcotest.(check string) "re-init preserved the finished campaign"
      reference (Campaign.render outs)

(* A worker launched against a queue initialized for a DIFFERENT
   campaign must refuse (fingerprint handshake). *)
let test_service_fingerprint_mismatch () =
  with_tmp @@ fun path ->
  let prog = instrumented attribution_src in
  let config = svc_config in
  Campaign.Service.init ~path ~config prog attribution_world
    (svc_params config);
  let other = Campaign.of_seeds config [ 9 ] in
  match run_service_worker ~path ~owner:"w1" ~config prog other with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a fingerprint-mismatch error"

(* A task whose lease keeps expiring under distinct owners is parked as
   Quarantined by the supervisor's escalation sweep. *)
let test_service_escalation () =
  with_tmp @@ fun path ->
  let prog = instrumented attribution_src in
  let config = svc_config in
  let params = Campaign.of_seeds config [ 0 ] in
  Campaign.Service.init ~path ~config prog attribution_world params;
  (* three workers claim it and die (their leases expire unreleased) *)
  List.iteri
    (fun k owner ->
       let now_us = k * 101 in
       match claim_exn ~path ~owner ~now_us ~ttl_us:100 with
       | Q.Claimed _ -> ()
       | _ -> Alcotest.failf "claim %d should have succeeded" k)
    [ "w1"; "w2"; "w3" ];
  (* w1 and w2 are charged; w3's lease is still live *)
  (match Campaign.Service.escalate ~path ~kills:3 () with
   | Ok 0 -> ()
   | Ok n -> Alcotest.failf "escalated %d task(s) below the threshold" n
   | Error e -> Alcotest.fail e);
  (* the third expiry crosses the threshold *)
  (match claim_exn ~path ~owner:"w4" ~now_us:303 ~ttl_us:100 with
   | Q.Claimed _ -> ()
   | _ -> Alcotest.fail "fourth claim should have succeeded");
  (match Campaign.Service.escalate ~path ~kills:3 () with
   | Ok 1 -> ()
   | Ok n -> Alcotest.failf "expected one escalation, got %d" n
   | Error e -> Alcotest.fail e);
  let v = view path in
  check bool "task parked" true (Q.is_complete v);
  match v.Q.states.(0) with
  | Q.Done { payload } ->
    (match Campaign.decode_outcome payload with
     | Some (Campaign.Quarantined _, _) -> ()
     | _ -> Alcotest.fail "expected a Quarantined payload")
  | _ -> Alcotest.fail "expected Done"

(* ------------------------------------------------------------------ *)
(* Kill-anywhere: SIGKILL real worker processes at random points.      *)

(* The actual service worker binary (OCaml 5 forbids [Unix.fork] in a
   process that ever created domains, and exercising the shipped
   binary is the stronger test anyway).  Tests run from the build
   sandbox, so the exe is a sibling build directory; [test/dune]
   declares the dependency. *)
let worker_exe () =
  List.find_opt Sys.file_exists
    [ "../bin/ldx_worker.exe"; "bin/ldx_worker.exe" ]

(* A campaign slow enough (~2-3ms/task over 16 tasks) that SIGKILLs
   land mid-campaign and mid-task. *)
let kill_src =
  {| fn main() {
       let i = 0;
       while (i < 60000) { i = i + 1; }
       let x = socket("x");
       let y = socket("y");
       let vx = recv(x);
       let vy = recv(y);
       send(x, vx);
       send(y, vy);
     } |}

let kill_seeds = 16

(* One round: spawn a worker process on the queue, SIGKILL it after a
   random delay for the first few rounds, then let one run to
   completion (it has to wait out the dead workers' lease TTLs to
   reclaim their tasks).  Afterwards every task must hold exactly one
   outcome and the rendered table must be byte-identical to an
   uninterrupted single-process run. *)
let kill_anywhere_round seed =
  match worker_exe () with
  | None -> QCheck.assume_fail () (* exe not visible from this sandbox *)
  | Some exe ->
    with_tmp @@ fun path ->
    let prog_file = Filename.temp_file "ldx_test_queue" ".minic" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove prog_file with Sys_error _ -> ())
    @@ fun () ->
    Out_channel.with_open_text prog_file (fun oc ->
        output_string oc kill_src);
    let prog = instrumented kill_src in
    let config = svc_config in
    let params = Campaign.of_seeds config (List.init kill_seeds Fun.id) in
    let reference =
      Campaign.render
        (Campaign.run ~jobs:1 ~config prog attribution_world params)
    in
    Campaign.Service.init ~path ~config prog attribution_world params;
    let rand = Random.State.make [| seed |] in
    let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close null) @@ fun () ->
    let spawn owner =
      (* short TTL so a SIGKILLed holder's tasks are reclaimable fast;
         the argv mirrors what ldx_campaignd passes its workers *)
      let argv =
        [| exe; "--queue"; path; "--owner"; owner; "--ttl-ms"; "60";
           "--heartbeat-ms"; "10"; "--poll-ms"; "2"; prog_file;
           "--endpoint"; "x=11"; "--endpoint"; "y=22"; "--sink"; "network";
           "--sweep-seeds"; string_of_int kill_seeds |]
      in
      Unix.create_process exe argv Unix.stdin null null
    in
    let rounds = ref 0 in
    while (not (Q.is_complete (view path))) && !rounds < 40 do
      incr rounds;
      let pid = spawn (Printf.sprintf "k%d.%d" seed !rounds) in
      if !rounds <= 3 then begin
        (* SIGKILL at a random point: during startup, mid-task, or
           (sometimes) after the worker already finished *)
        Unix.sleepf (0.005 +. Random.State.float rand 0.04);
        try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
      end;
      ignore (Unix.waitpid [] pid)
    done;
    let v = view path in
    if not (Q.is_complete v) then
      Alcotest.failf "queue incomplete after %d rounds" !rounds;
    (* exactly once: the fold holds one outcome per task *)
    if List.length (Q.outcomes v) <> List.length params then
      Alcotest.fail "outcome count differs from task count";
    match Campaign.Service.collect ~path params with
    | Error e -> Alcotest.fail e
    | Ok outs ->
      if Campaign.render outs <> reference then
        Alcotest.fail "killed-worker table differs from uninterrupted run";
      true

let kill_anywhere_prop =
  QCheck.Test.make ~count:3 ~name:"kill-anywhere: SIGKILL loses nothing"
    QCheck.small_nat kill_anywhere_round

(* ------------------------------------------------------------------ *)

let tests =
  [ Alcotest.test_case "fresh claim wins task 0" `Quick test_claim_fresh;
    Alcotest.test_case "live leases mean Wait (expiry is strict)" `Quick
      test_live_leases_mean_wait;
    Alcotest.test_case "expiry reclaims and charges the holder" `Quick
      test_expiry_reclaims_and_charges;
    Alcotest.test_case "heartbeats extend leases" `Quick
      test_heartbeat_extends;
    Alcotest.test_case "release hands back without charge" `Quick
      test_release_hands_back_without_charge;
    Alcotest.test_case "first outcome wins, duplicates ignored" `Quick
      test_outcome_first_wins;
    Alcotest.test_case "claim races: first record in file order wins" `Quick
      test_arbitration_first_record_wins;
    Alcotest.test_case "worker runs each task exactly once" `Quick
      test_worker_runs_each_task_once;
    Alcotest.test_case "worker stop = drain after the in-flight task" `Quick
      test_worker_stop_drains_after_inflight;
    Alcotest.test_case "service table matches --jobs 1" `Quick
      test_service_matches_single_process;
    Alcotest.test_case "service refuses a foreign fingerprint" `Quick
      test_service_fingerprint_mismatch;
    Alcotest.test_case "killer tasks escalate to quarantine" `Quick
      test_service_escalation;
    QCheck_alcotest.to_alcotest kill_anywhere_prop ]
