let () =
  Alcotest.run "ldx"
    [ ("lang", Test_lang.tests);
      ("cfg", Test_cfg.tests);
      ("instrument", Test_instrument.tests);
      ("osim", Test_osim.tests);
      ("vm", Test_vm.tests);
      ("core", Test_core.tests);
      ("workloads", Test_workloads.tests);
      ("setjmp", Test_setjmp.tests);
      ("extensions", Test_extensions.tests);
      ("signals", Test_signals.tests);
      ("engine-edges", Test_engine_edges.tests);
      ("eval", Test_eval.tests);
      ("report", Test_report.tests);
      ("concurrency-edges", Test_concurrency_edges.tests);
      ("programs", Test_programs.tests);
      ("machine", Test_machine.tests);
      ("inputs", Test_inputs.tests);
      ("integration", Test_integration.tests);
      ("align", Test_align.tests);
      ("obs", Test_obs.tests);
      ("campaign", Test_campaign.tests);
      ("store", Test_store.tests);
      ("queue", Test_queue.tests);
      ("fault", Test_fault.tests);
      ("sched", Test_sched.tests);
      ("prof", Test_prof.tests);
      ("properties", Test_properties.tests);
      ("diff-vm", Test_diff_vm.tests);
      ("snapshot", Test_snapshot.tests) ]
