(* Differential testing of the two VM steppers: the tree walker and the
   flat-bytecode interpreter must be observationally identical — same
   stdout, same trap message, same step/cycle/syscall counts, same
   syscall trace (with alignment counters), same scheduling decisions,
   same taint verdicts, same dual-execution result and same cost
   profiles.  Quantifies over random structured programs, random
   threaded programs, and "stress" programs that mix threads, signals,
   setjmp/longjmp and deliberate traps. *)

module Driver = Ldx_vm.Driver
module Machine = Ldx_vm.Machine
module Profile = Ldx_vm.Profile
module Engine = Ldx_core.Engine
module Tracker = Ldx_taint.Tracker
module World = Ldx_osim.World
module Sched = Ldx_sched.Scheduler
module Gen_minic = Ldx_genprog.Gen_minic

let test_world =
  World.(
    empty
    |> with_endpoint "in" [ "3"; "14"; "15"; "9"; "2"; "6"; "5"; "35"; "8" ])

(* Everything a native run exposes, normalized for comparison. *)
type obs = {
  o_stdout : string;
  o_trap : string option;
  o_steps : int;
  o_cycles : int;
  o_syscalls : int;
  o_exit : int option;
  o_trace :
    (string * Ldx_osim.Sval.t list * Ldx_osim.Sval.t * int * int * int) list;
  o_sched : (int * int * int) list;
}

let observe ~vm ~seed src : obs =
  let sched = Sched.instantiate ~record:true (Sched.legacy ~seed) in
  let o =
    Driver.run_source ~instrument:true ~seed ~sched ~record_trace:true ~vm src
      test_world
  in
  { o_stdout = o.Driver.stdout;
    o_trap = o.Driver.trap;
    o_steps = o.Driver.steps;
    o_cycles = o.Driver.cycles;
    o_syscalls = o.Driver.syscalls;
    o_exit = o.Driver.exit_code;
    o_trace =
      List.map
        (fun (t : Driver.trace_entry) ->
           (t.Driver.sys, t.Driver.args, t.Driver.result, t.Driver.counter,
            t.Driver.site, t.Driver.tid))
        o.Driver.trace;
    o_sched =
      Array.to_list
        (Array.map
           (fun (d : Sched.decision) ->
              (d.Sched.d_index, d.Sched.d_chosen, d.Sched.d_quantum))
           (Sched.trace sched)) }

let prop_native_equivalent (p, seed) =
  let src = Gen_minic.print_program p in
  observe ~vm:Machine.Tree ~seed src = observe ~vm:Machine.Flat ~seed src

(* The tainting baselines share the flat lowering: tree and flat runs
   must produce the same verdicts, sites, clocks and output. *)
let prop_tracker_equivalent (p : Ldx_lang.Ast.program) =
  let src = Gen_minic.print_program p in
  Tracker.run_source ~vm:Machine.Tree src test_world
  = Tracker.run_source ~vm:Machine.Flat src test_world

(* Full dual execution, selected through the env-driven default
   ([Engine] has no ?vm: it inherits [Machine.default_vm]), with cost
   profiles attached: the entire result record and both per-side
   profile snapshots must be bit-identical. *)
let engine_obs vm src =
  let saved = !Machine.default_vm in
  Fun.protect
    ~finally:(fun () -> Machine.default_vm := saved)
    (fun () ->
       Machine.default_vm := vm;
       let prof = Engine.fresh_profiles () in
       let r = Engine.run_source ~prof src test_world in
       (r, Profile.snapshot prof.Engine.prof_master,
        Profile.snapshot prof.Engine.prof_slave))

let prop_engine_equivalent (p : Ldx_lang.Ast.program) =
  let src = Gen_minic.print_program p in
  engine_obs Machine.Tree src = engine_obs Machine.Flat src

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:Gen_minic.print_program gen prop)

let with_seed gen =
  QCheck2.Gen.pair gen (QCheck2.Gen.int_range 0 1000)

let print_pair (p, seed) =
  Printf.sprintf "seed %d\n%s" seed (Gen_minic.print_program p)

let qtest_seeded ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:print_pair (with_seed gen) prop)

let tests =
  [ qtest_seeded "D1 native tree=flat (structured)" Gen_minic.gen_program
      prop_native_equivalent;
    qtest_seeded "D2 native tree=flat (threads)" Gen_minic.gen_conc_program
      prop_native_equivalent;
    qtest_seeded ~count:120 "D3 native tree=flat (stress)"
      Gen_minic.gen_stress_program prop_native_equivalent;
    qtest ~count:40 "D4 tracker tree=flat" Gen_minic.gen_program
      prop_tracker_equivalent;
    qtest ~count:30 "D5 engine+profiles tree=flat"
      Gen_minic.gen_stress_program prop_engine_equivalent ]
