(* Campaign layer + divergence-accounting regressions.

   - exact [syscall_diffs] pinned per divergence case (the case-2 path
     used to increment twice for one path-diff syscall pair);
   - [src_nth] occurrence counters keyed per spec index (structurally
     equal specs used to share one [Hashtbl.hash]-keyed counter);
   - master recordings are immutable: replaying one [master_out]
     through several slave passes yields identical results;
   - [Attribute.per_source] performs exactly one master pass;
   - a parallel campaign (jobs=4) is byte-identical to a sequential
     one (qcheck, random structured programs). *)

module Engine = Ldx_core.Engine
module Campaign = Ldx_core.Campaign
module Attribute = Ldx_core.Attribute
module Mutation = Ldx_core.Mutation
module Counter = Ldx_instrument.Counter
module Lower = Ldx_cfg.Lower
module World = Ldx_osim.World
module Sval = Ldx_osim.Sval
module Gen_minic = Ldx_genprog.Gen_minic
module Obs = Ldx_obs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let net_cfg sources =
  { Engine.default_config with
    Engine.sources; sinks = Engine.Network_outputs }

let clean (r : Engine.result) =
  (match r.Engine.master.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "master trapped: %s" m);
  match r.Engine.slave.Engine.trap with
  | None -> ()
  | Some m -> Alcotest.failf "slave trapped: %s" m

let kinds (r : Engine.result) =
  List.map (fun (rep : Engine.sink_report) -> rep.Engine.kind)
    r.Engine.reports

(* ------------------------------------------------------------------ *)
(* Exact divergence accounting.                                        *)

(* Case 3 (aligned, same PC, different parameters): the mutated recv is
   coupled (a copy is not a difference); the dependent send is exactly
   one difference. *)
let test_diffs_case3 () =
  let src =
    {| fn main() { let s = socket("c"); let v = recv(s); send(s, v); } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "aa" ]) in
  let r =
    Engine.run_source
      ~config:(net_cfg [ Engine.source ~sys:"recv" () ])
      src world
  in
  clean r;
  check int "one syscall diff" 1 r.Engine.syscall_diffs;
  check bool "one args-differ report" true
    (kinds r = [ Engine.Args_differ ])

(* Case 2 (same counter, different PC): ONE path-diff syscall pair is
   ONE difference.  The old accounting incremented twice here, so this
   program reported syscall_diffs = 2. *)
let test_diffs_case2 () =
  let src =
    {| fn main() {
         let s = socket("c");
         let secret = atoi(recv(s));
         if (secret == 1) { send(s, "a"); } else { print("b"); }
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "1" ]) in
  let r =
    Engine.run_source
      ~config:(net_cfg [ Engine.source ~sys:"recv" () ])
      src world
  in
  clean r;
  check bool "path diff reported" true
    (List.mem Engine.Different_syscall (kinds r));
  check int "one syscall diff for one path-diff pair" 1
    r.Engine.syscall_diffs

(* Case 1, master-only: the slave (secret mutated to 4) exits before the
   send, so the master's send is dropped as master-only — one
   difference — plus the slave-only exit syscall. *)
let test_diffs_master_only () =
  let src =
    {| fn main() {
         let s = socket("c");
         let secret = atoi(recv(s));
         if (secret == 4) { exit(1); }
         send(s, "alive");
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "3" ]) in
  let r =
    Engine.run_source
      ~config:(net_cfg [ Engine.source ~sys:"recv" () ])
      src world
  in
  (match r.Engine.master.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "master trapped: %s" m);
  check bool "master-only sink reported" true
    (List.mem Engine.Missing_in_slave (kinds r));
  check int "slave-only exit + master-only send" 2 r.Engine.syscall_diffs

(* Case 1, slave-only: the master (secret 3) exits before the send, the
   slave (secret 4) survives and sends — one slave-only difference plus
   the master-only exit. *)
let test_diffs_slave_only () =
  let src =
    {| fn main() {
         let s = socket("c");
         let secret = atoi(recv(s));
         if (secret == 3) { exit(1); }
         send(s, "alive");
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "3" ]) in
  let r =
    Engine.run_source
      ~config:(net_cfg [ Engine.source ~sys:"recv" () ])
      src world
  in
  check bool "slave-only sink reported" true
    (List.mem Engine.Missing_in_master (kinds r));
  check int "master-only exit + slave-only send" 2 r.Engine.syscall_diffs

(* ------------------------------------------------------------------ *)
(* src_nth occurrence counters are per spec index.                     *)

(* Two structurally equal nth=2 specs: under the old Hashtbl.hash
   keying they shared one counter, so the SECOND spec saw count 2 on
   the FIRST recv and the first input was mutated.  Keyed per index,
   both specs fire on the second recv only. *)
let test_nth_spec_collision () =
  let src =
    {| fn main() {
         let s = socket("c");
         let a = recv(s);
         let b = recv(s);
         send(s, a);
         send(s, b);
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "aa"; "bb" ]) in
  let nth2 = Engine.source ~sys:"recv" ~nth:2 () in
  let r = Engine.run_source ~config:(net_cfg [ nth2; nth2 ]) src world in
  clean r;
  check int "exactly one mutated input" 1 r.Engine.mutated_inputs;
  match r.Engine.reports with
  | [ rep ] ->
    check bool "the SECOND recv's sink diverges" true
      (match rep.Engine.master_args with
       | Some args -> List.exists (Sval.equal (Sval.S "bb")) args
       | None -> false)
  | reps ->
    Alcotest.failf "expected exactly one report, got %d" (List.length reps)

(* A single nth spec still selects exactly the nth dynamic match. *)
let test_nth_single () =
  let src =
    {| fn main() {
         let s = socket("c");
         let a = recv(s);
         let b = recv(s);
         send(s, a);
         send(s, b);
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "aa"; "bb" ]) in
  let r =
    Engine.run_source
      ~config:(net_cfg [ Engine.source ~sys:"recv" ~nth:1 () ])
      src world
  in
  clean r;
  check int "one mutated input" 1 r.Engine.mutated_inputs;
  match r.Engine.reports with
  | [ rep ] ->
    check bool "the FIRST recv's sink diverges" true
      (match rep.Engine.master_args with
       | Some args -> List.exists (Sval.equal (Sval.S "aa")) args
       | None -> false)
  | reps ->
    Alcotest.failf "expected exactly one report, got %d" (List.length reps)

(* ------------------------------------------------------------------ *)
(* Replayable master log.                                              *)

let attribution_src =
  {| fn main() {
       let x = socket("x");
       let y = socket("y");
       let vx = recv(x);
       let vy = recv(y);
       send(x, vx);
       send(y, vy);
     } |}

let attribution_world =
  World.(empty |> with_endpoint "x" [ "11" ] |> with_endpoint "y" [ "22" ])

let instrumented src =
  fst (Counter.instrument (Lower.lower_source src))

let test_replay_identical () =
  let prog = instrumented attribution_src in
  let config = net_cfg [ Engine.source ~sys:"recv" () ] in
  let mo = Engine.master_pass config prog attribution_world in
  let r1 = Engine.run_with_master config prog attribution_world mo in
  let r2 = Engine.run_with_master config prog attribution_world mo in
  check bool "two replays of one recording are identical" true (r1 = r2);
  let fresh = Engine.run ~config prog attribution_world in
  check bool "a replay equals a fresh dual execution" true (r1 = fresh)

(* Replays under DIFFERENT slave configs from one recording match fresh
   dual executions of those configs — the soundness fact the campaign
   layer rests on. *)
let test_replay_across_configs () =
  let prog = instrumented attribution_src in
  let base = net_cfg [ Engine.source ~sys:"recv" () ] in
  let mo = Engine.master_pass base prog attribution_world in
  List.iter
    (fun (_, strategy) ->
       let config = { base with Engine.strategy } in
       let replay = Engine.run_with_master config prog attribution_world mo in
       let fresh = Engine.run ~config prog attribution_world in
       check bool "replayed strategy run equals fresh run" true
         (replay = fresh))
    Mutation.all_strategies

(* ------------------------------------------------------------------ *)
(* Attribution on the campaign layer.                                  *)

let attribution_config =
  net_cfg
    [ Engine.source ~sys:"recv" ~arg:"ep:x" ();
      Engine.source ~sys:"recv" ~arg:"ep:y" ();
      Engine.source ~sys:"recv" () ]

let test_per_source_one_master () =
  let prog = instrumented attribution_src in
  let master_begins = ref 0 and slave_begins = ref 0 in
  let obs =
    Obs.Sink.of_fn (function
      | Obs.Event.Phase_begin Obs.Event.Master_run -> incr master_begins
      | Obs.Event.Phase_begin Obs.Event.Slave_run -> incr slave_begins
      | _ -> ())
  in
  let attrs =
    Attribute.per_source ~config:attribution_config ~obs prog
      attribution_world
  in
  check int "three attributions" 3 (List.length attrs);
  check int "exactly ONE master pass for K sources" 1 !master_begins;
  check int "one slave pass per source" 3 !slave_begins

let test_per_source_matches_isolated_runs () =
  let prog = instrumented attribution_src in
  let attrs =
    Attribute.per_source ~config:attribution_config prog attribution_world
  in
  List.iter
    (fun (a : Attribute.attribution) ->
       let isolated =
         Engine.run
           ~config:{ attribution_config with Engine.sources = [ a.Attribute.source ] }
           prog attribution_world
       in
       check bool "campaign attribution equals isolated dual execution"
         true (a.Attribute.result = isolated))
    attrs;
  (* and the x/y sinks attribute to their own sources *)
  match attrs with
  | [ ax; ay; _all ] ->
    check int "x-source taints one sink" 1
      ax.Attribute.result.Engine.tainted_sinks;
    check int "y-source taints one sink" 1
      ay.Attribute.result.Engine.tainted_sinks
  | _ -> Alcotest.fail "expected three attributions"

(* ------------------------------------------------------------------ *)
(* Parallel determinism.                                               *)

let campaign_params config =
  Campaign.of_strategies config Mutation.all_strategies
  @ Campaign.of_seeds config [ 1; 2 ]

let test_campaign_parallel_matches_sequential () =
  let prog = instrumented attribution_src in
  let config = attribution_config in
  let params = campaign_params config in
  let seq = Campaign.run ~jobs:1 ~config prog attribution_world params in
  (* [`Parallel] forces the domain-pool path even on hosts where [`Auto]
     would (correctly) fall back to sequential — this test is about the
     parallel path's determinism, not the mode heuristic *)
  let par =
    Campaign.run ~jobs:4 ~mode:`Parallel ~config prog attribution_world params
  in
  check int "same number of outcomes" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Campaign.outcome) (b : Campaign.outcome) ->
       check bool "parallel outcome byte-identical to sequential" true
         (a.Campaign.params = b.Campaign.params
          && a.Campaign.status = b.Campaign.status))
    seq par

(* ------------------------------------------------------------------ *)
(* Crash containment and retries.                                      *)

exception Deliberate of string

(* A runner that raises for task labels carrying "crash" and delegates
   to the real engine otherwise — the fault-tolerance probe from the
   Campaign interface. *)
let crashing_runner ?obs:_ cfg prog world mo =
  List.iter
    (fun (s : Engine.source_spec) ->
       match s.Engine.src_arg with
       | Some "crash-marker" -> raise (Deliberate "boom")
       | _ -> ())
    cfg.Engine.sources;
  Engine.run_with_master cfg prog world mo

let crash_params config =
  let base = Campaign.params_of_config config in
  [ { base with Campaign.label = "ok-1" };
    { base with
      Campaign.label = "crash";
      sources = [ Engine.source ~sys:"recv" ~arg:"crash-marker" () ] };
    { base with Campaign.label = "ok-2"; slave_seed = 7 } ]

(* One deliberately crashing task: Crashed for it, Ok (with the same
   results a clean campaign produces) for every sibling — under both
   jobs=1 and jobs=4, byte-identical across repeated runs. *)
let test_campaign_crash_contained () =
  let prog = instrumented attribution_src in
  let config = net_cfg [ Engine.source ~sys:"recv" () ] in
  let params = crash_params config in
  let run jobs =
    Campaign.run ~jobs ~mode:`Parallel ~runner:crashing_runner ~config prog
      attribution_world params
  in
  let statuses outs = List.map (fun o -> o.Campaign.status) outs in
  List.iter
    (fun jobs ->
       let outs = run jobs in
       (match statuses outs with
        | [ Campaign.Ok _; Campaign.Crashed { exn; _ }; Campaign.Ok _ ] ->
          check bool "exception recorded" true (String.length exn > 0)
        | _ -> Alcotest.failf "jobs=%d: unexpected status shape" jobs);
       (* siblings match an uncontained clean run *)
       let clean_outs =
         Campaign.run ~jobs:1 ~config prog attribution_world
           [ List.nth params 0; List.nth params 2 ]
       in
       (match (statuses outs, statuses clean_outs) with
        | ( [ s0; _; s2 ], [ c0; c2 ] ) ->
          check bool "sibling 0 unaffected by the crash" true (s0 = c0);
          check bool "sibling 2 unaffected by the crash" true (s2 = c2)
        | _ -> Alcotest.fail "unexpected clean-run shape");
       (* byte-identical across repeated runs *)
       check bool "campaign with crash is deterministic" true
         (statuses (run jobs) = statuses outs))
    [ 1; 4 ];
  (* and jobs=1 / jobs=4 agree with each other *)
  check bool "jobs=1 equals jobs=4 under a crash" true
    (statuses (run 1) = statuses (run 4))

(* Retry policy: a failure that clears under a jittered slave seed is
   transient — one retry turns Crashed into Ok; without retries it
   stays Crashed. *)
let test_campaign_retry_transient () =
  let prog = instrumented attribution_src in
  let config = net_cfg [ Engine.source ~sys:"recv" () ] in
  let transient_runner ?obs:_ cfg prog world mo =
    if cfg.Engine.slave_seed = 0 then raise (Deliberate "transient")
    else Engine.run_with_master cfg prog world mo
  in
  let params = [ Campaign.params_of_config config ] in
  let without =
    Campaign.run ~runner:transient_runner ~config prog attribution_world
      params
  in
  (match (List.hd without).Campaign.status with
   | Campaign.Crashed _ -> ()
   | _ -> Alcotest.fail "expected Crashed without retries");
  let with_retry =
    Campaign.run ~runner:transient_runner
      ~retry:{ Campaign.no_retries with Campaign.max_retries = 1; seed_jitter = 3 }
      ~config prog attribution_world params
  in
  match (List.hd with_retry).Campaign.status with
  | Campaign.Ok r ->
    check bool "retried task completed" true (r.Engine.total_syscalls > 0)
  | _ -> Alcotest.fail "expected Ok after one retry"

(* Fuel exhaustion is a distinct status (not a crash, not Ok) and the
   summary's trap classifies as Fuel. *)
let test_campaign_fuel_status () =
  let prog = instrumented attribution_src in
  let config =
    { (net_cfg [ Engine.source ~sys:"recv" () ]) with Engine.max_steps = 5 }
  in
  let outs =
    Campaign.run ~config prog attribution_world
      [ Campaign.params_of_config config ]
  in
  match (List.hd outs).Campaign.status with
  | Campaign.Fuel_exhausted r ->
    check bool "master or slave classified as fuel" true
      (Engine.classify_trap r.Engine.master.Engine.trap = Engine.Fuel
       || Engine.classify_trap r.Engine.slave.Engine.trap = Engine.Fuel);
    check bool "render marks the task fuel-exhausted" true
      (let s = Campaign.render outs in
       let sub = "fuel-exhausted" in
       let found = ref false in
       for i = 0 to String.length s - String.length sub do
         if (not !found) && String.sub s i (String.length sub) = sub then
           found := true
       done;
       !found)
  | _ -> Alcotest.fail "expected Fuel_exhausted"

(* ------------------------------------------------------------------ *)
(* Deadlines, backoff, fuel budgets, quarantine.                       *)

let contains hay needle =
  let n = String.length needle in
  let found = ref false in
  for i = 0 to String.length hay - n do
    if (not !found) && String.sub hay i n = needle then found := true
  done;
  !found

(* A task deadline tighter than the configured budget cuts the slave
   pass off as Timed_out (not Fuel_exhausted: the budget was fine, the
   deadline was not); a slack deadline changes nothing. *)
let test_campaign_deadline () =
  let prog = instrumented attribution_src in
  let config = net_cfg [ Engine.source ~sys:"recv" () ] in
  let params = [ Campaign.params_of_config config ] in
  let outs =
    Campaign.run ~deadline:5 ~config prog attribution_world params
  in
  (match (List.hd outs).Campaign.status with
   | Campaign.Timed_out _ as s ->
     check bool "status class" true (Campaign.status_class s = "timed-out");
     check bool "render marks the task timed-out" true
       (contains (Campaign.render outs) "timed-out")
   | _ -> Alcotest.fail "expected Timed_out under a 5-step deadline");
  let slack =
    Campaign.run ~deadline:config.Engine.max_steps ~config prog
      attribution_world params
  in
  match (List.hd slack).Campaign.status with
  | Campaign.Ok _ -> ()
  | _ -> Alcotest.fail "expected Ok under a slack deadline"

(* Retry attempt k re-runs with slave_seed + jitter * backoff^(k-1):
   exponential backoff in seed space, linear when backoff <= 1. *)
let test_campaign_backoff_seeds () =
  let prog = instrumented attribution_src in
  let config = net_cfg [ Engine.source ~sys:"recv" () ] in
  let seeds = ref [] in
  let seed_logger ?obs:_ (cfg : Engine.config) _prog _world _mo =
    seeds := cfg.Engine.slave_seed :: !seeds;
    raise (Deliberate "always")
  in
  let base =
    { (Campaign.params_of_config config) with Campaign.slave_seed = 100 }
  in
  let run retry =
    seeds := [];
    let outs =
      Campaign.run ~runner:seed_logger ~retry ~config prog attribution_world
        [ base ]
    in
    (List.rev !seeds, (List.hd outs).Campaign.attempts)
  in
  let exp_seeds, exp_attempts =
    run
      { Campaign.no_retries with
        Campaign.max_retries = 3; seed_jitter = 2; backoff = 3 }
  in
  check bool "exponential strides 1,3,9" true
    (exp_seeds = [ 100; 102; 106; 118 ]);
  check int "every attempt recorded" 4 exp_attempts;
  let lin_seeds, _ =
    run
      { Campaign.no_retries with
        Campaign.max_retries = 3; seed_jitter = 2; backoff = 1 }
  in
  check bool "backoff <= 1 keeps the legacy linear jitter" true
    (lin_seeds = [ 100; 102; 104; 106 ])

(* The cumulative fuel budget stops the retry loop early: crashed
   attempts are charged the per-attempt step cap, so a pathological
   task cannot multiply its cost through retries. *)
let test_campaign_retry_fuel_budget () =
  let prog = instrumented attribution_src in
  let config =
    { (net_cfg [ Engine.source ~sys:"recv" () ]) with Engine.max_steps = 1000 }
  in
  let always_crash ?obs:_ _ _ _ _ = raise (Deliberate "pathological") in
  let run fuel_budget =
    let outs =
      Campaign.run ~runner:always_crash
        ~retry:
          { Campaign.no_retries with
            Campaign.max_retries = 5; fuel_budget }
        ~config prog attribution_world
        [ Campaign.params_of_config config ]
    in
    (List.hd outs).Campaign.attempts
  in
  check int "unbudgeted: every retry burned" 6 (run None);
  (* two crashed attempts are charged 2 * 1000 steps > 1500: the third
     attempt never runs *)
  check int "budget caps cumulative attempts" 2 (run (Some 1500))

(* Quarantine: a crash that reproduces on every (seed-perturbed) retry
   is deterministic — parked as Quarantined, with the event and counter
   to match.  A first-try crash with no retries stays Crashed: one run
   proves nothing about determinism. *)
let test_campaign_quarantine () =
  let prog = instrumented attribution_src in
  let config = net_cfg [ Engine.source ~sys:"recv" () ] in
  let always_crash ?obs:_ _ _ _ _ = raise (Deliberate "deterministic") in
  let params = [ Campaign.params_of_config config ] in
  let rc = Obs.Recorder.create () in
  let outs =
    Campaign.run ~obs:(Obs.Recorder.sink rc) ~runner:always_crash
      ~retry:
        { Campaign.no_retries with
          Campaign.max_retries = 2; quarantine = true }
      ~config prog attribution_world params
  in
  (match List.hd outs with
   | { Campaign.status = Campaign.Quarantined { exn; _ }; attempts; _ } ->
     check bool "exception retained" true (contains exn "deterministic");
     check int "all attempts crashed" 3 attempts;
     check bool "render marks the task quarantined" true
       (contains (Campaign.render outs) "quarantined")
   | _ -> Alcotest.fail "expected Quarantined");
  let snap = Obs.Recorder.snapshot rc in
  check int "campaign.quarantined counter" 1
    (Obs.Metrics.counter snap "campaign.quarantined");
  check int "retry.quarantines counter" 1
    (Obs.Metrics.counter snap "retry.quarantines");
  (* without retries there is no reproduction evidence: stays Crashed *)
  let no_retry =
    Campaign.run ~runner:always_crash
      ~retry:{ Campaign.no_retries with Campaign.quarantine = true }
      ~config prog attribution_world params
  in
  match (List.hd no_retry).Campaign.status with
  | Campaign.Crashed _ -> ()
  | _ -> Alcotest.fail "expected Crashed without a confirming retry"

(* ------------------------------------------------------------------ *)
(* Parallel observability: per-task buffered sinks.                    *)

(* jobs=4 with a plain (non-domain-safe) closure sink: the collecting
   domain drains each task's private buffer in task order, so the sink
   sees one Master_run phase, every slave pass, and Task_done per task
   in task order — without any synchronization of its own. *)
let test_campaign_parallel_obs_order () =
  let prog = instrumented attribution_src in
  let config = net_cfg [ Engine.source ~sys:"recv" () ] in
  let params = campaign_params config in
  let events = ref [] in
  let obs = Obs.Sink.of_fn (fun e -> events := e :: !events) in
  let outs =
    Campaign.run ~jobs:4 ~mode:`Parallel ~obs ~config prog attribution_world
      params
  in
  check bool "all tasks completed" true
    (List.for_all
       (fun o -> match o.Campaign.status with Campaign.Ok _ -> true | _ -> false)
       outs);
  let evs = List.rev !events in
  let count p = List.length (List.filter p evs) in
  check int "one master phase" 1
    (count (function
       | Obs.Event.Phase_begin Obs.Event.Master_run -> true
       | _ -> false));
  check int "one slave phase per task" (List.length params)
    (count (function
       | Obs.Event.Phase_begin Obs.Event.Slave_run -> true
       | _ -> false));
  let labels =
    List.filter_map
      (function Obs.Event.Task_done { label; _ } -> Some label | _ -> None)
      evs
  in
  check bool "Task_done per task, in task order" true
    (labels = List.map (fun (p : Campaign.slave_params) -> p.Campaign.label) params)

(* ------------------------------------------------------------------ *)
(* Journaled campaigns: checkpoint, resume, kill-anywhere recovery.    *)

let with_journal f =
  let path = Filename.temp_file "ldx_test_campaign" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> output_string oc text)

(* Resuming a complete journal replays every outcome verbatim (no
   master pass, no task re-runs) and renders byte-identically. *)
let test_campaign_resume_complete () =
  let prog = instrumented attribution_src in
  let config = attribution_config in
  let params = campaign_params config in
  with_journal @@ fun path ->
  let outs = Campaign.run ~journal:path ~config prog attribution_world params in
  let reference = Campaign.render outs in
  let resumed = ref None in
  let obs =
    Obs.Sink.of_fn (function
      | Obs.Event.Resume { replayed; rerun; torn; _ } ->
        resumed := Some (replayed, rerun, torn)
      | _ -> ())
  in
  match Campaign.resume ~obs ~journal:path ~config prog attribution_world params with
  | Error e -> Alcotest.fail e
  | Ok outs' ->
    Alcotest.(check string) "resume renders byte-identically" reference
      (Campaign.render outs');
    check bool "all replayed, none re-run, nothing torn" true
      (!resumed = Some (List.length params, 0, 0))

(* A journal written under one configuration refuses to resume another:
   different tasks, a different deadline, or different retry controls
   all flip the fingerprint. *)
let test_campaign_resume_fingerprint_mismatch () =
  let prog = instrumented attribution_src in
  let config = attribution_config in
  let params = campaign_params config in
  with_journal @@ fun path ->
  ignore (Campaign.run ~journal:path ~config prog attribution_world params);
  let expect_error what r =
    match r with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "resume accepted %s" what
  in
  expect_error "a dropped task"
    (Campaign.resume ~journal:path ~config prog attribution_world
       (List.tl params));
  expect_error "a new deadline"
    (Campaign.resume ~deadline:10_000 ~journal:path ~config prog
       attribution_world params);
  expect_error "new retry controls"
    (Campaign.resume
       ~retry:{ Campaign.no_retries with Campaign.max_retries = 2 }
       ~journal:path ~config prog attribution_world params);
  (* the matching configuration still resumes *)
  match Campaign.resume ~journal:path ~config prog attribution_world params with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "matching config rejected: %s" e

(* Graceful drain: a [stop] that turns true mid-campaign finishes the
   in-flight task, journals it, marks the unclaimed rest as drained
   placeholders, and a later resume re-runs exactly those — rendering
   byte-identically to the uninterrupted run. *)
let test_campaign_drain_and_resume () =
  let prog = instrumented attribution_src in
  let config = attribution_config in
  let params = campaign_params config in
  let reference =
    Campaign.render (Campaign.run ~jobs:1 ~config prog attribution_world params)
  in
  with_journal @@ fun path ->
  let done_tasks = ref 0 in
  let counting_runner ?obs cfg prog world mo =
    incr done_tasks;
    let r = Engine.run_with_master ?obs cfg prog world mo in
    r
  in
  (* stop after the first task completes *)
  let outs =
    Campaign.run ~journal:path ~runner:counting_runner
      ~stop:(fun () -> !done_tasks >= 1)
      ~config prog attribution_world params
  in
  let drained, finished =
    List.partition
      (fun (o : Campaign.outcome) ->
         match o.Campaign.status with
         | Campaign.Crashed { exn; _ } -> exn = "drained (not run)"
         | _ -> false)
      outs
  in
  check int "exactly one task ran before the drain" 1 (List.length finished);
  check int "the rest are drained placeholders, attempts = 0" 0
    (List.fold_left (fun a (o : Campaign.outcome) -> a + o.Campaign.attempts)
       0 drained);
  check int "drained + finished covers the campaign" (List.length params)
    (List.length drained + List.length finished);
  (* the journal holds only the finished outcome; resume runs the rest *)
  match Campaign.resume ~journal:path ~config prog attribution_world params with
  | Error e -> Alcotest.fail e
  | Ok outs' ->
    Alcotest.(check string) "resume completes the drained campaign"
      reference (Campaign.render outs')

(* The parallel paths honour [stop] too — and never invent outcomes for
   tasks the drain skipped. *)
let test_campaign_drain_parallel () =
  let prog = instrumented attribution_src in
  let config = attribution_config in
  let params = campaign_params config in
  let outs =
    Campaign.run ~jobs:4 ~mode:`Parallel
      ~stop:(fun () -> true)
      ~config prog attribution_world params
  in
  check bool "an immediate stop drains every task" true
    (List.for_all
       (fun (o : Campaign.outcome) ->
          match o.Campaign.status with
          | Campaign.Crashed { exn; _ } -> exn = "drained (not run)"
          | _ -> false)
       outs)

let qcheck_world =
  World.(
    empty
    |> with_endpoint "in" [ "3"; "14"; "15"; "9"; "2"; "6"; "5"; "35"; "8" ])

(* Over random structured programs: a jobs=4 campaign across all
   mutation strategies is byte-identical to the sequential campaign. *)
let prop_campaign_deterministic (p : Ldx_lang.Ast.program) =
  let prog, _ = Counter.instrument (Lower.lower_program p) in
  let config = Engine.default_config in
  let params = Campaign.of_strategies config Mutation.all_strategies in
  let seq = Campaign.run ~jobs:1 ~config prog qcheck_world params in
  let par =
    Campaign.run ~jobs:4 ~mode:`Parallel ~config prog qcheck_world params
  in
  List.for_all2
    (fun (a : Campaign.outcome) (b : Campaign.outcome) ->
       a.Campaign.status = b.Campaign.status)
    seq par

(* Kill-anywhere durability (over random structured programs): journal
   a campaign, then simulate a crash by truncating the journal at EVERY
   outcome-record boundary and mid-record, and resume at jobs=1 and
   jobs=4 — every resumption must render byte-identically to the
   uninterrupted campaign.  (Cuts inside the manifest are out of scope:
   the manifest is only ever published by an atomic rename.) *)
let prop_resume_truncated (p : Ldx_lang.Ast.program) =
  let prog, _ = Counter.instrument (Lower.lower_program p) in
  let config = Engine.default_config in
  let params =
    Campaign.of_strategies config
      [ List.hd Mutation.all_strategies ]
    @ Campaign.of_seeds config [ 1; 2 ]
  in
  let reference =
    Campaign.render (Campaign.run ~jobs:1 ~config prog qcheck_world params)
  in
  with_journal @@ fun path ->
  ignore (Campaign.run ~journal:path ~config prog qcheck_world params);
  let text = read_file path in
  (* cut points: the end of the manifest (no outcomes journaled), each
     outcome record's end, and the middle of each record *)
  let cuts =
    let acc = ref [] in
    let len = String.length text in
    let rec line_starts i =
      if i < len then begin
        (if text.[i] = 'o' then
           let stop =
             match String.index_from_opt text i '\n' with
             | Some j -> j + 1
             | None -> len
           in
           acc := stop :: ((i + stop) / 2) :: i :: !acc);
        match String.index_from_opt text i '\n' with
        | Some j -> line_starts (j + 1)
        | None -> ()
      end
    in
    line_starts 0;
    List.sort_uniq compare !acc
  in
  List.for_all
    (fun cut ->
       List.for_all
         (fun jobs ->
            with_journal @@ fun cut_path ->
            write_file cut_path (String.sub text 0 cut);
            let mode = if jobs > 1 then `Parallel else `Sequential in
            match
              Campaign.resume ~jobs ~mode ~journal:cut_path ~config prog
                qcheck_world params
            with
            | Error e ->
              QCheck2.Test.fail_reportf "cut at %d, jobs=%d: %s" cut jobs e
            | Ok outs -> Campaign.render outs = reference)
         [ 1; 4 ])
    cuts

let qtest name count gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:Gen_minic.print_program gen prop)

let tests =
  [ Alcotest.test_case "case 3 counts one diff" `Quick test_diffs_case3;
    Alcotest.test_case "case 2 counts one diff (regression)" `Quick
      test_diffs_case2;
    Alcotest.test_case "master-only diff accounting" `Quick
      test_diffs_master_only;
    Alcotest.test_case "slave-only diff accounting" `Quick
      test_diffs_slave_only;
    Alcotest.test_case "equal nth specs count independently (regression)"
      `Quick test_nth_spec_collision;
    Alcotest.test_case "single nth spec picks the nth match" `Quick
      test_nth_single;
    Alcotest.test_case "master log replays identically" `Quick
      test_replay_identical;
    Alcotest.test_case "replay across slave configs equals fresh runs"
      `Quick test_replay_across_configs;
    Alcotest.test_case "per_source records one master" `Quick
      test_per_source_one_master;
    Alcotest.test_case "per_source equals isolated runs" `Quick
      test_per_source_matches_isolated_runs;
    Alcotest.test_case "parallel campaign equals sequential" `Quick
      test_campaign_parallel_matches_sequential;
    Alcotest.test_case "crashing task contained (jobs=1 and jobs=4)" `Quick
      test_campaign_crash_contained;
    Alcotest.test_case "retry policy clears transient failures" `Quick
      test_campaign_retry_transient;
    Alcotest.test_case "fuel exhaustion is a distinct status" `Quick
      test_campaign_fuel_status;
    Alcotest.test_case "deadline cuts tasks off as Timed_out" `Quick
      test_campaign_deadline;
    Alcotest.test_case "retry seeds follow exponential backoff" `Quick
      test_campaign_backoff_seeds;
    Alcotest.test_case "fuel budget caps cumulative retries" `Quick
      test_campaign_retry_fuel_budget;
    Alcotest.test_case "deterministic crashers quarantined" `Quick
      test_campaign_quarantine;
    Alcotest.test_case "parallel sink buffered, drained in task order"
      `Quick test_campaign_parallel_obs_order;
    Alcotest.test_case "resume of a complete journal replays verbatim"
      `Quick test_campaign_resume_complete;
    Alcotest.test_case "resume rejects a fingerprint mismatch" `Quick
      test_campaign_resume_fingerprint_mismatch;
    Alcotest.test_case "drain finishes in-flight, resume completes" `Quick
      test_campaign_drain_and_resume;
    Alcotest.test_case "parallel campaigns honour stop" `Quick
      test_campaign_drain_parallel;
    qtest "P14 campaign jobs=4 deterministic" 40 Gen_minic.gen_program
      prop_campaign_deterministic;
    qtest "P15 kill-anywhere resume renders identically" 10
      Gen_minic.gen_program prop_resume_truncated ]
