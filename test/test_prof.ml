(* Profiler tests: the no-perturbation invariant (verdicts and engine
   counters bit-identical with profiling on or off), cost-accounting
   exactness (profile totals equal the machine clocks, the report wall
   equals the engine's wall_cycles), report format round-trips, the
   bench-diff regression gate, and the campaign trace lanes at jobs>1. *)

module Engine = Ldx_core.Engine
module Campaign = Ldx_core.Campaign
module Mutation = Ldx_core.Mutation
module Profile = Ldx_vm.Profile
module Report = Ldx_prof.Report
module Bench_diff = Ldx_prof.Bench_diff
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry
module Obs = Ldx_obs
module E = Obs.Event
module J = Obs.Json

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let found = ref false in
  for i = 0 to hn - nn do
    if (not !found) && String.sub hay i nn = needle then found := true
  done;
  !found

(* ------------------------------------------------------------------ *)
(* No-perturbation + exact accounting on real registry workloads.      *)

(* One bare and one profiled run per workload, shared across cases. *)
let runs =
  let tbl = Hashtbl.create 4 in
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None ->
      let w = Registry.find_exn name in
      let prog = fst (Workload.instrumented w) in
      let config = Workload.leak_config w in
      let bare = Engine.run ~config prog w.Workload.world in
      let prof = Engine.fresh_profiles () in
      let profiled = Engine.run ~config ~prof prog w.Workload.world in
      let v = (bare, profiled, prof) in
      Hashtbl.add tbl name v;
      v

let test_no_perturbation name () =
  let bare, profiled, _ = runs name in
  (* the whole result record: verdicts, reports, traces, summaries,
     every counter *)
  check bool "result bit-identical with profiling" true (bare = profiled);
  check bool "leak verdict" (bare.Engine.leak) profiled.Engine.leak;
  check int "tainted sinks" bare.Engine.tainted_sinks
    profiled.Engine.tainted_sinks;
  check int "wall cycles" bare.Engine.wall_cycles profiled.Engine.wall_cycles

let test_accounting name () =
  let _, r, pp = runs name in
  let d =
    Report.of_profiles ~master:pp.Engine.prof_master
      ~slave:pp.Engine.prof_slave
  in
  check int "master profile total = master clock"
    r.Engine.master.Engine.cycles
    d.Report.d_master.Profile.s_total_cycles;
  check int "slave profile total = slave clock" r.Engine.slave.Engine.cycles
    d.Report.d_slave.Profile.s_total_cycles;
  check int "report wall = engine wall_cycles" r.Engine.wall_cycles
    d.Report.d_wall;
  (* every cycle is attributed exactly once: per-block op cycles plus
     engine coupling cycles re-sum to the side total *)
  let sum f l = List.fold_left (fun a x -> a + f x) 0 l in
  let side (s : Profile.snapshot) =
    check int "blocks + engine = total" s.Profile.s_total_cycles
      (sum (fun (b : Profile.block_row) -> b.Profile.b_cycles)
         s.Profile.s_blocks
       + sum (fun (r : Profile.row) -> r.Profile.r_cycles)
           s.Profile.s_engine);
    check int "ops + engine = total" s.Profile.s_total_cycles
      (sum (fun (r : Profile.row) -> r.Profile.r_cycles) s.Profile.s_ops
       + sum (fun (r : Profile.row) -> r.Profile.r_cycles)
           s.Profile.s_engine)
  in
  side d.Report.d_master;
  side d.Report.d_slave

let test_profile_determinism () =
  let snap () =
    let _, _, pp = runs "403.gcc" in
    Report.of_profiles ~master:pp.Engine.prof_master
      ~slave:pp.Engine.prof_slave
  in
  let w = Registry.find_exn "403.gcc" in
  let prog = fst (Workload.instrumented w) in
  let prof = Engine.fresh_profiles () in
  ignore
    (Engine.run ~config:(Workload.leak_config w) ~prof prog w.Workload.world);
  let again =
    Report.of_profiles ~master:prof.Engine.prof_master
      ~slave:prof.Engine.prof_slave
  in
  check bool "profiles bit-identical across runs" true (snap () = again);
  check string "rendered report identical" (Report.render (snap ()))
    (Report.render again)

(* ------------------------------------------------------------------ *)
(* Report formats.                                                     *)

let test_json_roundtrip () =
  let _, _, pp = runs "403.gcc" in
  let d =
    Report.of_profiles ~master:pp.Engine.prof_master
      ~slave:pp.Engine.prof_slave
  in
  let j = Report.to_json d in
  (match Report.of_json j with
   | Ok d' -> check bool "of_json (to_json d) = d" true (d = d')
   | Error e -> Alcotest.failf "of_json failed: %s" e);
  (* and through the actual serializer + parser *)
  match J.parse (J.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' ->
    (match Report.of_json j' with
     | Ok d' -> check bool "serialized round-trip" true (d = d')
     | Error e -> Alcotest.failf "of_json after parse failed: %s" e)

let test_folded_sums () =
  let _, r, pp = runs "403.gcc" in
  let d =
    Report.of_profiles ~master:pp.Engine.prof_master
      ~slave:pp.Engine.prof_slave
  in
  let lines =
    List.filter (fun l -> l <> "")
      (String.split_on_char '\n' (Report.folded d))
  in
  let side_sum prefix =
    List.fold_left
      (fun acc l ->
         if String.length l > String.length prefix
            && String.sub l 0 (String.length prefix) = prefix
         then
           match String.rindex_opt l ' ' with
           | Some i ->
             acc
             + int_of_string
                 (String.sub l (i + 1) (String.length l - i - 1))
           | None -> acc
         else acc)
      0 lines
  in
  check int "master folded lines sum to master clock"
    r.Engine.master.Engine.cycles (side_sum "master;");
  check int "slave folded lines sum to slave clock"
    r.Engine.slave.Engine.cycles (side_sum "slave;");
  check bool "engine frames present" true
    (List.exists (fun l -> contains l ";engine;") lines)

let test_render_shape () =
  let _, r, pp = runs "473.astar" in
  let d =
    Report.of_profiles ~master:pp.Engine.prof_master
      ~slave:pp.Engine.prof_slave
  in
  let s = Report.render d in
  check bool "wall header" true
    (contains s (Printf.sprintf "wall %d cycles" r.Engine.wall_cycles));
  check bool "ranked opcode table" true (contains s "opcode");
  check bool "syscall table" true (contains s "syscall");
  let e = Report.diff d d in
  check bool "self-diff reports zero wall delta" true
    (contains e (Printf.sprintf "wall %d -> %d (+0)" r.Engine.wall_cycles
                   r.Engine.wall_cycles))

(* ------------------------------------------------------------------ *)
(* bench-diff regression gate.                                         *)

let bench_fixture =
  J.Obj
    [ ("schema", J.Str "ldx-bench/1");
      ( "wall_times",
        J.Obj
          [ ("ldx kernel_a", J.Float 1000.);
            ("ldx kernel_b", J.Float 250.);
            ("ldx kernel_c", J.Null) ] );
      ( "engine_counters",
        J.Obj
          [ ( "w1",
              J.Obj
                [ ("leak", J.Bool true);
                  ("copies", J.Int 7);
                  ("wall_cycles", J.Int 500) ] );
            ( "w2",
              J.Obj [ ("leak", J.Bool false); ("wall_cycles", J.Int 42) ] )
          ] ) ]

let diff_exn ?threshold ?cycles_only baseline current =
  match Bench_diff.compare ?threshold ?cycles_only ~baseline ~current () with
  | Ok o -> o
  | Error e -> Alcotest.failf "bench-diff failed: %s" e

let test_bench_diff_identical () =
  let o = diff_exn bench_fixture bench_fixture in
  check int "no regressions on identical runs" 0 o.Bench_diff.bd_regressions;
  check bool "counters were actually compared" true
    (o.Bench_diff.bd_checks >= 5)

let test_bench_diff_doctored () =
  let doctored =
    match Bench_diff.doctor bench_fixture with
    | Ok d -> d
    | Error e -> Alcotest.failf "doctor failed: %s" e
  in
  let o = diff_exn bench_fixture doctored in
  check bool "doctored slowdown trips the gate" true
    (o.Bench_diff.bd_regressions >= 2);
  check bool "wall regression reported" true
    (contains o.Bench_diff.bd_report "wall");
  check bool "counter regression reported" true
    (contains o.Bench_diff.bd_report "wall_cycles");
  (* cycles-only mode ignores the wall slowdown but still catches the
     counter change *)
  let oc = diff_exn ~cycles_only:true bench_fixture doctored in
  check int "cycles-only catches exactly the counter" 1
    oc.Bench_diff.bd_regressions

let test_bench_diff_threshold () =
  let bump =
    J.Obj
      [ ("schema", J.Str "ldx-bench/1");
        ( "wall_times",
          J.Obj
            [ ("ldx kernel_a", J.Float 1200.);
              ("ldx kernel_b", J.Float 250.);
              ("ldx kernel_c", J.Null) ] );
        (match bench_fixture with
         | J.Obj l -> List.nth l 2
         | _ -> assert false) ]
  in
  (* +20% passes at the default 30% slack, fails at 10% *)
  check int "within threshold" 0
    (diff_exn bench_fixture bump).Bench_diff.bd_regressions;
  check int "beyond tighter threshold" 1
    (diff_exn ~threshold:0.1 bench_fixture bump).Bench_diff.bd_regressions

let test_bench_diff_missing_workload () =
  let pruned =
    J.Obj
      [ ("schema", J.Str "ldx-bench/1");
        ( "wall_times",
          match J.member "wall_times" bench_fixture with
          | Some w -> w
          | None -> assert false );
        ( "engine_counters",
          J.Obj
            [ ( "w1",
                J.Obj
                  [ ("leak", J.Bool true);
                    ("copies", J.Int 7);
                    ("wall_cycles", J.Int 500) ] ) ] ) ]
  in
  check bool "dropped workload is a regression" true
    ((diff_exn bench_fixture pruned).Bench_diff.bd_regressions >= 1)

(* ------------------------------------------------------------------ *)
(* Campaign trace lanes.                                               *)

(* Synthetic golden mimicking the collected (jobs>1) event stream: the
   heartbeats arrive first (arrival order), the buffered per-task
   events drain afterwards in task order.  Pins: checkpoint on the
   journal lane (tid 998), one lane per task (tid 1000+index) with
   begin instant + wall_cycles slice laid end-to-end, heartbeats and
   the wall-clock queue/run split excluded. *)
let campaign_synthetic_events =
  [ E.Checkpoint { path = "c.journal"; tasks = 2; journaled = 0 };
    E.Campaign_plan
      { mode = "parallel"; jobs = 2; tasks = 2; est_steps = 100 };
    E.Campaign_progress
      { completed = 1; total = 2; cycles_done = 60; eta_cycles = 60 };
    E.Campaign_progress
      { completed = 2; total = 2; cycles_done = 100; eta_cycles = 0 };
    E.Task_begin { label = "zero"; index = 0 };
    E.Task_timing
      { label = "zero"; index = 0; queue_us = 12; run_us = 34;
        wall_cycles = 60 };
    E.Task_begin { label = "bitflip"; index = 1 };
    E.Task_timing
      { label = "bitflip"; index = 1; queue_us = 99; run_us = 11;
        wall_cycles = 40 } ]

let campaign_trace_golden =
  {|{"displayTimeUnit":"ns","otherData":{},"traceEvents":[{"name":"process_name","ph":"M","pid":0,"args":{"name":"engine"}},{"name":"process_name","ph":"M","pid":1,"args":{"name":"master"}},{"name":"process_name","ph":"M","pid":2,"args":{"name":"slave"}},{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"thread 0"}},{"name":"thread_name","ph":"M","pid":0,"tid":998,"args":{"name":"journal"}},{"name":"thread_name","ph":"M","pid":0,"tid":1000,"args":{"name":"task zero"}},{"name":"thread_name","ph":"M","pid":0,"tid":1001,"args":{"name":"task bitflip"}},{"name":"checkpoint","cat":"journal","ph":"i","ts":0,"pid":0,"tid":998,"s":"t","args":{"path":"c.journal","tasks":2,"journaled":0}},{"name":"campaign parallel","cat":"campaign","ph":"i","ts":0,"pid":0,"tid":0,"s":"p","args":{"jobs":2,"tasks":2,"est_steps":100}},{"name":"begin zero","cat":"campaign","ph":"i","ts":0,"pid":0,"tid":1000,"s":"t","args":{"index":0}},{"name":"zero","cat":"campaign","ph":"X","ts":0,"pid":0,"tid":1000,"dur":60,"args":{"index":0,"wall_cycles":60}},{"name":"begin bitflip","cat":"campaign","ph":"i","ts":60,"pid":0,"tid":1001,"s":"t","args":{"index":1}},{"name":"bitflip","cat":"campaign","ph":"X","ts":60,"pid":0,"tid":1001,"dur":40,"args":{"index":1,"wall_cycles":40}}]}|}

let test_campaign_trace_golden () =
  check string "campaign trace JSON" campaign_trace_golden
    (Obs.Chrome_trace.to_string campaign_synthetic_events)

(* A real fan-out: the rendered trace is byte-identical at jobs=1 and
   jobs=4 once the (intentionally different) Campaign_plan instant is
   normalized — task lanes drain in task order regardless of worker
   interleaving, heartbeats stay out. *)
let fig2_src =
  {| fn main() {
       let sock = socket("hr");
       let name = recv(sock);
       let title = recv(sock);
       let raise = 0;
       if (title == "STAFF") { raise = 1; } else { raise = 2; }
       send(sock, name);
       send(sock, itoa(raise));
     } |}

let fig2_world =
  Ldx_osim.World.(
    empty |> with_endpoint "hr" [ "alice"; "STAFF"; "ENG" ])

let fig2_config =
  { Engine.default_config with
    Engine.sources = [ Engine.source ~sys:"recv" ~nth:2 () ];
    sinks = Engine.Network_outputs }

let replace_all ~sub ~by s =
  let b = Buffer.create (String.length s) in
  let n = String.length s and m = String.length sub in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = sub then begin
      Buffer.add_string b by;
      i := !i + m
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let campaign_trace ~jobs =
  let prog =
    fst
      (Ldx_instrument.Counter.instrument
         (Ldx_cfg.Lower.lower_source fig2_src))
  in
  let params =
    Campaign.of_strategies fig2_config Mutation.all_strategies
  in
  let journal = Filename.temp_file "ldx_prof_test" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
  @@ fun () ->
  let rc = Obs.Recorder.create () in
  ignore
    (Campaign.run ~jobs ~obs:(Obs.Recorder.sink rc) ~journal
       ~config:fig2_config prog fig2_world params);
  (* the temp journal path is the one run-specific string in the trace *)
  ( replace_all ~sub:journal ~by:"JOURNAL"
      (Obs.Chrome_trace.to_string (Obs.Recorder.events rc)),
    List.length params )

let test_campaign_trace_jobs () =
  let t1, ntasks = campaign_trace ~jobs:1 in
  let t4, _ = campaign_trace ~jobs:4 in
  let normalized =
    replace_all ~sub:"campaign parallel" ~by:"campaign sequential"
      (replace_all ~sub:{|"jobs":4|} ~by:{|"jobs":1|} t4)
  in
  check string "jobs=4 trace = jobs=1 trace (mod plan instant)" t1
    normalized;
  check bool "journal lane present" true
    (contains t4 (Printf.sprintf {|"tid":%d|} 998));
  check bool "first task lane present" true (contains t4 {|"tid":1000|});
  check bool "last task lane present" true
    (contains t4 (Printf.sprintf {|"tid":%d|} (1000 + ntasks - 1)));
  check bool "no queue_us in traces" false (contains t4 "queue_us");
  (* determinism at jobs>1: a second parallel run renders byte-equal *)
  let t4', _ = campaign_trace ~jobs:4 in
  check string "jobs=4 trace reproducible" t4 t4'

let tests =
  [ Alcotest.test_case "no perturbation (403.gcc)" `Quick
      (test_no_perturbation "403.gcc");
    Alcotest.test_case "no perturbation (473.astar)" `Quick
      (test_no_perturbation "473.astar");
    Alcotest.test_case "exact accounting (403.gcc)" `Quick
      (test_accounting "403.gcc");
    Alcotest.test_case "exact accounting (473.astar)" `Quick
      (test_accounting "473.astar");
    Alcotest.test_case "profile determinism" `Quick test_profile_determinism;
    Alcotest.test_case "profile json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "folded stacks sum to clocks" `Quick test_folded_sums;
    Alcotest.test_case "render shape" `Quick test_render_shape;
    Alcotest.test_case "bench-diff identical" `Quick
      test_bench_diff_identical;
    Alcotest.test_case "bench-diff doctored" `Quick test_bench_diff_doctored;
    Alcotest.test_case "bench-diff threshold" `Quick
      test_bench_diff_threshold;
    Alcotest.test_case "bench-diff missing workload" `Quick
      test_bench_diff_missing_workload;
    Alcotest.test_case "campaign trace golden" `Quick
      test_campaign_trace_golden;
    Alcotest.test_case "campaign trace at jobs>1" `Quick
      test_campaign_trace_jobs ]
