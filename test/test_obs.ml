(* Observability-layer tests: JSON/metrics primitives, golden outputs
   for the Chrome-trace export and the metrics tables, and the two
   engine-level invariants — observation never perturbs the experiment,
   and the recorder's divergence.caseN counters tally the run's sink
   reports. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World
module Obs = Ldx_obs
module E = Obs.Event
module Json = Obs.Json
module Metrics = Obs.Metrics
module Recorder = Obs.Recorder

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let found = ref false in
  for i = 0 to hn - nn do
    if (not !found) && String.sub hay i nn = needle then found := true
  done;
  !found

let count_sub hay needle =
  let hn = String.length hay and nn = String.length needle in
  let c = ref 0 in
  for i = 0 to hn - nn do
    if String.sub hay i nn = needle then incr c
  done;
  !c

(* ------------------------------------------------------------------ *)
(* Json.                                                               *)

let test_json_basics () =
  check string "escaping"
    {|{"s":"a\"b\\c\n\t\u0001","n":null,"t":true,"xs":[1,2.5]}|}
    (Json.to_string
       (Json.Obj
          [ ("s", Json.Str "a\"b\\c\n\t\001");
            ("n", Json.Null);
            ("t", Json.Bool true);
            ("xs", Json.Arr [ Json.Int 1; Json.Float 2.5 ]) ]));
  check string "non-finite floats are null" "[null,null]"
    (Json.to_string (Json.Arr [ Json.Float Float.nan; Json.Float infinity ]))

(* ------------------------------------------------------------------ *)
(* Metrics.                                                            *)

let test_metrics_basics () =
  let m = Metrics.create () in
  Metrics.incr m "b";
  Metrics.incr m "b";
  Metrics.add m "a" 5;
  Metrics.set m "g" 9;
  Metrics.set m "g" 7;
  Metrics.observe m "h" 0;
  Metrics.observe m "h" 1;
  Metrics.observe m "h" 9;
  let snap = Metrics.snapshot m in
  check (Alcotest.list (Alcotest.pair string int)) "sorted counters"
    [ ("a", 5); ("b", 2); ("g", 7) ]
    snap.Metrics.counters;
  check int "absent counter is 0" 0 (Metrics.counter snap "nope");
  let h = List.assoc "h" snap.Metrics.hists in
  check int "hist count" 3 h.Metrics.h_count;
  check int "hist min" 0 h.Metrics.h_min;
  check int "hist max" 9 h.Metrics.h_max;
  (* 0 -> bucket 0, 1 -> bucket 1, 9 -> bucket 4 (1 + floor(log2 9)) *)
  check (Alcotest.list (Alcotest.pair int int)) "log2 buckets"
    [ (0, 1); (1, 1); (4, 1) ]
    h.Metrics.h_buckets;
  check (Alcotest.float 1e-9) "hist mean" (10.0 /. 3.0) (Metrics.hist_mean h)

(* Bucket edges are part of the metrics contract (profiling and the
   percentile tooling read them back): bucket 0 holds all non-positive
   samples, bucket b >= 1 exactly [2^(b-1), 2^b - 1]. *)
let test_bucket_edges () =
  check (Alcotest.pair int int) "bucket 0" (min_int, 0)
    (Metrics.bucket_bounds 0);
  check (Alcotest.pair int int) "bucket 1" (1, 1) (Metrics.bucket_bounds 1);
  check (Alcotest.pair int int) "bucket 4" (8, 15) (Metrics.bucket_bounds 4);
  (* percentile degenerate cases *)
  let h =
    { Metrics.h_count = 0; h_sum = 0; h_min = 0; h_max = 0; h_buckets = [] }
  in
  check bool "empty hist has no percentile" true
    (Metrics.percentile h 50. = None)

let hist_of_samples vs =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "h") vs;
  List.assoc "h" (Metrics.snapshot m).Metrics.hists

(* Property: every observed sample lands in a bucket whose inclusive
   bounds contain it. *)
let prop_bucket_contains =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"log2 bucket bounds contain the sample"
       ~count:500
       QCheck2.Gen.(int_range (-10) (1 lsl 40))
       (fun v ->
          let h = hist_of_samples [ v ] in
          match h.Metrics.h_buckets with
          | [ (b, 1) ] ->
            let lo, hi = Metrics.bucket_bounds b in
            lo <= v && v <= hi
          | _ -> false))

(* Property: [percentile] brackets the true nearest-rank percentile —
   the p-th percentile of the raw samples falls inside the returned
   inclusive range. *)
let prop_percentile_brackets =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"percentile range brackets nearest-rank value"
       ~count:500
       QCheck2.Gen.(
         pair
           (list_size (int_range 1 40) (int_range 0 100_000))
           (float_range 0. 100.))
       (fun (vs, p) ->
          let h = hist_of_samples vs in
          match Metrics.percentile h p with
          | None -> false
          | Some (lo, hi) ->
            let sorted = List.sort compare vs in
            let n = List.length sorted in
            let rank =
              max 1 (min n (int_of_float (ceil (p /. 100. *. float_of_int n))))
            in
            let v = List.nth sorted (rank - 1) in
            lo <= v && v <= hi))

(* ------------------------------------------------------------------ *)
(* Golden: Chrome trace export of a tiny synthetic dual run.           *)

let synthetic_events =
  [ E.Phase_begin E.Master_run;
    E.Syscall
      { side = E.Master; tid = 0; sys = "recv"; site = 3; pos = "<2>";
        ts = 50; dur = 40 };
    E.Phase_end E.Master_run;
    E.Phase_begin E.Slave_run;
    E.Syscall
      { side = E.Slave; tid = 0; sys = "recv"; site = 3; pos = "<2>";
        ts = 90; dur = 40 };
    E.Couple
      { tid = 0; pos = "<2>"; decision = E.D_copied; sink = false;
        master_sys = Some "recv"; slave_sys = Some "recv"; master_ts = 50;
        slave_ts = 90 };
    E.Phase_end E.Slave_run ]

let trace_golden =
  {|{"displayTimeUnit":"ns","otherData":{},"traceEvents":[{"name":"process_name","ph":"M","pid":0,"args":{"name":"engine"}},{"name":"process_name","ph":"M","pid":1,"args":{"name":"master"}},{"name":"process_name","ph":"M","pid":2,"args":{"name":"slave"}},{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"thread 0"}},{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"thread 0"}},{"name":"thread_name","ph":"M","pid":2,"tid":0,"args":{"name":"thread 0"}},{"name":"master-run","cat":"phase","ph":"B","ts":0,"pid":0,"tid":0},{"name":"recv","cat":"syscall","ph":"X","ts":10,"pid":1,"tid":0,"dur":40,"args":{"site":3,"pos":"<2>"}},{"name":"master-run","cat":"phase","ph":"E","ts":50,"pid":0,"tid":0},{"name":"slave-run","cat":"phase","ph":"B","ts":50,"pid":0,"tid":0},{"name":"recv","cat":"syscall","ph":"X","ts":50,"pid":2,"tid":0,"dur":40,"args":{"site":3,"pos":"<2>"}},{"name":"recv","cat":"couple","ph":"s","ts":50,"pid":1,"tid":0,"id":1,"args":{"pos":"<2>"}},{"name":"recv","cat":"couple","ph":"f","ts":90,"pid":2,"tid":0,"id":1,"bp":"e","args":{"pos":"<2>"}},{"name":"slave-run","cat":"phase","ph":"E","ts":90,"pid":0,"tid":0}]}|}

let test_trace_golden () =
  check string "chrome trace JSON" trace_golden
    (Obs.Chrome_trace.to_string synthetic_events)

(* ------------------------------------------------------------------ *)
(* Golden: metrics tables.                                             *)

let table_golden =
  "## Overhead accounting (Fig. 6 inputs)\n\n\
   | side   | cycles | steps | syscalls | cnt instrs | cnt share |\n\
   |--------|--------|-------|----------|------------|-----------|\n\
   | master |    120 |    60 |        0 |          6 |    10.00% |\n\
   | slave  |      0 |     0 |        0 |          0 |     0.00% |\n\n\
   > wall cycles (two-CPU max): 130\n\
   > cnt share = counter-maintenance instructions / executed steps; the \
   Fig. 6 overhead ratio is dual wall cycles / native cycles (see \
   `ldx_run --metrics` docs in README.md).\n\n\
   ## Metrics: counters and gauges\n\n\
   | counter           | value | meaning                                             |\n\
   |-------------------|-------|-----------------------------------------------------|\n\
   | divergence.case3  |     1 | aligned sink, different parameters (paper case 3)   |\n\
   | engine.copies     |     4 | coupled outcomes the slave consumed                 |\n\
   | master.cnt_instrs |     6 | counter-maintenance instructions (Fig. 6 numerator) |\n\
   | master.cycles     |   120 |                                                     |\n\
   | master.steps      |    60 |                                                     |\n\
   | run.wall_cycles   |   130 | max of the two clocks (virtual two-CPU wall time)   |\n\n\
   ## Metrics: histograms\n\n\
   | histogram  | count |  mean | min | max |\n\
   |------------|-------|-------|-----|-----|\n\
   | couple_lag |     2 | 21.50 |   3 |  40 |\n\n\
   > dyn_cnt.*: dynamic counter value at each syscall (Table 1); \
   couple_lag: slave clock minus producing master stamp at each copy.\n"

let test_metrics_table_golden () =
  let m = Metrics.create () in
  Metrics.incr m "divergence.case3";
  Metrics.add m "engine.copies" 4;
  Metrics.set m "master.cycles" 120;
  Metrics.set m "master.steps" 60;
  Metrics.set m "master.cnt_instrs" 6;
  Metrics.set m "run.wall_cycles" 130;
  Metrics.observe m "couple_lag" 3;
  Metrics.observe m "couple_lag" 40;
  check string "metrics tables" table_golden
    (Ldx_report.Obs_report.render (Metrics.snapshot m))

(* ------------------------------------------------------------------ *)
(* Engine integration: the Fig. 2 title leak as recorded fixture.      *)

let fig2_src =
  {| fn s_raise(contract) {
       let fd = open(contract);
       let data = read(fd, 100);
       return atoi(data);
     }
     fn m_raise(salary) {
       let r = s_raise("/etc/contract_mgr");
       if (salary > 5000) {
         let fd = creat("/tmp/seniors");
         write(fd, itoa(salary));
       }
       return r + 2;
     }
     fn main() {
       let sock = socket("hr");
       let name = recv(sock);
       let title = recv(sock);
       let raise = 0;
       if (title == "STAFF") {
         raise = s_raise("/etc/contract_staff");
       } else {
         raise = m_raise(6000);
         let dept = recv(sock);
         if (dept == "SALES") { raise = raise + 1; }
       }
       send(sock, name);
       send(sock, itoa(raise));
     } |}

let fig2_world =
  World.(
    empty
    |> with_file "/etc/contract_staff" "3"
    |> with_file "/etc/contract_mgr" "5"
    |> with_dir "/tmp"
    |> with_endpoint "hr" [ "alice"; "STAFF"; "ENG" ])

let fig2_config =
  { Engine.default_config with
    Engine.sources = [ Engine.source ~sys:"recv" ~nth:2 () ];
    sinks = Engine.Network_outputs }

let recorded_fig2 =
  lazy
    (let rc = Recorder.create () in
     let r =
       Engine.run_source ~config:fig2_config ~obs:(Recorder.sink rc) fig2_src
         fig2_world
     in
     (r, rc))

(* Observation must never perturb the experiment: the whole result —
   reports, trace, summaries, every counter — is identical with no
   sink, with the noop sink, and with a recording sink. *)
let test_observation_is_free () =
  let bare = Engine.run_source ~config:fig2_config fig2_src fig2_world in
  let noop =
    Engine.run_source ~config:fig2_config ~obs:Obs.Sink.noop fig2_src
      fig2_world
  in
  let recorded, _ = Lazy.force recorded_fig2 in
  check bool "noop sink: identical result" true (bare = noop);
  check bool "recording sink: identical result" true (bare = recorded);
  check string "byte-identical sink reports"
    (String.concat "\n" (List.map Engine.report_to_string bare.Engine.reports))
    (String.concat "\n"
       (List.map Engine.report_to_string recorded.Engine.reports))

(* The recorder's divergence.caseN counters tally the run's reports. *)
let test_case_tally_matches_reports () =
  let r, rc = Lazy.force recorded_fig2 in
  let snap = Recorder.snapshot rc in
  let tally n =
    List.length
      (List.filter
         (fun (rep : Engine.sink_report) ->
            Engine.case_of_kind rep.Engine.kind = n)
         r.Engine.reports)
  in
  check int "case 1" (tally 1) (Metrics.counter snap "divergence.case1");
  check int "case 2" (tally 2) (Metrics.counter snap "divergence.case2");
  check int "case 3" (tally 3) (Metrics.counter snap "divergence.case3");
  check bool "fig2 title leak is a case-3 report" true (tally 3 >= 1);
  check int "master syscall gauge" r.Engine.master.Engine.syscalls
    (Metrics.counter snap "master.syscalls");
  check int "slave syscall gauge" r.Engine.slave.Engine.syscalls
    (Metrics.counter snap "slave.syscalls");
  check int "wall cycles = max of clocks"
    (max r.Engine.master.Engine.cycles r.Engine.slave.Engine.cycles)
    (Metrics.counter snap "run.wall_cycles")

(* The exported trace of a real run has the two process tracks and at
   least one flow arrow linking a coupled syscall pair. *)
let test_trace_shape_real_run () =
  let _, rc = Lazy.force recorded_fig2 in
  let s = Obs.Chrome_trace.to_string (Recorder.events rc) in
  check bool "engine track" true
    (contains s {|"pid":0,"args":{"name":"engine"}|});
  check bool "master track" true
    (contains s {|"pid":1,"args":{"name":"master"}|});
  check bool "slave track" true
    (contains s {|"pid":2,"args":{"name":"slave"}|});
  let starts = count_sub s {|"ph":"s"|} and fins = count_sub s {|"ph":"f"|} in
  check bool "at least one flow arrow" true (starts >= 1);
  check int "every flow start has its finish" starts fins;
  check int "phase spans balance" (count_sub s {|"ph":"B"|})
    (count_sub s {|"ph":"E"|});
  check bool "divergence instant present" true
    (contains s {|"cat":"divergence"|})

let tests =
  [ Alcotest.test_case "json basics" `Quick test_json_basics;
    Alcotest.test_case "metrics basics" `Quick test_metrics_basics;
    Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
    prop_bucket_contains;
    prop_percentile_brackets;
    Alcotest.test_case "chrome trace golden" `Quick test_trace_golden;
    Alcotest.test_case "metrics table golden" `Quick test_metrics_table_golden;
    Alcotest.test_case "observation is free" `Quick test_observation_is_free;
    Alcotest.test_case "case tally matches reports" `Quick
      test_case_tally_matches_reports;
    Alcotest.test_case "trace shape (real run)" `Quick
      test_trace_shape_real_run ]
