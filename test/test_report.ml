(* Experiment-suite smoke tests: every table/figure renders, with the
   headline relations from the paper asserted on the live corpus —
   plus byte-exact goldens for the Table and Trace_view renderers. *)

module Experiments = Ldx_report.Experiments
module Table = Ldx_report.Table
module Trace_view = Ldx_report.Trace_view
module Registry = Ldx_workloads.Registry
module Engine = Ldx_core.Engine
module Sval = Ldx_osim.Sval
module World = Ldx_osim.World

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let found = ref false in
  for i = 0 to hn - nn do
    if (not !found) && String.sub hay i nn = needle then found := true
  done;
  !found

let test_table1_shape () =
  let t = Experiments.table1 () in
  check int "28 rows" 28 (List.length t.Table.rows);
  check bool "renders" true (String.length (Table.render t) > 0)

let test_fig6_overheads_low () =
  let data = Experiments.fig6_data () in
  let same = List.map (fun d -> d.Experiments.f6_same) data in
  let muts = List.map (fun d -> d.Experiments.f6_mutated) data in
  (* the headline claim: single-digit-percent mean overheads, and the
     mutated runs are not meaningfully costlier than the identical runs *)
  check bool "same-input mean < 15%" true (Table.mean same < 0.15);
  check bool "mutated mean < 15%" true (Table.mean muts < 0.15);
  List.iter
    (fun d ->
       check bool
         (d.Experiments.f6_name ^ " overhead sane")
         true
         (d.Experiments.f6_same >= 0.0 && d.Experiments.f6_same < 0.60))
    data

let test_table3_relations () =
  (* LibDFT <= TaintGrind per program (the library-modelling gap), and
     LDX >= TaintGrind in total *)
  let rows = List.map Experiments.table3_row Registry.all in
  List.iter
    (fun ((w : Ldx_workloads.Workload.t),
          (tg : Ldx_taint.Tracker.result),
          (ld : Ldx_taint.Tracker.result), _) ->
       check bool
         (w.Ldx_workloads.Workload.name ^ ": libdft <= taintgrind")
         true
         (ld.Ldx_taint.Tracker.tainted_sinks
          <= tg.Ldx_taint.Tracker.tainted_sinks))
    rows;
  let total f = List.fold_left (fun a r -> a + f r) 0 rows in
  let tg = total (fun (_, (t : Ldx_taint.Tracker.result), _, _) ->
      t.Ldx_taint.Tracker.tainted_sinks) in
  let ld = total (fun (_, _, (t : Ldx_taint.Tracker.result), _) ->
      t.Ldx_taint.Tracker.tainted_sinks) in
  let ldx = total (fun (_, _, _, (r : Ldx_core.Engine.result)) ->
      r.Ldx_core.Engine.tainted_sinks) in
  check bool "ldx > taintgrind > libdft in total" true (ldx > tg && tg > ld);
  (* every attack in the vulnerable set detected by LDX *)
  List.iter
    (fun ((w : Ldx_workloads.Workload.t), _, _, (r : Ldx_core.Engine.result)) ->
       if w.Ldx_workloads.Workload.category = Ldx_workloads.Workload.Vulnerable
       then
         check bool (w.Ldx_workloads.Workload.name ^ " attack caught") true
           r.Ldx_core.Engine.leak)
    rows

let test_table4_small () =
  let t = Experiments.table4 ~runs:5 () in
  check int "5 rows" 5 (List.length t.Table.rows);
  check bool "renders" true (contains (Table.render t) "Apache")

let test_cases_render () =
  let gcc = Experiments.case_gcc () in
  check bool "gcc: LDX leak" true (contains gcc "leak=true");
  check bool "gcc: taint engines blind" true (contains gcc "tainted sinks=0");
  let ff = Experiments.case_firefox () in
  check bool "firefox: LDX leak" true (contains ff "leak=true")

let test_mutation_table () =
  let t = Experiments.mutation_study () in
  check int "5 strategies" 5 (List.length t.Table.rows);
  (* off-by-one detects everything the others do *)
  match t.Table.rows with
  | (_ :: off :: _) :: _ ->
    check bool "off-by-one full marks" true (contains off "11")
  | _ -> Alcotest.fail "unexpected row shape"

let test_fp_check () =
  let t = Experiments.fp_check () in
  check int "4 rows" 4 (List.length t.Table.rows);
  List.iter
    (fun row ->
       check bool "attack detected" true (contains (List.nth row 1) "attack");
       check bool "benign silent" true (contains (List.nth row 2) "silent"))
    t.Table.rows

let test_ablations_render () =
  check bool "A1" true
    (String.length (Table.render (Experiments.ablation_alignment ())) > 0);
  let a2 = Table.render (Experiments.ablation_loops ()) in
  check bool "A2 shows false positives without reset" true
    (contains a2 "leak=true")

(* ------------------------------------------------------------------ *)
(* Renderer goldens: byte-exact expected output, so padding/alignment
   regressions can't slip through the substring-based smoke tests.      *)

let test_table_render_golden () =
  let t =
    Table.make ~title:"Demo table"
      ~headers:[ "Program"; "Overhead"; "Leak" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right ]
      ~notes:[ "first note"; "second note" ]
      [ [ "Apache"; "6.08%"; "yes" ]; [ "mcf"; "0.75%"; "no" ] ]
  in
  check string "table golden"
    "## Demo table\n\n\
     | Program | Overhead | Leak |\n\
     |---------|----------|------|\n\
     | Apache  |    6.08% |  yes |\n\
     | mcf     |    0.75% |   no |\n\n\
     > first note\n\
     > second note\n"
    (Table.render t)

let test_trace_view_golden () =
  let e pos action master slave =
    { Engine.t_pos = pos; t_action = action; t_master = master;
      t_slave = slave }
  in
  let entries =
    [ e "<1>" Engine.T_copied (Some ("recv", [ Sval.I 3 ]))
        (Some ("recv", [ Sval.I 3 ]));
      e "<2>" Engine.T_sink_match
        (Some ("send", [ Sval.I 3; Sval.S "hi" ]))
        (Some ("send", [ Sval.I 3; Sval.S "hi" ]));
      e "<3>" Engine.T_args_differ
        (Some ("send", [ Sval.S "a" ]))
        (Some ("send", [ Sval.S "b" ]));
      e "<4>" Engine.T_path_diff (Some ("read", [])) (Some ("time", []));
      e "<5>" Engine.T_master_only (Some ("write", [ Sval.I 1 ])) None;
      e "<6>" Engine.T_slave_only None (Some ("print", [ Sval.S "x" ]));
      e "<7>" Engine.T_decoupled None (Some ("send", [ Sval.I 9 ])) ]
  in
  check string "trace golden"
    "pos  master        | slave          [action]\n\
     ---  ------------- | -------------  [--]\n\
     <1>  recv(3)       | recv(3)        [copied]\n\
     <2>  send(3, \"hi\") | send(3, \"hi\")  [sink==]\n\
     <3>  send(\"a\")     | send(\"b\")      [args-differ]\n\
     <4>  read()        | time()         [path-diff]\n\
     <5>  write(1)      |                [master-only]\n\
     <6>                | print(\"x\")     [slave-only]\n\
     <7>                | send(9)        [decoupled]\n"
    (Trace_view.render entries)

(* End-to-end golden on a THREADED program: two workers recv a source
   each, the slave's mutated sends surface as args-differ then
   decoupled, and the untainted epilogue stays aligned. *)
let threaded_src = {|
fn worker(wid) {
  let s = socket("in");
  let v = recv(s);
  lock(1);
  send(s, "r" + itoa(wid) + upper(v));
  unlock(1);
  return 0;
}
fn main() {
  let t1 = spawn(@worker, 1);
  let t2 = spawn(@worker, 2);
  join(t1); join(t2);
  print("done\n");
}
|}

let test_trace_view_threaded_golden () =
  let ast = Ldx_lang.Parser.parse_exn threaded_src in
  let prog = Ldx_cfg.Lower.lower_program ast in
  let prog, _ = Ldx_instrument.Counter.instrument prog in
  let world = World.(empty |> with_endpoint "in" [ "ab"; "cd" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs }
  in
  check string "threaded trace golden"
    "pos  master          | slave            [action]\n\
     ---  --------------- | ---------------  [--]\n\
     <1>  socket(\"in\")    | socket(\"in\")     [copied]\n\
     <2>  recv(3)         | recv(3)          [copied]\n\
     <1>  socket(\"in\")    | socket(\"in\")     [copied]\n\
     <2>  recv(4)         | recv(4)          [copied]\n\
     <4>  send(3, \"r1AB\") | send(3, \"r1BC\")  [args-differ]\n\
     <4>  send(4, \"r2CD\") | send(4, \"r2DE\")  [decoupled]\n\
     <5>  print(\"done\\n\") | print(\"done\\n\")  [copied]\n"
    (Trace_view.side_by_side ~config prog world)

let tests =
  [ Alcotest.test_case "table1 shape" `Quick test_table1_shape;
    Alcotest.test_case "table render golden" `Quick test_table_render_golden;
    Alcotest.test_case "trace view golden" `Quick test_trace_view_golden;
    Alcotest.test_case "trace view threaded golden" `Quick
      test_trace_view_threaded_golden;
    Alcotest.test_case "fig6 overheads low" `Quick test_fig6_overheads_low;
    Alcotest.test_case "table3 relations" `Quick test_table3_relations;
    Alcotest.test_case "table4 small" `Quick test_table4_small;
    Alcotest.test_case "case studies render" `Quick test_cases_render;
    Alcotest.test_case "mutation table" `Quick test_mutation_table;
    Alcotest.test_case "fp check" `Quick test_fp_check;
    Alcotest.test_case "ablations render" `Quick test_ablations_render ]
