(* lib/store: checksummed journal records, torn-write recovery, atomic
   checkpoint + append discipline, fingerprints.

   - record round-trip: checkpoint + appends load back verbatim;
   - torn tails: a file cut mid-record (or with a flipped checksum
     byte) loses exactly the damaged suffix, never the valid prefix;
   - manifest damage is a hard error (it is only ever written by an
     atomic rename, so corruption there is not a torn append);
   - fingerprints are length-prefixed (part boundaries matter). *)

module Store = Ldx_store.Store

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let tmp_path () = Filename.temp_file "ldx_test_store" ".journal"

let with_tmp f =
  let path = tmp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let manifest =
  { Store.fingerprint = Store.fingerprint [ "test"; "manifest" ];
    meta = [ ("prog", "deadbeef"); ("note", "two words, a\ttab") ];
    tasks = [ "plain"; "with space"; "with\nnewline" ] }

let read_all path = In_channel.with_open_bin path In_channel.input_all

(* leftmost occurrence of [needle] in [hay] (tests only; no Str dep) *)
let find_sub hay needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length hay then
      Alcotest.failf "substring %S not found" needle
    else if String.sub hay i n = needle then i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Hashing and escaping primitives.                                    *)

(* FNV-1a 64 of the empty string is the offset basis — a known vector
   pins the constants (and thus every checksum in every journal). *)
let test_fnv_known_vector () =
  check string "offset basis" "cbf29ce484222325" (Store.hash_hex "");
  check bool "hashing is not constant" true
    (Store.hash_hex "a" <> Store.hash_hex "b")

let test_escape_round_trip () =
  List.iter
    (fun s ->
       (match Store.unescape (Store.escape s) with
        | Ok s' -> check string "escape round-trips" s s'
        | Error e -> Alcotest.failf "unescape failed on %S: %s" s e);
       check bool "escaped form is one line" false
         (String.contains (Store.escape s) '\n'))
    [ ""; "plain"; "two words"; "line\nbreak"; "tab\there"; {|back\slash|};
      "quote\"quote"; "\x00\x01\xff" ]

let test_fingerprint_boundaries () =
  check bool "part boundaries matter" true
    (Store.fingerprint [ "ab"; "c" ] <> Store.fingerprint [ "a"; "bc" ]);
  check string "equal parts, equal digest"
    (Store.fingerprint [ "x"; "y" ])
    (Store.fingerprint [ "x"; "y" ])

(* ------------------------------------------------------------------ *)
(* Round-trip.                                                         *)

let test_round_trip () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint ~path manifest [ (0, "ok 1 aabb") ] in
  Store.append t 1 "crash 2 dead beef";
  Store.append t 2 "payload with\nnewline";
  Store.close t;
  match Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check string "fingerprint survives" manifest.Store.fingerprint
      l.Store.l_manifest.Store.fingerprint;
    check bool "meta survives in order" true
      (l.Store.l_manifest.Store.meta = manifest.Store.meta);
    check bool "task labels survive in task order" true
      (l.Store.l_manifest.Store.tasks = manifest.Store.tasks);
    check bool "outcomes survive in file order" true
      (l.Store.l_outcomes
       = [ (0, "ok 1 aabb"); (1, "crash 2 dead beef");
           (2, "payload with\nnewline") ]);
    check int "nothing torn" 0 l.Store.l_torn

(* Checkpointing again with more outcomes atomically replaces the file
   (the heal-the-tail move resume performs). *)
let test_re_checkpoint_replaces () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint ~path manifest [ (0, "a") ] in
  Store.close t;
  let t = Store.checkpoint ~path manifest [ (0, "a"); (1, "b") ] in
  Store.append t 2 "c";
  Store.close t;
  match Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check bool "second checkpoint won" true
      (l.Store.l_outcomes = [ (0, "a"); (1, "b"); (2, "c") ])

(* ------------------------------------------------------------------ *)
(* Torn writes.                                                        *)

(* Cutting the file at EVERY byte position inside the journal section
   must recover exactly the records whose final newline made it to
   disk — and report the cut via [l_torn] whenever a partial record
   remains. *)
let test_torn_tail_every_cut () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint ~path manifest [] in
  Store.append t 0 "first";
  Store.append t 1 "second";
  Store.close t;
  let text = read_all path in
  (* everything the checkpoint wrote ends where the first append begins *)
  let journal_start = find_sub text "\no " + 1 in
  let boundary_after n =
    (* byte offset just past the [n]th journal record's newline *)
    let rec skip i left =
      if left = 0 then i
      else skip (String.index_from text i '\n' + 1) (left - 1)
    in
    skip journal_start n
  in
  for cut = journal_start to String.length text do
    let sub = tmp_path () in
    Fun.protect
      ~finally:(fun () -> try Sys.remove sub with Sys_error _ -> ())
      (fun () ->
         Out_channel.with_open_bin sub (fun oc ->
             output_string oc (String.sub text 0 cut));
         match Store.load ~path:sub with
         | Error e -> Alcotest.failf "cut at %d: %s" cut e
         | Ok l ->
           (* a record survives iff every byte except (at most) its
              trailing newline made it to disk — the checksum decides *)
           let complete =
             if cut >= boundary_after 2 - 1 then 2
             else if cut >= boundary_after 1 - 1 then 1
             else 0
           in
           check int
             (Printf.sprintf "cut at %d keeps complete records" cut)
             complete
             (List.length l.Store.l_outcomes);
           (* a partial (checksum-failing) record on disk is reported *)
           let clean =
             cut = journal_start
             || cut >= boundary_after 1 - 1 && cut <= boundary_after 1
             || cut >= boundary_after 2 - 1
           in
           check bool
             (Printf.sprintf "cut at %d reports tearing iff mid-record" cut)
             (not clean)
             (l.Store.l_torn > 0))
  done

(* A checksum mismatch (bit rot, not truncation) also drops the record
   and everything after it — the file stops being trustworthy at the
   first bad checksum. *)
let test_corrupt_record_drops_suffix () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint ~path manifest [] in
  Store.append t 0 "first";
  Store.append t 1 "second";
  Store.append t 2 "third";
  Store.close t;
  let text = read_all path in
  (* flip one payload byte of the SECOND journal record *)
  let i = find_sub text "second" in
  let b = Bytes.of_string text in
  Bytes.set b i 'S';
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (Bytes.to_string b));
  match Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check bool "only the record before the damage survives" true
      (l.Store.l_outcomes = [ (0, "first") ]);
    check int "damaged record and its suffix counted torn" 2 l.Store.l_torn

(* Manifest damage is NOT torn-tail recovery: the manifest comes from
   an atomic checkpoint, so a bad checksum there is real corruption. *)
let test_corrupt_manifest_is_error () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint ~path manifest [ (0, "x") ] in
  Store.close t;
  let text = read_all path in
  let i = find_sub text "plain" in
  let b = Bytes.of_string text in
  Bytes.set b i 'P';
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (Bytes.to_string b));
  (match Store.load ~path with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected Error on a corrupt task record");
  (* and a wrong header is rejected outright *)
  Out_channel.with_open_bin path (fun oc ->
      output_string oc ("# ldx-store/999\n" ^ text));
  match Store.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error on an unknown header"

let test_append_after_close_rejected () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint ~path manifest [] in
  Store.close t;
  match Store.append t 0 "late" with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* v2: lease-queue journals.                                           *)

let v2_entries =
  [ Store.Lease { index = 0; owner = "w1"; epoch = 0; deadline_us = 500 };
    Store.Heartbeat { owner = "w1"; deadline_us = 900 };
    Store.Outcome { index = 0; payload = "ok 1 aa" };
    Store.Release { index = 1; owner = "w2"; epoch = 3 };
    Store.Outcome { index = 1; payload = "with\nnewline" } ]

let test_v2_round_trip () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint_entries ~path manifest [ List.hd v2_entries ] in
  List.iter (Store.append_entry t) (List.tl v2_entries);
  Store.close t;
  match Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check int "v2 header detected" 2 l.Store.l_version;
    check bool "entries survive in file order" true
      (l.Store.l_entries = v2_entries);
    check bool "l_outcomes is the Outcome projection" true
      (l.Store.l_outcomes = [ (0, "ok 1 aa"); (1, "with\nnewline") ]);
    check int "nothing torn" 0 l.Store.l_torn

(* v1 files still load as version 1, and lease-queue records cannot be
   appended to them (they would be invisible to v1 readers). *)
let test_v1_rejects_lease_entries () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint ~path manifest [] in
  Fun.protect ~finally:(fun () -> Store.close t) @@ fun () ->
  (match Store.load ~path with
   | Error e -> Alcotest.fail e
   | Ok l -> check int "v1 header detected" 1 l.Store.l_version);
  match
    Store.append_entry t
      (Store.Lease { index = 0; owner = "w"; epoch = 0; deadline_us = 1 })
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Multi-writer tear discipline: damage in the MIDDLE of a v2 journal
   (a worker SIGKILLed mid-write, peers kept appending) loses exactly
   the damaged record — v1's drop-the-suffix rule would throw away the
   valid records after it, which other live writers own. *)
let test_v2_damage_drops_record_not_suffix () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint_entries ~path manifest [] in
  List.iter (Store.append_entry t) v2_entries;
  Store.close t;
  let text = read_all path in
  let i = find_sub text "w2" in
  let b = Bytes.of_string text in
  Bytes.set b i 'W';
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (Bytes.to_string b));
  match Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check int "exactly the damaged record is torn" 1 l.Store.l_torn;
    check bool "records after the damage survive" true
      (l.Store.l_entries
       = List.filter (fun e -> e <> List.nth v2_entries 3) v2_entries)

(* A killed writer's half-line is terminated by the next appender's
   leading newline, so it fails its checksum in isolation. *)
let test_v2_half_line_isolated () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint_entries ~path manifest [] in
  Store.append_entry t
    (Store.Lease { index = 0; owner = "w1"; epoch = 0; deadline_us = 9 });
  Store.close t;
  (* a peer died mid-write: no trailing newline *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "\nl 0123456789abcdef 1 w";
  close_out oc;
  (* a healthy peer appends after it, leading newline first *)
  let line =
    Store.entry_line
      (Store.Outcome { index = 0; payload = "done" })
  in
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc ("\n" ^ line);
  close_out oc;
  match Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check int "the half-line alone is torn" 1 l.Store.l_torn;
    check bool "both healthy records survive" true
      (l.Store.l_entries
       = [ Store.Lease { index = 0; owner = "w1"; epoch = 0; deadline_us = 9 };
           Store.Outcome { index = 0; payload = "done" } ])

let test_entry_line_rejects_spacey_owner () =
  match
    Store.entry_line
      (Store.Lease { index = 0; owner = "two words"; epoch = 0;
                     deadline_us = 0 })
  with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ?sync is a durability knob, not a format change: a synced store
   loads back exactly like an unsynced one. *)
let test_sync_smoke () =
  with_tmp @@ fun path ->
  let t = Store.checkpoint_entries ~path ~sync:true manifest [] in
  Store.append_entry t (Store.Outcome { index = 0; payload = "ok" });
  Store.close t;
  match Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check bool "synced store loads back" true
      (l.Store.l_outcomes = [ (0, "ok") ] && l.Store.l_torn = 0)

let tests =
  [ Alcotest.test_case "fnv-1a known vector" `Quick test_fnv_known_vector;
    Alcotest.test_case "escape round-trips payloads" `Quick
      test_escape_round_trip;
    Alcotest.test_case "fingerprint part boundaries matter" `Quick
      test_fingerprint_boundaries;
    Alcotest.test_case "checkpoint + append round-trip" `Quick
      test_round_trip;
    Alcotest.test_case "re-checkpoint atomically replaces" `Quick
      test_re_checkpoint_replaces;
    Alcotest.test_case "torn tail recovered at every cut point" `Quick
      test_torn_tail_every_cut;
    Alcotest.test_case "corrupt record drops its suffix" `Quick
      test_corrupt_record_drops_suffix;
    Alcotest.test_case "corrupt manifest is a hard error" `Quick
      test_corrupt_manifest_is_error;
    Alcotest.test_case "append after close rejected" `Quick
      test_append_after_close_rejected;
    Alcotest.test_case "v2 entry round-trip" `Quick test_v2_round_trip;
    Alcotest.test_case "v1 rejects lease entries" `Quick
      test_v1_rejects_lease_entries;
    Alcotest.test_case "v2 damage drops the record, not the suffix" `Quick
      test_v2_damage_drops_record_not_suffix;
    Alcotest.test_case "v2 half-written line is isolated" `Quick
      test_v2_half_line_isolated;
    Alcotest.test_case "entry_line rejects owners with spaces" `Quick
      test_entry_line_rejects_spacey_owner;
    Alcotest.test_case "sync mode loads back identically" `Quick
      test_sync_smoke ]
