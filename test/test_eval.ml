(* Evaluator unit tests: every builtin, binop semantics, trap paths. *)

module Eval = Ldx_vm.Eval
module Value = Ldx_vm.Value
open Ldx_lang

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

let b name args = Eval.apply_builtin name args
let vi n = Value.Int n
let vs s = Value.Str s

let expect_int msg expected v =
  match v with
  | Value.Int n -> check int msg expected n
  | _ -> Alcotest.failf "%s: expected int" msg

let expect_str msg expected v =
  match v with
  | Value.Str s -> check string msg expected s
  | _ -> Alcotest.failf "%s: expected string" msg

let traps f =
  match f () with
  | exception Value.Trap _ -> true
  | _ -> false

let test_itoa_atoi () =
  expect_str "itoa" "42" (b "itoa" [ vi 42 ]);
  expect_str "itoa neg" "-7" (b "itoa" [ vi (-7) ]);
  expect_int "atoi" 123 (b "atoi" [ vs "123" ]);
  expect_int "atoi neg" (-5) (b "atoi" [ vs "-5" ]);
  expect_int "atoi prefix" 12 (b "atoi" [ vs "12abc" ]);
  expect_int "atoi junk" 0 (b "atoi" [ vs "abc" ]);
  expect_int "atoi empty" 0 (b "atoi" [ vs "" ]);
  expect_int "atoi plus" 8 (b "atoi" [ vs "+8" ])

let test_string_builtins () =
  expect_int "strlen" 5 (b "strlen" [ vs "hello" ]);
  expect_str "substr" "ell" (b "substr" [ vs "hello"; vi 1; vi 3 ]);
  expect_str "substr clamp start" "" (b "substr" [ vs "hi"; vi 9; vi 3 ]);
  expect_str "substr clamp len" "i" (b "substr" [ vs "hi"; vi 1; vi 99 ]);
  expect_int "char_at" 101 (b "char_at" [ vs "hello"; vi 1 ]);
  expect_int "char_at oob" (-1) (b "char_at" [ vs "hi"; vi 5 ]);
  expect_str "chr" "A" (b "chr" [ vi 65 ]);
  expect_int "find hit" 2 (b "find" [ vs "abcdef"; vs "cd" ]);
  expect_int "find miss" (-1) (b "find" [ vs "abc"; vs "zz" ]);
  expect_int "find empty" 0 (b "find" [ vs "abc"; vs "" ]);
  expect_str "upper" "ABC1" (b "upper" [ vs "abc1" ]);
  expect_str "lower" "abc1" (b "lower" [ vs "ABC1" ]);
  expect_int "starts_with yes" 1 (b "starts_with" [ vs "prefix"; vs "pre" ]);
  expect_int "starts_with no" 0 (b "starts_with" [ vs "prefix"; vs "fix" ]);
  expect_str "repeat" "ababab" (b "repeat" [ vs "ab"; vi 3 ]);
  expect_str "repeat zero" "" (b "repeat" [ vs "ab"; vi 0 ])

let test_numeric_builtins () =
  expect_int "min" 2 (b "min" [ vi 5; vi 2 ]);
  expect_int "max" 5 (b "max" [ vi 5; vi 2 ]);
  expect_int "abs" 9 (b "abs" [ vi (-9) ]);
  expect_int "bit set" 1 (b "bit" [ vi 5; vi 2 ]);
  expect_int "bit clear" 0 (b "bit" [ vi 5; vi 1 ]);
  expect_int "bit oob" 0 (b "bit" [ vi 5; vi 99 ])

let test_hash_stable () =
  expect_int "hash deterministic"
    (Eval.string_hash "ldx")
    (b "hash" [ vs "ldx" ]);
  check bool "different inputs differ" true
    (Eval.string_hash "a" <> Eval.string_hash "b")

let test_array_builtins () =
  match b "mkarray" [ vi 3; vi 7 ] with
  | Value.Arr a ->
    check int "len" 3 (Array.length a);
    expect_int "len builtin" 3 (b "len" [ Value.Arr a ]);
    expect_int "init" 7 a.(1)
  | _ -> Alcotest.fail "mkarray"

let test_mkarray_traps () =
  check bool "negative size" true (traps (fun () -> b "mkarray" [ vi (-1); vi 0 ]));
  check bool "huge size" true
    (traps (fun () -> b "mkarray" [ vi 2_000_000; vi 0 ]))

let bin op a bv = Eval.apply_binop op a bv

let test_binops_int () =
  expect_int "add" 7 (bin Ast.Add (vi 3) (vi 4));
  expect_int "sub" (-1) (bin Ast.Sub (vi 3) (vi 4));
  expect_int "mul" 12 (bin Ast.Mul (vi 3) (vi 4));
  expect_int "div" 3 (bin Ast.Div (vi 13) (vi 4));
  expect_int "mod" 1 (bin Ast.Mod (vi 13) (vi 4));
  expect_int "shl" 12 (bin Ast.Shl (vi 3) (vi 2));
  expect_int "shr" 3 (bin Ast.Shr (vi 13) (vi 2));
  expect_int "band" 1 (bin Ast.Band (vi 5) (vi 3));
  expect_int "bor" 7 (bin Ast.Bor (vi 5) (vi 3));
  expect_int "bxor" 6 (bin Ast.Bxor (vi 5) (vi 3));
  expect_int "shl huge" 0 (bin Ast.Shl (vi 1) (vi 100))

let test_binops_string () =
  expect_str "concat" "ab" (bin Ast.Add (vs "a") (vs "b"));
  expect_str "str+int" "x3" (bin Ast.Add (vs "x") (vi 3));
  expect_str "int+str" "3x" (bin Ast.Add (vi 3) (vs "x"));
  expect_int "lt" 1 (bin Ast.Lt (vs "abc") (vs "abd"));
  expect_int "ge" 1 (bin Ast.Ge (vs "b") (vs "a"))

let test_binops_eq () =
  expect_int "int eq" 1 (bin Ast.Eq (vi 3) (vi 3));
  expect_int "str ne" 1 (bin Ast.Ne (vs "a") (vs "b"));
  expect_int "cross-type eq" 0 (bin Ast.Eq (vi 3) (vs "3"));
  (* deep array equality *)
  let a1 = Value.Arr [| vi 1; vs "x" |] in
  let a2 = Value.Arr [| vi 1; vs "x" |] in
  let a3 = Value.Arr [| vi 1; vs "y" |] in
  expect_int "arr eq" 1 (bin Ast.Eq a1 a2);
  expect_int "arr ne" 0 (bin Ast.Eq a1 a3)

let test_binop_traps () =
  check bool "div0" true (traps (fun () -> bin Ast.Div (vi 1) (vi 0)));
  check bool "mod0" true (traps (fun () -> bin Ast.Mod (vi 1) (vi 0)));
  check bool "sub strings" true (traps (fun () -> bin Ast.Sub (vs "a") (vs "b")))

let test_truthiness () =
  check bool "0 falsy" false (Value.truthy (vi 0));
  check bool "empty falsy" false (Value.truthy (vs ""));
  check bool "unit falsy" false (Value.truthy Value.Unit);
  check bool "nonzero truthy" true (Value.truthy (vi (-1)));
  check bool "string truthy" true (Value.truthy (vs "x"));
  check bool "fptr truthy" true (Value.truthy (Value.Fptr "f"))

let test_eval_env () =
  let locals = Hashtbl.create 4 in
  Hashtbl.replace locals "x" (vi 10);
  expect_int "var" 10 (Eval.eval locals (Ast.Var "x"));
  expect_int "expr" 25
    (Eval.eval locals
       (Ast.Binop (Ast.Add, Ast.Var "x",
                   Ast.Binop (Ast.Mul, Ast.Int 3, Ast.Int 5))));
  check bool "unbound traps" true
    (traps (fun () -> Eval.eval locals (Ast.Var "nope")));
  (* string indexing in expressions *)
  Hashtbl.replace locals "s" (vs "xyz");
  expect_int "string index" 121 (Eval.eval locals (Ast.Index (Ast.Var "s", Ast.Int 1)))

(* Regression: builtin "find" used String.sub per candidate offset —
   O(|hay|*|needle|) garbage on a hot path.  The scan must now be
   allocation-free: minor-heap usage must not scale with the haystack.
   (The result box and qcheck bookkeeping allow a small constant.) *)
let test_find_allocation_free () =
  let hay = String.make 200_000 'a' in
  let needle = "ab" in               (* never matches: worst-case scan *)
  let args = [ Value.Str hay; Value.Str needle ] in
  (* warm up so any one-time setup is off the meter *)
  ignore (Eval.apply_builtin "find" args : Value.t);
  let before = Gc.minor_words () in
  let r = Eval.apply_builtin "find" args in
  let allocated = Gc.minor_words () -. before in
  expect_int "no match" (-1) r;
  check bool
    (Printf.sprintf "allocation independent of haystack (%.0f words)"
       allocated)
    true
    (allocated < 1_000.)

let tests =
  [ Alcotest.test_case "itoa/atoi" `Quick test_itoa_atoi;
    Alcotest.test_case "string builtins" `Quick test_string_builtins;
    Alcotest.test_case "numeric builtins" `Quick test_numeric_builtins;
    Alcotest.test_case "hash stable" `Quick test_hash_stable;
    Alcotest.test_case "array builtins" `Quick test_array_builtins;
    Alcotest.test_case "mkarray traps" `Quick test_mkarray_traps;
    Alcotest.test_case "int binops" `Quick test_binops_int;
    Alcotest.test_case "string binops" `Quick test_binops_string;
    Alcotest.test_case "equality" `Quick test_binops_eq;
    Alcotest.test_case "binop traps" `Quick test_binop_traps;
    Alcotest.test_case "truthiness" `Quick test_truthiness;
    Alcotest.test_case "eval env" `Quick test_eval_env;
    Alcotest.test_case "find is allocation-free" `Quick
      test_find_allocation_free ]
