(* Fault injection: per-kind OS semantics, deterministic schedules, and
   the false-positive invariant — the tentpole soundness claim: with no
   configured sources, ANY fault plan yields leak = false, zero sink
   reports and zero divergences, because environment misbehaviour is
   recorded by the master and replayed through the coupling, never
   re-rolled (DESIGN.md "Fault model"). *)

module Engine = Ldx_core.Engine
module Counter = Ldx_instrument.Counter
module Lower = Ldx_cfg.Lower
module World = Ldx_osim.World
module Os = Ldx_osim.Os
module Fault = Ldx_osim.Fault
module Sval = Ldx_osim.Sval
module Net = Ldx_osim.Net
module Gen_minic = Ldx_genprog.Gen_minic

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let str = Alcotest.string

let sval = Alcotest.testable (fun fmt v -> Fmt.string fmt (Sval.to_string v)) Sval.equal

let os_with ?(world = World.empty) plan =
  let os = Os.create world in
  Os.set_faults os (Some plan);
  os

(* ------------------------------------------------------------------ *)
(* Fault kinds at the Os dispatch point.                               *)

let file_world = World.(empty |> with_file "/a" "abcdef")

let test_error_return () =
  let os = os_with ~world:file_world (Fault.plan [ Fault.rule ~sys:"open" (Fault.Error_return (Sval.I (-7))) ]) in
  check sval "open replaced by the injected error" (Sval.I (-7))
    (Os.exec os "open" [ Sval.S "/a" ]);
  check int "one fault injected" 1 (Os.faults_injected os)

let test_short_read () =
  let os = os_with ~world:file_world (Fault.plan [ Fault.rule ~sys:"read" (Fault.Short_read 2) ]) in
  let fd = match Os.exec os "open" [ Sval.S "/a" ] with Sval.I fd -> fd | _ -> assert false in
  check sval "read capped at 2 bytes" (Sval.S "ab")
    (Os.exec os "read" [ Sval.I fd; Sval.I 10 ]);
  (* the file position advanced by the SHORT length: the tail is still
     readable, like a real short read *)
  check sval "next read resumes after the short chunk" (Sval.S "cd")
    (Os.exec os "read" [ Sval.I fd; Sval.I 2 ])

let test_short_recv () =
  let world = World.(empty |> with_endpoint "c" [ "hello" ]) in
  let os = os_with ~world (Fault.plan [ Fault.rule ~sys:"recv" (Fault.Short_read 3) ]) in
  let fd = match Os.exec os "socket" [ Sval.S "c" ] with Sval.I fd -> fd | _ -> assert false in
  check sval "recv truncated to 3 bytes" (Sval.S "hel")
    (Os.exec os "recv" [ Sval.I fd ])

let test_transient () =
  let world = World.(empty |> with_endpoint "c" [ "m1"; "m2" ]) in
  let os = os_with ~world (Fault.plan [ Fault.rule ~sys:"recv" ~nth:1 Fault.Transient ]) in
  let fd = match Os.exec os "socket" [ Sval.S "c" ] with Sval.I fd -> fd | _ -> assert false in
  check sval "first recv fails transiently" (Sval.S "")
    (Os.exec os "recv" [ Sval.I fd ]);
  (* EINTR-style: the syscall did NOT execute, so the message is still
     queued and the retry gets it *)
  check sval "retry receives the undisturbed message" (Sval.S "m1")
    (Os.exec os "recv" [ Sval.I fd ])

let test_drop_recv () =
  let world = World.(empty |> with_endpoint "c" [ "m1"; "m2" ]) in
  let os = os_with ~world (Fault.plan [ Fault.rule ~sys:"recv" ~nth:1 Fault.Drop_message ]) in
  let fd = match Os.exec os "socket" [ Sval.S "c" ] with Sval.I fd -> fd | _ -> assert false in
  check sval "dropped message reads empty" (Sval.S "")
    (Os.exec os "recv" [ Sval.I fd ]);
  (* unlike Transient, the message was consumed on the wire *)
  check sval "next recv gets the SECOND message" (Sval.S "m2")
    (Os.exec os "recv" [ Sval.I fd ])

let test_drop_send () =
  let world = World.(empty |> with_endpoint "c" []) in
  let os = os_with ~world (Fault.plan [ Fault.rule ~sys:"send" Fault.Drop_message ]) in
  let fd = match Os.exec os "socket" [ Sval.S "c" ] with Sval.I fd -> fd | _ -> assert false in
  check sval "send claims full delivery" (Sval.I 4)
    (Os.exec os "send" [ Sval.I fd; Sval.S "data" ]);
  let outbox =
    match Net.find os.Os.net "c" with Some e -> Net.outbox e | None -> []
  in
  check int "nothing reached the endpoint" 0 (List.length outbox)

let test_clock_skew () =
  let honest = Os.create World.empty in
  let skewed = os_with (Fault.plan [ Fault.rule ~sys:"time" (Fault.Clock_skew 100) ]) in
  let t0 = Os.exec honest "time" [] in
  let t1 = Os.exec skewed "time" [] in
  match (t0, t1) with
  | Sval.I a, Sval.I b -> check int "clock advanced by the skew" (a + 100) b
  | _ -> Alcotest.fail "time returned a non-integer"

(* ------------------------------------------------------------------ *)
(* Schedules: nth/site/prob selection and determinism.                 *)

let test_nth_selection () =
  let st = Fault.instantiate (Fault.plan [ Fault.rule ~sys:"recv" ~nth:2 Fault.Drop_message ]) in
  check bool "first occurrence honest" true (Fault.decide st ~sys:"recv" ~site:0 = None);
  check bool "second occurrence faulted" true (Fault.decide st ~sys:"recv" ~site:0 <> None);
  check bool "third occurrence honest again" true (Fault.decide st ~sys:"recv" ~site:0 = None)

let test_site_selection () =
  let st = Fault.instantiate (Fault.plan [ Fault.rule ~sys:"recv" ~site:7 Fault.Transient ]) in
  check bool "other site honest" true (Fault.decide st ~sys:"recv" ~site:3 = None);
  check bool "matching site faulted" true (Fault.decide st ~sys:"recv" ~site:7 <> None)

(* The seeded probability coin is a pure function of (seed, rule,
   occurrence): two instantiations replay the same fate sequence, and
   a ~50% rule actually fires sometimes and spares sometimes. *)
let test_prob_deterministic () =
  let plan = Fault.plan ~seed:42 [ Fault.rule ~sys:"recv" ~prob:50 Fault.Transient ] in
  let fates st = List.init 64 (fun _ -> Fault.decide st ~sys:"recv" ~site:0 <> None) in
  let a = fates (Fault.instantiate plan) in
  let b = fates (Fault.instantiate plan) in
  check bool "identical fate sequences" true (a = b);
  check bool "a 50% rule fires at least once" true (List.mem true a);
  check bool "a 50% rule spares at least once" true (List.mem false a)

(* Os.clone preserves the occurrence counters: a forked process
   continues the schedule where the original was. *)
let test_clone_continues_schedule () =
  let os = os_with (Fault.plan [ Fault.rule ~sys:"time" ~nth:2 Fault.Transient ]) in
  ignore (Os.exec os "time" []);                 (* occurrence 1: honest *)
  let c = Os.clone os in
  check sval "clone's next time call is occurrence 2" (Sval.I (-1))
    (Os.exec c "time" []);
  check sval "original's next time call is occurrence 2 too" (Sval.I (-1))
    (Os.exec os "time" [])

let test_parse_roundtrip () =
  match Fault.parse ~seed:9 "short=2:read@1,drop:recv%50,skew=100:time,error=-3:open#4" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
    check int "four rules" 4 (List.length p.Fault.rules);
    check str "pretty-print survives" "seed=9 short=2:read@1,drop:recv%50,skew=100:time,error=-3:open#4"
      (Fault.to_string p);
    (match Fault.parse ~seed:9 "short=2:read@1,drop:recv%50,skew=100:time,error=-3:open#4" with
     | Ok p2 -> check bool "parse is deterministic" true (p = p2)
     | Error e -> Alcotest.failf "reparse failed: %s" e)

let test_parse_errors () =
  let bad s = match Fault.parse s with Error _ -> true | Ok _ -> false in
  check bool "missing syscall separator rejected" true (bad "drop");
  check bool "unknown action rejected" true (bad "explode:recv");
  check bool "non-integer argument rejected" true (bad "short=x:read")

(* ------------------------------------------------------------------ *)
(* The false-positive invariant (tier-1).                              *)

let instrument src = fst (Counter.instrument (Lower.lower_source src))

(* A program exercising every faultable input class plus output sinks. *)
let chaos_src =
  {| fn main() {
       let s = socket("in");
       let a = atoi(recv(s));
       let b = atoi(recv(s));
       let t = time() & 15;
       let r = rand() & 7;
       let f = open("/a");
       let v = 0;
       if (f >= 0) { v = strlen(read(f, 4)); }
       send(s, itoa(a + b));
       print(itoa(t + r + v));
     } |}

let chaos_world =
  World.(
    empty |> with_file "/a" "abcdef"
    |> with_endpoint "in" [ "31"; "42"; "53" ])

let heavy_plan =
  Fault.plan ~seed:3
    [ Fault.rule ~sys:"recv" ~nth:1 Fault.Drop_message;
      Fault.rule ~sys:"recv" (Fault.Short_read 1);
      Fault.rule ~sys:"read" Fault.Transient;
      Fault.rule ~sys:"open" (Fault.Error_return (Sval.I (-1)));
      Fault.rule ~sys:"time" (Fault.Clock_skew 997);
      Fault.rule ~sys:"send" Fault.Drop_message ]

let no_source_config faults =
  { Engine.default_config with
    Engine.sources = [];
    faults = Some faults }

(* Zero sources + heavy faults => no leak, no reports, no divergences:
   the only delta between master and slave is the (empty) source set,
   so every faulted outcome is copied through the coupling. *)
let test_fp_invariant_heavy () =
  let r =
    Engine.run ~config:(no_source_config heavy_plan)
      (instrument chaos_src) chaos_world
  in
  check bool "no leak" false r.Engine.leak;
  check int "no sink reports" 0 (List.length r.Engine.reports);
  check int "no divergences" 0 r.Engine.syscall_diffs;
  check bool "faults actually fired" true
    (r.Engine.master.Engine.faults_injected > 0);
  (* the coupled slave advances the SAME schedule: its private OS
     consulted the plan on every copied syscall *)
  check int "slave's fault schedule tracked the master's"
    r.Engine.master.Engine.faults_injected
    r.Engine.slave.Engine.faults_injected;
  check str "identical outputs" r.Engine.master.Engine.stdout
    r.Engine.slave.Engine.stdout

(* With a real source configured, fault injection must not mask a real
   leak: the mutated recv still flows to the send sink. *)
let test_faults_do_not_mask_leaks () =
  let config =
    { (no_source_config heavy_plan) with
      Engine.sources = [ Engine.source ~sys:"recv" ~nth:2 () ] }
  in
  let r = Engine.run ~config (instrument chaos_src) chaos_world in
  check bool "the genuine leak is still detected" true r.Engine.leak

(* Dual execution under a fault plan is reproducible end to end. *)
let test_fault_run_deterministic () =
  let run () =
    Engine.run ~config:(no_source_config heavy_plan)
      (instrument chaos_src) chaos_world
  in
  check bool "two faulted runs are byte-identical" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* QCheck sweep: >= 50 random (program, plan) pairs, zero sources.     *)

let qcheck_world =
  World.(
    empty
    |> with_endpoint "in" [ "3"; "14"; "15"; "9"; "2"; "6"; "5"; "35"; "8" ])

let gen_case =
  QCheck2.Gen.pair Gen_minic.gen_program (QCheck2.Gen.int_bound 0x3FFFFFF)

let print_case (p, seed) =
  Printf.sprintf "seed=%d\n%s" seed (Gen_minic.print_program p)

(* For ANY fault plan and zero sources: leak = false, zero reports,
   zero divergences — the acceptance-criterion sweep (>= 50 plans). *)
let prop_fp_invariant ((p, seed) : Ldx_lang.Ast.program * int) =
  let prog, _ = Counter.instrument (Lower.lower_program p) in
  let plan = Fault.random ~rand:(Random.State.make [| seed |]) () in
  let r =
    Engine.run ~config:(no_source_config plan) prog qcheck_world
  in
  (not r.Engine.leak) && r.Engine.reports = [] && r.Engine.syscall_diffs = 0
  && r.Engine.master.Engine.faults_injected
     = r.Engine.slave.Engine.faults_injected

let qtest name count gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)

let tests =
  [ Alcotest.test_case "error return" `Quick test_error_return;
    Alcotest.test_case "short read" `Quick test_short_read;
    Alcotest.test_case "short recv" `Quick test_short_recv;
    Alcotest.test_case "transient failure leaves state intact" `Quick
      test_transient;
    Alcotest.test_case "dropped recv consumes the message" `Quick
      test_drop_recv;
    Alcotest.test_case "dropped send never delivers" `Quick test_drop_send;
    Alcotest.test_case "clock skew" `Quick test_clock_skew;
    Alcotest.test_case "nth occurrence selection" `Quick test_nth_selection;
    Alcotest.test_case "site selection" `Quick test_site_selection;
    Alcotest.test_case "probabilistic rules are seeded-deterministic"
      `Quick test_prob_deterministic;
    Alcotest.test_case "clone continues the fault schedule" `Quick
      test_clone_continues_schedule;
    Alcotest.test_case "spec parse roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "spec parse errors" `Quick test_parse_errors;
    Alcotest.test_case "FP invariant under heavy faults (tier-1)" `Quick
      test_fp_invariant_heavy;
    Alcotest.test_case "faults do not mask real leaks" `Quick
      test_faults_do_not_mask_leaks;
    Alcotest.test_case "faulted dual run deterministic" `Quick
      test_fault_run_deterministic;
    qtest "P15 no sources + any fault plan => no leak" 60 gen_case print_case
      prop_fp_invariant ]
