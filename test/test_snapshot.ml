(* Decouple-point snapshots (lib/snap) and the incremental campaign.

   The core soundness bar: capturing a snapshot at ANY driver-visible
   point must not perturb the captured execution, and restoring it must
   continue to an outcome bit-identical to never having stopped — in
   both VM modes, for sequential and stress programs.  On top of that,
   the campaign's incremental mode (shared prefix once, per-task
   suffixes) must render byte-identical tables to full slave passes at
   any job count, survive journal resume, and reject snapshots from a
   different program/config.  Finally the flat VM's per-block counter
   batching is pinned against recorded engine counters. *)

module Machine = Ldx_vm.Machine
module Driver = Ldx_vm.Driver
module Value = Ldx_vm.Value
module Snap = Ldx_snap.Snap
module Engine = Ldx_core.Engine
module Campaign = Ldx_core.Campaign
module Mutation = Ldx_core.Mutation
module Os = Ldx_osim.Os
module World = Ldx_osim.World
module Sval = Ldx_osim.Sval
module Store = Ldx_store.Store
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry
module Gen_minic = Ldx_genprog.Gen_minic

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let test_world =
  World.(
    empty
    |> with_endpoint "in" [ "3"; "14"; "15"; "9"; "2"; "6"; "5"; "35"; "8" ])

(* ------------------------------------------------------------------ *)
(* A pausable native driver: [Driver.run]'s loop with a stop-at-the-
   k-th-syscall-event hook (the thread left Awaiting, exactly what a
   snapshot captures) and a [?first] re-entry hook that services the
   thread a previous pause skipped.  The blocked list is derived from
   thread statuses on entry, so it survives the capture/restore hop. *)

type tr = (string * Sval.t list * Sval.t * int * int * int) list

let drive ?(pause_at = max_int) ?first (m : Machine.t) :
  [ `Done of tr | `Paused of tr * Machine.thread ] =
  let os = m.Machine.os in
  let trace : tr ref = ref [] in
  let blocked =
    ref
      (List.filter
         (fun th ->
            (match first with Some f -> th != f | None -> true)
            && (match th.Machine.status with
                | Machine.Awaiting p -> Driver.is_thread_op p.Machine.sys
                | _ -> false))
         m.Machine.threads)
  in
  let seen = ref 0 in
  let record sys args result th site =
    trace :=
      (sys, args, result, Machine.counter_of th, site, th.Machine.tid)
      :: !trace
  in
  let service th =
    let p = Machine.pending_of th in
    if Driver.is_thread_op p.Machine.sys then begin
      match
        try Driver.service_thread_op m th p
        with Value.Trap msg ->
          m.Machine.trap <- Some msg;
          m.Machine.finished <- true;
          `Done Value.Unit
      with
      | `Done v ->
        record p.Machine.sys
          (List.map Value.to_sval_safe p.Machine.sysargs)
          (Value.to_sval_safe v) th p.Machine.site;
        Machine.provide_result m th v
      | `Block -> blocked := th :: !blocked
    end
    else begin
      let sargs = List.map Value.to_sval p.Machine.sysargs in
      let r =
        try Os.exec ~site:p.Machine.site os p.Machine.sys sargs
        with Os.Os_error msg -> raise (Value.Trap ("os-error: " ^ msg))
      in
      record p.Machine.sys sargs r th p.Machine.site;
      Machine.provide_result m th (Value.of_sval r)
    end
  in
  (* Retry in tid order: the grant order then depends only on the SET
     of blocked threads, which the post-restore reconstruction above
     recovers exactly (the list order would be lost). *)
  let retry_blocked () =
    let bs =
      List.sort
        (fun a b -> compare a.Machine.tid b.Machine.tid)
        !blocked
    in
    blocked := [];
    let progress = ref false in
    List.iter
      (fun th ->
         match th.Machine.status with
         | Machine.Awaiting p when Driver.is_thread_op p.Machine.sys ->
           (match Driver.service_thread_op m th p with
            | `Done v ->
              progress := true;
              Machine.provide_result m th v
            | `Block -> blocked := th :: !blocked)
         | _ -> ())
      bs;
    !progress
  in
  let paused = ref None in
  let step th =
    (try service th
     with Value.Trap msg ->
       m.Machine.trap <- Some msg;
       m.Machine.finished <- true);
    ignore (retry_blocked ())
  in
  let rec loop () =
    match Machine.run_until_event m with
    | Machine.Ev_syscall th ->
      if !seen >= pause_at then paused := Some th
      else begin
        incr seen;
        step th;
        if not m.Machine.finished then loop ()
      end
    | Machine.Ev_barrier th ->
      Machine.release_barrier m th;
      loop ()
    | Machine.Ev_idle ->
      if retry_blocked () then loop ()
      else begin
        m.Machine.trap <- Some "deadlock: all threads blocked";
        m.Machine.finished <- true
      end
    | Machine.Ev_done -> ()
    | Machine.Ev_trap _ -> ()
  in
  (match first with
   | Some th ->
     step th;
     if not m.Machine.finished then loop ()
   | None -> loop ());
  match !paused with
  | Some th -> `Paused (List.rev !trace, th)
  | None -> `Done (List.rev !trace)

type sobs = {
  o_stdout : string;
  o_trap : string option;
  o_steps : int;
  o_cycles : int;
  o_syscalls : int;
  o_trace : tr;
}

let obs_of (m : Machine.t) trace =
  { o_stdout = Os.stdout_contents m.Machine.os;
    o_trap = m.Machine.trap;
    o_steps = m.Machine.steps;
    o_cycles = m.Machine.cycles;
    o_syscalls = m.Machine.syscalls;
    o_trace = trace }

let fresh_machine ~vm ~seed prog =
  Machine.create ~seed ~vm prog (Os.create test_world)

(* Snapshot-at-random-step round trip: pausing at the k-th syscall,
   capturing, restoring and continuing must be bit-identical to never
   pausing — and the CAPTURED machine, continued afterwards, must be
   too (capture is non-perturbing). *)
let prop_snapshot_roundtrip ~vm (p, seed, k) =
  let prog =
    fst (Ldx_instrument.Counter.instrument (Ldx_cfg.Lower.lower_program p))
  in
  let uninterrupted =
    let m = fresh_machine ~vm ~seed prog in
    match drive m with
    | `Done t -> obs_of m t
    | `Paused _ -> assert false
  in
  let m1 = fresh_machine ~vm ~seed prog in
  match drive ~pause_at:k m1 with
  | `Done t ->
    (* fewer than k syscalls: nothing to pause, the run itself must
       already match *)
    obs_of m1 t = uninterrupted
  | `Paused (prefix, th) ->
    let snap = Snap.capture m1 in
    let m2 = Snap.restore ~fprog:m1.Machine.fprog prog snap in
    let th2 =
      match Machine.find_thread m2 th.Machine.tid with
      | Some t -> t
      | None -> Alcotest.fail "restored machine lost the paused thread"
    in
    let restored =
      match drive ~first:th2 m2 with
      | `Done suffix -> obs_of m2 (prefix @ suffix)
      | `Paused _ -> assert false
    in
    let continued =
      match drive ~first:th m1 with
      | `Done suffix -> obs_of m1 (prefix @ suffix)
      | `Paused _ -> assert false
    in
    restored = uninterrupted && continued = uninterrupted

let with_pause gen =
  QCheck2.Gen.triple gen (QCheck2.Gen.int_range 0 1000)
    (QCheck2.Gen.int_range 0 40)

let print_triple (p, seed, k) =
  Printf.sprintf "seed %d, pause at %d\n%s" seed k (Gen_minic.print_program p)

let qsnap ?(count = 60) name gen ~vm =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:print_triple (with_pause gen)
       (prop_snapshot_roundtrip ~vm))

(* ------------------------------------------------------------------ *)
(* Snapshot identity and the wire form. *)

let paused_snapshot () =
  let prog =
    fst
      (Ldx_instrument.Counter.instrument
         (Ldx_cfg.Lower.lower_source
            "fn main() { let c = socket(\"in\"); let a = recv(c); \
             let b = recv(c); send(c, a); send(c, b); }"))
  in
  let m = fresh_machine ~vm:Machine.Flat ~seed:7 prog in
  match drive ~pause_at:2 m with
  | `Paused (_, _) -> (prog, m)
  | `Done _ -> Alcotest.fail "expected a pause"

let test_capture_deterministic () =
  let _, m = paused_snapshot () in
  let s1 = Snap.capture m in
  let s2 = Snap.capture m in
  check bool "captures of one state are equal" true (Snap.equal s1 s2);
  check string "fingerprints agree" (Snap.fingerprint s1)
    (Snap.fingerprint s2);
  check int "format version" 1 s1.Snap.sp_version

let test_wire_roundtrip () =
  let _, m = paused_snapshot () in
  let s = Snap.capture m in
  let line = Snap.to_string s in
  check bool "wire form is newline-free" false (String.contains line '\n');
  (match Snap.of_string line with
   | Ok s' -> check bool "wire round trip" true (Snap.equal s s')
   | Error e -> Alcotest.fail e);
  match Snap.of_string (line ^ "corrupt") with
  | Ok _ -> Alcotest.fail "corrupt payload accepted"
  | Error _ -> ()

(* The wire form rides an Ldx_store journal record across the process
   boundary: append it as an outcome payload, load the journal back,
   decode an equal snapshot. *)
let test_snapshot_through_store () =
  let _, m = paused_snapshot () in
  let s = Snap.capture m in
  let path = Filename.temp_file "ldx_test_snap" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let manifest =
    { Store.fingerprint = Store.fingerprint [ "snap-store-test" ];
      meta = [];
      tasks = [ "snapshot" ] }
  in
  let store = Store.checkpoint ~path manifest [] in
  Store.append store 0 (Snap.to_string s);
  Store.close store;
  match Store.load ~path with
  | Error e -> Alcotest.fail e
  | Ok l ->
    (match l.Store.l_outcomes with
     | [ (0, payload) ] ->
       (match Snap.of_string payload with
        | Ok s' ->
          check bool "snapshot survives the store" true (Snap.equal s s')
        | Error e -> Alcotest.fail e)
     | _ -> Alcotest.fail "expected exactly one journaled record")

(* ------------------------------------------------------------------ *)
(* Incremental campaigns. *)

let camp_src =
  "fn main() { let fd = open(\"/etc/secret\"); let s = read(fd, 16); \
   close(fd); let c = socket(\"cli\"); let m = recv(c); \
   if (m == s) { send(c, \"yes\"); } else { send(c, \"no\"); } }"

let camp_world =
  World.(
    empty
    |> with_file "/etc/secret" "hunter2"
    |> with_endpoint "cli" [ "hunter2" ])

let camp_config =
  { Engine.default_config with
    Engine.sources = [ Engine.source ~sys:"read" () ];
    sinks = Engine.Network_outputs }

let camp_prog =
  lazy
    (fst
       (Ldx_instrument.Counter.instrument (Ldx_cfg.Lower.lower_source camp_src)))

let camp_params () = Campaign.of_strategies camp_config Mutation.all_strategies

let test_incremental_identity () =
  let prog = Lazy.force camp_prog in
  let params = camp_params () in
  let table incremental jobs =
    Campaign.render
      (Campaign.run ~jobs ~incremental ~config:camp_config prog camp_world
         params)
  in
  let full = table false 1 in
  check string "incremental table at jobs=1" full (table true 1);
  check string "incremental table at jobs=4" full (table true 4);
  check bool "the campaign actually leaks" true
    (let outs =
       Campaign.run ~incremental:true ~config:camp_config prog camp_world
         params
     in
     List.exists (fun o -> (Campaign.result_exn o).Engine.leak) outs)

(* Journal written by a FULL campaign, truncated to two outcomes (a
   kill at a record boundary), resumed with incremental mode on: the
   missing tasks replay as suffixes, and the table is byte-identical —
   incremental is deliberately outside the journal fingerprint. *)
let truncate_journal path keep =
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
  in
  let kept = ref 0 in
  let keep_line l =
    if String.length l = 0 then false
    else if l.[0] = 'o' then (
      incr kept;
      !kept <= keep)
    else true
  in
  let out = List.filter keep_line lines in
  Out_channel.with_open_bin path (fun oc ->
      List.iter
        (fun l ->
           output_string oc l;
           output_char oc '\n')
        out)

let test_resume_incremental () =
  let prog = Lazy.force camp_prog in
  let params = camp_params () in
  let reference =
    Campaign.render
      (Campaign.run ~config:camp_config prog camp_world params)
  in
  let path = Filename.temp_file "ldx_test_incr" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  ignore
    (Campaign.run ~journal:path ~config:camp_config prog camp_world params);
  truncate_journal path 2;
  match
    Campaign.resume ~journal:path ~incremental:true ~config:camp_config prog
      camp_world params
  with
  | Error e -> Alcotest.fail e
  | Ok outs ->
    check string "resumed incremental table" reference (Campaign.render outs)

(* A snapshot carries the fingerprint of (program, world, shared slave
   config); resuming it under anything else must be refused loudly. *)
let test_fingerprint_rejection () =
  let prog = Lazy.force camp_prog in
  let mo = Engine.master_pass camp_config prog camp_world in
  match
    Engine.slave_prefix camp_config ~specs:camp_config.Engine.sources prog
      camp_world mo
  with
  | Engine.Prefix_done _ -> Alcotest.fail "expected a decouple point"
  | Engine.Prefix_paused ss ->
    let other = { camp_config with Engine.slave_seed = 99 } in
    (try
       ignore (Engine.slave_resume other prog camp_world mo ss);
       Alcotest.fail "snapshot from another config was accepted"
     with Invalid_argument _ -> ());
    (* and the same snapshot under the right config still works *)
    let so = Engine.slave_resume camp_config prog camp_world mo ss in
    let r = Engine.finalize_result camp_config mo so in
    check bool "correct-config resume detects the leak" true r.Engine.leak

(* No-perturbation: a campaign without --incremental never touches the
   snapshot layer (snap.* metrics silent), and an incremental campaign
   reports exactly one capture. *)
let test_no_perturbation () =
  let prog = Lazy.force camp_prog in
  let params = camp_params () in
  let metrics incremental =
    let rc = Ldx_obs.Recorder.create () in
    ignore
      (Campaign.run ~obs:(Ldx_obs.Recorder.sink rc) ~incremental
         ~config:camp_config prog camp_world params);
    Ldx_obs.Recorder.snapshot rc
  in
  let off = metrics false in
  check int "no captures without --incremental" 0
    (Ldx_obs.Metrics.counter off "snap.captured");
  check int "no restores without --incremental" 0
    (Ldx_obs.Metrics.counter off "snap.restored");
  let on = metrics true in
  check int "one capture with --incremental" 1
    (Ldx_obs.Metrics.counter on "snap.captured");
  check int "one restore per task" (List.length params)
    (Ldx_obs.Metrics.counter on "snap.restored")

(* ------------------------------------------------------------------ *)
(* Engine-counter pin: the flat VM's per-block cnt/loop batching (and
   any later stepper change) must keep the deterministic counters of
   the fig6/table3 workload runs bit-identical.  Values recorded from
   the seed implementation. *)

let test_counters_pinned () =
  List.iter
    (fun (name, mc, sc, wall, tsys, diffs, sinks, dmax) ->
       let w = Registry.find_exn name in
       let prog, _ = Workload.instrumented w in
       let r =
         Engine.run ~config:(Workload.leak_config w) prog w.Workload.world
       in
       check int (name ^ " master cycles") mc r.Engine.master.Engine.cycles;
       check int (name ^ " slave cycles") sc r.Engine.slave.Engine.cycles;
       check int (name ^ " wall cycles") wall r.Engine.wall_cycles;
       check int (name ^ " total syscalls") tsys r.Engine.total_syscalls;
       check int (name ^ " syscall diffs") diffs r.Engine.syscall_diffs;
       check int (name ^ " tainted sinks") sinks r.Engine.tainted_sinks;
       check int (name ^ " dyn cnt max") dmax r.Engine.dyn_cnt_max)
    [ ("Nginx", 13637, 14053, 14053, 281, 76, 2, 21);
      ("Tnftp", 4900, 4997, 4997, 72, 25, 1, 26);
      ("473.astar", 649514, 787915, 787915, 45, 3, 2, 12) ]

let tests =
  [ qsnap "S1 snapshot round trip (structured, flat)" Gen_minic.gen_program
      ~vm:Machine.Flat;
    qsnap "S2 snapshot round trip (structured, tree)" Gen_minic.gen_program
      ~vm:Machine.Tree;
    qsnap ~count:80 "S3 snapshot round trip (stress, flat)"
      Gen_minic.gen_stress_program ~vm:Machine.Flat;
    qsnap ~count:40 "S4 snapshot round trip (stress, tree)"
      Gen_minic.gen_stress_program ~vm:Machine.Tree;
    qsnap ~count:40 "S5 snapshot round trip (threads, flat)"
      Gen_minic.gen_conc_program ~vm:Machine.Flat;
    Alcotest.test_case "capture is deterministic" `Quick
      test_capture_deterministic;
    Alcotest.test_case "wire form round trips and rejects corruption" `Quick
      test_wire_roundtrip;
    Alcotest.test_case "snapshot rides a store journal" `Quick
      test_snapshot_through_store;
    Alcotest.test_case "incremental campaign tables byte-identical" `Quick
      test_incremental_identity;
    Alcotest.test_case "full journal resumes incrementally" `Quick
      test_resume_incremental;
    Alcotest.test_case "foreign-config snapshot rejected" `Quick
      test_fingerprint_rejection;
    Alcotest.test_case "snapshot layer silent unless asked" `Quick
      test_no_perturbation;
    Alcotest.test_case "engine counters pinned (fig6/table3)" `Quick
      test_counters_pinned ]
