(* Source attribution: which secret does each network message leak?

     dune exec examples/attribution_demo.exe

   A sync agent reads three credentials and talks to two services.  The
   combined dual execution says "something leaks"; the attribution pass
   runs one dual execution per source and maps each flagged sink to the
   credentials it actually depends on. *)

module Engine = Ldx_core.Engine
module Attribute = Ldx_core.Attribute
module World = Ldx_osim.World

let program =
  {| fn read_all(path) {
       let fd = open(path);
       if (fd < 0) { return ""; }
       let d = read(fd, 64);
       close(fd);
       return d;
     }
     fn main() {
       let api_key = read_all("/etc/keys/api");
       let db_pass = read_all("/etc/keys/db");
       let smtp_pass = read_all("/etc/keys/smtp");
       let api = socket("api.example");
       // the API request carries the key outright (data dependence)
       send(api, "auth " + api_key);
       // the DB health probe leaks only WHETHER the password is still
       // the vendor default (a control dependence)
       let db = socket("db.example");
       if (starts_with(db_pass, "default")) { send(db, "probe insecure"); }
       else { send(db, "probe ok"); }
       // the SMTP password is read but never influences any output
       print("sync done\n");
     } |}

let world =
  World.(
    empty
    |> with_dir "/etc" |> with_dir "/etc/keys"
    |> with_file "/etc/keys/api" "AK-123456"
    |> with_file "/etc/keys/db" "default-pw"
    |> with_file "/etc/keys/smtp" "relay-pass"
    |> with_endpoint "api.example" []
    |> with_endpoint "db.example" [])

let () =
  let config =
    { Engine.default_config with
      Engine.sources =
        [ Engine.source ~sys:"read" ~arg:"/etc/keys/api" ();
          Engine.source ~sys:"read" ~arg:"/etc/keys/db" ();
          Engine.source ~sys:"read" ~arg:"/etc/keys/smtp" () ];
      sinks = Engine.Network_outputs }
  in
  (* one combined run: detects leakage but not which key *)
  let combined = Engine.run_source ~config program world in
  Printf.printf "combined run: leak=%b, %d tainted sink(s)\n\n"
    combined.Engine.leak combined.Engine.tainted_sinks;
  (* per-source attribution *)
  let prog = Ldx_cfg.Lower.lower_source program in
  let prog, _ = Ldx_instrument.Counter.instrument prog in
  let attrs = Attribute.per_source ~config prog world in
  print_string (Attribute.render attrs);
  Printf.printf
    "\nReading: the api key flows straight into its request; the db \
     password\ninfluences the probe only through a branch (taint \
     tracking would miss it);\nthe smtp password reaches nothing.\n"
