(* Information-leak detection on the paper's running example (Fig. 2/3).

     dune exec examples/leak_detection.exe

   An HR service reads an employee record from a socket and reports the
   name and computed raise to a remote site.  The employee's title is
   secret.  The raise is computed on different paths for staff and
   managers (different contract files, different syscalls) — the title
   reaches the output only through control dependences.  We reproduce
   the paper's walk-through: mutate the title in the slave, watch the
   engine tolerate the divergent syscalls, realign at the sends, and
   catch the leak; then show both taint baselines missing it. *)

module Engine = Ldx_core.Engine
module Tracker = Ldx_taint.Tracker
module Shadow = Ldx_taint.Shadow
module World = Ldx_osim.World

let program =
  {| fn s_raise(contract) {
       let fd = open(contract);
       let data = read(fd, 100);
       close(fd);
       return atoi(data);
     }
     fn m_raise(salary) {
       let base = s_raise("/etc/contract_mgr");
       if (salary > 5000) {
         let fd = creat("/tmp/seniors");
         write(fd, itoa(salary));
         close(fd);
       }
       return base + 2;
     }
     fn main() {
       let sock = socket("hr");
       let name = recv(sock);
       let title = recv(sock);
       let amount = 0;
       if (title == "STAFF") {
         amount = s_raise("/etc/contract_staff");
       } else {
         amount = m_raise(6000);
         let dept = recv(sock);
         if (dept == "SALES") { amount = amount + 1; }
       }
       send(sock, name);
       send(sock, itoa(amount));
     } |}

let world =
  World.(
    empty
    |> with_file "/etc/contract_staff" "3"
    |> with_file "/etc/contract_mgr" "5"
    |> with_dir "/tmp"
    |> with_endpoint "hr" [ "alice"; "STAFF"; "ENG" ])

let () =
  (* The secret: the employee's title (second message on the socket). *)
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" ~nth:2 () ];
      sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config program world in
  Printf.printf "LDX dual execution:\n";
  Printf.printf "  master syscalls : %d\n" r.Engine.master.Engine.syscalls;
  Printf.printf "  slave syscalls  : %d (path diverged at the title branch)\n"
    r.Engine.slave.Engine.syscalls;
  Printf.printf "  syscall diffs   : %d — tolerated and realigned\n"
    r.Engine.syscall_diffs;
  Printf.printf "  leak            : %b\n" r.Engine.leak;
  List.iter
    (fun rep -> Printf.printf "    %s\n" (Engine.report_to_string rep))
    r.Engine.reports;
  Printf.printf
    "  note: only the raise send is flagged; the name send aligns and \
     matches.\n\n";

  (* The taint baselines track data dependences; the title only decides
     a branch, so nothing they report reaches the sinks. *)
  let taint model =
    let config =
      { Tracker.default_config with
        Tracker.model;
        sources = [ Engine.source ~sys:"recv" ~nth:2 () ];
        sinks = Engine.Network_outputs }
    in
    Tracker.run_source ~config program world
  in
  let tg = taint Shadow.Taintgrind in
  let ld = taint Shadow.Libdft in
  Printf.printf "TaintGrind-like tainted sinks: %d\n" tg.Tracker.tainted_sinks;
  Printf.printf "LibDFT-like tainted sinks    : %d\n" ld.Tracker.tainted_sinks;
  Printf.printf "(both miss the control-dependence leak LDX reported)\n"
