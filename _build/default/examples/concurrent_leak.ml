(* Concurrency: dual-executing a multithreaded server (Sec. 7).

     dune exec examples/concurrent_leak.exe

   Master and slave each run two worker threads.  LDX pairs the threads,
   gives each pair its own counter, shares the master's lock-acquisition
   order with the slave, and still aligns per-thread syscalls by
   position.  We run the same program under several schedule seeds to
   show the verdict is stable even though the interleavings (and the
   deliberate data race on the stats cell) are not. *)

module Engine = Ldx_core.Engine
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry

let () =
  let w = Registry.find_exn "Apache" in
  let prog, _ = Workload.instrumented w in
  Printf.printf
    "Apache-like worker pool: 8 requests, 2 workers, lock-protected \
     dispatch,\nracy byte counter.  Source: client requests.  Sinks: \
     worker responses.\n\n";
  Printf.printf "%-6s %-6s %-14s %-13s %s\n" "seed_m" "seed_s" "syscall_diffs"
    "tainted_sinks" "verdict";
  List.iter
    (fun (ms, ss) ->
       let config =
         { (Workload.leak_config w) with
           Engine.master_seed = ms;
           slave_seed = ss }
       in
       let r = Engine.run ~config prog w.Workload.world in
       Printf.printf "%-6d %-6d %-14d %-13d %s\n" ms ss r.Engine.syscall_diffs
         r.Engine.tainted_sinks
         (if r.Engine.leak then "leak" else "clean"))
    [ (0, 0); (1, 1001); (2, 1002); (3, 1003); (42, 4242) ];
  Printf.printf
    "\nThe tainted-sink count is schedule-independent: the 8 responses \
     always\ndepend on the 8 mutated requests.  The diff count wobbles \
     with the racy\nstats cell — exactly the Table 4 behaviour.\n"
