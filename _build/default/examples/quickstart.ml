(* Quickstart: causality inference on a ten-line program.

     dune exec examples/quickstart.exe

   The program replies to a client with a tone that depends on the
   received name only through a branch — a pure control dependence,
   which classic data-dependence taint tracking cannot see, but LDX's
   counterfactual test does. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World

let program =
  {| fn main() {
       let s = socket("client");
       let name = recv(s);
       let tone = "meh";
       if (starts_with(name, "a")) { tone = "wow"; }
       send(s, tone);
       print("served\n");
     } |}

let run_with name =
  let world = World.(empty |> with_endpoint "client" [ name ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs }
  in
  Engine.run_source ~config program world

let () =
  (* LDX parses, checks, lowers, instruments the alignment counters,
     runs master + mutated slave, and compares the aligned sinks. *)
  let r = run_with "ada" in
  Printf.printf "input \"ada\":\n";
  Printf.printf "  mutated inputs : %d\n" r.Engine.mutated_inputs;
  Printf.printf "  syscall diffs  : %d of %d\n" r.Engine.syscall_diffs
    r.Engine.total_syscalls;
  Printf.printf "  causality      : %b\n" r.Engine.leak;
  List.iter
    (fun rep -> Printf.printf "    %s\n" (Engine.report_to_string rep))
    r.Engine.reports;

  (* The reply depends on [name] only through the branch: the master
     answers "wow" (a-name), the off-by-one slave answers "meh" — a
     strong counterfactual causality that taint engines miss. *)

  (* Contrast: a name far from the "a" boundary.  The neighbourhood
     mutation keeps the branch stable, so the reply reveals (almost)
     nothing about this name — LDX stays silent where
     track-all-control-dependences tainting would cry wolf. *)
  let r2 = run_with "grace" in
  Printf.printf "input \"grace\":\n";
  Printf.printf "  causality      : %b (weak dependence, not reported)\n"
    r2.Engine.leak
