examples/leak_detection.ml: Ldx_core Ldx_osim Ldx_taint List Printf
