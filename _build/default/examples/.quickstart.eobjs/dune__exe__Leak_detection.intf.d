examples/leak_detection.mli:
