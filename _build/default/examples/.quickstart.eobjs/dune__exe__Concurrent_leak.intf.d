examples/concurrent_leak.mli:
