examples/preprocessor_case.mli:
