examples/attack_detection.ml: Ldx_core Ldx_osim Ldx_workloads List Printf
