examples/attribution_demo.mli:
