examples/attribution_demo.ml: Ldx_cfg Ldx_core Ldx_instrument Ldx_osim Printf
