examples/concurrent_leak.ml: Ldx_core Ldx_workloads List Printf
