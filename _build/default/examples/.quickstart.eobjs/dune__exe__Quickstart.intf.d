examples/quickstart.mli:
