examples/quickstart.ml: Ldx_core Ldx_osim List Printf
