examples/preprocessor_case.ml: Ldx_core Ldx_report Ldx_workloads Printf
