(* The 403.gcc case study (Fig. 7): configuration leak through a
   preprocessor.

     dune exec examples/preprocessor_case.exe

   The mini C preprocessor expands an nginx-like source tree.  Whether
   poll.h is included — and therefore what the emitted translation unit
   looks like — is decided by the NGX_HAVE_POLL configuration value
   through an #if, i.e. purely through control dependences.  LDX flips
   the value in the slave and reads the causality off the aligned output
   writes; the side-by-side trace below is the Fig. 3-style view of how
   the two executions diverge and re-join. *)

module Engine = Ldx_core.Engine
module Mutation = Ldx_core.Mutation
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry

let () =
  print_string (Ldx_report.Experiments.case_gcc ());
  Printf.printf "\n--- side-by-side syscall trace (master | slave) ---\n";
  let w = Registry.find_exn "403.gcc" in
  let strategy =
    Mutation.Swap_substring ("NGX_HAVE_POLL 1", "NGX_HAVE_POLL 0")
  in
  let prog, _ = Workload.instrumented w in
  let config = Workload.leak_config ~strategy w in
  print_string
    (Ldx_report.Trace_view.side_by_side ~config prog w.Workload.world)
