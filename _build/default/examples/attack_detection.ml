(* Attack detection: buffer overflow and integer overflow (Sec. 8,
   vulnerable program set).

     dune exec examples/attack_detection.exe

   LDX's attack-detection mode mutates untrusted inputs and watches the
   critical execution points: function return addresses ([retaddr]) and
   memory-management parameters ([malloc]).  If the attacker's bytes
   causally control those values, the dual execution exposes it. *)

module Engine = Ldx_core.Engine
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry
module World = Ldx_osim.World

(* A fresh, self-contained victim: a log daemon with a fixed-size line
   buffer.  Overlong client lines overflow into the saved return slot. *)
let victim =
  {| fn handle_line(conn, line) {
       let buf = mkarray(24, 0);
       let ret = 49152;                    // saved return address (model)
       for (let i = 0; i < strlen(line); i = i + 1) {
         let c = char_at(line, i);
         if (i < 24) { buf[i] = c; }
       }
       if (strlen(line) > 24) {
         // the smashed slot now holds attacker-controlled payload bits
         ret = (49152 + hash(line)) % 65536;
       }
       retaddr(ret);
       send(conn, "logged " + itoa(strlen(line)));
       return 0;
     }

     fn main() {
       let conn = socket("syslog.clients");
       let line = recv(conn);
       while (line != "") {
         let ok = handle_line(conn, line);
         line = recv(conn);
       }
     } |}

let victim_world =
  World.(
    empty
    |> with_endpoint "syslog.clients"
      [ "boot ok";
        "AAAAAAAAAAAAAAAAAAAAAAAAAAAA\x41\x41payload" ])

let () =
  Printf.printf "=== custom victim: log daemon stack smash ===\n";
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" ~nth:2 () ];
      sinks = Engine.Attack_sinks }
  in
  let r = Engine.run_source ~config victim victim_world in
  Printf.printf "attack detected: %b\n" r.Engine.leak;
  List.iter
    (fun rep -> Printf.printf "  %s\n" (Engine.report_to_string rep))
    r.Engine.reports;
  Printf.printf
    "(the first, well-formed line does not reach the overflow: mutating \
     it reports nothing)\n\n";

  (* The benchmark suite's six vulnerable programs, end to end. *)
  Printf.printf "=== vulnerable benchmark set ===\n";
  List.iter
    (fun (w : Workload.t) ->
       let prog, _ = Workload.instrumented w in
       let r = Engine.run ~config:(Workload.leak_config w) prog w.Workload.world in
       Printf.printf "%-10s attack detected: %b (%d critical point(s))\n"
         w.Workload.name r.Engine.leak r.Engine.tainted_sinks)
    Registry.vulnerable
