(* Concurrency edge cases in the dual engine (Sec. 7): threads that exist
   in only one execution, lock-gate stalls resolved by lock tainting, and
   schedule-independent per-thread alignment. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let clean (r : Engine.result) =
  (match r.Engine.master.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "master trapped: %s" m);
  match r.Engine.slave.Engine.trap with
  | None -> ()
  | Some m -> Alcotest.failf "slave trapped: %s" m

(* A worker thread that exists only in the master: its entire syscall
   stream becomes master-only differences; its sends are flagged. *)
let test_master_only_thread () =
  let src =
    {| fn reporter(x) {
         let s = socket("upstream");
         send(s, "telemetry " + itoa(x));
         return 0;
       }
       fn main() {
         let c = socket("c");
         let secret = atoi(recv(c));
         if (secret == 1) {
           let t = spawn(@reporter, 99);
           join(t);
         }
         print("done");
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "1" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config src world in
  clean r;
  check bool "telemetry leak" true r.Engine.leak;
  check bool "missing-in-slave kind" true
    (List.exists
       (fun rep -> rep.Engine.kind = Engine.Missing_in_slave)
       r.Engine.reports)

(* The mirror image: the thread exists only in the slave. *)
let test_slave_only_thread () =
  let src =
    {| fn reporter(x) {
         let s = socket("upstream");
         send(s, "telemetry " + itoa(x));
         return 0;
       }
       fn main() {
         let c = socket("c");
         let secret = atoi(recv(c));
         if (secret == 3) {
           let t = spawn(@reporter, 99);
           join(t);
         }
         print("done");
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "2" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config src world in
  clean r;
  check bool "slave-only telemetry flagged" true
    (List.exists
       (fun rep -> rep.Engine.kind = Engine.Missing_in_master)
       r.Engine.reports)

(* Divergence changes who locks: the slave's main thread skips its
   critical section, so the gate's expected next owner never arrives.
   The engine must taint the lock and finish (no deadlock). *)
let test_lock_taint_recovery () =
  let src =
    {| fn worker(shared) {
         lock(1);
         shared[0] = shared[0] + 1;
         unlock(1);
         return 0;
       }
       fn main() {
         let c = socket("c");
         let secret = atoi(recv(c));
         let shared = mkarray(1, 0);
         let t = spawn(@worker, shared);
         if (secret == 1) {
           lock(1);
           shared[0] = shared[0] + 10;
           unlock(1);
         }
         join(t);
         send(c, itoa(shared[0]));
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "1" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs;
      (* force the master's main to lock FIRST so the slave's gate waits
         for an acquisition that never comes *)
      master_seed = 0; slave_seed = 0 }
  in
  let r = Engine.run_source ~config src world in
  clean r;
  (* master result 11, slave 1: the sum leaks the secret *)
  check bool "leak" true r.Engine.leak

(* With no mutation and no races, per-thread alignment must be exact for
   ANY pair of scheduler seeds: interleaving freedom does not create
   false differences. *)
let test_schedule_independent_alignment () =
  let src =
    {| fn worker(ctx) {
         let wid = ctx[1];
         let s = socket("out" + itoa(wid));
         for (let k = 0; k < 3; k = k + 1) {
           lock(9);
           send(s, "w" + itoa(wid) + ":" + itoa(k));
           unlock(9);
         }
         return 0;
       }
       fn main() {
         let shared = mkarray(1, 0);
         let c1 = mkarray(2, 0); c1[0] = shared; c1[1] = 1;
         let c2 = mkarray(2, 0); c2[0] = shared; c2[1] = 2;
         let t1 = spawn(@worker, c1);
         let t2 = spawn(@worker, c2);
         join(t1); join(t2);
         print("ok");
       } |}
  in
  let world =
    World.(empty |> with_endpoint "out1" [] |> with_endpoint "out2" [])
  in
  List.iter
    (fun (ms, ss) ->
       let config =
         { Engine.default_config with
           Engine.sources = [];
           sinks = Engine.Network_outputs;
           master_seed = ms;
           slave_seed = ss }
       in
       let r = Engine.run_source ~config src world in
       clean r;
       check int (Printf.sprintf "seeds %d/%d: no diffs" ms ss) 0
         r.Engine.syscall_diffs;
       check bool "no leak" false r.Engine.leak)
    [ (0, 0); (0, 7); (3, 11); (42, 1); (5, 500) ]

(* Mutated data with racing threads: the verdict must hold across seeds
   (the Table 4 property, asserted as a hard invariant here). *)
let test_verdict_stable_under_schedules () =
  let w = Ldx_workloads.Registry.find_exn "Apache" in
  let prog, _ = Ldx_workloads.Workload.instrumented w in
  List.iter
    (fun seed ->
       let config =
         { (Ldx_workloads.Workload.leak_config w) with
           Engine.master_seed = seed;
           slave_seed = seed * 31 + 7 }
       in
       let r = Engine.run ~config prog w.Ldx_workloads.Workload.world in
       clean r;
       check int (Printf.sprintf "seed %d: 8 sinks" seed) 8
         r.Engine.tainted_sinks)
    [ 1; 2; 3; 10; 77 ]

let tests =
  [ Alcotest.test_case "master-only thread" `Quick test_master_only_thread;
    Alcotest.test_case "slave-only thread" `Quick test_slave_only_thread;
    Alcotest.test_case "lock taint recovery" `Quick test_lock_taint_recovery;
    Alcotest.test_case "schedule-independent alignment" `Quick
      test_schedule_independent_alignment;
    Alcotest.test_case "verdict stable under schedules" `Quick
      test_verdict_stable_under_schedules ]
