(* Input synthesizers: determinism, sizes, and the structural guarantees
   the workloads rely on. *)

module Inputs = Ldx_workloads.Inputs

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let test_determinism () =
  check string "text" (Inputs.text ~seed:5 ~chars:100)
    (Inputs.text ~seed:5 ~chars:100);
  check string "graph" (Inputs.graph ~seed:5 ~nodes:10 ~edges:20)
    (Inputs.graph ~seed:5 ~nodes:10 ~edges:20);
  check bool "seeds differ" true
    (Inputs.text ~seed:1 ~chars:50 <> Inputs.text ~seed:2 ~chars:50)

let test_sizes () =
  check int "text size" 321 (String.length (Inputs.text ~seed:9 ~chars:321));
  check int "runs size" 777 (String.length (Inputs.runs ~seed:9 ~chars:777));
  check int "sequence size" 64 (String.length (Inputs.sequence ~seed:9 ~n:64));
  check int "events size" 99 (String.length (Inputs.events ~seed:9 ~n:99))

let test_graph_structure () =
  let g = Inputs.graph ~seed:3 ~nodes:12 ~edges:30 in
  let lines = String.split_on_char '\n' (String.trim g) in
  check int "header + edges" 31 (List.length lines);
  (match lines with
   | hdr :: edges ->
     check string "header" "12 30" hdr;
     List.iter
       (fun line ->
          match String.split_on_char ' ' line with
          | [ u; v; w ] ->
            let u = int_of_string u and v = int_of_string v
            and w = int_of_string w in
            check bool "u in range" true (u >= 0 && u < 12);
            check bool "v in range" true (v >= 0 && v < 12);
            check bool "w positive" true (w >= 1)
          | _ -> Alcotest.failf "bad edge line %S" line)
       edges
   | [] -> Alcotest.fail "empty graph")

let test_perl_script_parses () =
  (* every line must be digits/vars/ops/parens with optional 'v=' head *)
  let s = Inputs.perl_script ~seed:7 ~lines:25 in
  let ok_char c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'd')
    || List.mem c [ '+'; '-'; '*'; '%'; '('; ')'; '=' ]
  in
  String.iter
    (fun c -> if c <> '\n' && not (ok_char c) then
        Alcotest.failf "unexpected char %C" c)
    s;
  check int "line count" 25
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' s)))

let test_frames_shape () =
  let f = Inputs.frames ~seed:4 ~w:16 ~h:8 in
  check int "two frames + separator" (16 * 8 * 2 + 1) (String.length f);
  check bool "frames differ" true
    (String.sub f 0 128 <> String.sub f 129 128)

let test_grid_has_path_column () =
  let g = Inputs.grid ~seed:6 ~w:10 ~h:6 in
  let rows = String.split_on_char '\n' g in
  check int "rows" 6 (List.length rows);
  List.iter
    (fun row ->
       check int "width" 10 (String.length row);
       check bool "left column clear" true (row.[0] <> 'W'))
    rows

let test_xml_balanced () =
  let x = Inputs.xml ~seed:8 ~nodes:20 in
  let count sub =
    let n = ref 0 in
    let sl = String.length sub in
    for i = 0 to String.length x - sl do
      if String.sub x i sl = sub then incr n
    done;
    !n
  in
  (* every opening tag (with or without an attribute) has a closer *)
  List.iter
    (fun tag ->
       check int ("balanced <" ^ tag ^ ">")
         (count ("<" ^ tag ^ ">") + count ("<" ^ tag ^ " "))
         (count ("</" ^ tag ^ ">")))
    [ "r"; "b"; "i"; "p"; "q" ]

let test_requests_contain_admin_auth () =
  let reqs = Inputs.requests ~seed:31 ~n:40 ~auth:"hunter2" in
  check int "count" 40 (List.length reqs);
  check bool "has a correct-auth admin request" true
    (List.exists (fun r -> r = "GET /admin hunter2") reqs);
  check bool "has a wrong-auth admin request" true
    (List.exists (fun r -> r = "GET /admin wrong") reqs)

let tests =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "graph structure" `Quick test_graph_structure;
    Alcotest.test_case "perl script parses" `Quick test_perl_script_parses;
    Alcotest.test_case "frames shape" `Quick test_frames_shape;
    Alcotest.test_case "grid path column" `Quick test_grid_has_path_column;
    Alcotest.test_case "xml balanced" `Quick test_xml_balanced;
    Alcotest.test_case "requests admin auth" `Quick
      test_requests_contain_admin_auth ]
