(* Experiment-suite smoke tests: every table/figure renders, with the
   headline relations from the paper asserted on the live corpus. *)

module Experiments = Ldx_report.Experiments
module Table = Ldx_report.Table
module Registry = Ldx_workloads.Registry

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let contains hay needle =
  let hn = String.length hay and nn = String.length needle in
  let found = ref false in
  for i = 0 to hn - nn do
    if (not !found) && String.sub hay i nn = needle then found := true
  done;
  !found

let test_table1_shape () =
  let t = Experiments.table1 () in
  check int "28 rows" 28 (List.length t.Table.rows);
  check bool "renders" true (String.length (Table.render t) > 0)

let test_fig6_overheads_low () =
  let data = Experiments.fig6_data () in
  let same = List.map (fun d -> d.Experiments.f6_same) data in
  let muts = List.map (fun d -> d.Experiments.f6_mutated) data in
  (* the headline claim: single-digit-percent mean overheads, and the
     mutated runs are not meaningfully costlier than the identical runs *)
  check bool "same-input mean < 15%" true (Table.mean same < 0.15);
  check bool "mutated mean < 15%" true (Table.mean muts < 0.15);
  List.iter
    (fun d ->
       check bool
         (d.Experiments.f6_name ^ " overhead sane")
         true
         (d.Experiments.f6_same >= 0.0 && d.Experiments.f6_same < 0.60))
    data

let test_table3_relations () =
  (* LibDFT <= TaintGrind per program (the library-modelling gap), and
     LDX >= TaintGrind in total *)
  let rows = List.map Experiments.table3_row Registry.all in
  List.iter
    (fun ((w : Ldx_workloads.Workload.t),
          (tg : Ldx_taint.Tracker.result),
          (ld : Ldx_taint.Tracker.result), _) ->
       check bool
         (w.Ldx_workloads.Workload.name ^ ": libdft <= taintgrind")
         true
         (ld.Ldx_taint.Tracker.tainted_sinks
          <= tg.Ldx_taint.Tracker.tainted_sinks))
    rows;
  let total f = List.fold_left (fun a r -> a + f r) 0 rows in
  let tg = total (fun (_, (t : Ldx_taint.Tracker.result), _, _) ->
      t.Ldx_taint.Tracker.tainted_sinks) in
  let ld = total (fun (_, _, (t : Ldx_taint.Tracker.result), _) ->
      t.Ldx_taint.Tracker.tainted_sinks) in
  let ldx = total (fun (_, _, _, (r : Ldx_core.Engine.result)) ->
      r.Ldx_core.Engine.tainted_sinks) in
  check bool "ldx > taintgrind > libdft in total" true (ldx > tg && tg > ld);
  (* every attack in the vulnerable set detected by LDX *)
  List.iter
    (fun ((w : Ldx_workloads.Workload.t), _, _, (r : Ldx_core.Engine.result)) ->
       if w.Ldx_workloads.Workload.category = Ldx_workloads.Workload.Vulnerable
       then
         check bool (w.Ldx_workloads.Workload.name ^ " attack caught") true
           r.Ldx_core.Engine.leak)
    rows

let test_table4_small () =
  let t = Experiments.table4 ~runs:5 () in
  check int "5 rows" 5 (List.length t.Table.rows);
  check bool "renders" true (contains (Table.render t) "Apache")

let test_cases_render () =
  let gcc = Experiments.case_gcc () in
  check bool "gcc: LDX leak" true (contains gcc "leak=true");
  check bool "gcc: taint engines blind" true (contains gcc "tainted sinks=0");
  let ff = Experiments.case_firefox () in
  check bool "firefox: LDX leak" true (contains ff "leak=true")

let test_mutation_table () =
  let t = Experiments.mutation_study () in
  check int "5 strategies" 5 (List.length t.Table.rows);
  (* off-by-one detects everything the others do *)
  match t.Table.rows with
  | (_ :: off :: _) :: _ ->
    check bool "off-by-one full marks" true (contains off "11")
  | _ -> Alcotest.fail "unexpected row shape"

let test_fp_check () =
  let t = Experiments.fp_check () in
  check int "4 rows" 4 (List.length t.Table.rows);
  List.iter
    (fun row ->
       check bool "attack detected" true (contains (List.nth row 1) "attack");
       check bool "benign silent" true (contains (List.nth row 2) "silent"))
    t.Table.rows

let test_ablations_render () =
  check bool "A1" true
    (String.length (Table.render (Experiments.ablation_alignment ())) > 0);
  let a2 = Table.render (Experiments.ablation_loops ()) in
  check bool "A2 shows false positives without reset" true
    (contains a2 "leak=true")

let tests =
  [ Alcotest.test_case "table1 shape" `Quick test_table1_shape;
    Alcotest.test_case "fig6 overheads low" `Quick test_fig6_overheads_low;
    Alcotest.test_case "table3 relations" `Quick test_table3_relations;
    Alcotest.test_case "table4 small" `Quick test_table4_small;
    Alcotest.test_case "case studies render" `Quick test_cases_render;
    Alcotest.test_case "mutation table" `Quick test_mutation_table;
    Alcotest.test_case "fp check" `Quick test_fp_check;
    Alcotest.test_case "ablations render" `Quick test_ablations_render ]
