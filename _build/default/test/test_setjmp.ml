(* setjmp/longjmp: VM semantics and counter-stack restoration (Sec. 6). *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World
module Driver = Ldx_vm.Driver

let check = Alcotest.check
let string = Alcotest.string
let bool = Alcotest.bool

let run ?(world = World.empty) ?(instrument = true) src =
  Driver.run_source ~instrument src world

let no_trap (o : Driver.outcome) =
  match o.Driver.trap with
  | None -> ()
  | Some m -> Alcotest.failf "unexpected trap: %s" m

let test_basic_setjmp () =
  let o =
    run
      {| fn main() {
           let j = setjmp(1);
           if (j == 0) { print("first"); }
           else { print("again"); }
         } |}
  in
  no_trap o;
  check string "setjmp returns 0 initially" "first" o.Driver.stdout

let test_longjmp_loops_back () =
  let o =
    run
      {| fn main() {
           let tries = 0;
           let j = setjmp(1);
           tries = tries + 1;
           print(itoa(tries) + ";");
           if (tries < 3) { longjmp(1); }
           print("done");
         } |}
  in
  no_trap o;
  check string "retry loop via longjmp" "1;2;3;done" o.Driver.stdout

let test_longjmp_across_frames () =
  let o =
    run
      {| fn deep(n) {
           if (n == 0) {
             print("bail;");
             longjmp(7);
           }
           return deep(n - 1);
         }
         fn main() {
           let j = setjmp(7);
           if (j == 0) {
             let x = deep(3);
             print("unreachable");
           } else {
             print("recovered");
           }
         } |}
  in
  no_trap o;
  check string "non-local exit" "bail;recovered" o.Driver.stdout

let test_longjmp_unset_traps () =
  let o = run {| fn main() { longjmp(9); print("no"); } |} in
  check bool "trapped" true (o.Driver.trap <> None)

(* The paper's requirement: the counter stack is saved at setjmp and
   restored at longjmp, so two executions that both longjmp stay
   aligned. *)
let test_dual_alignment_with_longjmp () =
  let src =
    {| fn main() {
         let s = socket("c");
         let attempts = 0;
         let j = setjmp(1);
         attempts = attempts + 1;
         let tok = recv(s);
         if (tok == "retry" && attempts < 4) { longjmp(1); }
         send(s, "attempts=" + itoa(attempts));
       } |}
  in
  let world =
    World.(empty |> with_endpoint "c" [ "retry"; "retry"; "ok" ])
  in
  let config =
    { Engine.default_config with
      Engine.sources = []; sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config src world in
  check (Alcotest.option string) "slave clean" None r.Engine.slave.Engine.trap;
  check Alcotest.int "no diffs" 0 r.Engine.syscall_diffs;
  check bool "no leak" false r.Engine.leak

(* Divergent longjmp: one execution jumps, the other does not — the
   misalignment must be reported, not deadlock or trap. *)
let test_dual_divergent_longjmp () =
  let src =
    {| fn main() {
         let s = socket("c");
         let secret = atoi(recv(s));
         let j = setjmp(1);
         if (j == 0 && secret == 5) {
           print("retrying;");
           longjmp(1);
         }
         send(s, "jumps=" + itoa(j));
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "5" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config src world in
  check (Alcotest.option string) "slave clean" None r.Engine.slave.Engine.trap;
  check bool "causality reported" true r.Engine.leak

let tests =
  [ Alcotest.test_case "setjmp returns 0" `Quick test_basic_setjmp;
    Alcotest.test_case "longjmp loops back" `Quick test_longjmp_loops_back;
    Alcotest.test_case "longjmp across frames" `Quick
      test_longjmp_across_frames;
    Alcotest.test_case "longjmp unset traps" `Quick test_longjmp_unset_traps;
    Alcotest.test_case "dual alignment with longjmp" `Quick
      test_dual_alignment_with_longjmp;
    Alcotest.test_case "dual divergent longjmp" `Quick
      test_dual_divergent_longjmp ]
