(* LDX engine tests: alignment, causality inference, the paper's examples. *)

module Engine = Ldx_core.Engine
module Align = Ldx_core.Align
module Mutation = Ldx_core.Mutation
module World = Ldx_osim.World

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let run ?(config = Engine.default_config) ?(world = World.empty) src =
  Engine.run_source ~config src world

let no_sources = { Engine.default_config with Engine.sources = [] }

(* ------------------------------------------------------------------ *)
(* Perfect alignment when nothing is mutated.                          *)

let aligned_src =
  {| fn work(fd, n) {
       let total = 0;
       for (let i = 0; i < n; i = i + 1) {
         let chunk = read(fd, 4);
         total = total + strlen(chunk);
       }
       return total;
     }
     fn main() {
       let fd = open("/data");
       let n = atoi(read(fd, 2));
       let t = work(fd, n);
       print(itoa(t));
       close(fd);
     } |}

let aligned_world = World.(empty |> with_file "/data" "03abcdabcdabcd")

let test_no_mutation_no_diffs () =
  let r = run ~config:no_sources ~world:aligned_world aligned_src in
  check int "no diffs" 0 r.Engine.syscall_diffs;
  check int "no reports" 0 (List.length r.Engine.reports);
  check bool "no leak" false r.Engine.leak;
  check (Alcotest.option Alcotest.string) "master clean" None r.Engine.master.Engine.trap;
  check (Alcotest.option Alcotest.string) "slave clean" None r.Engine.slave.Engine.trap;
  check Alcotest.string "same stdout" r.Engine.master.Engine.stdout
    r.Engine.slave.Engine.stdout

let test_vacuous_source_match_no_mutation () =
  (* a source spec that matches nothing leaves executions identical *)
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ] }
  in
  let r = run ~config ~world:aligned_world aligned_src in
  check int "no diffs" 0 r.Engine.syscall_diffs;
  check bool "no leak" false r.Engine.leak

(* ------------------------------------------------------------------ *)
(* Fig. 1: counterfactual causality vs. program dependences.           *)

(* (a) strong CC through a data dependence *)
let test_fig1a_data_dep () =
  let world = World.(empty |> with_endpoint "in" [ "7" ]) in
  let r =
    run ~world
      {| fn main() {
           let s = socket("in");
           let x = atoi(recv(s));
           let y = x + 10;
           send(s, itoa(y));
         } |}
  in
  check bool "leak" true r.Engine.leak

(* (b) strong CC through a control dependence: x==1 => s=10 *)
let test_fig1b_control_dep_strong () =
  let world = World.(empty |> with_endpoint "in" [ "1" ]) in
  let r =
    run ~world
      {| fn main() {
           let sock = socket("in");
           let x = atoi(recv(sock));
           let s = 0;
           if (x == 1) { s = 10; } else { s = 20; }
           send(sock, itoa(s));
         } |}
  in
  check bool "leak via control dep" true r.Engine.leak

(* (c) weak causality: many x map to the same output.  Off-by-one on
   x=50 keeps the predicate x<100 true, so the output does not change:
   LDX correctly reports nothing where taint-with-control-deps would
   flag it. *)
let test_fig1c_weak_causality_not_reported () =
  let world = World.(empty |> with_endpoint "in" [ "50" ]) in
  let r =
    run ~world
      {| fn main() {
           let sock = socket("in");
           let x = atoi(recv(sock));
           let s = 0;
           if (x < 100) { s = 1; } else { s = 2; }
           send(sock, itoa(s));
         } |}
  in
  check bool "no leak for weak CC" false r.Engine.leak

(* (d) strong CC missed by both data and control deps: the non-update
   leaks.  secret==10 keeps x at 0; any mutation makes x=1. *)
let test_fig1d_missing_update () =
  let world = World.(empty |> with_endpoint "in" [ "10" ]) in
  let r =
    run ~world
      {| fn main() {
           let sock = socket("in");
           let s = atoi(recv(sock));
           let x = 0;
           if (s != 10) { x = 1; }
           send(sock, itoa(x));
         } |}
  in
  check bool "leak via absence of update" true r.Engine.leak

(* ------------------------------------------------------------------ *)
(* Fig. 2/3: the employee example; secret title, leak through the      *)
(* raise amount (control dependence), with syscall divergence.         *)

let fig2_src =
  {| fn s_raise(contract) {
       let fd = open(contract);
       let data = read(fd, 100);
       return atoi(data);
     }
     fn m_raise(salary) {
       let r = s_raise("/etc/contract_mgr");
       if (salary > 5000) {
         let fd = creat("/tmp/seniors");
         write(fd, itoa(salary));
       }
       return r + 2;
     }
     fn main() {
       let sock = socket("hr");
       let name = recv(sock);
       let title = recv(sock);
       let raise = 0;
       if (title == "STAFF") {
         raise = s_raise("/etc/contract_staff");
       } else {
         raise = m_raise(6000);
         let dept = recv(sock);
         if (dept == "SALES") { raise = raise + 1; }
       }
       send(sock, name);
       send(sock, itoa(raise));
     } |}

let fig2_world =
  World.(
    empty
    |> with_file "/etc/contract_staff" "3"
    |> with_file "/etc/contract_mgr" "5"
    |> with_dir "/tmp"
    |> with_endpoint "hr" [ "alice"; "STAFF"; "ENG" ])

(* Mutating the title ("STAFF" -> off-by-one) flips the branch condition:
   the slave takes the manager path.  LDX must tolerate the syscall
   differences and still align at the sends, catching the raise leak. *)
let test_fig2_title_leak () =
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" ~nth:2 () ];
      Engine.sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config fig2_src fig2_world in
  check bool "leak" true r.Engine.leak;
  check bool "syscall diffs tolerated" true (r.Engine.syscall_diffs > 0);
  (* the name does NOT leak: only the raise send differs *)
  let kinds = List.map (fun rep -> rep.Engine.kind) r.Engine.reports in
  check bool "args-differ at the raise sink" true
    (List.mem Engine.Args_differ kinds);
  check int "exactly one tainted sink" 1 r.Engine.tainted_sinks

(* Mutating the name (1st recv) changes only the data flowing to the
   first send: one tainted sink, no path divergence. *)
let test_fig2_name_leak_data_dep () =
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" ~nth:1 () ];
      Engine.sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config fig2_src fig2_world in
  check bool "leak" true r.Engine.leak;
  check int "one tainted sink" 1 r.Engine.tainted_sinks;
  check int "no path divergence" 0
    (List.length
       (List.filter
          (fun rep -> rep.Engine.kind <> Engine.Args_differ)
          r.Engine.reports))

(* Mutating the department when title=STAFF: the slave still takes the
   staff path (dept is never read there) — the master path doesn't read
   it either, so nothing diverges. *)
let test_fig2_irrelevant_source () =
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" ~nth:3 () ];
      Engine.sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config fig2_src fig2_world in
  check bool "no leak" false r.Engine.leak;
  check int "no diffs" 0 r.Engine.syscall_diffs

(* ------------------------------------------------------------------ *)
(* Fig. 4/5: loop alignment with mutated trip counts.                  *)

let loop_src =
  {| fn main() {
       let fd = open("/in");
       let hdr = read(fd, 4);
       let n = atoi(substr(hdr, 0, 2));
       let m = atoi(substr(hdr, 2, 2));
       for (let i = 0; i < n; i = i + 1) {
         for (let j = 0; j < m; j = j + 1) {
           let x = read(fd, 1);
         }
         let ofd = creat("/tmp/out");
         write(ofd, itoa(i));
         close(ofd);
       }
       let sock = socket("up");
       send(sock, itoa(n * m));
     } |}

let loop_world nm =
  World.(
    empty
    |> with_file "/in" (nm ^ "xxxxxxxxxxxxxxxx")
    |> with_dir "/tmp"
    |> with_endpoint "up" [])

(* The header read is the source; off-by-one mutates "02" -> "12"-ish
   (first char bumped), changing n drastically: trip counts differ, yet
   the engine must realign at the final send and report the n*m leak. *)
let test_loop_trip_count_divergence () =
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"read" ~nth:1 () ];
      Engine.sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config loop_src (loop_world "0202") in
  check bool "leak at send" true r.Engine.leak;
  check bool "syscall diffs from extra iterations" true
    (r.Engine.syscall_diffs > 0);
  check (Alcotest.option Alcotest.string) "slave no trap" None
    r.Engine.slave.Engine.trap

let test_loop_equal_inputs_align () =
  let r = Engine.run_source ~config:no_sources loop_src (loop_world "0303") in
  check int "no diffs" 0 r.Engine.syscall_diffs;
  check bool "no leak" false r.Engine.leak

(* ------------------------------------------------------------------ *)
(* Indirect calls and recursion keep alignment (Sec. 6).               *)

let test_indirect_call_alignment () =
  let world = World.(empty |> with_endpoint "c" [ "5" ]) in
  let config =
    { Engine.default_config with Engine.sinks = Engine.Network_outputs }
  in
  let r =
    Engine.run_source ~config
      {| fn handler_a(x) { print("a"); return x * 2; }
         fn handler_b(x) { print("b"); print("b2"); return x + 100; }
         fn main() {
           let sock = socket("c");
           let v = atoi(recv(sock));
           let h = @handler_a;
           if (v > 3) { h = @handler_b; }
           let out = h(v);
           send(sock, itoa(out));
         } |}
      world
  in
  (* off-by-one: 5 -> 6; both pick handler_b; output differs -> leak *)
  check bool "leak" true r.Engine.leak;
  check (Alcotest.option Alcotest.string) "slave ok" None r.Engine.slave.Engine.trap

let test_indirect_call_divergent_targets () =
  let world = World.(empty |> with_endpoint "c" [ "3" ]) in
  let config =
    { Engine.default_config with Engine.sinks = Engine.Network_outputs }
  in
  let r =
    Engine.run_source ~config
      {| fn handler_a(x) { print("a"); return x * 2; }
         fn handler_b(x) { print("b"); print("b2"); return x + 100; }
         fn main() {
           let sock = socket("c");
           let v = atoi(recv(sock));
           let h = @handler_a;
           if (v > 3) { h = @handler_b; }
           let out = h(v);
           send(sock, itoa(out));
         } |}
      world
  in
  (* 3 -> 4 flips the handler: syscalls inside the handlers misalign,
     the final send still aligns and differs *)
  check bool "leak" true r.Engine.leak;
  check bool "diffs inside handlers" true (r.Engine.syscall_diffs > 0);
  check (Alcotest.option Alcotest.string) "slave ok" None r.Engine.slave.Engine.trap

let test_recursion_alignment () =
  let world = World.(empty |> with_endpoint "c" [ "4" ]) in
  let config =
    { Engine.default_config with Engine.sinks = Engine.Network_outputs }
  in
  let r =
    Engine.run_source ~config
      {| fn walk(n) {
           if (n <= 0) { return 0; }
           print(itoa(n));
           return n + walk(n - 1);
         }
         fn main() {
           let sock = socket("c");
           let d = atoi(recv(sock));
           let s = walk(d);
           send(sock, itoa(s));
         } |}
      world
  in
  (* depth 4 -> 5: different recursion depth, extra prints misaligned,
     send aligns and leaks the sum *)
  check bool "leak" true r.Engine.leak;
  check (Alcotest.option Alcotest.string) "slave ok" None r.Engine.slave.Engine.trap

(* ------------------------------------------------------------------ *)
(* Divergence kinds.                                                   *)

let test_missing_in_slave_sink () =
  (* master sends (secret=1), slave (secret=2) does not *)
  let world = World.(empty |> with_endpoint "c" [ "1" ]) in
  let config =
    { Engine.default_config with Engine.sinks = Engine.Network_outputs }
  in
  let r =
    Engine.run_source ~config
      {| fn main() {
           let sock = socket("c");
           let secret = atoi(recv(sock));
           if (secret == 1) { send(sock, "hello"); }
           print("done");
         } |}
      world
  in
  check bool "leak" true r.Engine.leak;
  let kinds = List.map (fun rep -> rep.Engine.kind) r.Engine.reports in
  check bool "missing in slave" true (List.mem Engine.Missing_in_slave kinds)

let test_missing_in_master_sink () =
  let world = World.(empty |> with_endpoint "c" [ "2" ]) in
  let config =
    { Engine.default_config with Engine.sinks = Engine.Network_outputs }
  in
  let r =
    Engine.run_source ~config
      {| fn main() {
           let sock = socket("c");
           let secret = atoi(recv(sock));
           if (secret == 3) { send(sock, "hello"); }
           print("done");
         } |}
      world
  in
  (* 2 -> 3 in the slave: the send appears only in the slave *)
  check bool "leak" true r.Engine.leak;
  let kinds = List.map (fun rep -> rep.Engine.kind) r.Engine.reports in
  check bool "missing in master" true (List.mem Engine.Missing_in_master kinds)

(* ------------------------------------------------------------------ *)
(* Resource tainting: once a file diverges, later accesses decouple.   *)

let test_resource_tainting () =
  let world = World.(empty |> with_endpoint "c" [ "1" ] |> with_dir "/tmp") in
  let config =
    { Engine.default_config with Engine.sinks = Engine.Network_outputs }
  in
  let r =
    Engine.run_source ~config
      {| fn main() {
           let sock = socket("c");
           let secret = atoi(recv(sock));
           let fd = creat("/tmp/log");
           if (secret == 1) { write(fd, "one"); }
           write(fd, "common");
           close(fd);
           let fd2 = open("/tmp/log");
           let data = read(fd2, 100);
           send(sock, data);
         } |}
      world
  in
  (* master writes "onecommon", slave "common": the file is tainted at the
     divergent write; the slave's read must see its own private "common"
     (not the master's), making the send differ -> leak *)
  check bool "leak" true r.Engine.leak;
  check (Alcotest.option Alcotest.string) "slave ok" None r.Engine.slave.Engine.trap

(* ------------------------------------------------------------------ *)
(* Alignment positions.                                                *)

let test_align_order_loops () =
  let mk cnt loops = { Align.cnt; loops } in
  (* same loop, later iteration is ahead *)
  check bool "iter order" true
    (Align.compare [ mk 3 [ (0, 2) ] ] [ mk 3 [ (0, 1) ] ] > 0);
  (* deeper segment at equal prefix is ahead *)
  check bool "segment depth" true
    (Align.compare [ mk 3 []; mk 0 [] ] [ mk 3 [] ] > 0);
  (* counter dominates when loop sets differ *)
  check bool "cnt order" true
    (Align.compare [ mk 5 [] ] [ mk 3 [ (1, 9) ] ] > 0);
  check int "equal" 0
    (Align.compare
       [ mk 2 [ (0, 1); (1, 0) ] ]
       [ mk 2 [ (0, 1); (1, 0) ] ])

let test_mutation_strategies () =
  List.iter
    (fun (name, s) ->
       let v = Ldx_osim.Sval.I 41 in
       let v' = Mutation.mutate s v in
       check bool (name ^ " changes int") true (not (Ldx_osim.Sval.equal v v'))
       )
    [ ("off-by-one", Mutation.Off_by_one);
      ("bitflip", Mutation.Bitflip);
      ("add", Mutation.Add_constant 7);
      ("random", Mutation.Random_replace 99) ];
  let s = Ldx_osim.Sval.S "hello" in
  check bool "off-by-one changes string" true
    (not (Ldx_osim.Sval.equal s (Mutation.mutate Mutation.Off_by_one s)))

(* Determinism: the same dual run twice gives identical results. *)
let test_engine_deterministic () =
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" ~nth:2 () ];
      Engine.sinks = Engine.Network_outputs }
  in
  let r1 = Engine.run_source ~config fig2_src fig2_world in
  let r2 = Engine.run_source ~config fig2_src fig2_world in
  check int "same diffs" r1.Engine.syscall_diffs r2.Engine.syscall_diffs;
  check int "same sinks" r1.Engine.tainted_sinks r2.Engine.tainted_sinks;
  check int "same wall cycles" r1.Engine.wall_cycles r2.Engine.wall_cycles

(* Overhead sanity: dual execution wall clock within a small factor of
   native (it must NOT be ~2x, since the slave runs on its own CPU). *)
let test_overhead_model () =
  let native = Engine.native_cycles aligned_src aligned_world in
  let r = run ~config:no_sources ~world:aligned_world aligned_src in
  let overhead =
    float_of_int (r.Engine.wall_cycles - native) /. float_of_int native
  in
  check bool "native positive" true (native > 0);
  check bool
    (Printf.sprintf "overhead %.3f within 30%%" overhead)
    true
    (overhead >= 0.0 && overhead < 0.30)

let tests =
  [ Alcotest.test_case "no mutation, no diffs" `Quick test_no_mutation_no_diffs;
    Alcotest.test_case "vacuous source" `Quick test_vacuous_source_match_no_mutation;
    Alcotest.test_case "fig1a data dep" `Quick test_fig1a_data_dep;
    Alcotest.test_case "fig1b control dep strong" `Quick
      test_fig1b_control_dep_strong;
    Alcotest.test_case "fig1c weak causality" `Quick
      test_fig1c_weak_causality_not_reported;
    Alcotest.test_case "fig1d missing update" `Quick test_fig1d_missing_update;
    Alcotest.test_case "fig2 title leak" `Quick test_fig2_title_leak;
    Alcotest.test_case "fig2 name leak" `Quick test_fig2_name_leak_data_dep;
    Alcotest.test_case "fig2 irrelevant source" `Quick test_fig2_irrelevant_source;
    Alcotest.test_case "loop trip divergence" `Quick
      test_loop_trip_count_divergence;
    Alcotest.test_case "loop equal inputs" `Quick test_loop_equal_inputs_align;
    Alcotest.test_case "indirect call alignment" `Quick
      test_indirect_call_alignment;
    Alcotest.test_case "indirect divergent targets" `Quick
      test_indirect_call_divergent_targets;
    Alcotest.test_case "recursion alignment" `Quick test_recursion_alignment;
    Alcotest.test_case "missing in slave" `Quick test_missing_in_slave_sink;
    Alcotest.test_case "missing in master" `Quick test_missing_in_master_sink;
    Alcotest.test_case "resource tainting" `Quick test_resource_tainting;
    Alcotest.test_case "align order" `Quick test_align_order_loops;
    Alcotest.test_case "mutation strategies" `Quick test_mutation_strategies;
    Alcotest.test_case "engine deterministic" `Quick test_engine_deterministic;
    Alcotest.test_case "overhead model" `Quick test_overhead_model ]
