(* Property-based tests (qcheck, registered via QCheck_alcotest).

   The headline properties quantify over *random structured programs*
   (Gen_minic): the instrumentation algorithms and the dual-execution
   engine must uphold their invariants on arbitrary CFG shapes, not just
   the curated workloads. *)

module Engine = Ldx_core.Engine
module Align = Ldx_core.Align
module Mutation = Ldx_core.Mutation
module Counter = Ldx_instrument.Counter
module Lower = Ldx_cfg.Lower
module Ir = Ldx_cfg.Ir
module World = Ldx_osim.World
module Gen_minic = Ldx_genprog.Gen_minic
module Sval = Ldx_osim.Sval
module Driver = Ldx_vm.Driver
open Ldx_lang

let test_world =
  World.(
    empty
    |> with_endpoint "in" [ "3"; "14"; "15"; "9"; "2"; "6"; "5"; "35"; "8" ])

let lower_gen p = Lower.lower_program p

let count = 150

let qtest name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:Gen_minic.print_program gen prop)

(* P1: lowering + instrumentation never fails on structured programs, and
   the instrumented program is structurally sane (dense block ids, all
   branch targets in range). *)
let prop_instrumentation_total (p : Ast.program) =
  let prog, _ = Counter.instrument (lower_gen p) in
  Array.for_all
    (fun (f : Ir.func) ->
       let n = Array.length f.Ir.blocks in
       f.Ir.entry >= 0 && f.Ir.entry < n
       && Array.for_all
         (fun (b : Ir.block) ->
            List.for_all (fun s -> s >= 0 && s < n)
              (Ir.successors b.Ir.term))
         f.Ir.blocks)
    prog.Ir.funcs

(* P2: a native run of the instrumented program behaves exactly like the
   uninstrumented one (same stdout, same syscall count) — counter
   maintenance is semantically transparent. *)
let prop_instrumentation_transparent (p : Ast.program) =
  let plain = Driver.run (lower_gen p) test_world in
  let instr =
    Driver.run (fst (Counter.instrument (lower_gen p))) test_world
  in
  plain.Driver.trap = None
  && instr.Driver.trap = None
  && String.equal plain.Driver.stdout instr.Driver.stdout
  && plain.Driver.syscalls = instr.Driver.syscalls

(* P3: alignment completeness — dual-executing any structured program
   with NO mutation yields zero syscall differences, no reports, and a
   clean slave.  This exercises Algorithm 1 + 3 + fresh frames on random
   CFGs. *)
let no_sources =
  { Engine.default_config with Engine.sources = [] }

let prop_alignment_complete (p : Ast.program) =
  let prog, _ = Counter.instrument (lower_gen p) in
  let r = Engine.run ~config:no_sources prog test_world in
  r.Engine.syscall_diffs = 0
  && (not r.Engine.leak)
  && r.Engine.slave.Engine.trap = None
  && r.Engine.master.Engine.trap = None
  && String.equal r.Engine.master.Engine.stdout r.Engine.slave.Engine.stdout

(* P4: robustness under mutation — whatever the program shape, the slave
   must terminate cleanly (divergence is tolerated, never fatal), and the
   engine's difference accounting must stay consistent. *)
let recv_sources =
  { Engine.default_config with
    Engine.sources = [ Engine.source ~sys:"recv" () ] }

let prop_divergence_tolerated (p : Ast.program) =
  let prog, _ = Counter.instrument (lower_gen p) in
  let r = Engine.run ~config:recv_sources prog test_world in
  r.Engine.slave.Engine.trap = None
  && r.Engine.master.Engine.trap = None
  && r.Engine.diffs_before_first_report <= r.Engine.syscall_diffs
  && List.length r.Engine.reports <= r.Engine.total_sinks + r.Engine.syscall_diffs

(* P5: determinism — the whole dual execution is a pure function of
   (program, world, config). *)
let prop_deterministic (p : Ast.program) =
  let prog, _ = Counter.instrument (lower_gen p) in
  let r1 = Engine.run ~config:recv_sources prog test_world in
  let r2 = Engine.run ~config:recv_sources prog test_world in
  r1.Engine.syscall_diffs = r2.Engine.syscall_diffs
  && r1.Engine.tainted_sinks = r2.Engine.tainted_sinks
  && r1.Engine.wall_cycles = r2.Engine.wall_cycles

(* P6: soundness of the leak verdict — if LDX reports no causality, the
   master's and slave's outputs (stdout) are identical. *)
let stdout_sinks =
  { Engine.default_config with
    Engine.sources = [ Engine.source ~sys:"recv" () ];
    Engine.sinks = Engine.File_outputs }

let prop_no_leak_means_equal_outputs (p : Ast.program) =
  let prog, _ = Counter.instrument (lower_gen p) in
  let r = Engine.run ~config:stdout_sinks prog test_world in
  r.Engine.leak
  || String.equal r.Engine.master.Engine.stdout r.Engine.slave.Engine.stdout

(* P11: vacuous mutation implies identical executions — when every
   source value is EOF (never mutated), the dual run must be perfectly
   aligned even though the source SPEC matches syscalls. *)
let empty_world = World.(empty |> with_endpoint "in" [])

let prop_vacuous_mutation_aligned (p : Ast.program) =
  let prog, _ = Counter.instrument (lower_gen p) in
  let r = Engine.run ~config:recv_sources prog empty_world in
  r.Engine.mutated_inputs = 0
  && r.Engine.syscall_diffs = 0
  && not r.Engine.leak

(* P13: schedule independence — random race-free concurrent programs,
   dual-executed without mutation under random seed pairs, always align
   perfectly.  Generalizes the hand-written concurrency tests. *)
let gen_conc_with_seeds =
  QCheck2.Gen.triple Gen_minic.gen_conc_program
    (QCheck2.Gen.int_range 0 1000) (QCheck2.Gen.int_range 0 1000)

let prop_concurrent_alignment (p, ms, ss) =
  let prog, _ = Counter.instrument (lower_gen p) in
  let config =
    { Engine.default_config with
      Engine.sources = [];
      Engine.master_seed = ms;
      slave_seed = ss }
  in
  let r = Engine.run ~config prog World.empty in
  r.Engine.syscall_diffs = 0
  && (not r.Engine.leak)
  && r.Engine.slave.Engine.trap = None
  && r.Engine.master.Engine.trap = None

(* P12: the taint baselines' interpreter computes exactly what the VM
   computes — same stdout, same syscall-visible behaviour — it only adds
   shadow metadata.  Differential-tests the two interpreters on random
   programs. *)
let prop_taint_interpreter_equivalent (p : Ast.program) =
  let prog = lower_gen p in
  let vm = Driver.run prog test_world in
  let tt =
    Ldx_taint.Tracker.run
      ~config:{ Ldx_taint.Tracker.default_config with
                Ldx_taint.Tracker.sources = [] }
      prog test_world
  in
  vm.Driver.trap = None
  && tt.Ldx_taint.Tracker.trap = None
  && String.equal vm.Driver.stdout tt.Ldx_taint.Tracker.stdout

(* P7: parser/printer round-trip on arbitrary single functions.  The
   printer is not injective on the AST (e.g. [Int (-1)] and
   [Neg (Int 1)] both print as "(-1)"), so the property is the standard
   normalization fixpoint: parse∘print is idempotent. *)
let prop_roundtrip (f : Ast.fundef) =
  let p = { Ast.funcs = [ f ] } in
  match Parser.parse_program (Printer.to_string p) with
  | p1 ->
    (match Parser.parse_program (Printer.to_string p1) with
     | p2 -> p1 = p2
     | exception Parser.Error _ -> false)
  | exception Parser.Error _ -> false

(* P8: the progress order is reflexive and antisymmetric on arbitrary
   positions, and a *total order* (hence transitive) on positions that
   share a loop skeleton — which is exactly what the engine compares:
   two executions of the same instrumented program inside the same
   enclosing loops.  (Positions from disjoint loop regions at equal
   counter values deliberately compare equal; the wrapper separates
   those by PC.) *)
let gen_skeleton_positions : (Align.t * Align.t * Align.t) QCheck2.Gen.t =
  let open QCheck2.Gen in
  (* Same loop nest (ids and depth) for all three — the situation the
     engine actually compares at aligned-or-diverging syscalls inside a
     common region.  (Across loop boundaries the counter invariant makes
     the cnt fields differ, so mixed depths never tie in practice; the
     raw generator cannot know that, hence the restriction.) *)
  let* skeleton = list_size (int_range 0 3) (int_range 0 4) in
  let instantiate =
    let* iters = list_repeat (List.length skeleton) (int_range 0 5) in
    let* cnt = int_range 0 20 in
    return [ { Align.cnt; loops = List.combine skeleton iters } ]
  in
  triple instantiate instantiate instantiate

let gen_position : Align.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let gen_seg =
    let* cnt = int_range 0 20 in
    let* loops =
      list_size (int_range 0 3)
        (pair (int_range 0 4) (int_range 0 5))
    in
    return { Align.cnt; loops }
  in
  list_size (int_range 1 3) gen_seg

let prop_align_reflexive_antisym (a, b) =
  Align.compare a a = 0
  && Align.compare a b = -Align.compare b a

let prop_align_total_on_skeleton (a, b, c) =
  let ( <= ) x y = Align.compare x y <= 0 in
  (not (a <= b && b <= c)) || a <= c

(* P9: off-by-one mutation properties: never fabricates EOF, preserves
   string length, changes every nonempty alphanumeric string. *)
let gen_sval =
  let open QCheck2.Gen in
  oneof
    [ map (fun n -> Sval.I n) (int_range (-1000) 1000);
      map (fun s -> Sval.S s) (string_size ~gen:printable (int_range 0 12)) ]

let prop_mutation_sane v =
  let v' = Mutation.mutate Mutation.Off_by_one v in
  match (v, v') with
  | Sval.I n, Sval.I n' -> n' = n + 1
  | Sval.S s, Sval.S s' ->
    String.length s = String.length s'
    && (String.equal s "" = String.equal s' "")
    && (String.for_all
          (fun c -> not (Ldx_core.Mutation.bump_alnum c <> c))
          s
        || not (String.equal s s'))
  | _ -> false

(* P10: VFS model check — random create/write/append/unlink sequences
   against a simple association-list model. *)
type vfs_op =
  | Op_write of string * string
  | Op_append of string * string
  | Op_unlink of string
  | Op_read of string

let gen_vfs_ops =
  let open QCheck2.Gen in
  let path = map (fun i -> Printf.sprintf "/f%d" i) (int_range 0 4) in
  let data = string_size ~gen:(char_range 'a' 'e') (int_range 0 4) in
  list_size (int_range 1 40)
    (oneof
       [ map2 (fun p d -> Op_write (p, d)) path data;
         map2 (fun p d -> Op_append (p, d)) path data;
         map (fun p -> Op_unlink p) path;
         map (fun p -> Op_read p) path ])

let prop_vfs_model ops =
  let vfs = Ldx_osim.Vfs.create () in
  let model = Hashtbl.create 8 in
  List.for_all
    (fun op ->
       match op with
       | Op_write (p, d) ->
         (match Ldx_osim.Vfs.write_file vfs p d with
          | Ok () -> Hashtbl.replace model p d; true
          | Error _ -> false)
       | Op_append (p, d) ->
         (match Ldx_osim.Vfs.append_file vfs p d with
          | Ok () ->
            let prev = try Hashtbl.find model p with Not_found -> "" in
            Hashtbl.replace model p (prev ^ d);
            true
          | Error _ -> false)
       | Op_unlink p ->
         let existed = Hashtbl.mem model p in
         (match Ldx_osim.Vfs.unlink vfs p with
          | Ok () -> Hashtbl.remove model p; existed
          | Error _ -> not existed)
       | Op_read p ->
         (match (Ldx_osim.Vfs.read_file vfs p, Hashtbl.find_opt model p) with
          | Ok d, Some d' -> String.equal d d'
          | Error _, None -> true
          | Ok _, None | Error _, Some _ -> false))
    ops

let tests =
  [ qtest "P1 instrumentation total" Gen_minic.gen_program
      prop_instrumentation_total;
    qtest "P2 instrumentation transparent" Gen_minic.gen_program
      prop_instrumentation_transparent;
    qtest "P3 alignment complete (no mutation => no diffs)"
      Gen_minic.gen_program prop_alignment_complete;
    qtest "P4 divergence tolerated" Gen_minic.gen_program
      prop_divergence_tolerated;
    qtest "P5 deterministic" Gen_minic.gen_program prop_deterministic;
    qtest "P6 no leak => equal outputs" Gen_minic.gen_program
      prop_no_leak_means_equal_outputs;
    qtest "P11 vacuous mutation => aligned" Gen_minic.gen_program
      prop_vacuous_mutation_aligned;
    qtest "P12 taint interpreter equivalent" Gen_minic.gen_program
      prop_taint_interpreter_equivalent;
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"P13 concurrent alignment" ~count:100
         ~print:(fun (p, ms, ss) ->
             Printf.sprintf "seeds %d/%d\n%s" ms ss (Gen_minic.print_program p))
         gen_conc_with_seeds prop_concurrent_alignment);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"P7 parser/printer roundtrip" ~count:300
         ~print:(fun f -> Printer.to_string { Ast.funcs = [ f ] })
         Gen_minic.gen_any_fundef prop_roundtrip);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"P8a progress order reflexive/antisym"
         ~count:500
         (QCheck2.Gen.pair gen_position gen_position)
         prop_align_reflexive_antisym);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"P8b progress order total on skeleton"
         ~count:500 gen_skeleton_positions prop_align_total_on_skeleton);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"P9 mutation sanity" ~count:500 gen_sval
         prop_mutation_sane);
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"P10 vfs model" ~count:200 gen_vfs_ops
         prop_vfs_model) ]
