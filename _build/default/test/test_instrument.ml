(* Counter instrumentation tests, including the paper's Fig. 2 example. *)

module Ir = Ldx_cfg.Ir
module Lower = Ldx_cfg.Lower
module Counter = Ldx_instrument.Counter

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let instr src = Counter.instrument (Lower.lower_source src)

(* The running example of the paper (Fig. 2): an employee-record program
   whose raise computation branches on the secret title. *)
let fig2_src =
  {| fn s_raise(contract) {
       let fd = open(contract);
       let data = read(fd, 100);
       return atoi(data);
     }
     fn m_raise(salary) {
       let raise = s_raise("/etc/contract_mgr");
       if (salary > 5000) {
         let fd = creat("/tmp/seniors");
         write(fd, itoa(salary));
       }
       return raise + 2;
     }
     fn main() {
       let sock = socket("hr");
       let name = recv(sock);
       let title = recv(sock);
       let raise = 0;
       if (title == "STAFF") {
         raise = s_raise("/etc/contract_staff");
       } else {
         raise = m_raise(6000);
         let age = recv(sock);
         if (age == "SENIOR") { raise = raise + 1; }
       }
       send(sock, name);
       send(sock, itoa(raise));
     } |}

let test_fig2_fcnt () =
  let _, stats = instr fig2_src in
  let fcnt name =
    let fs =
      List.find (fun (f : Counter.func_stats) -> String.equal f.Counter.fname name)
        stats.Counter.per_func
    in
    fs.Counter.fcnt
  in
  (* s_raise: open + read = 2 (as in the paper) *)
  check int "s_raise fcnt" 2 (fcnt "s_raise");
  (* m_raise: s_raise(2) + creat + write compensated = 4
     (the paper's MRaise has 3 because its write is a single syscall;
      ours opens the file too) *)
  check int "m_raise fcnt" 4 (fcnt "m_raise");
  (* main: socket + 2 recv + max(staff: 2, mgr: 4 + recv) + 2 sends *)
  check int "main fcnt" 10 (fcnt "main")

let test_fig2_instrumentation_added () =
  let p, stats = instr fig2_src in
  check bool "added compensation" true (stats.Counter.instrs_added > 0);
  check bool "instrumentation present" true (Ir.total_instrumentation p > 0)

let test_no_compensation_for_balanced_branches () =
  (* both branches have one syscall: no Cnt_add needed on the join *)
  let p, _ =
    instr
      {| fn main() {
           let x = rand();
           if (x > 5) { print("a"); } else { print("b"); }
           print("end");
         } |}
  in
  let cnt_adds =
    Ir.count_instrs_if (function Ir.Cnt_add _ -> true | _ -> false) p
  in
  check int "no cnt_add" 0 cnt_adds

let test_compensation_for_unbalanced_branches () =
  let p, _ =
    instr
      {| fn main() {
           let x = rand();
           if (x > 5) { print("a"); print("b"); }
           print("end");
         } |}
  in
  let adds = ref [] in
  Ir.iter_instrs p (fun _ _ i ->
      match i with Ir.Cnt_add k -> adds := k :: !adds | _ -> ());
  check (Alcotest.list int) "one +2 compensation" [ 2 ] !adds

let test_loop_instrumentation () =
  let p, stats =
    instr
      {| fn main() {
           let n = rand();
           for (let i = 0; i < n; i = i + 1) { print(itoa(i)); }
           print("done");
         } |}
  in
  check int "one instrumented loop" 1 stats.Counter.loops_instrumented;
  let backs =
    Ir.count_instrs_if (function Ir.Loop_back _ -> true | _ -> false) p
  in
  let enters =
    Ir.count_instrs_if (function Ir.Loop_enter _ -> true | _ -> false) p
  in
  let exits =
    Ir.count_instrs_if (function Ir.Loop_exit _ -> true | _ -> false) p
  in
  check int "one backedge" 1 backs;
  check int "one enter" 1 enters;
  check bool "has exit" true (exits >= 1)

let test_syscall_free_loop_not_instrumented () =
  let p, stats =
    instr
      {| fn main() {
           let s = 0;
           for (let i = 0; i < 1000; i = i + 1) { s = s + i; }
           print(itoa(s));
         } |}
  in
  check int "no instrumented loops" 0 stats.Counter.loops_instrumented;
  let backs =
    Ir.count_instrs_if (function Ir.Loop_back _ -> true | _ -> false) p
  in
  check int "no barriers" 0 backs

let test_inactive_loops_config () =
  let src =
    {| fn main() {
         let s = 0;
         for (let i = 0; i < 10; i = i + 1) { s = s + i; }
         print(itoa(s));
       } |}
  in
  let _, stats =
    Counter.instrument
      ~config:{ Counter.default_config with Counter.instrument_inactive_loops = true }
      (Lower.lower_source src)
  in
  check int "forced instrumentation" 1 stats.Counter.loops_instrumented

let test_recursive_marked_fresh () =
  let p, stats =
    instr
      {| fn f(n) { if (n <= 0) { return 0; } print(itoa(n)); return f(n - 1); }
         fn main() { let x = f(3); print("end"); } |}
  in
  check int "one recursive func" 1 stats.Counter.recursive_funcs;
  let fresh =
    Ir.count_instrs_if
      (function Ir.Call { fresh_frame = true; _ } -> true | _ -> false)
      p
  in
  (* the self-call inside f and the call from main are both fresh *)
  check int "fresh call sites" 2 fresh

let test_static_counters_path_invariance_manual () =
  (* cnt_in at the join of an if must equal max of both branch exits *)
  let p =
    Lower.lower_source
      {| fn main() {
           let x = rand();
           if (x) { print("a"); print("b"); } else { print("c"); }
           print("join");
         } |}
  in
  let m = Ir.find_func_exn p "main" in
  let cnts = Counter.static_counters [] m in
  (* find the block containing the "join" syscall; its cnt_out must be 4:
     rand(1) + max(2,1) + 1 *)
  let join_cnt =
    List.filter_map
      (fun (bid, _cin, cout) ->
         let b = m.Ir.blocks.(bid) in
         let has_join =
           Array.exists
             (function
               | Ir.Syscall { args = [ Ldx_lang.Ast.Str "join" ]; _ } -> true
               | _ -> false)
             b.Ir.instrs
         in
         if has_join then Some cout else None)
      cnts
  in
  check (Alcotest.list int) "join cnt" [ 4 ] join_cnt

let test_max_static_cnt () =
  let _, stats =
    instr
      {| fn main() {
           print("1"); print("2"); print("3");
         } |}
  in
  check int "max static cnt" 3 stats.Counter.max_static_cnt

(* The paper's Fig. 4/5 loop example: the runtime counter sequence at
   syscalls must match the figure — bounded inside loops (resets on the
   back edges), bumped past in-loop values at the exits. *)
let test_fig4_counter_sequence () =
  let src =
    {| fn main() {
         let fd = open("/in");
         let hdr = read(fd, 4);
         let n = atoi(substr(hdr, 0, 2));
         let m = atoi(substr(hdr, 2, 2));
         for (let i = 0; i < n; i = i + 1) {
           for (let j = 0; j < m; j = j + 1) {
             let x = read(fd, 1);
           }
           print("w" + itoa(i));
         }
         print("send");
       } |}
  in
  let world =
    Ldx_osim.World.(empty |> with_file "/in" "0202abcdefgh")
  in
  let o = Ldx_vm.Driver.run_source ~instrument:true ~record_trace:true src world in
  (match o.Ldx_vm.Driver.trap with
   | None -> ()
   | Some m -> Alcotest.failf "trap: %s" m);
  let counters =
    List.map (fun t -> t.Ldx_vm.Driver.counter) o.Ldx_vm.Driver.trace
  in
  (* open read | [read read] write | [read read] write | send
     1    2      3    3    4        3    3    4         5     *)
  check (Alcotest.list int) "Fig. 4 counter sequence"
    [ 1; 2; 3; 3; 4; 3; 3; 4; 5 ] counters

let test_indirect_sites_counted () =
  let _, stats =
    instr
      {| fn h() { print("h"); return 0; }
         fn main() { let f = @h; let x = f(); print("m"); } |}
  in
  check int "indirect sites" 1 stats.Counter.indirect_sites

let tests =
  [ Alcotest.test_case "fig2 fcnt" `Quick test_fig2_fcnt;
    Alcotest.test_case "fig2 instrumentation" `Quick test_fig2_instrumentation_added;
    Alcotest.test_case "balanced branches" `Quick
      test_no_compensation_for_balanced_branches;
    Alcotest.test_case "unbalanced branches" `Quick
      test_compensation_for_unbalanced_branches;
    Alcotest.test_case "loop instrumentation" `Quick test_loop_instrumentation;
    Alcotest.test_case "syscall-free loop skipped" `Quick
      test_syscall_free_loop_not_instrumented;
    Alcotest.test_case "inactive loop config" `Quick test_inactive_loops_config;
    Alcotest.test_case "recursive fresh frames" `Quick test_recursive_marked_fresh;
    Alcotest.test_case "static counters manual" `Quick
      test_static_counters_path_invariance_manual;
    Alcotest.test_case "max static cnt" `Quick test_max_static_cnt;
    Alcotest.test_case "fig4 counter sequence" `Quick test_fig4_counter_sequence;
    Alcotest.test_case "indirect sites counted" `Quick test_indirect_sites_counted ]
