(* Signal handling (Sec. 7): registration, alarm-driven delivery at
   syscall boundaries, handler frames behaving like indirect calls
   (fresh counter segments), and dual-execution alignment. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World
module Driver = Ldx_vm.Driver

let check = Alcotest.check
let string = Alcotest.string
let bool = Alcotest.bool
let int = Alcotest.int

let run ?(world = World.empty) src =
  Driver.run_source ~instrument:true src world

let no_trap (o : Driver.outcome) =
  match o.Driver.trap with
  | None -> ()
  | Some m -> Alcotest.failf "unexpected trap: %s" m

let test_sigsend_runs_handler () =
  let o =
    run
      {| fn on_usr(signo) { print("sig" + itoa(signo) + ";"); return 0; }
         fn main() {
           signal(10, @on_usr);
           print("pre;");
           sigsend(10);
           print("post;");
         } |}
  in
  no_trap o;
  (* delivery happens at the sigsend syscall's return, before "post" *)
  check string "handler interleaves" "pre;sig10;post;" o.Driver.stdout

let test_unhandled_signal_ignored () =
  let o =
    run
      {| fn main() {
           print("a;");
           sigsend(31);
           print("b;");
         } |}
  in
  no_trap o;
  check string "ignored" "a;b;" o.Driver.stdout

let test_alarm_counts_syscalls () =
  let o =
    run
      {| fn on_alarm(signo) { print("ALRM;"); return 0; }
         fn main() {
           signal(14, @on_alarm);
           alarm(3);
           print("1;");
           print("2;");
           print("3;");
           print("4;");
         } |}
  in
  no_trap o;
  (* the third syscall after alarm() triggers delivery at its return *)
  check string "delivered after 3rd" "1;2;3;ALRM;4;" o.Driver.stdout

let test_nested_handler_syscalls () =
  (* handler performs syscalls of its own: the fresh counter segment
     must push and pop cleanly (like an indirect call) *)
  let o =
    run
      {| fn on_usr(signo) {
           let fd = creat("/tmp/siglog");
           write(fd, "handled");
           close(fd);
           return 0;
         }
         fn main() {
           signal(10, @on_usr);
           sigsend(10);
           let fd = open("/tmp/siglog");
           print(read(fd, 100));
           close(fd);
         } |}
      ~world:World.(empty |> with_dir "/tmp")
  in
  no_trap o;
  check string "handler effects visible" "handled" o.Driver.stdout

let test_dual_alignment_with_signals () =
  let src =
    {| fn on_alarm(signo) { print("tick;"); return 0; }
       fn main() {
         let s = socket("c");
         signal(14, @on_alarm);
         alarm(2);
         let a = recv(s);
         let b = recv(s);
         let c = recv(s);
         send(s, a + b + c);
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "x"; "y"; "z" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = []; sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config src world in
  check (Alcotest.option string) "slave clean" None r.Engine.slave.Engine.trap;
  check int "aligned" 0 r.Engine.syscall_diffs;
  check bool "no leak" false r.Engine.leak

let test_divergent_signal_detected () =
  (* the secret decides whether a handler (and its syscalls) runs *)
  let src =
    {| fn on_usr(signo) { send_report(); return 0; }
       fn send_report() {
         let s2 = socket("upstream");
         send(s2, "pinged");
       }
       fn main() {
         let s = socket("c");
         signal(10, @on_usr);
         let secret = atoi(recv(s));
         if (secret == 7) { sigsend(10); }
         print("done");
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "7" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs }
  in
  let r = Engine.run_source ~config src world in
  check (Alcotest.option string) "slave clean" None r.Engine.slave.Engine.trap;
  check bool "signal-dependent send flagged" true r.Engine.leak

let tests =
  [ Alcotest.test_case "sigsend runs handler" `Quick test_sigsend_runs_handler;
    Alcotest.test_case "unhandled ignored" `Quick test_unhandled_signal_ignored;
    Alcotest.test_case "alarm counts syscalls" `Quick test_alarm_counts_syscalls;
    Alcotest.test_case "nested handler syscalls" `Quick
      test_nested_handler_syscalls;
    Alcotest.test_case "dual alignment with signals" `Quick
      test_dual_alignment_with_signals;
    Alcotest.test_case "divergent signal detected" `Quick
      test_divergent_signal_detected ]
