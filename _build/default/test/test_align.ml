(* Focused unit tests for the position order and its rendering, plus
   instrumentation placement details (critical-edge splitting, multi-loop
   exits). *)

module Align = Ldx_core.Align
module Ir = Ldx_cfg.Ir
module Lower = Ldx_cfg.Lower
module Counter = Ldx_instrument.Counter

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let seg cnt loops = { Align.cnt; loops }

let test_seg_compare_matrix () =
  let cases =
    [ (* same loop: iteration decides before counter *)
      (seg 9 [ (1, 0) ], seg 2 [ (1, 1) ], -1);
      (* same loop & iteration: counter decides *)
      (seg 3 [ (1, 2) ], seg 5 [ (1, 2) ], -1);
      (* nested: outer equal, inner iteration decides *)
      (seg 4 [ (1, 2); (2, 0) ], seg 4 [ (1, 2); (2, 3) ], -1);
      (* disjoint loops: counter decides *)
      (seg 7 [ (1, 5) ], seg 4 [ (3, 0) ], 1);
      (* no loops at all *)
      (seg 2 [], seg 2 [], 0) ]
  in
  List.iteri
    (fun i (a, b, expected) ->
       let norm x = compare x 0 in
       check int (Printf.sprintf "case %d" i) expected
         (norm (Align.compare_seg a b));
       check int (Printf.sprintf "case %d sym" i) (-expected)
         (norm (Align.compare_seg b a)))
    cases

let test_position_depth_order () =
  let outer = seg 5 [] in
  check bool "deeper is ahead" true
    (Align.compare [ outer; seg 0 [] ] [ outer ] > 0);
  check bool "differing outer dominates depth" true
    (Align.compare [ seg 6 [] ] [ seg 5 []; seg 99 [] ] > 0)

let test_to_string_format () =
  check string "flat" "<7>" (Align.to_string [ seg 7 [] ]);
  check string "loops and segments" "<L1#2.4|0>"
    (Align.to_string [ seg 4 [ (1, 2) ]; seg 0 [] ])

(* Instrumentation placement.  Structured if-lowering materializes both
   arms, so plain branches never yield critical edges; they arise at
   loop exits when a [break] gives the exit target two predecessors while
   the loop header keeps two successors.  The Loop_exit code on the
   header's exit edge must then be SPLIT into a fresh block, never merged
   into either endpoint. *)
let test_critical_edge_split () =
  let src =
    {| fn main() {
         let i = 0;
         while (i < 10) {
           print(itoa(i));
           if (i == 3) { break; }
           i = i + 1;
         }
         print("after");
       } |}
  in
  let plain = Lower.lower_source src in
  let before = Array.length (Ir.find_func_exn plain "main").Ir.blocks in
  let prog, stats = Counter.instrument plain in
  let after = Array.length (Ir.find_func_exn prog "main").Ir.blocks in
  check bool "compensation emitted" true (stats.Counter.instrs_added > 0);
  check bool "edge split added a block" true (after > before);
  (* the instrumented program still runs and behaves identically *)
  let o1 = Ldx_vm.Driver.run plain Ldx_osim.World.empty in
  let o2 = Ldx_vm.Driver.run prog Ldx_osim.World.empty in
  check string "same output" o1.Ldx_vm.Driver.stdout o2.Ldx_vm.Driver.stdout

(* A return from inside two nested loops exits both at once: the exit
   instrumentation must pop both loop records (otherwise the VM traps
   with a loop-stack mismatch). *)
let test_multi_loop_exit_pop () =
  let src =
    {| fn scan(s) {
         for (let i = 0; i < strlen(s); i = i + 1) {
           print("i");
           for (let j = 0; j < strlen(s); j = j + 1) {
             print("j");
             if (char_at(s, j) == 122) { return i * 100 + j; }
           }
         }
         return 0 - 1;
       }
       fn main() {
         let r = scan("abz");
         print("=" + itoa(r));
       } |}
  in
  let o = Ldx_vm.Driver.run_source ~instrument:true src Ldx_osim.World.empty in
  (match o.Ldx_vm.Driver.trap with
   | None -> ()
   | Some m -> Alcotest.failf "trap: %s" m);
  check string "early return through both loops" "ijjj=2"
    o.Ldx_vm.Driver.stdout

(* Two sequential loops: the second's entry must re-push a fresh
   iteration record after the first's exit popped its own. *)
let test_sequential_loops () =
  let src =
    {| fn main() {
         for (let i = 0; i < 2; i = i + 1) { print("a"); }
         for (let j = 0; j < 3; j = j + 1) { print("b"); }
         print("end");
       } |}
  in
  let o = Ldx_vm.Driver.run_source ~instrument:true ~record_trace:true src
      Ldx_osim.World.empty in
  (match o.Ldx_vm.Driver.trap with
   | None -> ()
   | Some m -> Alcotest.failf "trap: %s" m);
  let counters =
    List.map (fun t -> t.Ldx_vm.Driver.counter) o.Ldx_vm.Driver.trace
  in
  (* loop1: 1,1; after exit: loop2 at 2: 2,2,2; end at 3 *)
  check (Alcotest.list int) "counters" [ 1; 1; 2; 2; 2; 3 ] counters

let tests =
  [ Alcotest.test_case "seg compare matrix" `Quick test_seg_compare_matrix;
    Alcotest.test_case "position depth order" `Quick test_position_depth_order;
    Alcotest.test_case "to_string format" `Quick test_to_string_format;
    Alcotest.test_case "critical edge split" `Quick test_critical_edge_split;
    Alcotest.test_case "multi-loop exit pop" `Quick test_multi_loop_exit_pop;
    Alcotest.test_case "sequential loops" `Quick test_sequential_loops ]
