(* Whole-corpus validation: all 28 benchmark analogues must
   (1) run natively without traps,
   (2) dual-execute with zero divergence when nothing is mutated,
   (3) report causality under their leak configuration,
   (4) stay silent under their benign configuration (when present). *)

module Engine = Ldx_core.Engine
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry
module Driver = Ldx_vm.Driver

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let native_ok (w : Workload.t) () =
  let o = Driver.run (Workload.lower w) w.Workload.world in
  (match o.Driver.trap with
   | None -> ()
   | Some m -> Alcotest.failf "%s trapped natively: %s" w.Workload.name m);
  check bool "did some syscalls" true (o.Driver.syscalls > 0)

let aligned_ok (w : Workload.t) () =
  let prog, _ = Workload.instrumented w in
  let r = Engine.run ~config:(Workload.no_mutation_config w) prog w.Workload.world in
  (match r.Engine.master.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "%s master trapped: %s" w.Workload.name m);
  (match r.Engine.slave.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "%s slave trapped: %s" w.Workload.name m);
  check int (w.Workload.name ^ " diffs") 0 r.Engine.syscall_diffs;
  check bool (w.Workload.name ^ " no leak") false r.Engine.leak

let leak_ok (w : Workload.t) () =
  let prog, _ = Workload.instrumented w in
  let r = Engine.run ~config:(Workload.leak_config w) prog w.Workload.world in
  (match r.Engine.slave.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "%s slave trapped: %s" w.Workload.name m);
  check bool (w.Workload.name ^ " leak detected") true r.Engine.leak;
  check bool (w.Workload.name ^ " mutated inputs > 0") true
    (r.Engine.mutated_inputs > 0)

let benign_ok (w : Workload.t) () =
  match Workload.benign_config w with
  | None -> ()
  | Some config ->
    let prog, _ = Workload.instrumented w in
    let r = Engine.run ~config prog w.Workload.world in
    (match r.Engine.slave.Engine.trap with
     | None -> ()
     | Some m -> Alcotest.failf "%s slave trapped: %s" w.Workload.name m);
    check bool (w.Workload.name ^ " benign: no leak") false r.Engine.leak

(* Concurrency set: schedule perturbation (different seeds) must not
   break the engine even when races change behaviour. *)
let perturbed_ok (w : Workload.t) () =
  let prog, _ = Workload.instrumented w in
  let config =
    { (Workload.leak_config w) with
      Engine.master_seed = 11; Engine.slave_seed = 47 }
  in
  let r = Engine.run ~config prog w.Workload.world in
  (match r.Engine.master.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "%s master trapped: %s" w.Workload.name m);
  match r.Engine.slave.Engine.trap with
  | None -> ()
  | Some m -> Alcotest.failf "%s slave trapped: %s" w.Workload.name m

let registry_complete () =
  check int "28 workloads" 28 (List.length Registry.all);
  check int "12 spec" 12 (List.length Registry.spec);
  check int "5 leak" 5 (List.length Registry.leak);
  check int "6 vulnerable" 6 (List.length Registry.vulnerable);
  check int "5 concurrency" 5 (List.length Registry.concurrency)

let tests =
  Alcotest.test_case "registry complete" `Quick registry_complete
  :: List.concat_map
    (fun (w : Workload.t) ->
       [ Alcotest.test_case (w.Workload.name ^ " native") `Quick (native_ok w);
         Alcotest.test_case (w.Workload.name ^ " aligned") `Quick (aligned_ok w);
         Alcotest.test_case (w.Workload.name ^ " leak") `Quick (leak_ok w);
         Alcotest.test_case (w.Workload.name ^ " benign") `Quick (benign_ok w) ])
    Registry.all
  @ List.map
    (fun (w : Workload.t) ->
       Alcotest.test_case (w.Workload.name ^ " perturbed") `Quick
         (perturbed_ok w))
    Registry.concurrency
