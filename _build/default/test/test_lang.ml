(* Lexer / parser / printer / checker tests. *)

open Ldx_lang

let check = Alcotest.check
let int = Alcotest.int

let parse = Parser.parse_exn

let test_lex_basic () =
  let toks = Lexer.tokenize "fn main() { let x = 1 + 2; }" in
  check int "token count" 14 (List.length toks) (* incl. EOF *)

let test_lex_string_escapes () =
  match Lexer.tokenize {| "a\nb\t\"c\"" |} with
  | [ { Lexer.tok = Lexer.STRING s; _ }; _ ] ->
    check Alcotest.string "unescaped" "a\nb\t\"c\"" s
  | _ -> Alcotest.fail "expected one string token"

let test_lex_comments () =
  let toks =
    Lexer.tokenize "// line\nfn /* block\n comment */ main() {}"
  in
  check int "comments skipped" 7 (List.length toks)

let test_lex_error_reports_position () =
  match Lexer.tokenize "fn main() {\n  let x = $;\n}" with
  | exception Lexer.Error (_, line, _) -> check int "line" 2 line
  | _ -> Alcotest.fail "expected a lexical error"

let test_parse_precedence () =
  let p = parse "fn main() { let x = 1 + 2 * 3 == 7; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ Ast.Let ("x", Ast.Binop (Ast.Eq, Ast.Binop (Ast.Add, _, _), Ast.Int 7)) ] ->
    ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_else_if () =
  let p =
    parse
      "fn main() { if (1) { } else if (2) { } else { let z = 0; } }"
  in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ Ast.If (_, _, [ Ast.If (_, _, [ Ast.Let _ ]) ]) ] -> ()
  | _ -> Alcotest.fail "else-if chain wrong"

let test_parse_funref () =
  let p = parse "fn f() { } fn main() { let g = @f; g(); }" in
  check int "two funcs" 2 (List.length p.Ast.funcs)

let test_parse_index_assign () =
  let p = parse "fn main() { let a = mkarray(2, 0); a[1] = 5; }" in
  match (List.hd p.Ast.funcs).Ast.body with
  | [ _; Ast.Index_assign ("a", Ast.Int 1, Ast.Int 5) ] -> ()
  | _ -> Alcotest.fail "index assign wrong"

let test_parse_error_position () =
  match Parser.parse_program "fn main() {\n  let = 3;\n}" with
  | exception Parser.Error (_, line, _) -> check int "line" 2 line
  | _ -> Alcotest.fail "expected a parse error"

let test_roundtrip_example () =
  let src =
    {| fn raise_calc(kind, years) {
         let rate = 0;
         if (kind == "staff") { rate = 3; } else { rate = 5; }
         for (let i = 0; i < years; i = i + 1) { rate = rate + 1; }
         return rate;
       }
       fn main() {
         let r = raise_calc("staff", 4);
         print(itoa(r));
       } |}
  in
  let p = parse src in
  let p2 = parse (Printer.to_string p) in
  check Alcotest.bool "roundtrip" true (p = p2)

let test_check_undefined_var () =
  let p = parse "fn main() { let x = y + 1; }" in
  check Alcotest.bool "diag" true (Check.check_program p <> [])

let test_check_unknown_callee () =
  let p = parse "fn main() { frob(1); }" in
  check Alcotest.bool "diag" true (Check.check_program p <> [])

let test_check_arity () =
  let p = parse "fn f(a, b) { return a + b; } fn main() { let x = f(1); }" in
  check Alcotest.bool "diag" true (Check.check_program p <> [])

let test_check_syscall_arity () =
  let p = parse "fn main() { let x = read(1); }" in
  check Alcotest.bool "diag" true (Check.check_program p <> [])

let test_check_break_outside_loop () =
  let p = parse "fn main() { break; }" in
  check Alcotest.bool "diag" true (Check.check_program p <> [])

let test_check_no_main () =
  let p = parse "fn helper() { return 0; }" in
  check Alcotest.bool "diag" true (Check.check_program p <> [])

let test_check_reserved_shadow () =
  let p = parse "fn main() { let read = 3; }" in
  check Alcotest.bool "diag" true (Check.check_program p <> [])

let test_check_clean_program () =
  let p =
    parse
      {| fn helper(n) { if (n > 0) { return helper(n - 1); } return 0; }
         fn main() { let x = helper(3); print(itoa(x)); } |}
  in
  check (Alcotest.list Alcotest.string) "no diags" []
    (List.map (fun d -> d.Check.message) (Check.check_program p))

let test_indirect_var_callee_ok () =
  let p = parse "fn f() { return 1; } fn main() { let g = @f; let x = g(); }" in
  check Alcotest.bool "no diags" true (Check.check_program p = [])

let test_program_size () =
  let p = parse "fn main() { let x = 1 + 2; print(itoa(x)); }" in
  check Alcotest.bool "positive size" true (Ast.program_size p > 0)

let tests =
  [ Alcotest.test_case "lex basic" `Quick test_lex_basic;
    Alcotest.test_case "lex string escapes" `Quick test_lex_string_escapes;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex error position" `Quick test_lex_error_reports_position;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse else-if" `Quick test_parse_else_if;
    Alcotest.test_case "parse funref" `Quick test_parse_funref;
    Alcotest.test_case "parse index assign" `Quick test_parse_index_assign;
    Alcotest.test_case "parse error position" `Quick test_parse_error_position;
    Alcotest.test_case "printer roundtrip" `Quick test_roundtrip_example;
    Alcotest.test_case "check undefined var" `Quick test_check_undefined_var;
    Alcotest.test_case "check unknown callee" `Quick test_check_unknown_callee;
    Alcotest.test_case "check arity" `Quick test_check_arity;
    Alcotest.test_case "check syscall arity" `Quick test_check_syscall_arity;
    Alcotest.test_case "check break outside loop" `Quick
      test_check_break_outside_loop;
    Alcotest.test_case "check no main" `Quick test_check_no_main;
    Alcotest.test_case "check reserved shadow" `Quick test_check_reserved_shadow;
    Alcotest.test_case "check clean program" `Quick test_check_clean_program;
    Alcotest.test_case "check indirect var callee" `Quick
      test_indirect_var_callee_ok;
    Alcotest.test_case "program size" `Quick test_program_size ]
