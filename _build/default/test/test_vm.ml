(* VM end-to-end tests: parse -> lower -> run against a simulated world. *)

module World = Ldx_osim.World
module Driver = Ldx_vm.Driver
module Value = Ldx_vm.Value

let check = Alcotest.check
let string = Alcotest.string
let int = Alcotest.int

let run ?(world = World.empty) ?(instrument = false) ?seed src =
  Driver.run_source ~instrument ?seed ~record_trace:true src world

let stdout_of ?world ?instrument ?seed src = (run ?world ?instrument ?seed src).Driver.stdout

let no_trap (o : Driver.outcome) =
  match o.Driver.trap with
  | None -> ()
  | Some m -> Alcotest.failf "unexpected trap: %s" m

let test_hello () =
  let o = run {| fn main() { print("hello"); } |} in
  no_trap o;
  check string "stdout" "hello" o.Driver.stdout

let test_arith () =
  check string "arith" "42"
    (stdout_of {| fn main() { let x = 6 * 7; print(itoa(x)); } |})

let test_string_ops () =
  check string "concat+substr" "loworld"
    (stdout_of
       {| fn main() {
            let s = "hello" + " " + "world";
            print(substr(s, 3, 2) + substr(s, 6, 5));
          } |})

let test_if_else () =
  check string "else branch" "neg"
    (stdout_of
       {| fn main() {
            let x = 0 - 5;
            if (x > 0) { print("pos"); } else { print("neg"); }
          } |})

let test_while_loop () =
  check string "sum 1..10" "55"
    (stdout_of
       {| fn main() {
            let s = 0;
            let i = 1;
            while (i <= 10) { s = s + i; i = i + 1; }
            print(itoa(s));
          } |})

let test_for_break_continue () =
  check string "evens until 8" "2468"
    (stdout_of
       {| fn main() {
            for (let i = 1; i <= 100; i = i + 1) {
              if (i % 2 == 1) { continue; }
              if (i > 8) { break; }
              print(itoa(i));
            }
          } |})

let test_functions () =
  check string "fib(10)" "55"
    (stdout_of
       {| fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
          }
          fn main() { print(itoa(fib(10))); } |})

let test_indirect_call () =
  check string "dispatch" "9;16"
    (stdout_of
       {| fn sq(x) { return x * x; }
          fn main() {
            let f = @sq;
            print(itoa(f(3)) + ";" + itoa(f(4)));
          } |})

let test_arrays () =
  check string "array sum" "30"
    (stdout_of
       {| fn main() {
            let a = mkarray(4, 0);
            a[0] = 3; a[1] = 9; a[2] = 8; a[3] = 10;
            let s = 0;
            for (let i = 0; i < len(a); i = i + 1) { s = s + a[i]; }
            print(itoa(s));
          } |})

let test_short_circuit () =
  (* the && must not evaluate a[5] when the guard fails *)
  check string "short circuit" "safe"
    (stdout_of
       {| fn main() {
            let a = mkarray(2, 7);
            let i = 5;
            if (i < len(a) && a[i] == 7) { print("unsafe"); }
            else { print("safe"); }
          } |})

let test_file_io () =
  let world = World.(empty |> with_file "/etc/conf" "rate=15") in
  let o =
    run ~world
      {| fn main() {
           let fd = open("/etc/conf");
           let data = read(fd, 100);
           close(fd);
           let i = find(data, "=");
           print(substr(data, i + 1, 10));
         } |}
  in
  no_trap o;
  check string "read conf" "15" o.Driver.stdout

let test_file_write () =
  let o =
    run
      {| fn main() {
           let fd = creat("/out.txt");
           write(fd, "alpha");
           write(fd, "beta");
           close(fd);
           let fd2 = open("/out.txt");
           print(read(fd2, 100));
         } |}
  in
  no_trap o;
  check string "append semantics" "alphabeta" o.Driver.stdout

let test_network () =
  let world = World.(empty |> with_endpoint "server" [ "req1"; "req2" ]) in
  let o =
    run ~world
      {| fn main() {
           let s = socket("server");
           let a = recv(s);
           let b = recv(s);
           send(s, upper(a) + "+" + upper(b));
         } |}
  in
  no_trap o;
  let net = o.Driver.machine.Ldx_vm.Machine.os.Ldx_osim.Os.net in
  match Ldx_osim.Net.find net "server" with
  | Some e ->
    check (Alcotest.list string) "outbox" [ "REQ1+REQ2" ]
      (Ldx_osim.Net.outbox e)
  | None -> Alcotest.fail "endpoint vanished"

let test_trap_div_zero () =
  let o = run {| fn main() { let x = 1 / 0; print(itoa(x)); } |} in
  match o.Driver.trap with
  | Some m -> check Alcotest.bool "mentions zero" true
                (Ldx_vm.Eval.string_hash m >= 0 && String.length m > 0)
  | None -> Alcotest.fail "expected a trap"

let test_trap_oob () =
  let o = run {| fn main() { let a = mkarray(2, 0); print(itoa(a[5])); } |} in
  check Alcotest.bool "trapped" true (o.Driver.trap <> None)

let test_threads_join () =
  let o =
    run
      {| fn worker(x) { return x * 10; }
         fn main() {
           let t1 = spawn(@worker, 4);
           let t2 = spawn(@worker, 5);
           print(itoa(join(t1) + join(t2)));
         } |}
  in
  no_trap o;
  check string "joined" "90" o.Driver.stdout

let test_threads_locks () =
  (* With a lock, the critical section is exclusive regardless of seed. *)
  let src =
    {| fn worker(a) {
         lock(1);
         let v = a[0];
         yield();
         a[0] = v + 1;
         unlock(1);
         return 0;
       }
       fn main() {
         let a = mkarray(1, 0);
         let t1 = spawn(@worker, a);
         let t2 = spawn(@worker, a);
         join(t1); join(t2);
         print(itoa(a[0]));
       } |}
  in
  List.iter
    (fun seed ->
       let o = run ~seed src in
       no_trap o;
       check string (Printf.sprintf "seed %d" seed) "2" o.Driver.stdout)
    [ 0; 1; 7; 13; 99 ]

let test_trace_counters_monotone_without_loops () =
  (* without loops/indirect calls, counter values along the trace are
     strictly increasing *)
  let o =
    run ~instrument:true
      {| fn helper() { print("x"); print("y"); }
         fn main() {
           print("a");
           helper();
           print("b");
         } |}
  in
  no_trap o;
  let counters = List.map (fun t -> t.Driver.counter) o.Driver.trace in
  check (Alcotest.list int) "counters" [ 1; 2; 3; 4 ] counters

let test_exit () =
  let o = run {| fn main() { print("pre"); exit(3); print("post"); } |} in
  check string "stopped at exit" "pre" o.Driver.stdout;
  check (Alcotest.option int) "code" (Some 3) o.Driver.exit_code

let test_fuel () =
  let o =
    Driver.run_source ~max_steps:10_000 ~record_trace:false
      {| fn main() { while (1) { let x = 1; } } |} World.empty
  in
  check Alcotest.bool "fuel trap" true (o.Driver.trap <> None)

let tests =
  [ Alcotest.test_case "hello" `Quick test_hello;
    Alcotest.test_case "arith" `Quick test_arith;
    Alcotest.test_case "string ops" `Quick test_string_ops;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "while" `Quick test_while_loop;
    Alcotest.test_case "for/break/continue" `Quick test_for_break_continue;
    Alcotest.test_case "recursion" `Quick test_functions;
    Alcotest.test_case "indirect call" `Quick test_indirect_call;
    Alcotest.test_case "arrays" `Quick test_arrays;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "file write" `Quick test_file_write;
    Alcotest.test_case "network" `Quick test_network;
    Alcotest.test_case "trap div by zero" `Quick test_trap_div_zero;
    Alcotest.test_case "trap out of bounds" `Quick test_trap_oob;
    Alcotest.test_case "threads join" `Quick test_threads_join;
    Alcotest.test_case "threads locks" `Quick test_threads_locks;
    Alcotest.test_case "trace counters" `Quick
      test_trace_counters_monotone_without_loops;
    Alcotest.test_case "exit" `Quick test_exit;
    Alcotest.test_case "fuel" `Quick test_fuel ]
