(* Baselines and engine extensions: TightLip, DualEx cost model, source
   attribution, final-state (file metadata) checking, trace view, table
   rendering. *)

module Engine = Ldx_core.Engine
module Tightlip = Ldx_core.Tightlip
module Dualex = Ldx_core.Dualex_index
module Attribute = Ldx_core.Attribute
module Table = Ldx_report.Table
module Trace_view = Ldx_report.Trace_view
module World = Ldx_osim.World
module Lower = Ldx_cfg.Lower
module Counter = Ldx_instrument.Counter

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let instrument src = fst (Counter.instrument (Lower.lower_source src))

let benign_chunked_reader =
  (* chunk size perturbs the syscall sequence but not the outputs *)
  {| fn main() {
       let cfd = open("/etc/conf");
       let chunk = atoi(read(cfd, 4));
       close(cfd);
       let fd = open("/data/in");
       let text = "";
       let piece = read(fd, chunk);
       while (piece != "") { text = text + piece; piece = read(fd, chunk); }
       close(fd);
       print(text);
     } |}

let benign_world =
  World.(
    empty |> with_dir "/etc" |> with_dir "/data"
    |> with_file "/etc/conf" "4"
    |> with_file "/data/in" "constant-content")

let conf_source =
  { Engine.default_config with
    Engine.sources = [ Engine.source ~sys:"read" ~arg:"/etc/conf" () ];
    sinks = Engine.File_outputs }

(* --- TightLip --- *)

let test_tightlip_flags_benign_divergence () =
  (* LDX: benign (no leak); TightLip: terminates and cries leak *)
  let prog = instrument benign_chunked_reader in
  let ldx = Engine.run ~config:conf_source prog benign_world in
  check bool "LDX: no leak" false ldx.Engine.leak;
  check bool "LDX: but diffs happened" true (ldx.Engine.syscall_diffs > 0);
  let tl = Tightlip.run ~config:conf_source prog benign_world in
  check bool "TightLip: leak reported" true tl.Tightlip.leak_reported;
  check bool "TightLip: terminated early" true tl.Tightlip.terminated_early

let test_tightlip_accepts_identical () =
  let prog = instrument benign_chunked_reader in
  let config = { conf_source with Engine.sources = [] } in
  let tl = Tightlip.run ~config prog benign_world in
  check bool "no leak" false tl.Tightlip.leak_reported;
  check bool "ran to completion" false tl.Tightlip.terminated_early;
  check int "all syscalls matched" tl.Tightlip.total_master_syscalls
    tl.Tightlip.syscalls_before_mismatch

let test_tightlip_window_tolerates_one () =
  (* with a look-ahead window, a single dropped syscall can be skipped *)
  let src =
    {| fn main() {
         let s = socket("c");
         let v = atoi(recv(s));
         if (v == 1) { let x = stat("/etc/conf"); }
         print("end");
       } |}
  in
  let world = World.(empty |> with_file "/etc/conf" "x" |> with_endpoint "c" [ "1" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.File_outputs }
  in
  let prog = instrument src in
  let strict = Tightlip.run ~config ~window:0 prog world in
  let windowed = Tightlip.run ~config ~window:2 prog world in
  check bool "strict flags it" true strict.Tightlip.leak_reported;
  check bool "window skips the stat" false windowed.Tightlip.leak_reported

(* --- DualEx cost model --- *)

let test_dualex_orders_of_magnitude () =
  let prog = instrument benign_chunked_reader in
  let native = Engine.native_cycles benign_chunked_reader benign_world in
  let r = Engine.run ~config:conf_source prog benign_world in
  let est = Dualex.of_result ~native_cycles:native r in
  check bool "ldx under 50%" true (est.Dualex.ldx_overhead < 0.5);
  check bool "dualex over 100x" true (est.Dualex.dualex_overhead > 100.0);
  check bool "gap is orders of magnitude" true
    (est.Dualex.dualex_overhead /. Float.max 0.001 est.Dualex.ldx_overhead
     > 1000.0)

(* --- source attribution --- *)

let attribution_src =
  {| fn main() {
       let s = socket("c");
       let a = recv(s);
       let b = recv(s);
       send(s, "first:" + a);
       send(s, "second:" + b);
     } |}

let test_attribution_per_source () =
  let world = World.(empty |> with_endpoint "c" [ "alpha"; "beta" ]) in
  let config =
    { Engine.default_config with
      Engine.sources =
        [ Engine.source ~sys:"recv" ~nth:1 ();
          Engine.source ~sys:"recv" ~nth:2 () ];
      sinks = Engine.Network_outputs }
  in
  let prog = instrument attribution_src in
  let attrs = Attribute.per_source ~config prog world in
  check int "two attributions" 2 (List.length attrs);
  List.iter
    (fun (a : Attribute.attribution) ->
       check int "each source flips exactly one sink" 1
         a.Attribute.result.Engine.tainted_sinks)
    attrs;
  let matrix = Attribute.sink_matrix attrs in
  check int "two sinks attributed" 2 (List.length matrix);
  List.iter
    (fun (_, sources) -> check int "one source per sink" 1 (List.length sources))
    matrix;
  check bool "render mentions sinks" true
    (String.length (Attribute.render attrs) > 0)

(* --- final-state (file/metadata) checking --- *)

let test_final_state_contents () =
  (* the secret flows into a local file no sink config watches *)
  let src =
    {| fn main() {
         let s = socket("c");
         let secret = recv(s);
         let fd = creat("/var/cache");
         write(fd, secret);
         close(fd);
         send(s, "ok");
       } |}
  in
  let world = World.(empty |> with_dir "/var" |> with_endpoint "c" [ "topsecret" ]) in
  let base =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs }
  in
  let prog = instrument src in
  let without = Engine.run ~config:base prog world in
  check bool "network sinks alone: silent" false without.Engine.leak;
  let with_check =
    Engine.run ~config:{ base with Engine.check_final_state = true } prog world
  in
  check bool "final-state check: leak" true with_check.Engine.leak;
  check bool "file-state kind" true
    (List.exists
       (fun r -> r.Engine.kind = Engine.File_state_differs)
       with_check.Engine.reports)

let test_final_state_metadata () =
  (* same contents, different write pattern: only mtimes differ *)
  let src =
    {| fn main() {
         let s = socket("c");
         let n = atoi(recv(s));
         let fd = creat("/var/flag");
         write(fd, "xx");
         close(fd);
         // rewrite the same contents n times: data equal, mtime differs
         for (let i = 0; i < n; i = i + 1) {
           let fd2 = creat("/var/flag");
           write(fd2, "xx");
           close(fd2);
         }
         send(s, "done");
       } |}
  in
  let world = World.(empty |> with_dir "/var" |> with_endpoint "c" [ "2" ]) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ];
      sinks = Engine.Network_outputs;
      check_final_state = true }
  in
  let r = Engine.run ~config (instrument src) world in
  check bool "metadata leak caught" true
    (List.exists
       (fun rep -> rep.Engine.kind = Engine.File_metadata_differs)
       r.Engine.reports)

let test_final_state_quiet_when_aligned () =
  let config = { conf_source with Engine.sources = [];
                 Engine.check_final_state = true } in
  let r = Engine.run ~config (instrument benign_chunked_reader) benign_world in
  check bool "no reports" false r.Engine.leak

(* --- trace view --- *)

let test_trace_view_renders_actions () =
  let prog = instrument benign_chunked_reader in
  let out = Trace_view.side_by_side ~config:conf_source prog benign_world in
  check bool "has copied rows" true
    (Ldx_vm.Eval.string_hash out >= 0
     && String.length out > 0
     &&
     let contains hay needle =
       let hn = String.length hay and nn = String.length needle in
       let found = ref false in
       for i = 0 to hn - nn do
         if (not !found) && String.sub hay i nn = needle then found := true
       done;
       !found
     in
     contains out "[copied]"
     && (contains out "[args-differ]" || contains out "[master-only]"
         || contains out "[slave-only]" || contains out "[decoupled]"))

(* --- table rendering --- *)

let test_table_render () =
  let t =
    Table.make ~title:"T" ~headers:[ "a"; "bb" ]
      ~aligns:[ Table.Left; Table.Right ]
      ~notes:[ "note" ]
      [ [ "x"; "1" ]; [ "yyyy"; "22" ] ]
  in
  let s = Table.render t in
  check bool "title" true (String.length s > 0);
  check bool "pads columns" true
    (let lines = String.split_on_char '\n' s in
     let widths =
       List.filter_map
         (fun l -> if String.length l > 0 && l.[0] = '|' then Some (String.length l) else None)
         lines
     in
     match widths with [] -> false | w :: rest -> List.for_all (( = ) w) rest)

let test_table_stats () =
  check bool "mean" true (Table.mean [ 1.0; 2.0; 3.0 ] = 2.0);
  check bool "geomean of equal" true
    (abs_float (Table.geomean [ 4.0; 4.0 ] -. 4.0) < 1e-9);
  check bool "stddev of constant" true (Table.stddev [ 5.0; 5.0; 5.0 ] = 0.0);
  check (Alcotest.pair int int) "min_max" (1, 9) (Table.min_max [ 3; 1; 9; 4 ]);
  check string "pct" "6.08%" (Table.pct 0.0608)

let tests =
  [ Alcotest.test_case "tightlip flags benign divergence" `Quick
      test_tightlip_flags_benign_divergence;
    Alcotest.test_case "tightlip accepts identical" `Quick
      test_tightlip_accepts_identical;
    Alcotest.test_case "tightlip window" `Quick test_tightlip_window_tolerates_one;
    Alcotest.test_case "dualex cost gap" `Quick test_dualex_orders_of_magnitude;
    Alcotest.test_case "attribution per source" `Quick test_attribution_per_source;
    Alcotest.test_case "final state contents" `Quick test_final_state_contents;
    Alcotest.test_case "final state metadata" `Quick test_final_state_metadata;
    Alcotest.test_case "final state quiet" `Quick test_final_state_quiet_when_aligned;
    Alcotest.test_case "trace view" `Quick test_trace_view_renders_actions;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table stats" `Quick test_table_stats ]
