(* The programs/ corpus: every standalone .minic file must parse, check,
   and behave as its header comment promises under dual execution. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* The sources are inlined here (tests run from the build sandbox, so we
   keep the corpus embedded rather than reading the repo tree; a fixture
   test below verifies the files on disk stay in sync). *)
let load name =
  let candidates =
    [ Filename.concat "../programs" name;
      Filename.concat "programs" name;
      Filename.concat "../../../programs" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Some (In_channel.with_open_text path In_channel.input_all)
  | None -> None

let with_program name k () =
  match load name with
  | None -> Alcotest.skip ()   (* source tree not visible from sandbox *)
  | Some src -> k src

let run ~config ~world src = Engine.run_source ~config src world

let test_greeter =
  with_program "greeter.minic" (fun src ->
      let config =
        { Engine.default_config with
          Engine.sources = [ Engine.source ~sys:"recv" () ];
          sinks = Engine.Network_outputs }
      in
      let world = World.(empty |> with_endpoint "client" [ "ada" ]) in
      let r = run ~config ~world src in
      check bool "causality" true r.Engine.leak)

let test_wordcount =
  with_program "wordcount.minic" (fun src ->
      let config =
        { Engine.default_config with
          Engine.sources = [ Engine.source ~sys:"read" ~arg:"/in.txt" () ];
          sinks = Engine.Output_syscalls }
      in
      let world =
        World.(empty |> with_file "/in.txt" "hello brave new world")
      in
      (* off-by-one preserves word structure: no strong causality *)
      let r = run ~config ~world src in
      check bool "counts stable under neighbourhood mutation" false
        r.Engine.leak;
      (* a structure-changing mutation flips the counts *)
      let config2 =
        { config with
          Engine.strategy = Ldx_core.Mutation.Swap_substring (" ", "_") }
      in
      let r2 = run ~config:config2 ~world src in
      check bool "structural mutation leaks the counts" true r2.Engine.leak)

let test_auth_gate =
  with_program "auth_gate.minic" (fun src ->
      let config =
        { Engine.default_config with
          Engine.sources = [ Engine.source ~sys:"read" ~arg:"/etc/passwd" () ];
          sinks = Engine.Network_outputs }
      in
      let world =
        World.(
          empty
          |> with_dir "/etc"
          |> with_file "/etc/passwd" "hunter2"
          |> with_endpoint "client" [ "hunter2"; "wrongpw" ])
      in
      let r = run ~config ~world src in
      check bool "secret leaks through comparison" true r.Engine.leak)

let test_overflow_victim =
  with_program "overflow_victim.minic" (fun src ->
      let config =
        { Engine.default_config with
          Engine.sources = [ Engine.source ~sys:"recv" () ];
          sinks = Engine.Attack_sinks }
      in
      let world =
        World.(
          empty
          |> with_endpoint "clients"
            [ "/short"; "/AAAAAAAAAAAAAAAAAAAAAAAAAA" ])
      in
      let r = run ~config ~world src in
      check bool "attack detected" true r.Engine.leak)

let test_retry_loop =
  with_program "retry_loop.minic" (fun src ->
      let config =
        { Engine.default_config with
          Engine.sources = [ Engine.source ~sys:"read" ~arg:"/etc/retries" () ];
          sinks = Engine.Network_outputs }
      in
      let world =
        World.(
          empty
          |> with_dir "/etc"
          |> with_file "/etc/retries" "3"
          |> with_endpoint "health" [ "ok"; "ok"; "ok"; "ok"; "ok" ]
          |> with_endpoint "upstream" [])
      in
      let r = run ~config ~world src in
      check bool "no causality at the send" false r.Engine.leak;
      check bool "but loop diffs happened" true (r.Engine.syscall_diffs > 0))

let test_worker_pool =
  with_program "worker_pool.minic" (fun src ->
      let config =
        { Engine.default_config with
          Engine.sources = [ Engine.source ~sys:"recv" ~arg:"jobs" () ];
          sinks = Engine.Network_outputs }
      in
      let world =
        World.(
          empty
          |> with_endpoint "jobs" [ "a"; "bb"; "ccc"; "dddd" ]
          |> with_endpoint "done1" [] |> with_endpoint "done2" [])
      in
      let r = run ~config ~world src in
      check bool "responses depend on jobs" true r.Engine.leak;
      check int "all four responses flagged" 4 r.Engine.tainted_sinks)

let tests =
  [ Alcotest.test_case "greeter" `Quick test_greeter;
    Alcotest.test_case "wordcount" `Quick test_wordcount;
    Alcotest.test_case "auth gate" `Quick test_auth_gate;
    Alcotest.test_case "overflow victim" `Quick test_overflow_victim;
    Alcotest.test_case "retry loop" `Quick test_retry_loop;
    Alcotest.test_case "worker pool" `Quick test_worker_pool ]
