(* CFG lowering, dominators, loops, call-graph tests. *)

module Ir = Ldx_cfg.Ir
module Lower = Ldx_cfg.Lower
module Dominators = Ldx_cfg.Dominators
module Loops = Ldx_cfg.Loops
module Callgraph = Ldx_cfg.Callgraph

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let lower src = Lower.lower_source src

let func p name = Ir.find_func_exn p name

let test_lower_straightline () =
  let p = lower "fn main() { let x = 1; let y = x + 2; print(itoa(y)); }" in
  let m = func p "main" in
  check bool "has blocks" true (Array.length m.Ir.blocks >= 2);
  check int "one syscall site" 1 (Ir.total_syscall_sites p)

let test_lower_if_diamond () =
  let p = lower "fn main() { let x = 1; if (x) { print(\"a\"); } else { print(\"b\"); } }" in
  let m = func p "main" in
  let branches =
    Array.fold_left
      (fun acc (b : Ir.block) ->
         match b.Ir.term with Ir.Branch _ -> acc + 1 | _ -> acc)
      0 m.Ir.blocks
  in
  check int "one branch" 1 branches;
  check int "two syscalls" 2 (Ir.total_syscall_sites p)

let test_lower_single_exit () =
  (* all Ret terminators collapse into one block *)
  let p =
    lower
      {| fn f(x) {
           if (x > 0) { return 1; }
           if (x < 0) { return 0 - 1; }
           return 0;
         }
         fn main() { let y = f(3); print(itoa(y)); } |}
  in
  let f = func p "f" in
  let rets =
    Array.fold_left
      (fun acc (b : Ir.block) ->
         match b.Ir.term with Ir.Ret _ -> acc + 1 | _ -> acc)
      0 f.Ir.blocks
  in
  check int "single exit" 1 rets

let test_lower_no_unreachable () =
  let p =
    lower
      {| fn main() {
           while (1) { if (rand() > 5) { break; } }
           print("done");
         } |}
  in
  let m = func p "main" in
  let reach = Ir.reachable_blocks m in
  Array.iter (fun r -> check bool "reachable" true r) reach

let test_short_circuit_control_flow () =
  (* && lowers to a branch: 2 branches for one && plus the if *)
  let p = lower "fn main() { let a = 1; if (a > 0 && a < 10) { print(\"x\"); } }" in
  let m = func p "main" in
  let branches =
    Array.fold_left
      (fun acc (b : Ir.block) ->
         match b.Ir.term with Ir.Branch _ -> acc + 1 | _ -> acc)
      0 m.Ir.blocks
  in
  check bool ">= 2 branches" true (branches >= 2)

let test_dominators_diamond () =
  let p = lower "fn main() { let x = 1; if (x) { let a = 1; } else { let b = 2; } print(\"z\"); }" in
  let m = func p "main" in
  let d = Dominators.compute m in
  (* entry dominates everything *)
  Array.iter
    (fun (b : Ir.block) ->
       check bool "entry dominates" true (Dominators.dominates d m.Ir.entry b.Ir.bid))
    m.Ir.blocks

let test_loop_detection_while () =
  let p = lower "fn main() { let i = 0; while (i < 3) { i = i + 1; } print(itoa(i)); }" in
  let m = func p "main" in
  let ld = Loops.detect m in
  check int "one loop" 1 (List.length ld.Loops.loops);
  check bool "reducible" true (Loops.is_reducible m ld)

let test_loop_detection_nested () =
  let p =
    lower
      {| fn main() {
           for (let i = 0; i < 2; i = i + 1) {
             for (let j = 0; j < 2; j = j + 1) { let x = i * j; }
           }
           print("k");
         } |}
  in
  let m = func p "main" in
  let ld = Loops.detect m in
  check int "two loops" 2 (List.length ld.Loops.loops);
  (* the inner loop body is contained in the outer *)
  match
    List.sort
      (fun (a : Loops.loop) b ->
         compare
           (Loops.IntSet.cardinal a.Loops.body)
           (Loops.IntSet.cardinal b.Loops.body))
      ld.Loops.loops
  with
  | [ inner; outer ] ->
    check bool "nesting" true
      (Loops.IntSet.subset inner.Loops.body outer.Loops.body)
  | _ -> Alcotest.fail "expected two loops"

let test_loop_exits () =
  let p =
    lower
      {| fn main() {
           let i = 0;
           while (i < 10) {
             if (i == 3) { break; }
             i = i + 1;
           }
           print(itoa(i));
         } |}
  in
  let m = func p "main" in
  let ld = Loops.detect m in
  match ld.Loops.loops with
  | [ l ] -> check bool "two exits (cond + break)" true (List.length l.Loops.exits >= 2)
  | _ -> Alcotest.fail "expected one loop"

let test_callgraph_recursion () =
  let p =
    lower
      {| fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
         fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }
         fn leaf(x) { return x; }
         fn main() { let a = even(4); let b = leaf(a); print(itoa(b)); } |}
  in
  let cg = Callgraph.compute p in
  check bool "even recursive" true (Callgraph.is_recursive cg "even");
  check bool "odd recursive" true (Callgraph.is_recursive cg "odd");
  check bool "leaf not recursive" false (Callgraph.is_recursive cg "leaf");
  check bool "main not recursive" false (Callgraph.is_recursive cg "main")

let test_callgraph_order () =
  let p =
    lower
      {| fn a() { return b() + c(); }
         fn b() { return c(); }
         fn c() { return 1; }
         fn main() { let x = a(); print(itoa(x)); } |}
  in
  let cg = Callgraph.compute p in
  let pos name =
    let rec go i = function
      | [] -> Alcotest.failf "%s not in order" name
      | x :: rest -> if String.equal x name then i else go (i + 1) rest
    in
    go 0 cg.Callgraph.order
  in
  check bool "c before b" true (pos "c" < pos "b");
  check bool "b before a" true (pos "b" < pos "a");
  check bool "a before main" true (pos "a" < pos "main")

let test_self_recursion () =
  let p =
    lower
      {| fn f(n) { if (n <= 0) { return 0; } return f(n - 1); }
         fn main() { let x = f(3); print(itoa(x)); } |}
  in
  let cg = Callgraph.compute p in
  check bool "self recursive" true (Callgraph.is_recursive cg "f")

let test_predecessors () =
  let p = lower "fn main() { let x = 1; if (x) { let a = 2; } print(\"e\"); }" in
  let m = func p "main" in
  let preds = Ir.predecessors m in
  check int "entry has no preds" 0 (List.length preds.(m.Ir.entry))

let tests =
  [ Alcotest.test_case "lower straightline" `Quick test_lower_straightline;
    Alcotest.test_case "lower if diamond" `Quick test_lower_if_diamond;
    Alcotest.test_case "lower single exit" `Quick test_lower_single_exit;
    Alcotest.test_case "lower prunes unreachable" `Quick test_lower_no_unreachable;
    Alcotest.test_case "short circuit control flow" `Quick
      test_short_circuit_control_flow;
    Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "loop detection while" `Quick test_loop_detection_while;
    Alcotest.test_case "loop detection nested" `Quick test_loop_detection_nested;
    Alcotest.test_case "loop exits" `Quick test_loop_exits;
    Alcotest.test_case "callgraph recursion" `Quick test_callgraph_recursion;
    Alcotest.test_case "callgraph order" `Quick test_callgraph_order;
    Alcotest.test_case "self recursion" `Quick test_self_recursion;
    Alcotest.test_case "predecessors" `Quick test_predecessors ]
