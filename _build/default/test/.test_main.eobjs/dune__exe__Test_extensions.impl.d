test/test_extensions.ml: Alcotest Float Ldx_cfg Ldx_core Ldx_instrument Ldx_osim Ldx_report Ldx_vm List String
