test/test_machine.ml: Alcotest Fmt Ldx_cfg Ldx_osim Ldx_vm List Printf
