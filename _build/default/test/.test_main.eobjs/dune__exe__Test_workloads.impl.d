test/test_workloads.ml: Alcotest Ldx_core Ldx_vm Ldx_workloads List
