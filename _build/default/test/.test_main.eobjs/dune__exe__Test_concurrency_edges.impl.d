test/test_concurrency_edges.ml: Alcotest Ldx_core Ldx_osim Ldx_workloads List Printf
