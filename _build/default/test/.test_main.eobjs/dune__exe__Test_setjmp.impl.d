test/test_setjmp.ml: Alcotest Ldx_core Ldx_osim Ldx_vm
