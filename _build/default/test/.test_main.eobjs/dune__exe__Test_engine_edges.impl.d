test/test_engine_edges.ml: Alcotest Ldx_cfg Ldx_core Ldx_osim List String
