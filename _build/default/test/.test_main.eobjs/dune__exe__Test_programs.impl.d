test/test_programs.ml: Alcotest Filename In_channel Ldx_core Ldx_osim List Sys
