test/test_core.ml: Alcotest Ldx_core Ldx_osim List Printf
