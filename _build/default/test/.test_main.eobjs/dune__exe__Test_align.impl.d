test/test_align.ml: Alcotest Array Ldx_cfg Ldx_core Ldx_instrument Ldx_osim Ldx_vm List Printf
