test/test_cfg.ml: Alcotest Array Ldx_cfg List String
