test/test_signals.ml: Alcotest Ldx_core Ldx_osim Ldx_vm
