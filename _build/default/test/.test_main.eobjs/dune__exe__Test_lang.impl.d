test/test_lang.ml: Alcotest Ast Check Ldx_lang Lexer List Parser Printer
