test/test_properties.ml: Array Ast Hashtbl Ldx_cfg Ldx_core Ldx_genprog Ldx_instrument Ldx_lang Ldx_osim Ldx_taint Ldx_vm List Parser Printer Printf QCheck2 QCheck_alcotest String
