test/test_instrument.ml: Alcotest Array Ldx_cfg Ldx_instrument Ldx_lang Ldx_osim Ldx_vm List String
