test/test_report.ml: Alcotest Ldx_core Ldx_report Ldx_taint Ldx_workloads List String
