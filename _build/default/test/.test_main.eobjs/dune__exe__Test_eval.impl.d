test/test_eval.ml: Alcotest Array Ast Hashtbl Ldx_lang Ldx_vm
