test/test_inputs.ml: Alcotest Ldx_workloads List String
