test/test_integration.ml: Alcotest Ldx_core Ldx_osim List Printf
