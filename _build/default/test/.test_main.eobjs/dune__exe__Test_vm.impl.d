test/test_vm.ml: Alcotest Ldx_osim Ldx_vm List Printf String
