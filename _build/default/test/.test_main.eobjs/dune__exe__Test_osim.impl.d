test/test_osim.ml: Alcotest Ldx_osim List Net Os Sval Vfs World
