(* Simulated OS tests: VFS, network, process view, cloning. *)

open Ldx_osim

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let test_vfs_create_read_write () =
  let v = Vfs.create () in
  ok (Vfs.write_file v "/a.txt" "hello");
  check string "read back" "hello" (ok (Vfs.read_file v "/a.txt"));
  ok (Vfs.append_file v "/a.txt" "!");
  check string "appended" "hello!" (ok (Vfs.read_file v "/a.txt"))

let test_vfs_dirs () =
  let v = Vfs.create () in
  ok (Vfs.mkdir v "/d");
  ok (Vfs.write_file v "/d/x" "1");
  ok (Vfs.write_file v "/d/y" "2");
  check (Alcotest.list string) "readdir" [ "x"; "y" ] (ok (Vfs.readdir v "/d"));
  (match Vfs.write_file v "/nodir/z" "3" with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "expected missing-dir error")

let test_vfs_rename_unlink () =
  let v = Vfs.create () in
  ok (Vfs.write_file v "/a" "data");
  ok (Vfs.rename v "/a" "/b");
  check bool "a gone" false (Vfs.exists v "/a");
  check string "b has data" "data" (ok (Vfs.read_file v "/b"));
  ok (Vfs.unlink v "/b");
  check bool "b gone" false (Vfs.exists v "/b")

let test_vfs_clone_isolation () =
  let v = Vfs.create () in
  ok (Vfs.write_file v "/f" "orig");
  let c = Vfs.clone v in
  ok (Vfs.write_file c "/f" "clone");
  check string "original untouched" "orig" (ok (Vfs.read_file v "/f"));
  check string "clone updated" "clone" (ok (Vfs.read_file c "/f"))

let test_net_script_and_outbox () =
  let n = Net.create () in
  Net.add_endpoint n "srv" [ "m1"; "m2" ];
  let e = Net.connect n "srv" in
  check string "m1" "m1" (Net.recv e);
  ignore (Net.send e "out1");
  check string "m2" "m2" (Net.recv e);
  check string "eof" "" (Net.recv e);
  check (Alcotest.list string) "outbox" [ "out1" ] (Net.outbox e)

let test_world_instantiation () =
  let w =
    World.(
      empty
      |> with_dir "/var"
      |> with_file "/var/log" "x"
      |> with_file "/deep/nested/file" "y"
      |> with_endpoint "ep" [ "a" ])
  in
  let v = World.instantiate_vfs w in
  check string "log" "x" (ok (Vfs.read_file v "/var/log"));
  check string "nested" "y" (ok (Vfs.read_file v "/deep/nested/file"));
  let n = World.instantiate_net w in
  check bool "endpoint" true (Net.find n "ep" <> None)

let test_os_fd_lifecycle () =
  let os = Os.create World.(empty |> with_file "/in" "abcdef") in
  let fd = Sval.int_exn (Os.exec os "open" [ Sval.S "/in" ]) in
  check bool "fd >= 3" true (fd >= 3);
  check string "first 3" "abc" (Sval.str_exn (Os.exec os "read" [ Sval.I fd; Sval.I 3 ]));
  check string "rest" "def" (Sval.str_exn (Os.exec os "read" [ Sval.I fd; Sval.I 10 ]));
  check string "eof" "" (Sval.str_exn (Os.exec os "read" [ Sval.I fd; Sval.I 10 ]));
  ignore (Os.exec os "seek" [ Sval.I fd; Sval.I 1 ]);
  check string "after seek" "bcd" (Sval.str_exn (Os.exec os "read" [ Sval.I fd; Sval.I 3 ]));
  ignore (Os.exec os "close" [ Sval.I fd ])

let test_os_open_missing () =
  let os = Os.create World.empty in
  check int "open fails" (-1) (Sval.int_exn (Os.exec os "open" [ Sval.S "/nope" ]))

let test_os_deterministic_rand_time () =
  let mk () = Os.create World.empty in
  let seq os = List.map (fun _ -> Os.exec os "rand" []) [ 1; 2; 3 ] in
  check bool "same seed, same sequence" true (seq (mk ()) = seq (mk ()));
  let os = mk () in
  let t1 = Sval.int_exn (Os.exec os "time" []) in
  let t2 = Sval.int_exn (Os.exec os "time" []) in
  check bool "time advances" true (t2 > t1)

let test_os_clone_independent () =
  let os = Os.create World.(empty |> with_file "/f" "base") in
  let c = Os.clone os in
  ignore (Os.exec c "creat" [ Sval.S "/slaveonly" ]);
  check int "master lacks clone's file" (-1)
    (Sval.int_exn (Os.exec os "open" [ Sval.S "/slaveonly" ]))

let test_os_malloc_retaddr_logs () =
  let os = Os.create World.empty in
  let a1 = Sval.int_exn (Os.exec os "malloc" [ Sval.I 64 ]) in
  let a2 = Sval.int_exn (Os.exec os "malloc" [ Sval.I 32 ]) in
  check bool "bump allocator" true (a2 > a1);
  ignore (Os.exec os "retaddr" [ Sval.I 0xdead ]);
  check (Alcotest.list int) "malloc log" [ 32; 64 ] os.Os.malloc_log;
  check (Alcotest.list int) "retaddr log" [ 0xdead ] os.Os.retaddr_log

let test_os_stdout () =
  let os = Os.create World.empty in
  ignore (Os.exec os "print" [ Sval.S "one " ]);
  ignore (Os.exec os "write" [ Sval.I 1; Sval.S "two" ]);
  check string "stdout" "one two" (Os.stdout_contents os)

let tests =
  [ Alcotest.test_case "vfs create/read/write" `Quick test_vfs_create_read_write;
    Alcotest.test_case "vfs dirs" `Quick test_vfs_dirs;
    Alcotest.test_case "vfs rename/unlink" `Quick test_vfs_rename_unlink;
    Alcotest.test_case "vfs clone isolation" `Quick test_vfs_clone_isolation;
    Alcotest.test_case "net script/outbox" `Quick test_net_script_and_outbox;
    Alcotest.test_case "world instantiation" `Quick test_world_instantiation;
    Alcotest.test_case "os fd lifecycle" `Quick test_os_fd_lifecycle;
    Alcotest.test_case "os open missing" `Quick test_os_open_missing;
    Alcotest.test_case "os deterministic rand/time" `Quick
      test_os_deterministic_rand_time;
    Alcotest.test_case "os clone independent" `Quick test_os_clone_independent;
    Alcotest.test_case "os malloc/retaddr logs" `Quick test_os_malloc_retaddr_logs;
    Alcotest.test_case "os stdout" `Quick test_os_stdout ]
