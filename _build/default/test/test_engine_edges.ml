(* Engine edge cases: directory tainting (the Sec. 7 example), exit
   divergence, custom sinks, site-scoped sources, multi-source runs,
   rename/unlink tainting, dot export smoke. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World
module Sval = Ldx_osim.Sval

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let net_cfg sources =
  { Engine.default_config with
    Engine.sources; sinks = Engine.Network_outputs }

let clean (r : Engine.result) =
  (match r.Engine.master.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "master trapped: %s" m);
  match r.Engine.slave.Engine.trap with
  | None -> ()
  | Some m -> Alcotest.failf "slave trapped: %s" m

(* Sec. 7's own example: "if the master creates a directory while the
   slave does not, the directory is tainted.  When the slave tries to
   access the directory later, it gets into the de-coupled mode." *)
let test_directory_tainting () =
  let src =
    {| fn main() {
         let s = socket("c");
         let secret = atoi(recv(s));
         if (secret == 1) { mkdir("/spool"); }
         // both executions now list the parent: contents differ
         let listing = readdir("/");
         send(s, listing);
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "1" ]) in
  let r =
    Engine.run_source
      ~config:(net_cfg [ Engine.source ~sys:"recv" () ])
      src world
  in
  clean r;
  check bool "listing leak detected" true r.Engine.leak;
  (* the slave's readdir must have run decoupled on its private VFS,
     not reused the master's listing *)
  check bool "slave saw its own listing" true
    (List.exists
       (fun (rep : Engine.sink_report) ->
          match (rep.Engine.master_args, rep.Engine.slave_args) with
          | Some _, Some s -> not (List.exists (Sval.equal (Sval.S "spool")) s)
          | _ -> true)
       r.Engine.reports)

let test_rename_tainting () =
  let src =
    {| fn main() {
         let s = socket("c");
         let secret = atoi(recv(s));
         let fd = creat("/a.txt");
         write(fd, "data");
         close(fd);
         if (secret == 1) { rename("/a.txt", "/b.txt"); }
         let present = stat("/a.txt");
         send(s, itoa(present));
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "1" ]) in
  let r =
    Engine.run_source ~config:(net_cfg [ Engine.source ~sys:"recv" () ]) src
      world
  in
  clean r;
  (* master: renamed (stat = -1); slave: still present (stat = 4) *)
  check bool "rename-dependent stat leaks" true r.Engine.leak

let test_exit_divergence () =
  let src =
    {| fn main() {
         let s = socket("c");
         let secret = atoi(recv(s));
         if (secret == 3) { exit(1); }
         send(s, "alive");
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "3" ]) in
  let r =
    Engine.run_source ~config:(net_cfg [ Engine.source ~sys:"recv" () ]) src
      world
  in
  (* master exits before the send; slave survives and sends *)
  check bool "exit-dependent sink flagged" true r.Engine.leak;
  check bool "slave-only send" true
    (List.exists
       (fun rep -> rep.Engine.kind = Engine.Missing_in_master)
       r.Engine.reports)

let test_custom_sinks () =
  (* only sends to the "audit" endpoint are sinks *)
  let src =
    {| fn main() {
         let a = socket("audit");
         let b = socket("peer");
         let s = socket("c");
         let v = recv(s);
         send(b, v);               // data-dependent but NOT a sink
         send(a, "fixed");         // sink but constant
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "x" ]) in
  let is_audit_send sys _ args =
    String.equal sys "send"
    && match args with Sval.I fd :: _ -> fd = 3 | _ -> false
  in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" ~arg:"ep:c" () ];
      sinks = Engine.Custom_sinks is_audit_send }
  in
  let r = Engine.run_source ~config src world in
  clean r;
  check bool "audit send constant: no leak" false r.Engine.leak;
  check bool "peer send differed (diff counted)" true
    (r.Engine.syscall_diffs > 0)

let test_site_scoped_source () =
  (* two recvs from the same endpoint; scope the source by static site *)
  let src =
    {| fn main() {
         let s = socket("c");
         let a = recv(s);
         let b = recv(s);
         send(s, a);
         send(s, b);
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "one"; "two" ]) in
  (* find the site of the second recv: sites are allocated in lowering
     order — socket=0, recv=1, recv=2, sends=3,4 *)
  let config = net_cfg [ Engine.source ~sys:"recv" ~site:2 () ] in
  let r = Engine.run_source ~config src world in
  clean r;
  check int "only b's sink flagged" 1 r.Engine.tainted_sinks

let test_multi_source_single_run () =
  let src =
    {| fn main() {
         let s = socket("c");
         let a = recv(s);
         let b = recv(s);
         send(s, a + ":" + b);
       } |}
  in
  let world = World.(empty |> with_endpoint "c" [ "aa"; "bb" ]) in
  let config =
    net_cfg
      [ Engine.source ~sys:"recv" ~nth:1 (); Engine.source ~sys:"recv" ~nth:2 () ]
  in
  let r = Engine.run_source ~config src world in
  clean r;
  check int "both mutated in one run" 2 r.Engine.mutated_inputs;
  check int "one combined sink" 1 r.Engine.tainted_sinks

let test_dot_export () =
  let prog =
    Ldx_cfg.Lower.lower_source
      {| fn main() {
           for (let i = 0; i < 3; i = i + 1) { print(itoa(i)); }
         } |}
  in
  let f = Ldx_cfg.Ir.find_func_exn prog "main" in
  let dot = Ldx_cfg.Dot.func_to_dot f in
  let contains hay needle =
    let hn = String.length hay and nn = String.length needle in
    let found = ref false in
    for i = 0 to hn - nn do
      if (not !found) && String.sub hay i nn = needle then found := true
    done;
    !found
  in
  check bool "digraph" true (contains dot "digraph");
  check bool "back edge marked" true (contains dot "back");
  check bool "loop head marked" true (contains dot "loop head");
  let pdot = Ldx_cfg.Dot.program_to_dot prog in
  check bool "cluster" true (contains pdot "cluster_main")

let tests =
  [ Alcotest.test_case "directory tainting" `Quick test_directory_tainting;
    Alcotest.test_case "rename tainting" `Quick test_rename_tainting;
    Alcotest.test_case "exit divergence" `Quick test_exit_divergence;
    Alcotest.test_case "custom sinks" `Quick test_custom_sinks;
    Alcotest.test_case "site-scoped source" `Quick test_site_scoped_source;
    Alcotest.test_case "multi-source single run" `Quick
      test_multi_source_single_run;
    Alcotest.test_case "dot export" `Quick test_dot_export ]
