(* Kitchen-sink integration: one program exercising every alignment-
   relevant feature at once — nested loops with breaks, recursion,
   indirect calls, signals, setjmp/longjmp, threads with locks, file and
   network I/O — dual-executed with and without mutation. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let kitchen_sink =
  {| // recursion + indirect dispatch
     fn fold_digits(s, i, f, acc) {
       if (i >= strlen(s)) { return acc; }
       let c = char_at(s, i);
       if (c >= 48 && c <= 57) { acc = f(acc, c - 48); }
       return fold_digits(s, i + 1, f, acc);
     }
     fn combine_add(a, b) { return a + b; }
     fn combine_max(a, b) { return max(a, b); }

     fn on_tick(signo) { print("t;"); return 0; }

     fn worker(ctx) {
       let shared = ctx[0];
       let wid = ctx[1];
       for (let k = 0; k < 2; k = k + 1) {
         lock(5);
         shared[0] = shared[0] + wid;
         unlock(5);
       }
       return wid;
     }

     fn main() {
       signal(14, @on_tick);
       alarm(6);
       let cfg = open("/etc/app.conf");
       let mode = read(cfg, 4);
       close(cfg);
       let sock = socket("feed");
       let combine = @combine_add;
       if (mode == "max") { combine = @combine_max; }

       // nested loops with data-dependent break
       let total = 0;
       let batches = 0;
       let stop = 0;
       while (stop == 0) {
         let msg = recv(sock);
         if (msg == "") { break; }
         batches = batches + 1;
         // inner loop over retries with an early exit
         for (let t = 0; t < 3; t = t + 1) {
           if (find(msg, "!") >= 0) { break; }
           let probe = stat("/etc/app.conf");
         }
         total = fold_digits(msg, 0, combine, total);
         if (batches >= 8) { stop = 1; }
       }

       // setjmp-protected finalization with one retry
       let tries = 0;
       let j = setjmp(1);
       tries = tries + 1;
       let ofd = creat("/out/report");
       write(ofd, "total=" + itoa(total) + " tries=" + itoa(tries));
       close(ofd);
       if (tries < 2) { longjmp(1); }

       // a worker pool stirs a shared cell under a lock
       let shared = mkarray(1, 0);
       let c1 = mkarray(2, 0); c1[0] = shared; c1[1] = 1;
       let c2 = mkarray(2, 0); c2[0] = shared; c2[1] = 2;
       let t1 = spawn(@worker, c1);
       let t2 = spawn(@worker, c2);
       join(t1); join(t2);
       send(sock, "sum=" + itoa(total) + " pool=" + itoa(shared[0]));
     } |}

let world =
  World.(
    empty
    |> with_dir "/etc" |> with_dir "/out"
    |> with_file "/etc/app.conf" "add"
    |> with_endpoint "feed"
      [ "a1b2"; "x9!"; "c3d4"; "55"; "zz!"; "67" ])

let net_sinks sources =
  { Engine.default_config with Engine.sources; sinks = Engine.Network_outputs }

let test_aligned () =
  let r = Engine.run_source ~config:(net_sinks []) kitchen_sink world in
  (match r.Engine.master.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "master: %s" m);
  (match r.Engine.slave.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "slave: %s" m);
  check int "no diffs" 0 r.Engine.syscall_diffs;
  check bool "no leak" false r.Engine.leak

let test_feed_leak () =
  let r =
    Engine.run_source
      ~config:(net_sinks [ Engine.source ~sys:"recv" ~arg:"feed" () ])
      kitchen_sink world
  in
  (match r.Engine.slave.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "slave: %s" m);
  check bool "digit sum leaks" true r.Engine.leak;
  check bool "divergence tolerated" true (r.Engine.syscall_diffs > 0)

let test_mode_leak () =
  (* mutating the combiner mode flips the indirect-call target: the sum
     becomes a max — pure control dependence into the sink *)
  let r =
    Engine.run_source
      ~config:
        { (net_sinks [ Engine.source ~sys:"read" ~arg:"/etc/app.conf" () ]) with
          Engine.strategy = Ldx_core.Mutation.Swap_substring ("add", "max") }
      kitchen_sink world
  in
  (match r.Engine.slave.Engine.trap with
   | None -> ()
   | Some m -> Alcotest.failf "slave: %s" m);
  check bool "mode leaks through indirect dispatch" true r.Engine.leak

let test_deterministic_under_seeds () =
  List.iter
    (fun (ms, ss) ->
       let config =
         { (net_sinks []) with Engine.master_seed = ms; slave_seed = ss }
       in
       let r = Engine.run_source ~config kitchen_sink world in
       check int
         (Printf.sprintf "seeds %d/%d aligned" ms ss)
         0 r.Engine.syscall_diffs)
    [ (0, 3); (9, 2); (31, 77) ]

let tests =
  [ Alcotest.test_case "kitchen sink aligned" `Quick test_aligned;
    Alcotest.test_case "kitchen sink feed leak" `Quick test_feed_leak;
    Alcotest.test_case "kitchen sink mode leak" `Quick test_mode_leak;
    Alcotest.test_case "kitchen sink seeds" `Quick
      test_deterministic_under_seeds ]
