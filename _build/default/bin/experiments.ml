(* Experiment driver: regenerates every table and figure of the paper.

     dune exec bin/experiments.exe -- all --runs 100
     dune exec bin/experiments.exe -- table3
     dune exec bin/experiments.exe -- case_gcc *)

open Cmdliner
module E = Ldx_report.Experiments
module T = Ldx_report.Table

let experiments : (string * (int -> string)) list =
  [ ("table1", fun _ -> T.render (E.table1 ()));
    ("fig6", fun _ -> T.render (E.fig6 ()));
    ("table2", fun _ -> T.render (E.table2 ()));
    ("table3", fun _ -> T.render (E.table3 ()));
    ("table4", fun runs -> T.render (E.table4 ~runs ()));
    ("case_gcc", fun _ -> E.case_gcc ());
    ("case_firefox", fun _ -> E.case_firefox ());
    ("fp_check", fun _ -> T.render (E.fp_check ()));
    ("mutation", fun _ -> T.render (E.mutation_study ()));
    ("ablation_align", fun _ -> T.render (E.ablation_alignment ()));
    ("ablation_loops", fun _ -> T.render (E.ablation_loops ()));
    ("all", fun runs -> E.all ~runs ()) ]

let which =
  let doc =
    "Which experiment to run: " ^ String.concat ", " (List.map fst experiments)
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let runs =
  let doc = "Trials for the Table 4 concurrency experiment." in
  Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N" ~doc)

let run which runs =
  match List.assoc_opt which experiments with
  | Some f ->
    print_string (f runs);
    `Ok ()
  | None ->
    `Error
      (false,
       Printf.sprintf "unknown experiment %S (try: %s)" which
         (String.concat ", " (List.map fst experiments)))

let cmd =
  let info =
    Cmd.info "experiments" ~doc:"Regenerate the LDX paper's tables and figures"
  in
  Cmd.v info Term.(ret (const run $ which $ runs))

let () = exit (Cmd.eval cmd)
