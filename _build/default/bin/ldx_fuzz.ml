(* ldx_fuzz: standalone invariant fuzzer for the alignment machinery.

     dune exec bin/ldx_fuzz.exe -- --runs 2000 --seed 7

   Generates random structured MiniC programs (the same generator the
   property suite uses, from ldx.genprog) and checks, per program:
   - instrumentation is semantically transparent (P2),
   - no-mutation dual execution aligns perfectly (P3),
   - mutation never makes the slave trap (P4),
   - random race-free concurrent programs align under random seeds (P13).

   Exits non-zero and prints the offending program on the first failure —
   useful for long soak runs beyond the CI-sized qcheck budgets. *)

open Cmdliner
module Gen_minic = Ldx_genprog.Gen_minic
module Engine = Ldx_core.Engine
module Counter = Ldx_instrument.Counter
module Lower = Ldx_cfg.Lower
module Driver = Ldx_vm.Driver
module World = Ldx_osim.World

let test_world =
  World.(
    empty
    |> with_endpoint "in" [ "3"; "14"; "15"; "9"; "2"; "6"; "5"; "35"; "8" ])

type failure = { f_check : string; f_detail : string; f_program : string }

let check_program (p : Ldx_lang.Ast.program) : failure option =
  let src = Gen_minic.print_program p in
  let fail f_check f_detail = Some { f_check; f_detail; f_program = src } in
  let plainp = Lower.lower_program p in
  let instp, _ = Counter.instrument (Lower.lower_program p) in
  let plain = Driver.run plainp test_world in
  let inst = Driver.run instp test_world in
  if plain.Driver.trap <> None || inst.Driver.trap <> None then
    fail "transparency" "a native run trapped"
  else if not (String.equal plain.Driver.stdout inst.Driver.stdout) then
    fail "transparency" "instrumentation changed the output"
  else begin
    let no_mut = { Engine.default_config with Engine.sources = [] } in
    let r = Engine.run ~config:no_mut instp test_world in
    if r.Engine.syscall_diffs <> 0 || r.Engine.leak then
      fail "alignment"
        (Printf.sprintf "diffs=%d leak=%b" r.Engine.syscall_diffs r.Engine.leak)
    else begin
      let mut =
        { Engine.default_config with
          Engine.sources = [ Engine.source ~sys:"recv" () ] }
      in
      let r = Engine.run ~config:mut instp test_world in
      match r.Engine.slave.Engine.trap with
      | Some m -> fail "divergence tolerance" ("slave trapped: " ^ m)
      | None -> None
    end
  end

let check_concurrent (p : Ldx_lang.Ast.program) ms ss : failure option =
  let src = Gen_minic.print_program p in
  let instp, _ = Counter.instrument (Lower.lower_program p) in
  let config =
    { Engine.default_config with
      Engine.sources = []; Engine.master_seed = ms; slave_seed = ss }
  in
  let r = Engine.run ~config instp World.empty in
  if r.Engine.syscall_diffs <> 0 || r.Engine.leak
     || r.Engine.slave.Engine.trap <> None
  then
    Some
      { f_check = Printf.sprintf "concurrent alignment (seeds %d/%d)" ms ss;
        f_detail =
          Printf.sprintf "diffs=%d leak=%b trap=%s" r.Engine.syscall_diffs
            r.Engine.leak
            (Option.value ~default:"-" r.Engine.slave.Engine.trap);
        f_program = src }
  else None

let runs_arg =
  Arg.(value & opt int 500 & info [ "runs" ] ~docv:"N" ~doc:"Programs per class.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let fuzz runs seed =
  let rand = Random.State.make [| seed |] in
  let sequential = QCheck2.Gen.generate ~n:runs ~rand Gen_minic.gen_program in
  let concurrent =
    QCheck2.Gen.generate ~n:runs ~rand Gen_minic.gen_conc_program
  in
  let checked = ref 0 in
  let failed = ref None in
  let note f = if !failed = None then failed := Some f in
  List.iter
    (fun p ->
       if !failed = None then begin
         incr checked;
         Option.iter note (check_program p)
       end)
    sequential;
  List.iter
    (fun p ->
       if !failed = None then begin
         incr checked;
         Option.iter note
           (check_concurrent p
              (Random.State.int rand 1000)
              (Random.State.int rand 1000))
       end)
    concurrent;
  match !failed with
  | None ->
    Printf.printf "ok: %d programs checked, all invariants hold\n" !checked;
    `Ok ()
  | Some f ->
    Printf.printf "FAILURE after %d programs\ncheck:  %s\ndetail: %s\n\n%s\n"
      !checked f.f_check f.f_detail f.f_program;
    `Error (false, "invariant violated")

let cmd =
  let info =
    Cmd.info "ldx_fuzz" ~doc:"Fuzz the LDX alignment invariants"
  in
  Cmd.v info Term.(ret (const fuzz $ runs_arg $ seed_arg))

let () = exit (Cmd.eval cmd)
