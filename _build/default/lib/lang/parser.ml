(* Recursive-descent parser for MiniC with precedence climbing. *)

exception Error of string * int * int  (* message, line, col *)

type state = { toks : Lexer.t array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  let t = peek st in
  raise (Error (Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string t.tok),
                t.line, t.col))

let eat_punct st p =
  match (peek st).tok with
  | Lexer.PUNCT q when String.equal p q -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" p)

let eat_op st o =
  match (peek st).tok with
  | Lexer.OP q when String.equal o q -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" o)

let eat_kw st k =
  match (peek st).tok with
  | Lexer.KW q when String.equal k q -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" k)

let eat_ident st =
  match (peek st).tok with
  | Lexer.IDENT s -> advance st; s
  | _ -> fail st "expected identifier"

let at_punct st p =
  match (peek st).tok with Lexer.PUNCT q -> String.equal p q | _ -> false

let at_op st o =
  match (peek st).tok with Lexer.OP q -> String.equal o q | _ -> false

let at_kw st k =
  match (peek st).tok with Lexer.KW q -> String.equal k q | _ -> false

(* Binary operator precedence: higher binds tighter. *)
let precedence = function
  | "||" -> 1 | "&&" -> 2
  | "|" -> 3 | "^" -> 4 | "&" -> 5
  | "==" | "!=" -> 6
  | "<" | "<=" | ">" | ">=" -> 7
  | "<<" | ">>" -> 8
  | "+" | "-" -> 9
  | "*" | "/" | "%" -> 10
  | _ -> 0

let binop_of_string = function
  | "+" -> Ast.Add | "-" -> Ast.Sub | "*" -> Ast.Mul | "/" -> Ast.Div
  | "%" -> Ast.Mod | "==" -> Ast.Eq | "!=" -> Ast.Ne | "<" -> Ast.Lt
  | "<=" -> Ast.Le | ">" -> Ast.Gt | ">=" -> Ast.Ge | "&&" -> Ast.And
  | "||" -> Ast.Or | "&" -> Ast.Band | "|" -> Ast.Bor | "^" -> Ast.Bxor
  | "<<" -> Ast.Shl | ">>" -> Ast.Shr
  | s -> invalid_arg ("binop_of_string: " ^ s)

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = parse_unary st in
  parse_binary_rest st lhs min_prec

and parse_binary_rest st lhs min_prec =
  match (peek st).tok with
  | Lexer.OP o when precedence o >= min_prec && precedence o > 0 ->
    advance st;
    let rhs = parse_binary st (precedence o + 1) in
    parse_binary_rest st (Ast.Binop (binop_of_string o, lhs, rhs)) min_prec
  | _ -> lhs

and parse_unary st =
  if at_op st "-" then (advance st; Ast.Unop (Ast.Neg, parse_unary st))
  else if at_op st "!" then (advance st; Ast.Unop (Ast.Not, parse_unary st))
  else parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  parse_postfix_rest st e

and parse_postfix_rest st e =
  if at_punct st "[" then begin
    advance st;
    let i = parse_expr st in
    eat_punct st "]";
    parse_postfix_rest st (Ast.Index (e, i))
  end
  else e

and parse_primary st =
  match (peek st).tok with
  | Lexer.INT n -> advance st; Ast.Int n
  | Lexer.STRING s -> advance st; Ast.Str s
  | Lexer.KW "true" -> advance st; Ast.Int 1
  | Lexer.KW "false" -> advance st; Ast.Int 0
  | Lexer.PUNCT "@" ->
    advance st;
    Ast.Funref (eat_ident st)
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | Lexer.IDENT name ->
    advance st;
    if at_punct st "(" then begin
      advance st;
      let args = parse_args st [] in
      Ast.Call (name, args)
    end
    else Ast.Var name
  | _ -> fail st "expected expression"

and parse_args st acc =
  if at_punct st ")" then (advance st; List.rev acc)
  else
    let e = parse_expr st in
    if at_punct st "," then (advance st; parse_args st (e :: acc))
    else (eat_punct st ")"; List.rev (e :: acc))

(* A "simple" statement (no trailing ';'): let / assignment / expression. *)
let parse_simple st =
  if at_kw st "let" then begin
    advance st;
    let x = eat_ident st in
    eat_op st "=";
    Ast.Let (x, parse_expr st)
  end
  else
    match (peek st).tok with
    | Lexer.IDENT name when (match st.toks.(st.pos + 1).tok with
                             | Lexer.OP "=" -> true
                             | _ -> false) ->
      advance st; advance st;
      Ast.Assign (name, parse_expr st)
    | _ ->
      (* Could be an index assignment [a[i] = e] or a plain expression. *)
      let save = st.pos in
      let e = parse_expr st in
      if at_op st "=" then begin
        match e with
        | Ast.Index (Ast.Var a, i) ->
          advance st;
          Ast.Index_assign (a, i, parse_expr st)
        | _ -> st.pos <- save; fail st "invalid assignment target"
      end
      else Ast.Expr e

let rec parse_stmt st : Ast.stmt =
  if at_kw st "if" then parse_if st
  else if at_kw st "while" then begin
    advance st;
    eat_punct st "(";
    let c = parse_expr st in
    eat_punct st ")";
    Ast.While (c, parse_block st)
  end
  else if at_kw st "for" then parse_for st
  else if at_kw st "break" then (advance st; eat_punct st ";"; Ast.Break)
  else if at_kw st "continue" then (advance st; eat_punct st ";"; Ast.Continue)
  else if at_kw st "return" then begin
    advance st;
    if at_punct st ";" then (advance st; Ast.Return None)
    else
      let e = parse_expr st in
      eat_punct st ";";
      Ast.Return (Some e)
  end
  else begin
    let s = parse_simple st in
    eat_punct st ";";
    s
  end

and parse_if st =
  eat_kw st "if";
  eat_punct st "(";
  let c = parse_expr st in
  eat_punct st ")";
  let t = parse_block st in
  if at_kw st "else" then begin
    advance st;
    if at_kw st "if" then Ast.If (c, t, [ parse_if st ])
    else Ast.If (c, t, parse_block st)
  end
  else Ast.If (c, t, [])

and parse_for st =
  eat_kw st "for";
  eat_punct st "(";
  let init = if at_punct st ";" then None else Some (parse_simple st) in
  eat_punct st ";";
  let cond = if at_punct st ";" then None else Some (parse_expr st) in
  eat_punct st ";";
  let step = if at_punct st ")" then None else Some (parse_simple st) in
  eat_punct st ")";
  Ast.For (init, cond, step, parse_block st)

and parse_block st : Ast.block =
  eat_punct st "{";
  let rec go acc =
    if at_punct st "}" then (advance st; List.rev acc)
    else go (parse_stmt st :: acc)
  in
  go []

let parse_fundef st : Ast.fundef =
  eat_kw st "fn";
  let fname = eat_ident st in
  eat_punct st "(";
  let rec params acc =
    if at_punct st ")" then (advance st; List.rev acc)
    else
      let p = eat_ident st in
      if at_punct st "," then (advance st; params (p :: acc))
      else (eat_punct st ")"; List.rev (p :: acc))
  in
  let params = params [] in
  let body = parse_block st in
  { Ast.fname; params; body }

let parse_program (src : string) : Ast.program =
  let toks =
    try Array.of_list (Lexer.tokenize src)
    with Lexer.Error (m, l, c) -> raise (Error ("lexical error: " ^ m, l, c))
  in
  let st = { toks; pos = 0 } in
  let rec go acc =
    match (peek st).tok with
    | Lexer.EOF -> { Ast.funcs = List.rev acc }
    | _ -> go (parse_fundef st :: acc)
  in
  go []

(* Convenience: parse or die with a location-annotated failure. *)
let parse_exn src =
  try parse_program src
  with Error (m, l, c) ->
    failwith (Printf.sprintf "parse error at %d:%d: %s" l c m)
