(* Classification of reserved call names.

   MiniC has no [extern] declarations; instead a fixed set of names is
   reserved for builtins (pure library functions evaluated in-process) and
   syscalls (side-effecting operations serviced by the simulated OS and
   counted by the counter instrumentation).  Everything else must resolve
   to a user function or a local variable holding a function pointer. *)

type arity = Exact of int | At_least of int

(* Pure builtins.  The taint baselines treat some of these as "library
   calls": TaintGrind models them all; LibDFT drops taint across the ones
   in [libdft_unmodeled] (the modelling gap observed in Sec. 8.3). *)
let builtins : (string * arity) list = [
  ("itoa", Exact 1);          (* int -> string *)
  ("atoi", Exact 1);          (* string -> int *)
  ("strlen", Exact 1);
  ("substr", Exact 3);        (* s, start, len *)
  ("char_at", Exact 2);       (* s, i -> int code *)
  ("chr", Exact 1);           (* int code -> 1-char string *)
  ("find", Exact 2);          (* haystack, needle -> index or -1 *)
  ("hash", Exact 1);          (* string -> int *)
  ("min", Exact 2);
  ("max", Exact 2);
  ("abs", Exact 1);
  ("len", Exact 1);           (* array length *)
  ("mkarray", Exact 2);       (* n, init *)
  ("upper", Exact 1);
  ("lower", Exact 1);
  ("starts_with", Exact 2);
  ("repeat", Exact 2);        (* s, n *)
  ("bit", Exact 2);           (* x, i -> (x >> i) land 1 *)
]

(* Builtins whose taint propagation the LibDFT-like baseline mismodels
   (taint of the result is dropped).  Mirrors the paper's finding that
   LIBDFT "does not correctly model taint propagation for some library
   calls", making its tainted sinks a subset of TaintGrind's.  The set is
   calibrated so the detection gap lands near the paper's measured ratio
   (LIBDFT ~20% vs TAINTGRIND ~31% of LDX). *)
let libdft_unmodeled = [ "substr"; "find"; "hash"; "chr"; "repeat" ]

(* Syscalls: serviced by the simulated OS; each dynamic occurrence
   increments the alignment counter.  Arity is checked at lowering. *)
let syscalls : (string * arity) list = [
  ("open", Exact 1);          (* path -> fd (-1 on failure) *)
  ("creat", Exact 1);         (* path -> fd, truncating/creating *)
  ("read", Exact 2);          (* fd, nbytes -> string ("" at EOF) *)
  ("write", Exact 2);         (* fd, string -> bytes written *)
  ("close", Exact 1);
  ("seek", Exact 2);          (* fd, pos *)
  ("socket", Exact 1);        (* endpoint name -> sock fd *)
  ("recv", Exact 1);          (* sock -> string *)
  ("send", Exact 2);          (* sock, string -> bytes *)
  ("mkdir", Exact 1);
  ("unlink", Exact 1);
  ("rename", Exact 2);
  ("stat", Exact 1);          (* path -> size or -1 *)
  ("readdir", Exact 1);       (* path -> ";"-joined entries *)
  ("time", Exact 0);
  ("rand", Exact 0);
  ("getpid", Exact 0);
  ("print", Exact 1);         (* write to stdout *)
  ("exit", Exact 1);
  ("malloc", Exact 1);        (* models a memory-management sink *)
  ("free", Exact 1);
  ("retaddr", Exact 1);       (* models the function-return-address sink *)
  ("lock", Exact 1);
  ("unlock", Exact 1);
  ("spawn", Exact 2);         (* funptr, arg -> tid *)
  ("join", Exact 1);          (* tid -> thread return value *)
  ("yield", Exact 0);
  ("setjmp", Exact 1);        (* buf id -> 0, or 1 when longjmp'd to *)
  ("longjmp", Exact 1);       (* buf id; transfers control *)
  ("signal", Exact 2);        (* signo, handler funptr *)
  ("alarm", Exact 1);         (* deliver SIGALRM(14) after n syscalls *)
  ("sigsend", Exact 1);       (* raise a signal on the current thread *)
]

let mem_assoc name table = List.mem_assoc name table

let is_builtin name = mem_assoc name builtins
let is_syscall name = mem_assoc name syscalls

let arity_matches arity n =
  match arity with Exact k -> n = k | At_least k -> n >= k

let builtin_arity name = List.assoc_opt name builtins
let syscall_arity name = List.assoc_opt name syscalls

(* Syscalls that the paper's default configuration treats as potential
   sinks (output-related) vs. sources (input-related). *)
let output_syscalls = [ "write"; "send"; "print"; "malloc"; "retaddr" ]
let input_syscalls = [ "read"; "recv"; "rand"; "time"; "stat"; "readdir" ]

let is_output_syscall name = List.mem name output_syscalls
let is_input_syscall name = List.mem name input_syscalls

let reserved name = is_builtin name || is_syscall name
