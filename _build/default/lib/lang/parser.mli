(** Recursive-descent parser for MiniC. *)

(** Raised on a syntax error: [(message, line, col)]. *)
exception Error of string * int * int

(** Parse a whole program (a sequence of [fn] definitions).
    @raise Error on syntax errors (lexical errors are re-raised as
    [Error] with a "lexical error" message). *)
val parse_program : string -> Ast.program

(** Like {!parse_program} but raises [Failure] with a formatted
    "parse error at line:col" message — convenient at API boundaries. *)
val parse_exn : string -> Ast.program
