(** Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | STRING of string          (** with escapes already decoded *)
  | IDENT of string
  | KW of string              (** fn let if else while for break continue return true false *)
  | PUNCT of string           (** ( ) {| |} [ ] , ; @ *)
  | OP of string              (** arithmetic / comparison / logic / assignment *)
  | EOF

(** A token with its source position (1-based line and column). *)
type t = { tok : token; line : int; col : int }

(** Raised on malformed input: [(message, line, col)]. *)
exception Error of string * int * int

val keywords : string list
val token_to_string : token -> string
val is_ident_start : char -> bool
val is_digit : char -> bool
val is_ident_char : char -> bool

(** Tokenize a whole source string; the result always ends with [EOF].
    Comments are [//] to end of line and [/* ... */] (non-nested).
    @raise Error on malformed input. *)
val tokenize : string -> t list
