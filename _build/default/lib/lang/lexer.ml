(* Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string            (* fn let if else while for break continue return *)
  | PUNCT of string         (* ( ) { } [ ] , ; @ *)
  | OP of string            (* + - * / % == != < <= > >= && || ! & | ^ << >> = *)
  | EOF

type t = { tok : token; line : int; col : int }

exception Error of string * int * int  (* message, line, col *)

let keywords = [ "fn"; "let"; "if"; "else"; "while"; "for";
                 "break"; "continue"; "return"; "true"; "false" ]

let token_to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | OP s -> s
  | EOF -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c

(* Tokenize a whole source string.  Comments are '//' to end of line and
   '/* ... */' (non-nested). *)
let tokenize (src : string) : t list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let emit tok pos = toks := { tok; line = !line; col = pos - !bol + 1 } :: !toks in
  let fail msg pos = raise (Error (msg, !line, pos - !bol + 1)) in
  let rec go i =
    if i >= n then emit EOF i
    else
      let c = src.[i] in
      if c = '\n' then (incr line; bol := i + 1; go (i + 1))
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then skip_line (i + 2)
      else if c = '/' && i + 1 < n && src.[i + 1] = '*' then skip_block (i + 2)
      else if is_digit c then lex_int i i
      else if is_ident_start c then lex_ident i i
      else if c = '"' then lex_string (i + 1) (Buffer.create 16) i
      else lex_op i
  and skip_line i =
    if i >= n then emit EOF i
    else if src.[i] = '\n' then (incr line; bol := i + 1; go (i + 1))
    else skip_line (i + 1)
  and skip_block i =
    if i + 1 >= n then fail "unterminated block comment" i
    else if src.[i] = '*' && src.[i + 1] = '/' then go (i + 2)
    else begin
      if src.[i] = '\n' then (incr line; bol := i + 1);
      skip_block (i + 1)
    end
  and lex_int start i =
    if i < n && is_digit src.[i] then lex_int start (i + 1)
    else begin
      emit (INT (int_of_string (String.sub src start (i - start)))) start;
      go i
    end
  and lex_ident start i =
    if i < n && is_ident_char src.[i] then lex_ident start (i + 1)
    else begin
      let s = String.sub src start (i - start) in
      emit (if List.mem s keywords then KW s else IDENT s) start;
      go i
    end
  and lex_string i buf start =
    if i >= n then fail "unterminated string literal" start
    else
      match src.[i] with
      | '"' -> emit (STRING (Buffer.contents buf)) start; go (i + 1)
      | '\\' when i + 1 < n ->
        let c =
          match src.[i + 1] with
          | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r'
          | '\\' -> '\\' | '"' -> '"' | '0' -> '\000'
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c) i
        in
        Buffer.add_char buf c;
        lex_string (i + 2) buf start
      | '\n' -> fail "newline in string literal" i
      | c -> Buffer.add_char buf c; lex_string (i + 1) buf start
  and lex_op i =
    let two = if i + 1 < n then String.sub src i 2 else "" in
    match two with
    | "==" | "!=" | "<=" | ">=" | "&&" | "||" | "<<" | ">>" ->
      emit (OP two) i; go (i + 2)
    | _ ->
      (match src.[i] with
       | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '&' | '|' | '^' | '=' ->
         emit (OP (String.make 1 src.[i])) i; go (i + 1)
       | '(' | ')' | '{' | '}' | '[' | ']' | ',' | ';' | '@' ->
         emit (PUNCT (String.make 1 src.[i])) i; go (i + 1)
       | c -> fail (Printf.sprintf "unexpected character '%c'" c) i)
  in
  go 0;
  List.rev !toks
