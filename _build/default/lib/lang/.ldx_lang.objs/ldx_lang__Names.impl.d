lib/lang/names.ml: List
