lib/lang/names.mli:
