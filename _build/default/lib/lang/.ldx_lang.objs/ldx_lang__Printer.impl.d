lib/lang/printer.ml: Ast Buffer List Printf String
