lib/lang/lexer.mli:
