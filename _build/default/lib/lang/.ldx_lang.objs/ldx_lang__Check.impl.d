lib/lang/check.ml: Ast List Names Printf Set String
