(* Abstract syntax of MiniC, the substrate language LDX instruments.

   MiniC is deliberately close to the C subset the paper's LLVM pass
   consumes: scalar ints, strings, arrays, functions, loops, recursion and
   function pointers.  Side-effecting operations (syscalls) are ordinary
   calls to reserved names (see {!Names}); the CFG lowering classifies
   them. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Not

type expr =
  | Int of int
  | Str of string
  | Var of string
  | Funref of string                   (* [@f]: a function-pointer literal *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Index of expr * expr               (* a[i] *)
  | Call of string * expr list
      (* Call is unresolved at parse time: the callee name may denote a
         user function, a builtin, a syscall, or a local variable holding
         a function pointer (indirect call). *)

type stmt =
  | Let of string * expr               (* let x = e; introduces x *)
  | Assign of string * expr
  | Index_assign of string * expr * expr  (* a[i] = e; *)
  | If of expr * block * block
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
      (* init / cond / step; init and step are simple statements
         (Let/Assign/Index_assign/Expr).  Kept as a distinct node so that
         lowering can point [Continue] at the step. *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr

and block = stmt list

type fundef = {
  fname : string;
  params : string list;
  body : block;
}

type program = { funcs : fundef list }

let find_func prog name =
  List.find_opt (fun f -> String.equal f.fname name) prog.funcs

let func_names prog = List.map (fun f -> f.fname) prog.funcs

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_to_string = function Neg -> "-" | Not -> "!"

(* Structural statistics used by Table 1. *)

let rec expr_size = function
  | Int _ | Str _ | Var _ | Funref _ -> 1
  | Unop (_, e) -> 1 + expr_size e
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Index (a, i) -> 1 + expr_size a + expr_size i
  | Call (_, args) -> 1 + List.fold_left (fun n e -> n + expr_size e) 0 args

let rec stmt_size = function
  | Let (_, e) | Assign (_, e) | Expr e -> 1 + expr_size e
  | Index_assign (_, i, e) -> 1 + expr_size i + expr_size e
  | If (c, t, f) -> 1 + expr_size c + block_size t + block_size f
  | While (c, b) -> 1 + expr_size c + block_size b
  | For (init, cond, step, b) ->
    let opt_stmt = function None -> 0 | Some s -> stmt_size s in
    let opt_expr = function None -> 0 | Some e -> expr_size e in
    1 + opt_stmt init + opt_expr cond + opt_stmt step + block_size b
  | Break | Continue -> 1
  | Return None -> 1
  | Return (Some e) -> 1 + expr_size e

and block_size b = List.fold_left (fun n s -> n + stmt_size s) 0 b

let func_size f = block_size f.body

let program_size p = List.fold_left (fun n f -> n + func_size f) 0 p.funcs
