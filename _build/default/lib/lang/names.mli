(** Reserved call names: pure builtins and (simulated) syscalls.

    MiniC has no extern declarations; a fixed set of names is reserved.
    The CFG lowering classifies every call through this module. *)

(** Arity constraint of a reserved name. *)
type arity = Exact of int | At_least of int

(** Pure builtins with their arities ([itoa], [substr], [mkarray], ...). *)
val builtins : (string * arity) list

(** Builtins whose taint propagation the LibDFT-like baseline mismodels
    (result taint dropped), per the paper's Sec. 8.3 observation. *)
val libdft_unmodeled : string list

(** Side-effecting syscalls serviced by the simulated OS (or, for thread
    operations / signals / setjmp, by the VM), each counted by the
    alignment counter. *)
val syscalls : (string * arity) list

val is_builtin : string -> bool
val is_syscall : string -> bool

(** [arity_matches a n] holds when [n] arguments satisfy constraint [a]. *)
val arity_matches : arity -> int -> bool

val builtin_arity : string -> arity option
val syscall_arity : string -> arity option

(** Output-related syscalls — the default sink candidates. *)
val output_syscalls : string list

(** Input-related syscalls — the default source candidates. *)
val input_syscalls : string list

val is_output_syscall : string -> bool
val is_input_syscall : string -> bool

(** A name is reserved when it is a builtin or a syscall; user functions
    and variables may not shadow it. *)
val reserved : string -> bool
