(* Pretty-printer: AST back to parseable MiniC source.

   [Parser.parse_exn (to_string p)] must yield an AST equal to [p]; the
   property is checked by qcheck tests.  Expressions are printed fully
   parenthesized, which keeps the printer trivially correct w.r.t.
   precedence. *)

open Ast

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\\' -> Buffer.add_string buf "\\\\"
       | '"' -> Buffer.add_string buf "\\\""
       | '\000' -> Buffer.add_string buf "\\0"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_expr buf = function
  | Int n ->
    if n < 0 then Buffer.add_string buf (Printf.sprintf "(-%d)" (-n))
    else Buffer.add_string buf (string_of_int n)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Var x -> Buffer.add_string buf x
  | Funref f -> Buffer.add_char buf '@'; Buffer.add_string buf f
  | Unop (op, e) ->
    Buffer.add_char buf '(';
    Buffer.add_string buf (unop_to_string op);
    pp_expr buf e;
    Buffer.add_char buf ')'
  | Binop (op, a, b) ->
    Buffer.add_char buf '(';
    pp_expr buf a;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (binop_to_string op);
    Buffer.add_char buf ' ';
    pp_expr buf b;
    Buffer.add_char buf ')'
  | Index (a, i) ->
    pp_expr buf a;
    Buffer.add_char buf '[';
    pp_expr buf i;
    Buffer.add_char buf ']'
  | Call (f, args) ->
    Buffer.add_string buf f;
    Buffer.add_char buf '(';
    List.iteri
      (fun k e ->
         if k > 0 then Buffer.add_string buf ", ";
         pp_expr buf e)
      args;
    Buffer.add_char buf ')'

let indent buf depth = Buffer.add_string buf (String.make (2 * depth) ' ')

let pp_simple buf s =
  (* A statement legal in for-headers; no newline, no ';'. *)
  match s with
  | Let (x, e) ->
    Buffer.add_string buf ("let " ^ x ^ " = ");
    pp_expr buf e
  | Assign (x, e) ->
    Buffer.add_string buf (x ^ " = ");
    pp_expr buf e
  | Index_assign (a, i, e) ->
    Buffer.add_string buf a;
    Buffer.add_char buf '[';
    pp_expr buf i;
    Buffer.add_string buf "] = ";
    pp_expr buf e
  | Expr e -> pp_expr buf e
  | _ -> invalid_arg "pp_simple: not a simple statement"

let rec pp_stmt buf depth s =
  indent buf depth;
  (match s with
   | Let _ | Assign _ | Index_assign _ | Expr _ ->
     pp_simple buf s;
     Buffer.add_string buf ";\n"
   | Break -> Buffer.add_string buf "break;\n"
   | Continue -> Buffer.add_string buf "continue;\n"
   | Return None -> Buffer.add_string buf "return;\n"
   | Return (Some e) ->
     Buffer.add_string buf "return ";
     pp_expr buf e;
     Buffer.add_string buf ";\n"
   | If (c, t, f) ->
     Buffer.add_string buf "if (";
     pp_expr buf c;
     Buffer.add_string buf ") ";
     pp_block buf depth t;
     if f <> [] then begin
       indent buf depth;
       Buffer.add_string buf "else ";
       pp_block buf depth f
     end
   | While (c, b) ->
     Buffer.add_string buf "while (";
     pp_expr buf c;
     Buffer.add_string buf ") ";
     pp_block buf depth b
   | For (init, cond, step, b) ->
     Buffer.add_string buf "for (";
     (match init with None -> () | Some s -> pp_simple buf s);
     Buffer.add_string buf "; ";
     (match cond with None -> () | Some e -> pp_expr buf e);
     Buffer.add_string buf "; ";
     (match step with None -> () | Some s -> pp_simple buf s);
     Buffer.add_string buf ") ";
     pp_block buf depth b)

and pp_block buf depth b =
  Buffer.add_string buf "{\n";
  List.iter (pp_stmt buf (depth + 1)) b;
  indent buf depth;
  Buffer.add_string buf "}\n"

let pp_fundef buf (f : fundef) =
  Buffer.add_string buf ("fn " ^ f.fname ^ "(");
  List.iteri
    (fun k p ->
       if k > 0 then Buffer.add_string buf ", ";
       Buffer.add_string buf p)
    f.params;
  Buffer.add_string buf ") ";
  pp_block buf 0 f.body;
  Buffer.add_char buf '\n'

let to_string (p : program) =
  let buf = Buffer.create 1024 in
  List.iter (pp_fundef buf) p.funcs;
  Buffer.contents buf

let expr_to_string e =
  let buf = Buffer.create 32 in
  pp_expr buf e;
  Buffer.contents buf
