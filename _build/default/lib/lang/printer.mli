(** Pretty-printer: AST back to parseable MiniC source.

    [Parser.parse_exn (to_string p)] is a normalization of [p]:
    parse∘print is idempotent (checked by the property suite).
    Expressions print fully parenthesized. *)

val escape : string -> string
(** Escape a string-literal body (newline, tab, quote, backslash, NUL). *)

val to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
