(* Static well-formedness checks run before lowering.

   Ensures: a [main] entry exists; no duplicate functions or parameters;
   call arities of builtins/syscalls match; variables are defined before
   use; break/continue only inside loops; user functions are not shadowed
   by reserved names.  Returns a list of diagnostics (empty = ok). *)

open Ast

type diagnostic = { func : string; message : string }

let diag func fmt = Printf.ksprintf (fun message -> { func; message }) fmt

module StrSet = Set.Make (String)

let check_call prog ~vars fname callee nargs errors =
  if Names.is_builtin callee then begin
    match Names.builtin_arity callee with
    | Some ar when Names.arity_matches ar nargs -> errors
    | _ -> diag fname "builtin '%s' applied to %d arguments" callee nargs :: errors
  end
  else if Names.is_syscall callee then begin
    match Names.syscall_arity callee with
    | Some ar when Names.arity_matches ar nargs -> errors
    | _ -> diag fname "syscall '%s' applied to %d arguments" callee nargs :: errors
  end
  else
    match find_func prog callee with
    | Some f ->
      if List.length f.params <> nargs then
        diag fname "function '%s' expects %d arguments, got %d"
          callee (List.length f.params) nargs
        :: errors
      else errors
    | None ->
      if StrSet.mem callee vars then errors (* indirect call through a local *)
      else diag fname "unknown callee '%s'" callee :: errors

let rec check_expr prog ~vars fname e errors =
  match e with
  | Int _ | Str _ -> errors
  | Var x ->
    if StrSet.mem x vars then errors
    else diag fname "use of undefined variable '%s'" x :: errors
  | Funref f ->
    (match find_func prog f with
     | Some _ -> errors
     | None -> diag fname "function pointer to unknown function '%s'" f :: errors)
  | Unop (_, e) -> check_expr prog ~vars fname e errors
  | Binop (_, a, b) ->
    check_expr prog ~vars fname a (check_expr prog ~vars fname b errors)
  | Index (a, i) ->
    check_expr prog ~vars fname a (check_expr prog ~vars fname i errors)
  | Call (callee, args) ->
    let errors =
      List.fold_left (fun errs a -> check_expr prog ~vars fname a errs) errors args
    in
    check_call prog ~vars fname callee (List.length args) errors

let rec check_block prog ~vars ~in_loop fname body errors =
  match body with
  | [] -> errors
  | s :: rest ->
    let vars, errors = check_stmt prog ~vars ~in_loop fname s errors in
    check_block prog ~vars ~in_loop fname rest errors

and check_stmt prog ~vars ~in_loop fname s errors =
  match s with
  | Let (x, e) ->
    let errors = check_expr prog ~vars fname e errors in
    let errors =
      if Names.reserved x then
        diag fname "variable '%s' shadows a reserved name" x :: errors
      else errors
    in
    (StrSet.add x vars, errors)
  | Assign (x, e) ->
    let errors = check_expr prog ~vars fname e errors in
    let errors =
      if StrSet.mem x vars then errors
      else diag fname "assignment to undefined variable '%s'" x :: errors
    in
    (vars, errors)
  | Index_assign (a, i, e) ->
    let errors = check_expr prog ~vars fname (Var a) errors in
    let errors = check_expr prog ~vars fname i errors in
    (vars, check_expr prog ~vars fname e errors)
  | If (c, t, f) ->
    let errors = check_expr prog ~vars fname c errors in
    let errors = check_block prog ~vars ~in_loop fname t errors in
    (vars, check_block prog ~vars ~in_loop fname f errors)
  | While (c, b) ->
    let errors = check_expr prog ~vars fname c errors in
    (vars, check_block prog ~vars ~in_loop:true fname b errors)
  | For (init, cond, step, b) ->
    let vars', errors =
      match init with
      | None -> (vars, errors)
      | Some s -> check_stmt prog ~vars ~in_loop fname s errors
    in
    let errors =
      match cond with
      | None -> errors
      | Some c -> check_expr prog ~vars:vars' fname c errors
    in
    let errors =
      match step with
      | None -> errors
      | Some s -> snd (check_stmt prog ~vars:vars' ~in_loop fname s errors)
    in
    (vars, check_block prog ~vars:vars' ~in_loop:true fname b errors)
  | Break | Continue ->
    let errors =
      if in_loop then errors
      else diag fname "break/continue outside of a loop" :: errors
    in
    (vars, errors)
  | Return None -> (vars, errors)
  | Return (Some e) -> (vars, check_expr prog ~vars fname e errors)
  | Expr e -> (vars, check_expr prog ~vars fname e errors)

let check_fundef prog (f : fundef) errors =
  let errors =
    if Names.reserved f.fname then
      diag f.fname "function name shadows a reserved name" :: errors
    else errors
  in
  let seen, errors =
    List.fold_left
      (fun (seen, errs) p ->
         if StrSet.mem p seen then
           (seen, diag f.fname "duplicate parameter '%s'" p :: errs)
         else (StrSet.add p seen, errs))
      (StrSet.empty, errors) f.params
  in
  check_block prog ~vars:seen ~in_loop:false f.fname f.body errors

let check_program (prog : program) : diagnostic list =
  let errors =
    match find_func prog "main" with
    | Some _ -> []
    | None -> [ diag "<program>" "no 'main' function" ]
  in
  let _, errors =
    List.fold_left
      (fun (seen, errs) f ->
         if StrSet.mem f.fname seen then
           (seen, diag f.fname "duplicate function definition" :: errs)
         else (StrSet.add f.fname seen, errs))
      (StrSet.empty, errors) prog.funcs
  in
  let errors = List.fold_left (fun errs f -> check_fundef prog f errs) errors prog.funcs in
  List.rev errors

let check_exn prog =
  match check_program prog with
  | [] -> ()
  | ds ->
    let msgs = List.map (fun d -> Printf.sprintf "[%s] %s" d.func d.message) ds in
    failwith ("MiniC check failed:\n" ^ String.concat "\n" msgs)
