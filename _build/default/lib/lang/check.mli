(** Static well-formedness checks run before lowering.

    Ensures: a [main] entry exists; no duplicate functions or parameters;
    builtin/syscall/user-call arities match; variables are defined before
    use; [break]/[continue] appear only inside loops; reserved names are
    not shadowed. *)

type diagnostic = { func : string; message : string }

(** All diagnostics for the program, in source order; empty = well formed. *)
val check_program : Ast.program -> diagnostic list

(** @raise Failure with all diagnostics when the program is ill-formed. *)
val check_exn : Ast.program -> unit
