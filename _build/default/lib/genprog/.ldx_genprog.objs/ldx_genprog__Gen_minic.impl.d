lib/genprog/gen_minic.ml: Ast Ldx_lang List Option Printer Printf QCheck2
