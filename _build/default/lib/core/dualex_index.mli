(** DualEx-style cost baseline (Kim et al. 2015).

    DualEx aligns executions with Execution Indexing: every executed
    instruction is reported to a monitor that maintains a tree index and
    enforces lockstep.  Its alignment decisions match LDX's; the cost
    does not — three orders of magnitude (Sec. 8.1).  This module turns
    an LDX {!Engine.result} into the modelled DualEx wall clock. *)

type estimate = {
  native_cycles : int;
  ldx_wall : int;
  dualex_wall : int;
  ldx_overhead : float;       (** fraction over native *)
  dualex_overhead : float;
}

val of_result : native_cycles:int -> Engine.result -> estimate
