(** Source attribution: which source does each flagged sink depend on?

    LDX mutates all configured sources in a single dual execution
    (Sec. 3).  When per-source attribution is wanted, this module runs
    one dual execution per source — still two executions each, no
    instruction-level tracking. *)

type attribution = {
  source : Engine.source_spec;
  result : Engine.result;
}

(** One dual execution per entry of [config.sources]. *)
val per_source :
  ?config:Engine.config -> Ldx_cfg.Ir.program -> Ldx_osim.World.t ->
  attribution list

val source_to_string : Engine.source_spec -> string

(** Each flagged sink (sys, site) with the sources whose isolated
    mutation flips it. *)
val sink_matrix :
  attribution list -> ((string * int) * Engine.source_spec list) list

val render : attribution list -> string
