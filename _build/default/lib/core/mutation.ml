(* Source mutation strategies (Sec. 8.3, "Input Mutation").

   The slave observes mutated values at configured source syscalls.  The
   paper's default is off-by-one on data fields, which provably detects
   any strong (one-to-one) causality; the other strategies exist for the
   mutation-strategy study. *)

module Sval = Ldx_osim.Sval

type strategy =
  | Off_by_one
  | Bitflip                      (* flip bit 0 of ints / of first byte *)
  | Zero                         (* zero ints, empty first byte of strings *)
  | Add_constant of int
  | Random_replace of int        (* seeded pseudo-random replacement *)
  | Swap_substring of string * string
      (* replace the first occurrence of a substring: semantic mutations
         like flipping NGX_HAVE_POLL from 1 to 0 in the Fig. 7 study *)

let all_strategies =
  [ ("off-by-one", Off_by_one);
    ("bitflip", Bitflip);
    ("zero", Zero);
    ("add-100", Add_constant 100);
    ("random", Random_replace 12345) ]

let bump_char c delta =
  (* stay within printable ASCII so string-typed protocol fields remain
     parseable (the paper avoids "magic values or structure") *)
  let lo = 32 and hi = 126 in
  let v = Char.code c in
  if v < lo || v > hi then Char.chr ((v + delta) land 255)
  else Char.chr (lo + ((v - lo + delta) mod (hi - lo + 1) + (hi - lo + 1)) mod (hi - lo + 1))

(* The empty string is EOF / connection-closed, not data: fabricating
   bytes there would turn every input loop into an infinite stream in the
   slave.  Mutations leave it untouched. *)
let mutate_string ~f s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b 0 (f s.[0]);
    Bytes.to_string b
  end

(* Off-by-one over a string value bumps every alphanumeric byte, cycling
   within its class ('9'->'0', 'z'->'a', 'Z'->'A').  This is the paper's
   "mutate the data fields, not magic values or structure": separators,
   newlines and punctuation are left intact so the input still parses,
   while every data field the value carries is off by one. *)
let bump_alnum c =
  if c >= '0' && c <= '9' then if c = '9' then '0' else Char.chr (Char.code c + 1)
  else if c >= 'a' && c <= 'z' then
    if c = 'z' then 'a' else Char.chr (Char.code c + 1)
  else if c >= 'A' && c <= 'Z' then
    if c = 'Z' then 'A' else Char.chr (Char.code c + 1)
  else c

let mutate_alnum s = String.map bump_alnum s

let mutate (strategy : strategy) (v : Sval.t) : Sval.t =
  match (strategy, v) with
  | Off_by_one, Sval.I n -> Sval.I (n + 1)
  | Off_by_one, Sval.S s -> Sval.S (mutate_alnum s)
  | Bitflip, Sval.I n -> Sval.I (n lxor 1)
  | Bitflip, Sval.S s ->
    Sval.S (mutate_string ~f:(fun c -> Char.chr (Char.code c lxor 1)) s)
  | Zero, Sval.I _ -> Sval.I 0
  | Zero, Sval.S s -> Sval.S (mutate_string ~f:(fun _ -> ' ') s)
  | Add_constant k, Sval.I n -> Sval.I (n + k)
  | Add_constant k, Sval.S s ->
    Sval.S (mutate_string ~f:(fun c -> bump_char c k) s)
  | Random_replace seed, Sval.I n ->
    Sval.I ((n lxor (seed * 2654435761)) land 0xFFFF)
  | Random_replace seed, Sval.S s ->
    Sval.S
      (mutate_string
         ~f:(fun c -> bump_char c (1 + ((seed lxor Char.code c) land 63)))
         s)
  | Swap_substring (_, _), Sval.I n -> Sval.I (n + 1)
  | Swap_substring (old_s, new_s), Sval.S s ->
    let sn = String.length s and on = String.length old_s in
    let rec at i =
      if on = 0 || i + on > sn then None
      else if String.sub s i on = old_s then Some i
      else at (i + 1)
    in
    (match at 0 with
     | None -> Sval.S s
     | Some i ->
       Sval.S
         (String.sub s 0 i ^ new_s
          ^ String.sub s (i + on) (sn - i - on)))

(* A mutation is vacuous if it maps the value to itself (e.g. Zero on 0);
   the engine skips counting those as mutated inputs. *)
let changes strategy v = not (Sval.equal (mutate strategy v) v)
