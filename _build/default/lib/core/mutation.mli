(** Source mutation strategies (Sec. 8.3, "Input Mutation").

    The slave observes mutated values at configured source syscalls.  The
    paper's default, off-by-one on data fields, provably witnesses every
    strong (one-to-one) causality; the other strategies exist for the
    mutation-strategy study. *)

type strategy =
  | Off_by_one
      (** ints: +1; strings: every alphanumeric byte bumped, cycling
          within its class ('9'->'0', 'z'->'a') — data fields mutated,
          separators and structure preserved *)
  | Bitflip        (** flip bit 0 of ints / of the first byte *)
  | Zero           (** zero ints; blank the first byte of strings *)
  | Add_constant of int
  | Random_replace of int  (** seeded pseudo-random replacement *)
  | Swap_substring of string * string
      (** replace the first occurrence — targeted semantic mutations
          such as flipping NGX_HAVE_POLL from 1 to 0 (Fig. 7) *)

(** The strategies of the mutation study, with display names. *)
val all_strategies : (string * strategy) list

(** The off-by-one character map (exposed for property tests). *)
val bump_alnum : char -> char

(** Mutate a syscall result.  The empty string (EOF / closed connection)
    is never touched: fabricating bytes there would turn input loops into
    infinite streams in the slave. *)
val mutate : strategy -> Ldx_osim.Sval.t -> Ldx_osim.Sval.t

(** Does the strategy actually change this value?  (Used to count
    "mutated inputs" without vacuous mutations.) *)
val changes : strategy -> Ldx_osim.Sval.t -> bool
