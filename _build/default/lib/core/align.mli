(** Execution positions and the progress order.

    The paper's alignment state is the counter plus the knowledge
    implicitly encoded by the loop barriers (which iteration each
    execution is in) and by the counter stack (Sec. 6).  A position makes
    that explicit: the stack of counter segments — one per fresh frame,
    outermost first — each with its counter value and its stack of
    (loop id, iteration) pairs, outermost loop first.

    Two executions of the same instrumented program are control-flow
    aligned at syscalls exactly when their positions are equal and the
    static sites (PCs) coincide.  Within a thread, positions at
    successive syscalls strictly increase, which makes per-thread FIFO
    outcome matching complete (see {!Engine}).

    This explicit form is the one deliberate refinement over the paper's
    description (see DESIGN.md): it yields a deadlock-free total progress
    comparison while reporting exactly the paper's counter values. *)

type seg = {
  cnt : int;
  loops : (int * int) list;   (** (loop id, iteration), outermost first *)
}

type t = seg list             (** outermost segment first *)

(** Snapshot a VM thread's position. *)
val of_thread : Ldx_vm.Machine.thread -> t

(** Compare two segments: shared loops lexicographically by iteration,
    otherwise by counter (the instrumentation orders counters correctly
    across loop boundaries); ties mean "same progress". *)
val compare_seg : seg -> seg -> int

(** Progress order: the first differing segment decides; at an equal
    prefix, the deeper position (inside a fresh frame the other has not
    entered) is ahead.  Total on positions from a common region;
    reflexive and antisymmetric everywhere (see the property suite). *)
val compare : t -> t -> int

val equal : t -> t -> bool

val seg_to_string : seg -> string

(** E.g. ["<15|L1#2.4>"] — counter 15 in the outer segment, then a fresh
    segment at iteration 2 of loop 1 with counter 4. *)
val to_string : t -> string
