(* DualEx-style cost baseline (Kim et al. 2015).

   DualEx aligns the two executions with Execution Indexing: every
   executed instruction is reported to a monitor process that maintains a
   tree-structured index and decides blocking, in lockstep.  The
   alignment *decisions* are equivalent to LDX's (both realize precise
   control-flow alignment); what differs is cost — three orders of
   magnitude (Sec. 8.1, Related Work).

   We therefore model DualEx as: the same dual-execution verdicts as
   {!Engine}, with a wall clock charged Cost.index_monitor per executed
   instruction of either execution (index construction + IPC + lockstep
   wait), serialized through the monitor. *)

module Cost = Ldx_vm.Cost

type estimate = {
  native_cycles : int;
  ldx_wall : int;
  dualex_wall : int;
  ldx_overhead : float;          (* fraction over native *)
  dualex_overhead : float;
}

let of_result ~(native_cycles : int) (r : Engine.result) : estimate =
  let steps = r.Engine.master.Engine.steps + r.Engine.slave.Engine.steps in
  let dualex_wall =
    max r.Engine.master.Engine.cycles r.Engine.slave.Engine.cycles
    + (steps * Cost.index_monitor)
  in
  let pct base v = float_of_int (v - base) /. float_of_int (max 1 base) in
  { native_cycles;
    ldx_wall = r.Engine.wall_cycles;
    dualex_wall;
    ldx_overhead = pct native_cycles r.Engine.wall_cycles;
    dualex_overhead = pct native_cycles dualex_wall }
