(* Execution positions and the progress order.

   The paper's alignment state is the counter plus the implicit knowledge
   encoded by the loop barriers (which iteration each execution is in) and
   the counter stack (Sec. 6).  We make that state explicit: a position is
   the stack of counter segments (one per fresh frame, outermost first),
   each carrying its counter value and its stack of (loop id, iteration)
   pairs (outermost loop first after normalization).

   Two executions of the same instrumented program are control-flow
   aligned at syscalls exactly when their positions are equal and the
   syscall sites (PCs) coincide — the paper's "same counter value and the
   same PC" criterion.  The order [compare] answers "which execution is
   further ahead", which is what the runtime uses to decide between
   waiting and declaring a path difference.  Within a thread, positions at
   successive syscalls strictly increase; this is what makes outcome-queue
   matching sound (see {!Engine}). *)

type seg = {
  cnt : int;
  loops : (int * int) list;   (* (loop id, iteration), OUTERMOST first *)
}

type t = seg list             (* outermost segment first *)

let of_thread (th : Ldx_vm.Machine.thread) : t =
  List.map
    (fun (cnt, loops) -> { cnt; loops = List.rev loops })
    (Ldx_vm.Machine.position_of th)

(* Compare two segments of the same program region.

   Walk the loop stacks outermost-first:
   - same loop, different iteration: the earlier iteration is behind;
   - same loop, same iteration: look deeper;
   - different loops (or one side not in a loop the other is in): the
     counter decides — the instrumentation guarantees that counter values
     order correctly across loop boundaries (post-loop counters dominate
     in-loop ones, pre-loop counters are dominated).  Counter ties mean
     "same progress"; the caller separates genuinely aligned points from
     divergent ones by comparing PCs. *)
let compare_seg (a : seg) (b : seg) : int =
  let rec walk la lb =
    match (la, lb) with
    | (l1, i1) :: ra, (l2, i2) :: rb when l1 = l2 ->
      if i1 <> i2 then Stdlib.compare i1 i2 else walk ra rb
    | _, _ -> Stdlib.compare a.cnt b.cnt
  in
  walk a.loops b.loops

(* Compare positions: first differing segment decides; if one position is
   a strict segment-prefix of the other, the deeper one (inside a fresh
   frame the other has not entered, at equal outer progress) is ahead. *)
let rec compare (a : t) (b : t) : int =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | sa :: ra, sb :: rb ->
    let c = compare_seg sa sb in
    if c <> 0 then c else compare ra rb

let equal a b = compare a b = 0

let seg_to_string (s : seg) =
  let loops =
    String.concat ""
      (List.map (fun (l, i) -> Printf.sprintf "L%d#%d." l i) s.loops)
  in
  Printf.sprintf "%s%d" loops s.cnt

let to_string (p : t) =
  "<" ^ String.concat "|" (List.map seg_to_string p) ^ ">"
