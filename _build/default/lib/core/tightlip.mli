(** TightLip-style baseline (Yumerefendi et al. 2007).

    Same master/slave model, but no execution alignment: the slave's
    syscalls are matched against the master's in strict FIFO order
    (optionally within a small look-ahead window).  The first mismatch is
    declared a leak and the run terminates — the behaviour Table 2
    contrasts with LDX. *)

type result = {
  leak_reported : bool;
  terminated_early : bool;          (** stopped at a mismatch *)
  syscalls_before_mismatch : int;
  total_master_syscalls : int;
  slave_trap : string option;
}

(** [run ?config ?window prog world] — [window] is the FIFO look-ahead
    (0 = strict order, the classic behaviour). *)
val run :
  ?config:Engine.config -> ?window:int ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> result
