lib/core/attribute.mli: Engine Ldx_cfg Ldx_osim
