lib/core/tightlip.mli: Engine Ldx_cfg Ldx_osim
