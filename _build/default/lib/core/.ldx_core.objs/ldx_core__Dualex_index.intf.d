lib/core/dualex_index.mli: Engine
