lib/core/mutation.mli: Ldx_osim
