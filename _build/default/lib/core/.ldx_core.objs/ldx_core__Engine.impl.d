lib/core/engine.ml: Align Hashtbl Ldx_cfg Ldx_instrument Ldx_osim Ldx_vm List Mutation Option Printf Queue String
