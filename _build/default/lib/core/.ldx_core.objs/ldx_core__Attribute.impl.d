lib/core/attribute.ml: Buffer Engine Hashtbl Ldx_cfg Ldx_osim List Printf String
