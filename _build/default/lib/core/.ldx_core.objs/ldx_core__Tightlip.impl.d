lib/core/tightlip.ml: Engine Hashtbl Ldx_cfg Ldx_osim Ldx_vm List Mutation Queue String
