lib/core/dualex_index.ml: Engine Ldx_vm
