lib/core/engine.mli: Align Hashtbl Ldx_cfg Ldx_instrument Ldx_osim Ldx_vm Mutation Queue
