lib/core/mutation.ml: Bytes Char Ldx_osim String
