lib/core/align.ml: Ldx_vm List Printf Stdlib String
