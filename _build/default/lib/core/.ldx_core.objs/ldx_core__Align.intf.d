lib/core/align.mli: Ldx_vm
