(** Call graph over direct calls, with Tarjan SCCs.

    INSTRUMENTPROG (Algorithm 1) walks functions callees-first so FCNT of
    callees is known; functions on call-graph cycles are flagged
    recursive and handled with the counter stack instead (Sec. 6). *)

module StrSet : Set.S with type elt = string

type t = {
  callees : (string, StrSet.t) Hashtbl.t;  (** direct-call edges *)
  sccs : string list list;                 (** callees before callers *)
  recursive : StrSet.t;                    (** functions on cycles *)
  order : string list;                     (** flattened SCC order *)
}

(** Direct callees of a function that are user functions (builtins and
    syscalls excluded by the caller). *)
val direct_callees : Ir.func -> StrSet.t

val compute : Ir.program -> t
val is_recursive : t -> string -> bool
val callees_of : t -> string -> StrSet.t
