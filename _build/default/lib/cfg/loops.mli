(** Natural-loop detection.

    A back edge is [t -> h] where [h] dominates [t]; the natural loop of
    [h] is [h] plus everything that reaches a back-edge tail without
    passing through [h].  Loops sharing a header are merged, which is the
    granularity Algorithm 3 instruments: one barrier set and one reset
    value per header. *)

module IntSet :
  Set.S with type elt = int and type t = Set.Make(Int).t

type loop = {
  header : int;
  body : IntSet.t;            (** includes the header *)
  back_tails : int list;      (** tails of the back edges into the header *)
  exits : (int * int) list;   (** edges [(x, n)]: [x] in body, [n] outside *)
}

type t = {
  loops : loop list;
  loop_of_header : (int, loop) Hashtbl.t;
}

val detect : Ir.func -> t

(** All loops whose body contains the block. *)
val loops_containing : t -> int -> loop list

(** Structured lowering always yields reducible CFGs; the instrumenter
    asserts this before trusting the loop decomposition. *)
val is_reducible : Ir.func -> t -> bool
