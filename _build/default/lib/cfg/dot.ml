(* Graphviz export of function CFGs, with loop nesting and (optionally)
   static counter values — handy for debugging instrumentation and for
   papers/teaching.  `dune exec bin/ldx_run.exe` consumers can pipe the
   output to `dot -Tsvg`. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\l"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One function as a digraph body (no wrapper), with blocks as record
   nodes.  [counters] maps bid -> (cnt_in, cnt_out) labels. *)
let func_body ?(counters = fun _ -> None) (f : Ir.func) (buf : Buffer.t) :
  unit =
  let ld = Loops.detect f in
  let node_name b = Printf.sprintf "%s_b%d" f.Ir.fname b in
  Array.iter
    (fun (b : Ir.block) ->
       let instrs =
         Array.to_list (Array.map Ir.instr_to_string b.Ir.instrs)
       in
       let cnt_label =
         match counters b.Ir.bid with
         | Some (cin, cout) -> Printf.sprintf " [cnt %d->%d]" cin cout
         | None -> ""
       in
       let header =
         Printf.sprintf "b%d%s%s" b.Ir.bid cnt_label
           (if Hashtbl.mem ld.Loops.loop_of_header b.Ir.bid then " (loop head)"
            else "")
       in
       let body =
         String.concat "\n" (header :: instrs @ [ Ir.term_to_string b.Ir.term ])
       in
       Buffer.add_string buf
         (Printf.sprintf "  %s [shape=box, label=\"%s\\l\"];\n"
            (node_name b.Ir.bid) (escape body)))
    f.Ir.blocks;
  Array.iter
    (fun (b : Ir.block) ->
       List.iter
         (fun s ->
            let is_back =
              match Hashtbl.find_opt ld.Loops.loop_of_header s with
              | Some l -> List.mem b.Ir.bid l.Loops.back_tails
              | None -> false
            in
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s%s;\n" (node_name b.Ir.bid)
                 (node_name s)
                 (if is_back then " [style=dashed, color=blue, label=\"back\"]"
                  else "")))
         (Ir.successors b.Ir.term))
    f.Ir.blocks

(* A whole function as a standalone digraph. *)
let func_to_dot ?counters (f : Ir.func) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" f.Ir.fname);
  Buffer.add_string buf "  graph [fontname=monospace];\n";
  Buffer.add_string buf "  node [fontname=monospace, fontsize=9];\n";
  func_body ?counters f buf;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* The whole program, one cluster per function. *)
let program_to_dot (p : Ir.program) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph program {\n";
  Buffer.add_string buf "  graph [fontname=monospace, compound=true];\n";
  Buffer.add_string buf "  node [fontname=monospace, fontsize=9];\n";
  Array.iter
    (fun (f : Ir.func) ->
       Buffer.add_string buf
         (Printf.sprintf "  subgraph \"cluster_%s\" {\n    label=\"%s\";\n"
            f.Ir.fname f.Ir.fname);
       func_body f buf;
       Buffer.add_string buf "  }\n")
    p.funcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
