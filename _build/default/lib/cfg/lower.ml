(* AST -> CFG lowering.

   Design decisions that matter for the alignment algorithms downstream:
   - every function gets a single exit block (so the per-function counter
     increment FCNT is well defined along every path);
   - [&&]/[||] always lower to control flow (C semantics; also exercises
     the compensation scheme on syscall-free diamonds);
   - calls are extracted out of expressions in evaluation order, so a
     [pexpr] in the final IR is pure (its only calls are builtins with
     pure arguments). *)

open Ldx_lang

exception Lower_error of string

type bb = {
  id : int;
  mutable rinstrs : Ir.instr list;   (* reversed *)
  mutable term : Ir.terminator option;
}

type fctx = {
  mutable bbs : bb list;             (* reversed list of all blocks *)
  mutable nblocks : int;
  mutable cur : bb;
  mutable ntemp : int;
  sites : int ref;                   (* global syscall/icall site counter *)
  prog : Ast.program;
  exit_bid : int;
  ret_reg : string;
}

let ret_reg = "%ret"

let new_bb ctx =
  let b = { id = ctx.nblocks; rinstrs = []; term = None } in
  ctx.nblocks <- ctx.nblocks + 1;
  ctx.bbs <- b :: ctx.bbs;
  b

let emit ctx i = ctx.cur.rinstrs <- i :: ctx.cur.rinstrs

let set_term ctx t = if ctx.cur.term = None then ctx.cur.term <- Some t

let switch_to ctx b = ctx.cur <- b

let fresh_temp ctx =
  let t = Printf.sprintf "%%t%d" ctx.ntemp in
  ctx.ntemp <- ctx.ntemp + 1;
  t

let fresh_site ctx =
  let s = !(ctx.sites) in
  incr ctx.sites;
  s

(* Classify a call by callee name. *)
type callee_kind = User | Builtin | Syscall | Indirect

let classify ctx name =
  if Names.is_builtin name then Builtin
  else if Names.is_syscall name then Syscall
  else
    match Ast.find_func ctx.prog name with
    | Some _ -> User
    | None -> Indirect  (* checked to be a local variable by Check *)

let rec lower_expr ctx (e : Ast.expr) : Ir.pexpr =
  match e with
  | Ast.Int _ | Ast.Str _ | Ast.Var _ | Ast.Funref _ -> e
  | Ast.Unop (op, a) -> Ast.Unop (op, lower_expr ctx a)
  | Ast.Binop (Ast.And, a, b) -> lower_short_circuit ctx ~is_and:true a b
  | Ast.Binop (Ast.Or, a, b) -> lower_short_circuit ctx ~is_and:false a b
  | Ast.Binop (op, a, b) ->
    let la = lower_expr ctx a in
    let lb = lower_expr ctx b in
    Ast.Binop (op, la, lb)
  | Ast.Index (a, i) ->
    let la = lower_expr ctx a in
    let li = lower_expr ctx i in
    Ast.Index (la, li)
  | Ast.Call (name, args) ->
    (match classify ctx name with
     | Builtin ->
       let largs = List.map (lower_expr ctx) args in
       Ast.Call (name, largs)
     | User ->
       let largs = List.map (lower_expr ctx) args in
       let t = fresh_temp ctx in
       emit ctx (Ir.Call { dst = Some t; callee = name; args = largs;
                           fresh_frame = false });
       Ast.Var t
     | Syscall ->
       let largs = List.map (lower_expr ctx) args in
       let t = fresh_temp ctx in
       emit ctx (Ir.Syscall { dst = Some t; sys = name; args = largs;
                              site = fresh_site ctx });
       Ast.Var t
     | Indirect ->
       let largs = List.map (lower_expr ctx) args in
       let t = fresh_temp ctx in
       emit ctx (Ir.Call_indirect { dst = Some t; fptr = Ast.Var name;
                                    args = largs; site = fresh_site ctx });
       Ast.Var t)

(* t = a && b  lowers to:
     la = [[a]]; branch la ? rhs : fls
   rhs: lb = [[b]]; t = !!lb; jump join
   fls: t = 0; jump join
   join: ... (value is Var t)                                            *)
and lower_short_circuit ctx ~is_and a b =
  let la = lower_expr ctx a in
  let t = fresh_temp ctx in
  let b_rhs = new_bb ctx in
  let b_const = new_bb ctx in
  let b_join = new_bb ctx in
  (if is_and then set_term ctx (Ir.Branch (la, b_rhs.id, b_const.id))
   else set_term ctx (Ir.Branch (la, b_const.id, b_rhs.id)));
  switch_to ctx b_rhs;
  let lb = lower_expr ctx b in
  emit ctx (Ir.Assign (t, Ast.Unop (Ast.Not, Ast.Unop (Ast.Not, lb))));
  set_term ctx (Ir.Jump b_join.id);
  switch_to ctx b_const;
  emit ctx (Ir.Assign (t, Ast.Int (if is_and then 0 else 1)));
  set_term ctx (Ir.Jump b_join.id);
  switch_to ctx b_join;
  Ast.Var t

(* Lower a call statement whose result is discarded (no temp). *)
let lower_call_stmt ctx name args =
  match classify ctx name with
  | Builtin ->
    (* pure, result discarded: still lower args for their call effects *)
    let _ = List.map (lower_expr ctx) args in
    ()
  | User ->
    let largs = List.map (lower_expr ctx) args in
    emit ctx (Ir.Call { dst = None; callee = name; args = largs;
                        fresh_frame = false })
  | Syscall ->
    let largs = List.map (lower_expr ctx) args in
    emit ctx (Ir.Syscall { dst = None; sys = name; args = largs;
                           site = fresh_site ctx })
  | Indirect ->
    let largs = List.map (lower_expr ctx) args in
    emit ctx (Ir.Call_indirect { dst = None; fptr = Ast.Var name;
                                 args = largs; site = fresh_site ctx })

type loop_env = { brk : int; cont : int }

let rec lower_stmt ctx (env : loop_env option) (s : Ast.stmt) =
  match s with
  | Ast.Let (x, e) | Ast.Assign (x, e) ->
    let le = lower_expr ctx e in
    emit ctx (Ir.Assign (x, le))
  | Ast.Index_assign (a, i, e) ->
    let li = lower_expr ctx i in
    let le = lower_expr ctx e in
    emit ctx (Ir.Store (a, li, le))
  | Ast.Expr (Ast.Call (name, args)) -> lower_call_stmt ctx name args
  | Ast.Expr e -> ignore (lower_expr ctx e)
  | Ast.If (c, tb, fb) ->
    let lc = lower_expr ctx c in
    let b_then = new_bb ctx in
    let b_else = new_bb ctx in
    let b_join = new_bb ctx in
    set_term ctx (Ir.Branch (lc, b_then.id, b_else.id));
    switch_to ctx b_then;
    lower_block ctx env tb;
    set_term ctx (Ir.Jump b_join.id);
    switch_to ctx b_else;
    lower_block ctx env fb;
    set_term ctx (Ir.Jump b_join.id);
    switch_to ctx b_join
  | Ast.While (c, body) ->
    let b_head = new_bb ctx in
    set_term ctx (Ir.Jump b_head.id);
    switch_to ctx b_head;
    let lc = lower_expr ctx c in
    let b_body = new_bb ctx in
    let b_exit = new_bb ctx in
    set_term ctx (Ir.Branch (lc, b_body.id, b_exit.id));
    switch_to ctx b_body;
    lower_block ctx (Some { brk = b_exit.id; cont = b_head.id }) body;
    set_term ctx (Ir.Jump b_head.id);
    switch_to ctx b_exit
  | Ast.For (init, cond, step, body) ->
    (match init with None -> () | Some s -> lower_stmt ctx env s);
    let b_head = new_bb ctx in
    set_term ctx (Ir.Jump b_head.id);
    switch_to ctx b_head;
    let lc = match cond with None -> Ast.Int 1 | Some c -> lower_expr ctx c in
    let b_body = new_bb ctx in
    let b_step = new_bb ctx in
    let b_exit = new_bb ctx in
    set_term ctx (Ir.Branch (lc, b_body.id, b_exit.id));
    switch_to ctx b_body;
    lower_block ctx (Some { brk = b_exit.id; cont = b_step.id }) body;
    set_term ctx (Ir.Jump b_step.id);
    switch_to ctx b_step;
    (match step with None -> () | Some s -> lower_stmt ctx None s);
    set_term ctx (Ir.Jump b_head.id);
    switch_to ctx b_exit
  | Ast.Break ->
    (match env with
     | Some { brk; _ } -> set_term ctx (Ir.Jump brk)
     | None -> raise (Lower_error "break outside loop"));
    switch_to ctx (new_bb ctx)  (* dead continuation *)
  | Ast.Continue ->
    (match env with
     | Some { cont; _ } -> set_term ctx (Ir.Jump cont)
     | None -> raise (Lower_error "continue outside loop"));
    switch_to ctx (new_bb ctx)
  | Ast.Return eo ->
    (match eo with
     | None -> emit ctx (Ir.Assign (ctx.ret_reg, Ast.Int 0))
     | Some e ->
       let le = lower_expr ctx e in
       emit ctx (Ir.Assign (ctx.ret_reg, le)));
    set_term ctx (Ir.Jump ctx.exit_bid);
    switch_to ctx (new_bb ctx)

and lower_block ctx env body = List.iter (lower_stmt ctx env) body

(* Remove blocks unreachable from entry and renumber densely. *)
let prune_unreachable (f : Ir.func) : Ir.func =
  let reach = Ir.reachable_blocks f in
  let n = Array.length f.blocks in
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for b = 0 to n - 1 do
    if reach.(b) then begin
      remap.(b) <- !next;
      incr next
    end
  done;
  let retarget t =
    match t with
    | Ir.Jump l -> Ir.Jump remap.(l)
    | Ir.Branch (c, a, b) -> Ir.Branch (c, remap.(a), remap.(b))
    | Ir.Ret _ -> t
  in
  let blocks = Array.make !next None in
  Array.iter
    (fun (b : Ir.block) ->
       if reach.(b.bid) then
         blocks.(remap.(b.bid)) <-
           Some { b with Ir.bid = remap.(b.bid); term = retarget b.term })
    f.blocks;
  let blocks =
    Array.map (function Some b -> b | None -> assert false) blocks
  in
  { f with Ir.entry = remap.(f.entry); blocks }

let lower_fundef prog sites (fd : Ast.fundef) : Ir.func =
  let entry_bb = { id = 0; rinstrs = []; term = None } in
  let ctx =
    { bbs = [ entry_bb ]; nblocks = 1; cur = entry_bb; ntemp = 0;
      sites; prog; exit_bid = 0 (* patched below *); ret_reg }
  in
  (* exit block is block 1 *)
  let exit_bb = new_bb ctx in
  exit_bb.term <- Some (Ir.Ret (Some (Ast.Var ret_reg)));
  let ctx = { ctx with exit_bid = exit_bb.id } in
  (* ctx is a fresh record sharing the mutable bb state; keep using it *)
  emit ctx (Ir.Assign (ret_reg, Ast.Int 0));
  lower_block ctx None fd.Ast.body;
  set_term ctx (Ir.Jump exit_bb.id);
  let blocks = Array.make ctx.nblocks None in
  List.iter
    (fun (b : bb) ->
       let term = match b.term with Some t -> t | None -> Ir.Jump exit_bb.id in
       blocks.(b.id) <-
         Some { Ir.bid = b.id;
                instrs = Array.of_list (List.rev b.rinstrs);
                term })
    ctx.bbs;
  let blocks = Array.map (function Some b -> b | None -> assert false) blocks in
  prune_unreachable
    { Ir.fname = fd.Ast.fname; params = fd.Ast.params; entry = 0; blocks }

(* Lower a whole checked program. *)
let lower_program (prog : Ast.program) : Ir.program =
  Check.check_exn prog;
  let sites = ref 0 in
  let funcs = Array.of_list (List.map (lower_fundef prog sites) prog.funcs) in
  { Ir.funcs; n_sites = !sites; n_loops = 0 }

let lower_source (src : string) : Ir.program =
  lower_program (Parser.parse_exn src)
