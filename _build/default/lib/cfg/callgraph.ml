(* Call graph over direct calls, with Tarjan SCCs.

   INSTRUMENTPROG (Algorithm 1) walks functions in reverse topological
   order of the call graph so FCNT of callees is known; recursive
   functions (non-trivial SCCs or self loops) are excluded from that
   scheme and handled with the counter stack (Sec. 5/6). *)

module StrSet = Set.Make (String)

type t = {
  callees : (string, StrSet.t) Hashtbl.t;       (* direct-call edges *)
  sccs : string list list;                      (* reverse topological order *)
  recursive : StrSet.t;                         (* funcs in cycles *)
  order : string list;                          (* callees-before-callers *)
}

let direct_callees (f : Ir.func) : StrSet.t =
  let acc = ref StrSet.empty in
  Array.iter
    (fun (b : Ir.block) ->
       Array.iter
         (fun i ->
            match i with
            | Ir.Call { callee; _ } -> acc := StrSet.add callee !acc
            | Ir.Call_indirect _ | Ir.Syscall _ | Ir.Assign _ | Ir.Store _
            | Ir.Cnt_add _ | Ir.Loop_enter _ | Ir.Loop_back _ | Ir.Loop_exit _ ->
              ())
         b.Ir.instrs)
    f.blocks;
  !acc

(* Tarjan's strongly connected components; emits SCCs in reverse
   topological order (callees before callers). *)
let tarjan (nodes : string list) (succs : string -> StrSet.t) : string list list =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    StrSet.iter
      (fun w ->
         if not (Hashtbl.mem index w) then begin
           strongconnect w;
           Hashtbl.replace lowlink v
             (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
         end
         else if Hashtbl.mem on_stack w && Hashtbl.find on_stack w then
           Hashtbl.replace lowlink v
             (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* Tarjan produces SCCs in reverse topological order of the condensation
     when collected in emission order. *)
  List.rev !sccs

let compute (p : Ir.program) : t =
  let callees = Hashtbl.create 16 in
  Array.iter
    (fun (f : Ir.func) ->
       let cs =
         StrSet.filter
           (fun c -> Ir.find_func p c <> None)
           (direct_callees f)
       in
       Hashtbl.replace callees f.Ir.fname cs)
    p.funcs;
  let nodes = Array.to_list (Array.map (fun f -> f.Ir.fname) p.funcs) in
  let succs v = try Hashtbl.find callees v with Not_found -> StrSet.empty in
  let sccs = tarjan nodes succs in
  let recursive =
    List.fold_left
      (fun acc scc ->
         match scc with
         | [ v ] ->
           if StrSet.mem v (succs v) then StrSet.add v acc else acc
         | vs -> List.fold_left (fun a v -> StrSet.add v a) acc vs)
      StrSet.empty sccs
  in
  let order = List.concat sccs in
  { callees; sccs; recursive; order }

let is_recursive t name = StrSet.mem name t.recursive

let callees_of t name =
  try Hashtbl.find t.callees name with Not_found -> StrSet.empty
