(** Dominator computation (Cooper-Harvey-Kennedy iterative algorithm),
    used to identify back edges and natural loops for Algorithm 3. *)

type t = {
  idom : int array;
      (** immediate dominator per block; [idom.(entry) = entry]; [-1] for
          unreachable blocks *)
  rpo_index : int array;
      (** position in reverse postorder; [-1] if unreachable *)
}

val compute : Ir.func -> t

(** [dominates d a b] — does [a] dominate [b]?  Reflexive; [false] when
    [b] is unreachable. *)
val dominates : t -> int -> int -> bool

val immediate_dominator : t -> int -> int
