(** AST -> CFG lowering.

    Guarantees the properties the alignment algorithms rely on:
    - one exit block per function (so FCNT is path-independent);
    - [&&]/[||] lower to control flow (C short-circuit semantics);
    - calls are extracted out of expressions in evaluation order, leaving
      every embedded expression pure (builtin calls only);
    - unreachable blocks are pruned and ids renumbered densely. *)

exception Lower_error of string

(** Lower a checked program.  Runs {!Ldx_lang.Check.check_exn} first.
    @raise Failure when the program is ill-formed. *)
val lower_program : Ldx_lang.Ast.program -> Ir.program

(** Parse, check and lower MiniC source. *)
val lower_source : string -> Ir.program
