(* Dominator computation (Cooper-Harvey-Kennedy iterative algorithm).

   Needed to identify back edges and natural loops for Algorithm 3. *)

type t = {
  idom : int array;          (* immediate dominator; idom.(entry) = entry;
                                -1 for unreachable blocks *)
  rpo_index : int array;     (* position in reverse postorder; -1 if unreachable *)
}

let compute (f : Ir.func) : t =
  let n = Array.length f.blocks in
  let rpo = Ir.reverse_postorder f in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let preds = Ir.predecessors f in
  let idom = Array.make n (-1) in
  idom.(f.entry) <- f.entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
         if b <> f.entry then begin
           let processed =
             List.filter (fun p -> idom.(p) <> -1 && rpo_index.(p) <> -1) preds.(b)
           in
           match processed with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if idom.(b) <> new_idom then begin
               idom.(b) <- new_idom;
               changed := true
             end
         end)
      rpo
  done;
  { idom; rpo_index }

(* Does [a] dominate [b]?  (Reflexive.) *)
let dominates (d : t) a b =
  let rec up x = if x = a then true else if x = d.idom.(x) then false else up d.idom.(x) in
  if d.idom.(b) = -1 then false else up b

let immediate_dominator d b = d.idom.(b)
