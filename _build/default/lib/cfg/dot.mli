(** Graphviz export of function CFGs with loop annotations and optional
    static counter values — for debugging instrumentation. *)

(** One function as a standalone digraph.  [counters bid] may supply
    [(cnt_in, cnt_out)] labels (e.g. from
    {!Ldx_instrument.Counter.static_counters}). *)
val func_to_dot : ?counters:(int -> (int * int) option) -> Ir.func -> string

(** The whole program, one cluster per function. *)
val program_to_dot : Ir.program -> string
