lib/cfg/ir.ml: Array Buffer Ldx_lang List Printf String
