lib/cfg/dominators.ml: Array Ir List
