lib/cfg/lower.ml: Array Ast Check Ir Ldx_lang List Names Parser Printf
