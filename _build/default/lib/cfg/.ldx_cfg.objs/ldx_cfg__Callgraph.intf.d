lib/cfg/callgraph.mli: Hashtbl Ir Set
