lib/cfg/loops.mli: Hashtbl Int Ir Set
