lib/cfg/lower.mli: Ir Ldx_lang
