lib/cfg/dot.mli: Ir
