lib/cfg/dominators.mli: Ir
