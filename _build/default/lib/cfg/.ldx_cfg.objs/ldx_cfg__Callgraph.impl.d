lib/cfg/callgraph.ml: Array Hashtbl Ir List Set String
