lib/cfg/loops.ml: Array Dominators Hashtbl Int Ir List Set
