lib/cfg/dot.ml: Array Buffer Hashtbl Ir List Loops Printf String
