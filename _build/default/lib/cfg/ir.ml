(* Basic-block intermediate representation.

   The lowering pass (see {!Lower}) produces one CFG per function.  Pure
   computation stays as expression trees ([pexpr], whose only calls are to
   pure builtins); everything with side effects or alignment relevance is
   an [instr].  Counter-instrumentation instructions ([Cnt_add],
   [Loop_enter], [Loop_back], [Loop_exit]) are inserted by
   {!Ldx_instrument.Counter}; an uninstrumented program never contains
   them. *)

type pexpr = Ldx_lang.Ast.expr

type instr =
  | Assign of string * pexpr
  | Store of string * pexpr * pexpr              (* a[i] = e *)
  | Call of {
      dst : string option;
      callee : string;
      args : pexpr list;
      fresh_frame : bool;
      (* [fresh_frame] is set by the instrumenter on calls to recursive
         functions: the counter is saved and reset to 0 for the callee,
         restored (and bumped by 1) on return — same treatment as
         indirect calls (Sec. 6). *)
    }
  | Call_indirect of {
      dst : string option;
      fptr : pexpr;
      args : pexpr list;
      site : int;
    }
  | Syscall of {
      dst : string option;
      sys : string;
      args : pexpr list;
      site : int;                                 (* static syscall site id *)
    }
  (* --- instrumentation (counter maintenance) --- *)
  | Cnt_add of int                                (* cnt += k (edge compensation) *)
  | Loop_enter of { loop : int }                  (* push (loop, iter=0) *)
  | Loop_back of { loop : int; dec : int }        (* barrier; cnt -= dec; iter += 1 *)
  | Loop_exit of { pops : int list; bump : int }  (* pop loops; cnt += bump *)

type terminator =
  | Jump of int
  | Branch of pexpr * int * int                   (* cond, then, else *)
  | Ret of pexpr option

type block = {
  bid : int;
  instrs : instr array;
  term : terminator;
}

type func = {
  fname : string;
  params : string list;
  entry : int;
  blocks : block array;                           (* index = bid *)
}

type program = {
  funcs : func array;
  n_sites : int;                                  (* syscall + indirect-call sites *)
  n_loops : int;                                  (* instrumented loops (post-pass) *)
}

let find_func (p : program) name =
  let rec go i =
    if i >= Array.length p.funcs then None
    else if String.equal p.funcs.(i).fname name then Some p.funcs.(i)
    else go (i + 1)
  in
  go 0

let find_func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg ("Ir.find_func_exn: no function " ^ name)

let successors = function
  | Jump l -> [ l ]
  | Branch (_, t, f) -> if t = f then [ t ] else [ t; f ]
  | Ret _ -> []

(* Predecessor map: preds.(b) = list of blocks with an edge into b. *)
let predecessors (f : func) : int list array =
  let preds = Array.make (Array.length f.blocks) [] in
  Array.iter
    (fun b ->
       List.iter (fun s -> preds.(s) <- b.bid :: preds.(s)) (successors b.term))
    f.blocks;
  Array.map List.rev preds

(* Reverse postorder of the blocks reachable from entry. *)
let reverse_postorder (f : func) : int list =
  let n = Array.length f.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (successors f.blocks.(b).term);
      order := b :: !order
    end
  in
  dfs f.entry;
  !order

let reachable_blocks f =
  let n = Array.length f.blocks in
  let visited = Array.make n false in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (successors f.blocks.(b).term)
    end
  in
  dfs f.entry;
  visited

(* --- statistics helpers (Table 1) --- *)

let instr_is_syscall = function Syscall _ -> true | _ -> false

let instr_is_instrumentation = function
  | Cnt_add _ | Loop_enter _ | Loop_back _ | Loop_exit _ -> true
  | Assign _ | Store _ | Call _ | Call_indirect _ | Syscall _ -> false

let count_instrs_if pred (p : program) =
  Array.fold_left
    (fun acc f ->
       Array.fold_left
         (fun acc b ->
            Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) acc b.instrs)
         acc f.blocks)
    0 p.funcs

let total_instrs p = count_instrs_if (fun _ -> true) p
let total_syscall_sites p = count_instrs_if instr_is_syscall p
let total_instrumentation p = count_instrs_if instr_is_instrumentation p

let iter_instrs (p : program) k =
  Array.iter
    (fun f -> Array.iter (fun b -> Array.iter (fun i -> k f b i) b.instrs) f.blocks)
    p.funcs

(* --- printing (for debugging and golden tests) --- *)

let pexpr_to_string = Ldx_lang.Printer.expr_to_string

let instr_to_string = function
  | Assign (x, e) -> Printf.sprintf "%s = %s" x (pexpr_to_string e)
  | Store (a, i, e) ->
    Printf.sprintf "%s[%s] = %s" a (pexpr_to_string i) (pexpr_to_string e)
  | Call { dst; callee; args; fresh_frame } ->
    Printf.sprintf "%scall%s %s(%s)"
      (match dst with Some d -> d ^ " = " | None -> "")
      (if fresh_frame then "*" else "")
      callee
      (String.concat ", " (List.map pexpr_to_string args))
  | Call_indirect { dst; fptr; args; site } ->
    Printf.sprintf "%sicall[%d] (%s)(%s)"
      (match dst with Some d -> d ^ " = " | None -> "")
      site (pexpr_to_string fptr)
      (String.concat ", " (List.map pexpr_to_string args))
  | Syscall { dst; sys; args; site } ->
    Printf.sprintf "%ssys[%d] %s(%s)"
      (match dst with Some d -> d ^ " = " | None -> "")
      site sys
      (String.concat ", " (List.map pexpr_to_string args))
  | Cnt_add k -> Printf.sprintf "cnt += %d" k
  | Loop_enter { loop } -> Printf.sprintf "loop_enter L%d" loop
  | Loop_back { loop; dec } -> Printf.sprintf "loop_back L%d (cnt -= %d)" loop dec
  | Loop_exit { pops; bump } ->
    Printf.sprintf "loop_exit [%s] (cnt += %d)"
      (String.concat "," (List.map (Printf.sprintf "L%d") pops))
      bump

let term_to_string = function
  | Jump l -> Printf.sprintf "jump b%d" l
  | Branch (c, t, f) -> Printf.sprintf "branch %s ? b%d : b%d" (pexpr_to_string c) t f
  | Ret None -> "ret"
  | Ret (Some e) -> "ret " ^ pexpr_to_string e

let func_to_string (f : func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s) entry=b%d\n" f.fname
       (String.concat ", " f.params) f.entry);
  Array.iter
    (fun b ->
       Buffer.add_string buf (Printf.sprintf "  b%d:\n" b.bid);
       Array.iter
         (fun i -> Buffer.add_string buf ("    " ^ instr_to_string i ^ "\n"))
         b.instrs;
       Buffer.add_string buf ("    " ^ term_to_string b.term ^ "\n"))
    f.blocks;
  Buffer.contents buf

let program_to_string (p : program) =
  String.concat "\n" (Array.to_list (Array.map func_to_string p.funcs))
