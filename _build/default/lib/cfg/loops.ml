(* Natural-loop detection.

   A back edge is t -> h where h dominates t.  The natural loop of h is
   the union, over its back edges, of h plus all blocks that can reach a
   back-edge tail without passing through h.  Loops sharing a header are
   merged (standard), which is what Algorithm 3 needs: one barrier set and
   one reset value per header. *)

module IntSet = Set.Make (Int)

type loop = {
  header : int;
  body : IntSet.t;            (* includes the header *)
  back_tails : int list;      (* tails of the back edges into header *)
  exits : (int * int) list;   (* edges (x, n): x in body, n outside *)
}

type t = {
  loops : loop list;          (* innermost-last order not guaranteed *)
  loop_of_header : (int, loop) Hashtbl.t;
}

let natural_loop (f : Ir.func) preds header tails =
  let body = ref (IntSet.singleton header) in
  let stack = ref [] in
  List.iter
    (fun t ->
       if not (IntSet.mem t !body) then begin
         body := IntSet.add t !body;
         stack := t :: !stack
       end)
    tails;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | b :: rest ->
      stack := rest;
      List.iter
        (fun p ->
           if not (IntSet.mem p !body) then begin
             body := IntSet.add p !body;
             stack := p :: !stack
           end)
        preds.(b)
  done;
  let body = !body in
  let exits = ref [] in
  IntSet.iter
    (fun b ->
       List.iter
         (fun s -> if not (IntSet.mem s body) then exits := (b, s) :: !exits)
         (Ir.successors f.blocks.(b).Ir.term))
    body;
  { header; body; back_tails = tails; exits = List.rev !exits }

let detect (f : Ir.func) : t =
  let doms = Dominators.compute f in
  let preds = Ir.predecessors f in
  let reach = Ir.reachable_blocks f in
  (* collect back edges grouped by header *)
  let by_header = Hashtbl.create 8 in
  Array.iter
    (fun (b : Ir.block) ->
       if reach.(b.Ir.bid) then
         List.iter
           (fun s ->
              if Dominators.dominates doms s b.Ir.bid then
                Hashtbl.replace by_header s
                  (b.Ir.bid :: (try Hashtbl.find by_header s with Not_found -> [])))
           (Ir.successors b.Ir.term))
    f.blocks;
  let loops =
    Hashtbl.fold
      (fun header tails acc -> natural_loop f preds header tails :: acc)
      by_header []
  in
  let loop_of_header = Hashtbl.create 8 in
  List.iter (fun l -> Hashtbl.replace loop_of_header l.header l) loops;
  { loops; loop_of_header }

(* Loops containing block b, innermost determined by body size. *)
let loops_containing (t : t) b =
  List.filter (fun l -> IntSet.mem b l.body) t.loops

(* Is the CFG reducible?  With our structured lowering it always is; the
   instrumenter asserts this.  A CFG is irreducible iff some cycle has no
   back edge to a dominating header, i.e. removing all back edges leaves a
   cycle. *)
let is_reducible (f : Ir.func) (t : t) : bool =
  let n = Array.length f.blocks in
  let is_back b s =
    List.exists (fun l -> l.header = s && List.mem b l.back_tails) t.loops
  in
  (* Kahn's algorithm on the graph minus back edges *)
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  Array.iter
    (fun (b : Ir.block) ->
       List.iter
         (fun s ->
            if not (is_back b.Ir.bid s) then begin
              succs.(b.Ir.bid) <- s :: succs.(b.Ir.bid);
              indeg.(s) <- indeg.(s) + 1
            end)
         (Ir.successors b.Ir.term))
    f.blocks;
  let queue = ref [] in
  for b = 0 to n - 1 do
    if indeg.(b) = 0 then queue := b :: !queue
  done;
  let seen = ref 0 in
  while !queue <> [] do
    match !queue with
    | [] -> ()
    | b :: rest ->
      queue := rest;
      incr seen;
      List.iter
        (fun s ->
           indeg.(s) <- indeg.(s) - 1;
           if indeg.(s) = 0 then queue := s :: !queue)
        succs.(b)
  done;
  !seen = n
