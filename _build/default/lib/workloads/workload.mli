(** Workload descriptors: one per paper benchmark row (Table 1).

    Each workload is a MiniC analogue of a paper benchmark, mirroring the
    structural features the evaluation depends on at reduced scale.
    [leak_sources] is the input mutation that must reach a sink (Table 2
    'O'); [benign_sources], when constructible, perturbs execution
    without reaching the sinks (Table 2 'X'). *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World

type category = Spec | Leak_detection | Vulnerable | Concurrency

val category_to_string : category -> string

type t = {
  name : string;
  category : category;
  description : string;
  source : string;                     (** MiniC program text *)
  world : World.t;
  leak_sources : Engine.source_spec list;
  benign_sources : Engine.source_spec list option;
  sinks : Engine.sink_config;
  strategy : Ldx_core.Mutation.strategy;
      (** default off-by-one; targeted [Swap_substring] for blob fields *)
  safe_world : World.t option;
      (** benign-input world: the same mutation must stay silent (the
          "no false warnings" check for attack detection) *)
  paper_loc : string;                  (** LOC reported in the paper *)
  interactive : bool;                  (** excluded from Fig. 6 *)
  uses_threads : bool;
}

val make :
  name:string -> category:category -> description:string -> source:string ->
  world:World.t -> leak_sources:Engine.source_spec list ->
  ?benign_sources:Engine.source_spec list -> sinks:Engine.sink_config ->
  ?strategy:Ldx_core.Mutation.strategy -> ?safe_world:World.t ->
  paper_loc:string -> ?interactive:bool -> ?uses_threads:bool -> unit -> t

(** The leak-mutation configuration ([?strategy] overrides the
    workload's). *)
val leak_config : ?strategy:Ldx_core.Mutation.strategy -> t -> Engine.config

(** The benign-mutation configuration; [None] when not constructible. *)
val benign_config : t -> Engine.config option

(** Sources disabled — for alignment/overhead baselines. *)
val no_mutation_config : t -> Engine.config

(** MiniC source line count (our Table 1 LOC). *)
val minic_loc : t -> int

val lower : t -> Ldx_cfg.Ir.program

val instrumented :
  t -> Ldx_cfg.Ir.program * Ldx_instrument.Counter.stats
