(* The complete 28-benchmark registry (Table 1 order). *)

let spec = W_spec.all
let leak = W_leak.all
let vulnerable = W_vuln.all
let concurrency = W_conc.all

let all = spec @ leak @ vulnerable @ concurrency

let find name =
  List.find_opt (fun (w : Workload.t) -> String.equal w.Workload.name name) all

let find_exn name =
  match find name with
  | Some w -> w
  | None -> invalid_arg ("Registry.find_exn: unknown workload " ^ name)

let by_category c =
  List.filter (fun (w : Workload.t) -> w.Workload.category = c) all

(* The Fig. 6 performance subset: non-interactive programs, as in the
   paper (firefox and lynx are interactive; sysstat and mp3info are
   excluded there for trivial runtime — we keep them since all our
   runtimes are virtual). *)
let performance_set =
  List.filter (fun (w : Workload.t) -> not w.Workload.interactive) all
