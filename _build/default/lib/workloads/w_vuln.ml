(* Vulnerable programs for attack detection (Table 1 rows 18-23:
   Gif2png, Mp3info, Prozilla, Yopsws, Ngircd, Gcc).

   The sinks model the paper's attack-detection points: [retaddr(v)] is
   the function-return-address check (buffer overflows corrupt v with
   input-derived bytes) and [malloc(n)] is the memory-management-
   parameter check (integer overflows corrupt n).  Mutating the untrusted
   input changes the corrupted value, which LDX observes as strong
   causality between input and the critical execution point.  The taint
   baselines see these too when the corruption flows through plain data
   dependences — and miss the ones routed through control dependences or
   unmodelled library calls. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World
open Workload

let src = Engine.source

(* ------------------------------------------------------------------ *)
(* Gif2png: header width field drives a fixed-buffer copy.             *)

let gif2png =
  make ~name:"Gif2png" ~category:Vulnerable ~paper_loc:"16K"
    ~description:
      "image converter: the GIF width field overruns a 16-byte pixel \
       buffer; the overflow bytes corrupt the return address"
    ~source:
      {| fn convert(header, pixels) {
           // claimed width from the (untrusted) header
           let width = atoi(substr(header, 3, 3));
           let buf = mkarray(16, 0);
           let ret = 4096;                 // saved return address (model)
           for (let i = 0; i < width; i = i + 1) {
             let px = char_at(pixels, i % max(1, strlen(pixels)));
             if (i < 16) {
               buf[i] = px;
             } else {
               // out-of-bounds writes clobber the saved return address
               ret = (ret * 31 + px) % 65536;
             }
           }
           let sum = 0;
           for (let i = 0; i < 16; i = i + 1) { sum = sum + buf[i]; }
           retaddr(ret);
           return sum;
         }

         fn main() {
           // field-at-a-time parse, as the real decoder does
           let fd = open("/data/evil.gif");
           let magic = read(fd, 3);
           let widthtxt = read(fd, 3);
           let flags = read(fd, 2);
           let pixels = read(fd, 200);
           close(fd);
           let sum = convert("xxx" + widthtxt + flags, pixels);
           let out = creat("/out/evil.png");
           write(out, "PNG:" + itoa(sum) + magic);
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out"
        |> with_file "/data/evil.gif" "GIF024!!AAAABBBBCCCCDDDDEEEEFFFF")
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/evil.gif" ~nth:2 () ]
      (* nth=2: the width field, not the magic bytes *)
    ~strategy:(Ldx_core.Mutation.Swap_substring ("024", "025"))
    ~safe_world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out"
        |> with_file "/data/evil.gif" "GIF012!!AAAABBBB")
      (* width 12 fits the 16-byte buffer: no overflow, the return slot
         stays clean whatever the mutation does *)
    ~sinks:Engine.Attack_sinks ()

(* ------------------------------------------------------------------ *)
(* Mp3info: tag size fields multiply into a malloc size (integer       *)
(* overflow pattern).                                                  *)

let mp3info =
  make ~name:"Mp3info" ~category:Vulnerable ~paper_loc:"925"
    ~description:
      "tag reader: frame-count times frame-size drives an allocation; \
       crafted fields overflow the size computation"
    ~source:
      {| fn main() {
           let fd = open("/data/song.mp3");
           let magic = read(fd, 3);
           let nframes = atoi(read(fd, 3));
           let framesz = atoi(read(fd, 3));
           let title = read(fd, 12);
           close(fd);
           // 16-bit wraparound models the integer overflow
           let total = (nframes * framesz) % 65536;
           let buf = malloc(total);
           print("title=" + title + " frames=" + itoa(nframes) + "\n");
           free(buf);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data"
        |> with_file "/data/song.mp3" "ID3999999darkside-ofx")
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/song.mp3" ~nth:2 () ]
      (* nth=2: the frame-count field *)
    ~sinks:Engine.Attack_sinks ()

(* ------------------------------------------------------------------ *)
(* Prozilla: Content-Length from the server overruns a stack buffer.   *)

let prozilla =
  make ~name:"Prozilla" ~category:Vulnerable ~paper_loc:"13K"
    ~description:
      "download accelerator: the response Content-Length drives a copy \
       into a fixed chunk buffer; the overflow corrupts the return slot"
    ~source:
      {| fn fetch(conn) {
           send(conn, "GET /file HTTP/1.0");
           let hdr = recv(conn);
           let cl = find(hdr, "Length:");
           let claimed = atoi(substr(hdr, cl + 7, 6));
           let body = recv(conn);
           let buf = mkarray(32, 0);
           let ret = 8192;
           for (let i = 0; i < claimed; i = i + 1) {
             let b = char_at(body, i % max(1, strlen(body)));
             if (i < 32) { buf[i] = b; }
             else { ret = (ret ^ (b * (i + 1))) % 65536; }
           }
           retaddr(ret);
           return claimed;
         }

         fn main() {
           let conn = socket("mirror.example");
           let n = fetch(conn);
           let out = creat("/out/file.part");
           write(out, "got=" + itoa(n));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/out"
        |> with_endpoint "mirror.example"
          [ "HTTP/1.0 200 Length:000048"; "payloadpayloadpayload" ])
    ~leak_sources:[ src ~sys:"recv" ~arg:"mirror.example" () ]
    ~safe_world:
      World.(
        empty
        |> with_dir "/out"
        |> with_endpoint "mirror.example"
          [ "HTTP/1.0 200 Length:000024"; "payloadpayloadpayload" ])
    ~sinks:Engine.Attack_sinks ()

(* ------------------------------------------------------------------ *)
(* Yopsws: the request path is copied into a small URI buffer.         *)

let yopsws =
  make ~name:"Yopsws" ~category:Vulnerable ~paper_loc:"1.9K"
    ~description:
      "tiny web server: an over-long request path overruns the URI \
       buffer and smashes the frame"
    ~source:
      {| fn handle(conn, req) {
           let uri = mkarray(12, 0);
           let ret = 16384;
           for (let i = 0; i < strlen(req); i = i + 1) {
             let c = char_at(req, i);
             if (i < 12) { uri[i] = c; }
           }
           if (strlen(req) > 12) {
             // the smashed slot holds attacker-controlled payload bits
             ret = (16384 + hash(req)) % 65536;
           }
           retaddr(ret);
           if (char_at(req, 0) == 47) { send(conn, "200 ok"); }
           else { send(conn, "400 bad"); }
           return 0;
         }

         fn main() {
           let conn = socket("www.clients");
           let req = recv(conn);
           let served = 0;
           while (req != "") {
             let ok = handle(conn, req);
             served = served + 1;
             req = recv(conn);
           }
           print("served=" + itoa(served) + "\n");
         } |}
    ~world:
      World.(
        empty
        |> with_endpoint "www.clients"
          [ "/index.html"; "/AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA" ])
    ~leak_sources:[ src ~sys:"recv" ~arg:"www.clients" ~nth:2 () ]
    ~safe_world:
      World.(empty |> with_endpoint "www.clients" [ "/index"; "/about" ])
    ~sinks:Engine.Attack_sinks ()

(* ------------------------------------------------------------------ *)
(* Ngircd: IRC NICK message parsing with a fixed nick buffer.          *)

let ngircd =
  make ~name:"Ngircd" ~category:Vulnerable ~paper_loc:"66K"
    ~description:
      "IRC daemon: NICK argument copied into a 9-byte nick buffer; \
       longer nicks clobber adjacent frame state"
    ~source:
      {| fn handle_nick(conn, arg) {
           let nick = mkarray(9, 0);
           let ret = 32768;
           for (let i = 0; i < strlen(arg); i = i + 1) {
             let c = char_at(arg, i);
             if (i < 9) { nick[i] = c; }
             else { ret = (ret + (c << (i % 8))) % 65536; }
           }
           retaddr(ret);
           send(conn, "001 welcome");
           return 0;
         }

         fn handle_join(conn, arg) {
           send(conn, "JOIN " + arg);
           return 0;
         }

         fn main() {
           let conn = socket("irc.clients");
           let msg = recv(conn);
           let handled = 0;
           while (msg != "") {
             let sp = find(msg, " ");
             let cmd = msg;
             let arg = "";
             if (sp >= 0) {
               cmd = substr(msg, 0, sp);
               arg = substr(msg, sp + 1, strlen(msg) - sp - 1);
             }
             let h = @handle_join;
             if (cmd == "NICK") { h = @handle_nick; }
             let ok = h(conn, arg);
             handled = handled + 1;
             msg = recv(conn);
           }
           print("handled=" + itoa(handled) + "\n");
         } |}
    ~world:
      World.(
        empty
        |> with_endpoint "irc.clients"
          [ "NICK averyveryverylongnickname_overflowing"; "JOIN #ocaml" ])
    ~leak_sources:[ src ~sys:"recv" ~arg:"irc.clients" ~nth:1 () ]
    ~safe_world:
      World.(empty |> with_endpoint "irc.clients" [ "JOIN #chat"; "JOIN #caml" ])
    ~sinks:Engine.Attack_sinks ()

(* ------------------------------------------------------------------ *)
(* Gcc (the 54K vulnerable row): a declared array size from the input  *)
(* source flows into an allocation after an unchecked multiply.        *)

let gcc_vuln =
  make ~name:"Gcc" ~category:Vulnerable ~paper_loc:"54K"
    ~description:
      "compiler front end: a declared array extent times element size \
       reaches the arena allocator unchecked"
    ~source:
      {| fn parse_extent(text) {
           // find "int a[NNNN]" and return NNNN
           let lb = find(text, "[");
           let rb = find(text, "]");
           if (lb < 0 || rb < lb) { return 0; }
           return atoi(substr(text, lb + 1, rb - lb - 1));
         }

         fn main() {
           let fd = open("/src/prog.c");
           let text = read(fd, 512);
           close(fd);
           let extent = parse_extent(text);
           let elem = 8;
           let size = (extent * elem) % 65536;     // wraparound
           let arena = malloc(size);
           // token count pass (realistic extra work)
           let tokens = 0;
           for (let i = 0; i < strlen(text); i = i + 1) {
             if (char_at(text, i) == 32) { tokens = tokens + 1; }
           }
           let out = creat("/out/prog.o");
           write(out, "obj tokens=" + itoa(tokens));
           close(out);
           free(arena);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/src" |> with_dir "/out"
        |> with_file "/src/prog.c" "int main() { int a[9999]; return a[0]; }")
    ~leak_sources:[ src ~sys:"read" ~arg:"/src/prog.c" () ]
    ~strategy:(Ldx_core.Mutation.Swap_substring ("[9999]", "[9998]"))
      (* targeted data-field mutation: the declared extent *)
    ~sinks:Engine.Attack_sinks ()

let all = [ gif2png; mp3info; prozilla; yopsws; ngircd; gcc_vuln ]
