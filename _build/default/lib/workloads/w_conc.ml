(* Concurrent programs (Table 1 rows 24-28: Apache, Pbzip2, Pigz, Axel,
   X264) for the Table 4 experiment.

   Threads are paired across master and slave by spawn order; lock
   acquisition order is recorded in the master and replayed in the slave
   (Sec. 7).  Each program contains a deliberate unprotected data race
   (load / yield / store on shared cells) whose outcome depends on the
   schedule seed: across repeated runs the syscall-difference counts
   wobble, while the tainted-sink counts stay stable — except for axel
   and x264, where the raced value feeds a sink, matching the paper's
   observations. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World
open Workload

let src = Engine.source

(* ------------------------------------------------------------------ *)
(* Apache: fixed request queue, two workers, lock-protected dispatch,  *)
(* racy byte-count statistics logged locally.                          *)

let apache =
  make ~name:"Apache" ~category:Concurrency ~paper_loc:"208K"
    ~uses_threads:true
    ~description:
      "worker-pool server: lock-protected request dispatch, per-worker \
       responses; an unprotected stats counter races"
    ~source:
      {| fn worker(ctx) {
           let shared = ctx[0];
           let wid = ctx[1];
           let q = shared[0];
           let next = shared[1];
           let stats = shared[2];
           let conn = socket("backend" + itoa(wid));
           for (let k = 0; k < 4; k = k + 1) {
             lock(1);
             let idx = next[0];
             next[0] = idx + 1;
             unlock(1);
             let req = q[idx];
             // unprotected read-modify-write: the race
             let seen = stats[0];
             yield();
             stats[0] = seen + strlen(req);
             send(conn, "resp:" + upper(req));
           }
           return 0;
         }

         fn main() {
           let clients = socket("frontend");
           let q = mkarray(8, "");
           for (let i = 0; i < 8; i = i + 1) { q[i] = recv(clients); }
           let next = mkarray(1, 0);
           let stats = mkarray(1, 0);
           let shared = mkarray(3, 0);
           shared[0] = q; shared[1] = next; shared[2] = stats;
           let c1 = mkarray(2, 0); c1[0] = shared; c1[1] = 1;
           let c2 = mkarray(2, 0); c2[0] = shared; c2[1] = 2;
           let t1 = spawn(@worker, c1);
           let t2 = spawn(@worker, c2);
           join(t1); join(t2);
           let log = creat("/var/log/apache.log");
           write(log, "bytes=" + itoa(stats[0]));
           close(log);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/var" |> with_dir "/var/log"
        |> with_endpoint "frontend"
          [ "get/a"; "get/bb"; "get/ccc"; "get/dddd"; "get/e";
            "get/ff"; "get/g"; "get/hhhh" ]
        |> with_endpoint "backend1" [] |> with_endpoint "backend2" [])
    ~leak_sources:[ src ~sys:"recv" ~arg:"frontend" () ]
    ~benign_sources:[]
    ~sinks:Engine.Network_outputs ()

(* ------------------------------------------------------------------ *)
(* Pbzip2: parallel block compression, ordered output.                 *)

let pbzip2 =
  make ~name:"Pbzip2" ~category:Concurrency ~paper_loc:"4.5K"
    ~uses_threads:true
    ~description:
      "parallel RLE compressor: workers claim blocks under a lock, \
       results are written in order by the main thread"
    ~source:
      {| fn rle(block) {
           let out = "";
           let i = 0;
           let n = strlen(block);
           while (i < n) {
             let c = char_at(block, i);
             let runlen = 1;
             while (i + runlen < n && char_at(block, i + runlen) == c && runlen < 9) {
               runlen = runlen + 1;
             }
             out = out + itoa(runlen) + chr(c);
             i = i + runlen;
           }
           return out;
         }

         fn worker(shared) {
           let blocks = shared[0];
           let results = shared[1];
           let next = shared[2];
           let progress = shared[3];
           for (let k = 0; k < 3; k = k + 1) {
             lock(7);
             let idx = next[0];
             next[0] = idx + 1;
             unlock(7);
             if (idx < len(blocks)) {
               results[idx] = rle(blocks[idx]);
               // racy progress cell (no lock); odd readings trigger an
               // extra progress poll (an input syscall, not an output)
               let p = progress[0];
               yield();
               progress[0] = p + 1;
               if (progress[0] % 2 == 1) { let z = stat("/data/archive.raw"); }
             }
           }
           return 0;
         }

         fn main() {
           let fd = open("/data/archive.raw");
           let blocks = mkarray(6, "");
           for (let i = 0; i < 6; i = i + 1) { blocks[i] = read(fd, 10); }
           close(fd);
           let results = mkarray(6, "");
           let next = mkarray(1, 0);
           let progress = mkarray(1, 0);
           let shared = mkarray(4, 0);
           shared[0] = blocks; shared[1] = results;
           shared[2] = next; shared[3] = progress;
           let t1 = spawn(@worker, shared);
           let t2 = spawn(@worker, shared);
           join(t1); join(t2);
           let out = creat("/out/archive.bz2");
           for (let i = 0; i < 6; i = i + 1) { write(out, results[i]); }
           write(out, "#blocks=6");
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out"
        |> with_file "/data/archive.raw"
          "aaaaaaaabbbbccccccccdddddeeeeeeeeeeffffgggggggghhhhhhiiii")
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/archive.raw" () ]
    ~benign_sources:[]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* Pigz: parallel compressor with per-worker scratch logs.             *)

let pigz =
  make ~name:"Pigz" ~category:Concurrency ~paper_loc:"5.8K"
    ~uses_threads:true
    ~description:
      "parallel compressor: workers write per-worker scratch logs with \
       racy sequence numbers; the archive itself is deterministic"
    ~source:
      {| fn crush(s) {
           let out = "";
           let i = 0;
           while (i < strlen(s)) {
             let c = char_at(s, i);
             let j = i;
             while (j < strlen(s) && char_at(s, j) == c) { j = j + 1; }
             out = out + chr(c) + itoa(j - i);
             i = j;
           }
           return out;
         }

         fn worker(ctx) {
           let shared = ctx[0];
           let wid = ctx[1];
           let blocks = shared[0];
           let results = shared[1];
           let seq = shared[2];
           let scratch = creat("/tmp/pigz." + itoa(wid));
           for (let k = 0; k < 2; k = k + 1) {
             let idx = (wid - 1) * 2 + k;       // static partition
             results[idx] = crush(blocks[idx]);
             // racy shared sequence number: drives extra cache probes
             // (input syscalls), never the archive contents
             let s = seq[0];
             yield();
             seq[0] = s + 1;
             if (seq[0] % 2 == 1) { let z = stat("/data/tarball"); }
             write(scratch, "blk" + itoa(idx) + ";");
           }
           close(scratch);
           return 0;
         }

         fn main() {
           let fd = open("/data/tarball");
           let blocks = mkarray(4, "");
           for (let i = 0; i < 4; i = i + 1) { blocks[i] = read(fd, 12); }
           close(fd);
           let results = mkarray(4, "");
           let seq = mkarray(1, 0);
           let shared = mkarray(3, 0);
           shared[0] = blocks; shared[1] = results; shared[2] = seq;
           let c1 = mkarray(2, 0); c1[0] = shared; c1[1] = 1;
           let c2 = mkarray(2, 0); c2[0] = shared; c2[1] = 2;
           let t1 = spawn(@worker, c1);
           let t2 = spawn(@worker, c2);
           join(t1); join(t2);
           let out = creat("/out/tarball.gz");
           for (let i = 0; i < 4; i = i + 1) { write(out, results[i]); }
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/tmp"
        |> with_file "/data/tarball"
          "xxxxxxyyyyzzzzzzzzwwwwwwwwwwvvvvuuuuuuuuttttttssssrrrr")
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/tarball" () ]
    ~benign_sources:[]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* Axel: multi-connection downloader; a racy shared cursor scatters    *)
(* chunks, so the assembled file itself depends on the schedule.       *)

let axel =
  make ~name:"Axel" ~category:Concurrency ~paper_loc:"2583"
    ~uses_threads:true
    ~description:
      "download accelerator: three mirror threads place chunks through \
       an unprotected shared cursor — the assembled output races"
    ~source:
      {| fn conn_thread(ctx) {
           let shared = ctx[0];
           let wid = ctx[1];
           let out = shared[0];
           let bytes = shared[1];
           let mirror = socket("mirror" + itoa(wid));
           for (let k = 0; k < 3; k = k + 1) {
             let chunk = recv(mirror);
             out[(wid - 1) * 3 + k] = chunk;
             // unprotected byte counter: updates race and can be lost
             let b = bytes[0];
             yield();
             bytes[0] = b + strlen(chunk);
           }
           return 0;
         }

         fn main() {
           let out = mkarray(9, "");
           let bytes = mkarray(1, 0);
           let shared = mkarray(2, 0);
           shared[0] = out; shared[1] = bytes;
           let c1 = mkarray(2, 0); c1[0] = shared; c1[1] = 1;
           let c2 = mkarray(2, 0); c2[0] = shared; c2[1] = 2;
           let c3 = mkarray(2, 0); c3[0] = shared; c3[1] = 3;
           let t1 = spawn(@conn_thread, c1);
           let t2 = spawn(@conn_thread, c2);
           let t3 = spawn(@conn_thread, c3);
           join(t1); join(t2); join(t3);
           let f = creat("/out/download.bin");
           for (let i = 0; i < 9; i = i + 1) { write(f, out[i]); }
           write(f, "#bytes=" + itoa(bytes[0]));
           close(f);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/out"
        |> with_endpoint "mirror1" [ "AA"; "BB"; "CC" ]
        |> with_endpoint "mirror2" [ "DD"; "EE"; "FF" ]
        |> with_endpoint "mirror3" [ "GG"; "HH"; "II" ])
    ~leak_sources:[ src ~sys:"recv" ~arg:"mirror1" () ]
    ~benign_sources:[]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* X264: parallel encoder; the stats line divides by a raced counter   *)
(* (the paper's "bits per second" effect).                             *)

let x264 =
  make ~name:"X264" ~category:Concurrency ~paper_loc:"98K"
    ~uses_threads:true
    ~description:
      "parallel encoder: workers encode disjoint frame ranges; the \
       throughput statistic divides by a raced progress counter"
    ~source:
      {| fn encode_frame(frame) {
           let bits = 0;
           for (let i = 0; i < strlen(frame); i = i + 1) {
             let d = abs(char_at(frame, i) - 100);
             if (d > 8) { bits = bits + d * 2; }
             else { bits = bits + d; }
           }
           return bits;
         }

         fn worker(ctx) {
           let shared = ctx[0];
           let wid = ctx[1];
           let frames = shared[0];
           let bits = shared[1];
           let ticks = shared[2];
           let sizes = shared[3];
           for (let k = 0; k < 2; k = k + 1) {
             let idx = (wid - 1) * 2 + k;
             let b = encode_frame(frames[idx]);
             sizes[idx] = b;
             lock(3);
             bits[0] = bits[0] + b;
             unlock(3);
             // raced tick counter (no lock): throughput denominator
             let t = ticks[0];
             yield();
             ticks[0] = t + 1;
           }
           return 0;
         }

         fn main() {
           let fd = open("/data/clip.yuv");
           let frames = mkarray(4, "");
           for (let i = 0; i < 4; i = i + 1) { frames[i] = read(fd, 16); }
           close(fd);
           let bits = mkarray(1, 0);
           let ticks = mkarray(1, 1);
           let sizes = mkarray(4, 0);
           let shared = mkarray(4, 0);
           shared[0] = frames; shared[1] = bits; shared[2] = ticks;
           shared[3] = sizes;
           let c1 = mkarray(2, 0); c1[0] = shared; c1[1] = 1;
           let c2 = mkarray(2, 0); c2[0] = shared; c2[1] = 2;
           let t1 = spawn(@worker, c1);
           let t2 = spawn(@worker, c2);
           join(t1); join(t2);
           let out = creat("/out/clip.264");
           write(out, "bits=" + itoa(bits[0]));
           for (let i = 0; i < 4; i = i + 1) {
             write(out, ";f" + itoa(i) + "=" + itoa(sizes[i]));
           }
           close(out);
           // the statistics report: bits per raced tick
           print("throughput=" + itoa(bits[0] / max(1, ticks[0])) + "\n");
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out"
        |> with_file "/data/clip.yuv"
          "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789+/")
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/clip.yuv" () ]
    ~benign_sources:[]
    ~sinks:Engine.File_outputs ()

let all = [ apache; pbzip2; pigz; axel; x264 ]
