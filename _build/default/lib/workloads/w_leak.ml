(* Network/system programs for information-leak detection (Table 1 rows
   13-17: Firefox, Lynx, Nginx, Tnftp, Sysstat).

   Sinks are the outgoing network syscalls (except sysstat, whose report
   goes to local output).  Leak sources are the secrets (cookies,
   passwords, URLs, /proc contents); benign sources perturb behaviour
   without reaching the sinks. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World
open Workload

let src = Engine.source

(* ------------------------------------------------------------------ *)
(* Firefox + ShowIP extension: an event loop dispatching UI events to  *)
(* handlers through function pointers; the extension sends the current *)
(* URL to a remote "showip" service on page loads.                     *)

let firefox =
  make ~name:"Firefox" ~category:Leak_detection ~paper_loc:"14M"
    ~interactive:true
    ~description:
      "browser event loop (JS-engine-style indirect dispatch); the \
       ShowIP extension leaks the visited URL to a remote server"
    ~source:
      {| fn handle_load(state, payload) {
           state[0] = payload;                       // current url
           state[1] = state[1] + 1;                  // pages loaded
           // ShowIP extension: report the site category to the remote
           // service.  The category is picked by branching on the URL —
           // a control dependence, invisible to data-dep taint engines.
           let category = "misc";
           if (find(payload, "bank") >= 0) { category = "finance"; }
           else { if (find(payload, "news") >= 0) { category = "press"; } }
           let ext = socket("showip.server");
           send(ext, "lookup " + category + "/" + itoa(state[1]));
           let ip = recv(ext);
           state[2] = ip;
           return 1;
         }
         fn handle_click(state, payload) {
           let log = creat("/home/user/clicks.log");
           write(log, "click:" + payload);
           close(log);
           return 1;
         }
         fn handle_key(state, payload) {
           // keystrokes go to the search bar buffer
           state[3] = state[3] + payload;
           return 1;
         }
         fn handle_unknown(state, payload) { return 0; }

         fn dispatch(kind) {
           if (kind == "load") { return @handle_load; }
           if (kind == "click") { return @handle_click; }
           if (kind == "key") { return @handle_key; }
           return @handle_unknown;
         }

         fn main() {
           let ui = socket("ui.events");
           let state = mkarray(4, "");
           state[1] = 0;
           let ev = recv(ui);
           while (ev != "") {
             let colon = find(ev, ":");
             let kind = substr(ev, 0, colon);
             let payload = substr(ev, colon + 1, strlen(ev) - colon - 1);
             let h = dispatch(kind);
             let ok = h(state, payload);
             ev = recv(ui);
           }
           let log = creat("/home/user/session.log");
           write(log, "pages=" + itoa(state[1]) + " search=" + state[3]);
           close(log);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/home" |> with_dir "/home/user"
        |> with_endpoint "showip.server" [ "93.184.216.34"; "151.101.1.69" ]
        |> with_endpoint "ui.events"
          ([ "load:http://bank.example/account";
             "key:s"; "key:ecret"; "click:42,17";
             "load:http://news.example/today" ]
           @ List.concat
               (List.init 6 (fun i ->
                    [ Printf.sprintf "key:%c" (Char.chr (97 + i));
                      Printf.sprintf "click:%d,%d" (i * 13 mod 80) (i * 7 mod 25);
                      Printf.sprintf "load:http://site%d.example/p" i ]))))
    ~leak_sources:[ src ~sys:"recv" ~arg:"ui.events" ~nth:1 () ]
      (* the first UI event carries the visited URL; ShowIP sends it out *)
    ~benign_sources:[ src ~sys:"recv" ~arg:"ui.events" ~nth:4 () ]
      (* a click coordinate: logged locally, never sent *)
    ~sinks:Engine.Network_outputs ()

(* ------------------------------------------------------------------ *)
(* Lynx: fetch a page; the cookie jar decides (control dependence!)    *)
(* whether a Cookie header is attached to the outgoing request.        *)

let lynx =
  make ~name:"Lynx" ~category:Leak_detection ~paper_loc:"204K"
    ~interactive:true
    ~description:
      "text browser: cookie-jar lookup decides the request header; \
       renders the response and appends a history file"
    ~source:
      {| fn read_all(path) {
           let fd = open(path);
           if (fd < 0) { return ""; }
           let data = "";
           let chunk = read(fd, 32);
           while (chunk != "") { data = data + chunk; chunk = read(fd, 32); }
           close(fd);
           return data;
         }

         fn render(html) {
           // strip <tags>, keep text
           let out = "";
           let intag = 0;
           for (let i = 0; i < strlen(html); i = i + 1) {
             let c = char_at(html, i);
             if (c == 60) { intag = 1; }
             else { if (c == 62) { intag = 0; }
             else { if (intag == 0) { out = out + chr(c); } } }
           }
           return out;
         }

         fn main() {
           let cfg = read_all("/etc/lynx.cfg");
           let ui_lines = atoi(cfg);
           if (ui_lines < 1) { ui_lines = 24; }
           let jar = read_all("/home/user/.cookies");
           let url = "site.example/index";
           let s = socket("site.example");
           let req = "GET " + url;
           // control dependence: a cookie is attached only if the jar
           // has an entry for this host
           if (find(jar, "site.example") >= 0) {
             let eq = find(jar, "=");
             let tok = substr(jar, eq + 1, strlen(jar) - eq - 1);
             req = req + " Cookie:" + tok;
           }
           send(s, req);
           let page = recv(s);
           let text = render(page);
           // paginate into ui_lines-character screens (input-sized loop)
           let screens = 0;
           let i = 0;
           while (i < strlen(text)) {
             screens = screens + 1;
             i = i + ui_lines;
           }
           let hist = creat("/home/user/.history");
           write(hist, url + " screens=" + itoa(screens));
           close(hist);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/etc" |> with_dir "/home" |> with_dir "/home/user"
        |> with_file "/etc/lynx.cfg" "8"
        |> with_file "/home/user/.cookies" "site.example=SESSION12345"
        |> with_endpoint "site.example"
          [ "<html><head><title>demo</title></head><body><h1>Demo</h1>"
            ^ String.concat ""
                (List.init 12 (fun i ->
                     Printf.sprintf "<p>%s <b>para %d</b></p>"
                       (Inputs.text ~seed:(30 + i) ~chars:50) i))
            ^ "</body></html>" ])
    ~leak_sources:[ src ~sys:"read" ~arg:"/home/user/.cookies" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/lynx.cfg" () ]
    ~sinks:Engine.Network_outputs ()

(* ------------------------------------------------------------------ *)
(* Nginx: request loop, path routing, access control from a secrets    *)
(* file, response + access log.                                        *)

let nginx =
  make ~name:"Nginx" ~category:Leak_detection ~paper_loc:"287K"
    ~description:
      "web server: GET/HEAD verbs, MIME typing by extension, redirects, \
       auth-gated admin area (control dependence), access log"
    ~source:
      {| fn read_all(path) {
           let fd = open(path);
           if (fd < 0) { return ""; }
           let data = "";
           let chunk = read(fd, 48);
           while (chunk != "") { data = data + chunk; chunk = read(fd, 48); }
           close(fd);
           return data;
         }

         fn mime_of(path) {
           if (find(path, ".html") >= 0) { return "text/html"; }
           if (find(path, ".css") >= 0) { return "text/css"; }
           if (find(path, ".js") >= 0) { return "text/javascript"; }
           return "application/octet-stream";
         }

         fn serve(conn, log, auth, req) {
           // request := VERB ' ' path [' ' token]
           let sp1 = find(req, " ");
           let verb = substr(req, 0, sp1);
           let rest = substr(req, sp1 + 1, strlen(req) - sp1 - 1);
           let sp2 = find(rest, " ");
           let path = rest;
           let token = "";
           if (sp2 >= 0) {
             path = substr(rest, 0, sp2);
             token = substr(rest, sp2 + 1, strlen(rest) - sp2 - 1);
           }
           if (path == "/") {
             send(conn, "301 /index.html");
           } else { if (starts_with(path, "/admin")) {
             if (token == auth) { send(conn, "200 admin-panel"); }
             else { send(conn, "403 forbidden"); }
           } else {
             let body = read_all("/www" + path);
             if (body == "") {
               send(conn, "404 not-found");
             } else { if (verb == "HEAD") {
               send(conn, "200 " + mime_of(path) + " len=" + itoa(strlen(body)));
             } else {
               send(conn, "200 " + mime_of(path) + " " + body);
             } }
           } }
           write(log, verb + " " + path + ";");
           return 0;
         }

         fn main() {
           let auth = read_all("/etc/nginx/htpasswd");
           let verbosity = atoi(read_all("/etc/nginx/nginx.conf"));
           let conn = socket("clients");
           let log = creat("/var/log/access.log");
           let req = recv(conn);
           let served = 0;
           while (req != "") {
             let ok = serve(conn, log, auth, req);
             served = served + 1;
             // verbose mode re-stats the served tree (cache revalidation)
             for (let v = 0; v < verbosity; v = v + 1) {
               let sz = stat("/www/index.html");
             }
             req = recv(conn);
           }
           write(log, "#served=" + itoa(served));
           close(log);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/etc" |> with_dir "/etc/nginx"
        |> with_dir "/var" |> with_dir "/var/log"
        |> with_dir "/www"
        |> with_file "/etc/nginx/htpasswd" "hunter2"
        |> with_file "/etc/nginx/nginx.conf" "1"
        |> with_file "/www/index.html" "welcome"
        |> with_file "/www/about.html" "about-us"
        |> with_file "/www/style.css" "body{}"
        |> with_endpoint "clients"
          (Inputs.requests ~seed:31 ~n:40 ~auth:"hunter2"))
    ~leak_sources:[ src ~sys:"read" ~arg:"/etc/nginx/htpasswd" () ]
      (* mutating the stored token flips the /admin authorization:
         the 200/403 answer leaks the secret through control deps *)
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/nginx/nginx.conf" () ]
    ~sinks:Engine.Network_outputs ()

(* ------------------------------------------------------------------ *)
(* Tnftp: scripted FTP session; the password from ~/.netrc goes out    *)
(* on the wire during login.                                           *)

let tnftp =
  make ~name:"Tnftp" ~category:Leak_detection ~paper_loc:"152K"
    ~description:
      "ftp client: scripted session with cd/ls/get/quit; .netrc \
       credentials go out at login; downloads land in local files"
    ~source:
      {| fn read_all(path) {
           let fd = open(path);
           if (fd < 0) { return ""; }
           let data = "";
           let chunk = read(fd, 32);
           while (chunk != "") { data = data + chunk; chunk = read(fd, 32); }
           close(fd);
           return data;
         }

         fn do_get(ctrl, cwd, fname, idx) {
           send(ctrl, "RETR " + cwd + "/" + fname);
           let body = recv(ctrl);
           let ofd = creat("/home/user/dl_" + itoa(idx));
           write(ofd, body);
           close(ofd);
           return strlen(body);
         }

         fn main() {
           let netrc = read_all("/home/user/.netrc");
           let script = read_all("/home/user/ftp.script");
           let retries = atoi(read_all("/etc/ftp.conf"));
           let ctrl = socket("ftp.server");
           let banner = recv(ctrl);
           // keepalive polling of a status channel (count from config)
           let statusch = socket("ftp.status");
           for (let r = 0; r < retries; r = r + 1) { let st = recv(statusch); }
           // login
           send(ctrl, "USER anonymous");
           let resp1 = recv(ctrl);
           if (find(resp1, "331") >= 0) {
             send(ctrl, "PASS " + netrc);
             let resp2 = recv(ctrl);
           }
           // execute script commands, one per line
           let i = 0;
           let line = "";
           let downloaded = 0;
           let bytes = 0;
           let cwd = "";
           while (i <= strlen(script)) {
             let c = char_at(script, i);
             if (c == 10 || c == -1) {
               if (starts_with(line, "cd ")) {
                 cwd = substr(line, 3, strlen(line) - 3);
                 send(ctrl, "CWD " + cwd);
                 let ack = recv(ctrl);
               } else { if (line == "ls") {
                 send(ctrl, "LIST " + cwd);
                 let listing = recv(ctrl);
                 print(listing + "\n");
               } else { if (starts_with(line, "get ")) {
                 let fname = substr(line, 4, strlen(line) - 4);
                 bytes = bytes + do_get(ctrl, cwd, fname, downloaded);
                 downloaded = downloaded + 1;
               } else { if (line == "quit") {
                 send(ctrl, "QUIT");
               } } } }
               line = "";
             } else { line = line + chr(c); }
             i = i + 1;
           }
           print("fetched " + itoa(downloaded) + " files, "
                 + itoa(bytes) + " bytes\n");
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/home" |> with_dir "/home/user" |> with_dir "/etc"
        |> with_file "/home/user/.netrc" "s3cr3tpass"
        |> with_file "/home/user/ftp.script"
          ("cd pub\nls\n"
           ^ String.concat ""
               (List.init 6 (fun i -> Printf.sprintf "get file%02d.dat\n" i))
           ^ "cd archive\nls\nget backup.tar\nquit\n")
        |> with_file "/etc/ftp.conf" "2"
        |> with_endpoint "ftp.server"
          ([ "220 welcome"; "331 need password"; "230 logged in";
             "250 CWD ok"; "file00.dat file01.dat file02.dat" ]
           @ List.init 6 (fun i -> Inputs.text ~seed:(40 + i) ~chars:120)
           @ [ "250 CWD ok"; "backup.tar";
               Inputs.text ~seed:47 ~chars:200; "221 bye" ])
        |> with_endpoint "ftp.status" (List.init 8 (fun _ -> "ok")))
    ~leak_sources:[ src ~sys:"read" ~arg:"/home/user/.netrc" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/ftp.conf" () ]
    ~sinks:Engine.Network_outputs ()

(* ------------------------------------------------------------------ *)
(* Sysstat: /proc sampler producing a local report.                    *)

let sysstat =
  make ~name:"Sysstat" ~category:Leak_detection ~paper_loc:"29K"
    ~description:
      "sar-style sampler: parses /proc counters, aggregates, prints a \
       report (local outputs are the sinks)"
    ~source:
      {| fn parse_field(text, key) {
           let k = find(text, key);
           if (k < 0) { return 0; }
           let start = k + strlen(key);
           let i = start;
           while (char_at(text, i) >= 48 && char_at(text, i) <= 57) { i = i + 1; }
           return atoi(substr(text, start, i - start));
         }

         fn main() {
           let ifd = open("/etc/sysstat.conf");
           let intervals = atoi(read(ifd, 4));
           close(ifd);
           if (intervals < 1) { intervals = 1; }
           let user_total = 0;
           let sys_total = 0;
           for (let s = 0; s < intervals; s = s + 1) {
             let t = time();                    // sampling timestamp
             let fd = open("/proc/stat");
             let text = read(fd, 256);
             close(fd);
             user_total = user_total + parse_field(text, "user=");
             sys_total = sys_total + parse_field(text, "sys=");
           }
           print("CPU user=" + itoa(user_total / intervals)
                 + " sys=" + itoa(sys_total / intervals) + "\n");
           let mfd = open("/proc/meminfo");
           let mtext = read(mfd, 256);
           close(mfd);
           print("MEM free=" + itoa(parse_field(mtext, "free=")) + "\n");
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/proc" |> with_dir "/etc"
        |> with_file "/etc/sysstat.conf" "5"
        |> with_file "/proc/stat" "user=420 sys=137 idle=9000"
        |> with_file "/proc/meminfo" "total=8192 free=2048")
    ~leak_sources:[ src ~sys:"read" ~arg:"/proc/stat" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/sysstat.conf" () ]
    ~sinks:Engine.File_outputs ()

let all = [ firefox; lynx; nginx; tnftp; sysstat ]
