(** Deterministic input synthesizers — the corpus's "reference inputs".
    Every function is a pure function of its seed (reproducible runs). *)

type rng

val rng : int -> rng
val next : rng -> int
val below : rng -> int -> int
val pick : rng -> 'a list -> 'a

(** Pseudo-text: lowercase words, space/newline separated, exact size. *)
val text : seed:int -> chars:int -> string

(** Runs of repeated letters — compressible input. *)
val runs : seed:int -> chars:int -> string

(** Arithmetic script for the perlbench interpreter: one statement per
    line over digits, variables a-d, + - * %, and parenthesized groups;
    about a third of the lines are assignments. *)
val perl_script : seed:int -> lines:int -> string

(** ["n m"] header plus [m] random weighted edges. *)
val graph : seed:int -> nodes:int -> edges:int -> string

(** Two consecutive frames of [w*h] pixels, newline-separated, differing
    in a handful of cells. *)
val frames : seed:int -> w:int -> h:int -> string

(** Event tape: arrivals ('a'), departures ('d'), noise ('n'). *)
val events : seed:int -> n:int -> string

(** Gate program: [xQ] bit flips and [s.] shifts. *)
val gates : seed:int -> n:int -> string

(** DNA-ish sequence over GATC. *)
val sequence : seed:int -> n:int -> string

(** Balanced nested tag document (no newlines). *)
val xml : seed:int -> nodes:int -> string

(** Grid map: floor 'f' / wall 'W'; the left column and bottom row stay
    clear so a path exists. *)
val grid : seed:int -> w:int -> h:int -> string

(** HTTP-ish request tape with GET/HEAD verbs and occasional /admin
    attempts using [auth] or a wrong token. *)
val requests : seed:int -> n:int -> auth:string -> string list
