lib/workloads/w_leak.ml: Char Inputs Ldx_core Ldx_osim List Printf String Workload
