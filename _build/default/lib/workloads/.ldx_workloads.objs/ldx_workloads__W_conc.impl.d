lib/workloads/w_conc.ml: Ldx_core Ldx_osim Workload
