lib/workloads/w_spec.ml: Inputs Ldx_core Ldx_osim List Printf String Workload
