lib/workloads/workload.mli: Ldx_cfg Ldx_core Ldx_instrument Ldx_osim
