lib/workloads/registry.ml: List String W_conc W_leak W_spec W_vuln Workload
