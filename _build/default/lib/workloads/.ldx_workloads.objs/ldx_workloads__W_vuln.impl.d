lib/workloads/w_vuln.ml: Ldx_core Ldx_osim Workload
