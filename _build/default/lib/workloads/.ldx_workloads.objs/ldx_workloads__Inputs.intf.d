lib/workloads/inputs.mli:
