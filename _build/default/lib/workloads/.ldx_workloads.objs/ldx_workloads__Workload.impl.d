lib/workloads/workload.ml: Ldx_cfg Ldx_core Ldx_instrument Ldx_osim Option String
