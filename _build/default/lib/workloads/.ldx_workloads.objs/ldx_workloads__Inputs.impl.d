lib/workloads/inputs.ml: Buffer Bytes Char List Printf String
