(** The complete 28-benchmark registry, in Table 1 order. *)

(** 12 SPEC INT analogues. *)
val spec : Workload.t list

(** 5 network/system programs. *)
val leak : Workload.t list

(** 6 attack-detection programs. *)
val vulnerable : Workload.t list

(** 5 multithreaded programs. *)
val concurrency : Workload.t list

val all : Workload.t list

val find : string -> Workload.t option

(** @raise Invalid_argument on unknown names. *)
val find_exn : string -> Workload.t

val by_category : Workload.category -> Workload.t list

(** The Fig. 6 performance subset (non-interactive programs). *)
val performance_set : Workload.t list
