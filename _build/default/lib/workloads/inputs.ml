(* Deterministic input synthesizers — the "reference inputs" of the
   workload corpus.

   The paper runs SPEC with its ref inputs; our analogues similarly need
   inputs large enough that loops iterate meaningfully and the counter
   machinery is exercised at depth.  Everything here is a pure function
   of its seed so runs are reproducible. *)

(* A tiny deterministic generator (SplitMix-ish). *)
type rng = { mutable state : int }

let rng seed = { state = (if seed = 0 then 0x9E3779B9 else seed) }

let next (r : rng) : int =
  (* 62-bit SplitMix-style mixer (OCaml ints are 63-bit) *)
  r.state <- (r.state + 0x1E3779B97F4A7C15) land max_int;
  let z = r.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let below r n = if n <= 0 then 0 else next r mod n

let pick r xs = List.nth xs (below r (List.length xs))

(* Pseudo-text: words of lowercase letters, space/newline separated. *)
let text ~seed ~chars =
  let r = rng seed in
  let buf = Buffer.create chars in
  while Buffer.length buf < chars do
    let wl = 2 + below r 8 in
    for _ = 1 to wl do
      Buffer.add_char buf (Char.chr (Char.code 'a' + below r 26))
    done;
    Buffer.add_char buf (if below r 8 = 0 then '\n' else ' ')
  done;
  Buffer.sub buf 0 chars

(* Runs of repeated letters — compressible input for the compressors. *)
let runs ~seed ~chars =
  let r = rng seed in
  let buf = Buffer.create chars in
  while Buffer.length buf < chars do
    let c = Char.chr (Char.code 'a' + below r 26) in
    let k = 1 + below r 12 in
    for _ = 1 to k do Buffer.add_char buf c done
  done;
  Buffer.sub buf 0 chars

(* Arithmetic script for the perlbench interpreter: one expression per
   line over digits and + - * % with occasional parenthesized groups. *)
let perl_script ~seed ~lines =
  let r = rng seed in
  let buf = Buffer.create (lines * 12) in
  let vars = [ 'a'; 'b'; 'c'; 'd' ] in
  let atom () =
    (* numbers mostly; sometimes a variable reference *)
    if below r 4 = 0 then Buffer.add_char buf (pick r vars)
    else Buffer.add_string buf (string_of_int (1 + below r 9))
  in
  let op () = Buffer.add_char buf (pick r [ '+'; '-'; '*'; '%' ]) in
  for _ = 1 to lines do
    (* a third of the lines are assignments *)
    if below r 3 = 0 then begin
      Buffer.add_char buf (pick r vars);
      Buffer.add_char buf '='
    end;
    let terms = 2 + below r 4 in
    atom ();
    for _ = 2 to terms do
      op ();
      if below r 4 = 0 then begin
        Buffer.add_char buf '(';
        atom (); op (); atom ();
        Buffer.add_char buf ')'
      end
      else atom ()
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* "n m" header plus m random edges for the mcf relaxation. *)
let graph ~seed ~nodes ~edges =
  let r = rng seed in
  let buf = Buffer.create (edges * 8) in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" nodes edges);
  for _ = 1 to edges do
    let u = below r nodes in
    let v = below r nodes in
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d\n" u v (1 + below r 20))
  done;
  Buffer.contents buf

(* Two consecutive "video" frames differing in a few macroblocks. *)
let frames ~seed ~w ~h =
  let r = rng seed in
  let base =
    String.init (w * h) (fun _ -> Char.chr (Char.code 'a' + below r 26))
  in
  let cur = Bytes.of_string base in
  for _ = 1 to (w * h / 6) + 1 do
    Bytes.set cur (below r (w * h)) (Char.chr (Char.code 'a' + below r 26))
  done;
  base ^ "\n" ^ Bytes.to_string cur

(* Event tape for the omnetpp simulator: arrivals, departures, noise. *)
let events ~seed ~n =
  let r = rng seed in
  String.init n (fun _ -> pick r [ 'a'; 'a'; 'd'; 'n' ])

(* Gate program for the libquantum register: x<q> and shift gates. *)
let gates ~seed ~n =
  let r = rng seed in
  let buf = Buffer.create (n * 2) in
  for _ = 1 to n do
    if below r 3 = 0 then Buffer.add_string buf "s."
    else Buffer.add_string buf (Printf.sprintf "x%d" (below r 3))
  done;
  Buffer.contents buf

(* DNA-ish sequence. *)
let sequence ~seed ~n =
  let r = rng seed in
  String.init n (fun _ -> pick r [ 'G'; 'A'; 'T'; 'C' ])

(* Nested tag document for the xalancbmk transformer. *)
let xml ~seed ~nodes =
  let r = rng seed in
  let buf = Buffer.create (nodes * 16) in
  let rec emit depth budget =
    if !budget <= 0 then ()
    else begin
      decr budget;
      let tag = pick r [ "r"; "b"; "i"; "p"; "q" ] in
      let head =
        if below r 3 = 0 then Printf.sprintf "%s id=%d" tag (below r 100)
        else tag
      in
      Buffer.add_string buf ("<" ^ head ^ ">");
      Buffer.add_string buf (text ~seed:(next r) ~chars:(4 + below r 12));
      if depth < 4 && below r 2 = 0 then emit (depth + 1) budget;
      Buffer.add_string buf
        (text ~seed:(next r) ~chars:(2 + below r 6));
      Buffer.add_string buf ("</" ^ tag ^ ">")
    end
  in
  let budget = ref nodes in
  Buffer.add_string buf "<r>";
  while !budget > 0 do
    emit 1 budget
  done;
  Buffer.add_string buf "</r>";
  (* tags must not contain newlines for the line-free parser *)
  String.map (fun c -> if c = '\n' then ' ' else c) (Buffer.contents buf)

(* Grid map for astar: floor 'f' and walls 'W', left column kept clear so
   a path exists. *)
let grid ~seed ~w ~h =
  let r = rng seed in
  let buf = Buffer.create ((w + 1) * h) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let wall = x > 0 && y < h - 1 && below r 5 = 0 in
      Buffer.add_char buf
        (if wall then 'W' else pick r [ 'f'; 'g'; 'm'; 's' ])
    done;
    if y < h - 1 then Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* HTTP-ish request tape for the nginx analogue. *)
let requests ~seed ~n ~auth =
  let r = rng seed in
  List.init n (fun _ ->
      let verb = if below r 4 = 0 then "HEAD" else "GET" in
      match below r 6 with
      | 0 -> verb ^ " /index.html"
      | 1 -> verb ^ " /about.html"
      | 2 -> "GET /admin " ^ (if below r 2 = 0 then auth else "wrong")
      | 3 -> verb ^ " /"
      | 4 -> verb ^ " /style.css"
      | _ -> Printf.sprintf "%s /asset%d.js" verb (below r 5))
