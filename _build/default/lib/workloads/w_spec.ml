(* SPEC INT 2006 analogues (the first 12 rows of Table 1).

   Sources: the program's data files (mutated in the slave).  Sinks: local
   file outputs, as in the paper.  Each program also reads an auxiliary
   configuration whose mutation perturbs the syscall sequence without
   changing the outputs — the Table 2 'X' input. *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World
open Workload

let src = Engine.source

(* ------------------------------------------------------------------ *)
(* 400.perlbench: a tiny script interpreter (recursion + fptr dispatch) *)

let perlbench =
  make ~name:"400.perlbench" ~category:Spec ~paper_loc:"128K"
    ~description:
      "script interpreter: a 26-slot variable store, assignments, \
       operator dispatch through function pointers, recursive \
       expression evaluation"
    ~source:
      {| // operators, dispatched indirectly
         fn op_add(a, b) { return a + b; }
         fn op_sub(a, b) { return a - b; }
         fn op_mul(a, b) { return a * b; }
         fn op_mod(a, b) { if (b == 0) { return 0; } return a % b; }

         fn pick_op(c) {
           if (c == 43) { return @op_add; }
           if (c == 45) { return @op_sub; }
           if (c == 42) { return @op_mul; }
           return @op_mod;
         }

         // atom := number | variable a..z | '(' expr ')'
         fn eval_atom(s, posa, vars) {
           let i = posa[0];
           let c = char_at(s, i);
           if (c == 40) {                   // '('
             posa[0] = i + 1;
             let v = eval_expr(s, posa, vars);
             posa[0] = posa[0] + 1;         // skip ')'
             return v;
           }
           if (c >= 97 && c <= 122) {       // variable
             posa[0] = i + 1;
             return vars[c - 97];
           }
           let start = i;
           while (char_at(s, i) >= 48 && char_at(s, i) <= 57) { i = i + 1; }
           posa[0] = i;
           return atoi(substr(s, start, i - start));
         }

         // expr := atom (op atom)* left to right
         fn eval_expr(s, posa, vars) {
           let acc = eval_atom(s, posa, vars);
           while (posa[0] < strlen(s)) {
             let c = char_at(s, posa[0]);
             if (c == 41) { break; }        // ')'
             let f = pick_op(c);
             posa[0] = posa[0] + 1;
             let rhs = eval_atom(s, posa, vars);
             acc = f(acc, rhs);
           }
           return acc;
         }

         // line := [a-z] '=' expr | expr
         fn exec_line(line, vars, out) {
           let posa = mkarray(1, 0);
           let c0 = char_at(line, 0);
           if (c0 >= 97 && c0 <= 122 && char_at(line, 1) == 61) {
             posa[0] = 2;
             let v = eval_expr(line, posa, vars);
             vars[c0 - 97] = v;
             return 0;
           }
           let v = eval_expr(line, posa, vars);
           write(out, itoa(v) + ";");
           return v;
         }

         fn read_all(path, bufsize) {
           let fd = open(path);
           if (fd < 0) { return ""; }
           let data = "";
           let chunk = read(fd, bufsize);
           while (chunk != "") {
             data = data + chunk;
             chunk = read(fd, bufsize);
           }
           close(fd);
           return data;
         }

         fn main() {
           let bufsize = atoi(read_all("/etc/perl.conf", 8));
           if (bufsize < 1) { bufsize = 8; }
           let script = read_all("/data/script.pl", bufsize);
           let out = creat("/out/result");
           let vars = mkarray(26, 0);
           let line = "";
           let total = 0;
           let i = 0;
           while (i <= strlen(script)) {
             let c = char_at(script, i);
             if (c == 10 || c == -1) {
               if (strlen(line) > 0) {
                 total = total + exec_line(line, vars, out);
               }
               line = "";
             } else {
               line = line + chr(c);
             }
             i = i + 1;
           }
           write(out, "#total=" + itoa(total));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/perl.conf" "6"
        |> with_file "/data/script.pl" (Inputs.perl_script ~seed:11 ~lines:40))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/script.pl" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/perl.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 401.bzip2: run-length block compressor                              *)

let bzip2 =
  make ~name:"401.bzip2" ~category:Spec ~paper_loc:"5739"
    ~description:
      "block compressor: move-to-front transform then run-length \
       encoding, block by block (the bzip2 pipeline in miniature)"
    ~source:
      {| // move-to-front: emit each byte's position in a self-organizing
         // alphabet table, moving it to the front
         fn mtf(block, table) {
           let out = "";
           for (let i = 0; i < strlen(block); i = i + 1) {
             let c = char_at(block, i);
             let j = 0;
             while (j < len(table) && table[j] != c) { j = j + 1; }
             if (j >= len(table)) { j = len(table) - 1; }
             out = out + chr(65 + j);
             while (j > 0) { table[j] = table[j - 1]; j = j - 1; }
             table[0] = c;
           }
           return out;
         }

         fn rle(block) {
           let out = "";
           let i = 0;
           let n = strlen(block);
           while (i < n) {
             let c = char_at(block, i);
             let runlen = 1;
             while (i + runlen < n && char_at(block, i + runlen) == c && runlen < 9) {
               runlen = runlen + 1;
             }
             out = out + itoa(runlen) + chr(c);
             i = i + runlen;
           }
           return out;
         }

         fn main() {
           let cfd = open("/etc/bzip.conf");
           let blocksize = atoi(read(cfd, 4));
           close(cfd);
           if (blocksize < 2) { blocksize = 8; }
           let table = mkarray(26, 0);
           for (let t = 0; t < 26; t = t + 1) { table[t] = 97 + t; }
           let ifd = open("/data/input.raw");
           let ofd = creat("/out/input.bz");
           let nblocks = 0;
           let block = read(ifd, blocksize);
           let compressed = "";
           while (block != "") {
             compressed = compressed + rle(mtf(block, table));
             nblocks = nblocks + 1;
             block = read(ifd, blocksize);
           }
           write(ofd, compressed);
           write(ofd, "#blocks=" + itoa(nblocks));
           close(ifd);
           close(ofd);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/bzip.conf" "16"
        |> with_file "/data/input.raw" (Inputs.runs ~seed:12 ~chars:2000))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/input.raw" () ]
      (* no benign_sources: the block size changes the compressed block
         boundaries and the output block count — like the paper's numeric
         programs, every input mutation reaches the sink *)
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 403.gcc: a mini C preprocessor (#define / #if / #include) — also the *)
(* Fig. 7 case study                                                   *)

let cpp_source =
  {| fn read_all(path) {
       let fd = open(path);
       if (fd < 0) { return ""; }
       let data = "";
       let chunk = read(fd, 64);
       while (chunk != "") {
         data = data + chunk;
         chunk = read(fd, 64);
       }
       close(fd);
       return data;
     }

     // linear symbol table
     fn lookup(names, vals, count, name) {
       for (let i = 0; i < count; i = i + 1) {
         if (names[i] == name) { return vals[i]; }
       }
       return 0 - 1;
     }

     fn next_line(s, posa) {
       let i = posa[0];
       let line = "";
       while (i < strlen(s) && char_at(s, i) != 10) {
         line = line + chr(char_at(s, i));
         i = i + 1;
       }
       posa[0] = i + 1;
       return line;
     }

     fn first_word(s) {
       let sp = find(s, " ");
       if (sp < 0) { return s; }
       return substr(s, 0, sp);
     }

     fn rest_after(s, k) { return substr(s, k, strlen(s) - k); }

     fn process(text, out, names, vals, counta, depth) {
       let posa = mkarray(1, 0);
       let skipping = 0;
       let emitted = 0;
       while (posa[0] < strlen(text)) {
         let line = next_line(text, posa);
         if (starts_with(line, "#define ")) {
           if (skipping == 0) {
             let body = rest_after(line, 8);
             let sp = find(body, " ");
             let name = substr(body, 0, sp);
             let val = atoi(rest_after(body, sp + 1));
             names[counta[0]] = name;
             vals[counta[0]] = val;
             counta[0] = counta[0] + 1;
           }
         } else { if (starts_with(line, "#if ")) {
           let name = rest_after(line, 4);
           let v = lookup(names, vals, counta[0], name);
           if (v < 1) { skipping = 1; }
         } else { if (starts_with(line, "#else")) {
           skipping = 1 - skipping;
         } else { if (starts_with(line, "#endif")) {
           skipping = 0;
         } else { if (starts_with(line, "#include ")) {
           if (skipping == 0 && depth < 4) {
             let path = rest_after(line, 9);
             let inc = read_all(path);
             emitted = emitted + process(inc, out, names, vals, counta, depth + 1);
           }
         } else {
           if (skipping == 0 && strlen(line) > 0) {
             write(out, line + "\n");
             emitted = emitted + 1;
           }
         } } } } }
       }
       return emitted;
     }

     fn main() {
       // auxiliary pass count: stat the main input a configurable number
       // of times (cache warming), syscall-visible but output-neutral
       let warm = atoi(read_all("/etc/cpp.conf"));
       for (let w = 0; w < warm; w = w + 1) { let s = stat("/src/main.c"); }
       let names = mkarray(64, "");
       let vals = mkarray(64, 0);
       let counta = mkarray(1, 0);
       let config = read_all("/src/config.h");
       let out = creat("/out/main.i");
       let n1 = process(config, out, names, vals, counta, 0);
       let text = read_all("/src/main.c");
       let n2 = process(text, out, names, vals, counta, 0);
       write(out, "#lines=" + itoa(n1 + n2) + "\n");
       close(out);
     } |}

let cpp_world =
  World.(
    empty
    |> with_dir "/src" |> with_dir "/out" |> with_dir "/etc"
    |> with_file "/etc/cpp.conf" "2"
    |> with_file "/src/config.h" "#define NGX_HAVE_POLL 1\n#define NGX_DEBUG 0\n"
    |> with_file "/src/poll.h" "void poll_init();\nint poll_wait(int t);\n"
    |> with_file "/src/main.c"
      ("#if NGX_HAVE_POLL\n#include /src/poll.h\nint use_poll = 1;\n#else\nint use_poll = 0;\n#endif\nint main_loop() { return use_poll; }\n"
       ^ String.concat ""
           (List.init 40 (fun i ->
                Printf.sprintf "int field_%d = %d;\n" i (i * 7 mod 97)))))

let gcc_spec =
  make ~name:"403.gcc" ~category:Spec ~paper_loc:"385K"
    ~description:
      "mini C preprocessor: #define/#if/#include with recursive \
       inclusion — the Fig. 7 case study (NGX_HAVE_POLL leak through \
       control dependence)"
    ~source:cpp_source ~world:cpp_world
    ~leak_sources:[ src ~sys:"read" ~arg:"/src/config.h" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/cpp.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 429.mcf: Bellman-Ford relaxation over an edge list                  *)

let mcf =
  make ~name:"429.mcf" ~category:Spec ~paper_loc:"1379"
    ~description:"shortest-path relaxation over a parsed edge list"
    ~source:
      {| fn parse_int(s, posa) {
           let i = posa[0];
           while (i < strlen(s) && (char_at(s, i) < 48 || char_at(s, i) > 57)) {
             i = i + 1;
           }
           let start = i;
           while (i < strlen(s) && char_at(s, i) >= 48 && char_at(s, i) <= 57) {
             i = i + 1;
           }
           posa[0] = i;
           return atoi(substr(s, start, i - start));
         }

         fn main() {
           let passes_fd = open("/etc/mcf.conf");
           let extra_passes = atoi(read(passes_fd, 4));
           close(passes_fd);
           let fd = open("/data/graph");
           let text = read(fd, 4096);
           close(fd);
           let posa = mkarray(1, 0);
           let n = parse_int(text, posa);
           let m = parse_int(text, posa);
           let eu = mkarray(m, 0);
           let ev = mkarray(m, 0);
           let ew = mkarray(m, 0);
           for (let i = 0; i < m; i = i + 1) {
             if (posa[0] >= strlen(text)) { m = i; break; }
             eu[i] = parse_int(text, posa);
             ev[i] = parse_int(text, posa);
             ew[i] = parse_int(text, posa);
           }
           let dist = mkarray(n, 1000000);
           dist[0] = 0;
           // Bellman-Ford with early exit: iterate until no relaxation
           // changes anything (bounded by n for safety)
           let changed = 1;
           let iter = 0;
           while (changed == 1 && iter < n) {
             changed = 0;
             for (let e = 0; e < m; e = e + 1) {
               let cand = dist[eu[e]] + ew[e];
               if (cand < dist[ev[e]]) { dist[ev[e]] = cand; changed = 1; }
             }
             iter = iter + 1;
           }
           // extra verification passes: output-invariant once converged;
           // each re-stats the input (cache check)
           for (let p = 0; p < extra_passes; p = p + 1) {
             let sz = stat("/data/graph");
             for (let e = 0; e < m; e = e + 1) {
               let cand = dist[eu[e]] + ew[e];
               if (cand < dist[ev[e]]) { dist[ev[e]] = cand; }
             }
           }
           let out = creat("/out/dist");
           let total = 0;
           for (let v = 0; v < n; v = v + 1) {
             write(out, itoa(dist[v]) + ";");
             total = total + dist[v];
           }
           write(out, "#sum=" + itoa(total));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/mcf.conf" "2"
        |> with_file "/data/graph" (Inputs.graph ~seed:13 ~nodes:40 ~edges:120))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/graph" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/mcf.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 445.gobmk: recursive game-tree search over a board                  *)

let gobmk =
  make ~name:"445.gobmk" ~category:Spec ~paper_loc:"157K"
    ~description:
      "recursive two-player search over a parsed board, with a \
       liberty-counting positional evaluation"
    ~source:
      {| // orthogonal free neighbours of cell i on the 3x3 board
         fn liberties(cells, i) {
           let libs = 0;
           let x = i % 3;
           let y = i / 3;
           if (x > 0 && cells[i - 1] == 0) { libs = libs + 1; }
           if (x < 2 && cells[i + 1] == 0) { libs = libs + 1; }
           if (y > 0 && cells[i - 3] == 0) { libs = libs + 1; }
           if (y < 2 && cells[i + 3] == 0) { libs = libs + 1; }
           return libs;
         }

         fn board_score(cells, who) {
           let s = 0;
           for (let i = 0; i < len(cells); i = i + 1) {
             if (cells[i] == who) { s = s + 2 + liberties(cells, i); }
             if (cells[i] == 3 - who) { s = s - 2 - liberties(cells, i); }
           }
           return s;
         }

         fn search(cells, who, depth) {
           if (depth == 0) { return board_score(cells, 1); }
           let best = 0 - 1000;
           let worst = 1000;
           for (let i = 0; i < len(cells); i = i + 1) {
             if (cells[i] == 0) {
               cells[i] = who;
               let v = search(cells, 3 - who, depth - 1);
               cells[i] = 0;
               if (v > best) { best = v; }
               if (v < worst) { worst = v; }
             }
           }
           if (best == 0 - 1000) { return board_score(cells, 1); }
           if (who == 1) { return best; }
           return worst;
         }

         fn main() {
           let bfd = open("/etc/gobmk.conf");
           let book_warm = atoi(read(bfd, 4));
           close(bfd);
           for (let w = 0; w < book_warm; w = w + 1) {
             let ofd = open("/data/book");
             let b = read(ofd, 32);
             close(ofd);
           }
           let fd = open("/data/board");
           let text = read(fd, 256);
           close(fd);
           let cells = mkarray(9, 0);
           for (let i = 0; i < 9; i = i + 1) {
             let c = char_at(text, i);
             if (c == 120) { cells[i] = 1; }       // 'x'
             if (c == 111) { cells[i] = 2; }       // 'o'
           }
           let bestmove = 0 - 1;
           let bestval = 0 - 1000;
           for (let i = 0; i < 9; i = i + 1) {
             if (cells[i] == 0) {
               cells[i] = 1;
               let v = search(cells, 2, 2);
               cells[i] = 0;
               if (v > bestval) { bestval = v; bestmove = i; }
             }
           }
           let out = creat("/out/move");
           write(out, "move=" + itoa(bestmove) + " val=" + itoa(bestval)
                      + " mat=" + itoa(board_score(cells, 1)));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/gobmk.conf" "1"
        |> with_file "/data/book" "standard-fuseki-v2"
        |> with_file "/data/board" "x.o.x.o..")
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/board" () ]
    ~strategy:(Ldx_core.Mutation.Swap_substring ("x.o.x", "x.x.x"))
      (* flip one stone: same number of empty cells, so the slave's
         game tree has the same size but a different value *)
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/gobmk.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 456.hmmer: dynamic-programming sequence alignment                   *)

let hmmer =
  make ~name:"456.hmmer" ~category:Spec ~paper_loc:"20K"
    ~description:"edit-distance dynamic program over two sequences"
    ~source:
      {| fn min3(a, b, c) { return min(a, min(b, c)); }

         fn read_all(path, chunk) {
           let fd = open(path);
           let text = "";
           let piece = read(fd, chunk);
           while (piece != "") { text = text + piece; piece = read(fd, chunk); }
           close(fd);
           return text;
         }

         fn main() {
           let cfd = open("/etc/hmmer.conf");
           let chunk = atoi(read(cfd, 4));
           close(cfd);
           if (chunk < 1) { chunk = 16; }
           let a = read_all("/data/query.seq", 16);
           let b = read_all("/data/db.seq", chunk);
           let la = strlen(a);
           let lb = strlen(b);
           let dp = mkarray((la + 1) * (lb + 1), 0);
           for (let i = 0; i <= la; i = i + 1) { dp[i * (lb + 1)] = i; }
           for (let j = 0; j <= lb; j = j + 1) { dp[j] = j; }
           for (let i = 1; i <= la; i = i + 1) {
             for (let j = 1; j <= lb; j = j + 1) {
               let costv = 1;
               if (char_at(a, i - 1) == char_at(b, j - 1)) { costv = 0; }
               dp[i * (lb + 1) + j] =
                 min3(dp[(i - 1) * (lb + 1) + j] + 1,
                      dp[i * (lb + 1) + j - 1] + 1,
                      dp[(i - 1) * (lb + 1) + j - 1] + costv);
             }
           }
           let matches = 0;
           for (let k = 0; k < min(la, lb); k = k + 1) {
             if (char_at(a, k) == char_at(b, k)) { matches = matches + 1; }
           }
           let out = creat("/out/score");
           write(out, "dist=" + itoa(dp[la * (lb + 1) + lb])
                      + " id=" + itoa(matches));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/hmmer.conf" "12"
        |> with_file "/data/query.seq" (Inputs.sequence ~seed:14 ~n:48)
        |> with_file "/data/db.seq" (Inputs.sequence ~seed:15 ~n:56))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/query.seq" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/hmmer.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 458.sjeng: alpha-beta with evaluators behind function pointers      *)

let sjeng =
  make ~name:"458.sjeng" ~category:Spec ~paper_loc:"10K"
    ~description:
      "alpha-beta search with pruning; evaluation functions dispatched \
       through function pointers"
    ~source:
      {| fn eval_material(pieces) {
           let s = 0;
           for (let i = 0; i < len(pieces); i = i + 1) { s = s + pieces[i]; }
           return s;
         }
         fn eval_mobility(pieces) {
           let s = 0;
           for (let i = 0; i < len(pieces); i = i + 1) {
             if (pieces[i] > 0) { s = s + i; }
           }
           return s;
         }

         // negamax with alpha-beta pruning over sign-flip "moves"
         fn alphabeta(pieces, depth, alpha, beta, evalf) {
           if (depth == 0) { return evalf(pieces); }
           let moved = 0;
           for (let i = 0; i < len(pieces); i = i + 1) {
             if (pieces[i] != 0 && alpha < beta) {
               moved = 1;
               let saved = pieces[i];
               pieces[i] = 0 - saved;
               let v = 0 - alphabeta(pieces, depth - 1, 0 - beta, 0 - alpha, evalf);
               pieces[i] = saved;
               if (v > alpha) { alpha = v; }
             }
           }
           if (moved == 0) { return evalf(pieces); }
           return alpha;
         }

         fn main() {
           let wfd = open("/etc/sjeng.conf");
           let warm = atoi(read(wfd, 4));
           close(wfd);
           for (let w = 0; w < warm; w = w + 1) { let s = stat("/data/position"); }
           let fd = open("/data/position");
           let text = read(fd, 64);
           close(fd);
           let pieces = mkarray(6, 0);
           for (let i = 0; i < 6; i = i + 1) {
             pieces[i] = char_at(text, i) - 48;
           }
           let evalf = @eval_material;
           if (char_at(text, 6) == 109) { evalf = @eval_mobility; }  // 'm'
           let v = alphabeta(pieces, 4, 0 - 100000, 100000, evalf);
           let out = creat("/out/bestline");
           write(out, "score=" + itoa(v) + " mat=" + itoa(eval_material(pieces)));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/sjeng.conf" "1"
        |> with_file "/data/position" "314159m")
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/position" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/sjeng.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 462.libquantum: state-vector gate simulation                        *)

let libquantum =
  make ~name:"462.libquantum" ~category:Spec ~paper_loc:"2.6K"
    ~description:"toy quantum register: X/SWAP gate program over a state"
    ~source:
      {| fn main() {
           let cfd = open("/etc/lq.conf");
           let chunk = atoi(read(cfd, 4));
           close(cfd);
           if (chunk < 1) { chunk = 8; }
           let fd = open("/data/gates");
           let prog = "";
           let piece = read(fd, chunk);
           while (piece != "") { prog = prog + piece; piece = read(fd, chunk); }
           close(fd);
           let state = mkarray(8, 0);
           state[0] = 1;
           let i = 0;
           let applied = 0;
           while (i + 1 < strlen(prog)) {
             let g = char_at(prog, i);
             let q = char_at(prog, i + 1) - 48;
             if (g == 120 && q >= 0 && q < 3) {        // 'x' q: flip bit q
               let next = mkarray(8, 0);
               for (let s = 0; s < 8; s = s + 1) {
                 next[s ^ (1 << q)] = state[s];
               }
               state = next;
               applied = applied + 1;
             }
             if (g == 115) {                           // 's': shift amplitude
               let carry = state[7];
               for (let s = 7; s > 0; s = s - 1) { state[s] = state[s - 1]; }
               state[0] = carry;
               applied = applied + 1;
             }
             i = i + 2;
           }
           let out = creat("/out/state");
           for (let s = 0; s < 8; s = s + 1) { write(out, itoa(state[s])); }
           write(out, "#gates=" + itoa(applied));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/lq.conf" "4"
        |> with_file "/data/gates" (Inputs.gates ~seed:16 ~n:150))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/gates" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/lq.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 464.h264ref: macroblock encoder over frame pairs                    *)

let h264ref =
  make ~name:"464.h264ref" ~category:Spec ~paper_loc:"36K"
    ~description:
      "macroblock encoder with +-1 motion search over the previous frame"
    ~source:
      {| fn mb_cost(cur, prv, bx, by, dx, dy, w, h, bs) {
           let c = 0;
           for (let yy = 0; yy < bs; yy = yy + 1) {
             for (let xx = 0; xx < bs; xx = xx + 1) {
               let cx = bx * bs + xx;
               let cy = by * bs + yy;
               let px = cx + dx;
               let py = cy + dy;
               let ref = 0;
               if (px >= 0 && px < w && py >= 0 && py < h) {
                 ref = char_at(prv, py * w + px);
               }
               let d = char_at(cur, cy * w + cx) - ref;
               c = c + abs(d);
             }
           }
           return c;
         }

         fn main() {
           let cfd = open("/etc/h264.conf");
           let stats_passes = atoi(read(cfd, 4));
           close(cfd);
           let w = 16;
           let h = 8;
           // frame-at-a-time reads, as a real encoder ingests input
           let fd = open("/data/frames");
           let prv = read(fd, w * h);
           let sep = read(fd, 1);
           let cur = read(fd, w * h);
           close(fd);
           for (let p = 0; p < stats_passes; p = p + 1) {
             let sz = stat("/data/frames");
           }
           let out = creat("/out/encoded");
           let bits = 0;
           let bs = 4;
           for (let by = 0; by < h / bs; by = by + 1) {
             for (let bx = 0; bx < w / bs; bx = bx + 1) {
               // +-1 motion search around the co-located block
               let best = 1000000;
               let bestdx = 0;
               let bestdy = 0;
               for (let dy = 0 - 1; dy <= 1; dy = dy + 1) {
                 for (let dx = 0 - 1; dx <= 1; dx = dx + 1) {
                   let cost = mb_cost(cur, prv, bx, by, dx, dy, w, h, bs);
                   if (cost < best) { best = cost; bestdx = dx; bestdy = dy; }
                 }
               }
               if (best > 24) {
                 write(out, "I" + itoa(best) + ";");
                 bits = bits + best * 3;
               } else {
                 write(out, "P" + itoa(bestdx) + itoa(bestdy)
                            + ":" + itoa(best) + ";");
                 bits = bits + best + 4;
               }
             }
           }
           write(out, "#bits=" + itoa(bits));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/h264.conf" "2"
        |> with_file "/data/frames" (Inputs.frames ~seed:17 ~w:16 ~h:8))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/frames" ~nth:3 () ]
      (* nth=3: the current frame (mutating both frames equally would
         cancel in the residuals) *)
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/h264.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 471.omnetpp: event-queue simulation with handler dispatch           *)

let omnetpp =
  make ~name:"471.omnetpp" ~category:Spec ~paper_loc:"26K"
    ~description:
      "discrete-event simulation: a binary-heap future-event set, \
       handlers behind function pointers that schedule follow-up events"
    ~source:
      {| // future-event set: a binary min-heap on event time
         fn heap_push(times, kinds, sizea, t, kind) {
           let i = sizea[0];
           times[i] = t;
           kinds[i] = kind;
           sizea[0] = i + 1;
           while (i > 0 && times[(i - 1) / 2] > times[i]) {
             let p = (i - 1) / 2;
             let tt = times[p]; times[p] = times[i]; times[i] = tt;
             let tk = kinds[p]; kinds[p] = kinds[i]; kinds[i] = tk;
             i = p;
           }
           return 0;
         }

         fn heap_pop(times, kinds, sizea, outa) {
           let n = sizea[0];
           outa[0] = times[0];
           outa[1] = kinds[0];
           times[0] = times[n - 1];
           kinds[0] = kinds[n - 1];
           sizea[0] = n - 1;
           let i = 0;
           let moving = 1;
           while (moving == 1) {
             moving = 0;
             let l = 2 * i + 1;
             let rr = 2 * i + 2;
             let m = i;
             if (l < n - 1 && times[l] < times[m]) { m = l; }
             if (rr < n - 1 && times[rr] < times[m]) { m = rr; }
             if (m != i) {
               let tt = times[m]; times[m] = times[i]; times[i] = tt;
               let tk = kinds[m]; kinds[m] = kinds[i]; kinds[i] = tk;
               i = m;
               moving = 1;
             }
           }
           return 0;
         }

         // handlers: kind 1 = arrival (enqueue + schedule service end),
         //           kind 2 = departure (dequeue)
         fn on_arrive(st, t, times, kinds, sizea) {
           st[0] = st[0] + 1;                  // queue length
           let service = 2 + (st[0] % 3);
           let z = heap_push(times, kinds, sizea, t + service, 2);
           return 0;
         }
         fn on_depart(st, t, times, kinds, sizea) {
           if (st[0] > 0) { st[0] = st[0] - 1; }
           return 0;
         }

         fn main() {
           let cfd = open("/etc/omnet.conf");
           let replay = atoi(read(cfd, 4));
           close(cfd);
           for (let rr = 0; rr < replay; rr = rr + 1) {
             let rfd = open("/data/events");
             let x = read(rfd, 8);
             close(rfd);
           }
           let fd = open("/data/events");
           let evs = read(fd, 1024);
           close(fd);
           let cap = 2 * strlen(evs) + 8;
           let times = mkarray(cap, 0);
           let kinds = mkarray(cap, 0);
           let sizea = mkarray(1, 0);
           // seed arrivals: interarrival gap derived from the tape
           let t = 0;
           for (let i = 0; i < strlen(evs); i = i + 1) {
             let c = char_at(evs, i);
             if (c == 97) { t = t + 1; }       // 'a': burst
             else { t = t + 1 + (c % 3); }
             let z = heap_push(times, kinds, sizea, t, 1);
           }
           let st = mkarray(1, 0);
           let peak = 0;
           let clock = 0;
           let handled = 0;
           let out = creat("/out/trace");
           let outa = mkarray(2, 0);
           while (sizea[0] > 0) {
             let z = heap_pop(times, kinds, sizea, outa);
             clock = outa[0];
             let h = @on_depart;
             if (outa[1] == 1) { h = @on_arrive; }
             let zz = h(st, clock, times, kinds, sizea);
             handled = handled + 1;
             if (st[0] > peak) { peak = st[0]; }
             // periodic queue-length samples: the length moves only by
             // the +-1 the dispatched handler applies — control flow
             if (handled % 4 == 0) {
               write(out, "q" + itoa(st[0]) + ";");
             }
           }
           write(out, "#events=" + itoa(handled) + " peak=" + itoa(peak));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/omnet.conf" "1"
        |> with_file "/data/events" (Inputs.events ~seed:18 ~n:150))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/events" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/omnet.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 473.astar: greedy grid pathfinder                                   *)

let astar =
  make ~name:"473.astar" ~category:Spec ~paper_loc:"4.2K"
    ~description:
      "true A* search over a weighted grid: per-cell terrain costs, \
       open set with f = g + manhattan h, path reconstruction"
    ~source:
      {| fn manhattan(x, y, gx, gy) {
           return abs(gx - x) + abs(gy - y);
         }

         fn main() {
           let cfd = open("/etc/astar.conf");
           let warm = atoi(read(cfd, 4));
           close(cfd);
           for (let w = 0; w < warm; w = w + 1) { let s = stat("/data/map"); }
           let fd = open("/data/map");
           let map = read(fd, 2048);
           close(fd);
           let w = find(map, "\n");
           let rows = (strlen(map) + 1) / (w + 1);
           let n = w * rows;
           let gx = w - 1;
           let gy = rows - 1;
           // cell index helpers over the newline-separated grid
           let gscore = mkarray(n, 1000000);
           let fscore = mkarray(n, 1000000);
           let closed = mkarray(n, 0);
           let from = mkarray(n, 0 - 1);
           gscore[0] = 0;
           fscore[0] = manhattan(0, 0, gx, gy);
           let found = 0;
           let expanded = 0;
           let running = 1;
           while (running == 1) {
             // pick the open cell with the least f (linear scan)
             let cur = 0 - 1;
             let best = 1000000;
             for (let c = 0; c < n; c = c + 1) {
               if (closed[c] == 0 && gscore[c] < 1000000 && fscore[c] < best) {
                 best = fscore[c];
                 cur = c;
               }
             }
             if (cur < 0) { running = 0; }
             else {
               if (cur == gy * w + gx) { found = 1; running = 0; }
               else {
                 closed[cur] = 1;
                 expanded = expanded + 1;
                 let cx = cur % w;
                 let cy = cur / w;
                 for (let d = 0; d < 4; d = d + 1) {
                   let nx = cx;
                   let ny = cy;
                   if (d == 0) { nx = cx + 1; }
                   if (d == 1) { nx = cx - 1; }
                   if (d == 2) { ny = cy + 1; }
                   if (d == 3) { ny = cy - 1; }
                   if (nx >= 0 && nx < w && ny >= 0 && ny < rows) {
                     let cell = char_at(map, ny * (w + 1) + nx);
                     // uppercase cells are walls; lowercase terrain has a
                     // per-cell traversal cost derived from its byte
                     if (cell < 65 || cell > 90) {
                       let stepcost = 1 + (cell % 3);
                       let nc = ny * w + nx;
                       if (closed[nc] == 0 && gscore[cur] + stepcost < gscore[nc]) {
                         gscore[nc] = gscore[cur] + stepcost;
                         fscore[nc] = gscore[nc] + manhattan(nx, ny, gx, gy);
                         from[nc] = cur;
                       }
                     }
                   }
                 }
               }
             }
           }
           let out = creat("/out/path");
           if (found == 1) {
             // walk the parent links back to the start
             let hops = 0;
             let c = gy * w + gx;
             while (c > 0 && hops < n) {
               write(out, itoa(c % w) + "," + itoa(c / w) + ";");
               c = from[c];
               hops = hops + 1;
             }
             write(out, "#len=" + itoa(gscore[gy * w + gx]));
           } else {
             write(out, "#unreachable");
           }
           write(out, " expanded=" + itoa(expanded)
                      + " map=" + itoa(hash(map)));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/astar.conf" "1"
        |> with_file "/data/map" (Inputs.grid ~seed:19 ~w:24 ~h:12))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/map" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/astar.conf" () ]
    ~sinks:Engine.File_outputs ()

(* ------------------------------------------------------------------ *)
(* 483.xalancbmk: XML-ish transformer with rule dispatch               *)

let xalancbmk =
  make ~name:"483.xalancbmk" ~category:Spec ~paper_loc:"266K"
    ~description:
      "tag-tree transformer: parses <tag attr=value> elements and \
       applies per-tag rules through function pointers, recursively; \
       attributes are rewritten into the output"
    ~source:
      {| fn rule_upper(s) { return upper(s); }
         fn rule_lower(s) { return lower(s); }
         fn rule_copy(s) { return s; }

         fn rule_for(tag) {
           if (tag == "b") { return @rule_upper; }
           if (tag == "i") { return @rule_lower; }
           return @rule_copy;
         }

         // transform starting at posa[0]; stops at closing tag
         fn transform(xml, posa, out, depth, tag) {
           let emitted = 0;
           while (posa[0] < strlen(xml)) {
             let i = posa[0];
             let c = char_at(xml, i);
             if (c == 60) {                                 // '<'
               if (char_at(xml, i + 1) == 47) {             // "</"
                 let closerel = find(substr(xml, i, strlen(xml) - i), ">");
                 if (closerel < 0) { posa[0] = strlen(xml); return emitted; }
                 posa[0] = i + closerel + 1;
                 return emitted;
               }
               let gtrel = find(substr(xml, i, strlen(xml) - i), ">");
               if (gtrel < 0) { posa[0] = strlen(xml); return emitted; }
               let head = substr(xml, i + 1, gtrel - 1);
               // split "tag attr=value" into name and attribute
               let sp = find(head, " ");
               let child = head;
               let attr = "";
               if (sp >= 0) {
                 child = substr(head, 0, sp);
                 attr = substr(head, sp + 1, strlen(head) - sp - 1);
               }
               posa[0] = i + gtrel + 1;
               if (depth < 6) {
                 if (attr == "") { write(out, "<" + child + ">"); }
                 else { write(out, "<" + child + " data-" + attr + ">"); }
                 emitted = emitted + transform(xml, posa, out, depth + 1, child);
                 write(out, "</" + child + ">");
               }
             } else {
               let start = i;
               while (i < strlen(xml) && char_at(xml, i) != 60) { i = i + 1; }
               let text = substr(xml, start, i - start);
               posa[0] = i;
               // apply the rule of the ENCLOSING tag to its text
               let f = rule_for(tag);
               write(out, f(text));
               emitted = emitted + 1;
             }
           }
           return emitted;
         }

         fn main() {
           let cfd = open("/etc/xalan.conf");
           let warm = atoi(read(cfd, 4));
           close(cfd);
           for (let w = 0; w < warm; w = w + 1) { let s = stat("/data/doc.xml"); }
           let fd = open("/data/doc.xml");
           let xml = read(fd, 4096);
           close(fd);
           let out = creat("/out/doc.html");
           let posa = mkarray(1, 0);
           let n = transform(xml, posa, out, 0, "");
           write(out, "#nodes=" + itoa(n));
           close(out);
         } |}
    ~world:
      World.(
        empty
        |> with_dir "/data" |> with_dir "/out" |> with_dir "/etc"
        |> with_file "/etc/xalan.conf" "1"
        |> with_file "/data/doc.xml" (Inputs.xml ~seed:20 ~nodes:30))
    ~leak_sources:[ src ~sys:"read" ~arg:"/data/doc.xml" () ]
    ~benign_sources:[ src ~sys:"read" ~arg:"/etc/xalan.conf" () ]
    ~sinks:Engine.File_outputs ()

let all =
  [ perlbench; bzip2; gcc_spec; mcf; gobmk; hmmer; sjeng; libquantum;
    h264ref; omnetpp; astar; xalancbmk ]
