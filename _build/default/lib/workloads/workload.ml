(* Workload descriptors: one per paper benchmark row (Table 1).

   Each workload is a MiniC analogue of the paper's benchmark — it mirrors
   the structural features the evaluation depends on (loop/recursion/
   function-pointer density, syscall mix, where secrets flow) at reduced
   scale.  [leak_sources] is the input mutation that must produce a sink
   difference (Table 2's 'O'); [benign_sources], when constructible, is a
   mutation that perturbs execution without reaching the sinks (Table 2's
   'X' — absent for the numeric SPEC programs, as in the paper). *)

module Engine = Ldx_core.Engine
module World = Ldx_osim.World

type category = Spec | Leak_detection | Vulnerable | Concurrency

let category_to_string = function
  | Spec -> "SPEC-like"
  | Leak_detection -> "network/system"
  | Vulnerable -> "vulnerable"
  | Concurrency -> "concurrency"

type t = {
  name : string;                       (* the paper's benchmark name *)
  category : category;
  description : string;
  source : string;                     (* MiniC program text *)
  world : World.t;
  leak_sources : Engine.source_spec list;
  benign_sources : Engine.source_spec list option;
  sinks : Engine.sink_config;
  strategy : Ldx_core.Mutation.strategy;
  (* default off-by-one; a targeted Swap_substring models the paper's
     "mutate data fields, not magic values" for blob inputs *)
  safe_world : World.t option;
  (* a benign-input world on which the same mutation must NOT produce a
     causality report — the "no false warnings" check for the
     attack-detection programs *)
  paper_loc : string;                  (* LOC reported in Table 1 *)
  interactive : bool;                  (* excluded from Fig. 6 *)
  uses_threads : bool;
}

let make ~name ~category ~description ~source ~world ~leak_sources
    ?benign_sources ~sinks ?(strategy = Ldx_core.Mutation.Off_by_one)
    ?safe_world ~paper_loc ?(interactive = false) ?(uses_threads = false) () =
  { name; category; description; source; world; leak_sources;
    benign_sources; sinks; strategy; safe_world; paper_loc; interactive;
    uses_threads }

let leak_config ?strategy (w : t) : Engine.config =
  { Engine.default_config with
    Engine.sources = w.leak_sources;
    sinks = w.sinks;
    strategy = (match strategy with Some s -> s | None -> w.strategy) }

let benign_config (w : t) : Engine.config option =
  Option.map
    (fun sources ->
       { Engine.default_config with Engine.sources = sources; sinks = w.sinks })
    w.benign_sources

let no_mutation_config (w : t) : Engine.config =
  { Engine.default_config with Engine.sources = []; sinks = w.sinks }

(* Count the MiniC source lines (our LOC for Table 1). *)
let minic_loc (w : t) =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) w.source;
  !n + 1

let lower (w : t) = Ldx_cfg.Lower.lower_source w.source

let instrumented (w : t) =
  Ldx_instrument.Counter.instrument (lower w)
