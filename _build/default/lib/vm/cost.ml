(* Virtual cycle-cost model (Fig. 6 methodology).

   The absolute values are a model; the experiments only interpret ratios.
   See DESIGN.md "Cycle model". *)

let instr = 1              (* ordinary instruction *)
let cnt_instr = 1          (* counter-maintenance instruction *)
let barrier = 2            (* loop backedge barrier check *)
let syscall = 40           (* kernel crossing + service *)
let share_copy = 2         (* slave copying a master outcome *)
let sink_compare = 3       (* comparing sink arguments *)

(* Baseline engines' per-instruction monitoring cost: *)
let taint_shadow = 5       (* LIBDFT/TaintGrind-style shadow propagation *)
let index_monitor = 1000   (* DualEx execution indexing + IPC to monitor *)
