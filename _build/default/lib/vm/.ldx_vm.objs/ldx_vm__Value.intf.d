lib/vm/value.mli: Ldx_osim
