lib/vm/machine.mli: Hashtbl Ldx_cfg Ldx_osim Value
