lib/vm/eval.ml: Array Ast Buffer Char Hashtbl Ldx_lang List String Value
