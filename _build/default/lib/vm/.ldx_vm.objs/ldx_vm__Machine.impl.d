lib/vm/machine.ml: Array Cost Eval Hashtbl Ldx_cfg Ldx_osim List Value
