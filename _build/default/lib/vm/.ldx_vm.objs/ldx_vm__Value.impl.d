lib/vm/value.ml: Array Ldx_osim Printf String
