lib/vm/driver.mli: Ldx_cfg Ldx_osim Machine Value
