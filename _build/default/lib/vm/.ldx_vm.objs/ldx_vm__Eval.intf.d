lib/vm/eval.mli: Hashtbl Ldx_lang Value
