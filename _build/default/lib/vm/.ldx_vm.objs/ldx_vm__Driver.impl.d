lib/vm/driver.ml: Ldx_cfg Ldx_instrument Ldx_osim List Machine String Value
