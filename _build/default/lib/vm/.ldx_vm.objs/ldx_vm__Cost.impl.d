lib/vm/cost.ml:
