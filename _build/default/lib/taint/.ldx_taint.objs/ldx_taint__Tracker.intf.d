lib/taint/tracker.mli: Ldx_cfg Ldx_core Ldx_osim Shadow
