lib/taint/shadow.ml: Array Ldx_lang Ldx_osim Ldx_vm List Names
