lib/taint/shadow.mli: Ldx_lang Ldx_osim Ldx_vm
