lib/taint/tracker.ml: Array Ast Char Hashtbl Ldx_cfg Ldx_core Ldx_lang Ldx_osim Ldx_vm List Shadow String
