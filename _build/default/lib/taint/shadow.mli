(** Shadow values for the dynamic-tainting baselines (Table 3).

    A taint bitset rides on every value; propagation is data-dependence
    only — the limitation of LIBDFT/TaintGrind that the paper exploits.
    Scalar operators delegate to {!Ldx_vm.Eval} so both engines compute
    identical results. *)

type t = { base : base; taint : int }

and base =
  | Unit
  | Int of int
  | Str of string
  | Arr of t array
  | Fptr of string

val clean : base -> t
val with_taint : int -> base -> t
val truthy : t -> bool

val to_value : t -> Ldx_vm.Value.t
val of_value : taint:int -> Ldx_vm.Value.t -> t
val to_sval : t -> Ldx_osim.Sval.t
val of_sval : taint:int -> Ldx_osim.Sval.t -> t

(** TaintGrind models every library call; LibDFT drops taint across
    {!Ldx_lang.Names.libdft_unmodeled} (the paper's observed gap). *)
type model = Taintgrind | Libdft

val model_to_string : model -> string

val union_taint : t list -> int
val builtin_taint : model -> string -> t list -> int

(** @raise Ldx_vm.Value.Trap like the underlying evaluator. *)
val apply_builtin : model -> string -> t list -> t

val apply_binop : Ldx_lang.Ast.binop -> t -> t -> t
val apply_unop : Ldx_lang.Ast.unop -> t -> t
