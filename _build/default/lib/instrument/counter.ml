(* Counter instrumentation: Algorithms 1 and 3 of the paper.

   For every function we compute, per block b, [cnt_in b] = the maximum
   number of counter increments (syscalls, +1-per fresh-frame call, FCNT
   of direct calls) along any path entry -> b in the loop-collapsed CFG,
   and insert compensation code on edges so that at runtime the counter
   at b equals [cnt_in b] on EVERY path.  Loops get an iteration barrier
   and a counter reset on back edges, and a bump on exit edges, so that
   the counter is bounded inside a loop and post-loop values dominate
   in-loop values (Sec. 5).  Calls to recursive functions and indirect
   calls save/reset the counter (a fresh counter-stack segment) and
   contribute a fixed +1 (Sec. 6). *)

module Ir = Ldx_cfg.Ir
module Loops = Ldx_cfg.Loops
module Callgraph = Ldx_cfg.Callgraph
module IntSet = Set.Make (Int)
module StrMap = Map.Make (String)

type config = {
  instrument_inactive_loops : bool;
  (* Instrument loops with no syscall activity too (paper skips them:
     "we only need to instrument loops that include syscalls"). *)
  loop_reset : bool;
  (* Reset the counter on back edges (Algorithm 3).  Disabling this is
     ablation A2: counters grow with iteration counts and post-loop
     alignment breaks whenever trip counts differ. *)
}

let default_config = { instrument_inactive_loops = false; loop_reset = true }

type func_stats = {
  fname : string;
  fcnt : int;                       (* counter increment along any path *)
  max_cnt : int;                    (* max cnt value inside the function *)
  loops_total : int;
  loops_instrumented : int;
  added_instrs : int;               (* instrumentation instructions added *)
}

type stats = {
  per_func : func_stats list;
  recursive_funcs : int;
  indirect_sites : int;
  fresh_call_sites : int;           (* direct calls rewritten to fresh-frame *)
  syscall_sites : int;
  instrs_before : int;
  instrs_added : int;
  loops_instrumented : int;
  max_static_cnt : int;             (* max over funcs, main's includes callees *)
}

(* ------------------------------------------------------------------ *)
(* Per-block counter increment.                                        *)

let block_increment (fcnts : int StrMap.t) (b : Ir.block) =
  Array.fold_left
    (fun acc i ->
       match i with
       | Ir.Syscall _ -> acc + 1
       | Ir.Call { callee; fresh_frame; _ } ->
         if fresh_frame then acc + 1
         else acc + (try StrMap.find callee fcnts with Not_found -> 0)
       | Ir.Call_indirect _ -> acc + 1
       | Ir.Assign _ | Ir.Store _ | Ir.Cnt_add _ | Ir.Loop_enter _
       | Ir.Loop_back _ | Ir.Loop_exit _ -> acc)
    0 b.Ir.instrs

(* ------------------------------------------------------------------ *)
(* Edge classification.                                                *)

type edge_class = {
  src : int;
  dst : int;
  back_of : Loops.loop option;       (* t -> h back edge *)
  pops : Loops.loop list;            (* loops exited, innermost first *)
  enters : Loops.loop option;        (* loop entered (dst is its header) *)
}

let classify_edges (f : Ir.func) (ld : Loops.t) : edge_class list =
  let loop_body_size (l : Loops.loop) = IntSet.cardinal l.Loops.body in
  let edges = ref [] in
  Array.iter
    (fun (b : Ir.block) ->
       List.iter
         (fun s ->
            let back_of =
              match Hashtbl.find_opt ld.Loops.loop_of_header s with
              | Some l when List.mem b.Ir.bid l.Loops.back_tails -> Some l
              | _ -> None
            in
            let pops =
              if back_of <> None then []
              else
                List.filter
                  (fun (l : Loops.loop) ->
                     IntSet.mem b.Ir.bid l.Loops.body
                     && not (IntSet.mem s l.Loops.body))
                  ld.Loops.loops
                |> List.sort (fun a b ->
                    compare (loop_body_size a) (loop_body_size b))
            in
            let enters =
              if back_of <> None then None
              else
                match Hashtbl.find_opt ld.Loops.loop_of_header s with
                | Some l when not (IntSet.mem b.Ir.bid l.Loops.body) -> Some l
                | _ -> None
            in
            edges := { src = b.Ir.bid; dst = s; back_of; pops; enters } :: !edges)
         (Ir.successors b.Ir.term))
    f.blocks;
  List.rev !edges

(* ------------------------------------------------------------------ *)
(* Static counter values on the loop-collapsed (acyclic) graph.        *)

(* Returns cnt_in : int array.  The acyclic graph is: all edges except
   back edges, plus dummy edges t -> n for every popped loop's back-edge
   tails t, for each exit edge (x, n).  Exit edges themselves remain
   (they already play the role of a dummy edge x -> n). *)
let compute_cnt (f : Ir.func) (edges : edge_class list) (inc : int array) :
  int array =
  let n = Array.length f.blocks in
  let succs = Array.make n [] in
  let add_edge a b = succs.(a) <- b :: succs.(a) in
  List.iter
    (fun e ->
       match e.back_of with
       | Some _ -> ()                        (* drop back edges *)
       | None ->
         add_edge e.src e.dst;
         List.iter
           (fun (l : Loops.loop) ->
              List.iter (fun t -> add_edge t e.dst) l.Loops.back_tails)
           e.pops)
    edges;
  (* Kahn topological order *)
  let indeg = Array.make n 0 in
  Array.iteri (fun _ ss -> List.iter (fun s -> indeg.(s) <- indeg.(s) + 1) ss) succs;
  let queue = Queue.create () in
  for b = 0 to n - 1 do
    if indeg.(b) = 0 then Queue.add b queue
  done;
  let cnt_in = Array.make n 0 in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    incr seen;
    let out = cnt_in.(b) + inc.(b) in
    List.iter
      (fun s ->
         if out > cnt_in.(s) then cnt_in.(s) <- out;
         indeg.(s) <- indeg.(s) - 1;
         if indeg.(s) = 0 then Queue.add s queue)
      succs.(b)
  done;
  if !seen <> n then
    failwith
      (Printf.sprintf
         "Counter.compute_cnt: irreducible CFG in %s (cycle without back edge)"
         f.Ir.fname);
  cnt_in

(* ------------------------------------------------------------------ *)
(* Rewriting: attach instrumentation instruction lists to edges, then   *)
(* materialize them (append to src, prepend to dst, or split).          *)

type patch = {
  e : edge_class;
  code : Ir.instr list;
}

let out_degree (f : Ir.func) b = List.length (Ir.successors f.blocks.(b).Ir.term)

let materialize (f : Ir.func) (patches : patch list) : Ir.func * int =
  let preds = Ir.predecessors f in
  let in_degree b = List.length preds.(b) in
  let added = ref 0 in
  let appends = Hashtbl.create 8 in    (* bid -> instr list to append *)
  let prepends = Hashtbl.create 8 in   (* bid -> instr list to prepend *)
  let splits = ref [] in               (* (src, dst, code) needing a new block *)
  List.iter
    (fun p ->
       if p.code = [] then ()
       else begin
         added := !added + List.length p.code;
         if out_degree f p.e.src = 1 then
           Hashtbl.replace appends p.e.src
             ((try Hashtbl.find appends p.e.src with Not_found -> []) @ p.code)
         else if in_degree p.e.dst = 1 then
           Hashtbl.replace prepends p.e.dst
             ((try Hashtbl.find prepends p.e.dst with Not_found -> []) @ p.code)
         else splits := (p.e.src, p.e.dst, p.code) :: !splits
       end)
    patches;
  let n = Array.length f.blocks in
  let new_blocks = ref [] in
  let next_bid = ref n in
  let retarget src term =
    (* replace edge src->dst with src->fresh for each split on src *)
    let for_dst dst =
      match
        List.find_opt (fun (s, d, _) -> s = src && d = dst) !splits
      with
      | None -> dst
      | Some (_, _, code) ->
        let bid = !next_bid in
        incr next_bid;
        new_blocks :=
          { Ir.bid; instrs = Array.of_list code; term = Ir.Jump dst }
          :: !new_blocks;
        bid
    in
    match term with
    | Ir.Jump l -> Ir.Jump (for_dst l)
    | Ir.Branch (c, t, e) ->
      (* NB: if t = e both go to the same dst; a single split block works *)
      let t' = for_dst t in
      let e' = if e = t then t' else for_dst e in
      Ir.Branch (c, t', e')
    | Ir.Ret _ as r -> r
  in
  let rewritten =
    Array.map
      (fun (b : Ir.block) ->
         let pre = try Hashtbl.find prepends b.Ir.bid with Not_found -> [] in
         let post = try Hashtbl.find appends b.Ir.bid with Not_found -> [] in
         let instrs =
           if pre = [] && post = [] then b.Ir.instrs
           else
             Array.concat
               [ Array.of_list pre; b.Ir.instrs; Array.of_list post ]
         in
         { b with Ir.instrs; term = retarget b.Ir.bid b.Ir.term })
      f.blocks
  in
  let blocks =
    Array.append rewritten (Array.of_list (List.rev !new_blocks))
  in
  ({ f with Ir.blocks }, !added)

(* ------------------------------------------------------------------ *)
(* Per-function instrumentation.                                       *)

let instrument_func (config : config) (fcnts : int StrMap.t)
    (next_loop_id : int ref) (f : Ir.func) : Ir.func * func_stats =
  let ld = Loops.detect f in
  if not (Loops.is_reducible f ld) then
    failwith ("Counter.instrument_func: irreducible CFG in " ^ f.Ir.fname);
  let inc = Array.map (block_increment fcnts) f.blocks in
  let edges = classify_edges f ld in
  let cnt_in = compute_cnt f edges inc in
  let cnt_out b = cnt_in.(b) + inc.(b) in
  (* A loop is active if some block of its body increments the counter. *)
  let loop_active (l : Loops.loop) =
    config.instrument_inactive_loops
    || IntSet.exists (fun b -> inc.(b) > 0) l.Loops.body
  in
  let loop_ids = Hashtbl.create 8 in
  let loop_id (l : Loops.loop) =
    match Hashtbl.find_opt loop_ids l.Loops.header with
    | Some id -> id
    | None ->
      let id = !next_loop_id in
      incr next_loop_id;
      Hashtbl.replace loop_ids l.Loops.header id;
      id
  in
  let patches =
    List.map
      (fun e ->
         let delta = cnt_in.(e.dst) - cnt_out e.src in
         let code =
           match e.back_of with
           | Some l ->
             if loop_active l then
               let dec =
                 if config.loop_reset then cnt_out e.src - cnt_in.(e.dst)
                 else 0
               in
               [ Ir.Loop_back { loop = loop_id l; dec } ]
             else []
           | None ->
             let active_pops = List.filter loop_active e.pops in
             let exits =
               if active_pops = [] then
                 if delta > 0 then [ Ir.Cnt_add delta ] else []
               else
                 [ Ir.Loop_exit
                     { pops = List.map loop_id active_pops;
                       bump = (if config.loop_reset then max delta 0 else 0) } ]
             in
             let enter =
               match e.enters with
               | Some l when loop_active l -> [ Ir.Loop_enter { loop = loop_id l } ]
               | _ -> []
             in
             (* If the loop reset is disabled (ablation), exit bumps are 0
                and plain compensation still applies. *)
             let extra =
               if (not config.loop_reset) && delta > 0 && active_pops <> [] then
                 [ Ir.Cnt_add delta ]
               else []
             in
             exits @ extra @ enter
         in
         { e; code })
      edges
  in
  let f', added = materialize f patches in
  let loops_instrumented = Hashtbl.length loop_ids in
  let max_cnt =
    Array.fold_left max 0 (Array.mapi (fun b _ -> cnt_out b) f.blocks)
  in
  let fcnt =
    (* cnt at the unique return block's end; if no block returns (infinite
       loop), fall back to the maximum. *)
    let best = ref (-1) in
    Array.iter
      (fun (b : Ir.block) ->
         match b.Ir.term with
         | Ir.Ret _ -> best := max !best (cnt_out b.Ir.bid)
         | Ir.Jump _ | Ir.Branch _ -> ())
      f.blocks;
    if !best >= 0 then !best else max_cnt
  in
  ( f',
    { fname = f.Ir.fname; fcnt; max_cnt;
      loops_total = List.length ld.Loops.loops;
      loops_instrumented; added_instrs = added } )

(* ------------------------------------------------------------------ *)
(* Whole-program instrumentation.                                      *)

(* Pre-pass: mark direct calls to recursive functions as fresh-frame. *)
let mark_fresh_frames (cg : Callgraph.t) (p : Ir.program) : Ir.program * int =
  let count = ref 0 in
  let rewrite_instr i =
    match i with
    | Ir.Call ({ callee; fresh_frame = false; _ } as c)
      when Callgraph.is_recursive cg callee ->
      incr count;
      Ir.Call { c with fresh_frame = true }
    | _ -> i
  in
  let funcs =
    Array.map
      (fun (f : Ir.func) ->
         let blocks =
           Array.map
             (fun (b : Ir.block) ->
                { b with Ir.instrs = Array.map rewrite_instr b.Ir.instrs })
             f.blocks
         in
         { f with Ir.blocks })
      p.funcs
  in
  ({ p with Ir.funcs }, !count)

let count_indirect_sites p =
  Ir.count_instrs_if (function Ir.Call_indirect _ -> true | _ -> false) p

let instrument ?(config = default_config) (p : Ir.program) : Ir.program * stats
  =
  let cg = Callgraph.compute p in
  let p, fresh_call_sites = mark_fresh_frames cg p in
  let instrs_before = Ir.total_instrs p in
  let next_loop_id = ref 0 in
  let fcnts = ref StrMap.empty in
  let results = Hashtbl.create 16 in
  (* callees-before-callers order so FCNT of callees is available *)
  List.iter
    (fun name ->
       match Ir.find_func p name with
       | None -> ()
       | Some f ->
         let f', fs = instrument_func config !fcnts next_loop_id f in
         fcnts := StrMap.add name fs.fcnt !fcnts;
         Hashtbl.replace results name (f', fs))
    cg.Callgraph.order;
  let funcs =
    Array.map
      (fun (f : Ir.func) ->
         match Hashtbl.find_opt results f.Ir.fname with
         | Some (f', _) -> f'
         | None ->
           (* unreachable from the call graph roots: instrument standalone *)
           fst (instrument_func config !fcnts next_loop_id f))
      p.funcs
  in
  let per_func =
    Array.to_list p.funcs
    |> List.filter_map (fun (f : Ir.func) ->
        Option.map snd (Hashtbl.find_opt results f.Ir.fname))
  in
  let stats =
    { per_func;
      recursive_funcs =
        Array.to_list p.funcs
        |> List.filter (fun (f : Ir.func) ->
            Callgraph.is_recursive cg f.Ir.fname)
        |> List.length;
      indirect_sites = count_indirect_sites p;
      fresh_call_sites;
      syscall_sites = Ir.total_syscall_sites p;
      instrs_before;
      instrs_added = List.fold_left (fun a (fs : func_stats) -> a + fs.added_instrs) 0 per_func;
      loops_instrumented =
        List.fold_left (fun a (fs : func_stats) -> a + fs.loops_instrumented) 0 per_func;
      max_static_cnt = List.fold_left (fun a (fs : func_stats) -> max a fs.max_cnt) 0 per_func;
    }
  in
  ({ Ir.funcs; n_sites = p.Ir.n_sites; n_loops = !next_loop_id }, stats)

(* Static counter table of a single function (exposed for tests): for the
   given function, returns [(bid, cnt_in, cnt_out)] computed with the
   given callee FCNT table. *)
let static_counters (fcnts : (string * int) list) (f : Ir.func) :
  (int * int * int) list =
  let fcnts =
    List.fold_left (fun m (k, v) -> StrMap.add k v m) StrMap.empty fcnts
  in
  let ld = Loops.detect f in
  let inc = Array.map (block_increment fcnts) f.blocks in
  let edges = classify_edges f ld in
  let cnt_in = compute_cnt f edges inc in
  Array.to_list
    (Array.mapi (fun b _ -> (b, cnt_in.(b), cnt_in.(b) + inc.(b))) f.blocks)
