(** Counter instrumentation: Algorithms 1 and 3 of the paper.

    For every function, computes per block [b] the maximum number of
    counter increments (syscalls, fresh-frame calls, callee FCNTs) along
    any entry-to-[b] path of the loop-collapsed CFG, and inserts edge
    compensation so the runtime counter at [b] equals that value on
    EVERY path.  Loops get an iteration barrier and counter reset on back
    edges and a bump on exit edges (so post-loop counters dominate
    in-loop ones); calls to recursive functions and indirect calls
    save/reset the counter (a fresh counter-stack segment) and contribute
    a fixed +1. *)

type config = {
  instrument_inactive_loops : bool;
      (** also instrument loops with no syscall activity (the paper skips
          them: "we only need to instrument loops that include syscalls") *)
  loop_reset : bool;
      (** reset the counter on back edges (Algorithm 3); disabling this
          is ablation A2 — counters grow with the iteration count and
          post-loop alignment breaks whenever trip counts differ *)
}

val default_config : config

type func_stats = {
  fname : string;
  fcnt : int;            (** counter increment along any path (FCNT) *)
  max_cnt : int;         (** max static counter value in the function *)
  loops_total : int;
  loops_instrumented : int;
  added_instrs : int;
}

type stats = {
  per_func : func_stats list;
  recursive_funcs : int;
  indirect_sites : int;
  fresh_call_sites : int;  (** direct calls rewritten to fresh-frame *)
  syscall_sites : int;
  instrs_before : int;
  instrs_added : int;
  loops_instrumented : int;
  max_static_cnt : int;
}

(** Instrument a whole program (callees before callers, per the call
    graph).
    @raise Failure on irreducible CFGs (impossible from {!Ldx_cfg.Lower}). *)
val instrument :
  ?config:config -> Ldx_cfg.Ir.program -> Ldx_cfg.Ir.program * stats

(** Static counter table of one function given callee FCNTs:
    [(bid, cnt_in, cnt_out)] rows.  Exposed for tests. *)
val static_counters :
  (string * int) list -> Ldx_cfg.Ir.func -> (int * int * int) list
