lib/instrument/counter.mli: Ldx_cfg
