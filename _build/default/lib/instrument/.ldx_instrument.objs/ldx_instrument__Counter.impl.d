lib/instrument/counter.ml: Array Hashtbl Int Ldx_cfg List Map Option Printf Queue Set String
