(** Fig. 3 / Fig. 5-style side-by-side syscall trace.

    Renders the slave's alignment action log as two columns
    (master | slave) with the position and the wrapper's decision —
    [copied]/[sink==] rows are aligned, [master-only]/[slave-only] are
    the tolerated syscall differences, [path-diff] is the paper's
    case 2. *)

val render : Ldx_core.Engine.trace_entry list -> string

(** Dual-execute with tracing forced on and render the log. *)
val side_by_side :
  ?config:Ldx_core.Engine.config ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> string
