(* Fig. 3 / Fig. 5-style side-by-side syscall trace.

   Renders the slave's alignment action log as two columns (master |
   slave) with the position and the action taken by the LDX wrapper:
   shaded "copied"/"sink==" rows are aligned; "master-only"/"slave-only"
   rows are the tolerated syscall differences; "path-diff" marks the
   paper's case 2. *)

module Engine = Ldx_core.Engine
module Sval = Ldx_osim.Sval

let cell = function
  | None -> ""
  | Some (sys, args) ->
    Printf.sprintf "%s(%s)" sys
      (String.concat ", "
         (List.map
            (fun a ->
               let s = Sval.to_string a in
               if String.length s > 24 then String.sub s 0 21 ^ "..." else s)
            args))

let render (trace : Engine.trace_entry list) : string =
  let buf = Buffer.create 1024 in
  let w1 = ref 8 and w2 = ref 8 and wp = ref 3 in
  List.iter
    (fun (t : Engine.trace_entry) ->
       w1 := max !w1 (String.length (cell t.Engine.t_master));
       w2 := max !w2 (String.length (cell t.Engine.t_slave));
       wp := max !wp (String.length t.Engine.t_pos))
    trace;
  let line pos m s act =
    Buffer.add_string buf
      (Printf.sprintf "%-*s  %-*s | %-*s  [%s]\n" !wp pos !w1 m !w2 s act)
  in
  line "pos" "master" "slave" "action";
  line (String.make !wp '-') (String.make !w1 '-') (String.make !w2 '-') "--";
  List.iter
    (fun (t : Engine.trace_entry) ->
       line t.Engine.t_pos (cell t.Engine.t_master) (cell t.Engine.t_slave)
         (Engine.trace_action_to_string t.Engine.t_action))
    trace;
  Buffer.contents buf

(* Convenience: dual-execute with tracing on and render. *)
let side_by_side ?(config = Engine.default_config) prog world : string =
  let r = Engine.run ~config:{ config with Engine.record_trace = true } prog world in
  render r.Engine.trace
