lib/report/trace_view.ml: Buffer Ldx_core Ldx_osim List Printf String
