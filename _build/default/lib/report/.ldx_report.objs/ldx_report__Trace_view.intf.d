lib/report/trace_view.mli: Ldx_cfg Ldx_core Ldx_osim
