lib/report/experiments.ml: Ldx_cfg Ldx_core Ldx_instrument Ldx_taint Ldx_vm Ldx_workloads List Printf String Table
