lib/report/table.mli:
