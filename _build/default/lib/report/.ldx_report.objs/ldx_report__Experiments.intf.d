lib/report/experiments.mli: Ldx_core Ldx_taint Ldx_workloads Table
