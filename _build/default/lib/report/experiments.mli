(** The paper's evaluation, regenerated (Sec. 8).

    One function per table/figure; the artifact index lives in DESIGN.md
    and the paper-vs-measured commentary in EXPERIMENTS.md. *)

(** Table 1: benchmarks and instrumentation statistics. *)
val table1 : unit -> Table.t

type fig6_row = {
  f6_name : string;
  f6_native : int;       (** uninstrumented single-execution cycles *)
  f6_same : float;       (** overhead fraction, identical inputs *)
  f6_mutated : float;    (** overhead fraction, mutated inputs *)
}

val fig6_data : unit -> fig6_row list

(** Fig. 6: normalized dual-execution overhead with geo/arith means. *)
val fig6 : unit -> Table.t

(** Table 2: leak vs benign mutations, LDX vs TightLip. *)
val table2 : unit -> Table.t

(** One Table 3 measurement: (workload, TaintGrind, LibDFT, LDX). *)
val table3_row :
  Ldx_workloads.Workload.t ->
  Ldx_workloads.Workload.t * Ldx_taint.Tracker.result
  * Ldx_taint.Tracker.result * Ldx_core.Engine.result

(** Table 3: tainted sinks — LibDFT vs TaintGrind vs LDX. *)
val table3 : unit -> Table.t

(** Table 4: concurrency set, [runs] dual executions with perturbed
    schedules; min/max/stddev of diffs and tainted sinks. *)
val table4 : ?runs:int -> unit -> Table.t

(** The Fig. 7 / 403.gcc case study (NGX_HAVE_POLL control-dep leak). *)
val case_gcc : unit -> string

(** The Firefox/ShowIP case study. *)
val case_firefox : unit -> string

(** "No false warnings": attack programs on benign inputs stay silent. *)
val fp_check : unit -> Table.t

(** Mutation-strategy comparison (Sec. 8.3 / TR). *)
val mutation_study : unit -> Table.t

(** Ablation A1: LDX counter vs DualEx indexing vs TightLip FIFO. *)
val ablation_alignment : unit -> Table.t

(** Ablation A2: loop backedge reset on/off (Algorithm 3). *)
val ablation_loops : unit -> Table.t

(** Every experiment, rendered and concatenated. *)
val all : ?runs:int -> unit -> string
