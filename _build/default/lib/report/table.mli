(** Plain-text (markdown-style) table rendering and the statistics used
    by the experiment reports. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  rows : string list list;
  notes : string list;
}

val make :
  title:string -> headers:string list -> ?aligns:align list ->
  ?notes:string list -> string list list -> t

val render : t -> string

(** [pct 0.0608 = "6.08%"]. *)
val pct : ?digits:int -> float -> string

val f2 : float -> string

val mean : float list -> float
val geomean : float list -> float

(** Sample standard deviation; 0 for fewer than two samples. *)
val stddev : float list -> float

val min_max : int list -> int * int
