(* The paper's evaluation, regenerated (Sec. 8).

   One function per table/figure; each returns a rendered report.  The
   mapping to paper artifacts is indexed in DESIGN.md; paper-vs-measured
   commentary lives in EXPERIMENTS.md. *)

module Engine = Ldx_core.Engine
module Mutation = Ldx_core.Mutation
module Tightlip = Ldx_core.Tightlip
module Dualex = Ldx_core.Dualex_index
module Tracker = Ldx_taint.Tracker
module Shadow = Ldx_taint.Shadow
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry
module Counter = Ldx_instrument.Counter
module Ir = Ldx_cfg.Ir
module Driver = Ldx_vm.Driver

let dual ?(config_of = fun w -> Workload.leak_config w) (w : Workload.t) =
  let prog, _ = Workload.instrumented w in
  Engine.run ~config:(config_of w) prog w.Workload.world

let native_cycles (w : Workload.t) =
  (Driver.run (Workload.lower w) w.Workload.world).Driver.cycles

(* ------------------------------------------------------------------ *)
(* Table 1: benchmarks and instrumentation.                            *)

let static_sink_sites (w : Workload.t) (prog : Ir.program) =
  let pred = Engine.sink_pred w.Workload.sinks in
  Ir.count_instrs_if
    (function Ir.Syscall { sys; site; _ } -> pred sys site [] | _ -> false)
    prog

let table1 () =
  let rows =
    List.map
      (fun (w : Workload.t) ->
         let plain = Workload.lower w in
         let prog, stats = Workload.instrumented w in
         let r = dual w in
         [ w.Workload.name;
           Workload.category_to_string w.Workload.category;
           string_of_int (Workload.minic_loc w);
           w.Workload.paper_loc;
           Printf.sprintf "%d (%s)" stats.Counter.instrs_added
             (Table.pct
                (float_of_int stats.Counter.instrs_added
                 /. float_of_int (max 1 stats.Counter.instrs_before)));
           string_of_int stats.Counter.loops_instrumented;
           string_of_int stats.Counter.recursive_funcs;
           string_of_int stats.Counter.indirect_sites;
           string_of_int (static_sink_sites w prog);
           string_of_int (Ir.total_syscall_sites plain);
           string_of_int stats.Counter.max_static_cnt;
           Printf.sprintf "%.1f/%d" r.Engine.dyn_cnt_avg r.Engine.dyn_cnt_max;
           string_of_int r.Engine.max_seg_depth;
           string_of_int r.Engine.mutated_inputs ])
      Registry.all
  in
  Table.make ~title:"Table 1: Benchmarks and Instrumentation"
    ~headers:
      [ "Program"; "Set"; "LOC"; "Paper LOC"; "Instr. added"; "Loops";
        "Recur."; "FPTR"; "Sinks"; "Syscalls"; "Max Cnt";
        "Dyn Cnt avg/max"; "Stack"; "Mutated" ]
    ~aligns:
      [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right; Table.Right; Table.Right; Table.Right ]
    ~notes:
      [ "LOC is MiniC lines; Paper LOC is the original benchmark's size.";
        "Instr. added = counter-maintenance instructions inserted \
         (percentage of pre-instrumentation instructions).";
        "Dyn Cnt and Stack are measured during the leak-configuration \
         dual execution." ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 6: normalized overhead (identical inputs / mutated inputs).    *)

type fig6_row = {
  f6_name : string;
  f6_native : int;
  f6_same : float;
  f6_mutated : float;
}

let fig6_data () =
  List.map
    (fun (w : Workload.t) ->
       let native = native_cycles w in
       let r_same = dual ~config_of:Workload.no_mutation_config w in
       let r_mut = dual w in
       let ov r =
         float_of_int (r.Engine.wall_cycles - native) /. float_of_int native
       in
       { f6_name = w.Workload.name;
         f6_native = native;
         f6_same = ov r_same;
         f6_mutated = ov r_mut })
    Registry.performance_set

let fig6 () =
  let data = fig6_data () in
  let rows =
    List.map
      (fun d ->
         [ d.f6_name; string_of_int d.f6_native; Table.pct d.f6_same;
           Table.pct d.f6_mutated ])
      data
  in
  let same = List.map (fun d -> d.f6_same) data in
  let muts = List.map (fun d -> d.f6_mutated) data in
  let footer =
    [ [ "geo-mean"; ""; Table.pct (Table.geomean (List.map (fun x -> 1.0 +. x) same) -. 1.0);
        Table.pct (Table.geomean (List.map (fun x -> 1.0 +. x) muts) -. 1.0) ];
      [ "arith-mean"; ""; Table.pct (Table.mean same); Table.pct (Table.mean muts) ] ]
  in
  Table.make ~title:"Fig. 6: Normalized overhead of LDX (virtual cycles)"
    ~headers:[ "Program"; "Native cycles"; "Same inputs"; "Mutated inputs" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
    ~notes:
      [ "Baseline: uninstrumented single execution.  LDX wall clock = \
         max(master, slave) virtual cycles (two CPUs; outcome copies \
         are ordered by the producing clock).";
        "Paper reference: geo-means 4.45%/4.7%, arith-means 5.7%/6.08%." ]
    (rows @ footer)

(* ------------------------------------------------------------------ *)
(* Table 2: effectiveness of dual execution (vs TightLip).             *)

let tightlip_verdict (w : Workload.t) config =
  let prog, _ = Workload.instrumented w in
  let r = Tightlip.run ~config prog w.Workload.world in
  if r.Tightlip.leak_reported then "O" else "X"

let table2 () =
  let interesting =
    List.filter
      (fun (w : Workload.t) ->
         w.Workload.category = Workload.Leak_detection
         || w.Workload.category = Workload.Spec)
      Registry.all
  in
  let rows =
    List.map
      (fun (w : Workload.t) ->
         let r_leak = dual w in
         let ldx1 = if r_leak.Engine.leak then "O" else "X" in
         let ldx2, tl2 =
           match Workload.benign_config w with
           | None -> ("-", "-")
           | Some config ->
             let prog, _ = Workload.instrumented w in
             let r = Engine.run ~config prog w.Workload.world in
             ( (if r.Engine.leak then "O" else "X"),
               tightlip_verdict w config )
         in
         let tl1 = tightlip_verdict w (Workload.leak_config w) in
         [ w.Workload.name;
           Printf.sprintf "%s / %s" ldx1 ldx2;
           Printf.sprintf "%s / %s" tl1 tl2;
           Printf.sprintf "%d (%s)" r_leak.Engine.syscall_diffs
             (Table.pct
                (float_of_int r_leak.Engine.syscall_diffs
                 /. float_of_int (max 1 r_leak.Engine.total_syscalls))) ])
      interesting
  in
  Table.make
    ~title:"Table 2: Dual-execution effectiveness (LDX vs TightLip)"
    ~headers:
      [ "Program"; "LDX: leak-mut / benign-mut"; "TightLip: leak / benign";
        "Syscall diffs (leak run)" ]
    ~notes:
      [ "O = leakage reported, X = no warning, - = no benign mutation \
         constructible (numeric programs: every mutation reaches the sink).";
        "LDX distinguishes the two mutations; TightLip flags any syscall \
         difference, leaking or not." ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 3: causality inference vs dynamic tainting.                   *)

let taint_config (w : Workload.t) model =
  { Tracker.model;
    sources = w.Workload.leak_sources;
    sinks = w.Workload.sinks;
    max_steps = 30_000_000 }

let table3_row (w : Workload.t) =
  let tg = Tracker.run ~config:(taint_config w Shadow.Taintgrind)
      (Workload.lower w) w.Workload.world in
  let ld = Tracker.run ~config:(taint_config w Shadow.Libdft)
      (Workload.lower w) w.Workload.world in
  let ldx = dual w in
  (w, tg, ld, ldx)

let table3 () =
  let data = List.map table3_row Registry.all in
  let rows =
    List.map
      (fun ((w : Workload.t), (tg : Tracker.result), (ld : Tracker.result), ldx) ->
         [ w.Workload.name;
           string_of_int ld.Tracker.tainted_sinks;
           string_of_int tg.Tracker.tainted_sinks;
           string_of_int ldx.Engine.tainted_sinks;
           string_of_int ldx.Engine.total_sinks ])
      data
  in
  let total f = List.fold_left (fun a r -> a + f r) 0 data in
  let tot_ld = total (fun (_, _, (ld : Tracker.result), _) -> ld.Tracker.tainted_sinks) in
  let tot_tg = total (fun (_, (tg : Tracker.result), _, _) -> tg.Tracker.tainted_sinks) in
  let tot_ldx = total (fun (_, _, _, x) -> x.Engine.tainted_sinks) in
  let tot_all = total (fun (_, _, _, x) -> x.Engine.total_sinks) in
  let footer =
    [ [ "TOTAL"; string_of_int tot_ld; string_of_int tot_tg;
        string_of_int tot_ldx; string_of_int tot_all ];
      [ "vs LDX"; Table.pct (float_of_int tot_ld /. float_of_int (max 1 tot_ldx));
        Table.pct (float_of_int tot_tg /. float_of_int (max 1 tot_ldx));
        "100%"; "" ] ]
  in
  Table.make
    ~title:"Table 3: Tainted sinks — LibDFT vs TaintGrind vs LDX"
    ~headers:[ "Program"; "LibDFT"; "TaintGrind"; "LDX"; "Total sinks" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~notes:
      [ "Paper reference: LIBDFT and TaintGrind report 20% and 31.47% of \
         LDX's tainted sinks; LIBDFT is a subset of TaintGrind (library-\
         call modelling gaps); control-dependence leaks are missed by both.";
        "The last six rows are the vulnerable set: the sinks are return-\
         address and allocation-size checks (attack detection)." ]
    (rows @ footer)

(* ------------------------------------------------------------------ *)
(* Table 4: concurrent programs (repeated dual executions).            *)

let table4 ?(runs = 100) () =
  let rows =
    List.map
      (fun (w : Workload.t) ->
         let prog, _ = Workload.instrumented w in
         let results =
           List.init runs (fun i ->
               let config =
                 { (Workload.leak_config w) with
                   Engine.master_seed = i + 1;
                   slave_seed = 10_000 + i }
               in
               Engine.run ~config prog w.Workload.world)
         in
         let diffs = List.map (fun r -> r.Engine.syscall_diffs) results in
         let sinks = List.map (fun r -> r.Engine.tainted_sinks) results in
         let dlo, dhi = Table.min_max diffs in
         let slo, shi = Table.min_max sinks in
         let fl = List.map float_of_int in
         [ w.Workload.name;
           Printf.sprintf "%d / %d / %s" dlo dhi
             (Table.f2 (Table.stddev (fl diffs)));
           Printf.sprintf "%d / %d / %s" slo shi
             (Table.f2 (Table.stddev (fl sinks))) ])
      Registry.concurrency
  in
  Table.make
    ~title:
      (Printf.sprintf
         "Table 4: Concurrent programs (%d dual executions, perturbed \
          schedules)" runs)
    ~headers:
      [ "Program"; "Syscall diffs (min/max/stddev)";
        "Tainted sinks (min/max/stddev)" ]
    ~notes:
      [ "Master and slave run with different scheduler seeds per trial; \
         lock order is shared, unprotected races are free to differ.";
        "Paper reference: tainted sinks are stable except axel and x264, \
         whose raced values feed a sink." ]
    rows

(* ------------------------------------------------------------------ *)
(* Case studies.                                                       *)

let show_reports (r : Engine.result) =
  String.concat "\n"
    (List.map (fun rep -> "    " ^ Engine.report_to_string rep) r.Engine.reports)

let case_gcc () =
  let w = Registry.find_exn "403.gcc" in
  let strategy =
    Mutation.Swap_substring ("NGX_HAVE_POLL 1", "NGX_HAVE_POLL 0")
  in
  let prog, _ = Workload.instrumented w in
  let config = Workload.leak_config ~strategy w in
  let r = Engine.run ~config prog w.Workload.world in
  let tg = Tracker.run ~config:(taint_config w Shadow.Taintgrind)
      (Workload.lower w) w.Workload.world in
  let ld = Tracker.run ~config:(taint_config w Shadow.Libdft)
      (Workload.lower w) w.Workload.world in
  Printf.sprintf
    "## Case study: 403.gcc (Fig. 7)\n\n\
     The mini preprocessor expands an nginx-like source.  The slave flips\n\
     NGX_HAVE_POLL from 1 to 0: the #if branch is skipped, poll.h is not\n\
     included, and the emitted translation unit changes.  The causality\n\
     from the configuration value to the output is a control dependence\n\
     (the value only feeds the #if predicate).\n\n\
     LDX:        leak=%b, tainted sinks=%d, syscall diffs=%d\n%s\n\n\
     TaintGrind: tainted sinks=%d (control dependence breaks propagation)\n\
     LibDFT:     tainted sinks=%d\n"
    r.Engine.leak r.Engine.tainted_sinks r.Engine.syscall_diffs
    (show_reports r) tg.Tracker.tainted_sinks ld.Tracker.tainted_sinks

let case_firefox () =
  let w = Registry.find_exn "Firefox" in
  let strategy = Mutation.Swap_substring ("bank.example", "blog.example") in
  let prog, _ = Workload.instrumented w in
  let config = Workload.leak_config ~strategy w in
  let r = Engine.run ~config prog w.Workload.world in
  let tg = Tracker.run ~config:(taint_config w Shadow.Taintgrind)
      (Workload.lower w) w.Workload.world in
  let ld = Tracker.run ~config:(taint_config w Shadow.Libdft)
      (Workload.lower w) w.Workload.world in
  Printf.sprintf
    "## Case study: Firefox / ShowIP extension\n\n\
     The event loop dispatches UI events through function pointers (the\n\
     JS-engine analogue).  The ShowIP extension classifies the visited\n\
     URL by branching on its host and sends the category to a remote\n\
     service: the URL reaches the network only through control\n\
     dependences.  The slave visits blog.example instead of\n\
     bank.example.\n\n\
     LDX:        leak=%b, tainted sinks=%d, syscall diffs=%d\n%s\n\n\
     TaintGrind: tainted sinks=%d\n\
     LibDFT:     tainted sinks=%d\n"
    r.Engine.leak r.Engine.tainted_sinks r.Engine.syscall_diffs
    (show_reports r) tg.Tracker.tainted_sinks ld.Tracker.tainted_sinks

(* ------------------------------------------------------------------ *)
(* Mutation-strategy study (Sec. 8.3 / TR).                            *)

let mutation_study () =
  let set =
    List.filter
      (fun (w : Workload.t) ->
         w.Workload.category = Workload.Leak_detection
         || w.Workload.category = Workload.Vulnerable)
      Registry.all
  in
  let rows =
    List.map
      (fun (name, strategy) ->
         let detected =
           List.filter
             (fun (w : Workload.t) ->
                let prog, _ = Workload.instrumented w in
                let config = Workload.leak_config ~strategy w in
                (Engine.run ~config prog w.Workload.world).Engine.leak)
             set
         in
         [ name;
           Printf.sprintf "%d / %d" (List.length detected) (List.length set) ])
      Mutation.all_strategies
  in
  Table.make
    ~title:"Mutation strategies: leaks/attacks detected (leak+vuln sets)"
    ~headers:[ "Strategy"; "Detected" ]
    ~notes:
      [ "Paper finding: other strategies do not supersede off-by-one.";
        "Zero can be vacuous (mutating a 0 to 0) and wide random jumps \
         can hop between equivalence classes; off-by-one always leaves \
         the value's neighbourhood." ]
    rows

(* ------------------------------------------------------------------ *)
(* False-positive check (Sec. 8.3: "LDX does not report any false      *)
(* warnings"): the attack-detection programs on benign inputs, with    *)
(* neighbourhood mutations of the benign fields, must stay silent.     *)

(* Per-program benign-field mutation (the workload's attack-field swap
   may not occur in the benign input). *)
let fp_strategy (w : Workload.t) : Mutation.strategy =
  match w.Workload.name with
  | "Gif2png" -> Mutation.Swap_substring ("012", "013")
  | "Prozilla" -> Mutation.Swap_substring ("000024", "000025")
  | _ -> Mutation.Off_by_one

let fp_check () =
  let rows =
    List.filter_map
      (fun (w : Workload.t) ->
         match w.Workload.safe_world with
         | None -> None
         | Some safe ->
           let prog, _ = Workload.instrumented w in
           let attack =
             Engine.run ~config:(Workload.leak_config w) prog w.Workload.world
           in
           let config =
             { (Workload.leak_config w) with
               Engine.strategy = fp_strategy w }
           in
           let benign = Engine.run ~config prog safe in
           Some
             [ w.Workload.name;
               (if attack.Engine.leak then "attack reported" else "MISSED");
               (if benign.Engine.leak then "FALSE WARNING"
                else Printf.sprintf "silent (%d mutated)"
                    benign.Engine.mutated_inputs) ])
      Registry.all
  in
  Table.make
    ~title:"False-positive check: attack inputs vs benign inputs"
    ~headers:[ "Program"; "Attack input"; "Benign input" ]
    ~notes:
      [ "The same sink configuration and a benign-field neighbourhood \
         mutation: LDX must flag the attack and stay silent on benign \
         traffic (the paper's no-false-warnings validation).";
        "mp3info and the gcc front end are excluded: their malloc-size \
         sinks legitimately depend on input sizes on every input." ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablation A1: alignment schemes (LDX counter vs DualEx indexing vs   *)
(* TightLip windowless comparison).                                    *)

let ablation_alignment () =
  let set = Registry.leak @ Registry.spec in
  let rows =
    List.map
      (fun (w : Workload.t) ->
         let native = native_cycles w in
         let r = dual w in
         let est = Dualex.of_result ~native_cycles:native r in
         let prog, _ = Workload.instrumented w in
         let tl = Tightlip.run ~config:(Workload.leak_config w) prog
             w.Workload.world in
         [ w.Workload.name;
           Table.pct est.Dualex.ldx_overhead;
           Printf.sprintf "%.0fx" (1.0 +. est.Dualex.dualex_overhead);
           (if r.Engine.leak then "O" else "X");
           (if tl.Tightlip.leak_reported then
              if tl.Tightlip.terminated_early then "O (terminated)"
              else "O"
            else "X") ])
      set
  in
  Table.make
    ~title:"Ablation A1: alignment schemes on the leak+SPEC sets"
    ~headers:
      [ "Program"; "LDX overhead"; "DualEx slowdown"; "LDX verdict";
        "TightLip verdict" ]
    ~notes:
      [ "DualEx pays a per-instruction indexing+IPC cost (three orders \
         of magnitude, Sec. 8.1); TightLip cannot continue past syscall \
         differences." ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablation A2: loop counter reset on/off (Algorithm 3).               *)

let ablation_loops () =
  let set =
    List.filter_map
      (fun name -> Registry.find name)
      [ "400.perlbench"; "456.hmmer"; "462.libquantum"; "Nginx"; "Tnftp" ]
  in
  let run_with reset (w : Workload.t) =
    let config_i = { Counter.default_config with Counter.loop_reset = reset } in
    let prog, _ = Counter.instrument ~config:config_i (Workload.lower w) in
    match Workload.benign_config w with
    | None -> None
    | Some config -> Some (Engine.run ~config prog w.Workload.world)
  in
  let rows =
    List.filter_map
      (fun (w : Workload.t) ->
         match (run_with true w, run_with false w) with
         | Some on, Some off ->
           Some
             [ w.Workload.name;
               Printf.sprintf "%d diffs, leak=%b" on.Engine.syscall_diffs
                 on.Engine.leak;
               Printf.sprintf "%d diffs, leak=%b" off.Engine.syscall_diffs
                 off.Engine.leak ]
         | _ -> None)
      set
  in
  Table.make
    ~title:
      "Ablation A2: loop backedge reset (benign mutation, divergent trip \
       counts)"
    ~headers:[ "Program"; "With reset (Alg. 3)"; "Without reset" ]
    ~notes:
      [ "Without the reset the counter grows with iterations: executions \
         with different trip counts never realign after the loop, so a \
         benign perturbation turns into spurious sink reports (false \
         positives) and inflated difference counts." ]
    rows

(* ------------------------------------------------------------------ *)

let all ?(runs = 100) () =
  String.concat "\n"
    [ Table.render (table1 ());
      Table.render (fig6 ());
      Table.render (table2 ());
      Table.render (table3 ());
      Table.render (table4 ~runs ());
      case_gcc ();
      case_firefox ();
      Table.render (fp_check ());
      Table.render (mutation_study ());
      Table.render (ablation_alignment ());
      Table.render (ablation_loops ()) ]
