(* Plain-text table rendering for the experiment reports. *)

type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ?(aligns = []) ?(notes = []) rows =
  let aligns =
    if aligns <> [] then aligns else List.map (fun _ -> Left) headers
  in
  { title; headers; aligns; rows; notes }

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render (t : t) : string =
  let cols = List.length t.headers in
  let widths = Array.make cols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
         if i < cols && String.length cell > widths.(i) then
           widths.(i) <- String.length cell)
      row
  in
  measure t.headers;
  List.iter measure t.rows;
  let fmt_row row =
    let cells =
      List.mapi
        (fun i cell ->
           let align = try List.nth t.aligns i with _ -> Left in
           pad align widths.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("## " ^ t.title ^ "\n\n");
  Buffer.add_string buf (fmt_row t.headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (fmt_row r ^ "\n")) t.rows;
  if t.notes <> [] then begin
    Buffer.add_char buf '\n';
    List.iter (fun n -> Buffer.add_string buf ("> " ^ n ^ "\n")) t.notes
  end;
  Buffer.contents buf

let pct ?(digits = 2) x = Printf.sprintf "%.*f%%" digits (100.0 *. x)
let f2 x = Printf.sprintf "%.2f" x

(* Simple statistics used by Table 4 and the means of Fig. 6. *)
let mean xs =
  if xs = [] then 0.0
  else List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  if xs = [] then 0.0
  else
    exp
      (List.fold_left (fun a x -> a +. log (Stdlib.max 1e-12 x)) 0.0 xs
       /. float_of_int (List.length xs))

let stddev xs =
  if List.length xs < 2 then 0.0
  else begin
    let m = mean xs in
    let var =
      List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs - 1)
    in
    sqrt var
  end

let min_max xs =
  match xs with
  | [] -> (0, 0)
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest
