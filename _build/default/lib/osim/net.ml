(* Scripted network endpoints.

   An endpoint is a named bidirectional channel: the world script supplies
   the inbound message sequence; outbound messages are recorded in an
   outbox.  Outboxes at send-sinks are what LDX compares across master and
   slave. *)

type endpoint = {
  name : string;
  mutable inbox : string list;       (* remaining scripted inbound messages *)
  mutable outbox : string list;      (* reversed: most recent first *)
}

type t = { endpoints : (string, endpoint) Hashtbl.t }

let create () = { endpoints = Hashtbl.create 8 }

let add_endpoint t name script =
  Hashtbl.replace t.endpoints name { name; inbox = script; outbox = [] }

let find t name = Hashtbl.find_opt t.endpoints name

(* Connecting to an unknown endpoint creates an empty one (reads yield ""),
   mirroring a peer that sends nothing. *)
let connect t name =
  match find t name with
  | Some e -> e
  | None ->
    let e = { name; inbox = []; outbox = [] } in
    Hashtbl.replace t.endpoints name e;
    e

let recv (e : endpoint) =
  match e.inbox with
  | [] -> ""                          (* connection closed / nothing left *)
  | m :: rest -> e.inbox <- rest; m

let send (e : endpoint) msg =
  e.outbox <- msg :: e.outbox;
  String.length msg

let outbox (e : endpoint) = List.rev e.outbox

let clone (t : t) : t =
  let endpoints = Hashtbl.create (Hashtbl.length t.endpoints) in
  Hashtbl.iter
    (fun n e ->
       Hashtbl.replace endpoints n
         { name = e.name; inbox = e.inbox; outbox = e.outbox })
    t.endpoints;
  { endpoints }

let dump_outboxes (t : t) : (string * string list) list =
  Hashtbl.fold (fun n e acc -> (n, outbox e) :: acc) t.endpoints []
  |> List.sort compare
