(* The initial environment of an execution: files, directories, network
   scripts, clock origin and rng seed.  A world is a pure description; it
   is instantiated into live [Vfs.t]/[Net.t] state per process. *)

type t = {
  dirs : string list;
  files : (string * string) list;             (* path, contents *)
  net_scripts : (string * string list) list;  (* endpoint, inbound messages *)
  clock_origin : int;
  rng_seed : int;
}

let empty =
  { dirs = []; files = []; net_scripts = []; clock_origin = 1_000_000;
    rng_seed = 42 }

let with_file path contents w = { w with files = (path, contents) :: w.files }
let with_dir path w = { w with dirs = path :: w.dirs }
let with_endpoint name script w =
  { w with net_scripts = (name, script) :: w.net_scripts }
let with_seed seed w = { w with rng_seed = seed }
let with_clock origin w = { w with clock_origin = origin }

(* Replace the contents of a file (used to build paired inputs for the
   Table 2 experiments); adds the file if absent. *)
let set_file path contents w =
  { w with
    files = (path, contents) :: List.remove_assoc path w.files }

let set_endpoint name script w =
  { w with
    net_scripts = (name, script) :: List.remove_assoc name w.net_scripts }

let instantiate_vfs (w : t) : Vfs.t =
  let vfs = Vfs.create () in
  (* create parent dirs implicitly, deepest-last *)
  let rec ensure_dir path =
    let path = Vfs.normalize path in
    if not (Vfs.exists vfs path) then begin
      ensure_dir (Vfs.parent path);
      match Vfs.mkdir vfs path with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "World: mkdir %s: %s" path e)
    end
  in
  List.iter ensure_dir (List.rev w.dirs);
  List.iter
    (fun (path, contents) ->
       ensure_dir (Vfs.parent (Vfs.normalize path));
       match Vfs.write_file vfs path contents with
       | Ok () -> ()
       | Error e -> failwith (Printf.sprintf "World: write %s: %s" path e))
    (List.rev w.files);
  vfs

let instantiate_net (w : t) : Net.t =
  let net = Net.create () in
  List.iter (fun (name, script) -> Net.add_endpoint net name script)
    (List.rev w.net_scripts);
  net
