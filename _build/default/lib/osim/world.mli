(** The initial environment of an execution: files, directories, network
    scripts, clock origin and rng seed.  A world is a pure description,
    instantiated into live {!Vfs}/{!Net} state per process — master and
    slave each get their own instantiation of the same world. *)

type t = {
  dirs : string list;
  files : (string * string) list;
  net_scripts : (string * string list) list;
  clock_origin : int;
  rng_seed : int;
}

val empty : t

val with_file : string -> string -> t -> t
val with_dir : string -> t -> t
val with_endpoint : string -> string list -> t -> t
val with_seed : int -> t -> t
val with_clock : int -> t -> t

(** Replace a file's contents (add when absent) — for building paired
    inputs in experiments. *)
val set_file : string -> string -> t -> t

val set_endpoint : string -> string list -> t -> t

(** Builds the filesystem, creating parent directories implicitly.
    @raise Failure on inconsistent descriptions. *)
val instantiate_vfs : t -> Vfs.t

val instantiate_net : t -> Net.t
