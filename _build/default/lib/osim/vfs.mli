(** An in-memory virtual filesystem.

    Paths are '/'-separated strings; directories must exist before files
    are created under them (the root always exists).  Supports deep
    cloning — the LDX engine gives the slave a private copy of a resource
    the first time a misaligned operation touches it (Sec. 7). *)

type entry =
  | File of { mutable data : string; mutable mtime : int }
  | Dir

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable clock : int;   (** advances on mutations; source of mtimes *)
}

val create : unit -> t

(** Prefix a leading '/' when missing; the empty path is the root. *)
val normalize : string -> string

(** Parent directory of a normalized path ("/" for top-level entries). *)
val parent : string -> string

val exists : t -> string -> bool
val is_dir : t -> string -> bool
val lookup : t -> string -> entry option

(** Create or truncate a file; the parent directory must exist. *)
val create_file : t -> string -> (unit, string) result

val read_file : t -> string -> (string, string) result

(** Create-or-replace semantics; the parent directory must exist. *)
val write_file : t -> string -> string -> (unit, string) result

(** Appends; creates the file when absent. *)
val append_file : t -> string -> string -> (unit, string) result

val size : t -> string -> (int, string) result
val mkdir : t -> string -> (unit, string) result
val unlink : t -> string -> (unit, string) result
val rename : t -> string -> string -> (unit, string) result

(** Immediate children, sorted (deterministic). *)
val readdir : t -> string -> (string list, string) result

(** Deep copy: mutations to the clone never affect the original. *)
val clone : t -> t

(** All file contents, sorted by path (for output comparison in tests). *)
val dump : t -> (string * string) list
