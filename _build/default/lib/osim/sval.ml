(* Scalar values crossing the syscall boundary.

   The VM's full value type (arrays, function pointers) never crosses into
   the simulated OS; syscall arguments and results are ints and strings,
   as on a real kernel boundary. *)

type t = I of int | S of string

let to_string = function
  | I n -> string_of_int n
  | S s -> Printf.sprintf "%S" s

let equal a b =
  match (a, b) with
  | I x, I y -> x = y
  | S x, S y -> String.equal x y
  | I _, S _ | S _, I _ -> false

let list_equal xs ys =
  List.length xs = List.length ys && List.for_all2 equal xs ys

let int_exn = function I n -> n | S _ -> invalid_arg "Sval.int_exn"
let str_exn = function S s -> s | I _ -> invalid_arg "Sval.str_exn"

let list_to_string vs = String.concat ", " (List.map to_string vs)
