(* An in-memory virtual filesystem.

   Paths are flat strings with '/' separators; directories must be created
   explicitly except for the root.  Supports deep cloning, which the LDX
   engine uses for decoupled (tainted-resource) execution: the slave gets
   a private copy of a resource the first time a misaligned operation
   touches it (Sec. 7, "light-weight resource tainting"). *)

type entry =
  | File of { mutable data : string; mutable mtime : int }
  | Dir

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable clock : int;               (* advances on mutations; mtime source *)
}

let create () =
  let t = { entries = Hashtbl.create 32; clock = 0 } in
  Hashtbl.replace t.entries "/" Dir;
  t

let tick t = t.clock <- t.clock + 1; t.clock

let normalize path =
  if String.length path = 0 then "/"
  else if path.[0] = '/' then path
  else "/" ^ path

let parent path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let exists t path = Hashtbl.mem t.entries (normalize path)

let is_dir t path =
  match Hashtbl.find_opt t.entries (normalize path) with
  | Some Dir -> true
  | Some (File _) | None -> false

let lookup t path = Hashtbl.find_opt t.entries (normalize path)

(* Create or truncate a file; parent directory must exist. *)
let create_file t path =
  let path = normalize path in
  if not (exists t (parent path)) then Error "no such directory"
  else if is_dir t path then Error "is a directory"
  else begin
    Hashtbl.replace t.entries path (File { data = ""; mtime = tick t });
    Ok ()
  end

let read_file t path =
  match lookup t path with
  | Some (File f) -> Ok f.data
  | Some Dir -> Error "is a directory"
  | None -> Error "no such file"

let write_file t path data =
  let path = normalize path in
  match lookup t path with
  | Some (File f) ->
    f.data <- data;
    f.mtime <- tick t;
    Ok ()
  | Some Dir -> Error "is a directory"
  | None ->
    if not (exists t (parent path)) then Error "no such directory"
    else begin
      Hashtbl.replace t.entries path (File { data; mtime = tick t });
      Ok ()
    end

let append_file t path data =
  match lookup t (normalize path) with
  | Some (File f) ->
    f.data <- f.data ^ data;
    f.mtime <- tick t;
    Ok ()
  | Some Dir -> Error "is a directory"
  | None -> write_file t path data

let size t path =
  match lookup t path with
  | Some (File f) -> Ok (String.length f.data)
  | Some Dir -> Error "is a directory"
  | None -> Error "no such file"

let mkdir t path =
  let path = normalize path in
  if exists t path then Error "already exists"
  else if not (exists t (parent path)) then Error "no such directory"
  else begin
    Hashtbl.replace t.entries path Dir;
    Ok ()
  end

let unlink t path =
  let path = normalize path in
  match lookup t path with
  | Some (File _) -> Hashtbl.remove t.entries path; Ok ()
  | Some Dir -> Error "is a directory"
  | None -> Error "no such file"

let rename t src dst =
  let src = normalize src and dst = normalize dst in
  match lookup t src with
  | Some (File f) ->
    if not (exists t (parent dst)) then Error "no such directory"
    else begin
      Hashtbl.remove t.entries src;
      Hashtbl.replace t.entries dst (File { data = f.data; mtime = tick t });
      Ok ()
    end
  | Some Dir -> Error "cannot rename directory"
  | None -> Error "no such file"

(* Immediate children of a directory, sorted (deterministic). *)
let readdir t path =
  let path = normalize path in
  if not (is_dir t path) then Error "no such directory"
  else begin
    let prefix = if String.equal path "/" then "/" else path ^ "/" in
    let plen = String.length prefix in
    let children =
      Hashtbl.fold
        (fun p _ acc ->
           if String.length p > plen
           && String.sub p 0 plen = prefix
           && not (String.contains_from p plen '/')
           then String.sub p plen (String.length p - plen) :: acc
           else acc)
        t.entries []
    in
    Ok (List.sort String.compare children)
  end

let clone (t : t) : t =
  let entries = Hashtbl.create (Hashtbl.length t.entries) in
  Hashtbl.iter
    (fun p e ->
       let e' =
         match e with
         | Dir -> Dir
         | File f -> File { data = f.data; mtime = f.mtime }
       in
       Hashtbl.replace entries p e')
    t.entries;
  { entries; clock = t.clock }

(* Snapshot of all file contents (for output comparison in tests). *)
let dump (t : t) : (string * string) list =
  Hashtbl.fold
    (fun p e acc -> match e with File f -> (p, f.data) :: acc | Dir -> acc)
    t.entries []
  |> List.sort compare
