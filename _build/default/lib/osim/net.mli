(** Scripted network endpoints.

    An endpoint is a named bidirectional channel: the {!World} script
    supplies the inbound message sequence; outbound messages accumulate
    in an outbox.  Outboxes at send-sinks are what LDX compares across
    master and slave. *)

type endpoint = {
  name : string;
  mutable inbox : string list;     (** remaining scripted inbound messages *)
  mutable outbox : string list;    (** reversed: most recent first *)
}

type t = { endpoints : (string, endpoint) Hashtbl.t }

val create : unit -> t
val add_endpoint : t -> string -> string list -> unit
val find : t -> string -> endpoint option

(** Connecting to an unknown endpoint creates an empty one (its reads
    yield [""], like a peer that sends nothing). *)
val connect : t -> string -> endpoint

(** Pop the next inbound message; [""] when the script is exhausted. *)
val recv : endpoint -> string

(** Record an outbound message; returns its length. *)
val send : endpoint -> string -> int

(** Outbound messages in send order. *)
val outbox : endpoint -> string list

val clone : t -> t
val dump_outboxes : t -> (string * string list) list
