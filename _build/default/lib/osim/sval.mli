(** Scalar values crossing the (simulated) syscall boundary: the VM's
    arrays and function pointers never reach the OS, just as on a real
    kernel boundary. *)

type t = I of int | S of string

val to_string : t -> string
val equal : t -> t -> bool
val list_equal : t list -> t list -> bool

(** @raise Invalid_argument on the wrong constructor. *)
val int_exn : t -> int

(** @raise Invalid_argument on the wrong constructor. *)
val str_exn : t -> string

val list_to_string : t list -> string
