lib/osim/net.ml: Hashtbl List String
