lib/osim/os.mli: Buffer Hashtbl Net Sval Vfs World
