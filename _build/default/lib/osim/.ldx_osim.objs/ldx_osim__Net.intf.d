lib/osim/net.mli: Hashtbl
