lib/osim/vfs.ml: Hashtbl List String
