lib/osim/sval.mli:
