lib/osim/world.mli: Net Vfs
