lib/osim/os.ml: Buffer Hashtbl Net Printf String Sval Vfs World
