lib/osim/sval.ml: List Printf String
