lib/osim/world.ml: List Net Printf Vfs
