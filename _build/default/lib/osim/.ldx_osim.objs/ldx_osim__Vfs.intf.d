lib/osim/vfs.mli: Hashtbl
