(* ldx_worker: one campaign-service worker process.

     ldx_worker --queue campaign.ldx --owner w0 prog.minic --sweep-seeds 40

   Claims tasks off the lease queue in the journal, heartbeats while it
   works, executes each task through the campaign runner, and appends
   the outcome.  SIGTERM/SIGINT request a clean drain: the in-flight
   task finishes (its outcome is journaled), the lease queue is left
   consistent, and the process exits 21.  SIGKILL needs no handling —
   the lease TTL makes this worker's tasks reclaimable by any peer.

   Exit codes: 0 = queue complete, 21 = drained on signal, 1 = error
   (bad spec, fingerprint mismatch, unreadable journal). *)

open Cmdliner
module Campaign = Ldx_core.Campaign
module Service_common = Ldx_service_cli.Service_common

let exit_drained = 21

let queue_arg =
  Arg.(required & opt (some string) None
       & info [ "queue" ] ~docv:"FILE"
         ~doc:"The campaign journal / lease queue (written by \
               ldx_campaignd or Campaign.Service.init).")

let owner_arg =
  Arg.(value & opt (some string) None
       & info [ "owner" ] ~docv:"NAME"
         ~doc:"This worker's identity in lease records (space-free). \
               Default: w<pid>.")

let ttl_ms =
  Arg.(value & opt int 5000
       & info [ "ttl-ms" ] ~docv:"MS"
         ~doc:"Lease time-to-live: how long after this worker's last \
               heartbeat its leases become reclaimable.")

let heartbeat_ms =
  Arg.(value & opt int 1000
       & info [ "heartbeat-ms" ] ~docv:"MS"
         ~doc:"Heartbeat period (0 disables; leases then expire TTL \
               after the claim).")

let poll_ms =
  Arg.(value & opt int 200
       & info [ "poll-ms" ] ~docv:"MS"
         ~doc:"Sleep between queue polls when nothing is claimable.")

let main queue owner ttl_ms heartbeat_ms poll_ms spec =
  let owner =
    match owner with Some o -> o | None -> Printf.sprintf "w%d" (Unix.getpid ())
  in
  match Service_common.resolve spec with
  | Error e -> `Error (false, e)
  | Ok c ->
    (* graceful drain: the handler only flips a flag; the worker loop
       polls it between tasks, so the in-flight task always finishes *)
    let draining = Atomic.make false in
    let request_drain signal_name _ =
      if not (Atomic.get draining) then
        Printf.eprintf "ldx_worker[%s]: %s received, draining\n%!" owner
          signal_name;
      Atomic.set draining true
    in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (request_drain "SIGTERM"));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (request_drain "SIGINT"));
    (match
       Campaign.Service.worker
         ~stop:(fun () -> Atomic.get draining)
         ~sync:spec.Service_common.sync ?retry:c.Service_common.retry
         ?deadline:c.Service_common.deadline ~path:queue ~owner
         ~ttl_us:(ttl_ms * 1000) ~heartbeat_us:(heartbeat_ms * 1000)
         ~poll_us:(poll_ms * 1000) ~config:c.Service_common.config
         c.Service_common.prog c.Service_common.world c.Service_common.params
     with
     | Ok `Complete ->
       Printf.eprintf "ldx_worker[%s]: queue complete\n%!" owner;
       `Ok ()
     | Ok `Drained ->
       Printf.eprintf "ldx_worker[%s]: drained\n%!" owner;
       exit exit_drained
     | Error e -> `Error (false, e))

let cmd =
  let info =
    Cmd.info "ldx_worker"
      ~doc:"Campaign-service worker: claim, heartbeat, execute, journal"
  in
  Cmd.v info
    Term.(
      ret
        (const main $ queue_arg $ owner_arg $ ttl_ms $ heartbeat_ms $ poll_ms
         $ Service_common.term))

let () = exit (Cmd.eval cmd)
