(* ldx_prof: render, diff and regression-gate LDX profiles and bench
   results.

     ldx_prof render prof.json [--folded]
     ldx_prof diff base.json cur.json
     ldx_prof bench-diff BENCH_baseline.json BENCH_results.json \
       [--threshold R] [--cycles-only]          # exit 1 on regression
     ldx_prof bench-diff BENCH_results.json --self-test

   Profiles come from `ldx_run --profile-json`; bench results from the
   bench runner's BENCH_results.json (schema ldx-bench/1). *)

open Cmdliner
module Report = Ldx_prof.Report
module Bench_diff = Ldx_prof.Bench_diff
module J = Ldx_obs.Json

let read_json path =
  match J.parse (In_channel.with_open_text path In_channel.input_all) with
  | Ok j -> Ok j
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let read_profile path =
  Result.bind (read_json path) (fun j ->
      match Report.of_json j with
      | Ok d -> Ok d
      | Error e -> Error (Printf.sprintf "%s: %s" path e))

let render_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PROFILE.json")
  in
  let folded =
    Arg.(value & flag
         & info [ "folded" ]
           ~doc:"Emit folded stacks (flamegraph.pl input) instead of the \
                 ranked tables.")
  in
  let blocks =
    Arg.(value & opt int 20
         & info [ "blocks" ] ~docv:"N"
           ~doc:"Rows in the per-block table.")
  in
  let run file folded blocks =
    match read_profile file with
    | Error e -> `Error (false, e)
    | Ok d ->
      print_string
        (if folded then Report.folded d else Report.render ~blocks d);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "render"
       ~doc:"Render a profile JSON (from ldx_run --profile-json) as ranked \
             text tables or folded stacks")
    Term.(ret (const run $ file $ folded $ blocks))

let diff_cmd =
  let base =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE.json")
  in
  let cur =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT.json")
  in
  let run base cur =
    match (read_profile base, read_profile cur) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok b, Ok c ->
      print_string (Report.diff b c);
      `Ok ()
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Per-opcode / per-block cycle deltas between two profile JSONs")
    Term.(ret (const run $ base $ cur))

let bench_diff_cmd =
  let base =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE.json")
  in
  let cur =
    Arg.(value & pos 1 (some file) None & info [] ~docv:"CURRENT.json")
  in
  let threshold =
    Arg.(value & opt float 0.3
         & info [ "threshold" ] ~docv:"R"
           ~doc:"Wall-time slack: flag a kernel only when current > \
                 baseline * (1 + $(docv)).  Engine counters always use \
                 zero tolerance — they are bit-deterministic.")
  in
  let cycles_only =
    Arg.(value & flag
         & info [ "cycles-only" ]
           ~doc:"Compare only the deterministic engine counters and skip \
                 host wall times — the CI mode, where shared runners make \
                 wall time meaningless.")
  in
  let self_test =
    Arg.(value & flag
         & info [ "self-test" ]
           ~doc:"Gate sanity check on BASELINE alone: assert that the file \
                 passes against itself and that a synthetically slowed \
                 copy (10x one wall time, +1 on one wall_cycles counter) \
                 trips the gate.  Exits nonzero if either assertion \
                 fails.")
  in
  let run base cur threshold cycles_only self_test =
    let ( let* ) r f =
      match r with Ok v -> f v | Error e -> `Error (false, e)
    in
    let* bj = read_json base in
    if self_test then begin
      let* same =
        Bench_diff.compare ~threshold ~cycles_only:false ~baseline:bj
          ~current:bj ()
      in
      let* doctored = Bench_diff.doctor bj in
      let* tripped =
        Bench_diff.compare ~threshold ~cycles_only:false ~baseline:bj
          ~current:doctored ()
      in
      if same.Bench_diff.bd_regressions <> 0 then
        `Error (false, "self-test: identical inputs flagged as regression")
      else if tripped.Bench_diff.bd_regressions < 2 then
        `Error
          ( false,
            Printf.sprintf
              "self-test: doctored slowdown not caught (%d regressions)"
              tripped.Bench_diff.bd_regressions )
      else begin
        Printf.printf
          "self-test ok: identical inputs pass (%d checks), doctored run \
           trips %d regressions\n"
          same.Bench_diff.bd_checks tripped.Bench_diff.bd_regressions;
        `Ok ()
      end
    end
    else
      match cur with
      | None -> `Error (true, "CURRENT.json is required unless --self-test")
      | Some cur ->
        let* cj = read_json cur in
        let* out =
          Bench_diff.compare ~threshold ~cycles_only ~baseline:bj
            ~current:cj ()
        in
        print_string out.Bench_diff.bd_report;
        if out.Bench_diff.bd_regressions > 0 then exit 1 else `Ok ()
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Regression gate over two BENCH_results.json runs: exact \
             equality on deterministic engine counters, threshold ratio \
             on host wall times; exits 1 on any regression")
    Term.(ret (const run $ base $ cur $ threshold $ cycles_only $ self_test))

let () =
  let info =
    Cmd.info "ldx_prof"
      ~doc:"Render, diff and regression-gate LDX profiles and bench results"
  in
  exit (Cmd.eval (Cmd.group info [ render_cmd; diff_cmd; bench_diff_cmd ]))
