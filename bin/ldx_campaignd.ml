(* ldx_campaignd: the campaign-service supervisor.

     ldx_campaignd --queue campaign.ldx --workers 3 prog.minic --sweep-seeds 40

   Initializes the journal/lease-queue (idempotent: restarting on the
   same queue file resumes the campaign), spawns N ldx_worker
   processes, and supervises them: dead workers are reaped and
   respawned with backoff under fresh owner identities, workers that
   stop heartbeating while still alive are SIGKILLed (the respawn path
   then recovers them), and a task whose lease has expired under
   --max-kills distinct owners is escalated to cross-process
   quarantine.  When every task is done the fleet is drained (SIGTERM)
   and the rendered table — byte-identical to a single-process
   --jobs 1 run — is printed to stdout.

   Exit codes: 0 = campaign complete, 21 = supervisor drained on
   SIGTERM/SIGINT, 1 = error. *)

open Cmdliner
module Campaign = Ldx_core.Campaign
module Q = Ldx_queue.Queue
module Service_common = Ldx_service_cli.Service_common

let exit_drained = 21

let queue_arg =
  Arg.(required & opt (some string) None
       & info [ "queue" ] ~docv:"FILE"
         ~doc:"The campaign journal / lease queue.  Reusing the file of \
               an identical campaign resumes it; a different campaign \
               re-initializes it.")

let workers_arg =
  Arg.(value & opt int 3
       & info [ "workers" ] ~docv:"N" ~doc:"Worker processes to run.")

let max_kills =
  Arg.(value & opt int 3
       & info [ "max-kills" ] ~docv:"K"
         ~doc:"Quarantine a task once its lease has expired under \
               $(docv) distinct workers (\"it keeps killing them\").")

let ttl_ms =
  Arg.(value & opt int 5000
       & info [ "ttl-ms" ] ~docv:"MS" ~doc:"Worker lease time-to-live.")

let heartbeat_ms =
  Arg.(value & opt int 1000
       & info [ "heartbeat-ms" ] ~docv:"MS" ~doc:"Worker heartbeat period.")

let poll_ms =
  Arg.(value & opt int 200
       & info [ "poll-ms" ] ~docv:"MS" ~doc:"Worker queue-poll period.")

let respawn_backoff_ms =
  Arg.(value & opt int 200
       & info [ "respawn-backoff-ms" ] ~docv:"MS"
         ~doc:"Base respawn delay after a worker death; doubles per \
               consecutive death of the same slot (capped at 16x).")

let kill_after_outcomes =
  Arg.(value & opt (some int) None
       & info [ "kill-after-outcomes" ] ~docv:"N"
         ~doc:"Crash-injection hook for CI: SIGKILL one worker once the \
               journal holds $(docv) outcomes, then let supervision \
               recover it.")

let worker_exe_arg =
  Arg.(value & opt (some string) None
       & info [ "worker-exe" ] ~docv:"PATH"
         ~doc:"The ldx_worker executable (default: a sibling of this \
               binary).")

type slot = {
  mutable pid : int;
  mutable owner : string;
  mutable gen : int;
  mutable deaths : int;   (* consecutive abnormal deaths, for backoff *)
  mutable live : bool;
}

let main queue workers max_kills ttl_ms heartbeat_ms poll_ms
    respawn_backoff_ms kill_after_outcomes worker_exe spec =
  match Service_common.resolve spec with
  | Error e -> `Error (false, e)
  | Ok c ->
    let sync = spec.Service_common.sync in
    Campaign.Service.init ~sync ?retry:c.Service_common.retry
      ?deadline:c.Service_common.deadline ~path:queue
      ~config:c.Service_common.config c.Service_common.prog
      c.Service_common.world c.Service_common.params;
    Printf.eprintf "ldx_campaignd: queue %s (%d tasks, %d workers)\n%!" queue
      (List.length c.Service_common.params)
      workers;
    let exe =
      match worker_exe with
      | Some p -> p
      | None ->
        Filename.concat (Filename.dirname Sys.executable_name) "ldx_worker.exe"
    in
    let spec_argv = Array.of_list (Service_common.to_argv spec) in
    let my_pid = Unix.getpid () in
    let spawn slot_id gen =
      let owner = Printf.sprintf "w%d.%d.p%d" slot_id gen my_pid in
      let argv =
        Array.append
          [| exe; "--queue"; queue; "--owner"; owner;
             "--ttl-ms"; string_of_int ttl_ms;
             "--heartbeat-ms"; string_of_int heartbeat_ms;
             "--poll-ms"; string_of_int poll_ms |]
          spec_argv
      in
      let pid =
        Unix.create_process exe argv Unix.stdin Unix.stdout Unix.stderr
      in
      (pid, owner)
    in
    let slots =
      Array.init workers (fun i ->
          let pid, owner = spawn i 0 in
          Printf.eprintf "ldx_campaignd: spawned worker %s (pid %d)\n%!" owner
            pid;
          { pid; owner; gen = 0; deaths = 0; live = true })
    in
    let draining = Atomic.make false in
    let request_drain _ = Atomic.set draining true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_drain);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_drain);
    let kill_hook_fired = ref false in
    let escalate () =
      match Campaign.Service.escalate ~sync ~path:queue ~kills:max_kills () with
      | Ok 0 | Error _ -> ()
      | Ok n ->
        Printf.eprintf
          "ldx_campaignd: quarantined %d task(s) that kept killing workers\n%!"
          n
    in
    let describe st =
      match st with
      | Unix.WEXITED c when c = exit_drained -> ("drained", true)
      | Unix.WEXITED 0 -> ("complete", true)
      | Unix.WEXITED c -> (Printf.sprintf "exit %d" c, false)
      | Unix.WSIGNALED s -> (Printf.sprintf "signal %d" s, false)
      | Unix.WSTOPPED s -> (Printf.sprintf "stopped %d" s, false)
    in
    let complete () =
      match Q.load ~path:queue with
      | Ok v -> Q.is_complete v
      | Error _ -> false
    in
    (* reap dead workers; respawn abnormal deaths (with backoff) unless
       the campaign is over or we are draining *)
    let reap_and_respawn () =
      Array.iteri
        (fun i s ->
           if s.live then
             match Unix.waitpid [ Unix.WNOHANG ] s.pid with
             | 0, _ -> ()
             | _, st ->
               let how, clean = describe st in
               s.live <- false;
               Printf.eprintf "ldx_campaignd: worker %s died (%s)\n%!" s.owner
                 how;
               if not clean then begin
                 s.deaths <- s.deaths + 1;
                 (* the dead worker's leases expire on their own; check
                    whether any task has now eaten too many workers *)
                 escalate ();
                 if (not (Atomic.get draining)) && not (complete ()) then begin
                   let backoff =
                     float_of_int
                       (respawn_backoff_ms * min 16 (1 lsl (s.deaths - 1)))
                     /. 1000.
                   in
                   Unix.sleepf backoff;
                   s.gen <- s.gen + 1;
                   let pid, owner = spawn i s.gen in
                   s.pid <- pid;
                   s.owner <- owner;
                   s.live <- true;
                   Printf.eprintf
                     "ldx_campaignd: respawned worker %s (pid %d, backoff \
                      %.1fs)\n%!"
                     owner pid backoff
                 end
               end
               else s.deaths <- 0
             | exception Unix.Unix_error (Unix.ECHILD, _, _) -> s.live <- false)
        slots
    in
    (* a worker that holds a lease expired well past its TTL while its
       process is still alive is hung (stopped heartbeating): put it
       out of its misery, the respawn path recovers it *)
    let kill_hung now_us v =
      Array.iter
        (fun st ->
           match st with
           | Q.Leased { holder; deadline_us; _ }
             when now_us > deadline_us + (ttl_ms * 1000) ->
             Array.iter
               (fun s ->
                  if s.live && s.owner = holder then begin
                    Printf.eprintf
                      "ldx_campaignd: worker %s stopped heartbeating, \
                       killing it\n%!"
                      s.owner;
                    (try Unix.kill s.pid Sys.sigkill with _ -> ())
                  end)
               slots
           | _ -> ())
        v.Q.states
    in
    let test_kill_hook v =
      match kill_after_outcomes with
      | Some n when not !kill_hook_fired ->
        let outcomes = Array.length v.Q.states - Q.remaining v in
        if outcomes >= n then begin
          (match Array.find_opt (fun s -> s.live) slots with
           | Some s ->
             kill_hook_fired := true;
             Printf.eprintf
               "ldx_campaignd: test hook: SIGKILL worker %s (pid %d) after \
                %d outcomes\n%!"
               s.owner s.pid outcomes;
             (try Unix.kill s.pid Sys.sigkill with _ -> ())
           | None -> ())
        end
      | _ -> ()
    in
    let rec supervise () =
      if Atomic.get draining then `Drain
      else begin
        reap_and_respawn ();
        match Q.load ~path:queue with
        | Error e ->
          Printf.eprintf "ldx_campaignd: %s\n%!" e;
          `Error e
        | Ok v ->
          if Q.is_complete v then `Complete
          else begin
            test_kill_hook v;
            kill_hung (Q.now_us ()) v;
            if not (Array.exists (fun s -> s.live) slots) then begin
              (* whole fleet gone and the queue is not finished: respawn
                 happens in reap_and_respawn, so getting here means
                 draining or unrecoverable — check once more *)
              escalate ()
            end;
            Unix.sleepf 0.05;
            supervise ()
          end
      end
    in
    let shutdown () =
      Array.iter
        (fun s ->
           if s.live then try Unix.kill s.pid Sys.sigterm with _ -> ())
        slots;
      Array.iter
        (fun s ->
           if s.live then begin
             (match Unix.waitpid [] s.pid with
              | _, st ->
                let how, _ = describe st in
                Printf.eprintf "ldx_campaignd: worker %s exited (%s)\n%!"
                  s.owner how
              | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ());
             s.live <- false
           end)
        slots
    in
    (match supervise () with
     | `Complete ->
       shutdown ();
       (match Campaign.Service.collect ~path:queue c.Service_common.params with
        | Ok outs ->
          print_string (Campaign.render outs);
          Printf.eprintf "ldx_campaignd: campaign complete (journal %s)\n%!"
            queue;
          `Ok ()
        | Error e -> `Error (false, e))
     | `Drain ->
       Printf.eprintf "ldx_campaignd: draining on signal\n%!";
       shutdown ();
       exit exit_drained
     | `Error e ->
       shutdown ();
       `Error (false, e))

let cmd =
  let info =
    Cmd.info "ldx_campaignd"
      ~doc:"Campaign-service supervisor: spawn, watch, respawn, escalate"
  in
  Cmd.v info
    Term.(
      ret
        (const main $ queue_arg $ workers_arg $ max_kills $ ttl_ms
         $ heartbeat_ms $ poll_ms $ respawn_backoff_ms $ kill_after_outcomes
         $ worker_exe_arg $ Service_common.term))

let () = exit (Cmd.eval cmd)
