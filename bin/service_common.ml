(* Shared campaign-spec CLI for the service binaries.

   ldx_worker and ldx_campaignd must agree BYTE-FOR-BYTE on the campaign
   they describe: a worker validates the journal's fingerprint against
   the spec it was launched with, so the supervisor rebuilds each
   worker's argv from its own spec ([to_argv]) rather than trusting two
   hand-written command lines to stay in sync. *)

open Cmdliner
module Engine = Ldx_core.Engine
module Campaign = Ldx_core.Campaign
module Mutation = Ldx_core.Mutation
module World = Ldx_osim.World

type spec = {
  prog_file : string option;
  workload : string option;
  files : string list;
  endpoints : string list;
  sources : string list;
  sink : string;
  strategy : string;
  sweep : [ `Strategies | `Seeds of int ];
  task_deadline : int option;
  max_retries : int;
  backoff : int;
  retry_budget : int option;
  sync : bool;
}

(* ---------- terms ---------- *)

let term : spec Term.t =
  let prog_file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"PROGRAM.minic")
  in
  let workload =
    Arg.(value & opt (some string) None
         & info [ "workload" ] ~docv:"NAME"
           ~doc:"Run a registry workload instead of a program file.")
  in
  let files =
    Arg.(value & opt_all string []
         & info [ "file" ] ~docv:"PATH=DATA"
           ~doc:"Add a file to the simulated world (repeatable).")
  in
  let endpoints =
    Arg.(value & opt_all string []
         & info [ "endpoint" ] ~docv:"NAME=MSGS"
           ~doc:"Add a network endpoint (repeatable).")
  in
  let sources =
    Arg.(value & opt_all string [ "recv" ]
         & info [ "source" ] ~docv:"SPEC"
           ~doc:"Source syscalls to mutate in the slave (repeatable).")
  in
  let sink =
    Arg.(value & opt string "outputs"
         & info [ "sink" ] ~docv:"KIND"
           ~doc:"Sink set: network | files | outputs | attack.")
  in
  let strategy =
    Arg.(value & opt string "off-by-one"
         & info [ "strategy" ] ~docv:"NAME"
           ~doc:"Mutation strategy: off-by-one | bitflip | zero | random.")
  in
  let sweep_strategies =
    Arg.(value & flag
         & info [ "sweep-strategies" ]
           ~doc:"One task per mutation strategy (the default sweep).")
  in
  let sweep_seeds =
    Arg.(value & opt (some int) None
         & info [ "sweep-seeds" ] ~docv:"N"
           ~doc:"One task per slave scheduler seed 0..N-1.")
  in
  let task_deadline =
    Arg.(value & opt (some int) None
         & info [ "task-deadline" ] ~docv:"STEPS"
           ~doc:"Cap each slave task at $(docv) VM steps.")
  in
  let max_retries =
    Arg.(value & opt int 0
         & info [ "max-retries" ] ~docv:"N"
           ~doc:"Retry failed tasks up to $(docv) times (jittered seeds).")
  in
  let backoff =
    Arg.(value & opt int 1
         & info [ "backoff" ] ~docv:"BASE"
           ~doc:"Retry seed-jitter growth base (1 = linear).")
  in
  let retry_budget =
    Arg.(value & opt (some int) None
         & info [ "retry-fuel-budget" ] ~docv:"STEPS"
           ~doc:"Cumulative VM-step budget per task across attempts.")
  in
  let sync =
    Arg.(value & flag
         & info [ "sync" ]
           ~doc:"fsync the journal on every append (power-loss \
                 durability; measured overhead in bench).")
  in
  let make prog_file workload files endpoints sources sink strategy
      sweep_strategies sweep_seeds task_deadline max_retries backoff
      retry_budget sync =
    let sweep =
      match (sweep_strategies, sweep_seeds) with
      | _, Some n -> `Seeds n
      | _, None -> ignore sweep_strategies; `Strategies
    in
    { prog_file; workload; files; endpoints; sources; sink; strategy; sweep;
      task_deadline; max_retries; backoff; retry_budget; sync }
  in
  Term.(const make $ prog_file $ workload $ files $ endpoints $ sources $ sink
        $ strategy $ sweep_strategies $ sweep_seeds $ task_deadline
        $ max_retries $ backoff $ retry_budget $ sync)

(* ---------- spec -> campaign ---------- *)

let split_once ch s =
  match String.index_opt s ch with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let build_world files endpoints =
  let w = ref World.empty in
  List.iter
    (fun spec ->
       let path, data = split_once '=' spec in
       w := World.with_file path data !w)
    files;
  List.iter
    (fun spec ->
       let name, msgs = split_once '=' spec in
       let script = if msgs = "" then [] else String.split_on_char ',' msgs in
       w := World.with_endpoint name script !w)
    endpoints;
  !w

let parse_sources specs =
  List.map
    (fun spec ->
       let sys, arg = split_once '@' spec in
       Engine.source ~sys ?arg:(if arg = "" then None else Some arg) ())
    specs

let parse_sinks = function
  | "network" -> Ok Engine.Network_outputs
  | "files" -> Ok Engine.File_outputs
  | "outputs" -> Ok Engine.Output_syscalls
  | "attack" -> Ok Engine.Attack_sinks
  | s -> Error (Printf.sprintf "unknown sink set %S" s)

let parse_strategy = function
  | "off-by-one" -> Ok Mutation.Off_by_one
  | "bitflip" -> Ok Mutation.Bitflip
  | "zero" -> Ok Mutation.Zero
  | "random" -> Ok (Mutation.Random_replace 7)
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

type campaign = {
  config : Engine.config;
  prog : Ldx_cfg.Ir.program;
  world : World.t;
  params : Campaign.slave_params list;
  retry : Campaign.retry_policy option;
  deadline : int option;
}

(* the exact config/params derivation ldx_run's sweep modes use — both
   sides of the fingerprint handshake come through here *)
let resolve (s : spec) : (campaign, string) result =
  let ( let* ) = Result.bind in
  let* sinks = parse_sinks s.sink in
  let* strategy = parse_strategy s.strategy in
  let* input =
    match (s.workload, s.prog_file) with
    | Some _, Some _ -> Error "give PROGRAM.minic or --workload, not both"
    | None, None -> Error "a PROGRAM.minic argument or --workload is required"
    | None, Some path ->
      (match In_channel.with_open_text path In_channel.input_all with
       | src -> Ok (`Src src)
       | exception Sys_error e -> Error e)
    | Some name, None ->
      (match Ldx_workloads.Registry.find name with
       | Some w -> Ok (`Workload w)
       | None -> Error (Printf.sprintf "unknown workload %S" name))
  in
  let world =
    match input with
    | `Workload w -> w.Ldx_workloads.Workload.world
    | `Src _ -> build_world s.files s.endpoints
  in
  let config =
    match input with
    | `Workload w -> Ldx_workloads.Workload.leak_config w
    | `Src _ ->
      { Engine.default_config with
        Engine.sources = parse_sources s.sources;
        sinks;
        strategy }
  in
  let* prog =
    match input with
    | `Workload w -> Ok (fst (Ldx_workloads.Workload.instrumented w))
    | `Src src ->
      (match Ldx_cfg.Lower.lower_source src with
       | exception Failure msg -> Error msg
       | prog -> Ok (fst (Ldx_instrument.Counter.instrument prog)))
  in
  let params =
    match s.sweep with
    | `Strategies -> Campaign.of_strategies config Mutation.all_strategies
    | `Seeds n -> Campaign.of_seeds config (List.init (max 0 n) Fun.id)
  in
  let retry =
    if s.max_retries = 0 && s.retry_budget = None then None
    else
      Some
        { Campaign.no_retries with
          Campaign.max_retries = s.max_retries;
          backoff = s.backoff;
          fuel_budget = s.retry_budget;
          quarantine = s.max_retries > 0 }
  in
  Ok { config; prog; world; params; retry; deadline = s.task_deadline }

(* ---------- spec -> argv (supervisor respawning workers) ---------- *)

let to_argv (s : spec) : string list =
  let opt flag = function None -> [] | Some v -> [ flag; v ] in
  let rep flag vs = List.concat_map (fun v -> [ flag; v ]) vs in
  (match s.prog_file with Some p -> [ p ] | None -> [])
  @ opt "--workload" s.workload
  @ rep "--file" s.files
  @ rep "--endpoint" s.endpoints
  @ rep "--source" s.sources
  @ [ "--sink"; s.sink; "--strategy"; s.strategy ]
  @ (match s.sweep with
     | `Strategies -> [ "--sweep-strategies" ]
     | `Seeds n -> [ "--sweep-seeds"; string_of_int n ])
  @ opt "--task-deadline" (Option.map string_of_int s.task_deadline)
  @ [ "--max-retries"; string_of_int s.max_retries;
      "--backoff"; string_of_int s.backoff ]
  @ opt "--retry-fuel-budget" (Option.map string_of_int s.retry_budget)
  @ (if s.sync then [ "--sync" ] else [])
