(* ldx_fuzz: standalone invariant fuzzer for the alignment machinery.

     dune exec bin/ldx_fuzz.exe -- --runs 2000 --seed 7

   Generates random structured MiniC programs (the same generator the
   property suite uses, from ldx.genprog) and checks, per program:
   - instrumentation is semantically transparent (P2),
   - no-mutation dual execution aligns perfectly (P3),
   - mutation never makes the slave trap (P4),
   - random race-free concurrent programs align under random seeds (P13).

   Exits non-zero and prints the offending program on the first failure —
   useful for long soak runs beyond the CI-sized qcheck budgets. *)

open Cmdliner
module Gen_minic = Ldx_genprog.Gen_minic
module Engine = Ldx_core.Engine
module Campaign = Ldx_core.Campaign
module Mutation = Ldx_core.Mutation
module Sched_sweep = Ldx_core.Sched_sweep
module Counter = Ldx_instrument.Counter
module Lower = Ldx_cfg.Lower
module Driver = Ldx_vm.Driver
module World = Ldx_osim.World
module Fault = Ldx_osim.Fault
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry
module Store = Ldx_store.Store

let test_world =
  World.(
    empty
    |> with_endpoint "in" [ "3"; "14"; "15"; "9"; "2"; "6"; "5"; "35"; "8" ])

type failure = { f_check : string; f_detail : string; f_program : string }

let check_program (p : Ldx_lang.Ast.program) : failure option =
  let src = Gen_minic.print_program p in
  let fail f_check f_detail = Some { f_check; f_detail; f_program = src } in
  let plainp = Lower.lower_program p in
  let instp, _ = Counter.instrument (Lower.lower_program p) in
  let plain = Driver.run plainp test_world in
  let inst = Driver.run instp test_world in
  if plain.Driver.trap <> None || inst.Driver.trap <> None then
    fail "transparency" "a native run trapped"
  else if not (String.equal plain.Driver.stdout inst.Driver.stdout) then
    fail "transparency" "instrumentation changed the output"
  else begin
    let no_mut = { Engine.default_config with Engine.sources = [] } in
    let r = Engine.run ~config:no_mut instp test_world in
    if r.Engine.syscall_diffs <> 0 || r.Engine.leak then
      fail "alignment"
        (Printf.sprintf "diffs=%d leak=%b" r.Engine.syscall_diffs r.Engine.leak)
    else begin
      let mut =
        { Engine.default_config with
          Engine.sources = [ Engine.source ~sys:"recv" () ] }
      in
      let r = Engine.run ~config:mut instp test_world in
      match r.Engine.slave.Engine.trap with
      | Some m -> fail "divergence tolerance" ("slave trapped: " ^ m)
      | None -> None
    end
  end

let check_concurrent (p : Ldx_lang.Ast.program) ms ss : failure option =
  let src = Gen_minic.print_program p in
  let instp, _ = Counter.instrument (Lower.lower_program p) in
  let config =
    { Engine.default_config with
      Engine.sources = []; Engine.master_seed = ms; slave_seed = ss }
  in
  let r = Engine.run ~config instp World.empty in
  if r.Engine.syscall_diffs <> 0 || r.Engine.leak
     || r.Engine.slave.Engine.trap <> None
  then
    Some
      { f_check = Printf.sprintf "concurrent alignment (seeds %d/%d)" ms ss;
        f_detail =
          Printf.sprintf "diffs=%d leak=%b trap=%s" r.Engine.syscall_diffs
            r.Engine.leak
            (Option.value ~default:"-" r.Engine.slave.Engine.trap);
        f_program = src }
  else None

(* Chaos check: with ZERO sources every syscall couples, so the slave
   replays the master's faulted outcome log verbatim — any report, diff
   or leak under an arbitrary fault plan is a FALSE POSITIVE in the
   causality inference (Sec. 4 soundness).  Hunting these is the point
   of chaos mode. *)
let check_chaos (p : Ldx_lang.Ast.program) (plan : Fault.t) : failure option =
  let src = Gen_minic.print_program p in
  let instp, _ = Counter.instrument (Lower.lower_program p) in
  let config =
    { Engine.default_config with
      Engine.sources = []; Engine.faults = Some plan }
  in
  let r = Engine.run ~config instp test_world in
  if r.Engine.leak || r.Engine.reports <> [] || r.Engine.syscall_diffs <> 0
  then
    Some
      { f_check = "chaos false positive";
        f_detail =
          Printf.sprintf "plan=[%s] leak=%b reports=%d diffs=%d"
            (Fault.to_string plan) r.Engine.leak
            (List.length r.Engine.reports) r.Engine.syscall_diffs;
        f_program = src }
  else if
    r.Engine.master.Engine.faults_injected
    <> r.Engine.slave.Engine.faults_injected
  then
    Some
      { f_check = "chaos fault-schedule divergence";
        f_detail =
          Printf.sprintf "plan=[%s] master injected %d, slave injected %d"
            (Fault.to_string plan) r.Engine.master.Engine.faults_injected
            r.Engine.slave.Engine.faults_injected;
        f_program = src }
  else None

(* Incremental-campaign identity: a strategy-sweep campaign over the
   generated program, run once with full slave passes and once with the
   shared prefix snapshotted and only suffixes replayed, must render
   byte-identical tables.  Any divergence means a snapshot missed state
   (or restored it wrong) — the core soundness bar of lib/snap. *)
let check_incremental (p : Ldx_lang.Ast.program) : failure option =
  let src = Gen_minic.print_program p in
  let instp, _ = Counter.instrument (Lower.lower_program p) in
  let config =
    { Engine.default_config with
      Engine.sources = [ Engine.source ~sys:"recv" () ] }
  in
  let params = Campaign.of_strategies config Mutation.all_strategies in
  let full =
    Campaign.render (Campaign.run ~config instp test_world params)
  in
  let incr =
    Campaign.render
      (Campaign.run ~incremental:true ~config instp test_world params)
  in
  if String.equal full incr then None
  else
    Some
      { f_check = "incremental campaign identity";
        f_detail =
          Printf.sprintf "tables differ\n--- full ---\n%s--- incremental ---\n%s"
            full incr;
        f_program = src }

type task =
  | Check_seq of Ldx_lang.Ast.program
  | Check_conc of Ldx_lang.Ast.program * int * int
  | Check_chaos of Ldx_lang.Ast.program * Fault.t
  | Check_incr of Ldx_lang.Ast.program

let check_task = function
  | Check_seq p -> check_program p
  | Check_conc (p, ms, ss) -> check_concurrent p ms ss
  | Check_chaos (p, plan) -> check_chaos p plan
  | Check_incr p -> check_incremental p

(* Programs and scheduler seeds are drawn up front from the one seeded
   generator state, so the task list — and therefore any reported
   counterexample — is identical whatever [jobs] is. *)
let make_tasks runs rand =
  let sequential = QCheck2.Gen.generate ~n:runs ~rand Gen_minic.gen_program in
  let concurrent =
    QCheck2.Gen.generate ~n:runs ~rand Gen_minic.gen_conc_program
  in
  Array.of_list
    (List.map (fun p -> Check_seq p) sequential
     @ List.map
         (fun p ->
            Check_conc
              (p, Random.State.int rand 1000, Random.State.int rand 1000))
         concurrent)

(* Chaos tasks: each program is paired with a fresh random fault plan
   drawn from the same generator state — sweeping the (program, plan)
   product space hunting false positives. *)
let make_chaos_tasks runs rand =
  let programs = QCheck2.Gen.generate ~n:runs ~rand Gen_minic.gen_program in
  Array.of_list
    (List.map (fun p -> Check_chaos (p, Fault.random ~rand ())) programs)

(* Incremental tasks: sequential and concurrent programs both, since
   snapshots must capture scheduler and blocked-thread state too. *)
let make_incr_tasks runs rand =
  let sequential = QCheck2.Gen.generate ~n:runs ~rand Gen_minic.gen_program in
  let concurrent =
    QCheck2.Gen.generate ~n:runs ~rand Gen_minic.gen_conc_program
  in
  Array.of_list (List.map (fun p -> Check_incr p) (sequential @ concurrent))

(* Check tasks across [jobs] domains (the calling domain participates).
   Tasks preceding the lowest failing index are always checked, so the
   reported counterexample is the earliest one — deterministic across
   job counts; indexes at or past a known failure are skipped. *)
let check_parallel ~jobs (tasks : task array) : (int * failure) option =
  let n = Array.length tasks in
  let next = Atomic.make 0 in
  let first_fail = Atomic.make max_int in
  let fails : failure option array = Array.make n None in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        if i < Atomic.get first_fail then
          (match check_task tasks.(i) with
           | None -> ()
           | Some f ->
             fails.(i) <- Some f;
             let rec lower () =
               let cur = Atomic.get first_fail in
               if i < cur && not (Atomic.compare_and_set first_fail cur i)
               then lower ()
             in
             lower ());
        loop ()
      end
    in
    loop ()
  in
  let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join spawned;
  match Atomic.get first_fail with
  | i when i < n -> Option.map (fun f -> (i, f)) fails.(i)
  | _ -> None

let check_sequential (tasks : task array) : (int * failure) option =
  let n = Array.length tasks in
  let rec go i =
    if i >= n then None
    else
      match check_task tasks.(i) with
      | Some f -> Some (i, f)
      | None -> go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Durable soak runs: journal each check's outcome through the same
   checksummed store the campaign layer uses, so a long fuzz killed at
   any point resumes from the last flushed record instead of repaying
   hours of checking.  The fingerprint pins (runs, seed, class): the
   task list is a pure function of those, so matching fingerprints mean
   identical task arrays and journaled indexes replay soundly. *)

let fuzz_fingerprint ~runs ~seed ~cls =
  Store.fingerprint [ "ldx-fuzz/1"; string_of_int runs; string_of_int seed; cls ]

let encode_outcome = function
  | None -> "ok"
  | Some f ->
    (* the store escapes payloads, so embedded newlines are safe *)
    String.concat "\n" [ "fail"; f.f_check; f.f_detail; f.f_program ]

let decode_outcome payload : failure option option =
  if payload = "ok" then Some None
  else
    match String.split_on_char '\n' payload with
    | "fail" :: f_check :: f_detail :: rest ->
      Some (Some { f_check; f_detail; f_program = String.concat "\n" rest })
    | _ -> None

(* Check tasks in index order, replaying journaled outcomes and
   journaling fresh ones write-through; stops at the earliest failure
   (exactly [check_sequential]'s semantics, so the reported
   counterexample is independent of where previous runs were killed). *)
(* raised between checks when a drain was requested; every completed
   check is already journaled write-through, so --resume continues
   from exactly the interruption point *)
exception Drained

let check_durable ~path ~resume ~stop ~fp (tasks : task array) :
  ((int * failure) option, string) result =
  let n = Array.length tasks in
  let pre =
    if not resume then Ok []
    else
      match Store.load ~path with
      | Error e -> Error e
      | Ok l ->
        if l.Store.l_manifest.Store.fingerprint <> fp then
          Error
            (path
             ^ ": fingerprint mismatch: the journal was written by a \
                different fuzz configuration (runs/seed/class)")
        else
          Ok
            (List.filter_map
               (fun (i, payload) ->
                  if i < 0 || i >= n then None
                  else
                    Option.map (fun o -> (i, payload, o))
                      (decode_outcome payload))
               l.Store.l_outcomes)
  in
  match pre with
  | Error e -> Error e
  | Ok pre ->
    let manifest =
      { Store.fingerprint = fp;
        meta = [ ("tasks", string_of_int n) ];
        tasks = List.init n (Printf.sprintf "task#%d") }
    in
    let store =
      Store.checkpoint ~path manifest (List.map (fun (i, p, _) -> (i, p)) pre)
    in
    let replayed = Hashtbl.create 64 in
    List.iter (fun (i, _, o) -> Hashtbl.replace replayed i o) pre;
    if resume then
      Printf.eprintf "ldx_fuzz: %s: replaying %d/%d checked tasks\n%!" path
        (Hashtbl.length replayed) n;
    Fun.protect ~finally:(fun () -> Store.close store) @@ fun () ->
    let rec go i =
      if i >= n then None
      else
        let o =
          match Hashtbl.find_opt replayed i with
          | Some o -> o
          | None ->
            if stop () then raise Drained;
            let o = check_task tasks.(i) in
            Store.append store i (encode_outcome o);
            o
        in
        match o with Some f -> Some (i, f) | None -> go (i + 1)
    in
    Ok (go 0)

let runs_arg =
  Arg.(value & opt int 500 & info [ "runs" ] ~docv:"N" ~doc:"Programs per class.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Check programs over $(docv) domains.  The reported \
               counterexample (if any) is the same for every job count.")

let chaos_arg =
  Arg.(value & flag
       & info [ "chaos" ]
         ~doc:"Chaos mode: pair each generated program with a random \
               deterministic fault plan (error returns, short reads, \
               drops, clock skew) and check that zero sources still \
               yields zero reports — any leak is a false positive in \
               the causality inference.")

let incremental_arg =
  Arg.(value & flag
       & info [ "incremental" ]
         ~doc:"Incremental-campaign mode: for each generated program \
               (sequential and concurrent), run a strategy-sweep \
               campaign with full slave passes and again with \
               decouple-point snapshots replaying only each task's \
               suffix, and check the rendered tables are \
               byte-identical.  Any difference is a snapshot \
               soundness bug.")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
         ~doc:"Journal each check's outcome to $(docv) (checksummed, \
               flushed per record) so a long soak run killed at any \
               point resumes with --resume.  Checks run sequentially \
               when journaling.")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
         ~doc:"With --journal: replay journaled outcomes and check only \
               the tasks that never made it to disk.  Requires the same \
               --runs/--seed/--chaos as the journaled run.")

let sched_explore_arg =
  Arg.(value & opt (some int) None
       & info [ "sched-explore" ] ~docv:"BOUND"
         ~doc:"Schedule-exploration mode: for every Table 4 concurrency \
               workload, enumerate interleavings with up to $(docv) \
               forced preemptions (iterative context bounding) and \
               check that zero-source runs report nothing under EVERY \
               explored schedule while the injected leak is detected \
               under every one.  Deterministic output; exits non-zero \
               on the first violation.")

(* Schedule-exploration mode: the schedule-lifted soundness sweep over
   the concurrency corpus.  Fully deterministic (the enumerator is
   breadth-first and seedless), so its output doubles as a regression
   fixture. *)
let explore_schedules bound =
  let violations = ref 0 in
  let total = ref 0 in
  Printf.printf "sched-explore: bound=%d, max-schedules=32\n" bound;
  List.iter
    (fun (w : Workload.t) ->
       let prog, _ = Workload.instrumented w in
       let clean =
         Sched_sweep.explore ~bound ~config:(Workload.no_mutation_config w)
           prog w.Workload.world
       in
       let leaky =
         Sched_sweep.explore ~bound ~config:(Workload.leak_config w) prog
           w.Workload.world
       in
       total := !total + clean.Sched_sweep.schedules + leaky.Sched_sweep.schedules;
       let clean_ok =
         clean.Sched_sweep.schedules > 1 && clean.Sched_sweep.leaks = 0
       in
       let leak_ok =
         leaky.Sched_sweep.schedules > 1
         && leaky.Sched_sweep.leaks = leaky.Sched_sweep.schedules
       in
       if not (clean_ok && leak_ok) then incr violations;
       Printf.printf
         "%-8s: zero-source %s on %d schedules; leak under %d/%d schedules%s\n"
         w.Workload.name
         (if clean.Sched_sweep.leaks = 0 then "clean" else "LEAKED")
         clean.Sched_sweep.schedules leaky.Sched_sweep.leaks
         leaky.Sched_sweep.schedules
         (if clean_ok && leak_ok then "" else "  <- VIOLATION"))
    Registry.concurrency;
  if !violations = 0 then begin
    Printf.printf
      "ok: %d workloads, %d schedules explored, schedule invariants hold\n"
      (List.length Registry.concurrency)
      !total;
    `Ok ()
  end
  else `Error (false, "schedule invariant violated")

let fuzz runs seed jobs chaos incremental sched_explore journal resume =
  match sched_explore with
  | Some bound -> explore_schedules bound
  | None ->
  (* graceful drain for journaled runs: SIGTERM/SIGINT finish the
     in-flight check (already journaled write-through) and exit 21;
     --resume picks up from the interruption point.  Installed before
     generation so a drain during it is honoured too. *)
  let draining = Atomic.make false in
  (if journal <> None then begin
     let h = Sys.Signal_handle (fun _ -> Atomic.set draining true) in
     Sys.set_signal Sys.sigterm h;
     Sys.set_signal Sys.sigint h
   end);
  let rand = Random.State.make [| seed |] in
  let tasks =
    if chaos then make_chaos_tasks runs rand
    else if incremental then make_incr_tasks runs rand
    else make_tasks runs rand
  in
  let cls =
    if chaos then "chaos"
    else if incremental then "incremental"
    else "invariants"
  in
  let outcome =
    match journal with
    | Some path ->
      if jobs > 1 then
        prerr_endline "ldx_fuzz: --journal checks sequentially (--jobs ignored)";
      (match
         check_durable ~path ~resume
           ~stop:(fun () -> Atomic.get draining)
           ~fp:(fuzz_fingerprint ~runs ~seed ~cls) tasks
       with
       | outcome -> outcome
       | exception Drained ->
         Printf.eprintf
           "ldx_fuzz: drained on signal, progress journaled to %s\n%!" path;
         exit 21)
    | None ->
      if resume then Error "--resume requires --journal"
      else
        Ok
          (if jobs <= 1 then check_sequential tasks
           else check_parallel ~jobs tasks)
  in
  match outcome with
  | Error e -> `Error (false, e)
  | Ok None ->
    Printf.printf "ok: %d %s checked, all invariants hold\n"
      (Array.length tasks)
      (if chaos then "(program, fault plan) pairs"
       else if incremental then "incremental-campaign programs"
       else "programs");
    `Ok ()
  | Ok (Some (i, f)) ->
    Printf.printf "FAILURE after %d programs\ncheck:  %s\ndetail: %s\n\n%s\n"
      i f.f_check f.f_detail f.f_program;
    `Error (false, "invariant violated")

let cmd =
  let info =
    Cmd.info "ldx_fuzz" ~doc:"Fuzz the LDX alignment invariants"
  in
  Cmd.v info
    Term.(
      ret
        (const fuzz $ runs_arg $ seed_arg $ jobs_arg $ chaos_arg
         $ incremental_arg $ sched_explore_arg $ journal_arg $ resume_arg))

let () = exit (Cmd.eval cmd)
