(* ldx_run: dual-execute a MiniC program file under LDX.

     dune exec bin/ldx_run.exe -- prog.minic \
       --file /data/in=secret --endpoint srv=hello,world \
       --source recv --sink network

   Runs the master against the described world, spawns the mutated slave,
   and prints the causality report. *)

open Cmdliner
module Engine = Ldx_core.Engine
module Mutation = Ldx_core.Mutation
module World = Ldx_osim.World
module Sched = Ldx_sched.Scheduler
module Schedule = Ldx_sched.Schedule

let split_once ch s =
  match String.index_opt s ch with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let prog_file =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"PROGRAM.minic")

let workload_arg =
  let doc =
    "Run a registry workload (e.g. 403.gcc, 473.astar) instead of a \
     program file: its world, sources, sinks and strategy come from the \
     registry entry's leak configuration."
  in
  Arg.(value & opt (some string) None
       & info [ "workload" ] ~docv:"NAME" ~doc)

let files =
  let doc = "Add a file to the simulated world: PATH=CONTENTS (repeatable)." in
  Arg.(value & opt_all string [] & info [ "file" ] ~docv:"PATH=DATA" ~doc)

let endpoints =
  let doc =
    "Add a network endpoint: NAME=MSG1,MSG2,... (inbound script, repeatable)."
  in
  Arg.(value & opt_all string [] & info [ "endpoint" ] ~docv:"NAME=MSGS" ~doc)

let sources =
  let doc =
    "Source syscalls to mutate in the slave, e.g. 'recv' or \
     'read@/etc/secret' (syscall@resource-substring, repeatable)."
  in
  Arg.(value & opt_all string [ "recv" ] & info [ "source" ] ~docv:"SPEC" ~doc)

let sink =
  let doc = "Sink set: network | files | outputs | attack." in
  Arg.(value & opt string "outputs" & info [ "sink" ] ~docv:"KIND" ~doc)

let strategy =
  let doc = "Mutation strategy: off-by-one | bitflip | zero | random." in
  Arg.(value & opt string "off-by-one" & info [ "strategy" ] ~docv:"NAME" ~doc)

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print per-sink reports.")

let trace =
  Arg.(value & flag
       & info [ "trace" ]
         ~doc:"Print the side-by-side aligned syscall trace (Fig. 3 style).")

let dot =
  Arg.(value & flag
       & info [ "dot" ]
         ~doc:"Print the instrumented program's CFGs as Graphviz and exit.")

let attribute =
  Arg.(value & flag
       & info [ "attribute" ]
         ~doc:"Record one master pass, then run one isolated-source slave \
               pass per source and print which source each flagged sink \
               depends on.")

let sweep_strategies =
  Arg.(value & flag
       & info [ "sweep-strategies" ]
         ~doc:"Record one master pass, then run one slave pass per \
               mutation strategy and print the comparison table \
               (Sec. 8.3 study).")

let sweep_seeds =
  Arg.(value & opt (some int) None
       & info [ "sweep-seeds" ] ~docv:"N"
         ~doc:"Record one master pass, then run one slave pass per \
               slave scheduler seed 0..N-1 and print the comparison \
               table.  The single-process reference for the \
               ldx_campaignd service (identical task list and table).")

let jobs =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Fan campaign slave passes (attribution, strategy sweeps) \
               out over $(docv) domains.  Results are identical to a \
               sequential run.")

let final_state =
  Arg.(value & flag
       & info [ "final-state" ]
         ~doc:"Also diff the two filesystems (contents and mtimes) after \
               the run.")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Record the run and write a Chrome trace-event JSON dual \
               timeline (master and slave tracks, flow arrows on coupled \
               syscalls) to $(docv) — load it in Perfetto or \
               chrome://tracing.")

let profile_flag =
  Arg.(value & flag
       & info [ "profile" ]
         ~doc:"Attach deterministic cost-attribution profiles to both \
               executions and print the ranked report (per-opcode, \
               per-CFG-block, per-syscall and engine coupling \
               categories in virtual cycles).  Profiling never perturbs \
               the run: verdicts and engine counters are bit-identical \
               with it on or off.")

let profile_json =
  Arg.(value & opt (some string) None
       & info [ "profile-json" ] ~docv:"FILE"
         ~doc:"Write the profile as JSON (schema ldx-prof/1) to $(docv) \
               — renderable and diffable later with ldx_prof.")

let profile_folded =
  Arg.(value & opt (some string) None
       & info [ "profile-folded" ] ~docv:"FILE"
         ~doc:"Write the profile as folded stacks \
               (side;function;block cycles) to $(docv), ready for \
               flamegraph.pl.")

let progress =
  Arg.(value & flag
       & info [ "progress" ]
         ~doc:"Campaign modes: print a live status line to stderr from \
               the campaign's heartbeat events (completed/total tasks, \
               virtual cycles done, cycle-based ETA).")

let metrics =
  Arg.(value & flag
       & info [ "metrics" ]
         ~doc:"Record the run and print the metrics tables (overhead \
               accounting, counters, histograms).")

let metrics_json =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
         ~doc:"Record the run and write the metrics snapshot (plus the \
               cycle-cost model) as JSON to $(docv).")

let faults =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPEC"
         ~doc:"Inject deterministic environment faults in BOTH executions: \
               comma-separated rules ACTION:SYSCALL[@NTH][#SITE][%PROB] \
               where ACTION is error[=INT] | eof | short=K | transient | \
               drop | skew=D, e.g. 'short=2:read@1,drop:recv%50'.  The \
               same seeded plan drives master and slave, so coupling is \
               preserved and zero sources still means zero reports.")

let fault_seed =
  Arg.(value & opt int 0
       & info [ "fault-seed" ] ~docv:"N"
         ~doc:"Seed for probabilistic (%-rules) fault coins; the plan is \
               fully deterministic given the seed.")

let sched_policy =
  Arg.(value & opt (some string) None
       & info [ "sched" ] ~docv:"POLICY"
         ~doc:"Thread scheduling policy for BOTH executions: rr \
               (round-robin, the default) | random | prio:T=P,... \
               (spawn-index priorities).  Every policy is \
               bit-reproducible from --sched-seed.")

let sched_seed =
  Arg.(value & opt int 0
       & info [ "sched-seed" ] ~docv:"N"
         ~doc:"Seed for the --sched policy (pick/quantum hashes).")

let sched_replay =
  Arg.(value & opt (some file) None
       & info [ "sched-replay" ] ~docv:"FILE"
         ~doc:"Replay a schedule recorded with --sched-record in BOTH \
               executions (overrides --sched).")

let sched_record =
  Arg.(value & opt (some string) None
       & info [ "sched-record" ] ~docv:"FILE"
         ~doc:"Record the master's scheduling decisions and write the \
               schedule log to $(docv) (replayable via --sched-replay).")

let journal_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
         ~doc:"With --sweep-strategies: persist the campaign manifest to \
               $(docv) and append each task outcome as it completes \
               (checksummed, flushed).  A campaign killed at any point \
               continues with --resume.")

let resume_arg =
  Arg.(value & flag
       & info [ "resume" ]
         ~doc:"With --journal: resume the campaign from the journal — \
               replay recorded outcomes verbatim and run only the \
               missing tasks.  The rendered table is byte-identical to \
               an uninterrupted run.")

let task_deadline =
  Arg.(value & opt (some int) None
       & info [ "task-deadline" ] ~docv:"STEPS"
         ~doc:"Campaign modes: cap each slave task at $(docv) VM steps \
               (fuel-derived, so bit-deterministic — no wall clocks); a \
               task cut off below the configured budget finishes as \
               timed-out.")

let max_retries =
  Arg.(value & opt int 0
       & info [ "max-retries" ] ~docv:"N"
         ~doc:"Campaign modes: retry crashed/fuel-exhausted/timed-out \
               tasks up to $(docv) times under jittered slave seeds; a \
               task that crashes on every attempt is quarantined.")

let backoff =
  Arg.(value & opt int 1
       & info [ "backoff" ] ~docv:"BASE"
         ~doc:"Retry seed-jitter growth base: 1 = linear jitter \
               (default), larger = jitter grows BASE^(k-1) on retry k — \
               exponential backoff in seed space.")

let retry_budget =
  Arg.(value & opt (some int) None
       & info [ "retry-fuel-budget" ] ~docv:"STEPS"
         ~doc:"Cumulative VM-step budget one task may spend across all \
               its attempts; once spent, no further retries.")

let abort_after =
  Arg.(value & opt (some int) None
       & info [ "abort-after" ] ~docv:"N"
         ~doc:"Crash-simulation hook for resume testing: exit(17) when \
               the campaign starts its (N+1)-th slave pass, leaving \
               exactly the completed outcomes in the --journal.")

let sync_flag =
  Arg.(value & flag
       & info [ "sync" ]
         ~doc:"With --journal: fsync the journal on checkpoint and \
               every outcome append.  The default (off) survives \
               process crashes; --sync also survives power loss, at \
               one disk round-trip per task.")

let incremental_flag =
  Arg.(value & flag
       & info [ "incremental" ]
         ~doc:"Campaign modes: execute the shared slave prefix once, \
               snapshot at the first divergence-relevant decouple point \
               and replay only each task's suffix from the snapshot.  \
               The rendered table is byte-identical to a full campaign \
               at any --jobs; tasks whose effective config diverges \
               from the shared prefix (retry jitter, deadlines, custom \
               schedules) fall back to full slave passes automatically.")

let build_world files endpoints =
  let w = ref World.empty in
  List.iter
    (fun spec ->
       let path, data = split_once '=' spec in
       w := World.with_file path data !w)
    files;
  List.iter
    (fun spec ->
       let name, msgs = split_once '=' spec in
       let script = if msgs = "" then [] else String.split_on_char ',' msgs in
       w := World.with_endpoint name script !w)
    endpoints;
  !w

let parse_sources specs =
  List.map
    (fun spec ->
       let sys, arg = split_once '@' spec in
       Engine.source ~sys ?arg:(if arg = "" then None else Some arg) ())
    specs

let parse_sinks = function
  | "network" -> Ok Engine.Network_outputs
  | "files" -> Ok Engine.File_outputs
  | "outputs" -> Ok Engine.Output_syscalls
  | "attack" -> Ok Engine.Attack_sinks
  | s -> Error (Printf.sprintf "unknown sink set %S" s)

let parse_strategy = function
  | "off-by-one" -> Ok Mutation.Off_by_one
  | "bitflip" -> Ok Mutation.Bitflip
  | "zero" -> Ok Mutation.Zero
  | "random" -> Ok (Mutation.Random_replace 7)
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

let run prog_file workload files endpoints sources sink strategy verbose trace
    dot attribute sweep_strategies sweep_seeds jobs final_state trace_out
    metrics metrics_json profile_flag profile_json profile_folded progress
    faults fault_seed sched_policy sched_seed sched_replay sched_record journal
    resume task_deadline max_retries backoff retry_budget abort_after sync
    incremental
  =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> `Error (false, e) in
  let* sinks = parse_sinks sink in
  let* strategy = parse_strategy strategy in
  let* fault_plan =
    match faults with
    | None -> Ok None
    | Some spec ->
      (match Ldx_osim.Fault.parse ~seed:fault_seed spec with
       | Ok plan -> Ok (Some plan)
       | Error e -> Error ("bad --faults spec: " ^ e))
  in
  let* sched_spec =
    (* one spec drives both executions, so alignment is preserved under
       any policy (a schedule is input, not a perturbation) *)
    match sched_replay with
    | Some path ->
      let text = In_channel.with_open_text path In_channel.input_all in
      (match Schedule.of_string text with
       | Ok s -> Ok (Some (Sched.spec ~seed:sched_seed (Sched.Replay s)))
       | Error e -> Error (Printf.sprintf "bad --sched-replay %s: %s" path e))
    | None ->
      (match sched_policy with
       | None -> Ok None
       | Some pol ->
         (match Sched.policy_of_string pol with
          | Ok p -> Ok (Some (Sched.spec ~seed:sched_seed p))
          | Error e -> Error ("bad --sched policy: " ^ e)))
  in
  let* input =
    match (workload, prog_file) with
    | Some _, Some _ -> Error "give PROGRAM.minic or --workload, not both"
    | None, None -> Error "a PROGRAM.minic argument or --workload is required"
    | None, Some path ->
      Ok (`Src (In_channel.with_open_text path In_channel.input_all))
    | Some name, None ->
      (match Ldx_workloads.Registry.find name with
       | Some w -> Ok (`Workload w)
       | None -> Error (Printf.sprintf "unknown workload %S" name))
  in
  let world =
    match input with
    | `Workload w -> w.Ldx_workloads.Workload.world
    | `Src _ -> build_world files endpoints
  in
  let base_config =
    match input with
    | `Workload w -> Ldx_workloads.Workload.leak_config w
    | `Src _ ->
      { Engine.default_config with
        Engine.sources = parse_sources sources;
        sinks;
        strategy }
  in
  let config =
    { base_config with
      Engine.record_trace = trace;
      check_final_state = final_state;
      faults = fault_plan;
      master_sched = sched_spec;
      slave_sched = sched_spec;
      record_sched = sched_record <> None }
  in
  (* lowering shared by every mode: a registry workload arrives already
     instrumented; a source file is lowered and instrumented here *)
  let lowered () =
    match input with
    | `Workload w -> Ok (fst (Ldx_workloads.Workload.instrumented w))
    | `Src src ->
      (match Ldx_cfg.Lower.lower_source src with
       | exception Failure msg -> Error msg
       | prog -> Ok (fst (Ldx_instrument.Counter.instrument prog)))
  in
  let recorder =
    if trace_out <> None || metrics || metrics_json <> None then
      Some (Ldx_obs.Recorder.create ())
    else None
  in
  let progress_sink =
    if progress then
      Some
        (Ldx_obs.Sink.of_fn (function
           | Ldx_obs.Event.Campaign_progress
               { completed; total; cycles_done; eta_cycles } ->
             Printf.eprintf "\r[%d/%d] cycles=%d eta=%d%s%!" completed total
               cycles_done eta_cycles
               (if completed >= total then "\n" else "")
           | _ -> ()))
    else None
  in
  let obs =
    match (Option.map Ldx_obs.Recorder.sink recorder, progress_sink) with
    | None, None -> None
    | (Some _ as s), None -> s
    | None, (Some _ as p) -> p
    | Some s, Some p -> Some (Ldx_obs.Sink.tee [ s; p ])
  in
  let prof =
    if profile_flag || profile_json <> None || profile_folded <> None then
      Some (Engine.fresh_profiles ())
    else None
  in
  let emit_profile () =
    match prof with
    | None -> `Ok ()
    | Some pp ->
      (try
         let d =
           Ldx_prof.Report.of_profiles ~master:pp.Engine.prof_master
             ~slave:pp.Engine.prof_slave
         in
         (match profile_json with
          | Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc
                  (Ldx_obs.Json.to_string (Ldx_prof.Report.to_json d));
                output_char oc '\n');
            Printf.printf "profile JSON written to %s\n" path
          | None -> ());
         (match profile_folded with
          | Some path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Ldx_prof.Report.folded d));
            Printf.printf "folded stacks written to %s\n" path
          | None -> ());
         if profile_flag then begin
           print_newline ();
           print_string (Ldx_prof.Report.render d)
         end;
         `Ok ()
       with Sys_error msg -> `Error (false, msg))
  in
  (* observability output shared by the campaign modes and plain runs *)
  let emit_observability () =
    match recorder with
    | None -> `Ok ()
    | Some rc ->
      (try
         let write_file path data =
           Out_channel.with_open_text path (fun oc -> output_string oc data)
         in
         (match trace_out with
          | Some path ->
            write_file path
              (Ldx_obs.Chrome_trace.to_string (Ldx_obs.Recorder.events rc));
            Printf.printf "dual-timeline trace written to %s\n" path
          | None -> ());
         let snap = Ldx_obs.Recorder.snapshot rc in
         (match metrics_json with
          | Some path ->
            write_file path
              (Ldx_obs.Json.to_string
                 (Ldx_obs.Json.Obj
                    [ ("metrics", Ldx_obs.Metrics.to_json snap);
                      ( "cost_model",
                        Ldx_obs.Json.Obj
                          (List.map
                             (fun (k, v) -> (k, Ldx_obs.Json.Int v))
                             (Ldx_vm.Cost.to_assoc ())) ) ]));
            Printf.printf "metrics JSON written to %s\n" path
          | None -> ());
         if metrics then begin
           print_newline ();
           print_string (Ldx_report.Obs_report.render snap)
         end;
         `Ok ()
       with Sys_error msg -> `Error (false, msg))
  in
  let retry =
    if max_retries = 0 && retry_budget = None then None
    else
      Some
        { Ldx_core.Campaign.no_retries with
          Ldx_core.Campaign.max_retries;
          backoff;
          fuel_budget = retry_budget;
          quarantine = max_retries > 0 }
  in
  (* the crash-simulation hook: completes the first N slave passes (and
     their journal appends), then dies as a killed process would *)
  let abort_runner =
    Option.map
      (fun n ->
         let count = Atomic.make 0 in
         fun ?obs cfg prog world mo ->
           if Atomic.fetch_and_add count 1 >= n then begin
             prerr_endline "ldx_run: --abort-after reached, aborting";
             exit 17
           end;
           Engine.run_with_master ?obs cfg prog world mo)
      abort_after
  in
  if dot then begin
    match lowered () with
    | Error msg -> `Error (false, msg)
    | Ok prog ->
      print_string (Ldx_cfg.Dot.program_to_dot prog);
      `Ok ()
  end
  else if attribute then begin
    match lowered () with
    | Error msg -> `Error (false, msg)
    | Ok prog ->
      let attrs =
        Ldx_core.Attribute.per_source ~config ~jobs ?obs ?retry
          ?deadline:task_deadline ~incremental prog world
      in
      print_string (Ldx_core.Attribute.render attrs);
      emit_observability ()
  end
  else if sweep_strategies || sweep_seeds <> None then begin
    match lowered () with
    | Error msg -> `Error (false, msg)
    | Ok prog ->
      let params =
        match sweep_seeds with
        | Some n ->
          Ldx_core.Campaign.of_seeds config (List.init (max 0 n) Fun.id)
        | None ->
          Ldx_core.Campaign.of_strategies config
            Ldx_core.Mutation.all_strategies
      in
      (* graceful drain for journaled campaigns: the handler flips a
         flag, the campaign stops claiming new tasks (in-flight tasks
         finish and are journaled), and we exit 21 — a later --resume
         picks up exactly the missing tasks.  Without a journal the
         default signal behaviour (die, lose the run) is unchanged. *)
      let draining = Atomic.make false in
      if journal <> None then begin
        let h = Sys.Signal_handle (fun _ -> Atomic.set draining true) in
        Sys.set_signal Sys.sigterm h;
        Sys.set_signal Sys.sigint h
      end;
      let stop () = Atomic.get draining in
      let outs =
        match (journal, resume) with
        | None, true -> Error "--resume requires --journal"
        | Some path, true ->
          (match
             Ldx_core.Campaign.resume ~jobs ?obs ?retry
               ?deadline:task_deadline ?runner:abort_runner ~journal:path
               ~stop ~sync ~incremental ~config prog world params
           with
           | Ok outs ->
             Printf.eprintf "resumed campaign from %s\n%!" path;
             Ok outs
           | Error e -> Error e)
        | _, false ->
          Ok
            (Ldx_core.Campaign.run ~jobs ?obs ?retry ?deadline:task_deadline
               ?runner:abort_runner ?journal ~stop ~sync ~incremental ~config
               prog world params)
      in
      (match outs with
       | Error e -> `Error (false, e)
       | Ok outs ->
         if Atomic.get draining then begin
           Printf.eprintf
             "ldx_run: drained on signal, progress journaled to %s\n%!"
             (Option.value journal ~default:"-");
           exit 21
         end;
         print_string (Ldx_core.Campaign.render outs);
         (match journal with
          | Some path -> Printf.eprintf "campaign journal: %s\n%!" path
          | None -> ());
         emit_observability ())
  end
  else
  let ran =
    match input with
    | `Src src ->
      (match Engine.run_source ~config ?obs ?prof src world with
       | exception Failure msg -> Error msg
       | r -> Ok r)
    | `Workload _ ->
      (match lowered () with
       | Error msg -> Error msg
       | Ok prog ->
         (match Engine.run ~config ?obs ?prof prog world with
          | exception Failure msg -> Error msg
          | r -> Ok r))
  in
  match ran with
  | Error msg -> `Error (false, msg)
  | Ok r ->
    let trap_suffix (s : Engine.exec_summary) =
      match s.Engine.trap with
      | None -> ""
      | Some m ->
        Printf.sprintf ", TRAP(%s): %s"
          (Engine.failure_class_to_string (Engine.classify_trap (Some m)))
          m
    in
    Printf.printf "master: %d syscalls, %d cycles%s\n"
      r.Engine.master.Engine.syscalls r.Engine.master.Engine.cycles
      (trap_suffix r.Engine.master);
    Printf.printf "slave:  %d syscalls, %d cycles%s\n"
      r.Engine.slave.Engine.syscalls r.Engine.slave.Engine.cycles
      (trap_suffix r.Engine.slave);
    if fault_plan <> None then
      Printf.printf "faults injected: master %d, slave %d\n"
        r.Engine.master.Engine.faults_injected
        r.Engine.slave.Engine.faults_injected;
    Printf.printf "mutated inputs: %d, syscall differences: %d/%d\n"
      r.Engine.mutated_inputs r.Engine.syscall_diffs r.Engine.total_syscalls;
    if r.Engine.leak then begin
      Printf.printf
        "CAUSALITY DETECTED: %d tainted sink(s) of %d dynamic sinks\n"
        r.Engine.tainted_sinks r.Engine.total_sinks;
      if verbose then
        List.iter
          (fun rep -> print_endline ("  " ^ Engine.report_to_string rep))
          r.Engine.reports
    end
    else
      Printf.printf "no causality: sinks are independent of the sources\n";
    if trace then begin
      Printf.printf "\nAligned trace (master | slave):\n";
      print_string (Ldx_report.Trace_view.render r.Engine.trace)
    end;
    (try
       (match (sched_record, r.Engine.master_schedule) with
        | Some path, Some s ->
          Out_channel.with_open_text path (fun oc ->
              output_string oc (Schedule.to_string s));
          Printf.printf "schedule written to %s (%d decisions)\n" path
            (Array.length s)
        | _ -> ());
       match emit_profile () with
       | `Ok () -> emit_observability ()
       | e -> e
     with Sys_error msg -> `Error (false, msg))

let cmd =
  let info =
    Cmd.info "ldx_run" ~doc:"Dual-execute a MiniC program under LDX"
  in
  Cmd.v info
    Term.(
      ret
        (const run $ prog_file $ workload_arg $ files $ endpoints $ sources
         $ sink $ strategy $ verbose $ trace $ dot $ attribute
         $ sweep_strategies $ sweep_seeds $ jobs $ final_state $ trace_out
         $ metrics $ metrics_json $ profile_flag $ profile_json
         $ profile_folded $ progress $ faults $ fault_seed $ sched_policy
         $ sched_seed $ sched_replay $ sched_record $ journal_arg $ resume_arg
         $ task_deadline $ max_retries $ backoff $ retry_budget
         $ abort_after $ sync_flag $ incremental_flag))

let () = exit (Cmd.eval cmd)
