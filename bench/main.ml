(* Benchmark harness: one Bechamel test per paper table/figure, plus
   engine micro-benchmarks and the ablations, followed by a full
   regeneration of the evaluation tables.

     dune exec bench/main.exe

   The Bechamel numbers measure the *reproduction's* real wall time per
   experiment kernel (host-machine performance of this OCaml engine);
   the tables printed afterwards carry the paper's simulated metrics. *)

open Bechamel
open Toolkit
module Engine = Ldx_core.Engine
module Sched_sweep = Ldx_core.Sched_sweep
module Workload = Ldx_workloads.Workload
module Registry = Ldx_workloads.Registry
module Experiments = Ldx_report.Experiments
module Counter = Ldx_instrument.Counter
module Align = Ldx_core.Align

(* LDX_BENCH_SMOKE=1 shrinks every iteration count to a CI-sized smoke
   run: same kernels, same BENCH_results.json schema, seconds instead of
   minutes — schema breakage shows up in CI, wall times are only
   meaningful in full runs. *)
let smoke = Sys.getenv_opt "LDX_BENCH_SMOKE" <> None

(* LDX_BENCH_ONLY=SUBSTR (or a single argv argument) restricts the run
   to kernels whose name contains SUBSTR — a quick inner loop when
   optimizing one kernel.  Filtered runs print wall times only:
   BENCH_results.json and BENCH_history.jsonl are not touched, so the
   committed baseline and the history always describe full runs. *)
let bench_only =
  match Sys.getenv_opt "LDX_BENCH_ONLY" with
  | Some s when s <> "" -> Some s
  | _ -> if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None

(* ------------------------------------------------------------------ *)
(* Kernels.                                                            *)

let instrument_all () =
  List.iter (fun w -> ignore (Workload.instrumented w)) Registry.all

(* Pre-instrumented programs so dual-run kernels measure the engine,
   not the compiler. *)
let prepared =
  lazy
    (List.map
       (fun (w : Workload.t) -> (w, fst (Workload.instrumented w)))
       Registry.all)

let prepared_for cat =
  List.filter (fun ((w : Workload.t), _) -> w.Workload.category = cat)
    (Lazy.force prepared)

let dual_run (w, prog) config =
  ignore (Engine.run ~config prog w.Workload.world)

let kernel_fig6 () =
  List.iter
    (fun ((w, _) as p) ->
       dual_run p (Workload.no_mutation_config w);
       dual_run p (Workload.leak_config w))
    (List.filter
       (fun ((w : Workload.t), _) -> not w.Workload.interactive)
       (Lazy.force prepared))

let kernel_table2 () =
  List.iter
    (fun ((w, _) as p) ->
       dual_run p (Workload.leak_config w);
       match Workload.benign_config w with
       | Some c -> dual_run p c
       | None -> ())
    (prepared_for Workload.Leak_detection)

let kernel_table3 () =
  List.iter
    (fun ((w : Workload.t), _) ->
       let config =
         { Ldx_taint.Tracker.model = Ldx_taint.Shadow.Taintgrind;
           sources = w.Workload.leak_sources;
           sinks = w.Workload.sinks;
           max_steps = 30_000_000 }
       in
       ignore (Ldx_taint.Tracker.run ~config (Workload.lower w) w.Workload.world))
    (Lazy.force prepared)

let kernel_table4 () =
  List.iter
    (fun ((w, _) as p) ->
       for i = 1 to 5 do
         dual_run p
           { (Workload.leak_config w) with
             Engine.master_seed = i;
             slave_seed = 1000 + i }
       done)
    (prepared_for Workload.Concurrency)

let kernel_case_studies () =
  ignore (Experiments.case_gcc ());
  ignore (Experiments.case_firefox ())

let kernel_fp_check () =
  ignore (Experiments.fp_check ())

let kernel_mutation () =
  let w = Registry.find_exn "Nginx" in
  let prog = fst (Workload.instrumented w) in
  List.iter
    (fun (_, strategy) ->
       dual_run (w, prog) (Workload.leak_config ~strategy w))
    Ldx_core.Mutation.all_strategies

(* Campaign kernel: one recorded master, strategies x slave seeds fanned
   out as independent slave passes — the many-mutants-per-program loop
   the campaign layer exists to batch.  Run at jobs=1 and jobs=4 so the
   wall-time comparison lands in both the Bechamel table and
   BENCH_results.json. *)
module Campaign = Ldx_core.Campaign

(* 473.astar is the heaviest dual run in the registry (~tens of ms per
   slave pass), so the fan-out dominates the fixed domain-spawn cost and
   the sequential-vs-parallel comparison measures the campaign, not the
   pool setup. *)
let campaign_prepared =
  lazy
    (let w = Registry.find_exn "473.astar" in
     (w, fst (Workload.instrumented w)))

let campaign_params (w : Workload.t) : Campaign.slave_params list =
  let base = Workload.leak_config w in
  List.concat_map
    (fun (name, strategy) ->
       List.map
         (fun seed ->
            { (Campaign.params_of_config base) with
              Campaign.label = Printf.sprintf "%s/seed=%d" name seed;
              strategy;
              slave_seed = seed })
         [ 0; 1; 2 ])
    Ldx_core.Mutation.all_strategies

let run_campaign ~jobs () =
  let w, prog = Lazy.force campaign_prepared in
  ignore
    (Campaign.run ~jobs ~config:(Workload.leak_config w) prog
       w.Workload.world (campaign_params w))

let kernel_campaign_sequential () = run_campaign ~jobs:1 ()
let kernel_campaign_parallel () = run_campaign ~jobs:4 ()

(* Durable-campaign kernel: the same master-sharing fan-out, but with a
   20-task seed sweep journaled write-through — the append+fsync-shaped
   cost the durability layer adds per task.  Compared against the
   unjournaled run in the JSON "durable" entry (acceptance: <= 5%). *)
let durable_params =
  lazy
    (let w, _ = Lazy.force campaign_prepared in
     Campaign.of_seeds (Workload.leak_config w) (List.init 20 Fun.id))

let run_durable ?journal () =
  let w, prog = Lazy.force campaign_prepared in
  ignore
    (Campaign.run ~jobs:1 ?journal ~config:(Workload.leak_config w) prog
       w.Workload.world (Lazy.force durable_params))

let kernel_campaign_journal () =
  let path = Filename.temp_file "ldx_bench" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> run_durable ~journal:path ())

(* Campaign-service kernel: the same fan-out as [kernel_campaign_parallel]
   but through the lease queue — N in-process workers (domains standing
   in for the service's worker processes; the claim/heartbeat/journal
   protocol is identical) sharing one recorded master.  The wall-time
   gap against the domain pool is the service tax: every task costs a
   claim append + re-read + outcome append instead of an in-memory
   channel push.  The worker count tracks host parallelism: the domain
   pool's [`Auto] mode resolves [~jobs:N] against the same
   [recommended_domain_count], so matching it keeps both sides running
   the same number of executing domains — a fixed count would, on a
   small host, compare a (sequential) pool against an oversubscribed
   multi-domain service and measure the scheduler, not the protocol. *)
let service_workers = max 1 (min 4 (Domain.recommended_domain_count ()))

(* Heartbeats default to off in-bench: an in-process worker domain
   cannot die without its join failing, so the beat proves nothing here
   — but its parked domain makes every minor GC a cross-domain
   rendezvous, a pure GC tax on single-core hosts.  The gated number
   isolates the queue protocol; [service_hb_s] reports the
   heartbeat-domain tax separately. *)
let run_campaign_service ?master ?(heartbeat_us = 0) ~path () =
  let w, prog = Lazy.force campaign_prepared in
  let config = Workload.leak_config w in
  let params = campaign_params w in
  (try Sys.remove path with Sys_error _ -> ());
  Campaign.Service.init ~path ~config prog w.Workload.world params;
  let doms =
    List.init service_workers (fun i ->
        Domain.spawn (fun () ->
            Campaign.Service.worker ?master ~path
              ~owner:(Printf.sprintf "bench%d" i) ~ttl_us:10_000_000
              ~heartbeat_us ~poll_us:1_000 ~config prog
              w.Workload.world params))
  in
  List.iter
    (fun d ->
       match Domain.join d with
       | Ok (`Complete | `Drained) -> ()
       | Error e -> failwith ("service bench: " ^ e))
    doms

let kernel_campaign_service () =
  let path = Filename.temp_file "ldx_bench" ".queue" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
       let w, prog = Lazy.force campaign_prepared in
       let master =
         Engine.master_pass (Workload.leak_config w) prog w.Workload.world
       in
       run_campaign_service ~master ~path ())

(* Incremental-campaign kernel: a long-prefix workload — the dominant
   source-free compute runs before the single recv source, so every
   mutation variant shares that prefix.  Full mode re-executes it once
   per task; incremental mode snapshots the slave at the decouple point
   and replays only each task's suffix.  The JSON "incremental" entry
   gates byte-identical tables and the >= 1.5x wall-time floor. *)
let incremental_src =
  "fn main() {\n\
   \  let acc = 0;\n\
   \  for (let i = 0; i < 60000; i = i + 1) {\n\
   \    acc = (acc * 31 + i) % 65521;\n\
   \  }\n\
   \  let c = socket(\"input\");\n\
   \  let m = recv(c);\n\
   \  if (atoi(m) + (acc % 7) > 40) { send(c, \"hot\"); }\n\
   \  else { send(c, \"cold\"); }\n\
   }\n"

let incremental_world =
  Ldx_osim.World.(empty |> with_endpoint "input" [ "57" ])

let incremental_config =
  { Engine.default_config with
    Engine.sources = [ Engine.source ~sys:"recv" () ];
    sinks = Engine.Network_outputs }

let incremental_prepared =
  lazy
    (fst
       (Counter.instrument
          (Ldx_cfg.Lower.lower_program
             (Ldx_lang.Parser.parse_exn incremental_src))))

(* 24 mutation variants sharing slave seed/trace/sched — the shape the
   prefix-sharing eligibility check wants, and above the 20-task
   acceptance floor.  Same task list in smoke and full runs: the gated
   fields are deterministic. *)
let incremental_params =
  List.init 24 (fun i ->
      { (Campaign.params_of_config incremental_config) with
        Campaign.label = Printf.sprintf "rr%02d" i;
        strategy = Ldx_core.Mutation.Random_replace i })

let run_incremental ?obs ~incremental () =
  Campaign.run ~jobs:1 ?obs ~incremental ~config:incremental_config
    (Lazy.force incremental_prepared) incremental_world incremental_params

let kernel_campaign_incremental () =
  ignore (run_incremental ~incremental:true ())

(* Schedule-sweep kernel: the Table 4 concurrency rows re-verified
   across bounded-exploration interleavings (>= 20 distinct schedules
   per workload at full size) — each explored schedule is one complete
   dual execution with the same Forced spec on both sides. *)
let sched_sweep_schedules = if smoke then 4 else 20

let sched_sweeps =
  lazy
    (List.map
       (fun ((w : Workload.t), prog) ->
          ( w,
            Sched_sweep.explore ~bound:2 ~max_schedules:sched_sweep_schedules
              ~config:(Workload.leak_config w) prog w.Workload.world ))
       (prepared_for Workload.Concurrency))

let kernel_sched_sweep () =
  List.iter
    (fun ((w : Workload.t), prog) ->
       ignore
         (Sched_sweep.explore ~bound:2 ~max_schedules:sched_sweep_schedules
            ~config:(Workload.leak_config w) prog w.Workload.world))
    (prepared_for Workload.Concurrency)

(* Chaos kernel: generated programs dual-run under random deterministic
   fault plans with ZERO sources — the robustness soak (every run must
   report no causality; the timed kernel doubles as an invariant
   check via the JSON entry below). *)
module Fault = Ldx_osim.Fault
module Gen_minic = Ldx_genprog.Gen_minic

let chaos_world =
  Ldx_osim.World.(
    empty
    |> with_endpoint "in" [ "3"; "14"; "15"; "9"; "2"; "6"; "5"; "35"; "8" ])

let chaos_prepared =
  lazy
    (let rand = Random.State.make [| 0xC0FFEE |] in
     let programs =
       QCheck2.Gen.generate ~n:(if smoke then 5 else 40) ~rand
         Gen_minic.gen_program
     in
     List.map
       (fun p ->
          let prog, _ =
            Counter.instrument (Ldx_cfg.Lower.lower_program p)
          in
          (prog, Fault.random ~rand ()))
       programs)

let chaos_config plan =
  { Engine.default_config with Engine.sources = []; faults = plan }

let kernel_chaos () =
  List.iter
    (fun (prog, plan) ->
       ignore (Engine.run ~config:(chaos_config (Some plan)) prog chaos_world))
    (Lazy.force chaos_prepared)

let kernel_ablation_align () =
  let w = Registry.find_exn "Tnftp" in
  let prog = fst (Workload.instrumented w) in
  ignore (Ldx_core.Tightlip.run ~config:(Workload.leak_config w) prog
            w.Workload.world);
  dual_run (w, prog) (Workload.leak_config w)

let kernel_ablation_loops () =
  let w = Registry.find_exn "400.perlbench" in
  List.iter
    (fun loop_reset ->
       let config = { Counter.default_config with Counter.loop_reset } in
       let prog, _ = Counter.instrument ~config (Workload.lower w) in
       match Workload.benign_config w with
       | Some c -> ignore (Engine.run ~config:c prog w.Workload.world)
       | None -> ())
    [ true; false ]

(* Micro-benchmarks of the engine's hot paths. *)
let kernel_position_compare =
  let a = [ { Align.cnt = 7; loops = [ (1, 3); (2, 0) ] };
            { Align.cnt = 2; loops = [] } ]
  and b = [ { Align.cnt = 7; loops = [ (1, 3); (2, 1) ] } ] in
  fun () ->
    for _ = 1 to 1000 do
      ignore (Align.compare a b);
      ignore (Align.compare b a);
      ignore (Align.compare a a)
    done

let kernel_counter_instrument =
  let prog = lazy (Workload.lower (Registry.find_exn "403.gcc")) in
  fun () -> ignore (Counter.instrument (Lazy.force prog))

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing.                                                  *)

let all_kernels =
  [ ("table1_instrumentation", Staged.stage instrument_all);
    ("fig6_overhead", Staged.stage kernel_fig6);
    ("table2_effectiveness", Staged.stage kernel_table2);
    ("table3_tainting", Staged.stage kernel_table3);
    ("table4_concurrency", Staged.stage kernel_table4);
    ("case_studies", Staged.stage kernel_case_studies);
    ("fp_check", Staged.stage kernel_fp_check);
    ("mutation_strategies", Staged.stage kernel_mutation);
    ("campaign_sequential", Staged.stage kernel_campaign_sequential);
    ("campaign_parallel", Staged.stage kernel_campaign_parallel);
    ("campaign_journal", Staged.stage kernel_campaign_journal);
    ("campaign_service", Staged.stage kernel_campaign_service);
    ("campaign_incremental", Staged.stage kernel_campaign_incremental);
    ("sched_sweep", Staged.stage kernel_sched_sweep);
    ("chaos_faults", Staged.stage kernel_chaos);
    ("ablation_alignment", Staged.stage kernel_ablation_align);
    ("ablation_loops", Staged.stage kernel_ablation_loops);
    ("micro_position_compare", Staged.stage kernel_position_compare);
    ("micro_counter_instrument", Staged.stage kernel_counter_instrument) ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let selected_kernels =
  match bench_only with
  | None -> all_kernels
  | Some f ->
    (match List.filter (fun (n, _) -> contains n f) all_kernels with
     | [] ->
       Printf.eprintf "LDX_BENCH_ONLY=%S matches no kernel; known kernels:\n"
         f;
       List.iter (fun (n, _) -> Printf.eprintf "  %s\n" n) all_kernels;
       exit 2
     | l -> l)

let tests =
  Test.make_grouped ~name:"ldx" ~fmt:"%s %s"
    (List.map (fun (n, k) -> Test.make ~name:n k) selected_kernels)

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:1 ~quota:(Time.second 0.01) ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let result_rows results =
  let rows = ref [] in
  Hashtbl.iter
    (fun _instance tbl ->
       Hashtbl.iter
         (fun name ols ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> e
              | Some [] | None -> nan
            in
            rows := (name, est) :: !rows)
         tbl)
    results;
  List.sort compare !rows

let print_results rows =
  Printf.printf "%-34s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 52 '-');
  List.iter
    (fun (name, est) ->
       let human =
         if Float.is_nan est then "n/a"
         else if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
         else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
         else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
         else Printf.sprintf "%.0f ns" est
       in
       Printf.printf "%-34s %16s\n" name human)
    rows

(* ------------------------------------------------------------------ *)
(* BENCH_results.json: machine-readable wall times plus the key engine
   counters of one recorded leak run per (non-interactive) workload. *)

module J = Ldx_obs.Json

let recorded_counters () =
  List.map
    (fun ((w : Workload.t), prog) ->
       let rc = Ldx_obs.Recorder.create () in
       let r =
         Engine.run ~config:(Workload.leak_config w)
           ~obs:(Ldx_obs.Recorder.sink rc) prog w.Workload.world
       in
       let snap = Ldx_obs.Recorder.snapshot rc in
       let c name = J.Int (Ldx_obs.Metrics.counter snap name) in
       ( w.Workload.name,
         J.Obj
           [ ("leak", J.Bool r.Engine.leak);
             ("tainted_sinks", J.Int r.Engine.tainted_sinks);
             ("master_syscalls", c "master.syscalls");
             ("slave_syscalls", c "slave.syscalls");
             ("copies", c "engine.copies");
             ("sink_compares", c "engine.sink_compares");
             ("mutations", c "engine.mutations");
             ("divergence_case1", c "divergence.case1");
             ("divergence_case2", c "divergence.case2");
             ("divergence_case3", c "divergence.case3");
             ("wall_cycles", c "run.wall_cycles") ] ))
    (List.filter
       (fun ((w : Workload.t), _) -> not w.Workload.interactive)
       (Lazy.force prepared))

(* Direct sequential-vs-parallel wall-time comparison of the campaign
   kernel (in addition to its Bechamel rows): one warm-up, then one
   timed run each, so the JSON carries an honest end-to-end speedup. *)
let campaign_comparison () =
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  run_campaign ~jobs:1 ();
  let sequential_s = time (run_campaign ~jobs:1) in
  let jobs = 4 in
  let parallel_s = time (run_campaign ~jobs) in
  let w, prog = Lazy.force campaign_prepared in
  (* which path [`Auto] actually chose at this job count on this host
     (an untimed probe run with a recording sink) *)
  let mode =
    let rc = Ldx_obs.Recorder.create () in
    ignore
      (Campaign.run ~jobs ~obs:(Ldx_obs.Recorder.sink rc)
         ~config:(Workload.leak_config w) prog w.Workload.world
         (campaign_params w));
    let snap = Ldx_obs.Recorder.snapshot rc in
    if Ldx_obs.Metrics.counter snap "campaign.mode.parallel" > 0 then
      "parallel"
    else "sequential"
  in
  J.Obj
    [ ("workload", J.Str w.Workload.name);
      ("tasks", J.Int (List.length (campaign_params w)));
      ("jobs", J.Int jobs);
      ("mode", J.Str mode);
      (* speedup only means something relative to the host's usable
         parallelism: on a single-core machine the parallel row measures
         pure domain overhead *)
      ("recommended_domains", J.Int (Domain.recommended_domain_count ()));
      ("sequential_s", J.Float sequential_s);
      ("parallel_s", J.Float parallel_s);
      ( "speedup",
        if parallel_s > 0. then J.Float (sequential_s /. parallel_s)
        else J.Null ) ]

(* Service entry: the cross-process campaign service's tax over the
   in-process domain pool on the same fan-out (acceptance: <= 10%,
   [service_overhead] <= 1.10).  [service_s] shares one recorded master
   across the workers (the supervisor-with-warm-cache shape);
   [service_cold_s] lets every worker record its own master — the true
   cold multi-process cost, reported but not gated. *)
let service_summary () =
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* min-of-3 on both sides: the ratio gates CI, and on a small shared
     host a single scheduler hiccup in either sample would decide it *)
  let best f =
    let t1 = time f in
    let t2 = time f in
    let t3 = time f in
    Float.min t1 (Float.min t2 t3)
  in
  let w, prog = Lazy.force campaign_prepared in
  let master =
    Engine.master_pass (Workload.leak_config w) prog w.Workload.world
  in
  let path = Filename.temp_file "ldx_bench" ".queue" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  run_campaign ~jobs:service_workers ();
  let parallel_s = best (fun () -> run_campaign ~jobs:service_workers ()) in
  run_campaign_service ~master ~path ();
  let service_s = best (fun () -> run_campaign_service ~master ~path ()) in
  let service_hb_s =
    time (fun () -> run_campaign_service ~master ~heartbeat_us:1_000_000 ~path ())
  in
  let service_cold_s = time (fun () -> run_campaign_service ~path ()) in
  J.Obj
    [ ("workload", J.Str w.Workload.name);
      ("tasks", J.Int (List.length (campaign_params w)));
      ("workers", J.Int service_workers);
      ("parallel_s", J.Float parallel_s);
      ("service_s", J.Float service_s);
      ( "service_overhead",
        if parallel_s > 0. then J.Float (service_s /. parallel_s)
        else J.Null );
      ("service_hb_s", J.Float service_hb_s);
      ("service_cold_s", J.Float service_cold_s) ]

(* Chaos entry: the same (program, plan) sweep as the Bechamel kernel,
   but counting false positives (any leak/report/diff under zero
   sources) and comparing faulted against fault-free wall time — the
   injection machinery's overhead on the dual-execution hot path. *)
let chaos_summary () =
  let pairs = Lazy.force chaos_prepared in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let sweep plan_of () =
    List.iter
      (fun (prog, plan) ->
         ignore
           (Engine.run ~config:(chaos_config (plan_of plan)) prog chaos_world))
      pairs
  in
  sweep (fun p -> Some p) ();
  let baseline_s = time (sweep (fun _ -> None)) in
  let chaos_s = time (sweep (fun p -> Some p)) in
  let false_positives =
    List.fold_left
      (fun acc (prog, plan) ->
         let r = Engine.run ~config:(chaos_config (Some plan)) prog chaos_world in
         if r.Engine.leak || r.Engine.reports <> [] || r.Engine.syscall_diffs <> 0
         then acc + 1
         else acc)
      0 pairs
  in
  let plans = List.length pairs in
  J.Obj
    [ ("plans", J.Int plans);
      ("false_positives", J.Int false_positives);
      ("fp_rate", J.Float (float_of_int false_positives /. float_of_int plans));
      ("baseline_s", J.Float baseline_s);
      ("chaos_s", J.Float chaos_s);
      ( "chaos_overhead",
        if baseline_s > 0. then J.Float (chaos_s /. baseline_s) else J.Null ) ]

(* Durable entry: the journal's write-through cost on the campaign
   kernel (acceptance: <= 5% overhead), plus the resume experiment —
   journal a 20-task seed sweep, truncate to the first 10 outcomes
   (a kill at a record boundary), and resume: only the unjournaled
   half may re-run, pinned by the store.* counters recorded here. *)
let truncate_journal path keep =
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
  in
  let kept = ref 0 in
  let keep_line l =
    if String.length l = 0 then false
    else if l.[0] = 'o' then (
      incr kept;
      !kept <= keep)
    else true
  in
  let out = List.filter keep_line lines in
  Out_channel.with_open_bin path (fun oc ->
      List.iter
        (fun l ->
           output_string oc l;
           output_char oc '\n')
        out)

let durable_summary () =
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let w, prog = Lazy.force campaign_prepared in
  let config = Workload.leak_config w in
  let params = Lazy.force durable_params in
  let path = Filename.temp_file "ldx_bench" ".journal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let run ?journal () =
    ignore (Campaign.run ~jobs:1 ?journal ~config prog w.Workload.world params)
  in
  run ();
  let baseline_s = time (fun () -> run ()) in
  let journaled_s = time (fun () -> run ~journal:path ()) in
  (* the ?sync knob: same journaled run with fsync-per-append — the
     power-loss-durability tax, recorded as a delta over buffered
     journaling *)
  let journaled_sync_s =
    time (fun () ->
        ignore
          (Campaign.run ~jobs:1 ~journal:path ~sync:true ~config prog
             w.Workload.world params))
  in
  truncate_journal path 10;
  let rc = Ldx_obs.Recorder.create () in
  let resume_s =
    time (fun () ->
        match
          Campaign.resume ~jobs:1 ~obs:(Ldx_obs.Recorder.sink rc) ~journal:path
            ~config prog w.Workload.world params
        with
        | Ok _ -> ()
        | Error e -> failwith ("durable bench: resume rejected: " ^ e))
  in
  let snap = Ldx_obs.Recorder.snapshot rc in
  let c name = Ldx_obs.Metrics.counter snap name in
  J.Obj
    [ ("workload", J.Str w.Workload.name);
      ("tasks", J.Int (List.length params));
      ("baseline_s", J.Float baseline_s);
      ("journaled_s", J.Float journaled_s);
      ( "journal_overhead",
        if baseline_s > 0. then J.Float (journaled_s /. baseline_s)
        else J.Null );
      ("journaled_sync_s", J.Float journaled_sync_s);
      ( "sync_overhead",
        if journaled_s > 0. then J.Float (journaled_sync_s /. journaled_s)
        else J.Null );
      ("resume_replayed", J.Int (c "store.replayed"));
      ("resume_rerun", J.Int (c "store.rerun"));
      ("resume_s", J.Float resume_s);
      ( "resume_saving",
        if journaled_s > 0. then J.Float (1. -. (resume_s /. journaled_s))
        else J.Null ) ]

(* Incremental entry: the long-prefix campaign run with full slave
   passes and with decouple-point snapshots, timed (min-of-3: the ratio
   gates CI) and byte-compared.  Deterministic fields — task count,
   whether a decouple point was found, the shared prefix cycles, table
   identity — are gated exactly; the speedup gates against the 1.5x
   floor in wall-time-checking runs. *)
let incremental_summary () =
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let best f =
    let t1 = time f in
    let t2 = time f in
    let t3 = time f in
    Float.min t1 (Float.min t2 t3)
  in
  ignore (run_incremental ~incremental:false ());
  let baseline_s = best (fun () -> run_incremental ~incremental:false ()) in
  ignore (run_incremental ~incremental:true ());
  let incremental_s = best (fun () -> run_incremental ~incremental:true ()) in
  let full_table =
    Campaign.render (run_incremental ~incremental:false ())
  in
  (* probe run with a recording sink: did the campaign actually share a
     prefix (snap.captured/restored), and how many cycles it covered *)
  let rc = Ldx_obs.Recorder.create () in
  let incr_table =
    Campaign.render
      (run_incremental ~obs:(Ldx_obs.Recorder.sink rc) ~incremental:true ())
  in
  let snap = Ldx_obs.Recorder.snapshot rc in
  let c name = Ldx_obs.Metrics.counter snap name in
  let prefix_cycles =
    (* one Snapshot_captured per campaign: the histogram's max IS the
       shared prefix's cycle count *)
    match List.assoc_opt "snap.prefix_cycles" snap.Ldx_obs.Metrics.hists with
    | Some h -> h.Ldx_obs.Metrics.h_max
    | None -> 0
  in
  J.Obj
    [ ("tasks", J.Int (List.length incremental_params));
      ("decoupled", J.Bool (c "snap.captured" > 0));
      ("suffixes_replayed", J.Int (c "snap.restored"));
      ("prefix_cycles", J.Int prefix_cycles);
      ("tables_identical", J.Bool (String.equal full_table incr_table));
      ("baseline_s", J.Float baseline_s);
      ("incremental_s", J.Float incremental_s);
      ("speedup_floor", J.Float 1.5);
      ( "speedup",
        if incremental_s > 0. then J.Float (baseline_s /. incremental_s)
        else J.Null ) ]

(* Schedule-sweep entry: per concurrency workload, how many distinct
   interleavings were explored and whether the leak verdict is stable
   across all of them (the Table 4 claim, lifted over schedules). *)
let sched_sweep_summary () =
  J.Obj
    [ ("bound", J.Int 2);
      ("max_schedules", J.Int sched_sweep_schedules);
      ( "workloads",
        J.Obj
          (List.map
             (fun ((w : Workload.t), (t : Sched_sweep.t)) ->
                ( w.Workload.name,
                  J.Obj
                    [ ("schedules", J.Int t.Sched_sweep.schedules);
                      ("leaks", J.Int t.Sched_sweep.leaks);
                      ("stable", J.Bool t.Sched_sweep.stable);
                      ( "classification",
                        J.Str (Sched_sweep.classification t) ) ] ))
             (Lazy.force sched_sweeps)) ) ]

let wall_times_json rows =
  J.Obj
    (List.map
       (fun (name, est) ->
          (name, if Float.is_nan est then J.Null else J.Float est))
       rows)

let write_bench_json ~counters rows =
  let json =
    J.Obj
      [ ("schema", J.Str "ldx-bench/1");
        ("time_unit", J.Str "ns_per_run");
        ("wall_times", wall_times_json rows);
        ("campaign", campaign_comparison ());
        ("incremental", incremental_summary ());
        ("durable", durable_summary ());
        ("service", service_summary ());
        ("sched_sweep", sched_sweep_summary ());
        ("chaos", chaos_summary ());
        ("engine_counters", J.Obj counters) ]
  in
  Out_channel.with_open_text "BENCH_results.json" (fun oc ->
      output_string oc (J.to_string json);
      output_char oc '\n')

(* One BENCH_history.jsonl line per full bench run: the wall times and
   deterministic engine counters stamped with schema, commit, smoke mode
   and toolchain — the trajectory `ldx_prof bench-diff` and the history
   tooling read.  Append-only; filtered runs never write it. *)
let commit_id () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when s <> "" -> s
  | _ ->
    (try
       let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with Unix.Unix_error _ | Sys_error _ -> "unknown")

let append_history ~counters rows =
  let json =
    J.Obj
      [ ("schema", J.Str "ldx-bench-history/1");
        ("unix_time", J.Int (int_of_float (Unix.gettimeofday ())));
        ("commit", J.Str (commit_id ()));
        ("smoke", J.Bool smoke);
        ("ocaml", J.Str Sys.ocaml_version);
        ("time_unit", J.Str "ns_per_run");
        ("wall_times", wall_times_json rows);
        ("engine_counters", J.Obj counters) ]
  in
  Out_channel.with_open_gen
    [ Open_append; Open_creat; Open_text ]
    0o644 "BENCH_history.jsonl"
    (fun oc ->
       output_string oc (J.to_string json);
       output_char oc '\n')

let () =
  (match bench_only with
   | Some f ->
     Printf.printf
       "=== Bechamel: wall time per experiment kernel (filtered: %S) \
        ===\n\n%!"
       f
   | None ->
     Printf.printf
       "=== Bechamel: wall time per experiment kernel (host machine) \
        ===\n\n%!");
  let rows = result_rows (benchmark ()) in
  print_results rows;
  match bench_only with
  | Some _ ->
    Printf.printf
      "\nfiltered run: BENCH_results.json and BENCH_history.jsonl not \
       written\n"
  | None ->
    let counters = recorded_counters () in
    write_bench_json ~counters rows;
    Printf.printf "\nbench results written to BENCH_results.json\n";
    append_history ~counters rows;
    Printf.printf "bench history appended to BENCH_history.jsonl\n";
    Printf.printf
      "\n=== Regenerated evaluation (simulated metrics, cf. EXPERIMENTS.md) \
       ===\n\n%!";
    print_string (Experiments.all ~runs:(if smoke then 2 else 50) ())
