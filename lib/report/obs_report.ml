(* Text rendering of Ldx_obs metrics snapshots. *)

module Metrics = Ldx_obs.Metrics

let describe name =
  match name with
  | "divergence.case1" -> "syscall missing in one execution (paper case 1)"
  | "divergence.case2" -> "same counter, different PC (paper case 2)"
  | "divergence.case3" -> "aligned sink, different parameters (paper case 3)"
  | "divergence.final-state" -> "final-state extension reports"
  | "engine.copies" -> "coupled outcomes the slave consumed"
  | "engine.sink_compares" -> "coupled sink-argument comparisons"
  | "engine.mutations" -> "source mutations that changed a value"
  | "run.wall_cycles" -> "max of the two clocks (virtual two-CPU wall time)"
  | "master.cnt_instrs" | "slave.cnt_instrs" ->
    "counter-maintenance instructions (Fig. 6 numerator)"
  | "faults.master" -> "environment faults injected in the master"
  | "faults.slave" -> "environment faults injected in the slave"
  | "faults.drop" -> "dropped network messages"
  | "faults.short" -> "short reads/recvs"
  | "faults.transient" -> "transient (EINTR-style) failures"
  | "faults.error" -> "injected error returns"
  | "faults.skew" -> "clock-skew injections"
  | "campaign.ok" -> "campaign tasks that completed"
  | "campaign.crashed" -> "campaign tasks whose slave pass raised"
  | "campaign.fuel-exhausted" -> "campaign tasks that ran out of fuel"
  | "campaign.begun" -> "campaign tasks started"
  | "campaign.progress_events" -> "campaign heartbeat events"
  | "campaign.completed" -> "tasks done at the last heartbeat"
  | "campaign.cycles_done" -> "virtual cycles done at the last heartbeat"
  | "campaign.eta_cycles" ->
    "mean-based remaining-cycles estimate at the last heartbeat"
  | _ ->
    let prefixed p =
      String.length name > String.length p
      && String.sub name 0 (String.length p) = p
    in
    if prefixed "failures." then
      "executions trapped with this failure class"
    else ""

let counters_table (snap : Metrics.snapshot) : Table.t =
  Table.make ~title:"Metrics: counters and gauges"
    ~headers:[ "counter"; "value"; "meaning" ]
    ~aligns:[ Table.Left; Table.Right; Table.Left ]
    (List.map
       (fun (name, v) -> [ name; string_of_int v; describe name ])
       snap.Metrics.counters)

let histograms_table (snap : Metrics.snapshot) : Table.t =
  Table.make ~title:"Metrics: histograms"
    ~headers:[ "histogram"; "count"; "mean"; "min"; "max" ]
    ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
    ~notes:
      [ "dyn_cnt.*: dynamic counter value at each syscall (Table 1); \
         couple_lag: slave clock minus producing master stamp at each copy." ]
    (List.map
       (fun (name, h) ->
          [ name;
            string_of_int h.Metrics.h_count;
            Table.f2 (Metrics.hist_mean h);
            string_of_int h.Metrics.h_min;
            string_of_int h.Metrics.h_max ])
       snap.Metrics.hists)

let overhead_table (snap : Metrics.snapshot) : Table.t =
  let c name = Metrics.counter snap name in
  let share side =
    let steps = c (side ^ ".steps") in
    if steps = 0 then 0.0
    else float_of_int (c (side ^ ".cnt_instrs")) /. float_of_int steps
  in
  let row side =
    [ side;
      string_of_int (c (side ^ ".cycles"));
      string_of_int (c (side ^ ".steps"));
      string_of_int (c (side ^ ".syscalls"));
      string_of_int (c (side ^ ".cnt_instrs"));
      Table.pct (share side) ]
  in
  Table.make ~title:"Overhead accounting (Fig. 6 inputs)"
    ~headers:[ "side"; "cycles"; "steps"; "syscalls"; "cnt instrs"; "cnt share" ]
    ~aligns:
      [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
        Table.Right ]
    ~notes:
      [ Printf.sprintf "wall cycles (two-CPU max): %d"
          (Metrics.counter snap "run.wall_cycles");
        "cnt share = counter-maintenance instructions / executed steps; \
         the Fig. 6 overhead ratio is dual wall cycles / native cycles \
         (see `ldx_run --metrics` docs in README.md)." ]
    [ row "master"; row "slave" ]

let render snap =
  String.concat "\n"
    [ Table.render (overhead_table snap);
      Table.render (counters_table snap);
      Table.render (histograms_table snap) ]
