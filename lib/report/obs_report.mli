(** Render an observability metrics snapshot ({!Ldx_obs.Metrics}) as
    text tables via {!Table} — the CLI's [--metrics] output. *)

(** Counters and gauges, one row per name, with the divergence-case
    rows annotated with the paper's case semantics. *)
val counters_table : Ldx_obs.Metrics.snapshot -> Table.t

(** Histograms: count / mean / min / max per histogram. *)
val histograms_table : Ldx_obs.Metrics.snapshot -> Table.t

(** The Fig. 6-style overhead accounting derived from the snapshot's
    run-summary gauges: counter-maintenance instruction share per side
    and the dual-run wall-cycle figure. *)
val overhead_table : Ldx_obs.Metrics.snapshot -> Table.t

(** All of the above, rendered and concatenated. *)
val render : Ldx_obs.Metrics.snapshot -> string
