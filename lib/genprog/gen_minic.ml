(* QCheck generators for MiniC.

   Two generator families:
   - [arb_program]: random *structured* programs built from templates of
     nested ifs, loops, calls and syscalls over a small variable pool.
     They always terminate (loops are bounded counters) and never trap
     (indices in range, no division), so that alignment properties can
     quantify over them.
   - [arb_expr]/[arb_fundef]: random ASTs for parser/printer round-trips
     (these need not execute). *)

open Ldx_lang
module Gen = QCheck2.Gen

(* ---------------- executable random programs ---------------- *)

(* Context: variables v0..v3 (ints, initialized), a socket s, and an
   output fd.  All generated statements keep them well-typed. *)

let var_names = [ "v0"; "v1"; "v2"; "v3" ]

let gen_ivar = Gen.oneofl var_names

let gen_atom : Ast.expr Gen.t =
  Gen.oneof
    [ Gen.map (fun n -> Ast.Int n) (Gen.int_range 0 9);
      Gen.map (fun v -> Ast.Var v) gen_ivar ]

let gen_pure_expr : Ast.expr Gen.t =
  let open Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then gen_atom
      else
        oneof
          [ gen_atom;
            map2 (fun a b -> Ast.Binop (Ast.Add, a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Ast.Binop (Ast.Sub, a, b)) (self (n / 2)) (self (n / 2));
            map2 (fun a b -> Ast.Binop (Ast.Mul, a, b)) (self (n / 2)) gen_atom;
            map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1));
            map2 (fun a b -> Ast.Binop (Ast.Band, a, b)) (self (n / 2)) (self (n / 2)) ])

let gen_cond : Ast.expr Gen.t =
  let open Gen in
  let* op = oneofl [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ] in
  let* a = gen_pure_expr in
  let* b = gen_pure_expr in
  return (Ast.Binop (op, a, b))

(* Syscalls woven into the program: prints (output), reads from an input
   socket, time/rand (inputs shared by the slave). *)
let gen_syscall : Ast.stmt Gen.t =
  let open Gen in
  oneof
    [ map (fun v -> Ast.Expr (Ast.Call ("print",
        [ Ast.Call ("itoa", [ Ast.Var v ]) ]))) gen_ivar;
      map (fun v -> Ast.Assign (v, Ast.Call ("atoi",
        [ Ast.Call ("recv", [ Ast.Var "s" ]) ]))) gen_ivar;
      map (fun v -> Ast.Assign (v, Ast.Binop (Ast.Band,
        Ast.Call ("rand", []), Ast.Int 7))) gen_ivar;
      map (fun v -> Ast.Assign (v, Ast.Binop (Ast.Band,
        Ast.Call ("time", []), Ast.Int 15))) gen_ivar ]

let gen_assign : Ast.stmt Gen.t =
  let open Gen in
  map2 (fun v e -> Ast.Assign (v, e)) gen_ivar gen_pure_expr

(* Bounded loop: for (i# = 0; i# < k; i# = i# + 1) body, k <= 4. *)
let counter = ref 0

let fresh_loop_var () =
  incr counter;
  Printf.sprintf "i%d" !counter

let rec gen_stmt depth : Ast.stmt Gen.t =
  let open Gen in
  if depth <= 0 then oneof [ gen_assign; gen_syscall ]
  else
    frequency
      [ (3, gen_assign);
        (3, gen_syscall);
        (2, gen_if depth);
        (2, gen_loop depth) ]

and gen_block depth : Ast.block Gen.t =
  let open Gen in
  let* n = int_range 1 4 in
  list_repeat n (gen_stmt (depth - 1))

and gen_if depth : Ast.stmt Gen.t =
  let open Gen in
  let* c = gen_cond in
  let* t = gen_block depth in
  let* f = oneof [ return []; gen_block depth ] in
  return (Ast.If (c, t, f))

and gen_loop depth : Ast.stmt Gen.t =
  let open Gen in
  let* k = int_range 1 4 in
  let* body = gen_block depth in
  let i = fresh_loop_var () in
  return
    (Ast.For
       ( Some (Ast.Let (i, Ast.Int 0)),
         Some (Ast.Binop (Ast.Lt, Ast.Var i, Ast.Int k)),
         Some (Ast.Assign (i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int 1))),
         body ))

(* A helper function the program may call (exercises FCNT computation),
   plus main.  Variables are initialized up front. *)
let gen_program : Ast.program Gen.t =
  let open Gen in
  counter := 0;
  let* helper_body = gen_block 2 in
  let* body1 = gen_block 3 in
  let* call_helper = bool in
  let* body2 = gen_block 2 in
  let inits =
    Ast.Let ("s", Ast.Call ("socket", [ Ast.Str "in" ]))
    :: List.map (fun v -> Ast.Let (v, Ast.Int 1)) var_names
  in
  let helper =
    { Ast.fname = "helper";
      params = [ "v0" ];
      body =
        (Ast.Let ("s", Ast.Call ("socket", [ Ast.Str "in" ]))
         :: Ast.Let ("v1", Ast.Int 2) :: Ast.Let ("v2", Ast.Int 3)
         :: Ast.Let ("v3", Ast.Int 4) :: helper_body)
        @ [ Ast.Return (Some (Ast.Var "v0")) ] }
  in
  let call =
    if call_helper then
      [ Ast.Assign ("v0", Ast.Call ("helper", [ Ast.Var "v1" ])) ]
    else []
  in
  let main =
    { Ast.fname = "main"; params = [];
      body = inits @ body1 @ call @ body2 }
  in
  return { Ast.funcs = [ helper; main ] }

let print_program p = Printer.to_string p

(* ---------------- random concurrent programs ---------------- *)

(* Race-free threaded programs: K workers, each doing a deterministic
   per-thread mix of sends/prints/locked shared updates; main joins all.
   Used to check that per-thread alignment is schedule-independent. *)
let gen_conc_program : Ast.program Gen.t =
  let open Gen in
  let* nworkers = int_range 1 3 in
  let* per_worker = int_range 1 4 in
  let* use_lock = bool in
  let* body_kind = int_range 0 2 in
  let stmt_of k =
    match (body_kind + k) mod 3 with
    | 0 ->
      Ast.Expr
        (Ast.Call
           ("send",
            [ Ast.Var "s";
              Ast.Binop (Ast.Add, Ast.Str "m", Ast.Call ("itoa", [ Ast.Var "k" ])) ]))
    | 1 ->
      Ast.Expr
        (Ast.Call ("print", [ Ast.Call ("itoa", [ Ast.Var "wid" ]) ]))
    | _ ->
      Ast.Expr
        (Ast.Call ("write", [ Ast.Int 1; Ast.Str "x" ]))
  in
  let guarded body =
    if use_lock then
      (Ast.Expr (Ast.Call ("lock", [ Ast.Int 1 ])) :: body)
      @ [ Ast.Expr (Ast.Call ("unlock", [ Ast.Int 1 ])) ]
    else body
  in
  let worker =
    { Ast.fname = "worker";
      params = [ "wid" ];
      body =
        [ Ast.Let ("s", Ast.Call ("socket",
            [ Ast.Binop (Ast.Add, Ast.Str "out", Ast.Call ("itoa", [ Ast.Var "wid" ])) ]));
          Ast.For
            ( Some (Ast.Let ("k", Ast.Int 0)),
              Some (Ast.Binop (Ast.Lt, Ast.Var "k", Ast.Int per_worker)),
              Some (Ast.Assign ("k", Ast.Binop (Ast.Add, Ast.Var "k", Ast.Int 1))),
              guarded [ stmt_of 0; stmt_of 1 ] );
          Ast.Return (Some (Ast.Var "wid")) ] }
  in
  let spawns =
    List.concat
      (List.init nworkers (fun i ->
           [ Ast.Let (Printf.sprintf "t%d" i,
                      Ast.Call ("spawn", [ Ast.Funref "worker"; Ast.Int i ])) ]))
  in
  let joins =
    List.init nworkers (fun i ->
        Ast.Expr (Ast.Call ("join", [ Ast.Var (Printf.sprintf "t%d" i) ])))
  in
  let main =
    { Ast.fname = "main"; params = [];
      body = spawns @ joins @ [ Ast.Expr (Ast.Call ("print", [ Ast.Str "end" ])) ] }
  in
  return { Ast.funcs = [ worker; main ] }

(* ---------------- random ASTs for round-trips ---------------- *)

let gen_ident =
  Gen.map (fun n -> Printf.sprintf "x%d" n) (Gen.int_range 0 20)

let gen_any_expr : Ast.expr Gen.t =
  let open Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map (fun i -> Ast.Int i) (int_range (-100) 100);
            map (fun v -> Ast.Var v) gen_ident;
            map (fun s -> Ast.Str s)
              (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
            map (fun v -> Ast.Funref v) gen_ident ]
      else
        oneof
          [ map (fun i -> Ast.Int i) (int_range (-100) 100);
            (let* op =
               oneofl
                 [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Eq;
                   Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.And; Ast.Or;
                   Ast.Band; Ast.Bor; Ast.Bxor; Ast.Shl; Ast.Shr ]
             in
             map2 (fun a b -> Ast.Binop (op, a, b)) (self (n / 2)) (self (n / 2)));
            map (fun a -> Ast.Unop (Ast.Not, a)) (self (n - 1));
            map (fun a -> Ast.Unop (Ast.Neg, a)) (self (n - 1));
            map2 (fun a i -> Ast.Index (a, i))
              (map (fun v -> Ast.Var v) gen_ident) (self (n / 2));
            (let* f = gen_ident in
             let* args = list_size (int_range 0 3) (self (n / 3)) in
             return (Ast.Call (f, args))) ])

let rec gen_any_stmt n : Ast.stmt Gen.t =
  let open Gen in
  if n <= 0 then
    oneof
      [ map2 (fun v e -> Ast.Let (v, e)) gen_ident gen_any_expr;
        map2 (fun v e -> Ast.Assign (v, e)) gen_ident gen_any_expr;
        map (fun e -> Ast.Expr e) gen_any_expr;
        return Ast.Break;
        return Ast.Continue;
        return (Ast.Return None);
        map (fun e -> Ast.Return (Some e)) gen_any_expr ]
  else
    oneof
      [ map2 (fun v e -> Ast.Let (v, e)) gen_ident gen_any_expr;
        (let* c = gen_any_expr in
         let* t = gen_any_block (n - 1) in
         let* f = gen_any_block (n - 1) in
         return (Ast.If (c, t, f)));
        (let* c = gen_any_expr in
         let* b = gen_any_block (n - 1) in
         return (Ast.While (c, b)));
        (let* init =
           oneof
             [ return None;
               map (fun e -> Some (Ast.Let ("fi", e))) gen_any_expr ]
         in
         let* cond = oneof [ return None; map Option.some gen_any_expr ] in
         let* step =
           oneof
             [ return None;
               map (fun e -> Some (Ast.Assign ("fi", e))) gen_any_expr ]
         in
         let* b = gen_any_block (n - 1) in
         return (Ast.For (init, cond, step, b))) ]

and gen_any_block n : Ast.block Gen.t =
  Gen.(list_size (int_range 0 3) (gen_any_stmt n))

let gen_any_fundef : Ast.fundef Gen.t =
  let open Gen in
  let* name = gen_ident in
  let* params = list_size (int_range 0 3) gen_ident in
  (* round-trips don't go through the checker, so duplicate parameter
     names are fine here *)
  let* body = gen_any_block 2 in
  return { Ast.fname = "f_" ^ name; params; body }

(* ---------------- stress programs for differential VM testing ------- *)

(* Programs that may trap, spawn threads, install signal handlers and
   take one-shot setjmp/longjmp exits — every runtime feature the tree
   and flat steppers implement separately, in one pot.  Used by the
   tree-vs-flat differential property: both steppers must agree on all
   observables (stdout, trap message, steps, cycles, syscalls).
   Termination is still guaranteed (bounded loops, one-shot longjmp
   guard); trapping is allowed and part of the point. *)
let gen_stress_program : Ast.program Gen.t =
  let open Gen in
  counter := 0;
  let* body1 = gen_block 2 in
  let* body2 = gen_block 2 in
  let* use_thread = bool in
  let* use_signal = bool in
  let* use_setjmp = bool in
  let* use_trappy = bool in
  let* divisor = int_range 0 2 in
  let* index = int_range 0 5 in
  let inits =
    Ast.Let ("s", Ast.Call ("socket", [ Ast.Str "in" ]))
    :: List.map (fun v -> Ast.Let (v, Ast.Int 1)) var_names
  in
  (* may divide by zero or index out of bounds — the trap must carry the
     same message and land on the same step in both VMs *)
  let trappy =
    if not use_trappy then []
    else
      [ Ast.Let ("arr", Ast.Call ("mkarray", [ Ast.Int 4; Ast.Int 7 ]));
        Ast.Assign
          ("v0",
           Ast.Binop
             (Ast.Div, Ast.Var "v1",
              Ast.Binop (Ast.Sub, Ast.Var "v2", Ast.Int divisor)));
        Ast.Assign ("v1", Ast.Index (Ast.Var "arr", Ast.Int index)) ]
  in
  let sj body =
    if not use_setjmp then body
    else
      (* one-shot: the longjmp retakes the setjmp exactly once *)
      Ast.Let ("jumped", Ast.Int 0)
      :: Ast.Let ("j", Ast.Call ("setjmp", [ Ast.Int 1 ]))
      :: body
      @ [ Ast.If
            ( Ast.Binop
                (Ast.And,
                 Ast.Binop (Ast.Eq, Ast.Var "jumped", Ast.Int 0),
                 Ast.Binop (Ast.Gt, Ast.Var "v0", Ast.Var "v3")),
              [ Ast.Assign ("jumped", Ast.Int 1);
                Ast.Expr (Ast.Call ("longjmp", [ Ast.Int 1 ])) ],
              [] ) ]
  in
  let signals =
    if not use_signal then []
    else
      [ Ast.Expr (Ast.Call ("signal", [ Ast.Int 10; Ast.Funref "on_sig" ]));
        Ast.Expr (Ast.Call ("alarm", [ Ast.Int 2 ]));
        Ast.Expr (Ast.Call ("signal", [ Ast.Int 14; Ast.Funref "on_sig" ]));
        Ast.Expr (Ast.Call ("sigsend", [ Ast.Int 10 ])) ]
  in
  let thread_setup =
    if not use_thread then []
    else
      [ Ast.Let ("t0", Ast.Call ("spawn", [ Ast.Funref "worker"; Ast.Int 2 ])) ]
  in
  let thread_join =
    if not use_thread then []
    else [ Ast.Expr (Ast.Call ("join", [ Ast.Var "t0" ])) ]
  in
  let handler =
    { Ast.fname = "on_sig";
      params = [ "signo" ];
      body =
        [ Ast.Expr
            (Ast.Call ("print", [ Ast.Call ("itoa", [ Ast.Var "signo" ]) ]));
          Ast.Return (Some (Ast.Int 0)) ] }
  in
  let worker =
    { Ast.fname = "worker";
      params = [ "wid" ];
      body =
        [ Ast.Let ("s", Ast.Call ("socket", [ Ast.Str "in" ]));
          Ast.For
            ( Some (Ast.Let ("k", Ast.Int 0)),
              Some (Ast.Binop (Ast.Lt, Ast.Var "k", Ast.Int 3)),
              Some (Ast.Assign ("k", Ast.Binop (Ast.Add, Ast.Var "k", Ast.Int 1))),
              [ Ast.Expr
                  (Ast.Call ("print", [ Ast.Call ("itoa", [ Ast.Var "k" ]) ])) ] );
          Ast.Return (Some (Ast.Var "wid")) ] }
  in
  let main =
    { Ast.fname = "main";
      params = [];
      body =
        inits @ signals @ thread_setup
        @ sj (body1 @ trappy)
        @ body2 @ thread_join
        @ [ Ast.Expr (Ast.Call ("print", [ Ast.Str "end" ])) ] }
  in
  return { Ast.funcs = [ handler; worker; main ] }
