(* The MiniC virtual machine.

   Event-driven: [run_until_event] executes instructions (scheduling
   threads round-robin with a seeded quantum) until something the driver
   must handle occurs:
   - a syscall was reached (the VM never services syscalls itself;
     the driver answers with [provide_result]),
   - a loop backedge barrier was reached ([release_barrier] resumes),
   - every live thread is waiting on the driver ([Ev_idle]),
   - the process finished or trapped.

   Counter state (Sec. 4-6): each thread carries a stack of counter
   segments; a segment has the current counter value and a stack of
   (loop id, iteration) pairs maintained by the Loop_enter / Loop_back /
   Loop_exit instrumentation.  Fresh-frame calls (indirect calls and calls
   to recursive functions) push a segment.

   Execution form: [create] compiles the program once to flat bytecode
   (Ldx_cfg.Flat) — integer opcodes, register slots, resolved jumps —
   and the default stepper dispatches over that with no per-instruction
   hashing or allocation.  The original tree walker survives as the
   [Tree] mode (same frames, name lookups through the flat symbol
   tables) so the two paths can be differentially tested; both charge
   the virtual clock and the profile identically. *)

module Ir = Ldx_cfg.Ir
module Flat = Ldx_cfg.Flat
module Sched = Ldx_sched.Scheduler
open Value

(* The two steppers must agree on opcode numbering with the profile. *)
let () =
  assert (
    Flat.op_assign = Profile.op_assign
    && Flat.op_store = Profile.op_store
    && Flat.op_call = Profile.op_call
    && Flat.op_call_indirect = Profile.op_call_indirect
    && Flat.op_syscall = Profile.op_syscall
    && Flat.op_cnt_add = Profile.op_cnt_add
    && Flat.op_loop_enter = Profile.op_loop_enter
    && Flat.op_loop_back = Profile.op_loop_back
    && Flat.op_loop_exit = Profile.op_loop_exit
    && Flat.op_jump = Profile.op_jump
    && Flat.op_branch = Profile.op_branch
    && Flat.op_ret = Profile.op_ret
    && Flat.op_call_arity = 12
    && Flat.op_call_missing = 13)

type vm_mode = Tree | Flat

(* Session-wide default stepper; [LDX_VM=tree] keeps the legacy tree
   walker (parity smoke, differential tests). *)
let default_vm : vm_mode ref =
  ref (match Sys.getenv_opt "LDX_VM" with Some "tree" -> Tree | _ -> Flat)

type seg = {
  mutable cnt : int;
  mutable loops : (int * int) list;   (* (loop id, iteration), innermost first *)
}

type pending = {
  sys : string;
  sysargs : Value.t list;
  dst : string option;
  dst_slot : int;                     (* resolved register slot; -1 = none *)
  site : int;
}

type barrier = { loop : int; dec : int }

type status =
  | Runnable
  | Awaiting of pending
  | At_barrier of barrier
  | Finished of Value.t

type frame = {
  fn : Ir.func;
  fl : Value.t Flat.func;
  mutable bid : int;
  mutable idx : int;
  (* [idx] is the flat pc in Flat mode, the in-block instruction index
     in Tree mode; [bid] is the current block in both *)
  regs : Value.t array;                (* slots; [Value.undef] = unset *)
  ret_dst : int;                       (* caller slot for the result; -1 *)
  fresh : bool;                        (* pushed a counter segment *)
  prof_base : int;
  (* the function's base in the profile's flat block numbering (0 when
     profiling is off); a block's flat index is [prof_base + bid] *)
}

type thread = {
  tid : int;
  spawn_index : int;                   (* pairing key across dual executions *)
  mutable frames : frame list;         (* top first *)
  mutable segs : seg list;             (* top first *)
  mutable status : status;
  jmp_bufs : (string, jmp_buf) Hashtbl.t;
  mutable alarm : (int * int) option;
      (* (syscalls until delivery, signo) -- see [set_alarm] *)
  mutable pending_signals : int list;   (* delivery order, oldest first *)
}

(* setjmp/longjmp (Sec. 6): the buffer snapshots the frame stack shape,
   the resume point, the destination slot of the setjmp, and — the
   paper's key detail — a deep copy of the counter-segment stack, which
   longjmp restores so alignment survives non-local control flow. *)
and jmp_buf = {
  j_frames : frame list;               (* frame list at the setjmp *)
  j_bid : int;                         (* resume point (after setjmp) *)
  j_idx : int;
  j_dst : int;                         (* slot the setjmp writes; -1 = none *)
  j_segs : (int * (int * int) list) list;  (* snapshot: (cnt, loops) *)
}

type lock_state = {
  mutable owner : int option;          (* tid *)
  mutable acquisitions : int;
}

type t = {
  prog : Ir.program;
  fprog : Value.t Flat.program;        (* the compiled execution form *)
  vm : vm_mode;
  os : Ldx_osim.Os.t;
  mutable threads : thread list;       (* creation order *)
  mutable by_spawn : thread array;     (* index = spawn_index (O(1) picks) *)
  mutable next_tid : int;
  mutable spawn_count : int;
  mutable scratch : int array array;   (* exact-size runnable-set buffers *)
  locks : (string, lock_state) Hashtbl.t;
  sig_handlers : (int, string) Hashtbl.t;    (* signo -> handler function *)
  mutable lock_trace : (string * int) list;  (* (lock, spawn_index), reversed *)
  mutable lock_gate : (string -> int -> bool) option;
  (* when set (slave mode), [try_lock] additionally asks the gate whether
     this thread (by spawn_index) may take the lock now *)
  sched : Sched.state;
  (* the pluggable scheduler (lib/sched): owns the pick cursor and
     quantum choice; the default is [Sched.legacy], bit-identical to
     the historical hard-wired round-robin *)
  mutable steps : int;
  mutable cycles : int;                (* virtual clock *)
  mutable syscalls : int;              (* syscall events emitted *)
  mutable instr_events : int;          (* instrumentation instrs executed *)
  mutable finished : bool;
  mutable trap : string option;
  max_steps : int;
  (* dynamic counter statistics (Table 1) *)
  mutable cnt_sum : int;
  mutable cnt_max : int;
  mutable cnt_samples : int;
  mutable max_seg_depth : int;
  (* observability step hooks (installed by the engine, [None] = off:
     the disabled path is one pointer comparison).  [on_obs_syscall]
     fires at each syscall return after the cost is charged and before
     signal handlers are pushed (so the thread's position is still the
     syscall's); [on_obs_barrier] at each barrier release after the
     counter reset; [on_obs_cnt_sample] at each dynamic counter
     sample. *)
  mutable on_obs_syscall : (t -> thread -> pending -> unit) option;
  mutable on_obs_barrier : (t -> thread -> barrier -> unit) option;
  mutable on_obs_cnt_sample : (t -> thread -> int -> unit) option;
  mutable on_obs_sched : (t -> Sched.decision -> unit) option;
  prof : Profile.t option;
  (* cost-attribution counters mirroring every virtual-clock charge;
     [None] = off, same one-pointer-comparison discipline as the obs
     hooks.  Never consulted by execution semantics. *)
}

type event =
  | Ev_syscall of thread
  | Ev_barrier of thread
  | Ev_idle
  | Ev_done
  | Ev_trap of string

let new_seg () = { cnt = 0; loops = [] }

let lock_key = function
  | Int n -> "i:" ^ string_of_int n
  | Str s -> "s:" ^ s
  | Unit | Arr _ | Fptr _ -> trap "invalid lock id"

(* Constant injections for the VM's instantiation of the flat form:
   each literal is boxed once, at compile time. *)
let value_consts : Value.t Flat.consts =
  { Flat.c_unit = Unit;
    c_int = (fun n -> Int n);
    c_str = (fun s -> Str s);
    c_fun = (fun f -> Fptr f) }

(* Fresh frame for [fl]; regs start as the undef sentinel. *)
let new_frame vm (fl : Value.t Flat.func) ~ret_dst ~fresh ~prof_base =
  let fn = fl.Flat.f_ir in
  { fn; fl;
    bid = fn.Ir.entry;
    idx = (match vm with Tree -> 0 | Flat -> fl.Flat.entry_pc);
    regs = Array.make fl.Flat.nslots undef;
    ret_dst; fresh; prof_base }

let create ?(seed = 0) ?sched ?(max_steps = 30_000_000) ?prof ?vm
    (prog : Ir.program) (os : Ldx_osim.Os.t) : t =
  let vm = match vm with Some v -> v | None -> !default_vm in
  let main = Ir.find_func_exn prog "main" in
  if main.Ir.params <> [] then invalid_arg "Machine.create: main takes no params";
  (match prof with Some p -> Profile.attach p prog | None -> ());
  let main_base =
    match prof with Some p -> Profile.base_of p main.Ir.fname | None -> 0
  in
  let fprog = Flat.compile value_consts prog in
  let main_fl = fprog.Flat.funcs.(Hashtbl.find fprog.Flat.fidx "main") in
  let main_thread =
    { tid = 0; spawn_index = 0;
      frames = [ new_frame vm main_fl ~ret_dst:(-1) ~fresh:false
                   ~prof_base:main_base ];
      segs = [ new_seg () ];
      status = Runnable;
      jmp_bufs = Hashtbl.create 4;
      alarm = None;
      pending_signals = [] }
  in
  { prog; fprog; vm; os;
    threads = [ main_thread ];
    by_spawn = Array.make 4 main_thread;
    next_tid = 1;
    spawn_count = 1;
    scratch = [||];
    locks = Hashtbl.create 8;
    sig_handlers = Hashtbl.create 4;
    lock_trace = [];
    lock_gate = None;
    sched =
      (match sched with
       | Some s -> s
       | None -> Sched.instantiate (Sched.legacy ~seed));
    steps = 0;
    cycles = 0;
    syscalls = 0;
    instr_events = 0;
    finished = false;
    trap = None;
    max_steps;
    cnt_sum = 0;
    cnt_max = 0;
    cnt_samples = 0;
    max_seg_depth = 1;
    on_obs_syscall = None;
    on_obs_barrier = None;
    on_obs_cnt_sample = None;
    on_obs_sched = None;
    prof }

let main_thread t = List.hd t.threads

(* Flat-block base of [fname] in the attached profile (0 when off). *)
let prof_base_of t fname =
  match t.prof with None -> 0 | Some p -> Profile.base_of p fname

(* Charge [cost] cycles for a dispatch of opcode [op] in [frame]'s
   current block.  The clock update is identical with profiling off. *)
let[@inline] charge t (frame : frame) op cost =
  t.cycles <- t.cycles + cost;
  match t.prof with
  | None -> ()
  | Some p -> Profile.charge p ~op ~blk:(frame.prof_base + frame.bid) ~cost

let cur_seg (th : thread) =
  match th.segs with
  | s :: _ -> s
  | [] -> trap "empty counter-segment stack"

let cur_frame (th : thread) =
  match th.frames with
  | f :: _ -> f
  | [] -> trap "empty frame stack"

(* Counter + loop-iteration snapshot for alignment (outermost segment
   first; within a segment loops are innermost first). *)
let position_of (th : thread) : (int * (int * int) list) list =
  List.rev_map (fun s -> (s.cnt, s.loops)) th.segs

let counter_of (th : thread) = (cur_seg th).cnt

(* ------------------------------------------------------------------ *)
(* Thread primitives (used by the driver to service thread syscalls).  *)

(* Register a thread under its spawn index (grow-by-doubling). *)
let register_thread t (th : thread) =
  let n = Array.length t.by_spawn in
  if th.spawn_index >= n then begin
    let a = Array.make (max 4 (2 * n)) th in
    Array.blit t.by_spawn 0 a 0 n;
    t.by_spawn <- a
  end;
  t.by_spawn.(th.spawn_index) <- th

let spawn t (fname : string) (arg : Value.t) : int =
  let fl =
    match Hashtbl.find_opt t.fprog.Flat.fidx fname with
    | Some fi -> t.fprog.Flat.funcs.(fi)
    | None ->
      ignore (Ir.find_func_exn t.prog fname : Ir.func);
      assert false
  in
  let frame =
    new_frame t.vm fl ~ret_dst:(-1) ~fresh:false
      ~prof_base:(prof_base_of t fname)
  in
  (match fl.Flat.nparams with
   | 0 -> ()
   | 1 -> frame.regs.(0) <- arg
   | _ -> trap "spawn: %s must take at most one parameter" fname);
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let spawn_index = t.spawn_count in
  t.spawn_count <- spawn_index + 1;
  let th =
    { tid; spawn_index;
      frames = [ frame ];
      segs = [ new_seg () ];
      status = Runnable;
      jmp_bufs = Hashtbl.create 4;
      alarm = None;
      pending_signals = [] }
  in
  t.threads <- t.threads @ [ th ];
  register_thread t th;
  tid

let find_thread t tid = List.find_opt (fun th -> th.tid = tid) t.threads

let lock_state t key =
  match Hashtbl.find_opt t.locks key with
  | Some s -> s
  | None ->
    let s = { owner = None; acquisitions = 0 } in
    Hashtbl.replace t.locks key s;
    s

(* Attempt to acquire; returns true on success.  Consults the lock gate
   (slave schedule replay) when installed. *)
let try_lock t (th : thread) (lockv : Value.t) : bool =
  let key = lock_key lockv in
  let st = lock_state t key in
  (* consult (and let advance) the gate only when the lock is free, so a
     replay gate's cursor moves exactly when a grant happens *)
  let gate_ok =
    st.owner = None
    && (match t.lock_gate with
        | None -> true
        | Some gate -> gate key th.spawn_index)
  in
  if gate_ok then begin
    st.owner <- Some th.tid;
    st.acquisitions <- st.acquisitions + 1;
    t.lock_trace <- (key, th.spawn_index) :: t.lock_trace;
    true
  end
  else false

let unlock t (th : thread) (lockv : Value.t) : bool =
  let key = lock_key lockv in
  let st = lock_state t key in
  if st.owner = Some th.tid then begin
    st.owner <- None;
    true
  end
  else false

let try_join t (target : int) : Value.t option =
  match find_thread t target with
  | Some { status = Finished v; _ } -> Some v
  | Some _ -> None
  | None -> Some (Int (-1))

(* setjmp: snapshot the resume point and a deep copy of the counter
   stack.  Called while the thread is Awaiting the setjmp syscall, so
   the current frame's [idx] already points past it. *)
let do_setjmp t (th : thread) (bufv : Value.t) ~(dst : string option) : unit =
  ignore t;
  let key = lock_key bufv in
  let frame = cur_frame th in
  let j_dst =
    match dst with
    | None -> -1
    | Some d ->
      (match Hashtbl.find_opt frame.fl.Flat.slot_of d with
       | Some i -> i
       | None -> -1)
  in
  Hashtbl.replace th.jmp_bufs key
    { j_frames = th.frames;
      j_bid = frame.bid;
      j_idx = frame.idx;
      j_dst;
      j_segs = List.map (fun s -> (s.cnt, s.loops)) th.segs }

(* longjmp: unwind to the saved frame list, restore the counter stack,
   and make the setjmp return 1.  Returns false when the buffer was
   never set (C leaves this undefined; we make it a no-op failure). *)
let do_longjmp t (th : thread) (bufv : Value.t) : bool =
  ignore t;
  match Hashtbl.find_opt th.jmp_bufs (lock_key bufv) with
  | None -> false
  | Some buf ->
    th.frames <- buf.j_frames;
    let frame = cur_frame th in
    frame.bid <- buf.j_bid;
    frame.idx <- buf.j_idx;
    th.segs <- List.map (fun (cnt, loops) -> { cnt; loops }) buf.j_segs;
    if buf.j_dst >= 0 then frame.regs.(buf.j_dst) <- Int 1;
    true

(* Signals (Sec. 7).  Handlers are invoked like indirect calls: a fresh
   counter-stack segment is pushed for the handler frame, so syscalls
   inside handlers align independently of the interrupted context.
   Delivery points are deterministic (at syscall returns), so two
   executions on the same path deliver at the same positions; path
   divergence falls to the engine's ordinary divergence handling. *)

let register_signal t (signo : int) (handler : string) : unit =
  Hashtbl.replace t.sig_handlers signo handler

let sigalrm = 14

(* Deliver [signo] to this thread after [n] further syscall events. *)
let set_alarm (th : thread) (n : int) (signo : int) : unit =
  if n <= 0 then th.alarm <- None
  else th.alarm <- Some (n, signo)

let raise_signal (th : thread) (signo : int) : unit =
  th.pending_signals <- th.pending_signals @ [ signo ]

(* ------------------------------------------------------------------ *)
(* Calls.                                                              *)

let push_seg t (th : thread) =
  th.segs <- new_seg () :: th.segs;
  let depth = List.length th.segs in
  if depth > t.max_seg_depth then t.max_seg_depth <- depth

(* Generic call path (tree mode, indirect calls, signal handlers):
   args arrive as a list, arity is checked at runtime with the
   historical trap message. *)
let push_call t (th : thread) ~(fl : Value.t Flat.func) ~(vargs : Value.t list)
    ~(ret_dst : int) ~fresh =
  let nargs = List.length vargs in
  if nargs <> fl.Flat.nparams then
    trap "call %s: arity mismatch (%d args, %d params)" fl.Flat.f_ir.Ir.fname
      nargs fl.Flat.nparams;
  let frame =
    new_frame t.vm fl ~ret_dst ~fresh
      ~prof_base:(prof_base_of t fl.Flat.f_ir.Ir.fname)
  in
  List.iteri (fun i a -> frame.regs.(i) <- a) vargs;
  th.frames <- frame :: th.frames;
  if fresh then push_seg t th

let func_by_name t name =
  match Hashtbl.find_opt t.fprog.Flat.fidx name with
  | Some fi -> Some t.fprog.Flat.funcs.(fi)
  | None -> None

(* Push handler frames for every pending signal (oldest runs first, so
   push in reverse order).  Unhandled signals are ignored (the default
   disposition). *)
let deliver_signals t (th : thread) =
  match th.pending_signals with
  | [] -> ()
  | pending ->
    th.pending_signals <- [];
    List.iter
      (fun signo ->
         match Hashtbl.find_opt t.sig_handlers signo with
         | None -> ()
         | Some h ->
           (match func_by_name t h with
            | Some fl ->
              push_call t th ~fl ~vargs:[ Int signo ] ~ret_dst:(-1)
                ~fresh:true
            | None -> trap "signal handler %s is not a function" h))
      (List.rev pending)

let pop_frame t (th : thread) (retval : Value.t) =
  match th.frames with
  | [] -> trap "return with empty frame stack"
  | frame :: rest ->
    th.frames <- rest;
    if frame.fresh then begin
      (match th.segs with
       | _ :: outer :: _ as segs ->
         th.segs <- List.tl segs;
         (* the call site contributes a fixed +1 (Sec. 6) *)
         outer.cnt <- outer.cnt + 1
       | _ -> trap "fresh frame without outer counter segment")
    end;
    (match rest with
     | [] -> th.status <- Finished retval
     | caller :: _ ->
       if frame.ret_dst >= 0 then caller.regs.(frame.ret_dst) <- retval);
    ignore t

(* ------------------------------------------------------------------ *)
(* Driver interface for pending events.                                 *)

let provide_result_hook :
  (t -> thread -> unit) ref = ref (fun _ _ -> ())

let () = provide_result_hook := deliver_signals

let provide_result t (th : thread) (v : Value.t) =
  match th.status with
  | Awaiting p ->
    if p.dst_slot >= 0 then (cur_frame th).regs.(p.dst_slot) <- v;
    t.cycles <- t.cycles + Cost.syscall;
    (match t.prof with
     | Some pr ->
       let frame = cur_frame th in
       Profile.charge_cycles pr ~op:Profile.op_syscall
         ~blk:(frame.prof_base + frame.bid) ~cost:Cost.syscall;
       Profile.charge_syscall pr ~sys:p.sys ~cost:Cost.syscall
     | None -> ());
    (match t.on_obs_syscall with Some f -> f t th p | None -> ());
    th.status <- Runnable;
    (* signal delivery point: syscall return *)
    !provide_result_hook t th
  | Runnable | At_barrier _ | Finished _ ->
    invalid_arg "Machine.provide_result: thread not awaiting"

let release_barrier t (th : thread) =
  match th.status with
  | At_barrier { loop; dec } ->
    let seg = cur_seg th in
    seg.cnt <- seg.cnt - dec;
    (match seg.loops with
     | (l, i) :: rest when l = loop -> seg.loops <- (l, i + 1) :: rest
     | _ -> trap "loop_back L%d: loop stack mismatch" loop);
    t.cycles <- t.cycles + Cost.barrier;
    (match t.prof with
     | Some pr ->
       let frame = cur_frame th in
       Profile.charge_cycles pr ~op:Profile.op_loop_back
         ~blk:(frame.prof_base + frame.bid) ~cost:Cost.barrier
     | None -> ());
    (match t.on_obs_barrier with
     | Some f -> f t th { loop; dec }
     | None -> ());
    th.status <- Runnable
  | Runnable | Awaiting _ | Finished _ ->
    invalid_arg "Machine.release_barrier: thread not at barrier"

let record_cnt_sample t (th : thread) =
  let c = (cur_seg th).cnt in
  t.cnt_sum <- t.cnt_sum + c;
  t.cnt_samples <- t.cnt_samples + 1;
  if c > t.cnt_max then t.cnt_max <- c;
  match t.on_obs_cnt_sample with Some f -> f t th c | None -> ()

(* Common syscall dispatch tail: alarm countdown, counter bump, event. *)
let syscall_event t (th : thread) (frame : frame) (p : pending) : event option =
  (match th.alarm with
   | Some (1, signo) ->
     th.alarm <- None;
     raise_signal th signo
   | Some (k, signo) -> th.alarm <- Some (k - 1, signo)
   | None -> ());
  let seg = cur_seg th in
  seg.cnt <- seg.cnt + 1;
  record_cnt_sample t th;
  t.syscalls <- t.syscalls + 1;
  (* step counted at dispatch; the Cost.syscall cycles land in the
     same block at [provide_result] *)
  charge t frame Profile.op_syscall 0;
  th.status <- Awaiting p;
  Some (Ev_syscall th)

(* ------------------------------------------------------------------ *)
(* Flat quantum runner: the hot loop.                                  *)

exception Trapped of string

(* Batched retirement of a maximal run of [n] consecutive bookkeeping
   instructions (cnt_add / loop_enter / loop_exit) starting at [pc0].
   Only entered when the whole run fits in the remaining quantum and
   fuel, so dispatch, fuel and quantum checks happen once per run
   instead of once per instruction.  Accounting is per-instruction and
   identical to the unbatched arms (the first instruction's step was
   already counted by the caller), so steps, cycles, instr_events and
   profile attribution stay bit-identical — including mid-run traps on
   malformed loop stacks. *)
let exec_instr_run t (th : thread) (frame : frame)
    (code : Value.t Flat.finstr array) (pc0 : int) (n : int) : unit =
  let seg = cur_seg th in
  for pc = pc0 to pc0 + n - 1 do
    let ins = Array.unsafe_get code pc in
    if pc > pc0 then t.steps <- t.steps + 1;
    t.instr_events <- t.instr_events + 1;
    match ins.Flat.op with
    | 5 (* cnt_add *) ->
      charge t frame Profile.op_cnt_add Cost.cnt_instr;
      seg.cnt <- seg.cnt + ins.Flat.a
    | 6 (* loop_enter *) ->
      charge t frame Profile.op_loop_enter Cost.cnt_instr;
      seg.loops <- (ins.Flat.a, 0) :: seg.loops
    | _ (* loop_exit *) ->
      charge t frame Profile.op_loop_exit Cost.cnt_instr;
      let pops = ins.Flat.pops in
      for pi = 0 to Array.length pops - 1 do
        let l = Array.unsafe_get pops pi in
        match seg.loops with
        | (l', _) :: rest when l' = l -> seg.loops <- rest
        | _ -> trap "loop_exit L%d: loop stack mismatch" l
      done;
      seg.cnt <- seg.cnt + ins.Flat.b
  done;
  frame.idx <- pc0 + n

(* Execute up to [q0] instructions of [th] (which must be Runnable).
   Returns the event that ended the quantum early, or [None] when the
   quantum (or the thread's runnability) ran out.  The current frame's
   code/regs/names are held in locals and refetched only when the frame
   stack changes (call/ret), so the per-instruction cost is one int
   match plus field loads — no hashing, no list traversal, and no
   allocation beyond what the semantics demand (syscall argument lists,
   loop-stack conses, callee register files).  Reads through
   lowering-produced indices are unchecked: pc targets and register
   slots are in range by construction (every block ends in a
   redirecting terminator, slots are assigned below [nslots]);
   program-controlled indices — array loads/stores — keep their
   checks. *)
let run_quantum_flat t (th : thread) (q0 : int) : event option =
  let rec enter q =
    match th.frames with
    | [] -> None
    | frame :: _ ->
      run frame frame.fl.Flat.code frame.regs frame.fl.Flat.slot_names q
  and run frame code regs names q =
    if q = 0 then None
    else if t.steps >= t.max_steps then raise (Trapped "fuel exhausted")
    else begin
      let ins = Array.unsafe_get code frame.idx in
      t.steps <- t.steps + 1;
      frame.idx <- frame.idx + 1;
      frame.bid <- ins.Flat.i_bid;
      match ins.Flat.op with
      | 0 (* assign *) ->
        charge t frame Profile.op_assign Cost.instr;
        Array.unsafe_set regs ins.Flat.dst
          (Eval.eval_flat regs names ins.Flat.e1);
        run frame code regs names (q - 1)
      | 1 (* store *) ->
        charge t frame Profile.op_store Cost.instr;
        let va = Array.unsafe_get regs ins.Flat.a in
        if va == undef then trap "undefined variable %s" ins.Flat.name;
        let vi = Eval.eval_flat regs names ins.Flat.e1 in
        let ve = Eval.eval_flat regs names ins.Flat.e2 in
        (match (va, vi) with
         | Arr arr, Int k ->
           if k >= 0 && k < Array.length arr then arr.(k) <- ve
           else
             trap "store index %d out of bounds (len %d)" k (Array.length arr)
         | _ -> trap "store into non-array %s" ins.Flat.name);
        run frame code regs names (q - 1)
      | 2 (* call: resolved callee, arity known-good — args evaluate
             straight into the callee's register file *) ->
        charge t frame Profile.op_call Cost.instr;
        let fl = Array.unsafe_get t.fprog.Flat.funcs ins.Flat.a in
        let callee_regs = Array.make fl.Flat.nslots undef in
        let args = ins.Flat.args in
        for i = 0 to Array.length args - 1 do
          Array.unsafe_set callee_regs i
            (Eval.eval_flat regs names (Array.unsafe_get args i))
        done;
        let fn = fl.Flat.f_ir in
        th.frames <-
          { fn; fl; bid = fn.Ir.entry; idx = fl.Flat.entry_pc;
            regs = callee_regs; ret_dst = ins.Flat.dst;
            fresh = ins.Flat.fresh;
            prof_base = prof_base_of t fn.Ir.fname }
          :: th.frames;
        if ins.Flat.fresh then push_seg t th;
        enter (q - 1)
      | 3 (* call_indirect *) ->
        charge t frame Profile.op_call_indirect Cost.instr;
        let vf = Eval.eval_flat regs names ins.Flat.e1 in
        let args = ins.Flat.args in
        let n = Array.length args in
        let rec build i =
          if i = n then []
          else
            let v = Eval.eval_flat regs names args.(i) in
            v :: build (i + 1)
        in
        let vargs = build 0 in
        (match vf with
         | Fptr name ->
           (match func_by_name t name with
            | Some fl ->
              push_call t th ~fl ~vargs ~ret_dst:ins.Flat.dst ~fresh:true
            | None -> trap "indirect call to unknown function %s" name)
         | v -> trap "indirect call through non-funptr %s" (to_string v));
        enter (q - 1)
      | 4 (* syscall *) ->
        let args = ins.Flat.args in
        let n = Array.length args in
        let rec build i =
          if i = n then []
          else
            let v = Eval.eval_flat regs names args.(i) in
            v :: build (i + 1)
        in
        let vargs = build 0 in
        syscall_event t th frame
          { sys = ins.Flat.name; sysargs = vargs; dst = ins.Flat.dst_name;
            dst_slot = ins.Flat.dst; site = ins.Flat.b }
      | 5 (* cnt_add *) ->
        let pc0 = frame.idx - 1 in
        let n = Array.unsafe_get frame.fl.Flat.instr_runs pc0 in
        if n > 1 && n <= q && t.steps + n - 1 <= t.max_steps then begin
          exec_instr_run t th frame code pc0 n;
          run frame code regs names (q - n)
        end
        else begin
          charge t frame Profile.op_cnt_add Cost.cnt_instr;
          t.instr_events <- t.instr_events + 1;
          (cur_seg th).cnt <- (cur_seg th).cnt + ins.Flat.a;
          run frame code regs names (q - 1)
        end
      | 6 (* loop_enter *) ->
        let pc0 = frame.idx - 1 in
        let n = Array.unsafe_get frame.fl.Flat.instr_runs pc0 in
        if n > 1 && n <= q && t.steps + n - 1 <= t.max_steps then begin
          exec_instr_run t th frame code pc0 n;
          run frame code regs names (q - n)
        end
        else begin
          charge t frame Profile.op_loop_enter Cost.cnt_instr;
          t.instr_events <- t.instr_events + 1;
          let seg = cur_seg th in
          seg.loops <- (ins.Flat.a, 0) :: seg.loops;
          run frame code regs names (q - 1)
        end
      | 7 (* loop_back *) ->
        t.instr_events <- t.instr_events + 1;
        (* step counted here; the Cost.barrier cycles land in the same
           block at [release_barrier] *)
        charge t frame Profile.op_loop_back 0;
        th.status <- At_barrier { loop = ins.Flat.a; dec = ins.Flat.b };
        Some (Ev_barrier th)
      | 8 (* loop_exit *) ->
        let pc0 = frame.idx - 1 in
        let n = Array.unsafe_get frame.fl.Flat.instr_runs pc0 in
        if n > 1 && n <= q && t.steps + n - 1 <= t.max_steps then begin
          exec_instr_run t th frame code pc0 n;
          run frame code regs names (q - n)
        end
        else begin
          charge t frame Profile.op_loop_exit Cost.cnt_instr;
          t.instr_events <- t.instr_events + 1;
          let seg = cur_seg th in
          let pops = ins.Flat.pops in
          for pi = 0 to Array.length pops - 1 do
            let l = Array.unsafe_get pops pi in
            (match seg.loops with
             | (l', _) :: rest when l' = l -> seg.loops <- rest
             | _ -> trap "loop_exit L%d: loop stack mismatch" l)
          done;
          seg.cnt <- seg.cnt + ins.Flat.b;
          run frame code regs names (q - 1)
        end
      | 9 (* jump *) ->
        charge t frame Profile.op_jump Cost.instr;
        frame.idx <- ins.Flat.a;
        run frame code regs names (q - 1)
      | 10 (* branch *) ->
        charge t frame Profile.op_branch Cost.instr;
        let v = Eval.eval_flat regs names ins.Flat.e1 in
        frame.idx <- (if truthy v then ins.Flat.a else ins.Flat.b);
        run frame code regs names (q - 1)
      | 11 (* ret *) ->
        charge t frame Profile.op_ret Cost.instr;
        let v = Eval.eval_flat regs names ins.Flat.e1 in
        pop_frame t th v;
        (match th.status with
         | Runnable -> enter (q - 1)
         | Awaiting _ | At_barrier _ | Finished _ -> None)
      | 12 (* call with statically-known arity mismatch: args still
              evaluate first (their traps take precedence), then the
              historical runtime message *) ->
        charge t frame Profile.op_call Cost.instr;
        let args = ins.Flat.args in
        for i = 0 to Array.length args - 1 do
          ignore (Eval.eval_flat regs names args.(i) : Value.t)
        done;
        trap "call %s: arity mismatch (%d args, %d params)" ins.Flat.name
          ins.Flat.a ins.Flat.b
      | 13 (* call to a statically-unknown callee: same evaluation
              order, then the historical Invalid_argument from the name
              lookup *) ->
        charge t frame Profile.op_call Cost.instr;
        let args = ins.Flat.args in
        for i = 0 to Array.length args - 1 do
          ignore (Eval.eval_flat regs names args.(i) : Value.t)
        done;
        ignore (Ir.find_func_exn t.prog ins.Flat.name : Ir.func);
        run frame code regs names (q - 1)
      | _ -> assert false
    end
  in
  enter q0

(* ------------------------------------------------------------------ *)
(* Tree stepper: the original walk over the block-structured IR, kept
   as the differential-testing reference ([LDX_VM=tree]).  Locals live
   in the same register file; names resolve through the flat symbol
   table.                                                              *)

let lookup_tree (frame : frame) (x : string) : Value.t =
  match Hashtbl.find_opt frame.fl.Flat.slot_of x with
  | Some i ->
    let v = frame.regs.(i) in
    if v == undef then trap "undefined variable %s" x else v
  | None -> trap "undefined variable %s" x

let set_tree (frame : frame) (x : string) (v : Value.t) : unit =
  match Hashtbl.find_opt frame.fl.Flat.slot_of x with
  | Some i -> frame.regs.(i) <- v
  | None -> assert false (* every name in the function's code has a slot *)

let slot_of_opt (frame : frame) = function
  | None -> -1
  | Some d ->
    (match Hashtbl.find_opt frame.fl.Flat.slot_of d with
     | Some i -> i
     | None -> assert false)

let step_tree t (th : thread) : event option =
  let frame = cur_frame th in
  let block = frame.fn.Ir.blocks.(frame.bid) in
  t.steps <- t.steps + 1;
  let eval e = Eval.eval_reg frame.fl.Flat.slot_of frame.regs e in
  if frame.idx < Array.length block.Ir.instrs then begin
    let instr = block.Ir.instrs.(frame.idx) in
    frame.idx <- frame.idx + 1;
    match instr with
    | Ir.Assign (x, e) ->
      charge t frame Profile.op_assign Cost.instr;
      set_tree frame x (eval e);
      None
    | Ir.Store (a, i, e) ->
      charge t frame Profile.op_store Cost.instr;
      let va = lookup_tree frame a in
      let vi = eval i in
      let ve = eval e in
      (match (va, vi) with
       | Arr arr, Int k ->
         if k >= 0 && k < Array.length arr then arr.(k) <- ve
         else trap "store index %d out of bounds (len %d)" k (Array.length arr)
       | _ -> trap "store into non-array %s" a);
      None
    | Ir.Call { dst; callee; args; fresh_frame } ->
      charge t frame Profile.op_call Cost.instr;
      let vargs = List.map eval args in
      (match func_by_name t callee with
       | Some fl ->
         push_call t th ~fl ~vargs ~ret_dst:(slot_of_opt frame dst)
           ~fresh:fresh_frame
       | None ->
         ignore (Ir.find_func_exn t.prog callee : Ir.func);
         ());
      None
    | Ir.Call_indirect { dst; fptr; args; site = _ } ->
      charge t frame Profile.op_call_indirect Cost.instr;
      let vf = eval fptr in
      let vargs = List.map eval args in
      (match vf with
       | Fptr name ->
         (match func_by_name t name with
          | Some fl ->
            push_call t th ~fl ~vargs ~ret_dst:(slot_of_opt frame dst)
              ~fresh:true
          | None -> trap "indirect call to unknown function %s" name)
       | v -> trap "indirect call through non-funptr %s" (to_string v));
      None
    | Ir.Syscall { dst; sys; args; site } ->
      let vargs = List.map eval args in
      syscall_event t th frame
        { sys; sysargs = vargs; dst; dst_slot = slot_of_opt frame dst; site }
    | Ir.Cnt_add k ->
      charge t frame Profile.op_cnt_add Cost.cnt_instr;
      t.instr_events <- t.instr_events + 1;
      (cur_seg th).cnt <- (cur_seg th).cnt + k;
      None
    | Ir.Loop_enter { loop } ->
      charge t frame Profile.op_loop_enter Cost.cnt_instr;
      t.instr_events <- t.instr_events + 1;
      let seg = cur_seg th in
      seg.loops <- (loop, 0) :: seg.loops;
      None
    | Ir.Loop_back { loop; dec } ->
      t.instr_events <- t.instr_events + 1;
      charge t frame Profile.op_loop_back 0;
      th.status <- At_barrier { loop; dec };
      Some (Ev_barrier th)
    | Ir.Loop_exit { pops; bump } ->
      charge t frame Profile.op_loop_exit Cost.cnt_instr;
      t.instr_events <- t.instr_events + 1;
      let seg = cur_seg th in
      List.iter
        (fun l ->
           match seg.loops with
           | (l', _) :: rest when l' = l -> seg.loops <- rest
           | _ -> trap "loop_exit L%d: loop stack mismatch" l)
        pops;
      seg.cnt <- seg.cnt + bump;
      None
  end
  else begin
    (* terminator: charge before [frame.bid] moves so the attribution
       lands in the block being left *)
    match block.Ir.term with
    | Ir.Jump l ->
      charge t frame Profile.op_jump Cost.instr;
      frame.bid <- l;
      frame.idx <- 0;
      None
    | Ir.Branch (c, bt, bf) ->
      charge t frame Profile.op_branch Cost.instr;
      let v = eval c in
      frame.bid <- (if truthy v then bt else bf);
      frame.idx <- 0;
      None
    | Ir.Ret e ->
      charge t frame Profile.op_ret Cost.instr;
      let v = match e with None -> Unit | Some e -> eval e in
      pop_frame t th v;
      None
  end

(* Tree quantum runner: per-step loop over [step_tree], same contract
   as [run_quantum_flat]. *)
let run_quantum_tree t (th : thread) (q : int) : event option =
  let result = ref None in
  let go = ref true in
  let i = ref 0 in
  while !go && !i < q do
    if t.steps >= t.max_steps then raise (Trapped "fuel exhausted");
    incr i;
    match step_tree t th with
    | None ->
      (match th.status with
       | Runnable -> ()
       | Awaiting _ | At_barrier _ | Finished _ -> go := false)
    | Some e ->
      result := Some e;
      go := false
  done;
  !result

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)

let runnable_threads t =
  List.filter
    (fun th -> match th.status with Runnable -> true | _ -> false)
    t.threads

(* Exact-size runnable-set buffer for [Sched.pick] (which sizes the
   choice set by [Array.length]); cached per size, reused across
   decisions.  The scheduler copies the array if it retains it. *)
let scratch_of t (n : int) : int array =
  if Array.length t.scratch < n then begin
    let old = t.scratch in
    let no = Array.length old in
    t.scratch <-
      Array.init (max n 4) (fun i ->
          if i < no then old.(i) else Array.make (i + 1) 0)
  end;
  t.scratch.(n - 1)

let run_until_event (t : t) : event =
  if t.finished then Ev_done
  else begin
    try
      let result = ref Ev_idle in
      let running = ref true in
      while !running do
        if Ldx_osim.Os.exited t.os then begin
          t.finished <- true;
          result := Ev_done;
          running := false
        end
        (* exact fuel bound: trap *before* the step that would exceed
           max_steps, so exactly max_steps steps execute *)
        else if t.steps >= t.max_steps then raise (Trapped "fuel exhausted")
        else begin
          match t.by_spawn.(0).status with
          | Finished _ ->
            t.finished <- true;
            result := Ev_done;
            running := false
          | Runnable | Awaiting _ | At_barrier _ ->
            let nthreads = t.spawn_count in
            let nr = ref 0 in
            for i = 0 to nthreads - 1 do
              match t.by_spawn.(i).status with
              | Runnable -> incr nr
              | _ -> ()
            done;
            if !nr = 0 then begin
              let waiting = ref false in
              for i = 0 to nthreads - 1 do
                match t.by_spawn.(i).status with
                | Awaiting _ | At_barrier _ -> waiting := true
                | Runnable | Finished _ -> ()
              done;
              if !waiting then begin
                result := Ev_idle;
                running := false
              end
              else begin
                t.finished <- true;
                result := Ev_done;
                running := false
              end
            end
            else begin
              (* delegate the pick to the pluggable scheduler; threads
                 are identified by spawn index (the dual-execution
                 pairing key), which doubles as the [by_spawn] index *)
              let runnable = scratch_of t !nr in
              let j = ref 0 in
              for i = 0 to nthreads - 1 do
                match t.by_spawn.(i).status with
                | Runnable ->
                  runnable.(!j) <- i;
                  incr j
                | _ -> ()
              done;
              let d = Sched.pick t.sched ~runnable ~steps:t.steps in
              let c = d.Sched.d_chosen in
              (* validate the pick: a hostile or buggy scheduler naming
                 a non-runnable (or unknown) spawn index is a clean
                 trap, not an escaped Not_found *)
              if c < 0 || c >= nthreads then
                raise
                  (Trapped
                     (Printf.sprintf
                        "scheduler pick: no thread with spawn index %d" c));
              let th = t.by_spawn.(c) in
              (match th.status with
               | Runnable -> ()
               | Awaiting _ | At_barrier _ | Finished _ ->
                 raise
                   (Trapped
                      (Printf.sprintf
                         "scheduler pick: thread %d is not runnable" c)));
              (match t.on_obs_sched with Some f -> f t d | None -> ());
              let q = d.Sched.d_quantum in
              (* the quantum runners re-check fuel before every step:
                 without that an execution could overshoot max_steps by
                 a full quantum before the outer check fires *)
              (try
                 match
                   (match t.vm with
                    | Flat -> run_quantum_flat t th q
                    | Tree -> run_quantum_tree t th q)
                 with
                 | Some e ->
                   result := e;
                   running := false
                 | None -> ()
               with Trap msg -> raise (Trapped msg))
            end
        end
      done;
      !result
    with Trapped msg ->
      t.trap <- Some msg;
      t.finished <- true;
      Ev_trap msg
  end

(* All threads currently awaiting the driver. *)
let awaiting_threads t =
  List.filter
    (fun th -> match th.status with Awaiting _ -> true | _ -> false)
    t.threads

let pending_of (th : thread) =
  match th.status with
  | Awaiting p -> p
  | Runnable | At_barrier _ | Finished _ ->
    invalid_arg "Machine.pending_of: thread not awaiting"

let result_of_main t =
  match (main_thread t).status with
  | Finished v -> Some v
  | Runnable | Awaiting _ | At_barrier _ -> None

(* Average dynamic counter value (Table 1 "Dyn. Cnt"). *)
let dyn_cnt_avg t =
  if t.cnt_samples = 0 then 0.0
  else float_of_int t.cnt_sum /. float_of_int t.cnt_samples

(* ------------------------------------------------------------------ *)
(* Decouple-point snapshots (the machine half of lib/snap).

   A [snapshot] is a canonical, self-contained pure-data projection of
   the machine: no Hashtbls (sorted assoc lists instead), no closures,
   no aliases into the live machine.  Values are deep-copied through a
   physical-identity memo, so aliasing — including cyclic arrays — is
   preserved INSIDE the snapshot but severed from the original; the
   machine may keep running after [snapshot], and one snapshot supports
   any number of [restore]s (restore deep-copies again).  The canonical
   form is what makes snapshots comparison- and Marshal-stable: equal
   machine states project to structurally equal snapshots regardless of
   Hashtbl capacity or insertion history — the property [Ldx_snap]'s
   [equal] and [fingerprint] rest on.

   NOT captured: the program ([prog]/[fprog] are immutable and shared —
   [restore] takes them as inputs), the profile (pass [?prof] to
   [restore]), the obs hooks and lock gate (consumers reinstall after
   restore), the OS world (the caller's business: [Os.copy] here, a
   canonical projection in [Ldx_snap]), and the scratch buffers
   (rebuilt on demand).  Capture is a pull operation — a machine that
   is never snapshotted pays nothing. *)

type sframe = {
  sf_fname : string;
  sf_bid : int;
  sf_idx : int;
  sf_regs : Value.t array;   (* undef slots hold [Unit]; see [sf_undef] *)
  sf_undef : bool array;     (* per-slot: the live slot was the sentinel *)
  sf_ret_dst : int;
  sf_fresh : bool;
}

type sjmp = {
  sj_key : string;
  sj_frames : int list;      (* frame-table indexes, top first *)
  sj_bid : int;
  sj_idx : int;
  sj_dst : int;
  sj_segs : (int * (int * int) list) list;
}

type spending = {
  sp_sys : string;
  sp_args : Value.t list;
  sp_dst : string option;
  sp_dst_slot : int;
  sp_site : int;
}

type sstatus =
  | S_runnable
  | S_awaiting of spending
  | S_at_barrier of barrier
  | S_finished of Value.t

type sthread = {
  sth_tid : int;
  sth_spawn : int;
  sth_table : sframe array;
      (* every frame reachable from the stack or a jmp_buf, in first-
         encounter order (stack top first, then key-sorted jmp_bufs) *)
  sth_stack : int list;      (* th.frames as table indexes, top first *)
  sth_segs : (int * (int * int) list) list;  (* (cnt, loops), top first *)
  sth_status : sstatus;
  sth_jmps : sjmp list;      (* key-sorted *)
  sth_alarm : (int * int) option;
  sth_signals : int list;
}

type snapshot = {
  sn_vm : vm_mode;
  sn_threads : sthread array;          (* creation order *)
  sn_next_tid : int;
  sn_spawn_count : int;
  sn_locks : (string * (int option * int)) list;
      (* key-sorted: lock -> (owner tid, acquisitions) *)
  sn_handlers : (int * string) list;   (* signo-sorted *)
  sn_lock_trace : (string * int) list;
  sn_sched : Sched.state;              (* private copy, log preserved *)
  sn_steps : int;
  sn_cycles : int;
  sn_syscalls : int;
  sn_instr_events : int;
  sn_finished : bool;
  sn_trap : string option;
  sn_max_steps : int;
  sn_cnt_sum : int;
  sn_cnt_max : int;
  sn_cnt_samples : int;
  sn_max_seg_depth : int;
}

(* Deep value copy through a memo keyed on the payload array's physical
   identity.  Registering the destination BEFORE copying elements makes
   cyclic arrays (a.(0) == a) terminate; keying on identity keeps
   aliased arrays aliased in the copy — sharing is semantics here: a
   store through one alias must stay visible through the other after
   restore.  The memo is an assoc list scanned with [==]: captures see
   few distinct arrays, and an O(n^2) scan beats dragging in a
   physical-equality hashtable.  Zero-length payloads are skipped (all
   zero-length arrays share one atom, including [undef]'s payload). *)
let rec copy_value (memo : (Value.t array * Value.t array) list ref)
    (v : Value.t) : Value.t =
  match v with
  | Unit | Int _ | Str _ | Fptr _ -> v
  | Arr a ->
    if Array.length a = 0 then Arr [||]
    else begin
      let rec find = function
        | [] -> None
        | (src, dst) :: rest -> if src == a then Some dst else find rest
      in
      match find !memo with
      | Some dst -> Arr dst
      | None ->
        let dst = Array.make (Array.length a) Unit in
        memo := (a, dst) :: !memo;
        Array.iteri (fun i x -> dst.(i) <- copy_value memo x) a;
        Arr dst
    end

let snapshot (t : t) : snapshot =
  let vmemo = ref [] in
  let cv v = copy_value vmemo v in
  let snap_frame (f : frame) : sframe =
    let n = Array.length f.regs in
    let regs = Array.make n Unit and und = Array.make n false in
    for i = 0 to n - 1 do
      let v = f.regs.(i) in
      (* [undef] is structurally an [Arr [||]], indistinguishable from a
         legitimate empty array — mask it out by physical identity.  It
         only ever lives directly in register slots (reads of it trap
         before it can flow anywhere else). *)
      if v == undef then und.(i) <- true else regs.(i) <- cv v
    done;
    { sf_fname = f.fn.Ir.fname; sf_bid = f.bid; sf_idx = f.idx;
      sf_regs = regs; sf_undef = und; sf_ret_dst = f.ret_dst;
      sf_fresh = f.fresh }
  in
  let snap_thread (th : thread) : sthread =
    (* Frame table: frames form a DAG, not a stack — jmp_bufs ALIAS live
       frames (and may keep popped frames reachable), and restore must
       rebuild exactly that shape.  Dedup by physical identity into a
       table; stacks become index lists.  jmp_bufs are key-sorted before
       traversal so table order never depends on Hashtbl iteration. *)
    let fmemo : (frame * int) list ref = ref [] in
    let rev_table = ref [] and ntable = ref 0 in
    let index_of (f : frame) : int =
      let rec find = function
        | [] -> None
        | (g, i) :: rest -> if g == f then Some i else find rest
      in
      match find !fmemo with
      | Some i -> i
      | None ->
        let i = !ntable in
        incr ntable;
        fmemo := (f, i) :: !fmemo;
        rev_table := snap_frame f :: !rev_table;
        i
    in
    let stack = List.map index_of th.frames in
    let jmps =
      Hashtbl.fold (fun k b acc -> (k, b) :: acc) th.jmp_bufs []
      |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
      |> List.map (fun (key, (b : jmp_buf)) ->
          { sj_key = key;
            sj_frames = List.map index_of b.j_frames;
            sj_bid = b.j_bid; sj_idx = b.j_idx; sj_dst = b.j_dst;
            sj_segs = b.j_segs })
    in
    let status =
      match th.status with
      | Runnable -> S_runnable
      | Awaiting p ->
        S_awaiting { sp_sys = p.sys; sp_args = List.map cv p.sysargs;
                     sp_dst = p.dst; sp_dst_slot = p.dst_slot;
                     sp_site = p.site }
      | At_barrier b -> S_at_barrier b
      | Finished v -> S_finished (cv v)
    in
    { sth_tid = th.tid; sth_spawn = th.spawn_index;
      sth_table = Array.of_list (List.rev !rev_table);
      sth_stack = stack;
      sth_segs = List.map (fun s -> (s.cnt, s.loops)) th.segs;
      sth_status = status;
      sth_jmps = jmps;
      sth_alarm = th.alarm;
      sth_signals = th.pending_signals }
  in
  let locks =
    Hashtbl.fold
      (fun k (l : lock_state) acc -> (k, (l.owner, l.acquisitions)) :: acc)
      t.locks []
    |> List.sort compare
  in
  let handlers =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sig_handlers []
    |> List.sort compare
  in
  { sn_vm = t.vm;
    sn_threads = Array.of_list (List.map snap_thread t.threads);
    sn_next_tid = t.next_tid;
    sn_spawn_count = t.spawn_count;
    sn_locks = locks;
    sn_handlers = handlers;
    sn_lock_trace = t.lock_trace;
    sn_sched = Sched.copy_full t.sched;
    sn_steps = t.steps;
    sn_cycles = t.cycles;
    sn_syscalls = t.syscalls;
    sn_instr_events = t.instr_events;
    sn_finished = t.finished;
    sn_trap = t.trap;
    sn_max_steps = t.max_steps;
    sn_cnt_sum = t.cnt_sum;
    sn_cnt_max = t.cnt_max;
    sn_cnt_samples = t.cnt_samples;
    sn_max_seg_depth = t.max_seg_depth }

(* Compile [prog] to the VM's flat form (the same compilation [create]
   performs) — for restore paths that have no machine to borrow a
   compiled program from (e.g. a snapshot arriving from another
   process). *)
let compile (prog : Ir.program) : Value.t Flat.program =
  Flat.compile value_consts prog

let restore ?prof ?sched ~(prog : Ir.program)
    ~(fprog : Value.t Flat.program) (os : Ldx_osim.Os.t)
    (snap : snapshot) : t =
  (match prof with Some p -> Profile.attach p prog | None -> ());
  let vmemo = ref [] in
  let rv v = copy_value vmemo v in
  let build_frame (sf : sframe) : frame =
    let fi =
      match Hashtbl.find_opt fprog.Flat.fidx sf.sf_fname with
      | Some fi -> fi
      | None ->
        invalid_arg
          (Printf.sprintf "Machine.restore: unknown function %s" sf.sf_fname)
    in
    let fl = fprog.Flat.funcs.(fi) in
    if Array.length sf.sf_regs <> fl.Flat.nslots then
      invalid_arg
        (Printf.sprintf
           "Machine.restore: %s has %d slots, snapshot carries %d"
           sf.sf_fname fl.Flat.nslots (Array.length sf.sf_regs));
    let regs =
      Array.init fl.Flat.nslots (fun i ->
          if sf.sf_undef.(i) then undef else rv sf.sf_regs.(i))
    in
    let prof_base =
      match prof with Some p -> Profile.base_of p sf.sf_fname | None -> 0
    in
    { fn = fl.Flat.f_ir; fl; bid = sf.sf_bid; idx = sf.sf_idx;
      regs; ret_dst = sf.sf_ret_dst; fresh = sf.sf_fresh; prof_base }
  in
  let build_thread (st : sthread) : thread =
    let table = Array.map build_frame st.sth_table in
    let frame i =
      if i < 0 || i >= Array.length table then
        invalid_arg "Machine.restore: frame index out of range"
      else table.(i)
    in
    let jmp_bufs = Hashtbl.create (max 4 (List.length st.sth_jmps)) in
    List.iter
      (fun sj ->
         Hashtbl.replace jmp_bufs sj.sj_key
           { j_frames = List.map frame sj.sj_frames;
             j_bid = sj.sj_bid; j_idx = sj.sj_idx; j_dst = sj.sj_dst;
             j_segs = sj.sj_segs })
      st.sth_jmps;
    { tid = st.sth_tid; spawn_index = st.sth_spawn;
      frames = List.map frame st.sth_stack;
      segs = List.map (fun (cnt, loops) -> { cnt; loops }) st.sth_segs;
      status =
        (match st.sth_status with
         | S_runnable -> Runnable
         | S_awaiting p ->
           Awaiting { sys = p.sp_sys; sysargs = List.map rv p.sp_args;
                      dst = p.sp_dst; dst_slot = p.sp_dst_slot;
                      site = p.sp_site }
         | S_at_barrier b -> At_barrier b
         | S_finished v -> Finished (rv v));
      jmp_bufs;
      alarm = st.sth_alarm;
      pending_signals = st.sth_signals }
  in
  if Array.length snap.sn_threads = 0 then
    invalid_arg "Machine.restore: snapshot has no threads";
  let threads = Array.to_list (Array.map build_thread snap.sn_threads) in
  let locks = Hashtbl.create 8 in
  List.iter
    (fun (k, (owner, acquisitions)) ->
       Hashtbl.replace locks k { owner; acquisitions })
    snap.sn_locks;
  let sig_handlers = Hashtbl.create 4 in
  List.iter (fun (k, v) -> Hashtbl.replace sig_handlers k v)
    snap.sn_handlers;
  let t =
    { prog; fprog; vm = snap.sn_vm; os;
      threads;
      by_spawn = Array.make (max 4 snap.sn_spawn_count) (List.hd threads);
      next_tid = snap.sn_next_tid;
      spawn_count = snap.sn_spawn_count;
      scratch = [||];
      locks;
      sig_handlers;
      lock_trace = snap.sn_lock_trace;
      lock_gate = None;
      sched =
        (match sched with
         | Some s -> s
         | None -> Sched.copy_full snap.sn_sched);
      steps = snap.sn_steps;
      cycles = snap.sn_cycles;
      syscalls = snap.sn_syscalls;
      instr_events = snap.sn_instr_events;
      finished = snap.sn_finished;
      trap = snap.sn_trap;
      max_steps = snap.sn_max_steps;
      cnt_sum = snap.sn_cnt_sum;
      cnt_max = snap.sn_cnt_max;
      cnt_samples = snap.sn_cnt_samples;
      max_seg_depth = snap.sn_max_seg_depth;
      on_obs_syscall = None;
      on_obs_barrier = None;
      on_obs_cnt_sample = None;
      on_obs_sched = None;
      prof }
  in
  List.iter (register_thread t) threads;
  t
