(* The MiniC virtual machine.

   Event-driven: [run_until_event] executes instructions (scheduling
   threads round-robin with a seeded quantum) until something the driver
   must handle occurs:
   - a syscall was reached (the VM never services syscalls itself;
     the driver answers with [provide_result]),
   - a loop backedge barrier was reached ([release_barrier] resumes),
   - every live thread is waiting on the driver ([Ev_idle]),
   - the process finished or trapped.

   Counter state (Sec. 4-6): each thread carries a stack of counter
   segments; a segment has the current counter value and a stack of
   (loop id, iteration) pairs maintained by the Loop_enter / Loop_back /
   Loop_exit instrumentation.  Fresh-frame calls (indirect calls and calls
   to recursive functions) push a segment. *)

module Ir = Ldx_cfg.Ir
module Sched = Ldx_sched.Scheduler
open Value

type seg = {
  mutable cnt : int;
  mutable loops : (int * int) list;   (* (loop id, iteration), innermost first *)
}

type pending = {
  sys : string;
  sysargs : Value.t list;
  dst : string option;
  site : int;
}

type barrier = { loop : int; dec : int }

type status =
  | Runnable
  | Awaiting of pending
  | At_barrier of barrier
  | Finished of Value.t

type frame = {
  fn : Ir.func;
  mutable bid : int;
  mutable idx : int;
  locals : (string, Value.t) Hashtbl.t;
  ret_dst : string option;
  fresh : bool;                        (* pushed a counter segment *)
  prof_base : int;
  (* the function's base in the profile's flat block numbering (0 when
     profiling is off); a block's flat index is [prof_base + bid] *)
}

type thread = {
  tid : int;
  spawn_index : int;                   (* pairing key across dual executions *)
  mutable frames : frame list;         (* top first *)
  mutable segs : seg list;             (* top first *)
  mutable status : status;
  jmp_bufs : (string, jmp_buf) Hashtbl.t;
  mutable alarm : (int * int) option;
      (* (syscalls until delivery, signo) -- see [set_alarm] *)
  mutable pending_signals : int list;   (* delivery order, oldest first *)
}

(* setjmp/longjmp (Sec. 6): the buffer snapshots the frame stack shape,
   the resume point, the destination register of the setjmp, and — the
   paper's key detail — a deep copy of the counter-segment stack, which
   longjmp restores so alignment survives non-local control flow. *)
and jmp_buf = {
  j_frames : frame list;               (* frame list at the setjmp *)
  j_bid : int;                         (* resume point (after setjmp) *)
  j_idx : int;
  j_dst : string option;
  j_segs : (int * (int * int) list) list;  (* snapshot: (cnt, loops) *)
}

type lock_state = {
  mutable owner : int option;          (* tid *)
  mutable acquisitions : int;
}

type t = {
  prog : Ir.program;
  os : Ldx_osim.Os.t;
  mutable threads : thread list;       (* creation order *)
  mutable next_tid : int;
  mutable spawn_count : int;
  locks : (string, lock_state) Hashtbl.t;
  sig_handlers : (int, string) Hashtbl.t;    (* signo -> handler function *)
  mutable lock_trace : (string * int) list;  (* (lock, spawn_index), reversed *)
  mutable lock_gate : (string -> int -> bool) option;
  (* when set (slave mode), [try_lock] additionally asks the gate whether
     this thread (by spawn_index) may take the lock now *)
  sched : Sched.state;
  (* the pluggable scheduler (lib/sched): owns the pick cursor and
     quantum choice; the default is [Sched.legacy], bit-identical to
     the historical hard-wired round-robin *)
  mutable steps : int;
  mutable cycles : int;                (* virtual clock *)
  mutable syscalls : int;              (* syscall events emitted *)
  mutable instr_events : int;          (* instrumentation instrs executed *)
  mutable finished : bool;
  mutable trap : string option;
  max_steps : int;
  (* dynamic counter statistics (Table 1) *)
  mutable cnt_sum : int;
  mutable cnt_max : int;
  mutable cnt_samples : int;
  mutable max_seg_depth : int;
  (* observability step hooks (installed by the engine, [None] = off:
     the disabled path is one pointer comparison).  [on_obs_syscall]
     fires at each syscall return after the cost is charged and before
     signal handlers are pushed (so the thread's position is still the
     syscall's); [on_obs_barrier] at each barrier release after the
     counter reset; [on_obs_cnt_sample] at each dynamic counter
     sample. *)
  mutable on_obs_syscall : (t -> thread -> pending -> unit) option;
  mutable on_obs_barrier : (t -> thread -> barrier -> unit) option;
  mutable on_obs_cnt_sample : (t -> thread -> int -> unit) option;
  mutable on_obs_sched : (t -> Sched.decision -> unit) option;
  prof : Profile.t option;
  (* cost-attribution counters mirroring every virtual-clock charge;
     [None] = off, same one-pointer-comparison discipline as the obs
     hooks.  Never consulted by execution semantics. *)
}

type event =
  | Ev_syscall of thread
  | Ev_barrier of thread
  | Ev_idle
  | Ev_done
  | Ev_trap of string

let new_seg () = { cnt = 0; loops = [] }

let lock_key = function
  | Int n -> "i:" ^ string_of_int n
  | Str s -> "s:" ^ s
  | Unit | Arr _ | Fptr _ -> trap "invalid lock id"

let create ?(seed = 0) ?sched ?(max_steps = 30_000_000) ?prof
    (prog : Ir.program) (os : Ldx_osim.Os.t) : t =
  let main = Ir.find_func_exn prog "main" in
  if main.Ir.params <> [] then invalid_arg "Machine.create: main takes no params";
  (match prof with Some p -> Profile.attach p prog | None -> ());
  let main_base =
    match prof with Some p -> Profile.base_of p main.Ir.fname | None -> 0
  in
  let main_thread =
    { tid = 0; spawn_index = 0;
      frames =
        [ { fn = main; bid = main.Ir.entry; idx = 0;
            locals = Hashtbl.create 16; ret_dst = None; fresh = false;
            prof_base = main_base } ];
      segs = [ new_seg () ];
      status = Runnable;
      jmp_bufs = Hashtbl.create 4;
      alarm = None;
      pending_signals = [] }
  in
  { prog; os;
    threads = [ main_thread ];
    next_tid = 1;
    spawn_count = 1;
    locks = Hashtbl.create 8;
    sig_handlers = Hashtbl.create 4;
    lock_trace = [];
    lock_gate = None;
    sched =
      (match sched with
       | Some s -> s
       | None -> Sched.instantiate (Sched.legacy ~seed));
    steps = 0;
    cycles = 0;
    syscalls = 0;
    instr_events = 0;
    finished = false;
    trap = None;
    max_steps;
    cnt_sum = 0;
    cnt_max = 0;
    cnt_samples = 0;
    max_seg_depth = 1;
    on_obs_syscall = None;
    on_obs_barrier = None;
    on_obs_cnt_sample = None;
    on_obs_sched = None;
    prof }

let main_thread t = List.hd t.threads

(* Flat-block base of [fname] in the attached profile (0 when off). *)
let prof_base_of t fname =
  match t.prof with None -> 0 | Some p -> Profile.base_of p fname

(* Charge [cost] cycles for a dispatch of opcode [op] in [frame]'s
   current block.  The clock update is identical with profiling off. *)
let[@inline] charge t (frame : frame) op cost =
  t.cycles <- t.cycles + cost;
  match t.prof with
  | None -> ()
  | Some p -> Profile.charge p ~op ~blk:(frame.prof_base + frame.bid) ~cost

let cur_seg (th : thread) =
  match th.segs with
  | s :: _ -> s
  | [] -> trap "empty counter-segment stack"

let cur_frame (th : thread) =
  match th.frames with
  | f :: _ -> f
  | [] -> trap "empty frame stack"

(* Counter + loop-iteration snapshot for alignment (outermost segment
   first; within a segment loops are innermost first). *)
let position_of (th : thread) : (int * (int * int) list) list =
  List.rev_map (fun s -> (s.cnt, s.loops)) th.segs

let counter_of (th : thread) = (cur_seg th).cnt

(* ------------------------------------------------------------------ *)
(* Thread primitives (used by the driver to service thread syscalls).  *)

let spawn t (fname : string) (arg : Value.t) : int =
  let fn = Ir.find_func_exn t.prog fname in
  let locals = Hashtbl.create 16 in
  (match fn.Ir.params with
   | [] -> ()
   | [ p ] -> Hashtbl.replace locals p arg
   | _ -> trap "spawn: %s must take at most one parameter" fname);
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let spawn_index = t.spawn_count in
  t.spawn_count <- spawn_index + 1;
  let th =
    { tid; spawn_index;
      frames = [ { fn; bid = fn.Ir.entry; idx = 0; locals;
                   ret_dst = None; fresh = false;
                   prof_base = prof_base_of t fname } ];
      segs = [ new_seg () ];
      status = Runnable;
      jmp_bufs = Hashtbl.create 4;
      alarm = None;
      pending_signals = [] }
  in
  t.threads <- t.threads @ [ th ];
  tid

let find_thread t tid = List.find_opt (fun th -> th.tid = tid) t.threads

let lock_state t key =
  match Hashtbl.find_opt t.locks key with
  | Some s -> s
  | None ->
    let s = { owner = None; acquisitions = 0 } in
    Hashtbl.replace t.locks key s;
    s

(* Attempt to acquire; returns true on success.  Consults the lock gate
   (slave schedule replay) when installed. *)
let try_lock t (th : thread) (lockv : Value.t) : bool =
  let key = lock_key lockv in
  let st = lock_state t key in
  (* consult (and let advance) the gate only when the lock is free, so a
     replay gate's cursor moves exactly when a grant happens *)
  let gate_ok =
    st.owner = None
    && (match t.lock_gate with
        | None -> true
        | Some gate -> gate key th.spawn_index)
  in
  if gate_ok then begin
    st.owner <- Some th.tid;
    st.acquisitions <- st.acquisitions + 1;
    t.lock_trace <- (key, th.spawn_index) :: t.lock_trace;
    true
  end
  else false

let unlock t (th : thread) (lockv : Value.t) : bool =
  let key = lock_key lockv in
  let st = lock_state t key in
  if st.owner = Some th.tid then begin
    st.owner <- None;
    true
  end
  else false

let try_join t (target : int) : Value.t option =
  match find_thread t target with
  | Some { status = Finished v; _ } -> Some v
  | Some _ -> None
  | None -> Some (Int (-1))

(* setjmp: snapshot the resume point and a deep copy of the counter
   stack.  Called while the thread is Awaiting the setjmp syscall, so
   the current frame's [idx] already points past it. *)
let do_setjmp t (th : thread) (bufv : Value.t) ~(dst : string option) : unit =
  ignore t;
  let key = lock_key bufv in
  let frame = cur_frame th in
  Hashtbl.replace th.jmp_bufs key
    { j_frames = th.frames;
      j_bid = frame.bid;
      j_idx = frame.idx;
      j_dst = dst;
      j_segs = List.map (fun s -> (s.cnt, s.loops)) th.segs }

(* longjmp: unwind to the saved frame list, restore the counter stack,
   and make the setjmp return 1.  Returns false when the buffer was
   never set (C leaves this undefined; we make it a no-op failure). *)
let do_longjmp t (th : thread) (bufv : Value.t) : bool =
  ignore t;
  match Hashtbl.find_opt th.jmp_bufs (lock_key bufv) with
  | None -> false
  | Some buf ->
    th.frames <- buf.j_frames;
    let frame = cur_frame th in
    frame.bid <- buf.j_bid;
    frame.idx <- buf.j_idx;
    th.segs <- List.map (fun (cnt, loops) -> { cnt; loops }) buf.j_segs;
    (match buf.j_dst with
     | Some d -> Hashtbl.replace frame.locals d (Int 1)
     | None -> ());
    true

(* Signals (Sec. 7).  Handlers are invoked like indirect calls: a fresh
   counter-stack segment is pushed for the handler frame, so syscalls
   inside handlers align independently of the interrupted context.
   Delivery points are deterministic (at syscall returns), so two
   executions on the same path deliver at the same positions; path
   divergence falls to the engine's ordinary divergence handling. *)

let register_signal t (signo : int) (handler : string) : unit =
  Hashtbl.replace t.sig_handlers signo handler

let sigalrm = 14

(* Deliver [signo] to this thread after [n] further syscall events. *)
let set_alarm (th : thread) (n : int) (signo : int) : unit =
  if n <= 0 then th.alarm <- None
  else th.alarm <- Some (n, signo)

let raise_signal (th : thread) (signo : int) : unit =
  th.pending_signals <- th.pending_signals @ [ signo ]

(* ------------------------------------------------------------------ *)
(* Driver interface for pending events.                                 *)

let provide_result_hook :
  (t -> thread -> unit) ref = ref (fun _ _ -> ())

let provide_result t (th : thread) (v : Value.t) =
  match th.status with
  | Awaiting p ->
    (match p.dst with
     | Some d -> Hashtbl.replace (cur_frame th).locals d v
     | None -> ());
    t.cycles <- t.cycles + Cost.syscall;
    (match t.prof with
     | Some pr ->
       let frame = cur_frame th in
       Profile.charge_cycles pr ~op:Profile.op_syscall
         ~blk:(frame.prof_base + frame.bid) ~cost:Cost.syscall;
       Profile.charge_syscall pr ~sys:p.sys ~cost:Cost.syscall
     | None -> ());
    (match t.on_obs_syscall with Some f -> f t th p | None -> ());
    th.status <- Runnable;
    (* signal delivery point: syscall return *)
    !provide_result_hook t th
  | Runnable | At_barrier _ | Finished _ ->
    invalid_arg "Machine.provide_result: thread not awaiting"

let release_barrier t (th : thread) =
  match th.status with
  | At_barrier { loop; dec } ->
    let seg = cur_seg th in
    seg.cnt <- seg.cnt - dec;
    (match seg.loops with
     | (l, i) :: rest when l = loop -> seg.loops <- (l, i + 1) :: rest
     | _ -> trap "loop_back L%d: loop stack mismatch" loop);
    t.cycles <- t.cycles + Cost.barrier;
    (match t.prof with
     | Some pr ->
       let frame = cur_frame th in
       Profile.charge_cycles pr ~op:Profile.op_loop_back
         ~blk:(frame.prof_base + frame.bid) ~cost:Cost.barrier
     | None -> ());
    (match t.on_obs_barrier with
     | Some f -> f t th { loop; dec }
     | None -> ());
    th.status <- Runnable
  | Runnable | Awaiting _ | Finished _ ->
    invalid_arg "Machine.release_barrier: thread not at barrier"

(* ------------------------------------------------------------------ *)
(* Instruction execution.                                              *)

let push_call t (th : thread) ~(callee : Ir.func) ~args ~dst ~fresh =
  let locals = Hashtbl.create 16 in
  (try List.iter2 (fun p a -> Hashtbl.replace locals p a) callee.Ir.params args
   with Invalid_argument _ ->
     trap "call %s: arity mismatch (%d args, %d params)" callee.Ir.fname
       (List.length args) (List.length callee.Ir.params));
  th.frames <-
    { fn = callee; bid = callee.Ir.entry; idx = 0; locals; ret_dst = dst;
      fresh; prof_base = prof_base_of t callee.Ir.fname }
    :: th.frames;
  if fresh then begin
    th.segs <- new_seg () :: th.segs;
    let depth = List.length th.segs in
    if depth > t.max_seg_depth then t.max_seg_depth <- depth
  end

(* Push handler frames for every pending signal (oldest runs first, so
   push in reverse order).  Unhandled signals are ignored (the default
   disposition). *)
let deliver_signals t (th : thread) =
  match th.pending_signals with
  | [] -> ()
  | pending ->
    th.pending_signals <- [];
    List.iter
      (fun signo ->
         match Hashtbl.find_opt t.sig_handlers signo with
         | None -> ()
         | Some h ->
           (match Ir.find_func t.prog h with
            | Some fn ->
              push_call t th ~callee:fn ~args:[ Int signo ] ~dst:None
                ~fresh:true
            | None -> trap "signal handler %s is not a function" h))
      (List.rev pending)

let () = provide_result_hook := deliver_signals

let pop_frame t (th : thread) (retval : Value.t) =
  match th.frames with
  | [] -> trap "return with empty frame stack"
  | frame :: rest ->
    th.frames <- rest;
    if frame.fresh then begin
      (match th.segs with
       | _ :: outer :: _ as segs ->
         th.segs <- List.tl segs;
         (* the call site contributes a fixed +1 (Sec. 6) *)
         outer.cnt <- outer.cnt + 1
       | _ -> trap "fresh frame without outer counter segment")
    end;
    (match rest with
     | [] -> th.status <- Finished retval
     | caller :: _ ->
       (match frame.ret_dst with
        | Some d -> Hashtbl.replace caller.locals d retval
        | None -> ()));
    ignore t

let record_cnt_sample t (th : thread) =
  let c = (cur_seg th).cnt in
  t.cnt_sum <- t.cnt_sum + c;
  t.cnt_samples <- t.cnt_samples + 1;
  if c > t.cnt_max then t.cnt_max <- c;
  match t.on_obs_cnt_sample with Some f -> f t th c | None -> ()

(* Execute one instruction or terminator step of [th].  Returns an event
   if the driver must intervene. *)
let step_thread t (th : thread) : event option =
  let frame = cur_frame th in
  let block = frame.fn.Ir.blocks.(frame.bid) in
  t.steps <- t.steps + 1;
  if frame.idx < Array.length block.Ir.instrs then begin
    let instr = block.Ir.instrs.(frame.idx) in
    frame.idx <- frame.idx + 1;
    match instr with
    | Ir.Assign (x, e) ->
      charge t frame Profile.op_assign Cost.instr;
      Hashtbl.replace frame.locals x (Eval.eval frame.locals e);
      None
    | Ir.Store (a, i, e) ->
      charge t frame Profile.op_store Cost.instr;
      let va =
        match Hashtbl.find_opt frame.locals a with
        | Some v -> v
        | None -> trap "undefined variable %s" a
      in
      let vi = Eval.eval frame.locals i in
      let ve = Eval.eval frame.locals e in
      (match (va, vi) with
       | Arr arr, Int k ->
         if k >= 0 && k < Array.length arr then arr.(k) <- ve
         else trap "store index %d out of bounds (len %d)" k (Array.length arr)
       | _ -> trap "store into non-array %s" a);
      None
    | Ir.Call { dst; callee; args; fresh_frame } ->
      charge t frame Profile.op_call Cost.instr;
      let vargs = List.map (Eval.eval frame.locals) args in
      let fn = Ir.find_func_exn t.prog callee in
      push_call t th ~callee:fn ~args:vargs ~dst ~fresh:fresh_frame;
      None
    | Ir.Call_indirect { dst; fptr; args; site = _ } ->
      charge t frame Profile.op_call_indirect Cost.instr;
      let vf = Eval.eval frame.locals fptr in
      let vargs = List.map (Eval.eval frame.locals) args in
      (match vf with
       | Fptr name ->
         (match Ir.find_func t.prog name with
          | Some fn -> push_call t th ~callee:fn ~args:vargs ~dst ~fresh:true
          | None -> trap "indirect call to unknown function %s" name)
       | v -> trap "indirect call through non-funptr %s" (to_string v));
      None
    | Ir.Syscall { dst; sys; args; site } ->
      let vargs = List.map (Eval.eval frame.locals) args in
      (match th.alarm with
       | Some (1, signo) ->
         th.alarm <- None;
         raise_signal th signo
       | Some (k, signo) -> th.alarm <- Some (k - 1, signo)
       | None -> ());
      let seg = cur_seg th in
      seg.cnt <- seg.cnt + 1;
      record_cnt_sample t th;
      t.syscalls <- t.syscalls + 1;
      (* step counted at dispatch; the Cost.syscall cycles land in the
         same block at [provide_result] *)
      charge t frame Profile.op_syscall 0;
      th.status <- Awaiting { sys; sysargs = vargs; dst; site };
      Some (Ev_syscall th)
    | Ir.Cnt_add k ->
      charge t frame Profile.op_cnt_add Cost.cnt_instr;
      t.instr_events <- t.instr_events + 1;
      (cur_seg th).cnt <- (cur_seg th).cnt + k;
      None
    | Ir.Loop_enter { loop } ->
      charge t frame Profile.op_loop_enter Cost.cnt_instr;
      t.instr_events <- t.instr_events + 1;
      let seg = cur_seg th in
      seg.loops <- (loop, 0) :: seg.loops;
      None
    | Ir.Loop_back { loop; dec } ->
      t.instr_events <- t.instr_events + 1;
      (* step counted here; the Cost.barrier cycles land in the same
         block at [release_barrier] *)
      charge t frame Profile.op_loop_back 0;
      th.status <- At_barrier { loop; dec };
      Some (Ev_barrier th)
    | Ir.Loop_exit { pops; bump } ->
      charge t frame Profile.op_loop_exit Cost.cnt_instr;
      t.instr_events <- t.instr_events + 1;
      let seg = cur_seg th in
      List.iter
        (fun l ->
           match seg.loops with
           | (l', _) :: rest when l' = l -> seg.loops <- rest
           | _ -> trap "loop_exit L%d: loop stack mismatch" l)
        pops;
      seg.cnt <- seg.cnt + bump;
      None
  end
  else begin
    (* terminator: charge before [frame.bid] moves so the attribution
       lands in the block being left *)
    match block.Ir.term with
    | Ir.Jump l ->
      charge t frame Profile.op_jump Cost.instr;
      frame.bid <- l;
      frame.idx <- 0;
      None
    | Ir.Branch (c, bt, bf) ->
      charge t frame Profile.op_branch Cost.instr;
      let v = Eval.eval frame.locals c in
      frame.bid <- (if truthy v then bt else bf);
      frame.idx <- 0;
      None
    | Ir.Ret e ->
      charge t frame Profile.op_ret Cost.instr;
      let v =
        match e with None -> Unit | Some e -> Eval.eval frame.locals e
      in
      pop_frame t th v;
      None
  end

(* ------------------------------------------------------------------ *)
(* Scheduling.                                                         *)

let runnable_threads t =
  List.filter (fun th -> th.status = Runnable) t.threads

exception Trapped of string

let run_until_event (t : t) : event =
  if t.finished then Ev_done
  else begin
    try
      let ev = ref None in
      while !ev = None do
        if Ldx_osim.Os.exited t.os then begin
          t.finished <- true;
          ev := Some Ev_done
        end
        else if t.steps > t.max_steps then raise (Trapped "fuel exhausted")
        else begin
          match (main_thread t).status with
          | Finished _ ->
            t.finished <- true;
            ev := Some Ev_done
          | Runnable | Awaiting _ | At_barrier _ ->
            let rs = runnable_threads t in
            (match rs with
             | [] ->
               if List.exists
                   (fun th ->
                      match th.status with
                      | Awaiting _ | At_barrier _ -> true
                      | Runnable | Finished _ -> false)
                   t.threads
               then ev := Some Ev_idle
               else begin
                 t.finished <- true;
                 ev := Some Ev_done
               end
             | _ :: _ ->
               (* delegate the pick to the pluggable scheduler; threads
                  are identified by spawn index (the dual-execution
                  pairing key), which is unique per thread *)
               let runnable =
                 Array.of_list (List.map (fun th -> th.spawn_index) rs)
               in
               let d = Sched.pick t.sched ~runnable ~steps:t.steps in
               let th =
                 List.find (fun th -> th.spawn_index = d.Sched.d_chosen) rs
               in
               (match t.on_obs_sched with Some f -> f t d | None -> ());
               let q = d.Sched.d_quantum in
               (try
                  let i = ref 0 in
                  while !i < q && !ev = None && th.status = Runnable do
                    (* in-quantum fuel check: without it an execution
                       could overshoot max_steps by a full quantum
                       before the outer check fires *)
                    if t.steps > t.max_steps then
                      raise (Trapped "fuel exhausted");
                    incr i;
                    ev := step_thread t th
                  done
                with Trap msg -> raise (Trapped msg)))
        end
      done;
      match !ev with Some e -> e | None -> assert false
    with Trapped msg ->
      t.trap <- Some msg;
      t.finished <- true;
      Ev_trap msg
  end

(* All threads currently awaiting the driver. *)
let awaiting_threads t =
  List.filter
    (fun th -> match th.status with Awaiting _ -> true | _ -> false)
    t.threads

let pending_of (th : thread) =
  match th.status with
  | Awaiting p -> p
  | Runnable | At_barrier _ | Finished _ ->
    invalid_arg "Machine.pending_of: thread not awaiting"

let result_of_main t =
  match (main_thread t).status with
  | Finished v -> Some v
  | Runnable | Awaiting _ | At_barrier _ -> None

(* Average dynamic counter value (Table 1 "Dyn. Cnt"). *)
let dyn_cnt_avg t =
  if t.cnt_samples = 0 then 0.0
  else float_of_int t.cnt_sum /. float_of_int t.cnt_samples
