(* Single-execution driver ("native run").

   Services syscalls against the process's own OS and handles thread
   operations with the VM primitives.  This is the baseline the overhead
   experiments (Fig. 6) compare against, and the execution model the dual
   engine in ldx.core extends. *)

module Os = Ldx_osim.Os
module Sval = Ldx_osim.Sval

type trace_entry = {
  sys : string;
  args : Sval.t list;
  result : Sval.t;
  counter : int;
  site : int;
  tid : int;
}

type outcome = {
  machine : Machine.t;
  trap : string option;
  cycles : int;
  steps : int;
  syscalls : int;
  stdout : string;
  exit_code : int option;
  trace : trace_entry list;           (* only when ~record_trace *)
}

let is_thread_op = function
  | "lock" | "unlock" | "spawn" | "join" | "yield" | "setjmp" | "longjmp"
  | "signal" | "alarm" | "sigsend" ->
    true
  | _ -> false

(* Service a thread-operation syscall with the VM primitives; [`Block]
   leaves the thread pending for retry. *)
let service_thread_op (m : Machine.t) (th : Machine.thread)
    (p : Machine.pending) : [ `Done of Value.t | `Block ] =
  match (p.Machine.sys, p.Machine.sysargs) with
  | "lock", [ lockv ] ->
    if Machine.try_lock m th lockv then `Done (Value.Int 0) else `Block
  | "unlock", [ lockv ] ->
    ignore (Machine.unlock m th lockv);
    `Done (Value.Int 0)
  | "spawn", [ Value.Fptr f; arg ] ->
    let tid = Machine.spawn m f arg in
    `Done (Value.Int tid)
  | "spawn", [ v; _ ] ->
    Value.trap "spawn: expected function pointer, got %s" (Value.to_string v)
  | "join", [ Value.Int tid ] ->
    (match Machine.try_join m tid with
     | Some v -> `Done v
     | None -> `Block)
  | "yield", [] -> `Done (Value.Int 0)
  | "setjmp", [ bufv ] ->
    Machine.do_setjmp m th bufv ~dst:p.Machine.dst;
    `Done (Value.Int 0)
  | "signal", [ Value.Int signo; Value.Fptr h ] ->
    Machine.register_signal m signo h;
    `Done (Value.Int 0)
  | "alarm", [ Value.Int n ] ->
    Machine.set_alarm th n Machine.sigalrm;
    `Done (Value.Int 0)
  | "sigsend", [ Value.Int signo ] ->
    Machine.raise_signal th signo;
    `Done (Value.Int 0)
  | "longjmp", [ bufv ] ->
    if Machine.do_longjmp m th bufv then
      (* control has been transferred; the longjmp itself "returns"
         nothing observable at its (abandoned) call site *)
      `Done (Value.Int 0)
    else Value.trap "longjmp: buffer was never set"
  | sys, args ->
    Value.trap "thread op %s: bad arguments (%s)" sys
      (String.concat ", " (List.map Value.to_string args))

let run ?(seed = 0) ?sched ?(max_steps = 30_000_000) ?(record_trace = false)
    ?vm (prog : Ldx_cfg.Ir.program) (world : Ldx_osim.World.t) : outcome =
  let os = Os.create world in
  let m = Machine.create ~seed ?sched ~max_steps ?vm prog os in
  let trace = ref [] in
  let blocked : Machine.thread list ref = ref [] in
  let service th =
    let p = Machine.pending_of th in
    if is_thread_op p.Machine.sys then begin
      match
        try service_thread_op m th p
        with Value.Trap msg ->
          m.Machine.trap <- Some msg;
          m.Machine.finished <- true;
          `Done Value.Unit
      with
      | `Done v ->
        if record_trace then
          trace :=
            { sys = p.Machine.sys;
              args = List.map Value.to_sval_safe p.Machine.sysargs;
              result = Value.to_sval_safe v;
              counter = Machine.counter_of th;
              site = p.Machine.site;
              tid = th.Machine.tid }
            :: !trace;
        Machine.provide_result m th v
      | `Block -> blocked := th :: !blocked
    end
    else begin
      let sargs = List.map Value.to_sval p.Machine.sysargs in
      let r =
        try Os.exec ~site:p.Machine.site os p.Machine.sys sargs
        with Os.Os_error msg -> raise (Value.Trap ("os-error: " ^ msg))
      in
      if record_trace then
        trace :=
          { sys = p.Machine.sys; args = sargs; result = r;
            counter = Machine.counter_of th; site = p.Machine.site;
            tid = th.Machine.tid }
          :: !trace;
      Machine.provide_result m th (Value.of_sval r)
    end
  in
  let retry_blocked () =
    let bs = !blocked in
    blocked := [];
    let progress = ref false in
    List.iter
      (fun th ->
         match th.Machine.status with
         | Machine.Awaiting p when is_thread_op p.Machine.sys ->
           (match service_thread_op m th p with
            | `Done v ->
              progress := true;
              Machine.provide_result m th v
            | `Block -> blocked := th :: !blocked)
         | _ -> ())
      bs;
    !progress
  in
  let rec loop () =
    match Machine.run_until_event m with
    | Machine.Ev_syscall th ->
      (try service th with Value.Trap msg ->
         m.Machine.trap <- Some msg;
         m.Machine.finished <- true);
      ignore (retry_blocked ());
      if not m.Machine.finished then loop ()
    | Machine.Ev_barrier th ->
      (* no partner execution: release immediately *)
      Machine.release_barrier m th;
      loop ()
    | Machine.Ev_idle ->
      if retry_blocked () then loop ()
      else begin
        m.Machine.trap <- Some "deadlock: all threads blocked";
        m.Machine.finished <- true
      end
    | Machine.Ev_done -> ()
    | Machine.Ev_trap _ -> ()
  in
  loop ();
  { machine = m;
    trap = m.Machine.trap;
    cycles = m.Machine.cycles;
    steps = m.Machine.steps;
    syscalls = m.Machine.syscalls;
    stdout = Os.stdout_contents os;
    exit_code = os.Os.exit_code;
    trace = List.rev !trace }

(* Convenience: parse, lower, optionally instrument, run. *)
let run_source ?(instrument = false) ?seed ?sched ?max_steps ?record_trace ?vm
    src world =
  let prog = Ldx_cfg.Lower.lower_source src in
  let prog =
    if instrument then fst (Ldx_instrument.Counter.instrument prog) else prog
  in
  run ?seed ?sched ?max_steps ?record_trace ?vm prog world
