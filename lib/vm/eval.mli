(** Pure-expression evaluation: the [pexpr] fragment of the IR (no calls
    except builtins).  The taint baselines reuse these operators on
    unwrapped values so both engines compute identical results. *)

(** Stable polynomial string hash (compiler-version independent). *)
val string_hash : string -> int

(** Apply a builtin ([itoa], [substr], [mkarray], ...).
    @raise Value.Trap on bad arguments. *)
val apply_builtin : string -> Value.t list -> Value.t

(** @raise Value.Trap on ill-typed operands or division by zero. *)
val apply_binop : Ldx_lang.Ast.binop -> Value.t -> Value.t -> Value.t

val apply_unop : Ldx_lang.Ast.unop -> Value.t -> Value.t

(** Evaluate a pure expression against the locals table.
    @raise Value.Trap on undefined variables or dynamic type errors. *)
val eval : (string, Value.t) Hashtbl.t -> Ldx_lang.Ast.expr -> Value.t

(** Same walk over register-file storage, resolving names through the
    flat symbol table (the VM's tree-mode path).  Slots holding
    {!Value.undef} trap as undefined variables. *)
val eval_reg :
  (string, int) Hashtbl.t -> Value.t array -> Ldx_lang.Ast.expr -> Value.t

(** Evaluate a compiled flat expression ({!Ldx_cfg.Flat}): constants are
    preallocated, variable reads are array loads.  [names] maps slots
    back to source names for trap messages. *)
val eval_flat :
  Value.t array -> string array -> Value.t Ldx_cfg.Flat.fexpr -> Value.t
