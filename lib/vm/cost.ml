(* Virtual cycle-cost model (Fig. 6 methodology).

   The absolute values are a model; the experiments only interpret ratios.
   See DESIGN.md "Cycle model". *)

let instr = 1              (* ordinary instruction *)
let cnt_instr = 1          (* counter-maintenance instruction *)
let barrier = 2            (* loop backedge barrier check *)
let syscall = 40           (* kernel crossing + service *)
let share_copy = 2         (* slave copying a master outcome *)
let sink_compare = 3       (* comparing sink arguments *)

(* Baseline engines' per-instruction monitoring cost: *)
let taint_shadow = 5       (* LIBDFT/TaintGrind-style shadow propagation *)
let index_monitor = 1000   (* DualEx execution indexing + IPC to monitor *)

(* The whole model as an association list, so metrics/trace exports are
   self-describing (the exported cycle counts only mean something
   relative to these constants). *)
let to_assoc () =
  [ ("instr", instr);
    ("cnt_instr", cnt_instr);
    ("barrier", barrier);
    ("syscall", syscall);
    ("share_copy", share_copy);
    ("sink_compare", sink_compare);
    ("taint_shadow", taint_shadow);
    ("index_monitor", index_monitor) ]
