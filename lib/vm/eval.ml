(* Pure-expression evaluation: the [pexpr] fragment of the IR (no calls
   except builtins).  Shared by the VM; the taint baselines reimplement it
   with shadow values. *)

open Ldx_lang
open Value

(* Stable polynomial string hash (independent of OCaml's Hashtbl.hash so
   results are reproducible across compiler versions). *)
let string_hash s =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) s;
  !h

let apply_builtin name (args : t list) : t =
  match (name, args) with
  | "itoa", [ Int n ] -> Str (string_of_int n)
  | "itoa", [ Str s ] -> Str s
  | "atoi", [ Str s ] ->
    let n = String.length s in
    let i0 = if n > 0 && (s.[0] = '-' || s.[0] = '+') then 1 else 0 in
    let rec digits i acc any =
      if i < n && s.[i] >= '0' && s.[i] <= '9' then
        digits (i + 1) ((acc * 10) + Char.code s.[i] - 48) true
      else if any then acc
      else 0
    in
    let v = digits i0 0 false in
    int (if i0 = 1 && n > 0 && s.[0] = '-' then -v else v)
  | "atoi", [ Int n ] -> int n
  | "strlen", [ Str s ] -> int (String.length s)
  | "substr", [ Str s; Int start; Int len ] ->
    let n = String.length s in
    let start = max 0 (min start n) in
    let len = max 0 (min len (n - start)) in
    Str (String.sub s start len)
  | "char_at", [ Str s; Int i ] ->
    if i >= 0 && i < String.length s then int (Char.code s.[i]) else int (-1)
  | "chr", [ Int c ] -> Str (String.make 1 (Char.chr (c land 255)))
  | "find", [ Str hay; Str needle ] ->
    (* allocation-free char-compare scan (a String.sub per candidate
       offset was O(n*m) garbage on the hot path) *)
    let hn = String.length hay and nn = String.length needle in
    if nn = 0 then int 0
    else begin
      let rec matches_at i j =
        j >= nn || (hay.[i + j] = needle.[j] && matches_at i (j + 1))
      in
      let rec scan i =
        if i > hn - nn then -1
        else if matches_at i 0 then i
        else scan (i + 1)
      in
      int (scan 0)
    end
  | "hash", [ Str s ] -> Int (string_hash s)
  | "hash", [ Int n ] -> Int (string_hash (string_of_int n))
  | "min", [ Int a; Int b ] -> int (min a b)
  | "max", [ Int a; Int b ] -> int (max a b)
  | "abs", [ Int a ] -> int (abs a)
  | "len", [ Arr a ] -> int (Array.length a)
  | "len", [ Str s ] -> int (String.length s)
  | "mkarray", [ Int n; init ] ->
    if n < 0 || n > 1_000_000 then trap "mkarray: bad size %d" n
    else Arr (Array.make n init)
  | "upper", [ Str s ] -> Str (String.uppercase_ascii s)
  | "lower", [ Str s ] -> Str (String.lowercase_ascii s)
  | "starts_with", [ Str s; Str p ] ->
    let sp = String.length p in
    Int
      (if String.length s >= sp && String.sub s 0 sp = p then 1 else 0)
  | "repeat", [ Str s; Int n ] ->
    if n <= 0 then Str ""
    else if n * String.length s > 10_000_000 then trap "repeat: too large"
    else begin
      let buf = Buffer.create (n * String.length s) in
      for _ = 1 to n do Buffer.add_string buf s done;
      Str (Buffer.contents buf)
    end
  | "bit", [ Int x; Int i ] ->
    if i < 0 || i > 62 then int 0 else int ((x lsr i) land 1)
  | _ ->
    trap "builtin %s: bad arguments (%s)" name
      (String.concat ", " (List.map to_string args))

let apply_binop (op : Ast.binop) (a : t) (b : t) : t =
  match (op, a, b) with
  | Ast.Add, Int x, Int y -> int (x + y)
  | Ast.Add, Str x, Str y -> Str (x ^ y)
  | Ast.Add, Str x, Int y -> Str (x ^ string_of_int y)
  | Ast.Add, Int x, Str y -> Str (string_of_int x ^ y)
  | Ast.Sub, Int x, Int y -> int (x - y)
  | Ast.Mul, Int x, Int y -> int (x * y)
  | Ast.Div, Int _, Int 0 -> trap "division by zero"
  | Ast.Div, Int x, Int y -> int (x / y)
  | Ast.Mod, Int _, Int 0 -> trap "modulo by zero"
  | Ast.Mod, Int x, Int y -> int (x mod y)
  | Ast.Eq, x, y -> int (if equal x y then 1 else 0)
  | Ast.Ne, x, y -> int (if equal x y then 0 else 1)
  | Ast.Lt, Int x, Int y -> int (if x < y then 1 else 0)
  | Ast.Le, Int x, Int y -> int (if x <= y then 1 else 0)
  | Ast.Gt, Int x, Int y -> int (if x > y then 1 else 0)
  | Ast.Ge, Int x, Int y -> int (if x >= y then 1 else 0)
  | Ast.Lt, Str x, Str y -> int (if String.compare x y < 0 then 1 else 0)
  | Ast.Le, Str x, Str y -> int (if String.compare x y <= 0 then 1 else 0)
  | Ast.Gt, Str x, Str y -> int (if String.compare x y > 0 then 1 else 0)
  | Ast.Ge, Str x, Str y -> int (if String.compare x y >= 0 then 1 else 0)
  | Ast.Band, Int x, Int y -> int (x land y)
  | Ast.Bor, Int x, Int y -> int (x lor y)
  | Ast.Bxor, Int x, Int y -> int (x lxor y)
  | Ast.Shl, Int x, Int y -> int (if y < 0 || y > 62 then 0 else x lsl y)
  | Ast.Shr, Int x, Int y -> int (if y < 0 || y > 62 then 0 else x asr y)
  | Ast.And, x, y -> int (if truthy x && truthy y then 1 else 0)
  | Ast.Or, x, y -> int (if truthy x || truthy y then 1 else 0)
  | op, a, b ->
    trap "binop %s: bad operands %s, %s" (Ast.binop_to_string op)
      (to_string a) (to_string b)

let apply_unop (op : Ast.unop) (a : t) : t =
  match (op, a) with
  | Ast.Neg, Int x -> int (-x)
  | Ast.Not, x -> int (if truthy x then 0 else 1)
  | Ast.Neg, (Str _ | Arr _ | Fptr _ | Unit) -> trap "negation of non-int"

(* Evaluate a pure expression against locals. *)
let rec eval (locals : (string, t) Hashtbl.t) (e : Ast.expr) : t =
  match e with
  | Ast.Int n -> Int n
  | Ast.Str s -> Str s
  | Ast.Var x ->
    (match Hashtbl.find_opt locals x with
     | Some v -> v
     | None -> trap "undefined variable %s" x)
  | Ast.Funref f -> Fptr f
  | Ast.Unop (op, a) -> apply_unop op (eval locals a)
  | Ast.Binop (op, a, b) ->
    let va = eval locals a in
    let vb = eval locals b in
    apply_binop op va vb
  | Ast.Index (a, i) ->
    let va = eval locals a in
    let vi = eval locals i in
    (match (va, vi) with
     | Arr arr, Int k ->
       if k >= 0 && k < Array.length arr then arr.(k)
       else trap "index %d out of bounds (len %d)" k (Array.length arr)
     | Str s, Int k ->
       if k >= 0 && k < String.length s then int (Char.code s.[k])
       else trap "string index %d out of bounds (len %d)" k (String.length s)
     | _ -> trap "indexing non-array")
  | Ast.Call (name, args) ->
    let vargs = List.map (eval locals) args in
    apply_builtin name vargs

(* Evaluate a pure expression against register slots, resolving names
   through the flat symbol table (the tree-mode VM path: same Ast walk
   as [eval], same traps, register-file storage). *)
let rec eval_reg (slot_of : (string, int) Hashtbl.t) (regs : t array)
    (e : Ast.expr) : t =
  match e with
  | Ast.Int n -> Int n
  | Ast.Str s -> Str s
  | Ast.Var x ->
    (match Hashtbl.find_opt slot_of x with
     | Some i ->
       let v = regs.(i) in
       if v == undef then trap "undefined variable %s" x else v
     | None -> trap "undefined variable %s" x)
  | Ast.Funref f -> Fptr f
  | Ast.Unop (op, a) -> apply_unop op (eval_reg slot_of regs a)
  | Ast.Binop (op, a, b) ->
    let va = eval_reg slot_of regs a in
    let vb = eval_reg slot_of regs b in
    apply_binop op va vb
  | Ast.Index (a, i) ->
    let va = eval_reg slot_of regs a in
    let vi = eval_reg slot_of regs i in
    (match (va, vi) with
     | Arr arr, Int k ->
       if k >= 0 && k < Array.length arr then arr.(k)
       else trap "index %d out of bounds (len %d)" k (Array.length arr)
     | Str s, Int k ->
       if k >= 0 && k < String.length s then int (Char.code s.[k])
       else trap "string index %d out of bounds (len %d)" k (String.length s)
     | _ -> trap "indexing non-array")
  | Ast.Call (name, args) ->
    let vargs = List.map (eval_reg slot_of regs) args in
    apply_builtin name vargs

(* Evaluate a compiled flat expression: constants preallocated, variable
   reads are array loads (undefined slots trap through the sentinel).
   [names] maps slots back to source names for the trap message. *)
module Flat = Ldx_cfg.Flat

let rec eval_flat (regs : t array) (names : string array)
    (e : t Flat.fexpr) : t =
  match e with
  | Flat.Const v -> v
  | Flat.Reg i ->
    (* unsafe: slots are lowering-assigned, always < Array.length regs *)
    let v = Array.unsafe_get regs i in
    if v == undef then trap "undefined variable %s" names.(i) else v
  | Flat.Unop (op, a) -> apply_unop op (eval_flat regs names a)
  | Flat.Binop (op, a, b) ->
    let va = eval_flat regs names a in
    let vb = eval_flat regs names b in
    apply_binop op va vb
  | Flat.Index (a, i) ->
    let va = eval_flat regs names a in
    let vi = eval_flat regs names i in
    (match (va, vi) with
     | Arr arr, Int k ->
       if k >= 0 && k < Array.length arr then arr.(k)
       else trap "index %d out of bounds (len %d)" k (Array.length arr)
     | Str s, Int k ->
       if k >= 0 && k < String.length s then int (Char.code s.[k])
       else trap "string index %d out of bounds (len %d)" k (String.length s)
     | _ -> trap "indexing non-array")
  | Flat.Builtin (name, args) ->
    let n = Array.length args in
    let rec build i =
      if i = n then []
      else
        let v = eval_flat regs names args.(i) in
        v :: build (i + 1)
    in
    apply_builtin name (build 0)
  (* specialized shapes: same semantics as the general arms above, with
     the leaf evaluations inlined (operand order preserved for traps) *)
  | Flat.BinopRR (op, i, j) ->
    let va = Array.unsafe_get regs i in
    let vb = Array.unsafe_get regs j in
    if va == undef then trap "undefined variable %s" names.(i)
    else if vb == undef then trap "undefined variable %s" names.(j)
    else apply_binop op va vb
  | Flat.BinopRC (op, i, v) ->
    let va = Array.unsafe_get regs i in
    if va == undef then trap "undefined variable %s" names.(i)
    else apply_binop op va v
  | Flat.BinopCR (op, v, j) ->
    let vb = Array.unsafe_get regs j in
    if vb == undef then trap "undefined variable %s" names.(j)
    else apply_binop op v vb
  | Flat.IndexRR (x, y) ->
    let va = Array.unsafe_get regs x in
    let vi = Array.unsafe_get regs y in
    if va == undef then trap "undefined variable %s" names.(x)
    else if vi == undef then trap "undefined variable %s" names.(y)
    else
      (match (va, vi) with
       | Arr arr, Int k ->
         if k >= 0 && k < Array.length arr then arr.(k)
         else trap "index %d out of bounds (len %d)" k (Array.length arr)
       | Str s, Int k ->
         if k >= 0 && k < String.length s then int (Char.code s.[k])
         else trap "string index %d out of bounds (len %d)" k (String.length s)
       | _ -> trap "indexing non-array")
