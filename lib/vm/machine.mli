(** The MiniC virtual machine.

    Event-driven: {!run_until_event} executes instructions (scheduling
    threads round-robin with a seeded quantum) until the driver must
    intervene — a syscall ({!provide_result} resumes), a loop backedge
    barrier ({!release_barrier} resumes), all threads waiting, or
    process end.  The VM never services syscalls itself, which is what
    lets the LDX engine interpose its master/slave wrappers.

    Counter state (Sec. 4-6 of the paper): each thread carries a stack of
    counter segments; a segment holds the counter value and the stack of
    (loop id, iteration) pairs maintained by the instrumentation.
    Fresh-frame calls (indirect calls, calls to recursive functions) push
    a segment.

    Execution form: {!create} compiles the program once to flat bytecode
    ({!Ldx_cfg.Flat}) — integer opcodes, register slots, resolved jump
    targets — and the default stepper dispatches over that form.  The
    original tree walker survives as {!Tree} mode (selected with
    [LDX_VM=tree] or the [?vm] argument) for differential testing; both
    modes charge the virtual clock and the profile identically. *)

module Ir = Ldx_cfg.Ir
module Flat = Ldx_cfg.Flat
module Sched = Ldx_sched.Scheduler

(** Which stepper executes instructions.  Same semantics, same costs;
    [Flat] is the fast path. *)
type vm_mode = Tree | Flat

(** Session default, from the [LDX_VM] environment variable at module
    init ("tree" selects the tree walker; anything else, [Flat]).
    Differential tests flip this around {!create} calls. *)
val default_vm : vm_mode ref

type seg = {
  mutable cnt : int;
  mutable loops : (int * int) list;  (** (loop id, iteration), innermost first *)
}

type pending = {
  sys : string;
  sysargs : Value.t list;
  dst : string option;       (** destination name (driver surface) *)
  dst_slot : int;            (** resolved register slot; -1 = none *)
  site : int;
}

type barrier = { loop : int; dec : int }

type status =
  | Runnable
  | Awaiting of pending      (** at a syscall, waiting for the driver *)
  | At_barrier of barrier    (** at a loop backedge barrier *)
  | Finished of Value.t

type frame = {
  fn : Ir.func;
  fl : Value.t Flat.func;    (** the function's compiled form *)
  mutable bid : int;         (** current block (both modes) *)
  mutable idx : int;
      (** [Flat]: pc into [fl.code]; [Tree]: in-block instruction index *)
  regs : Value.t array;      (** register slots; {!Value.undef} = unset *)
  ret_dst : int;             (** caller slot for the result; -1 = none *)
  fresh : bool;              (** pushed a counter segment *)
  prof_base : int;
      (** the function's base in the profile's flat block numbering
          (0 when profiling is off); a block's flat index is
          [prof_base + bid] *)
}

type thread = {
  tid : int;
  spawn_index : int;         (** pairing key across dual executions *)
  mutable frames : frame list;
  mutable segs : seg list;
  mutable status : status;
  jmp_bufs : (string, jmp_buf) Hashtbl.t;
  mutable alarm : (int * int) option;
      (** (syscalls until delivery, signo) — see {!set_alarm} *)
  mutable pending_signals : int list;
}

(** setjmp buffer: resume point plus a deep copy of the counter-segment
    stack, which longjmp restores (Sec. 6). *)
and jmp_buf = {
  j_frames : frame list;
  j_bid : int;
  j_idx : int;
  j_dst : int;               (** slot the setjmp writes; -1 = none *)
  j_segs : (int * (int * int) list) list;
}

type lock_state = {
  mutable owner : int option;
  mutable acquisitions : int;
}

type t = {
  prog : Ir.program;
  fprog : Value.t Flat.program;  (** compiled once at {!create} *)
  vm : vm_mode;
  os : Ldx_osim.Os.t;
  mutable threads : thread list;  (** creation order *)
  mutable by_spawn : thread array;
      (** spawn_index -> thread (only indexes < [spawn_count] valid) *)
  mutable next_tid : int;
  mutable spawn_count : int;
  mutable scratch : int array array;
      (** exact-size runnable-set buffers, reused across picks *)
  locks : (string, lock_state) Hashtbl.t;
  sig_handlers : (int, string) Hashtbl.t;
      (** signal number -> handler function name *)
  mutable lock_trace : (string * int) list;
      (** (lock key, spawn_index) grants, most recent first *)
  mutable lock_gate : (string -> int -> bool) option;
      (** slave mode: may this thread take this free lock now? *)
  sched : Sched.state;
      (** the pluggable scheduler ({!Ldx_sched}): owns the pick cursor
          and quantum choice; defaults to {!Sched.legacy}, bit-identical
          to the historical hard-wired round-robin *)
  mutable steps : int;
  mutable cycles : int;          (** virtual clock (see {!Cost}) *)
  mutable syscalls : int;
  mutable instr_events : int;    (** instrumentation instrs executed *)
  mutable finished : bool;
  mutable trap : string option;
  max_steps : int;
  mutable cnt_sum : int;
  mutable cnt_max : int;
  mutable cnt_samples : int;
  mutable max_seg_depth : int;
  mutable on_obs_syscall : (t -> thread -> pending -> unit) option;
      (** observability hook: fires at each syscall return, after the
          syscall cost is charged and before signal handlers are pushed
          (the thread's position is still the syscall's); [None] (the
          default) costs one pointer comparison *)
  mutable on_obs_barrier : (t -> thread -> barrier -> unit) option;
      (** fires at each loop-backedge barrier release, after the
          counter reset and cost charge *)
  mutable on_obs_cnt_sample : (t -> thread -> int -> unit) option;
      (** fires at each dynamic counter sample (one per syscall) with
          the sampled counter value *)
  mutable on_obs_sched : (t -> Sched.decision -> unit) option;
      (** fires at each scheduling decision, before the chosen thread's
          quantum runs *)
  prof : Profile.t option;
      (** cost-attribution counters mirroring every virtual-clock
          charge ({!Profile}); [None] = off, one pointer comparison per
          charge site.  Never consulted by execution semantics. *)
}

type event =
  | Ev_syscall of thread
  | Ev_barrier of thread
  | Ev_idle     (** no runnable thread; all pending on the driver *)
  | Ev_done
  | Ev_trap of string

(** Stable key for lock ids and jmp buffers.
    @raise Value.Trap on non-scalar values. *)
val lock_key : Value.t -> string

(** [?sched] installs an instantiated scheduler state (one per machine:
    states are mutable and must not be shared between machines);
    without it the machine runs {!Sched.legacy} seeded with [?seed].
    [?prof] attaches a cost-attribution profile ({!Profile}): the
    machine mirrors every virtual-clock charge into it without
    perturbing execution (one profile per program — do not share
    between machines running different programs).
    [?vm] selects the stepper; default {!default_vm}.
    @raise Invalid_argument if [main] is missing or takes parameters. *)
val create :
  ?seed:int -> ?sched:Sched.state -> ?max_steps:int -> ?prof:Profile.t ->
  ?vm:vm_mode -> Ir.program -> Ldx_osim.Os.t -> t

val main_thread : t -> thread
val cur_seg : thread -> seg
val cur_frame : thread -> frame

(** Raw (counter, loops) stack, outermost segment first — the input of
    {!Ldx_core.Align.of_thread}. *)
val position_of : thread -> (int * (int * int) list) list

(** Current counter of the active segment. *)
val counter_of : thread -> int

(** Spawn a thread running [fname arg]; returns its tid. *)
val spawn : t -> string -> Value.t -> int

val find_thread : t -> int -> thread option

(** Acquire if free and the gate (when installed) permits; grants are
    appended to [lock_trace]. *)
val try_lock : t -> thread -> Value.t -> bool

(** Release; [false] when the thread does not own the lock. *)
val unlock : t -> thread -> Value.t -> bool

(** [Some v] when the target finished ([Int (-1)] for unknown tids). *)
val try_join : t -> int -> Value.t option

(** Snapshot the resume point and counter stack (call while the thread
    is [Awaiting] the setjmp). *)
val do_setjmp : t -> thread -> Value.t -> dst:string option -> unit

(** Unwind and restore; [false] when the buffer was never set. *)
val do_longjmp : t -> thread -> Value.t -> bool

(** {2 Signals (Sec. 7)}

    Handlers run like indirect calls — a fresh counter segment is pushed
    for the handler frame, so syscalls inside handlers align
    independently of the interrupted context.  Delivery happens at
    syscall returns; unhandled signals are ignored. *)

val register_signal : t -> int -> string -> unit

(** The signal number [alarm] delivers. *)
val sigalrm : int

(** Deliver [signo] to this thread after [n] further syscall events;
    [n <= 0] cancels. *)
val set_alarm : thread -> int -> int -> unit

(** Queue a signal for delivery at the thread's next syscall return. *)
val raise_signal : thread -> int -> unit

(** Answer a pending syscall: stores the value, charges the syscall
    cost, marks the thread runnable.
    @raise Invalid_argument if the thread is not [Awaiting]. *)
val provide_result : t -> thread -> Value.t -> unit

(** Release a barrier: applies the counter reset and iteration bump.
    @raise Invalid_argument if the thread is not [At_barrier]. *)
val release_barrier : t -> thread -> unit

(** Run until the next event (see module doc).  Traps become [Ev_trap]
    and finish the machine; a scheduler pick naming an unknown or
    non-runnable spawn index traps rather than escaping as a raw
    exception. *)
val run_until_event : t -> event

val runnable_threads : t -> thread list
val awaiting_threads : t -> thread list

(** @raise Invalid_argument if the thread is not [Awaiting]. *)
val pending_of : thread -> pending

val result_of_main : t -> Value.t option

(** Average dynamic counter value over syscall events (Table 1). *)
val dyn_cnt_avg : t -> float

(** {2 Decouple-point snapshots}

    A {!snapshot} is a canonical, self-contained pure-data projection
    of the machine: no Hashtbls (sorted assoc lists instead), no
    closures, no aliases into the live machine.  Equal machine states
    project to structurally equal snapshots regardless of Hashtbl
    capacity or insertion history, and a snapshot contains nothing
    [Marshal] cannot serialize — the properties [Ldx_snap]'s [equal],
    [fingerprint] and wire form rest on.

    Not captured: the program (immutable, passed back to {!restore}),
    the profile ([?prof]), the obs hooks and lock gate (reinstall after
    restore), the OS world (snapshot it alongside — [Os.copy] or
    [Ldx_snap]'s canonical projection), and the scratch buffers.
    Capture is a pull operation: a machine that is never snapshotted
    pays nothing. *)

type sframe = {
  sf_fname : string;
  sf_bid : int;
  sf_idx : int;
  sf_regs : Value.t array;  (** undef slots hold [Unit]; see [sf_undef] *)
  sf_undef : bool array;    (** per-slot: the live slot was {!Value.undef} *)
  sf_ret_dst : int;
  sf_fresh : bool;
}

type sjmp = {
  sj_key : string;
  sj_frames : int list;     (** frame-table indexes, top first *)
  sj_bid : int;
  sj_idx : int;
  sj_dst : int;
  sj_segs : (int * (int * int) list) list;
}

type spending = {
  sp_sys : string;
  sp_args : Value.t list;
  sp_dst : string option;
  sp_dst_slot : int;
  sp_site : int;
}

type sstatus =
  | S_runnable
  | S_awaiting of spending
  | S_at_barrier of barrier
  | S_finished of Value.t

type sthread = {
  sth_tid : int;
  sth_spawn : int;
  sth_table : sframe array;
      (** every frame reachable from the stack or a jmp_buf — frames
          form a DAG (jmp_bufs alias live and popped frames), so they
          are deduplicated by identity into a table *)
  sth_stack : int list;     (** [th.frames] as table indexes, top first *)
  sth_segs : (int * (int * int) list) list;
  sth_status : sstatus;
  sth_jmps : sjmp list;     (** key-sorted *)
  sth_alarm : (int * int) option;
  sth_signals : int list;
}

type snapshot = {
  sn_vm : vm_mode;
  sn_threads : sthread array;  (** creation order *)
  sn_next_tid : int;
  sn_spawn_count : int;
  sn_locks : (string * (int option * int)) list;
      (** key-sorted: lock -> (owner tid, acquisitions) *)
  sn_handlers : (int * string) list;  (** signo-sorted *)
  sn_lock_trace : (string * int) list;
  sn_sched : Sched.state;      (** private copy, decision log preserved *)
  sn_steps : int;
  sn_cycles : int;
  sn_syscalls : int;
  sn_instr_events : int;
  sn_finished : bool;
  sn_trap : string option;
  sn_max_steps : int;
  sn_cnt_sum : int;
  sn_cnt_max : int;
  sn_cnt_samples : int;
  sn_max_seg_depth : int;
}

(** Capture the complete machine state.  Values are deep-copied through
    an identity memo (aliasing — including cyclic arrays — is preserved
    inside the snapshot, severed from the machine), so the machine may
    keep running and one snapshot supports any number of restores.
    Safe at any driver-visible point (between events, or while threads
    await the driver). *)
val snapshot : t -> snapshot

(** The compilation {!create} performs, for restore paths with no
    machine to borrow a compiled program from (e.g. a snapshot arriving
    from another process via [Ldx_snap]). *)
val compile : Ir.program -> Value.t Flat.program

(** Rebuild a machine from a snapshot over [os] (which must itself be a
    copy consistent with the capture point — see [Os.copy]).  [?prof]
    attaches a profile ({!create} discipline); [?sched] overrides the
    snapshot's scheduler state — the suffix-replay hook: restoring with
    an alternative schedule explores interleavings from the decouple
    point on.  Obs hooks and the lock gate start unset.
    @raise Invalid_argument when the snapshot does not fit [prog]
    (unknown function, register-file shape mismatch) — the cheap guard
    behind [Ldx_snap]'s fingerprint validation. *)
val restore :
  ?prof:Profile.t -> ?sched:Sched.state -> prog:Ir.program ->
  fprog:Value.t Flat.program -> Ldx_osim.Os.t -> snapshot -> t
