(* Deterministic in-VM cost attribution (the instrument panel for the
   flat-bytecode rewrite and every later perf PR).

   A profile is a set of flat integer counter arrays bumped at the same
   points the virtual clock is charged:

   - per-opcode steps and cycles (indexed by a dense opcode id),
   - per-CFG-block steps and cycles (indexed by [frame.prof_base + bid],
     where [prof_base] is the function's base in a global flat block
     numbering computed once per program),
   - per-syscall counts and cycles (cold path: one Hashtbl bump per
     serviced syscall),
   - engine-level coupling categories charged by the slave wrapper
     (share_copy, couple_stall, sink_compare).

   The hot path allocates nothing: every charge is two or four array
   increments behind a [t option] check, so a machine with no profile
   pays one pointer comparison per charge site — the same zero-cost
   discipline as the obs hooks, and the no-perturbation invariant
   (verdicts and engine counters bit-identical with profiling on/off)
   is pinned by test_prof.ml.

   Everything recorded here is derived from the deterministic virtual
   clock, so profiles are bit-reproducible: same program, same world,
   same seeds => same profile. *)

module Ir = Ldx_cfg.Ir

(* Dense opcode ids.  Dispatch sites index these directly; keep
   [op_names] in sync. *)
let op_assign = 0
let op_store = 1
let op_call = 2
let op_call_indirect = 3
let op_syscall = 4
let op_cnt_add = 5
let op_loop_enter = 6
let op_loop_back = 7
let op_loop_exit = 8
let op_jump = 9
let op_branch = 10
let op_ret = 11
let n_ops = 12

let op_names =
  [| "assign"; "store"; "call"; "call_indirect"; "syscall"; "cnt_add";
     "loop_enter"; "loop_back"; "loop_exit"; "jump"; "branch"; "ret" |]

(* Engine-level coupling categories: cycles the slave's clock gains
   outside ordinary dispatch.  [couple_stall] is the fast-forward to the
   producing master stamp on a copy (the two-CPU wait); [share_copy] and
   [sink_compare] are the fixed Cost charges on the copy path. *)
let eng_share_copy = 0
let eng_couple_stall = 1
let eng_sink_compare = 2
let n_eng = 3
let eng_names = [| "share_copy"; "couple_stall"; "sink_compare" |]

type layout = {
  bases : (string, int) Hashtbl.t;        (* fname -> flat block base *)
  l_funcs : (string * int * int) array;   (* fname, base, nblocks *)
  total_blocks : int;
}

type t = {
  op_steps : int array;
  op_cycles : int array;
  eng_counts : int array;
  eng_cycles : int array;
  sys_counts : (string, int ref) Hashtbl.t;
  sys_cycles : (string, int ref) Hashtbl.t;
  mutable layout : layout option;
  mutable blk_steps : int array;
  mutable blk_cycles : int array;
}

let create () =
  { op_steps = Array.make n_ops 0;
    op_cycles = Array.make n_ops 0;
    eng_counts = Array.make n_eng 0;
    eng_cycles = Array.make n_eng 0;
    sys_counts = Hashtbl.create 8;
    sys_cycles = Hashtbl.create 8;
    layout = None;
    blk_steps = [||];
    blk_cycles = [||] }

(* Compute the flat block numbering of [prog] (funcs in program order,
   blocks in index order) and size the per-block arrays.  Idempotent:
   a profile stays attached to the first program it saw, so one profile
   must not be shared between machines running different programs. *)
let attach (p : t) (prog : Ir.program) : unit =
  match p.layout with
  | Some _ -> ()
  | None ->
    let n = Array.length prog.Ir.funcs in
    let bases = Hashtbl.create (2 * n) in
    let l_funcs = Array.make n ("", 0, 0) in
    let total = ref 0 in
    Array.iteri
      (fun i (f : Ir.func) ->
         let nb = Array.length f.Ir.blocks in
         Hashtbl.replace bases f.Ir.fname !total;
         l_funcs.(i) <- (f.Ir.fname, !total, nb);
         total := !total + nb)
      prog.Ir.funcs;
    p.layout <- Some { bases; l_funcs; total_blocks = !total };
    p.blk_steps <- Array.make (max 1 !total) 0;
    p.blk_cycles <- Array.make (max 1 !total) 0

(* Deep copy for snapshotting: counter arrays and syscall tables are
   duplicated so charges to the copy never touch the original.  The
   layout (immutable once attached) is shared. *)
let copy (p : t) : t =
  let tbl src =
    let dst = Hashtbl.create (max 8 (Hashtbl.length src)) in
    Hashtbl.iter (fun k r -> Hashtbl.replace dst k (ref !r)) src;
    dst
  in
  { op_steps = Array.copy p.op_steps;
    op_cycles = Array.copy p.op_cycles;
    eng_counts = Array.copy p.eng_counts;
    eng_cycles = Array.copy p.eng_cycles;
    sys_counts = tbl p.sys_counts;
    sys_cycles = tbl p.sys_cycles;
    layout = p.layout;
    blk_steps = Array.copy p.blk_steps;
    blk_cycles = Array.copy p.blk_cycles }

let base_of (p : t) (fname : string) : int =
  match p.layout with
  | None -> 0
  | Some l -> (
      match Hashtbl.find_opt l.bases fname with Some b -> b | None -> 0)

(* One dispatch: a step (and [cost] cycles) attributed to opcode [op]
   and flat block [blk]. *)
(* Unchecked accesses: [op] is a dense opcode id (< n_ops) and [blk] is
   [base_of fname + bid] against the attached layout — both in range by
   construction at every call site ([attach] runs in [Machine.create]
   before any charge).  This runs once per interpreted instruction. *)
let[@inline] charge (p : t) ~op ~blk ~cost =
  Array.unsafe_set p.op_steps op (Array.unsafe_get p.op_steps op + 1);
  Array.unsafe_set p.op_cycles op (Array.unsafe_get p.op_cycles op + cost);
  Array.unsafe_set p.blk_steps blk (Array.unsafe_get p.blk_steps blk + 1);
  Array.unsafe_set p.blk_cycles blk (Array.unsafe_get p.blk_cycles blk + cost)

(* Cycles charged after the dispatch step was already counted (syscall
   service at [provide_result], barrier release): cycles only, no step. *)
let[@inline] charge_cycles (p : t) ~op ~blk ~cost =
  p.op_cycles.(op) <- p.op_cycles.(op) + cost;
  p.blk_cycles.(blk) <- p.blk_cycles.(blk) + cost

let bump tbl key k =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + k
  | None -> Hashtbl.replace tbl key (ref k)

(* Per-syscall breakdown, keyed by syscall name (cold path). *)
let charge_syscall (p : t) ~(sys : string) ~cost =
  bump p.sys_counts sys 1;
  bump p.sys_cycles sys cost

let charge_engine (p : t) ~cat ~cycles =
  p.eng_counts.(cat) <- p.eng_counts.(cat) + 1;
  p.eng_cycles.(cat) <- p.eng_cycles.(cat) + cycles

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type row = { r_name : string; r_steps : int; r_cycles : int }

type block_row = {
  b_func : string;
  b_bid : int;
  b_steps : int;
  b_cycles : int;
}

type snapshot = {
  s_ops : row list;           (* opcode order, zero rows dropped *)
  s_blocks : block_row list;  (* program order, zero rows dropped *)
  s_syscalls : row list;      (* name-sorted *)
  s_engine : row list;        (* category order, zero rows dropped *)
  s_total_steps : int;
  s_total_cycles : int;       (* ops + engine: equals the side's clock *)
}

(* Rebuild a profile from its snapshot (snapshots drop only zero rows,
   so this inverse is exact: [snapshot (of_snapshot prog (snapshot p))]
   equals [snapshot p] whenever [p] is attached to [prog]).  Used by
   [Ldx_snap] to carry profile counters across the wire, where the live
   [t] (Hashtbls, shared layout) cannot travel. *)
let of_snapshot (prog : Ir.program) (s : snapshot) : t =
  let p = create () in
  attach p prog;
  let idx_of names name =
    let r = ref (-1) in
    Array.iteri (fun i n -> if String.equal n name then r := i) names;
    !r
  in
  List.iter
    (fun r ->
       let i = idx_of op_names r.r_name in
       if i >= 0 then begin
         p.op_steps.(i) <- r.r_steps;
         p.op_cycles.(i) <- r.r_cycles
       end)
    s.s_ops;
  List.iter
    (fun r ->
       let i = idx_of eng_names r.r_name in
       if i >= 0 then begin
         p.eng_counts.(i) <- r.r_steps;
         p.eng_cycles.(i) <- r.r_cycles
       end)
    s.s_engine;
  List.iter
    (fun r ->
       Hashtbl.replace p.sys_counts r.r_name (ref r.r_steps);
       if r.r_cycles <> 0 then
         Hashtbl.replace p.sys_cycles r.r_name (ref r.r_cycles))
    s.s_syscalls;
  List.iter
    (fun b ->
       let i = base_of p b.b_func + b.b_bid in
       if i < Array.length p.blk_steps then begin
         p.blk_steps.(i) <- b.b_steps;
         p.blk_cycles.(i) <- b.b_cycles
       end)
    s.s_blocks;
  p

let snapshot (p : t) : snapshot =
  let rows names counts cycles =
    let acc = ref [] in
    for i = Array.length names - 1 downto 0 do
      if counts.(i) <> 0 || cycles.(i) <> 0 then
        acc :=
          { r_name = names.(i); r_steps = counts.(i); r_cycles = cycles.(i) }
          :: !acc
    done;
    !acc
  in
  let blocks =
    match p.layout with
    | None -> []
    | Some l ->
      let acc = ref [] in
      Array.iter
        (fun (fname, base, nb) ->
           for bid = 0 to nb - 1 do
             let i = base + bid in
             if p.blk_steps.(i) <> 0 || p.blk_cycles.(i) <> 0 then
               acc :=
                 { b_func = fname; b_bid = bid; b_steps = p.blk_steps.(i);
                   b_cycles = p.blk_cycles.(i) }
                 :: !acc
           done)
        l.l_funcs;
      List.rev !acc
  in
  let syscalls =
    Hashtbl.fold
      (fun sys c acc ->
         let cyc =
           match Hashtbl.find_opt p.sys_cycles sys with
           | Some r -> !r
           | None -> 0
         in
         { r_name = sys; r_steps = !c; r_cycles = cyc } :: acc)
      p.sys_counts []
    |> List.sort (fun a b -> compare a.r_name b.r_name)
  in
  let sum a = Array.fold_left ( + ) 0 a in
  { s_ops = rows op_names p.op_steps p.op_cycles;
    s_blocks = blocks;
    s_syscalls = syscalls;
    s_engine = rows eng_names p.eng_counts p.eng_cycles;
    s_total_steps = sum p.op_steps;
    s_total_cycles = sum p.op_cycles + sum p.eng_cycles }
