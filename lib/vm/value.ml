(* Runtime values of MiniC. *)

module Sval = Ldx_osim.Sval

type t =
  | Unit
  | Int of int
  | Str of string
  | Arr of t array                      (* shared, mutable *)
  | Fptr of string

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* Physical-identity sentinel for uninitialized register slots (the flat
   VM's stand-in for "name absent from the locals table").  The [Arr]
   block here is a unique allocation, so [v == undef] can never be true
   of a program-constructed value — including [mkarray(0, _)], whose
   [Arr] constructor block is fresh even though zero-length arrays
   themselves are shared atoms.  Never expose it to programs. *)
let undef = Arr [||]

(* Shared boxes for common ints.  Interpreter arithmetic results land in
   [-1, 255] most of the time (loop counters, comparison results, flags);
   returning one shared box per value keeps the hot loops allocation-free.
   Safe because values are immutable. *)
let small_ints = Array.init 257 (fun i -> Int (i - 1))

let[@inline] int n =
  if n >= -1 && n <= 255 then Array.unsafe_get small_ints (n + 1) else Int n

let rec equal a b =
  match (a, b) with
  | Unit, Unit -> true
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Fptr x, Fptr y -> String.equal x y
  | Arr x, Arr y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i v -> if not (equal v y.(i)) then ok := false) x;
        !ok)
  | (Unit | Int _ | Str _ | Arr _ | Fptr _), _ -> false

let truthy = function
  | Int 0 | Unit -> false
  | Str "" -> false
  | Int _ | Str _ | Arr _ | Fptr _ -> true

let int_exn = function
  | Int n -> n
  | v -> trap "expected int, got %s" (match v with
      | Str _ -> "string" | Arr _ -> "array" | Fptr _ -> "funptr"
      | Unit -> "unit" | Int _ -> assert false)

let str_exn = function
  | Str s -> s
  | Int _ | Arr _ | Fptr _ | Unit -> trap "expected string"

let rec to_string = function
  | Unit -> "()"
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Fptr f -> "@" ^ f
  | Arr a ->
    "[" ^ String.concat "; " (Array.to_list (Array.map to_string a)) ^ "]"

(* Conversion at the syscall boundary. *)
let to_sval = function
  | Int n -> Sval.I n
  | Str s -> Sval.S s
  | Unit -> Sval.I 0
  | Fptr f -> Sval.S ("@" ^ f)
  | Arr _ -> trap "array passed to syscall"

let of_sval = function Sval.I n -> Int n | Sval.S s -> Str s

(* Total conversion for tracing/comparison: arrays (which only thread ops
   like [spawn] may carry) map to an opaque length-tagged token. *)
let to_sval_safe = function
  | Arr a -> Sval.S (Printf.sprintf "<arr:%d>" (Array.length a))
  | (Int _ | Str _ | Unit | Fptr _) as v -> to_sval v
