(** Deterministic in-VM cost attribution.

    Flat per-opcode, per-CFG-block, per-syscall and engine-category
    counters, bumped at exactly the sites where the machine charges its
    virtual clock.  Zero allocation on the hot path; a machine without
    a profile pays one pointer comparison per charge site, and the
    no-perturbation invariant (verdicts and engine counters
    bit-identical with profiling on/off) is pinned by tests.

    Profiles are derived from the deterministic virtual clock, so they
    are bit-reproducible across runs and across [jobs] settings. *)

type t

(** {1 Opcode ids} — dense indices used at dispatch.  [op_names.(op)]
    is the display name. *)

val op_assign : int
val op_store : int
val op_call : int
val op_call_indirect : int
val op_syscall : int
val op_cnt_add : int
val op_loop_enter : int
val op_loop_back : int
val op_loop_exit : int
val op_jump : int
val op_branch : int
val op_ret : int
val n_ops : int
val op_names : string array

(** {1 Engine coupling categories} — cycles the slave clock gains on
    the engine's record-copy path rather than at ordinary dispatch:
    [eng_share_copy] (fixed copy charge), [eng_couple_stall]
    (fast-forward to the producing master stamp), [eng_sink_compare]
    (sink comparison charge). *)

val eng_share_copy : int
val eng_couple_stall : int
val eng_sink_compare : int
val n_eng : int
val eng_names : string array

(** {1 Construction} *)

(** A fresh, unattached profile.  All counters zero. *)
val create : unit -> t

(** [attach p prog] computes the flat block numbering for [prog]
    (functions in program order, blocks in index order) and sizes the
    per-block arrays.  Idempotent; the first attached program wins, so
    do not share one profile between machines running different
    programs.  Called by [Machine.create] when a profile is passed. *)
val attach : t -> Ldx_cfg.Ir.program -> unit

(** Flat block base of a function, or 0 if unknown/unattached.  A
    block's flat index is [base_of p fname + bid]. *)
val base_of : t -> string -> int

(** Deep copy for snapshotting: the copy's counters are independent of
    the original's (the immutable layout is shared). *)
val copy : t -> t

(** {1 Charging} — called from the machine/engine hot paths. *)

(** One dispatch: a step and [cost] cycles against opcode [op] and flat
    block [blk]. *)
val charge : t -> op:int -> blk:int -> cost:int -> unit

(** Cycles whose step was already counted at dispatch (syscall service,
    barrier release): cycles only. *)
val charge_cycles : t -> op:int -> blk:int -> cost:int -> unit

(** Per-syscall breakdown (cold path, keyed by syscall name). *)
val charge_syscall : t -> sys:string -> cost:int -> unit

(** Engine coupling category charge. *)
val charge_engine : t -> cat:int -> cycles:int -> unit

(** {1 Snapshots} *)

type row = { r_name : string; r_steps : int; r_cycles : int }

type block_row = {
  b_func : string;
  b_bid : int;
  b_steps : int;
  b_cycles : int;
}

type snapshot = {
  s_ops : row list;           (** opcode order, zero rows dropped *)
  s_blocks : block_row list;  (** program order, zero rows dropped *)
  s_syscalls : row list;      (** name-sorted *)
  s_engine : row list;        (** category order, zero rows dropped *)
  s_total_steps : int;
  s_total_cycles : int;
      (** op cycles + engine cycles: equals the side's machine clock *)
}

val snapshot : t -> snapshot

(** Rebuild a profile from its snapshot, attached to [prog].  Exact
    inverse on attached profiles (snapshots drop only zero rows) — how
    [Ldx_snap] carries profile counters across a process boundary. *)
val of_snapshot : Ldx_cfg.Ir.program -> snapshot -> t
