(** Runtime values of MiniC. *)

type t =
  | Unit
  | Int of int
  | Str of string
  | Arr of t array        (** shared, mutable — arrays alias across calls *)
  | Fptr of string

(** Raised on dynamic type errors, out-of-bounds accesses, division by
    zero, arity mismatches and exhausted fuel. *)
exception Trap of string

(** [trap fmt ...] raises {!Trap} with a formatted message. *)
val trap : ('a, unit, string, 'b) format4 -> 'a

(** Physical-identity sentinel marking an uninitialized register slot in
    the flat VM (compare with [==] only).  Never a program value; a read
    of it traps with "undefined variable". *)
val undef : t

(** [int n] is [Int n], drawn from a table of shared boxes for small
    values ([-1..255]) so interpreter arithmetic stays allocation-free
    on the common range. *)
val int : int -> t

(** Deep structural equality (arrays by contents). *)
val equal : t -> t -> bool

(** C-like truthiness: [0], [Unit] and [""] are false. *)
val truthy : t -> bool

val int_exn : t -> int
val str_exn : t -> string
val to_string : t -> string

(** Conversion at the syscall boundary.
    @raise Trap on arrays (they never cross into the OS). *)
val to_sval : t -> Ldx_osim.Sval.t

val of_sval : Ldx_osim.Sval.t -> t

(** Total variant for tracing/comparison: arrays map to an opaque
    length-tagged token. *)
val to_sval_safe : t -> Ldx_osim.Sval.t
