(** Single-execution driver ("native run").

    Services syscalls against the process's own OS and handles thread
    operations with the VM primitives.  The baseline the overhead
    experiments compare against, and the loop the LDX engine's
    master/slave passes extend. *)

module Os = Ldx_osim.Os
module Sval = Ldx_osim.Sval

type trace_entry = {
  sys : string;
  args : Sval.t list;
  result : Sval.t;
  counter : int;    (** alignment counter at the syscall *)
  site : int;
  tid : int;
}

type outcome = {
  machine : Machine.t;
  trap : string option;
  cycles : int;
  steps : int;
  syscalls : int;
  stdout : string;
  exit_code : int option;
  trace : trace_entry list;   (** only when [~record_trace] *)
}

(** Thread operations serviced by the VM, not the OS. *)
val is_thread_op : string -> bool

(** Service a thread-operation syscall; [`Block] leaves it pending for
    retry (lock contention, unfinished join).
    @raise Value.Trap on malformed requests. *)
val service_thread_op :
  Machine.t -> Machine.thread -> Machine.pending ->
  [ `Done of Value.t | `Block ]

(** Run a program against a fresh instantiation of the world.
    [?sched] installs an instantiated scheduler state
    ({!Machine.create}); the default is the legacy round-robin seeded
    with [?seed].  [?vm] selects the stepper (default
    {!Machine.default_vm}). *)
val run :
  ?seed:int -> ?sched:Machine.Sched.state -> ?max_steps:int ->
  ?record_trace:bool -> ?vm:Machine.vm_mode ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> outcome

(** Parse, check, lower, optionally instrument, then {!run}. *)
val run_source :
  ?instrument:bool -> ?seed:int -> ?sched:Machine.Sched.state ->
  ?max_steps:int -> ?record_trace:bool -> ?vm:Machine.vm_mode ->
  string -> Ldx_osim.World.t -> outcome
