(* Schedule sweep: bounded interleaving exploration over dual executions.

   LDX's verdict is a function of BOTH inputs and interleaving: a leak
   through a shared buffer may only reach a sink under some thread
   orders.  This driver enumerates schedules with Explore (iterative
   context bounding over the base round-robin) and dual-executes the
   program under each — the SAME Forced spec on master and slave, so
   both sides follow one interleaving and the zero-source soundness
   invariant carries over schedule-by-schedule (with no sources the two
   executions are identical under ANY common schedule, hence report
   nothing; asserted by the property suite).

   The aggregate classifies the workload: schedule-STABLE when every
   explored interleaving agrees on the leak verdict, schedule-SENSITIVE
   otherwise — the latter is the signal that one seed's verdict must
   not be trusted alone (Table 4 workloads are expected stable: their
   leaks flow through syscall outcomes, not races). *)

module Sched = Ldx_sched.Scheduler
module Explore = Ldx_sched.Explore
module Machine = Ldx_vm.Machine
module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir
module Snap = Ldx_snap.Snap

type verdict = {
  v_forced : (int * int) list;
  v_signature : string;
  v_decisions : int;
  v_preemptions : int;
  v_result : Engine.result;
}

type t = {
  verdicts : verdict list;
  schedules : int;
  leaks : int;
  stable : bool;
}

let explore ?bound ?max_schedules ?(config = Engine.default_config)
    (prog : Ir.program) (world : World.t) : t =
  let run forced =
    (* one spec drives both sides; recording on so the master's trace
       feeds the enumerator's branch points *)
    let spec = Sched.spec ~seed:config.Engine.master_seed (Sched.Forced forced) in
    let cfg =
      { config with
        Engine.master_sched = Some spec;
        slave_sched = Some spec;
        record_sched = true }
    in
    let mo = Engine.master_pass cfg prog world in
    let trace = Sched.trace mo.Engine.mmachine.Machine.sched in
    let preempts = Sched.preemptions mo.Engine.mmachine.Machine.sched in
    let r = Engine.run_with_master cfg prog world mo in
    (trace, (r, preempts))
  in
  let outs = Explore.enumerate ?bound ?max_schedules ~run () in
  let verdicts =
    List.map
      (fun (o : _ Explore.outcome) ->
         let r, preempts = o.Explore.x_value in
         { v_forced = o.Explore.x_forced;
           v_signature = o.Explore.x_signature;
           v_decisions = Array.length o.Explore.x_trace;
           v_preemptions = preempts;
           v_result = r })
      outs
  in
  let leaks =
    List.length (List.filter (fun v -> v.v_result.Engine.leak) verdicts)
  in
  { verdicts;
    schedules = List.length verdicts;
    leaks;
    stable = leaks = 0 || leaks = List.length verdicts }

let explore_source ?bound ?max_schedules ?config ?instrument_config src world =
  let ast = Ldx_lang.Parser.parse_exn src in
  let prog = Ldx_cfg.Lower.lower_program ast in
  let prog, _ = Ldx_instrument.Counter.instrument ?config:instrument_config prog in
  explore ?bound ?max_schedules ?config prog world

let classification t =
  if t.schedules = 0 then "empty"
  else if not t.stable then "schedule-sensitive"
  else if t.leaks > 0 then "schedule-stable leak"
  else "schedule-stable clean"

(* ------------------------------------------------------------------ *)
(* Suffix replay: exploration after the decouple point only.           *)
(*                                                                     *)
(* [explore] above re-runs BOTH passes under every forced schedule —   *)
(* sound but quadratic in prefix length.  When the interesting         *)
(* nondeterminism lives after the first divergence-relevant source,    *)
(* the prefix is schedule-invariant bookkeeping: run master + slave    *)
(* prefix ONCE, snapshot at the decouple point, and fan the suffix     *)
(* out under alternative scheduler states.  Each alternative forces a  *)
(* single (decision, thread) override at a suffix-relative decision    *)
(* index; Forced falls back to round-robin when the pick is not        *)
(* runnable, so every point in the window is safe to probe.            *)

type suffix_verdict = {
  sv_label : string;
  sv_result : Engine.result;
}

type suffix_t = {
  sv_decoupled : bool;
  sv_prefix_cycles : int;
  sv_verdicts : suffix_verdict list;
  sv_schedules : int;
  sv_distinct : int;
  sv_leaks : int;
  sv_stable : bool;
}

(* Deterministic outcome signature used to dedup suffix verdicts: two
   forced overrides that round-robin back to the same interleaving
   produce byte-identical results, and this collapses them. *)
let result_signature (r : Engine.result) : string =
  Printf.sprintf "%d/%d/%d/%b/%d/%d/%d"
    r.Engine.slave.Engine.cycles r.Engine.slave.Engine.steps
    r.Engine.slave.Engine.syscalls r.Engine.leak
    (List.length r.Engine.reports) r.Engine.syscall_diffs
    r.Engine.mutated_inputs

let suffix_aggregate ~decoupled ~prefix_cycles ~schedules verdicts =
  let distinct = List.length verdicts in
  let leaks =
    List.length
      (List.filter (fun v -> v.sv_result.Engine.leak) verdicts)
  in
  { sv_decoupled = decoupled;
    sv_prefix_cycles = prefix_cycles;
    sv_verdicts = verdicts;
    sv_schedules = schedules;
    sv_distinct = distinct;
    sv_leaks = leaks;
    sv_stable = leaks = 0 || leaks = distinct }

let explore_suffix ?(window = 4) ?threads
    ?(config = Engine.default_config) (prog : Ir.program)
    (world : World.t) : suffix_t =
  let mo = Engine.master_pass config prog world in
  let threads =
    match threads with
    | Some n -> max 1 n
    | None -> max 1 mo.Engine.mmachine.Machine.spawn_count
  in
  match
    Engine.slave_prefix config ~specs:config.Engine.sources prog world mo
  with
  | Engine.Prefix_done so ->
    (* No decouple point: the whole run is prefix and there is no
       suffix to perturb.  Report the single (base) verdict. *)
    let r = Engine.finalize_result config mo so in
    suffix_aggregate ~decoupled:false
      ~prefix_cycles:r.Engine.slave.Engine.cycles ~schedules:1
      [ { sv_label = "base"; sv_result = r } ]
  | Engine.Prefix_paused ss ->
    let prefix_cycles =
      ss.Engine.ss_snap.Snap.sp_machine.Machine.sn_cycles
    in
    let base =
      Engine.finalize_result config mo
        (Engine.slave_resume ~label:"base" config prog world mo ss)
    in
    let seen = Hashtbl.create 16 in
    Hashtbl.replace seen (result_signature base) ();
    let schedules = ref 1 in
    let alternatives = ref [] in
    for k = 0 to window - 1 do
      for th = 0 to threads - 1 do
        let label = Printf.sprintf "%d:t%d" k th in
        let sched =
          Sched.instantiate ~record:false
            (Sched.spec ~seed:config.Engine.slave_seed
               (Sched.Forced [ (k, th) ]))
        in
        let r =
          Engine.finalize_result config mo
            (Engine.slave_resume ~sched ~label config prog world mo ss)
        in
        incr schedules;
        let sig_ = result_signature r in
        if not (Hashtbl.mem seen sig_) then begin
          Hashtbl.replace seen sig_ ();
          alternatives := { sv_label = label; sv_result = r } :: !alternatives
        end
      done
    done;
    suffix_aggregate ~decoupled:true ~prefix_cycles ~schedules:!schedules
      ({ sv_label = "base"; sv_result = base } :: List.rev !alternatives)

let suffix_classification (t : suffix_t) =
  if not t.sv_decoupled then "no decouple point"
  else if not t.sv_stable then "suffix-sensitive"
  else if t.sv_leaks > 0 then "suffix-stable leak"
  else "suffix-stable clean"

let render_suffix (t : suffix_t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %8s %8s %8s %8s %6s\n" "suffix" "cycles"
       "steps" "reports" "diffs" "leak");
  List.iter
    (fun v ->
       Buffer.add_string buf
         (Printf.sprintf "%-10s %8d %8d %8d %8d %6b\n" v.sv_label
            v.sv_result.Engine.slave.Engine.cycles
            v.sv_result.Engine.slave.Engine.steps
            (List.length v.sv_result.Engine.reports)
            v.sv_result.Engine.syscall_diffs v.sv_result.Engine.leak))
    t.sv_verdicts;
  Buffer.add_string buf
    (Printf.sprintf
       "%d suffix schedules (%d distinct), prefix %d cycles, %d leaking: %s\n"
       t.sv_schedules t.sv_distinct t.sv_prefix_cycles t.sv_leaks
       (suffix_classification t));
  Buffer.contents buf

let render (t : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-24s %6s %9s %8s %6s\n" "schedule" "forced"
       "decs" "preempts" "reports" "leak");
  List.iteri
    (fun i v ->
       let forced =
         if v.v_forced = [] then "(base)"
         else
           String.concat ","
             (List.map (fun (d, th) -> Printf.sprintf "%d:t%d" d th) v.v_forced)
       in
       Buffer.add_string buf
         (Printf.sprintf "%-10s %-24s %6d %9d %8d %6b\n"
            (Printf.sprintf "#%d" i) forced v.v_decisions v.v_preemptions
            (List.length v.v_result.Engine.reports)
            v.v_result.Engine.leak))
    t.verdicts;
  Buffer.add_string buf
    (Printf.sprintf "%d schedules, %d leaking: %s\n" t.schedules t.leaks
       (classification t));
  Buffer.contents buf
