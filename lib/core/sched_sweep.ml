(* Schedule sweep: bounded interleaving exploration over dual executions.

   LDX's verdict is a function of BOTH inputs and interleaving: a leak
   through a shared buffer may only reach a sink under some thread
   orders.  This driver enumerates schedules with Explore (iterative
   context bounding over the base round-robin) and dual-executes the
   program under each — the SAME Forced spec on master and slave, so
   both sides follow one interleaving and the zero-source soundness
   invariant carries over schedule-by-schedule (with no sources the two
   executions are identical under ANY common schedule, hence report
   nothing; asserted by the property suite).

   The aggregate classifies the workload: schedule-STABLE when every
   explored interleaving agrees on the leak verdict, schedule-SENSITIVE
   otherwise — the latter is the signal that one seed's verdict must
   not be trusted alone (Table 4 workloads are expected stable: their
   leaks flow through syscall outcomes, not races). *)

module Sched = Ldx_sched.Scheduler
module Explore = Ldx_sched.Explore
module Machine = Ldx_vm.Machine
module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir

type verdict = {
  v_forced : (int * int) list;
  v_signature : string;
  v_decisions : int;
  v_preemptions : int;
  v_result : Engine.result;
}

type t = {
  verdicts : verdict list;
  schedules : int;
  leaks : int;
  stable : bool;
}

let explore ?bound ?max_schedules ?(config = Engine.default_config)
    (prog : Ir.program) (world : World.t) : t =
  let run forced =
    (* one spec drives both sides; recording on so the master's trace
       feeds the enumerator's branch points *)
    let spec = Sched.spec ~seed:config.Engine.master_seed (Sched.Forced forced) in
    let cfg =
      { config with
        Engine.master_sched = Some spec;
        slave_sched = Some spec;
        record_sched = true }
    in
    let mo = Engine.master_pass cfg prog world in
    let trace = Sched.trace mo.Engine.mmachine.Machine.sched in
    let preempts = Sched.preemptions mo.Engine.mmachine.Machine.sched in
    let r = Engine.run_with_master cfg prog world mo in
    (trace, (r, preempts))
  in
  let outs = Explore.enumerate ?bound ?max_schedules ~run () in
  let verdicts =
    List.map
      (fun (o : _ Explore.outcome) ->
         let r, preempts = o.Explore.x_value in
         { v_forced = o.Explore.x_forced;
           v_signature = o.Explore.x_signature;
           v_decisions = Array.length o.Explore.x_trace;
           v_preemptions = preempts;
           v_result = r })
      outs
  in
  let leaks =
    List.length (List.filter (fun v -> v.v_result.Engine.leak) verdicts)
  in
  { verdicts;
    schedules = List.length verdicts;
    leaks;
    stable = leaks = 0 || leaks = List.length verdicts }

let explore_source ?bound ?max_schedules ?config ?instrument_config src world =
  let ast = Ldx_lang.Parser.parse_exn src in
  let prog = Ldx_cfg.Lower.lower_program ast in
  let prog, _ = Ldx_instrument.Counter.instrument ?config:instrument_config prog in
  explore ?bound ?max_schedules ?config prog world

let classification t =
  if t.schedules = 0 then "empty"
  else if not t.stable then "schedule-sensitive"
  else if t.leaks > 0 then "schedule-stable leak"
  else "schedule-stable clean"

let render (t : t) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %-24s %6s %9s %8s %6s\n" "schedule" "forced"
       "decs" "preempts" "reports" "leak");
  List.iteri
    (fun i v ->
       let forced =
         if v.v_forced = [] then "(base)"
         else
           String.concat ","
             (List.map (fun (d, th) -> Printf.sprintf "%d:t%d" d th) v.v_forced)
       in
       Buffer.add_string buf
         (Printf.sprintf "%-10s %-24s %6d %9d %8d %6b\n"
            (Printf.sprintf "#%d" i) forced v.v_decisions v.v_preemptions
            (List.length v.v_result.Engine.reports)
            v.v_result.Engine.leak))
    t.verdicts;
  Buffer.add_string buf
    (Printf.sprintf "%d schedules, %d leaking: %s\n" t.schedules t.leaks
       (classification t));
  Buffer.contents buf
