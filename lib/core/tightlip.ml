(* TightLip-style baseline (Yumerefendi et al. 2007).

   Same master/slave model but NO execution alignment: the slave's
   syscalls are compared against the master's in strict FIFO order (an
   optional look-ahead window tolerates tiny reorderings).  The first
   mismatch is declared a leak and the run terminates — the behaviour
   Table 2 contrasts with LDX, which keeps executing through nontrivial
   syscall differences and only reports real sink divergence. *)

module Machine = Ldx_vm.Machine
module Value = Ldx_vm.Value
module Os = Ldx_osim.Os
module Sval = Ldx_osim.Sval
module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir

type result = {
  leak_reported : bool;
  terminated_early : bool;
  syscalls_before_mismatch : int;
  total_master_syscalls : int;
  slave_trap : string option;
}

exception Mismatch

let run ?(config = Engine.default_config) ?(window = 0) (prog : Ir.program)
    (world : World.t) : result =
  let mo = Engine.master_pass config prog world in
  (* flatten the master's outcomes back into chronological order: records
     were queued per thread; single-threaded programs have spawn index 0.
     For multi-threaded programs TightLip's FIFO model is per-process; we
     approximate with per-thread FIFOs as well (favourable to TightLip). *)
  let os = Os.create ~pid:1001 world in
  Os.set_faults os config.faults;
  let m =
    Machine.create ~seed:config.slave_seed ~max_steps:config.max_steps prog os
  in
  let matched = ref 0 in
  let mismatch = ref false in
  let is_source = Engine.source_matcher config in
  (* private cursors over the master's frozen per-thread logs: TightLip
     consumes the recording without mutating it, like every other
     master_out consumer *)
  let cursors : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  let cursor_for tid =
    match Hashtbl.find_opt cursors tid with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.replace cursors tid c;
      c
  in
  let on_os_syscall th (p : Machine.pending) : Value.t =
    let sargs = List.map Value.to_sval p.Machine.sysargs in
    let recs = Engine.records_for mo th.Machine.spawn_index in
    let cur = cursor_for th.Machine.spawn_index in
    (* look for a match within the window *)
    let rec try_match k =
      if !cur >= Array.length recs || k > window then raise Mismatch
      else begin
        let r = recs.(!cur) in
        incr cur;
        if String.equal r.Engine.rsys p.Machine.sys
        && Sval.list_equal r.Engine.rargs sargs
        then r
        else try_match (k + 1)
      end
    in
    let r = try try_match 0 with Mismatch -> raise Mismatch in
    incr matched;
    (try ignore (Os.exec os p.Machine.sys sargs) with Os.Os_error _ -> ());
    let resources = Os.resource_of_syscall os p.Machine.sys sargs in
    let v =
      if is_source ~sys:p.Machine.sys ~site:p.Machine.site ~args:sargs ~resources
      then Mutation.mutate config.strategy r.Engine.rresult
      else r.Engine.rresult
    in
    Value.of_sval v
  in
  (try Engine.run_side m ~on_os_syscall ~on_stuck:(fun _ -> false)
   with Mismatch -> mismatch := true);
  let leftover = ref 0 in
  Array.iter
    (fun (tid, recs) ->
       let consumed =
         match Hashtbl.find_opt cursors tid with Some c -> !c | None -> 0
       in
       leftover := !leftover + (Array.length recs - consumed))
    mo.Engine.mlog;
  (* unconsumed master syscalls also count as differences *)
  let leak = !mismatch || !leftover > 0 in
  { leak_reported = leak;
    terminated_early = !mismatch;
    syscalls_before_mismatch = !matched;
    total_master_syscalls = mo.Engine.msummary.Engine.syscalls;
    slave_trap = m.Machine.trap }
