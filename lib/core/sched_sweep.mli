(** Bounded schedule exploration over dual executions.

    LDX's verdict depends on the interleaving as well as the inputs: a
    leak through shared state may only reach a sink under some thread
    orders.  [explore] enumerates interleavings with
    {!Ldx_sched.Explore} (iterative context bounding over the base
    round-robin: all schedules with 0 forced preemptions, then 1, … up
    to the bound) and dual-executes the program under each — the SAME
    [Forced] scheduler spec on master and slave, so both sides follow
    one interleaving and the zero-source soundness invariant holds
    schedule-by-schedule.

    The aggregate classifies the workload: {e schedule-stable} when
    every explored interleaving agrees on the leak verdict,
    {e schedule-sensitive} otherwise — the signal that a single-seed
    verdict must not be trusted alone.  EXPERIMENTS.md "Table 4 across
    schedules" reports the Table 4 workloads stable-leaking under every
    explored schedule. *)

(** One explored interleaving's dual-execution outcome. *)
type verdict = {
  v_forced : (int * int) list;
      (** forced [(decision index, thread)] overrides; [[]] = base *)
  v_signature : string;   (** chosen-thread sequence identifying it *)
  v_decisions : int;      (** scheduling decisions in the master pass *)
  v_preemptions : int;    (** decisions that switched off a runnable thread *)
  v_result : Engine.result;
}

type t = {
  verdicts : verdict list;  (** in deterministic exploration order *)
  schedules : int;          (** distinct interleavings explored *)
  leaks : int;              (** how many of them leaked *)
  stable : bool;            (** all verdicts agree ([leaks] = 0 or all) *)
}

(** [explore ?bound ?max_schedules ?config prog world] explores up to
    [max_schedules] (default 32) distinct interleavings with at most
    [bound] (default 2) forced preemptions each.  [config]'s
    [master_sched]/[slave_sched]/[record_sched] fields are overridden
    by the sweep; everything else (sources, sinks, strategy, faults…)
    applies to every run.  Fully deterministic: same inputs, same
    verdict list. *)
val explore :
  ?bound:int -> ?max_schedules:int -> ?config:Engine.config ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> t

(** [explore_source] parses, lowers and instruments [src] first. *)
val explore_source :
  ?bound:int -> ?max_schedules:int -> ?config:Engine.config ->
  ?instrument_config:Ldx_instrument.Counter.config ->
  string -> Ldx_osim.World.t -> t

(** ["schedule-stable clean" | "schedule-stable leak" |
    "schedule-sensitive" | "empty"]. *)
val classification : t -> string

(** Fixed-width per-schedule table plus the classification line. *)
val render : t -> string

(** {1 Suffix replay}

    [explore] re-runs both passes under every forced schedule — sound
    but quadratic in prefix length.  [explore_suffix] instead runs the
    master pass and the slave {e prefix} once, snapshots at the first
    divergence-relevant decouple point ({!Engine.slave_prefix}), and
    fans the {e suffix} out from that snapshot under alternative
    scheduler states ({!Engine.slave_resume} with [?sched]).  Each
    alternative forces a single [(decision, thread)] override at a
    suffix-relative decision index (decision 0 = the first scheduling
    decision after the decouple point); the [Forced] policy falls back
    to round-robin when the pick is not runnable, so the whole
    [window × threads] grid is safe to probe. *)

(** One suffix interleaving's outcome.  [sv_label] is ["base"] for the
    unperturbed suffix or ["k:tN"] for the override forcing thread [N]
    at suffix decision [k]. *)
type suffix_verdict = {
  sv_label : string;
  sv_result : Engine.result;
}

type suffix_t = {
  sv_decoupled : bool;
      (** a decouple point was reached; [false] means the program had
          no divergence-relevant source and only the base verdict is
          reported *)
  sv_prefix_cycles : int;   (** slave cycles shared by every suffix *)
  sv_verdicts : suffix_verdict list;
      (** base first, then distinct alternatives in grid order;
          verdicts with identical outcomes are collapsed *)
  sv_schedules : int;       (** suffix executions performed *)
  sv_distinct : int;        (** distinct outcomes among them *)
  sv_leaks : int;           (** distinct outcomes that leaked *)
  sv_stable : bool;         (** all distinct outcomes agree on leak *)
}

(** [explore_suffix ?window ?threads ?config prog world] probes
    [window] (default 4) suffix decision indices × [threads] (default:
    the master pass's spawn count) forced picks each, plus the base
    suffix.  Fully deterministic.  [config]'s sources choose the
    decouple point; its [slave_seed] seeds the forced schedules'
    round-robin fallback. *)
val explore_suffix :
  ?window:int -> ?threads:int -> ?config:Engine.config ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> suffix_t

(** ["no decouple point" | "suffix-stable clean" |
    "suffix-stable leak" | "suffix-sensitive"]. *)
val suffix_classification : suffix_t -> string

(** Fixed-width per-suffix table plus the classification line. *)
val render_suffix : suffix_t -> string
