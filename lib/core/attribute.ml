(* Source attribution.

   LDX mutates every configured source in one dual execution and reports
   causality to "some source(s)" (Sec. 3: it "does not require running
   multiple times for individual sources").  When the user wants to know
   *which* source a sink depends on, the natural follow-up is one dual
   execution per source — still two executions each, no instruction-level
   tracking.  This module packages that loop and a per-sink summary. *)

module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir

type attribution = {
  source : Engine.source_spec;
  result : Engine.result;
}

(* One slave pass per source in [config.sources], all replaying a single
   recorded master (a {!Campaign}): the master never reads
   [config.sources], so K isolated-source runs cost 1 + K executions
   instead of 2K.  [jobs > 1] fans the slave passes out over a domain
   pool; results are identical to the sequential ones. *)
let per_source ?(config = Engine.default_config) ?(jobs = 1) ?obs ?retry
    ?deadline ?incremental (prog : Ir.program) (world : World.t) :
  attribution list =
  let outs =
    Campaign.run ~jobs ?obs ?retry ?deadline ?incremental ~config prog world
      (Campaign.of_sources config)
  in
  List.map2
    (fun spec (o : Campaign.outcome) ->
       (* attribution wants every per-source verdict: a crashed or
          fuel-exhausted task would make the list incomplete, so it
          surfaces as an error rather than a silent hole *)
       { source = spec; result = Campaign.result_exn o })
    config.Engine.sources outs

let source_to_string (s : Engine.source_spec) =
  String.concat ""
    [ (match s.Engine.src_sys with Some v -> v | None -> "*");
      (match s.Engine.src_arg with Some v -> "@" ^ v | None -> "");
      (match s.Engine.src_site with Some v -> Printf.sprintf "#%d" v | None -> "");
      (match s.Engine.src_nth with Some v -> Printf.sprintf "[%d]" v | None -> "") ]

(* Map each flagged sink (sys, site) to the sources whose isolated
   mutation flips it. *)
let sink_matrix (attrs : attribution list) :
  ((string * int) * Engine.source_spec list) list =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun a ->
       List.iter
         (fun (rep : Engine.sink_report) ->
            let key = (rep.Engine.sys, rep.Engine.site) in
            if not (Hashtbl.mem tbl key) then begin
              Hashtbl.replace tbl key [];
              order := key :: !order
            end;
            Hashtbl.replace tbl key (a.source :: Hashtbl.find tbl key))
         a.result.Engine.reports)
    attrs;
  List.rev_map (fun key -> (key, List.rev (Hashtbl.find tbl key))) !order

let render (attrs : attribution list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun a ->
       Buffer.add_string buf
         (Printf.sprintf "source %-24s -> %d tainted sink(s), %d diffs\n"
            (source_to_string a.source) a.result.Engine.tainted_sinks
            a.result.Engine.syscall_diffs))
    attrs;
  List.iter
    (fun ((sys, site), sources) ->
       Buffer.add_string buf
         (Printf.sprintf "sink %s@%d <- {%s}\n" sys site
            (String.concat ", " (List.map source_to_string sources))))
    (sink_matrix attrs);
  Buffer.contents buf
