(** Source attribution: which source does each flagged sink depend on?

    LDX mutates all configured sources in a single dual execution
    (Sec. 3).  When per-source attribution is wanted, this module runs
    one dual execution per source — still two executions each, no
    instruction-level tracking. *)

type attribution = {
  source : Engine.source_spec;
  result : Engine.result;
}

(** One isolated-source slave pass per entry of [config.sources], all
    replaying a single recorded master pass (a {!Campaign}): 1 + K
    executions instead of 2K.  [?jobs] (default 1) fans the slave
    passes out over a domain pool; results are identical either way.
    [?obs] observes the shared master pass (one [Master_run] phase) and
    every slave pass (buffered and drained in task order when parallel).
    [?retry] and [?deadline] are {!Campaign.run}'s task robustness
    controls; a task that still ends [Crashed]/[Quarantined] surfaces
    as [Invalid_argument] — attribution needs every per-source
    verdict. *)
val per_source :
  ?config:Engine.config -> ?jobs:int -> ?obs:Ldx_obs.Sink.t ->
  ?retry:Campaign.retry_policy -> ?deadline:int -> ?incremental:bool ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> attribution list

val source_to_string : Engine.source_spec -> string

(** Each flagged sink (sys, site) with the sources whose isolated
    mutation flips it. *)
val sink_matrix :
  attribution list -> ((string * int) * Engine.source_spec list) list

val render : attribution list -> string
