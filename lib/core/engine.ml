(* The LDX dual-execution engine (Sec. 3-7).

   The master executes against the real (simulated) OS and publishes every
   syscall outcome tagged with its position (counter + loop iterations +
   counter stack, {!Align}).  The slave consumes outcomes by position:

   - outcome at the slave's exact position with the same PC and the same
     parameters: coupled — the slave copies the result (mutated if the
     syscall is a configured source) and skips external effects;
   - same position and PC but different parameters (paper case 3): a
     causality witness at sinks; the resource is tainted and the slave
     decouples for this operation;
   - same position, different PC (case 2): the paths diverged — both
     syscalls execute independently;
   - master outcome strictly behind the slave's position (case 1): the
     syscall disappeared in the slave; the slave's own syscall with no
     master counterpart likewise appeared only in the slave.

   Positions strictly increase along a thread, so a FIFO per thread pair
   is a complete alignment index.  The two executions are composed
   sequentially (master first) — virtual two-CPU timing is preserved by
   stamping each outcome with the master's cycle clock and fast-forwarding
   the slave's clock on copies, which is how Fig. 6's "concurrent on two
   CPUs" overhead is modelled.  See DESIGN.md for the argument that this
   is observation-equivalent to the paper's spin-loop coupling. *)

module Machine = Ldx_vm.Machine
module Profile = Ldx_vm.Profile
module Driver = Ldx_vm.Driver
module Value = Ldx_vm.Value
module Cost = Ldx_vm.Cost
module Os = Ldx_osim.Os
module Sval = Ldx_osim.Sval
module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir
module Obs = Ldx_obs
module Sched = Ldx_sched.Scheduler
module Schedule = Ldx_sched.Schedule

(* ------------------------------------------------------------------ *)
(* Configuration.                                                      *)

type source_spec = {
  src_sys : string option;      (* syscall name, e.g. "recv" *)
  src_site : int option;        (* static site id *)
  src_arg : string option;      (* substring of arg0 / touched resource *)
  src_nth : int option;         (* only the nth dynamic match (1-based) *)
}

let source ?sys ?site ?arg ?nth () =
  { src_sys = sys; src_site = site; src_arg = arg; src_nth = nth }

type sink_config =
  | Output_syscalls             (* write/send/print/malloc/retaddr *)
  | Network_outputs             (* send only *)
  | File_outputs                (* write/print *)
  | Attack_sinks                (* retaddr + malloc sizes *)
  | Custom_sinks of (string -> int -> Sval.t list -> bool)

type config = {
  sources : source_spec list;
  sinks : sink_config;
  strategy : Mutation.strategy;
  master_seed : int;
  slave_seed : int;
  max_steps : int;
  record_trace : bool;        (* keep a per-syscall alignment action log *)
  check_final_state : bool;
  (* Extension of the paper's future work (Sec. 1): after the dual run,
     compare the two filesystems — contents AND mtimes — and report
     files that diverged.  Catches leaks routed through file state or
     metadata that never pass a configured sink syscall. *)
  faults : Ldx_osim.Fault.t option;
  (* Environment fault plan, shared by BOTH sides (like sinks and
     max_steps, a master-side field): the master's OS and the slave's
     each instantiate the same immutable plan with fresh occurrence
     counters.  Coupled slaves copy the master's faulted results; a
     decoupled slave replays the identical schedule from its own
     counters — DESIGN.md "Fault model" for the soundness argument. *)
  master_sched : Sched.spec option;
  (* Scheduler spec for the master pass; [None] = the legacy
     round-robin seeded with [master_seed].  Like [faults], a spec is
     immutable: each pass instantiates its own mutable state. *)
  slave_sched : Sched.spec option;
  (* Scheduler spec for slave passes; [None] = legacy from
     [slave_seed].  A slave-side field (campaign tasks may override
     it per task). *)
  record_sched : bool;
  (* Record both sides' scheduling decision logs; the master's is
     exposed as [master_out.msched] / [result.master_schedule] (the
     input of --sched-replay and the exploration enumerator). *)
}

let default_config =
  { sources = [ source ~sys:"recv" () ];
    sinks = Output_syscalls;
    strategy = Mutation.Off_by_one;
    master_seed = 0;
    slave_seed = 0;
    max_steps = 30_000_000;
    record_trace = false;
    check_final_state = false;
    faults = None;
    master_sched = None;
    slave_sched = None;
    record_sched = false }

(* The scheduler state of one side: the configured spec, or the legacy
   round-robin seeded like the historical hard-wired scheduler. *)
let sched_state_of ~(record : bool) (spec : Sched.spec option) ~(seed : int) :
  Sched.state =
  Sched.instantiate ~record
    (match spec with Some s -> s | None -> Sched.legacy ~seed)

let sink_pred = function
  | Output_syscalls ->
    fun sys _ _ -> List.mem sys [ "write"; "send"; "print"; "malloc"; "retaddr" ]
  | Network_outputs -> fun sys _ _ -> String.equal sys "send"
  | File_outputs -> fun sys _ _ -> sys = "write" || sys = "print"
  | Attack_sinks -> fun sys _ _ -> sys = "retaddr" || sys = "malloc"
  | Custom_sinks f -> f

let contains hay needle =
  (* allocation-free char-compare scan: this runs per source spec at
     every syscall, where a String.sub per offset was pure garbage *)
  let hn = String.length hay and nn = String.length needle in
  nn = 0
  || (let rec matches_at i j =
        j >= nn || (hay.[i + j] = needle.[j] && matches_at i (j + 1))
      in
      let rec scan i =
        i <= hn - nn && (matches_at i 0 || scan (i + 1))
      in
      scan 0)

(* Stateful source predicate over one execution's dynamic syscall stream.
   The [src_nth] occurrence counters are keyed by each spec's INDEX in
   [config.sources]: every configured spec counts its own matches, even
   when two specs are structurally equal (keying by [Hashtbl.hash spec]
   made equal specs share one counter and let distinct specs collide). *)
let source_matcher (config : config) =
  let specs =
    Array.of_list config.sources in
  let source_hits = Array.make (Array.length specs) 0 in
  fun ~sys ~site ~(args : Sval.t list) ~(resources : string list) ->
    (* evaluate EVERY spec (no short-circuit): the per-spec occurrence
       counters must advance on each matching event even when an earlier
       spec already fired *)
    let hit = ref false in
    Array.iteri
      (fun i (spec : source_spec) ->
         let base =
           (match spec.src_sys with None -> true | Some s -> String.equal s sys)
           && (match spec.src_site with None -> true | Some s -> s = site)
           && (match spec.src_arg with
               | None -> true
               | Some sub ->
                 List.exists (fun r -> contains r sub) resources
                 || (match args with
                     | Sval.S a :: _ -> contains a sub
                     | _ -> false))
         in
         let this =
           if not base then false
           else
             match spec.src_nth with
             | None -> true
             | Some n ->
               let c = source_hits.(i) + 1 in
               source_hits.(i) <- c;
               c = n
         in
         if this then hit := true)
      specs;
    !hit

(* ------------------------------------------------------------------ *)
(* Reports.                                                            *)

type divergence_kind =
  | Args_differ                 (* aligned sink, different parameters *)
  | Different_syscall           (* aligned counter, different PC *)
  | Missing_in_slave            (* master-only sink *)
  | Missing_in_master           (* slave-only sink *)
  | File_state_differs          (* final-state check: contents diverged *)
  | File_metadata_differs       (* final-state check: same data, mtimes off *)

let kind_to_string = function
  | Args_differ -> "args-differ"
  | Different_syscall -> "different-syscall"
  | Missing_in_slave -> "missing-in-slave"
  | Missing_in_master -> "missing-in-master"
  | File_state_differs -> "file-state-differs"
  | File_metadata_differs -> "file-metadata-differs"

type sink_report = {
  kind : divergence_kind;
  sys : string;
  site : int;
  position : string;
  master_args : Sval.t list option;
  slave_args : Sval.t list option;
}

let report_to_string (r : sink_report) =
  Printf.sprintf "[%s] %s@%d pos=%s%s%s" (kind_to_string r.kind) r.sys r.site
    r.position
    (match r.master_args with
     | Some a -> " master=(" ^ Sval.list_to_string a ^ ")"
     | None -> "")
    (match r.slave_args with
     | Some a -> " slave=(" ^ Sval.list_to_string a ^ ")"
     | None -> "")

type exec_summary = {
  cycles : int;
  steps : int;
  syscalls : int;
  stdout : string;
  trap : string option;
  exit_code : int option;
  faults_injected : int;        (* environment faults fired in this side *)
}

(* Structured failure taxonomy over [trap].  The string classification
   lives in [Obs.Event.trap_class] (the single source of truth shared
   with the metrics counters); this wraps it into a variant for
   pattern-matching consumers. *)
type failure_class = Healthy | Fuel | Deadlock | Os_failure | Vm_trap

let classify_trap (trap : string option) : failure_class =
  match Obs.Event.trap_class trap with
  | "ok" -> Healthy
  | "fuel" -> Fuel
  | "deadlock" -> Deadlock
  | "os-error" -> Os_failure
  | _ -> Vm_trap

let failure_class_to_string = function
  | Healthy -> "ok"
  | Fuel -> "fuel"
  | Deadlock -> "deadlock"
  | Os_failure -> "os-error"
  | Vm_trap -> "vm-trap"

(* One alignment decision of the slave-side syscall wrapper, in slave
   order (master-only drops appear where the slave passed them).  Only
   recorded when [config.record_trace] is set. *)
type trace_action =
  | T_copied                       (* aligned; outcome shared *)
  | T_sink_match                   (* aligned sink, equal parameters *)
  | T_args_differ                  (* case 3 *)
  | T_path_diff                    (* case 2: same counter, other PC *)
  | T_slave_only                   (* no master counterpart *)
  | T_master_only                  (* master outcome the slave passed *)
  | T_decoupled                    (* tainted resource; executed privately *)

let trace_action_to_string = function
  | T_copied -> "copied"
  | T_sink_match -> "sink=="
  | T_args_differ -> "args-differ"
  | T_path_diff -> "path-diff"
  | T_slave_only -> "slave-only"
  | T_master_only -> "master-only"
  | T_decoupled -> "decoupled"

type trace_entry = {
  t_pos : string;
  t_action : trace_action;
  t_master : (string * Sval.t list) option;   (* sys, args *)
  t_slave : (string * Sval.t list) option;
}

(* ------------------------------------------------------------------ *)
(* Observability (Ldx_obs).  Everything below is guarded on the ?obs
   sink being present: with obs off the engine pays one pointer
   comparison per emission point and builds no payloads.               *)

(* The paper's divergence-case number of a report kind: 1 = syscall
   missing in one execution, 2 = same counter different PC, 3 = aligned
   sink with different parameters; 0 for the final-state extension. *)
let case_of_kind = function
  | Missing_in_slave | Missing_in_master -> 1
  | Different_syscall -> 2
  | Args_differ -> 3
  | File_state_differs | File_metadata_differs -> 0

let decision_of_action = function
  | T_copied -> Obs.Event.D_copied
  | T_sink_match -> Obs.Event.D_sink_match
  | T_args_differ -> Obs.Event.D_args_differ
  | T_path_diff -> Obs.Event.D_path_diff
  | T_slave_only -> Obs.Event.D_slave_only
  | T_master_only -> Obs.Event.D_master_only
  | T_decoupled -> Obs.Event.D_decoupled

(* Install the VM step hooks and the OS dispatch hook of one side. *)
let install_obs (s : Obs.Sink.t) (side : Obs.Event.side) (m : Machine.t)
    (os : Os.t) : unit =
  let emit = Obs.Sink.emit s in
  m.Machine.on_obs_syscall <-
    Some
      (fun t th (p : Machine.pending) ->
         emit
           (Obs.Event.Syscall
              { side; tid = th.Machine.spawn_index; sys = p.Machine.sys;
                site = p.Machine.site;
                pos = Align.to_string (Align.of_thread th);
                ts = t.Machine.cycles; dur = Cost.syscall }));
  m.Machine.on_obs_barrier <-
    Some
      (fun t th (b : Machine.barrier) ->
         emit
           (Obs.Event.Barrier_wait
              { side; tid = th.Machine.spawn_index; loop = b.Machine.loop;
                ts = t.Machine.cycles; dur = Cost.barrier }));
  m.Machine.on_obs_cnt_sample <-
    Some (fun _ _ c -> emit (Obs.Event.Cnt_sample { side; value = c }));
  os.Os.on_exec <-
    Some
      (fun o sys _args _r ->
         emit
           (Obs.Event.Os_call
              { side; pid = o.Os.pid; sys; clock = o.Os.clock }));
  os.Os.on_fault <-
    Some
      (fun _ sys site a ->
         emit
           (Obs.Event.Fault_injected
              { side; sys; site;
                action = Ldx_osim.Fault.action_to_string a }));
  m.Machine.on_obs_sched <-
    Some
      (fun t (d : Sched.decision) ->
         emit
           (Obs.Event.Schedule_decision
              { side; index = d.Sched.d_index; chosen = d.Sched.d_chosen;
                runnable = d.Sched.d_nrunnable;
                quantum = d.Sched.d_quantum; ts = t.Machine.cycles });
         if d.Sched.d_preempted then
           emit
             (Obs.Event.Preemption
                { side; index = d.Sched.d_index; chosen = d.Sched.d_chosen;
                  ts = t.Machine.cycles }))

let emit_summary obs (side : Obs.Event.side) (m : Machine.t) : unit =
  match obs with
  | None -> ()
  | Some s ->
    Obs.Sink.emit s
      (Obs.Event.Run_summary
         { side; cycles = m.Machine.cycles; steps = m.Machine.steps;
           syscalls = m.Machine.syscalls;
           cnt_instrs = m.Machine.instr_events; trap = m.Machine.trap })

let phase_begin obs p = Obs.Sink.emit_opt obs (Obs.Event.Phase_begin p)
let phase_end obs p = Obs.Sink.emit_opt obs (Obs.Event.Phase_end p)

(* [with_phase obs p f] brackets [f] with begin/end events, ending the
   phase even when [f] raises. *)
let with_phase obs p f =
  phase_begin obs p;
  match f () with
  | v ->
    phase_end obs p;
    v
  | exception e ->
    phase_end obs p;
    raise e

type result = {
  trace : trace_entry list;        (* empty unless config.record_trace *)
  reports : sink_report list;
  leak : bool;
  tainted_sinks : int;
  total_sinks : int;            (* dynamic sink executions in the master *)
  syscall_diffs : int;
  diffs_before_first_report : int;
  total_syscalls : int;         (* dynamic syscalls in the master *)
  mutated_inputs : int;
  master : exec_summary;
  slave : exec_summary;
  wall_cycles : int;            (* max of the two clocks (two CPUs) *)
  dyn_cnt_avg : float;
  dyn_cnt_max : int;
  max_seg_depth : int;
  master_schedule : Ldx_sched.Schedule.t option;
                                (* recorded when config.record_sched *)
}

(* ------------------------------------------------------------------ *)
(* Master pass.                                                        *)

type record = {
  rpos : Align.t;
  rsite : int;
  rsys : string;
  rargs : Sval.t list;
  rresult : Sval.t;
  rcyc : int;                   (* master clock when the outcome was ready *)
  rsink : bool;
}

(* The master's outcome log is frozen after the pass: per-thread record
   arrays sorted by spawn index.  Consumers (slave passes, baselines)
   keep their own integer cursors, so one recorded master can be
   replayed by any number of slaves — sequentially or from concurrent
   domains ({!Campaign}). *)
type master_out = {
  mlog : (int * record array) array;           (* per spawn_index, ascending *)
  mlock_trace : (string * int) list;           (* chronological *)
  msummary : exec_summary;
  mtotal_sinks : int;
  mmachine : Machine.t;
  msched : Schedule.t option;                  (* when config.record_sched *)
}

let records_for (mo : master_out) (tid : int) : record array =
  let n = Array.length mo.mlog in
  let rec go i =
    if i >= n then [||]
    else
      let t, a = mo.mlog.(i) in
      if t = tid then a else go (i + 1)
  in
  go 0

let summary_of (m : Machine.t) =
  { cycles = m.Machine.cycles;
    steps = m.Machine.steps;
    syscalls = m.Machine.syscalls;
    stdout = Os.stdout_contents m.Machine.os;
    trap = m.Machine.trap;
    exit_code = m.Machine.os.Os.exit_code;
    faults_injected = Os.faults_injected m.Machine.os }

let queue_for queues idx =
  match Hashtbl.find_opt queues idx with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace queues idx q;
    q

(* Run one execution to completion, retrying thread ops that block.
   [on_os_syscall] services non-thread syscalls and returns the value the
   execution observes. *)
let run_side (m : Machine.t)
    ~(on_os_syscall : Machine.thread -> Machine.pending -> Value.t)
    ~(on_stuck : Machine.thread list -> bool) : unit =
  let blocked : Machine.thread list ref = ref [] in
  let service th =
    let p = Machine.pending_of th in
    if Driver.is_thread_op p.Machine.sys then begin
      match Driver.service_thread_op m th p with
      | `Done v -> Machine.provide_result m th v
      | `Block -> blocked := th :: !blocked
    end
    else begin
      let v = on_os_syscall th p in
      Machine.provide_result m th v
    end
  in
  let retry_blocked () =
    let bs = !blocked in
    blocked := [];
    let progress = ref false in
    List.iter
      (fun th ->
         match th.Machine.status with
         | Machine.Awaiting p ->
           (match Driver.service_thread_op m th p with
            | `Done v ->
              progress := true;
              Machine.provide_result m th v
            | `Block -> blocked := th :: !blocked)
         | _ -> ())
      bs;
    !progress
  in
  let rec loop () =
    match Machine.run_until_event m with
    | Machine.Ev_syscall th ->
      (try service th with Value.Trap msg ->
         m.Machine.trap <- Some msg;
         m.Machine.finished <- true);
      ignore (retry_blocked ());
      if not m.Machine.finished then loop ()
    | Machine.Ev_barrier th ->
      Machine.release_barrier m th;
      loop ()
    | Machine.Ev_idle ->
      if retry_blocked () then loop ()
      else if on_stuck !blocked then begin
        if retry_blocked () then loop ()
        else begin
          m.Machine.trap <- Some "deadlock: all threads blocked";
          m.Machine.finished <- true
        end
      end
      else begin
        m.Machine.trap <- Some "deadlock: all threads blocked";
        m.Machine.finished <- true
      end
    | Machine.Ev_done -> ()
    | Machine.Ev_trap _ -> ()
  in
  loop ()

let master_pass ?obs ?prof (config : config) (prog : Ir.program)
    (world : World.t) : master_out =
  let os = Os.create ~pid:1000 world in
  Os.set_faults os config.faults;
  let sched =
    sched_state_of ~record:config.record_sched config.master_sched
      ~seed:config.master_seed
  in
  let m =
    Machine.create ~seed:config.master_seed ~sched ~max_steps:config.max_steps
      ?prof prog os
  in
  (match obs with
   | Some s -> install_obs s Obs.Event.Master m os
   | None -> ());
  let is_sink = sink_pred config.sinks in
  let queues = Hashtbl.create 4 in
  let total_sinks = ref 0 in
  let on_os_syscall th (p : Machine.pending) =
    let sargs = List.map Value.to_sval p.Machine.sysargs in
    let r =
      try Os.exec ~site:p.Machine.site os p.Machine.sys sargs
      with Os.Os_error msg -> raise (Value.Trap ("os-error: " ^ msg))
    in
    let sink = is_sink p.Machine.sys p.Machine.site sargs in
    if sink then incr total_sinks;
    Queue.add
      { rpos = Align.of_thread th;
        rsite = p.Machine.site;
        rsys = p.Machine.sys;
        rargs = sargs;
        rresult = r;
        rcyc = m.Machine.cycles;
        rsink = sink }
      (queue_for queues th.Machine.spawn_index);
    Value.of_sval r
  in
  run_side m ~on_os_syscall ~on_stuck:(fun _ -> false);
  emit_summary obs Obs.Event.Master m;
  (* freeze the per-thread queues into an immutable, sorted log *)
  let mlog =
    Hashtbl.fold
      (fun tid q acc -> (tid, Array.of_seq (Queue.to_seq q)) :: acc)
      queues []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> Array.of_list
  in
  { mlog;
    mlock_trace = List.rev m.Machine.lock_trace;
    msummary = summary_of m;
    mtotal_sinks = !total_sinks;
    mmachine = m;
    msched =
      (if config.record_sched then Some (Sched.to_schedule sched) else None) }

(* ------------------------------------------------------------------ *)
(* Slave pass.                                                         *)

type slave_out = {
  sreports : sink_report list;
  sdiffs : int;
  sdiffs_before_first : int;
  smutated : int;
  ssummary : exec_summary;
  strace : trace_entry list;
  sos : Os.t;                  (* the slave's private OS (final state) *)
}

let slave_pass ?obs ?prof (config : config) (prog : Ir.program)
    (world : World.t) (mo : master_out) : slave_out =
  let os = Os.create ~pid:1001 world in
  (* the slave's OS instantiates the SAME immutable plan with fresh
     occurrence counters: replaying from scratch, its fault schedule
     tracks the master's while coupled, and stays deterministic after
     decoupling (DESIGN.md "Fault model") *)
  Os.set_faults os config.faults;
  let sched =
    sched_state_of ~record:config.record_sched config.slave_sched
      ~seed:config.slave_seed
  in
  let m =
    Machine.create ~seed:config.slave_seed ~sched ~max_steps:config.max_steps
      ?prof prog os
  in
  (match obs with
   | Some s -> install_obs s Obs.Event.Slave m os
   | None -> ());
  let is_sink = sink_pred config.sinks in
  (* --- schedule replay gate over the master's lock-grant order --- *)
  let grants : (string, int Queue.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (key, idx) -> Queue.add idx (queue_for grants key))
    mo.mlock_trace;
  let tainted_locks : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  m.Machine.lock_gate <-
    Some
      (fun key idx ->
         if Hashtbl.mem tainted_locks key then true
         else
           match Hashtbl.find_opt grants key with
           | None ->
             (* the master never touched this lock: a schedule difference;
                taint it and stop gating (Sec. 7) *)
             Hashtbl.replace tainted_locks key ();
             true
           | Some q ->
             if Queue.is_empty q then begin
               Hashtbl.replace tainted_locks key ();
               true
             end
             else if Queue.peek q = idx then begin
               ignore (Queue.pop q);
               true
             end
             else false);
  (* --- divergence bookkeeping --- *)
  let reports = ref [] in
  let diffs = ref 0 in
  let diffs_before_first = ref (-1) in
  let trace = ref [] in
  (* One alignment decision: feeds the (opt-in) trace log and the (opt-in)
     observability sink.  [master_ts] is the producing master cycle stamp,
     -1 when there is no master counterpart; the slave stamp is read off
     the slave clock at the call, so in the copy path this runs after the
     fast-forward. *)
  let note ~tid ~pos ~action ~sinkp ~master_ts ~master ~slave =
    if config.record_trace then
      trace :=
        { t_pos = Align.to_string pos; t_action = action;
          t_master = master; t_slave = slave }
        :: !trace;
    match obs with
    | None -> ()
    | Some s ->
      Obs.Sink.emit s
        (Obs.Event.Couple
           { tid; pos = Align.to_string pos;
             decision = decision_of_action action; sink = sinkp;
             master_sys = Option.map fst master;
             slave_sys = Option.map fst slave;
             master_ts; slave_ts = m.Machine.cycles })
  in
  let tainted_resources : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let report kind ~sys ~site ~pos ~master_args ~slave_args =
    if !diffs_before_first < 0 then diffs_before_first := !diffs;
    (match obs with
     | None -> ()
     | Some s ->
       Obs.Sink.emit s
         (Obs.Event.Divergence
            { case = case_of_kind kind; kind = kind_to_string kind; sys;
              site; pos = Align.to_string pos }));
    reports :=
      { kind; sys; site; position = Align.to_string pos;
        master_args; slave_args }
      :: !reports
  in
  let taint rs = List.iter (fun r -> Hashtbl.replace tainted_resources r ()) rs in
  let drop_master_only ~tid (r : record) =
    incr diffs;
    taint (Os.resource_of_syscall os r.rsys r.rargs);
    note ~tid ~pos:r.rpos ~action:T_master_only ~sinkp:r.rsink
      ~master_ts:r.rcyc ~master:(Some (r.rsys, r.rargs)) ~slave:None;
    if r.rsink then
      report Missing_in_slave ~sys:r.rsys ~site:r.rsite ~pos:r.rpos
        ~master_args:(Some r.rargs) ~slave_args:None
  in
  (* --- source mutation --- *)
  let mutated = ref 0 in
  let is_source = source_matcher config in
  let maybe_mutate ~sys ~site ~pos ~args ~resources (v : Sval.t) : Sval.t =
    if is_source ~sys ~site ~args ~resources then begin
      let v' = Mutation.mutate config.strategy v in
      if not (Sval.equal v' v) then begin
        incr mutated;
        match obs with
        | None -> ()
        | Some s ->
          Obs.Sink.emit s
            (Obs.Event.Mutation
               { sys; site; pos = Align.to_string pos;
                 before = Sval.to_string v; after = Sval.to_string v' })
      end;
      v'
    end
    else v
  in
  (* --- the slave syscall wrapper --- *)
  (* Per-thread read cursors over the master's frozen record arrays: the
     slave never mutates [mo], so one recorded master replays under any
     number of (possibly concurrent) slave passes. *)
  let cursors : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  let cursor_for tid =
    match Hashtbl.find_opt cursors tid with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.replace cursors tid c;
      c
  in
  let on_os_syscall th (p : Machine.pending) : Value.t =
    let sys = p.Machine.sys and site = p.Machine.site in
    let sargs = List.map Value.to_sval p.Machine.sysargs in
    let pos = Align.of_thread th in
    let resources = Os.resource_of_syscall os sys sargs in
    let sinkp = is_sink sys site sargs in
    let tid = th.Machine.spawn_index in
    let recs = records_for mo tid in
    let cur = cursor_for tid in
    (* skip past outcomes the slave has passed: master-only syscalls *)
    while !cur < Array.length recs && Align.compare recs.(!cur).rpos pos < 0 do
      drop_master_only ~tid recs.(!cur);
      incr cur
    done;
    let private_exec () =
      taint resources;
      try Os.exec ~site os sys sargs with Os.Os_error _ -> Sval.I (-1)
    in
    let slave_only () =
      incr diffs;
      note ~tid ~pos ~action:T_slave_only ~sinkp ~master_ts:(-1) ~master:None
        ~slave:(Some (sys, sargs));
      if sinkp then
        report Missing_in_master ~sys ~site ~pos ~master_args:None
          ~slave_args:(Some sargs);
      private_exec ()
    in
    let res =
      if !cur >= Array.length recs then slave_only ()
      else begin
        let r = recs.(!cur) in
        let c = Align.compare r.rpos pos in
        if c > 0 then slave_only ()
        else if r.rsite = site then begin
          incr cur;
          let res_tainted = List.exists (Hashtbl.mem tainted_resources) resources in
          if res_tainted then begin
            (* control-flow aligned but on a diverged resource: decoupled *)
            incr diffs;
            note ~tid ~pos ~action:T_decoupled ~sinkp ~master_ts:r.rcyc
              ~master:(Some (r.rsys, r.rargs)) ~slave:(Some (sys, sargs));
            if sinkp && not (Sval.list_equal r.rargs sargs) then
              report Args_differ ~sys ~site ~pos ~master_args:(Some r.rargs)
                ~slave_args:(Some sargs);
            private_exec ()
          end
          else if Sval.list_equal r.rargs sargs then begin
            (* fully aligned: copy the master's outcome.  The private
               execution (discarded) still consults the fault plan, so
               the slave's occurrence counters advance in lockstep with
               the master's while coupled — which is what makes a later
               decoupling replay the remaining schedule identically. *)
            (try ignore (Os.exec ~site os sys sargs) with Os.Os_error _ -> ());
            let before = m.Machine.cycles in
            m.Machine.cycles <- max m.Machine.cycles r.rcyc + Cost.share_copy;
            if sinkp then m.Machine.cycles <- m.Machine.cycles + Cost.sink_compare;
            (match prof with
             | Some p ->
               (* decompose the clock delta so engine categories plus
                  per-op cycles sum exactly to the slave's clock *)
               let stall = max before r.rcyc - before in
               if stall > 0 then
                 Profile.charge_engine p ~cat:Profile.eng_couple_stall
                   ~cycles:stall;
               Profile.charge_engine p ~cat:Profile.eng_share_copy
                 ~cycles:Cost.share_copy;
               if sinkp then
                 Profile.charge_engine p ~cat:Profile.eng_sink_compare
                   ~cycles:Cost.sink_compare
             | None -> ());
            note ~tid ~pos
              ~action:(if sinkp then T_sink_match else T_copied)
              ~sinkp ~master_ts:r.rcyc
              ~master:(Some (r.rsys, r.rargs)) ~slave:(Some (sys, sargs));
            r.rresult
          end
          else begin
            (* case 3: aligned, same PC, different parameters *)
            incr diffs;
            note ~tid ~pos ~action:T_args_differ ~sinkp ~master_ts:r.rcyc
              ~master:(Some (r.rsys, r.rargs)) ~slave:(Some (sys, sargs));
            if sinkp then
              report Args_differ ~sys ~site ~pos ~master_args:(Some r.rargs)
                ~slave_args:(Some sargs);
            taint (Os.resource_of_syscall os r.rsys r.rargs);
            private_exec ()
          end
        end
        else begin
          (* case 2: same counter, different PC — both run independently.
             ONE path-diff syscall pair = one difference (the accounting
             previously incremented twice here, inflating syscall_diffs
             and Table 2's diffs_before_first_report). *)
          incr cur;
          incr diffs;
          note ~tid ~pos ~action:T_path_diff ~sinkp ~master_ts:r.rcyc
            ~master:(Some (r.rsys, r.rargs)) ~slave:(Some (sys, sargs));
          taint (Os.resource_of_syscall os r.rsys r.rargs);
          if r.rsink || sinkp then
            report Different_syscall ~sys:(if sinkp then sys else r.rsys)
              ~site:(if sinkp then site else r.rsite) ~pos
              ~master_args:(Some r.rargs) ~slave_args:(Some sargs);
          private_exec ()
        end
      end
    in
    Value.of_sval (maybe_mutate ~sys ~site ~pos ~args:sargs ~resources res)
  in
  let on_stuck blocked =
    (* every blocked lock request whose gate refuses: taint the lock *)
    let tainted_any = ref false in
    List.iter
      (fun th ->
         match th.Machine.status with
         | Machine.Awaiting { Machine.sys = "lock"; sysargs = [ lockv ]; _ } ->
           (match Machine.lock_key lockv with
            | key ->
              if not (Hashtbl.mem tainted_locks key) then begin
                Hashtbl.replace tainted_locks key ();
                tainted_any := true
              end)
         | _ -> ())
      blocked;
    !tainted_any
  in
  run_side m ~on_os_syscall ~on_stuck;
  (* drain leftover master outcomes (syscalls the slave never reached) in
     ascending spawn_index order — [mo.mlog] is sorted — so leftover
     reports and trace entries are deterministic across runs *)
  Array.iter
    (fun (tid, recs) ->
       let cur = cursor_for tid in
       while !cur < Array.length recs do
         drop_master_only ~tid recs.(!cur);
         incr cur
       done)
    mo.mlog;
  emit_summary obs Obs.Event.Slave m;
  { sreports = List.rev !reports;
    sdiffs = !diffs;
    sdiffs_before_first = (if !diffs_before_first < 0 then !diffs else !diffs_before_first);
    smutated = !mutated;
    ssummary = summary_of m;
    strace = List.rev !trace;
    sos = os }

(* ------------------------------------------------------------------ *)
(* Final-state comparison (future-work extension: leaks through file    *)
(* contents or metadata that never cross a configured sink syscall).    *)

module Vfs = Ldx_osim.Vfs

let file_map (os : Os.t) : (string * (string * int)) list =
  Hashtbl.fold
    (fun p e acc ->
       match e with
       | Vfs.File { data; mtime } -> (p, (data, mtime)) :: acc
       | Vfs.Dir -> acc)
    os.Os.vfs.Vfs.entries []
  |> List.sort compare

let final_state_reports (mos : Os.t) (sos : Os.t) : sink_report list =
  let mf = file_map mos and sf = file_map sos in
  let report kind path m s =
    { kind; sys = "file"; site = -1; position = path;
      master_args = Option.map (fun v -> [ Sval.S v ]) m;
      slave_args = Option.map (fun v -> [ Sval.S v ]) s }
  in
  let rec walk mf sf acc =
    match (mf, sf) with
    | [], [] -> List.rev acc
    | (p, (d, _)) :: mrest, [] ->
      walk mrest [] (report File_state_differs p (Some d) None :: acc)
    | [], (p, (d, _)) :: srest ->
      walk [] srest (report File_state_differs p None (Some d) :: acc)
    | (pm, (dm, tm)) :: mrest, (ps, (ds, ts)) :: srest ->
      if String.compare pm ps < 0 then
        walk mrest sf (report File_state_differs pm (Some dm) None :: acc)
      else if String.compare pm ps > 0 then
        walk mf srest (report File_state_differs ps None (Some ds) :: acc)
      else if not (String.equal dm ds) then
        walk mrest srest
          (report File_state_differs pm (Some dm) (Some ds) :: acc)
      else if tm <> ts then
        walk mrest srest
          (report File_metadata_differs pm (Some (string_of_int tm))
             (Some (string_of_int ts))
           :: acc)
      else walk mrest srest acc
  in
  walk mf sf []

(* ------------------------------------------------------------------ *)
(* Top level.                                                          *)

(* Dual-execute against an already-recorded master.  [mo] is read-only
   here (the slave keeps private cursors over its frozen log), so the
   same recording can back any number of slave passes — the campaign
   layer's "1 master + K slaves" depends on this, and on [master_pass]
   never reading the slave-only config fields ([sources], [strategy],
   [slave_seed], [record_trace]). *)
let run_with_master ?obs ?prof (config : config) (prog : Ir.program)
    (world : World.t) (mo : master_out) : result =
  let so =
    with_phase obs Obs.Event.Slave_run (fun () ->
        slave_pass ?obs ?prof config prog world mo)
  in
  let state_reports =
    if config.check_final_state then
      with_phase obs Obs.Event.Final_state (fun () ->
          let rs = final_state_reports mo.mmachine.Machine.os so.sos in
          (match obs with
           | None -> ()
           | Some s ->
             List.iter
               (fun r ->
                  Obs.Sink.emit s
                    (Obs.Event.Divergence
                       { case = case_of_kind r.kind;
                         kind = kind_to_string r.kind; sys = r.sys;
                         site = r.site; pos = r.position }))
               rs);
          rs)
    else []
  in
  let mm = mo.mmachine in
  let slave_only_sinks =
    List.length
      (List.filter (fun r -> r.kind = Missing_in_master) so.sreports)
  in
  { trace = so.strace;
    reports = so.sreports @ state_reports;
    leak = so.sreports <> [] || state_reports <> [];
    tainted_sinks = List.length so.sreports;
    (* sinks encountered by either execution (slave-only sinks included) *)
    total_sinks = mo.mtotal_sinks + slave_only_sinks;
    syscall_diffs = so.sdiffs;
    diffs_before_first_report = so.sdiffs_before_first;
    total_syscalls = mo.msummary.syscalls;
    mutated_inputs = so.smutated;
    master = mo.msummary;
    slave = so.ssummary;
    wall_cycles = max mo.msummary.cycles so.ssummary.cycles;
    dyn_cnt_avg = Machine.dyn_cnt_avg mm;
    dyn_cnt_max = mm.Machine.cnt_max;
    max_seg_depth = mm.Machine.max_seg_depth;
    master_schedule = mo.msched }

(* Dual profile: one per side, so master-vs-slave overhead is
   decomposable.  Cross-run aggregation works too — pass the same pair
   to several runs of the same program and the counters accumulate. *)
type profiles = { prof_master : Profile.t; prof_slave : Profile.t }

let fresh_profiles () =
  { prof_master = Profile.create (); prof_slave = Profile.create () }

let run ?(config = default_config) ?obs ?prof (prog : Ir.program)
    (world : World.t) : result =
  let pm = Option.map (fun p -> p.prof_master) prof in
  let ps = Option.map (fun p -> p.prof_slave) prof in
  let mo =
    with_phase obs Obs.Event.Master_run (fun () ->
        master_pass ?obs ?prof:pm config prog world)
  in
  run_with_master ?obs ?prof:ps config prog world mo

(* Parse, check, lower, instrument, dual-execute. *)
let run_source ?config ?instrument_config ?obs ?prof (src : string)
    (world : World.t) : result =
  let ast =
    with_phase obs Obs.Event.Parse (fun () -> Ldx_lang.Parser.parse_exn src)
  in
  let prog =
    with_phase obs Obs.Event.Lower (fun () ->
        Ldx_cfg.Lower.lower_program ast)
  in
  let prog, _ =
    with_phase obs Obs.Event.Instrument (fun () ->
        Ldx_instrument.Counter.instrument ?config:instrument_config prog)
  in
  run ?config ?obs ?prof prog world

(* Native (uninstrumented, single-execution) cycles for overhead
   computations (Fig. 6 baseline). *)
let native_cycles ?(seed = 0) ?(max_steps = 30_000_000) (src : string)
    (world : World.t) : int =
  let prog = Ldx_cfg.Lower.lower_source src in
  let o = Driver.run ~seed ~max_steps prog world in
  o.Driver.cycles
