(* The LDX dual-execution engine (Sec. 3-7).

   The master executes against the real (simulated) OS and publishes every
   syscall outcome tagged with its position (counter + loop iterations +
   counter stack, {!Align}).  The slave consumes outcomes by position:

   - outcome at the slave's exact position with the same PC and the same
     parameters: coupled — the slave copies the result (mutated if the
     syscall is a configured source) and skips external effects;
   - same position and PC but different parameters (paper case 3): a
     causality witness at sinks; the resource is tainted and the slave
     decouples for this operation;
   - same position, different PC (case 2): the paths diverged — both
     syscalls execute independently;
   - master outcome strictly behind the slave's position (case 1): the
     syscall disappeared in the slave; the slave's own syscall with no
     master counterpart likewise appeared only in the slave.

   Positions strictly increase along a thread, so a FIFO per thread pair
   is a complete alignment index.  The two executions are composed
   sequentially (master first) — virtual two-CPU timing is preserved by
   stamping each outcome with the master's cycle clock and fast-forwarding
   the slave's clock on copies, which is how Fig. 6's "concurrent on two
   CPUs" overhead is modelled.  See DESIGN.md for the argument that this
   is observation-equivalent to the paper's spin-loop coupling. *)

module Machine = Ldx_vm.Machine
module Profile = Ldx_vm.Profile
module Driver = Ldx_vm.Driver
module Value = Ldx_vm.Value
module Cost = Ldx_vm.Cost
module Os = Ldx_osim.Os
module Sval = Ldx_osim.Sval
module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir
module Obs = Ldx_obs
module Sched = Ldx_sched.Scheduler
module Schedule = Ldx_sched.Schedule

(* ------------------------------------------------------------------ *)
(* Configuration.                                                      *)

type source_spec = {
  src_sys : string option;      (* syscall name, e.g. "recv" *)
  src_site : int option;        (* static site id *)
  src_arg : string option;      (* substring of arg0 / touched resource *)
  src_nth : int option;         (* only the nth dynamic match (1-based) *)
}

let source ?sys ?site ?arg ?nth () =
  { src_sys = sys; src_site = site; src_arg = arg; src_nth = nth }

type sink_config =
  | Output_syscalls             (* write/send/print/malloc/retaddr *)
  | Network_outputs             (* send only *)
  | File_outputs                (* write/print *)
  | Attack_sinks                (* retaddr + malloc sizes *)
  | Custom_sinks of (string -> int -> Sval.t list -> bool)

type config = {
  sources : source_spec list;
  sinks : sink_config;
  strategy : Mutation.strategy;
  master_seed : int;
  slave_seed : int;
  max_steps : int;
  record_trace : bool;        (* keep a per-syscall alignment action log *)
  check_final_state : bool;
  (* Extension of the paper's future work (Sec. 1): after the dual run,
     compare the two filesystems — contents AND mtimes — and report
     files that diverged.  Catches leaks routed through file state or
     metadata that never pass a configured sink syscall. *)
  faults : Ldx_osim.Fault.t option;
  (* Environment fault plan, shared by BOTH sides (like sinks and
     max_steps, a master-side field): the master's OS and the slave's
     each instantiate the same immutable plan with fresh occurrence
     counters.  Coupled slaves copy the master's faulted results; a
     decoupled slave replays the identical schedule from its own
     counters — DESIGN.md "Fault model" for the soundness argument. *)
  master_sched : Sched.spec option;
  (* Scheduler spec for the master pass; [None] = the legacy
     round-robin seeded with [master_seed].  Like [faults], a spec is
     immutable: each pass instantiates its own mutable state. *)
  slave_sched : Sched.spec option;
  (* Scheduler spec for slave passes; [None] = legacy from
     [slave_seed].  A slave-side field (campaign tasks may override
     it per task). *)
  record_sched : bool;
  (* Record both sides' scheduling decision logs; the master's is
     exposed as [master_out.msched] / [result.master_schedule] (the
     input of --sched-replay and the exploration enumerator). *)
}

let default_config =
  { sources = [ source ~sys:"recv" () ];
    sinks = Output_syscalls;
    strategy = Mutation.Off_by_one;
    master_seed = 0;
    slave_seed = 0;
    max_steps = 30_000_000;
    record_trace = false;
    check_final_state = false;
    faults = None;
    master_sched = None;
    slave_sched = None;
    record_sched = false }

(* The scheduler state of one side: the configured spec, or the legacy
   round-robin seeded like the historical hard-wired scheduler. *)
let sched_state_of ~(record : bool) (spec : Sched.spec option) ~(seed : int) :
  Sched.state =
  Sched.instantiate ~record
    (match spec with Some s -> s | None -> Sched.legacy ~seed)

let sink_pred = function
  | Output_syscalls ->
    fun sys _ _ -> List.mem sys [ "write"; "send"; "print"; "malloc"; "retaddr" ]
  | Network_outputs -> fun sys _ _ -> String.equal sys "send"
  | File_outputs -> fun sys _ _ -> sys = "write" || sys = "print"
  | Attack_sinks -> fun sys _ _ -> sys = "retaddr" || sys = "malloc"
  | Custom_sinks f -> f

let contains hay needle =
  (* allocation-free char-compare scan: this runs per source spec at
     every syscall, where a String.sub per offset was pure garbage *)
  let hn = String.length hay and nn = String.length needle in
  nn = 0
  || (let rec matches_at i j =
        j >= nn || (hay.[i + j] = needle.[j] && matches_at i (j + 1))
      in
      let rec scan i =
        i <= hn - nn && (matches_at i 0 || scan (i + 1))
      in
      scan 0)

(* Stateless base match of one spec against a dynamic syscall event —
   everything except the [src_nth] occurrence filter.  Shared by
   {!source_matcher} and the decouple-point pause predicate
   ({!slave_prefix}), which must fire on the FIRST base match of ANY
   spec precisely so that no occurrence counter has advanced when the
   snapshot is taken — a fresh matcher on resume is then exact. *)
let spec_base_match (spec : source_spec) ~(sys : string) ~(site : int)
    ~(args : Sval.t list) ~(resources : string list) : bool =
  (match spec.src_sys with None -> true | Some s -> String.equal s sys)
  && (match spec.src_site with None -> true | Some s -> s = site)
  && (match spec.src_arg with
      | None -> true
      | Some sub ->
        List.exists (fun r -> contains r sub) resources
        || (match args with
            | Sval.S a :: _ -> contains a sub
            | _ -> false))

(* Stateful source predicate over one execution's dynamic syscall stream.
   The [src_nth] occurrence counters are keyed by each spec's INDEX in
   [config.sources]: every configured spec counts its own matches, even
   when two specs are structurally equal (keying by [Hashtbl.hash spec]
   made equal specs share one counter and let distinct specs collide). *)
let source_matcher (config : config) =
  let specs =
    Array.of_list config.sources in
  let source_hits = Array.make (Array.length specs) 0 in
  fun ~sys ~site ~(args : Sval.t list) ~(resources : string list) ->
    (* evaluate EVERY spec (no short-circuit): the per-spec occurrence
       counters must advance on each matching event even when an earlier
       spec already fired *)
    let hit = ref false in
    Array.iteri
      (fun i (spec : source_spec) ->
         let base = spec_base_match spec ~sys ~site ~args ~resources in
         let this =
           if not base then false
           else
             match spec.src_nth with
             | None -> true
             | Some n ->
               let c = source_hits.(i) + 1 in
               source_hits.(i) <- c;
               c = n
         in
         if this then hit := true)
      specs;
    !hit

(* ------------------------------------------------------------------ *)
(* Reports.                                                            *)

type divergence_kind =
  | Args_differ                 (* aligned sink, different parameters *)
  | Different_syscall           (* aligned counter, different PC *)
  | Missing_in_slave            (* master-only sink *)
  | Missing_in_master           (* slave-only sink *)
  | File_state_differs          (* final-state check: contents diverged *)
  | File_metadata_differs       (* final-state check: same data, mtimes off *)

let kind_to_string = function
  | Args_differ -> "args-differ"
  | Different_syscall -> "different-syscall"
  | Missing_in_slave -> "missing-in-slave"
  | Missing_in_master -> "missing-in-master"
  | File_state_differs -> "file-state-differs"
  | File_metadata_differs -> "file-metadata-differs"

type sink_report = {
  kind : divergence_kind;
  sys : string;
  site : int;
  position : string;
  master_args : Sval.t list option;
  slave_args : Sval.t list option;
}

let report_to_string (r : sink_report) =
  Printf.sprintf "[%s] %s@%d pos=%s%s%s" (kind_to_string r.kind) r.sys r.site
    r.position
    (match r.master_args with
     | Some a -> " master=(" ^ Sval.list_to_string a ^ ")"
     | None -> "")
    (match r.slave_args with
     | Some a -> " slave=(" ^ Sval.list_to_string a ^ ")"
     | None -> "")

type exec_summary = {
  cycles : int;
  steps : int;
  syscalls : int;
  stdout : string;
  trap : string option;
  exit_code : int option;
  faults_injected : int;        (* environment faults fired in this side *)
}

(* Structured failure taxonomy over [trap].  The string classification
   lives in [Obs.Event.trap_class] (the single source of truth shared
   with the metrics counters); this wraps it into a variant for
   pattern-matching consumers. *)
type failure_class = Healthy | Fuel | Deadlock | Os_failure | Vm_trap

let classify_trap (trap : string option) : failure_class =
  match Obs.Event.trap_class trap with
  | "ok" -> Healthy
  | "fuel" -> Fuel
  | "deadlock" -> Deadlock
  | "os-error" -> Os_failure
  | _ -> Vm_trap

let failure_class_to_string = function
  | Healthy -> "ok"
  | Fuel -> "fuel"
  | Deadlock -> "deadlock"
  | Os_failure -> "os-error"
  | Vm_trap -> "vm-trap"

(* One alignment decision of the slave-side syscall wrapper, in slave
   order (master-only drops appear where the slave passed them).  Only
   recorded when [config.record_trace] is set. *)
type trace_action =
  | T_copied                       (* aligned; outcome shared *)
  | T_sink_match                   (* aligned sink, equal parameters *)
  | T_args_differ                  (* case 3 *)
  | T_path_diff                    (* case 2: same counter, other PC *)
  | T_slave_only                   (* no master counterpart *)
  | T_master_only                  (* master outcome the slave passed *)
  | T_decoupled                    (* tainted resource; executed privately *)

let trace_action_to_string = function
  | T_copied -> "copied"
  | T_sink_match -> "sink=="
  | T_args_differ -> "args-differ"
  | T_path_diff -> "path-diff"
  | T_slave_only -> "slave-only"
  | T_master_only -> "master-only"
  | T_decoupled -> "decoupled"

type trace_entry = {
  t_pos : string;
  t_action : trace_action;
  t_master : (string * Sval.t list) option;   (* sys, args *)
  t_slave : (string * Sval.t list) option;
}

(* ------------------------------------------------------------------ *)
(* Observability (Ldx_obs).  Everything below is guarded on the ?obs
   sink being present: with obs off the engine pays one pointer
   comparison per emission point and builds no payloads.               *)

(* The paper's divergence-case number of a report kind: 1 = syscall
   missing in one execution, 2 = same counter different PC, 3 = aligned
   sink with different parameters; 0 for the final-state extension. *)
let case_of_kind = function
  | Missing_in_slave | Missing_in_master -> 1
  | Different_syscall -> 2
  | Args_differ -> 3
  | File_state_differs | File_metadata_differs -> 0

let decision_of_action = function
  | T_copied -> Obs.Event.D_copied
  | T_sink_match -> Obs.Event.D_sink_match
  | T_args_differ -> Obs.Event.D_args_differ
  | T_path_diff -> Obs.Event.D_path_diff
  | T_slave_only -> Obs.Event.D_slave_only
  | T_master_only -> Obs.Event.D_master_only
  | T_decoupled -> Obs.Event.D_decoupled

(* Install the VM step hooks and the OS dispatch hook of one side. *)
let install_obs (s : Obs.Sink.t) (side : Obs.Event.side) (m : Machine.t)
    (os : Os.t) : unit =
  let emit = Obs.Sink.emit s in
  m.Machine.on_obs_syscall <-
    Some
      (fun t th (p : Machine.pending) ->
         emit
           (Obs.Event.Syscall
              { side; tid = th.Machine.spawn_index; sys = p.Machine.sys;
                site = p.Machine.site;
                pos = Align.to_string (Align.of_thread th);
                ts = t.Machine.cycles; dur = Cost.syscall }));
  m.Machine.on_obs_barrier <-
    Some
      (fun t th (b : Machine.barrier) ->
         emit
           (Obs.Event.Barrier_wait
              { side; tid = th.Machine.spawn_index; loop = b.Machine.loop;
                ts = t.Machine.cycles; dur = Cost.barrier }));
  m.Machine.on_obs_cnt_sample <-
    Some (fun _ _ c -> emit (Obs.Event.Cnt_sample { side; value = c }));
  os.Os.on_exec <-
    Some
      (fun o sys _args _r ->
         emit
           (Obs.Event.Os_call
              { side; pid = o.Os.pid; sys; clock = o.Os.clock }));
  os.Os.on_fault <-
    Some
      (fun _ sys site a ->
         emit
           (Obs.Event.Fault_injected
              { side; sys; site;
                action = Ldx_osim.Fault.action_to_string a }));
  m.Machine.on_obs_sched <-
    Some
      (fun t (d : Sched.decision) ->
         emit
           (Obs.Event.Schedule_decision
              { side; index = d.Sched.d_index; chosen = d.Sched.d_chosen;
                runnable = d.Sched.d_nrunnable;
                quantum = d.Sched.d_quantum; ts = t.Machine.cycles });
         if d.Sched.d_preempted then
           emit
             (Obs.Event.Preemption
                { side; index = d.Sched.d_index; chosen = d.Sched.d_chosen;
                  ts = t.Machine.cycles }))

let emit_summary obs (side : Obs.Event.side) (m : Machine.t) : unit =
  match obs with
  | None -> ()
  | Some s ->
    Obs.Sink.emit s
      (Obs.Event.Run_summary
         { side; cycles = m.Machine.cycles; steps = m.Machine.steps;
           syscalls = m.Machine.syscalls;
           cnt_instrs = m.Machine.instr_events; trap = m.Machine.trap })

let phase_begin obs p = Obs.Sink.emit_opt obs (Obs.Event.Phase_begin p)
let phase_end obs p = Obs.Sink.emit_opt obs (Obs.Event.Phase_end p)

(* [with_phase obs p f] brackets [f] with begin/end events, ending the
   phase even when [f] raises. *)
let with_phase obs p f =
  phase_begin obs p;
  match f () with
  | v ->
    phase_end obs p;
    v
  | exception e ->
    phase_end obs p;
    raise e

type result = {
  trace : trace_entry list;        (* empty unless config.record_trace *)
  reports : sink_report list;
  leak : bool;
  tainted_sinks : int;
  total_sinks : int;            (* dynamic sink executions in the master *)
  syscall_diffs : int;
  diffs_before_first_report : int;
  total_syscalls : int;         (* dynamic syscalls in the master *)
  mutated_inputs : int;
  master : exec_summary;
  slave : exec_summary;
  wall_cycles : int;            (* max of the two clocks (two CPUs) *)
  dyn_cnt_avg : float;
  dyn_cnt_max : int;
  max_seg_depth : int;
  master_schedule : Ldx_sched.Schedule.t option;
                                (* recorded when config.record_sched *)
}

(* ------------------------------------------------------------------ *)
(* Master pass.                                                        *)

type record = {
  rpos : Align.t;
  rsite : int;
  rsys : string;
  rargs : Sval.t list;
  rresult : Sval.t;
  rcyc : int;                   (* master clock when the outcome was ready *)
  rsink : bool;
}

(* The master's outcome log is frozen after the pass: per-thread record
   arrays sorted by spawn index.  Consumers (slave passes, baselines)
   keep their own integer cursors, so one recorded master can be
   replayed by any number of slaves — sequentially or from concurrent
   domains ({!Campaign}). *)
type master_out = {
  mlog : (int * record array) array;           (* per spawn_index, ascending *)
  mlock_trace : (string * int) list;           (* chronological *)
  msummary : exec_summary;
  mtotal_sinks : int;
  mmachine : Machine.t;
  msched : Schedule.t option;                  (* when config.record_sched *)
}

let records_for (mo : master_out) (tid : int) : record array =
  let n = Array.length mo.mlog in
  let rec go i =
    if i >= n then [||]
    else
      let t, a = mo.mlog.(i) in
      if t = tid then a else go (i + 1)
  in
  go 0

let summary_of (m : Machine.t) =
  { cycles = m.Machine.cycles;
    steps = m.Machine.steps;
    syscalls = m.Machine.syscalls;
    stdout = Os.stdout_contents m.Machine.os;
    trap = m.Machine.trap;
    exit_code = m.Machine.os.Os.exit_code;
    faults_injected = Os.faults_injected m.Machine.os }

let queue_for queues idx =
  match Hashtbl.find_opt queues idx with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace queues idx q;
    q

(* Run one execution, retrying thread ops that block.  [on_os_syscall]
   services non-thread syscalls and returns the value the execution
   observes.

   [run_side_gen] is the resumable generalization behind decouple-point
   snapshots: [blocked] is externalized (so a paused side's blocked set
   can be captured and rebuilt), [?pause] is consulted for every
   non-thread-op syscall BEFORE it is serviced (returning [`Paused th]
   with the thread still [Awaiting] — the machine state at that moment
   is exactly the pre-service state a snapshot must capture), and
   [?first] services one already-pending thread before re-entering the
   event loop — the resume hook, replaying the service step the pause
   skipped.  With neither option this is bit-identical to the
   historical [run_side]. *)
let run_side_gen (m : Machine.t) ~(blocked : Machine.thread list ref)
    ?(pause : (Machine.thread -> Machine.pending -> bool) option)
    ?(first : Machine.thread option)
    ~(on_os_syscall : Machine.thread -> Machine.pending -> Value.t)
    ~(on_stuck : Machine.thread list -> bool) () :
  [ `Done | `Paused of Machine.thread ] =
  let paused = ref None in
  let service th =
    let p = Machine.pending_of th in
    if Driver.is_thread_op p.Machine.sys then begin
      match Driver.service_thread_op m th p with
      | `Done v -> Machine.provide_result m th v
      | `Block -> blocked := th :: !blocked
    end
    else if (match pause with Some f -> f th p | None -> false) then
      paused := Some th
    else begin
      let v = on_os_syscall th p in
      Machine.provide_result m th v
    end
  in
  let retry_blocked () =
    let bs = !blocked in
    blocked := [];
    let progress = ref false in
    List.iter
      (fun th ->
         match th.Machine.status with
         | Machine.Awaiting p ->
           (match Driver.service_thread_op m th p with
            | `Done v ->
              progress := true;
              Machine.provide_result m th v
            | `Block -> blocked := th :: !blocked)
         | _ -> ())
      bs;
    !progress
  in
  (* service one thread, then the blocked retries — the common step of
     the event loop and the [?first] resume entry *)
  let step th =
    (try service th with Value.Trap msg ->
       m.Machine.trap <- Some msg;
       m.Machine.finished <- true);
    if !paused = None then ignore (retry_blocked ())
  in
  let rec loop () =
    match Machine.run_until_event m with
    | Machine.Ev_syscall th ->
      step th;
      if !paused = None && not m.Machine.finished then loop ()
    | Machine.Ev_barrier th ->
      Machine.release_barrier m th;
      loop ()
    | Machine.Ev_idle ->
      if retry_blocked () then loop ()
      else if on_stuck !blocked then begin
        if retry_blocked () then loop ()
        else begin
          m.Machine.trap <- Some "deadlock: all threads blocked";
          m.Machine.finished <- true
        end
      end
      else begin
        m.Machine.trap <- Some "deadlock: all threads blocked";
        m.Machine.finished <- true
      end
    | Machine.Ev_done -> ()
    | Machine.Ev_trap _ -> ()
  in
  (match first with
   | Some th ->
     step th;
     if !paused = None && not m.Machine.finished then loop ()
   | None -> loop ());
  match !paused with Some th -> `Paused th | None -> `Done

let run_side (m : Machine.t)
    ~(on_os_syscall : Machine.thread -> Machine.pending -> Value.t)
    ~(on_stuck : Machine.thread list -> bool) : unit =
  let blocked = ref [] in
  match run_side_gen m ~blocked ~on_os_syscall ~on_stuck () with
  | `Done -> ()
  | `Paused _ -> assert false (* no pause predicate installed *)

let master_pass ?obs ?prof (config : config) (prog : Ir.program)
    (world : World.t) : master_out =
  let os = Os.create ~pid:1000 world in
  Os.set_faults os config.faults;
  let sched =
    sched_state_of ~record:config.record_sched config.master_sched
      ~seed:config.master_seed
  in
  let m =
    Machine.create ~seed:config.master_seed ~sched ~max_steps:config.max_steps
      ?prof prog os
  in
  (match obs with
   | Some s -> install_obs s Obs.Event.Master m os
   | None -> ());
  let is_sink = sink_pred config.sinks in
  let queues = Hashtbl.create 4 in
  let total_sinks = ref 0 in
  let on_os_syscall th (p : Machine.pending) =
    let sargs = List.map Value.to_sval p.Machine.sysargs in
    let r =
      try Os.exec ~site:p.Machine.site os p.Machine.sys sargs
      with Os.Os_error msg -> raise (Value.Trap ("os-error: " ^ msg))
    in
    let sink = is_sink p.Machine.sys p.Machine.site sargs in
    if sink then incr total_sinks;
    Queue.add
      { rpos = Align.of_thread th;
        rsite = p.Machine.site;
        rsys = p.Machine.sys;
        rargs = sargs;
        rresult = r;
        rcyc = m.Machine.cycles;
        rsink = sink }
      (queue_for queues th.Machine.spawn_index);
    Value.of_sval r
  in
  run_side m ~on_os_syscall ~on_stuck:(fun _ -> false);
  emit_summary obs Obs.Event.Master m;
  (* freeze the per-thread queues into an immutable, sorted log *)
  let mlog =
    Hashtbl.fold
      (fun tid q acc -> (tid, Array.of_seq (Queue.to_seq q)) :: acc)
      queues []
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
    |> Array.of_list
  in
  { mlog;
    mlock_trace = List.rev m.Machine.lock_trace;
    msummary = summary_of m;
    mtotal_sinks = !total_sinks;
    mmachine = m;
    msched =
      (if config.record_sched then Some (Sched.to_schedule sched) else None) }

(* ------------------------------------------------------------------ *)
(* Slave pass.                                                         *)

type slave_out = {
  sreports : sink_report list;
  sdiffs : int;
  sdiffs_before_first : int;
  smutated : int;
  ssummary : exec_summary;
  strace : trace_entry list;
  sos : Os.t;                  (* the slave's private OS (final state) *)
}

(* All mutable state of one slave pass, externalized so a pass can be
   paused at a decouple point, snapshotted, and resumed any number of
   times — each resume rebuilds a private context, so one recorded
   master plus one prefix snapshot back any number of suffix replays. *)
type slave_ctx = {
  sc_config : config;
  sc_obs : Obs.Sink.t option;
  sc_mo : master_out;
  sc_m : Machine.t;
  sc_os : Os.t;
  sc_grants : (string, int Queue.t) Hashtbl.t;
      (* master lock-grant order, consumed by the replay gate *)
  sc_tainted_locks : (string, unit) Hashtbl.t;
  sc_tainted_resources : (string, unit) Hashtbl.t;
  sc_cursors : (int, int ref) Hashtbl.t;
      (* per-thread read cursors over the master's frozen record arrays:
         the slave never mutates [sc_mo], so one recorded master replays
         under any number of (possibly concurrent) slave passes *)
  sc_is_sink : string -> int -> Sval.t list -> bool;
  sc_is_source :
    sys:string -> site:int -> args:Sval.t list -> resources:string list ->
    bool;
  mutable sc_reports : sink_report list;        (* reversed *)
  mutable sc_diffs : int;
  mutable sc_diffs_before_first : int;          (* -1 until first report *)
  mutable sc_mutated : int;
  mutable sc_trace : trace_entry list;          (* reversed *)
  sc_blocked : Machine.thread list ref;
}

(* --- schedule replay gate over the master's lock-grant order --- *)
let install_slave_gate (ctx : slave_ctx) : unit =
  ctx.sc_m.Machine.lock_gate <-
    Some
      (fun key idx ->
         if Hashtbl.mem ctx.sc_tainted_locks key then true
         else
           match Hashtbl.find_opt ctx.sc_grants key with
           | None ->
             (* the master never touched this lock: a schedule difference;
                taint it and stop gating (Sec. 7) *)
             Hashtbl.replace ctx.sc_tainted_locks key ();
             true
           | Some q ->
             if Queue.is_empty q then begin
               Hashtbl.replace ctx.sc_tainted_locks key ();
               true
             end
             else if Queue.peek q = idx then begin
               ignore (Queue.pop q);
               true
             end
             else false)

let fresh_slave_ctx ?obs ?prof (config : config) (prog : Ir.program)
    (world : World.t) (mo : master_out) : slave_ctx =
  let os = Os.create ~pid:1001 world in
  (* the slave's OS instantiates the SAME immutable plan with fresh
     occurrence counters: replaying from scratch, its fault schedule
     tracks the master's while coupled, and stays deterministic after
     decoupling (DESIGN.md "Fault model") *)
  Os.set_faults os config.faults;
  let sched =
    sched_state_of ~record:config.record_sched config.slave_sched
      ~seed:config.slave_seed
  in
  let m =
    Machine.create ~seed:config.slave_seed ~sched ~max_steps:config.max_steps
      ?prof prog os
  in
  (match obs with
   | Some s -> install_obs s Obs.Event.Slave m os
   | None -> ());
  let grants : (string, int Queue.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (key, idx) -> Queue.add idx (queue_for grants key))
    mo.mlock_trace;
  let ctx =
    { sc_config = config;
      sc_obs = obs;
      sc_mo = mo;
      sc_m = m;
      sc_os = os;
      sc_grants = grants;
      sc_tainted_locks = Hashtbl.create 4;
      sc_tainted_resources = Hashtbl.create 8;
      sc_cursors = Hashtbl.create 4;
      sc_is_sink = sink_pred config.sinks;
      sc_is_source = source_matcher config;
      sc_reports = [];
      sc_diffs = 0;
      sc_diffs_before_first = -1;
      sc_mutated = 0;
      sc_trace = [];
      sc_blocked = ref [] }
  in
  install_slave_gate ctx;
  ctx
(* One alignment decision: feeds the (opt-in) trace log and the (opt-in)
   observability sink.  [master_ts] is the producing master cycle stamp,
   -1 when there is no master counterpart; the slave stamp is read off
   the slave clock at the call, so in the copy path this runs after the
   fast-forward. *)
let slave_note (ctx : slave_ctx) ~tid ~pos ~action ~sinkp ~master_ts ~master
    ~slave =
  if ctx.sc_config.record_trace then
    ctx.sc_trace <-
      { t_pos = Align.to_string pos; t_action = action;
        t_master = master; t_slave = slave }
      :: ctx.sc_trace;
  match ctx.sc_obs with
  | None -> ()
  | Some s ->
    Obs.Sink.emit s
      (Obs.Event.Couple
         { tid; pos = Align.to_string pos;
           decision = decision_of_action action; sink = sinkp;
           master_sys = Option.map fst master;
           slave_sys = Option.map fst slave;
           master_ts; slave_ts = ctx.sc_m.Machine.cycles })

let slave_report (ctx : slave_ctx) kind ~sys ~site ~pos ~master_args
    ~slave_args =
  if ctx.sc_diffs_before_first < 0 then
    ctx.sc_diffs_before_first <- ctx.sc_diffs;
  (match ctx.sc_obs with
   | None -> ()
   | Some s ->
     Obs.Sink.emit s
       (Obs.Event.Divergence
          { case = case_of_kind kind; kind = kind_to_string kind; sys;
            site; pos = Align.to_string pos }));
  ctx.sc_reports <-
    { kind; sys; site; position = Align.to_string pos;
      master_args; slave_args }
    :: ctx.sc_reports

let slave_taint (ctx : slave_ctx) rs =
  List.iter (fun r -> Hashtbl.replace ctx.sc_tainted_resources r ()) rs

let drop_master_only (ctx : slave_ctx) ~tid (r : record) =
  ctx.sc_diffs <- ctx.sc_diffs + 1;
  slave_taint ctx (Os.resource_of_syscall ctx.sc_os r.rsys r.rargs);
  slave_note ctx ~tid ~pos:r.rpos ~action:T_master_only ~sinkp:r.rsink
    ~master_ts:r.rcyc ~master:(Some (r.rsys, r.rargs)) ~slave:None;
  if r.rsink then
    slave_report ctx Missing_in_slave ~sys:r.rsys ~site:r.rsite ~pos:r.rpos
      ~master_args:(Some r.rargs) ~slave_args:None

(* --- source mutation --- *)
let maybe_mutate (ctx : slave_ctx) ~sys ~site ~pos ~args ~resources
    (v : Sval.t) : Sval.t =
  if ctx.sc_is_source ~sys ~site ~args ~resources then begin
    let v' = Mutation.mutate ctx.sc_config.strategy v in
    if not (Sval.equal v' v) then begin
      ctx.sc_mutated <- ctx.sc_mutated + 1;
      match ctx.sc_obs with
      | None -> ()
      | Some s ->
        Obs.Sink.emit s
          (Obs.Event.Mutation
             { sys; site; pos = Align.to_string pos;
               before = Sval.to_string v; after = Sval.to_string v' })
    end;
    v'
  end
  else v

let cursor_for (ctx : slave_ctx) tid =
  match Hashtbl.find_opt ctx.sc_cursors tid with
  | Some c -> c
  | None ->
    let c = ref 0 in
    Hashtbl.replace ctx.sc_cursors tid c;
    c

(* --- the slave syscall wrapper --- *)
let slave_on_os_syscall (ctx : slave_ctx) th (p : Machine.pending) : Value.t =
  let os = ctx.sc_os and m = ctx.sc_m in
  let sys = p.Machine.sys and site = p.Machine.site in
  let sargs = List.map Value.to_sval p.Machine.sysargs in
  let pos = Align.of_thread th in
  let resources = Os.resource_of_syscall os sys sargs in
  let sinkp = ctx.sc_is_sink sys site sargs in
  let tid = th.Machine.spawn_index in
  let recs = records_for ctx.sc_mo tid in
  let cur = cursor_for ctx tid in
  (* skip past outcomes the slave has passed: master-only syscalls *)
  while !cur < Array.length recs && Align.compare recs.(!cur).rpos pos < 0 do
    drop_master_only ctx ~tid recs.(!cur);
    incr cur
  done;
  let private_exec () =
    slave_taint ctx resources;
    try Os.exec ~site os sys sargs with Os.Os_error _ -> Sval.I (-1)
  in
  let slave_only () =
    ctx.sc_diffs <- ctx.sc_diffs + 1;
    slave_note ctx ~tid ~pos ~action:T_slave_only ~sinkp ~master_ts:(-1)
      ~master:None ~slave:(Some (sys, sargs));
    if sinkp then
      slave_report ctx Missing_in_master ~sys ~site ~pos ~master_args:None
        ~slave_args:(Some sargs);
    private_exec ()
  in
  let res =
    if !cur >= Array.length recs then slave_only ()
    else begin
      let r = recs.(!cur) in
      let c = Align.compare r.rpos pos in
      if c > 0 then slave_only ()
      else if r.rsite = site then begin
        incr cur;
        let res_tainted =
          List.exists (Hashtbl.mem ctx.sc_tainted_resources) resources
        in
        if res_tainted then begin
          (* control-flow aligned but on a diverged resource: decoupled *)
          ctx.sc_diffs <- ctx.sc_diffs + 1;
          slave_note ctx ~tid ~pos ~action:T_decoupled ~sinkp ~master_ts:r.rcyc
            ~master:(Some (r.rsys, r.rargs)) ~slave:(Some (sys, sargs));
          if sinkp && not (Sval.list_equal r.rargs sargs) then
            slave_report ctx Args_differ ~sys ~site ~pos
              ~master_args:(Some r.rargs) ~slave_args:(Some sargs);
          private_exec ()
        end
        else if Sval.list_equal r.rargs sargs then begin
          (* fully aligned: copy the master's outcome.  The private
             execution (discarded) still consults the fault plan, so
             the slave's occurrence counters advance in lockstep with
             the master's while coupled — which is what makes a later
             decoupling replay the remaining schedule identically. *)
          (try ignore (Os.exec ~site os sys sargs) with Os.Os_error _ -> ());
          let before = m.Machine.cycles in
          m.Machine.cycles <- max m.Machine.cycles r.rcyc + Cost.share_copy;
          if sinkp then m.Machine.cycles <- m.Machine.cycles + Cost.sink_compare;
          (match m.Machine.prof with
           | Some p ->
             (* decompose the clock delta so engine categories plus
                per-op cycles sum exactly to the slave's clock *)
             let stall = max before r.rcyc - before in
             if stall > 0 then
               Profile.charge_engine p ~cat:Profile.eng_couple_stall
                 ~cycles:stall;
             Profile.charge_engine p ~cat:Profile.eng_share_copy
               ~cycles:Cost.share_copy;
             if sinkp then
               Profile.charge_engine p ~cat:Profile.eng_sink_compare
                 ~cycles:Cost.sink_compare
           | None -> ());
          slave_note ctx ~tid ~pos
            ~action:(if sinkp then T_sink_match else T_copied)
            ~sinkp ~master_ts:r.rcyc
            ~master:(Some (r.rsys, r.rargs)) ~slave:(Some (sys, sargs));
          r.rresult
        end
        else begin
          (* case 3: aligned, same PC, different parameters *)
          ctx.sc_diffs <- ctx.sc_diffs + 1;
          slave_note ctx ~tid ~pos ~action:T_args_differ ~sinkp
            ~master_ts:r.rcyc ~master:(Some (r.rsys, r.rargs))
            ~slave:(Some (sys, sargs));
          if sinkp then
            slave_report ctx Args_differ ~sys ~site ~pos
              ~master_args:(Some r.rargs) ~slave_args:(Some sargs);
          slave_taint ctx (Os.resource_of_syscall os r.rsys r.rargs);
          private_exec ()
        end
      end
      else begin
        (* case 2: same counter, different PC — both run independently.
           ONE path-diff syscall pair = one difference (the accounting
           previously incremented twice here, inflating syscall_diffs
           and Table 2's diffs_before_first_report). *)
        incr cur;
        ctx.sc_diffs <- ctx.sc_diffs + 1;
        slave_note ctx ~tid ~pos ~action:T_path_diff ~sinkp ~master_ts:r.rcyc
          ~master:(Some (r.rsys, r.rargs)) ~slave:(Some (sys, sargs));
        slave_taint ctx (Os.resource_of_syscall os r.rsys r.rargs);
        if r.rsink || sinkp then
          slave_report ctx Different_syscall
            ~sys:(if sinkp then sys else r.rsys)
            ~site:(if sinkp then site else r.rsite) ~pos
            ~master_args:(Some r.rargs) ~slave_args:(Some sargs);
        private_exec ()
      end
    end
  in
  Value.of_sval (maybe_mutate ctx ~sys ~site ~pos ~args:sargs ~resources res)

let slave_on_stuck (ctx : slave_ctx) blocked =
  (* every blocked lock request whose gate refuses: taint the lock *)
  let tainted_any = ref false in
  List.iter
    (fun th ->
       match th.Machine.status with
       | Machine.Awaiting { Machine.sys = "lock"; sysargs = [ lockv ]; _ } ->
         (match Machine.lock_key lockv with
          | key ->
            if not (Hashtbl.mem ctx.sc_tainted_locks key) then begin
              Hashtbl.replace ctx.sc_tainted_locks key ();
              tainted_any := true
            end)
       | _ -> ())
    blocked;
  !tainted_any

(* Drain leftover master outcomes (syscalls the slave never reached) in
   ascending spawn_index order — [mlog] is sorted — so leftover reports
   and trace entries are deterministic across runs; then freeze the
   accumulated bookkeeping into a [slave_out]. *)
let slave_finalize (ctx : slave_ctx) : slave_out =
  Array.iter
    (fun (tid, recs) ->
       let cur = cursor_for ctx tid in
       while !cur < Array.length recs do
         drop_master_only ctx ~tid recs.(!cur);
         incr cur
       done)
    ctx.sc_mo.mlog;
  emit_summary ctx.sc_obs Obs.Event.Slave ctx.sc_m;
  { sreports = List.rev ctx.sc_reports;
    sdiffs = ctx.sc_diffs;
    sdiffs_before_first =
      (if ctx.sc_diffs_before_first < 0 then ctx.sc_diffs
       else ctx.sc_diffs_before_first);
    smutated = ctx.sc_mutated;
    ssummary = summary_of ctx.sc_m;
    strace = List.rev ctx.sc_trace;
    sos = ctx.sc_os }

let slave_pass ?obs ?prof (config : config) (prog : Ir.program)
    (world : World.t) (mo : master_out) : slave_out =
  let ctx = fresh_slave_ctx ?obs ?prof config prog world mo in
  (match
     run_side_gen ctx.sc_m ~blocked:ctx.sc_blocked
       ~on_os_syscall:(slave_on_os_syscall ctx)
       ~on_stuck:(slave_on_stuck ctx) ()
   with
   | `Done -> ()
   | `Paused _ -> assert false);
  slave_finalize ctx

(* ------------------------------------------------------------------ *)
(* Decouple-point snapshots: run the shared slave prefix once, pause at
   the first syscall ANY fan-out task's source spec base-matches —
   BEFORE that syscall is serviced or mutated — capture the complete
   slave state, then replay per-task suffixes from the capture.  The
   pause fires before any [src_nth] occurrence counter has advanced, so
   each resume's fresh [source_matcher] sees exactly the dynamic stream
   a from-scratch run would: suffix replays are bit-identical to full
   slave passes. *)

module Snap = Ldx_snap.Snap

type slave_snapshot = {
  ss_snap : Snap.t;                (* machine + OS + profile counters *)
  ss_grants : (string * int list) list;
      (* remaining (unconsumed) master lock grants, key-sorted *)
  ss_tainted_locks : string list;            (* sorted *)
  ss_tainted_resources : string list;        (* sorted *)
  ss_cursors : (int * int) list;     (* spawn index -> master-log cursor *)
  ss_reports : sink_report list;     (* reversed, as accumulated *)
  ss_diffs : int;
  ss_diffs_before_first : int;       (* raw accumulator: -1 if none yet *)
  ss_mutated : int;
  ss_trace : trace_entry list;       (* reversed *)
  ss_blocked : int list;   (* blocked threads' spawn indices, list order *)
  ss_paused : int;         (* spawn index of the thread paused at the point *)
  ss_fingerprint : string; (* pins (program, world, shared slave config) *)
}

(* What a snapshot is valid against: the program, the initial world, and
   every config field the shared prefix depends on.  Per-task fields
   ([sources], [strategy], [check_final_state]) are deliberately NOT
   pinned — varying them per suffix is the point.  [sinks] IS
   prefix-relevant (sink matches cost [Cost.sink_compare] on copies), so
   its constructor is pinned; [Custom_sinks] closures cannot be hashed
   and all map to one tag — callers vary custom sinks per task at their
   own risk. *)
let slave_fingerprint (config : config) (prog : Ir.program)
    (world : World.t) : string =
  Ldx_store.Store.fingerprint
    [ "ldx-slave-snap/1";
      Marshal.to_string prog [];
      Marshal.to_string world [];
      Marshal.to_string config.faults [];
      (match config.sinks with
       | Output_syscalls -> "output"
       | Network_outputs -> "net"
       | File_outputs -> "file"
       | Attack_sinks -> "attack"
       | Custom_sinks _ -> "custom");
      string_of_int config.slave_seed;
      string_of_int config.max_steps;
      string_of_bool config.record_trace;
      string_of_bool config.record_sched;
      (match config.slave_sched with
       | None -> "-"
       | Some s -> Sched.spec_to_string s) ]

let snapshot_of_ctx (ctx : slave_ctx) (prog : Ir.program) (world : World.t)
    (paused : Machine.thread) : slave_snapshot =
  let sorted_keys tbl =
    Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
  in
  { ss_snap = Snap.capture ctx.sc_m;
    ss_grants =
      Hashtbl.fold
        (fun k q acc -> (k, List.of_seq (Queue.to_seq q)) :: acc)
        ctx.sc_grants []
      |> List.sort compare;
    ss_tainted_locks = sorted_keys ctx.sc_tainted_locks;
    ss_tainted_resources = sorted_keys ctx.sc_tainted_resources;
    ss_cursors =
      Hashtbl.fold (fun tid c acc -> (tid, !c) :: acc) ctx.sc_cursors []
      |> List.sort compare;
    ss_reports = ctx.sc_reports;
    ss_diffs = ctx.sc_diffs;
    ss_diffs_before_first = ctx.sc_diffs_before_first;
    ss_mutated = ctx.sc_mutated;
    ss_trace = ctx.sc_trace;
    ss_blocked =
      List.map (fun th -> th.Machine.spawn_index) !(ctx.sc_blocked);
    ss_paused = paused.Machine.spawn_index;
    ss_fingerprint = slave_fingerprint ctx.sc_config prog world }

type prefix_out =
  | Prefix_paused of slave_snapshot
      (** the decouple point was reached; resume per task *)
  | Prefix_done of slave_out
      (** no syscall base-matched any spec: the whole run is shared *)

(* Run the shared slave prefix under [config] (whose own sources must be
   a subset of [specs]) and pause at the first base match of any spec in
   [specs] — the union of every fan-out task's sources. *)
let slave_prefix ?obs ?prof (config : config)
    ~(specs : source_spec list) (prog : Ir.program) (world : World.t)
    (mo : master_out) : prefix_out =
  let ctx = fresh_slave_ctx ?obs ?prof config prog world mo in
  let pause _th (p : Machine.pending) =
    let sargs = List.map Value.to_sval p.Machine.sysargs in
    let resources =
      Os.resource_of_syscall ctx.sc_os p.Machine.sys sargs
    in
    List.exists
      (fun spec ->
         spec_base_match spec ~sys:p.Machine.sys ~site:p.Machine.site
           ~args:sargs ~resources)
      specs
  in
  match
    run_side_gen ctx.sc_m ~blocked:ctx.sc_blocked ~pause
      ~on_os_syscall:(slave_on_os_syscall ctx)
      ~on_stuck:(slave_on_stuck ctx) ()
  with
  | `Done -> Prefix_done (slave_finalize ctx)
  | `Paused th ->
    let m = ctx.sc_m in
    (match ctx.sc_obs with
     | None -> ()
     | Some s ->
       Obs.Sink.emit s
         (Obs.Event.Snapshot_captured
            { prefix_cycles = m.Machine.cycles;
              prefix_steps = m.Machine.steps;
              prefix_syscalls = m.Machine.syscalls }));
    Prefix_paused (snapshot_of_ctx ctx prog world th)

let ctx_of_snapshot ?obs ?sched (config : config) (prog : Ir.program)
    (world : World.t) (mo : master_out) (ss : slave_snapshot) :
  slave_ctx * Machine.thread =
  if not
      (String.equal ss.ss_fingerprint (slave_fingerprint config prog world))
  then
    invalid_arg
      "Engine.slave_resume: snapshot does not match this \
       program/world/config";
  let m =
    Snap.restore ?sched ~fprog:mo.mmachine.Machine.fprog prog ss.ss_snap
  in
  let os = m.Machine.os in
  (match obs with
   | Some s -> install_obs s Obs.Event.Slave m os
   | None -> ());
  let grants : (string, int Queue.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (key, idxs) ->
       let q = Queue.create () in
       List.iter (fun i -> Queue.add i q) idxs;
       Hashtbl.replace grants key q)
    ss.ss_grants;
  let tbl_of keys =
    let t = Hashtbl.create (max 4 (List.length keys)) in
    List.iter (fun k -> Hashtbl.replace t k ()) keys;
    t
  in
  let cursors : (int, int ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (tid, v) -> Hashtbl.replace cursors tid (ref v))
    ss.ss_cursors;
  let thread_of idx =
    match
      List.find_opt
        (fun th -> th.Machine.spawn_index = idx)
        m.Machine.threads
    with
    | Some th -> th
    | None -> invalid_arg "Engine.slave_resume: unknown thread in snapshot"
  in
  let ctx =
    { sc_config = config;
      sc_obs = obs;
      sc_mo = mo;
      sc_m = m;
      sc_os = os;
      sc_grants = grants;
      sc_tainted_locks = tbl_of ss.ss_tainted_locks;
      sc_tainted_resources = tbl_of ss.ss_tainted_resources;
      sc_cursors = cursors;
      sc_is_sink = sink_pred config.sinks;
      sc_is_source = source_matcher config;
      sc_reports = ss.ss_reports;
      sc_diffs = ss.ss_diffs;
      sc_diffs_before_first = ss.ss_diffs_before_first;
      sc_mutated = ss.ss_mutated;
      sc_trace = ss.ss_trace;
      sc_blocked = ref (List.map thread_of ss.ss_blocked) }
  in
  install_slave_gate ctx;
  (ctx, thread_of ss.ss_paused)

(* Resume one task's suffix from a prefix snapshot.  The snapshot is
   read-only here (restore copies everything), so any number of resumes
   — including concurrent ones from different domains — share one
   capture.  Raises [Invalid_argument] if the snapshot was taken against
   a different program, world, or shared slave config. *)
let slave_resume ?obs ?sched ?(label = "") (config : config)
    (prog : Ir.program) (world : World.t) (mo : master_out)
    (ss : slave_snapshot) : slave_out =
  let ctx, paused = ctx_of_snapshot ?obs ?sched config prog world mo ss in
  let prefix_cycles = ctx.sc_m.Machine.cycles in
  (match
     run_side_gen ctx.sc_m ~blocked:ctx.sc_blocked ~first:paused
       ~on_os_syscall:(slave_on_os_syscall ctx)
       ~on_stuck:(slave_on_stuck ctx) ()
   with
   | `Done -> ()
   | `Paused _ -> assert false);
  let out = slave_finalize ctx in
  (match obs with
   | None -> ()
   | Some s ->
     Obs.Sink.emit s
       (Obs.Event.Snapshot_restored
          { label;
            prefix_cycles;
            suffix_cycles = ctx.sc_m.Machine.cycles - prefix_cycles }));
  out

(* ------------------------------------------------------------------ *)
(* Final-state comparison (future-work extension: leaks through file    *)
(* contents or metadata that never cross a configured sink syscall).    *)

module Vfs = Ldx_osim.Vfs

let file_map (os : Os.t) : (string * (string * int)) list =
  Hashtbl.fold
    (fun p e acc ->
       match e with
       | Vfs.File { data; mtime } -> (p, (data, mtime)) :: acc
       | Vfs.Dir -> acc)
    os.Os.vfs.Vfs.entries []
  |> List.sort compare

let final_state_reports (mos : Os.t) (sos : Os.t) : sink_report list =
  let mf = file_map mos and sf = file_map sos in
  let report kind path m s =
    { kind; sys = "file"; site = -1; position = path;
      master_args = Option.map (fun v -> [ Sval.S v ]) m;
      slave_args = Option.map (fun v -> [ Sval.S v ]) s }
  in
  let rec walk mf sf acc =
    match (mf, sf) with
    | [], [] -> List.rev acc
    | (p, (d, _)) :: mrest, [] ->
      walk mrest [] (report File_state_differs p (Some d) None :: acc)
    | [], (p, (d, _)) :: srest ->
      walk [] srest (report File_state_differs p None (Some d) :: acc)
    | (pm, (dm, tm)) :: mrest, (ps, (ds, ts)) :: srest ->
      if String.compare pm ps < 0 then
        walk mrest sf (report File_state_differs pm (Some dm) None :: acc)
      else if String.compare pm ps > 0 then
        walk mf srest (report File_state_differs ps None (Some ds) :: acc)
      else if not (String.equal dm ds) then
        walk mrest srest
          (report File_state_differs pm (Some dm) (Some ds) :: acc)
      else if tm <> ts then
        walk mrest srest
          (report File_metadata_differs pm (Some (string_of_int tm))
             (Some (string_of_int ts))
           :: acc)
      else walk mrest srest acc
  in
  walk mf sf []

(* ------------------------------------------------------------------ *)
(* Top level.                                                          *)

(* Dual-execute against an already-recorded master.  [mo] is read-only
   here (the slave keeps private cursors over its frozen log), so the
   same recording can back any number of slave passes — the campaign
   layer's "1 master + K slaves" depends on this, and on [master_pass]
   never reading the slave-only config fields ([sources], [strategy],
   [slave_seed], [record_trace]). *)
(* Fold one slave outcome against its master recording into a [result]
   — the tail of [run_with_master], shared with the incremental path
   (where the same [slave_out] may finalize under several per-task
   configs, each with its own [check_final_state]). *)
let finalize_result ?obs (config : config) (mo : master_out)
    (so : slave_out) : result =
  let state_reports =
    if config.check_final_state then
      with_phase obs Obs.Event.Final_state (fun () ->
          let rs = final_state_reports mo.mmachine.Machine.os so.sos in
          (match obs with
           | None -> ()
           | Some s ->
             List.iter
               (fun r ->
                  Obs.Sink.emit s
                    (Obs.Event.Divergence
                       { case = case_of_kind r.kind;
                         kind = kind_to_string r.kind; sys = r.sys;
                         site = r.site; pos = r.position }))
               rs);
          rs)
    else []
  in
  let mm = mo.mmachine in
  let slave_only_sinks =
    List.length
      (List.filter (fun r -> r.kind = Missing_in_master) so.sreports)
  in
  { trace = so.strace;
    reports = so.sreports @ state_reports;
    leak = so.sreports <> [] || state_reports <> [];
    tainted_sinks = List.length so.sreports;
    (* sinks encountered by either execution (slave-only sinks included) *)
    total_sinks = mo.mtotal_sinks + slave_only_sinks;
    syscall_diffs = so.sdiffs;
    diffs_before_first_report = so.sdiffs_before_first;
    total_syscalls = mo.msummary.syscalls;
    mutated_inputs = so.smutated;
    master = mo.msummary;
    slave = so.ssummary;
    wall_cycles = max mo.msummary.cycles so.ssummary.cycles;
    dyn_cnt_avg = Machine.dyn_cnt_avg mm;
    dyn_cnt_max = mm.Machine.cnt_max;
    max_seg_depth = mm.Machine.max_seg_depth;
    master_schedule = mo.msched }

let run_with_master ?obs ?prof (config : config) (prog : Ir.program)
    (world : World.t) (mo : master_out) : result =
  let so =
    with_phase obs Obs.Event.Slave_run (fun () ->
        slave_pass ?obs ?prof config prog world mo)
  in
  finalize_result ?obs config mo so

(* Dual profile: one per side, so master-vs-slave overhead is
   decomposable.  Cross-run aggregation works too — pass the same pair
   to several runs of the same program and the counters accumulate. *)
type profiles = { prof_master : Profile.t; prof_slave : Profile.t }

let fresh_profiles () =
  { prof_master = Profile.create (); prof_slave = Profile.create () }

let run ?(config = default_config) ?obs ?prof (prog : Ir.program)
    (world : World.t) : result =
  let pm = Option.map (fun p -> p.prof_master) prof in
  let ps = Option.map (fun p -> p.prof_slave) prof in
  let mo =
    with_phase obs Obs.Event.Master_run (fun () ->
        master_pass ?obs ?prof:pm config prog world)
  in
  run_with_master ?obs ?prof:ps config prog world mo

(* Parse, check, lower, instrument, dual-execute. *)
let run_source ?config ?instrument_config ?obs ?prof (src : string)
    (world : World.t) : result =
  let ast =
    with_phase obs Obs.Event.Parse (fun () -> Ldx_lang.Parser.parse_exn src)
  in
  let prog =
    with_phase obs Obs.Event.Lower (fun () ->
        Ldx_cfg.Lower.lower_program ast)
  in
  let prog, _ =
    with_phase obs Obs.Event.Instrument (fun () ->
        Ldx_instrument.Counter.instrument ?config:instrument_config prog)
  in
  run ?config ?obs ?prof prog world

(* Native (uninstrumented, single-execution) cycles for overhead
   computations (Fig. 6 baseline). *)
let native_cycles ?(seed = 0) ?(max_steps = 30_000_000) (src : string)
    (world : World.t) : int =
  let prog = Ldx_cfg.Lower.lower_source src in
  let o = Driver.run ~seed ~max_steps prog world in
  o.Driver.cycles
