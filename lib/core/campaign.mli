(** Campaign layer: one recorded master pass, N independent slave
    passes.

    [Engine.master_pass] never reads the slave-only configuration
    fields ([sources], [strategy], [slave_seed], [record_trace]), and a
    recorded {!Engine.master_out} is immutable — slave passes read it
    through private cursors.  A campaign exploits both facts: it pays
    {e one} master pass and fans K slave passes out, sequentially or
    across an OCaml 5 domain pool with a bounded work queue.

    Every slave pass builds its own machine and simulated OS from
    immutable inputs and the VM scheduler is deterministically seeded,
    so a parallel campaign is byte-identical to a sequential one (a
    property-suite invariant).

    This is the substrate for per-source attribution
    ({!Attribute.per_source}), mutation-strategy sweeps
    ([ldx_run --sweep-strategies]) and slave-seed sweeps. *)

(** Slave-side parameters only, by construction: anything expressible
    as a [slave_params] is sound to run against a shared master
    recording. *)
type slave_params = {
  label : string;                        (** for rendering/reporting *)
  sources : Engine.source_spec list;
  strategy : Mutation.strategy;
  slave_seed : int;
  record_trace : bool;
  check_final_state : bool;
  sched : Engine.Sched.spec option;
      (** slave scheduler spec; [None] = legacy from [slave_seed] *)
}

(** The slave-side projection of a config. *)
val params_of_config : ?label:string -> Engine.config -> slave_params

(** Overlay a task's slave-side parameters on a base config. *)
val apply : Engine.config -> slave_params -> Engine.config

(** One task per entry of [config.sources], each isolating that source
    (the attribution loop of Sec. 3). *)
val of_sources : Engine.config -> slave_params list

(** One task per named mutation strategy (the Sec. 8.3 study);
    [Mutation.all_strategies] is a ready-made argument. *)
val of_strategies :
  Engine.config -> (string * Mutation.strategy) list -> slave_params list

(** One task per slave scheduler seed (concurrency sweeps, Table 4). *)
val of_seeds : Engine.config -> int list -> slave_params list

(** One task per labelled scheduler spec (schedule sweeps: how does the
    verdict vary with the slave's interleaving?). *)
val of_scheds :
  Engine.config -> (string * Engine.Sched.spec) list -> slave_params list

(** A task's fate.  A raising slave pass is recorded as [Crashed] — one
    bad task never takes down the fleet or loses sibling results.
    [Fuel_exhausted] carries the (partial) result of a run whose master
    or slave trapped on the step budget: the numbers are real, the
    leak verdict is not trustworthy. *)
type status =
  | Ok of Engine.result
  | Crashed of { exn : string; backtrace : string }
  | Fuel_exhausted of Engine.result

type outcome = {
  params : slave_params;
  status : status;
}

(** ["ok"], ["crashed"] or ["fuel-exhausted"] — the [Task_done] event
    vocabulary. *)
val status_class : status -> string

(** The result, if the task produced one ([Ok] or [Fuel_exhausted]). *)
val result_of : status -> Engine.result option

(** The result of a completed task.
    @raise Invalid_argument on [Crashed] outcomes. *)
val result_exn : outcome -> Engine.result

(** Bounded retries for crashed/fuel-exhausted tasks: attempt [k]
    (1-based) re-runs with [slave_seed + k * seed_jitter], so transient
    (schedule-dependent) failures clear under a perturbed schedule while
    deterministic ones reproduce. *)
type retry_policy = {
  max_retries : int;   (** 0 = fail fast (the default) *)
  seed_jitter : int;
}

val no_retries : retry_policy

(** How a task turns a config into a result; defaults to
    {!Engine.run_with_master}.  Overridable for fault-tolerance tests
    (inject a raising runner) and custom replay pipelines. *)
type runner =
  Engine.config -> Ldx_cfg.Ir.program -> Ldx_osim.World.t ->
  Engine.master_out -> Engine.result

(** [run ~jobs ?mode ?obs ?retry ?runner ~config prog world params]
    records one master pass under [config]'s master-side fields, then
    runs one slave pass per task under per-task exception containment.
    Parallel execution fans tasks out over [min jobs (length params)]
    domains claiming chunked ranges off a shared atomic cursor, every
    domain always joined ([Fun.protect]) even on unexpected worker
    death.  Outcomes are returned in task order either way, with
    identical statuses (a property-suite invariant).

    [?mode] selects the execution path.  The default [`Auto] goes
    parallel only when [jobs > 1], there is more than one task, the
    host reports more than one recommended domain, {e and} the master
    pass ran at least ~20k steps (shorter slave passes lose more to
    domain spawn/join than they gain — the measured 0.70x "speedup" of
    small parallel campaigns); otherwise it runs sequentially in the
    calling domain.  [`Sequential] and [`Parallel] force their path
    (subject to [jobs]/task count).  The decision is emitted as a
    [Campaign_plan] event and lands in the [campaign.mode.<mode>]
    metrics counter.

    [?obs] observes the master pass (bracketed in [Master_run] phase
    events) and, in the sequential case, every slave pass too; the
    parallel path does not thread the sink through slave passes because
    a sink is not required to be domain-safe.  Task fates are emitted
    as [Task_done] events from the calling domain after collection. *)
val run :
  ?jobs:int -> ?mode:[ `Auto | `Sequential | `Parallel ] ->
  ?obs:Ldx_obs.Sink.t -> ?retry:retry_policy -> ?runner:runner ->
  config:Engine.config ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> slave_params list ->
  outcome list

(** Fixed-width summary table of a campaign's outcomes, including each
    task's status and per-side failure classes
    ({!Engine.failure_class}). *)
val render : outcome list -> string
