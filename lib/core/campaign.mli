(** Campaign layer: one recorded master pass, N independent slave
    passes — durable, deadline-bounded, retried and quarantined.

    [Engine.master_pass] never reads the slave-only configuration
    fields ([sources], [strategy], [slave_seed], [record_trace]), and a
    recorded {!Engine.master_out} is immutable — slave passes read it
    through private cursors.  A campaign exploits both facts: it pays
    {e one} master pass and fans K slave passes out, sequentially or
    across an OCaml 5 domain pool with a bounded work queue.

    Every slave pass builds its own machine and simulated OS from
    immutable inputs and the VM scheduler is deterministically seeded,
    so a parallel campaign is byte-identical to a sequential one (a
    property-suite invariant).

    On top of the fan-out sit the durability controls of long-running
    campaigns ({!run}'s [?journal], {!resume}, [?deadline], the
    generalized {!retry_policy}): a campaign interrupted at {e any}
    point — even mid-[write(2)] — resumes from its journal re-running
    only the tasks whose outcomes were never durably recorded, and
    renders byte-identically to an uninterrupted run.

    This is the substrate for per-source attribution
    ({!Attribute.per_source}), mutation-strategy sweeps
    ([ldx_run --sweep-strategies]), slave-seed sweeps, and the
    ROADMAP's archive-backed campaign service. *)

(** Slave-side parameters only, by construction: anything expressible
    as a [slave_params] is sound to run against a shared master
    recording. *)
type slave_params = {
  label : string;                        (** for rendering/reporting *)
  sources : Engine.source_spec list;
  strategy : Mutation.strategy;
  slave_seed : int;
  record_trace : bool;
  check_final_state : bool;
  sched : Engine.Sched.spec option;
      (** slave scheduler spec; [None] = legacy from [slave_seed] *)
}

(** The slave-side projection of a config. *)
val params_of_config : ?label:string -> Engine.config -> slave_params

(** Overlay a task's slave-side parameters on a base config. *)
val apply : Engine.config -> slave_params -> Engine.config

(** One task per entry of [config.sources], each isolating that source
    (the attribution loop of Sec. 3). *)
val of_sources : Engine.config -> slave_params list

(** One task per named mutation strategy (the Sec. 8.3 study);
    [Mutation.all_strategies] is a ready-made argument. *)
val of_strategies :
  Engine.config -> (string * Mutation.strategy) list -> slave_params list

(** One task per slave scheduler seed (concurrency sweeps, Table 4). *)
val of_seeds : Engine.config -> int list -> slave_params list

(** One task per labelled scheduler spec (schedule sweeps: how does the
    verdict vary with the slave's interleaving?). *)
val of_scheds :
  Engine.config -> (string * Engine.Sched.spec) list -> slave_params list

(** A task's fate.  A raising slave pass is recorded as [Crashed] — one
    bad task never takes down the fleet or loses sibling results.
    [Fuel_exhausted] carries the (partial) result of a run whose master
    or slave trapped on the step budget: the numbers are real, the leak
    verdict is not trustworthy.  [Timed_out] is the same fuel trap
    fired by a {e task deadline} ([?deadline] below) tighter than the
    configured budget — a runaway task was cut off, deterministically,
    with no wall-clock involved.  [Quarantined] parks a task that
    crashed on its first run {e and} on every retry: the failure is
    deterministic, re-running it is waste, and the fleet moves on. *)
type status =
  | Ok of Engine.result
  | Crashed of { exn : string; backtrace : string }
  | Fuel_exhausted of Engine.result
  | Timed_out of Engine.result
  | Quarantined of { exn : string; backtrace : string }

type outcome = {
  params : slave_params;
  status : status;
  attempts : int;  (** runs performed: 1 = first try, n > 1 = retried *)
}

(** ["ok"], ["crashed"], ["fuel-exhausted"], ["timed-out"] or
    ["quarantined"] — the [Task_done] event vocabulary. *)
val status_class : status -> string

(** The result, if the task produced one ([Ok], [Fuel_exhausted] or
    [Timed_out]). *)
val result_of : status -> Engine.result option

(** The result of a completed task.
    @raise Invalid_argument on [Crashed]/[Quarantined] outcomes. *)
val result_exn : outcome -> Engine.result

(** Bounded retries for crashed, fuel-exhausted and timed-out tasks.
    Attempt [k] (1-based) re-runs with
    [slave_seed + seed_jitter * stride k], where [stride k] is [k]
    when [backoff <= 1] (the legacy linear jitter) and
    [backoff^(k-1)] otherwise — exponential backoff in {e seed space},
    the derandomized analogue of backoff in time: transient
    (schedule-dependent) failures clear under an increasingly perturbed
    schedule while deterministic ones reproduce.

    [fuel_budget] caps the {e cumulative} VM steps a task may spend
    across all its attempts (slave steps for completed runs; the
    per-attempt step cap, conservatively, for crashed ones).  Once
    spent, no further retries are attempted — a pathological task
    cannot multiply its cost unbounded through the retry loop.

    [quarantine] parks a task whose every attempt crashed (at least
    one retry was performed, so the crash reproduced under a perturbed
    seed) as [Quarantined] instead of [Crashed] — surfaced in
    {!render}, the [campaign.quarantined] metrics counter and a
    [Quarantine] event. *)
type retry_policy = {
  max_retries : int;   (** 0 = fail fast (the default) *)
  seed_jitter : int;
  backoff : int;       (** jitter growth base; [<= 1] = linear (legacy) *)
  fuel_budget : int option;
      (** cumulative per-task step cap across attempts; [None] = off *)
  quarantine : bool;   (** park deterministic crashers *)
}

val no_retries : retry_policy

(** How a task turns a config into a result; defaults to
    {!Engine.run_with_master}.  Overridable for fault-tolerance tests
    (inject a raising runner) and custom replay pipelines.  [?obs] is
    the task-private sink the parallel path threads through
    (see {!run}); custom runners may ignore it. *)
type runner =
  ?obs:Ldx_obs.Sink.t ->
  Engine.config -> Ldx_cfg.Ir.program -> Ldx_osim.World.t ->
  Engine.master_out -> Engine.result

(** [run ~jobs ?mode ?obs ?retry ?deadline ?runner ?journal ~config
    prog world params] records one master pass under [config]'s
    master-side fields, then runs one slave pass per task under
    per-task exception containment.  Parallel execution fans tasks out
    over a domain pool claiming chunked ranges off a shared atomic
    cursor, every domain always joined ([Fun.protect]) even on
    unexpected worker death.  Outcomes are returned in task order
    either way, with identical statuses (a property-suite invariant).

    [?mode] selects the execution path.  The default [`Auto] goes
    parallel only when [jobs > 1], there is more than one task, the
    host reports more than one recommended domain, {e and} the master
    pass ran at least ~20k steps (shorter slave passes lose more to
    domain spawn/join than they gain — the measured 0.70x "speedup" of
    small parallel campaigns); otherwise it runs sequentially in the
    calling domain.  [`Sequential] and [`Parallel] force their path
    (subject to [jobs]/task count).  The decision is emitted as a
    [Campaign_plan] event and lands in the [campaign.mode.<mode>]
    metrics counter.

    [?deadline] bounds each {e task} (not the campaign) to that many
    VM steps per slave pass, re-using the engine's in-quantum fuel
    check — no wall clocks, so a deadline is bit-deterministic.  A
    task cut off by a deadline tighter than [config.max_steps] is
    [Timed_out].

    [?journal] opens a durable journal at that path: the campaign
    manifest (configuration fingerprint, program/world hashes, task
    list) is checkpointed via atomic rename before any task runs, and
    each task's outcome is appended — checksummed and flushed — as the
    collecting domain receives it.  A campaign killed at any point
    resumes via {!resume}.

    [?obs] observes the master pass (bracketed in [Master_run] phase
    events) and every slave pass: sequentially by direct threading; in
    parallel, each task gets a {e private buffered sink} and the
    collecting domain drains the buffers in task order after the
    joins, so the sink needs no domain safety and still sees every
    slave-pass event.  Task fates are emitted as [Task_done] (and
    [Quarantine]) events from the collecting domain, per task, in
    task order.

    [?stop] is the graceful-drain hook: it is polled between tasks (in
    every execution path — it must be domain-safe, e.g. read a flag a
    signal handler sets) and once it returns [true] no further task is
    {e started}; in-flight tasks finish and are journaled.  Outcomes of
    tasks a drain never ran come back as [Crashed] with exn
    ["drained (not run)"] and [attempts = 0], and emit no [Task_done] —
    with [?journal] the drained campaign is exactly a killed campaign
    with a healthy tail, so {!resume} picks it up.

    [?sync] (default off) makes the journal [fsync] on checkpoint and
    every append — power-loss durability at one disk round-trip per
    task (overhead measured in bench, "durable" entry).

    [?incremental] (default off) executes the shared slave prefix ONCE
    — pausing at the first syscall any task's source spec base-matches
    and capturing a decouple-point snapshot ({!Engine.slave_prefix}) —
    then replays only each task's suffix from the snapshot
    ({!Engine.slave_resume}).  Outcomes, and therefore {!render}ed
    tables, are byte-identical to the full path at any [jobs] (pinned
    by the test suite); only wall-clock time and the event stream
    (which gains [Snapshot_captured]/[Snapshot_restored] and loses
    per-task prefix events) change.  The mode silently falls back to
    full passes when it cannot be sound or cannot win: a custom
    [?runner], a [?deadline], tasks that disagree on a prefix-relevant
    slave field ([slave_seed], [sched], [record_trace]), retry attempts
    (jittered seeds change the snapshot fingerprint), or a prefix that
    fails to reach a decouple point. *)
val run :
  ?jobs:int -> ?mode:[ `Auto | `Sequential | `Parallel ] ->
  ?obs:Ldx_obs.Sink.t -> ?retry:retry_policy -> ?deadline:int ->
  ?runner:runner -> ?journal:string ->
  ?stop:(unit -> bool) -> ?sync:bool -> ?incremental:bool ->
  config:Engine.config ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> slave_params list ->
  outcome list

(** [resume ~journal ...] continues a campaign from a {!run}-written
    journal: it validates that the journal's configuration fingerprint
    matches the given config/program/world/tasks (and retry/deadline
    controls), drops any torn tail, replays the journaled outcomes
    {e verbatim}, and runs only the missing tasks (skipping even the
    master pass when nothing is missing).  The journal is re-
    checkpointed (atomic rename) so the torn tail is healed on disk,
    then newly-run outcomes are appended write-through as in {!run}.

    Killed-at-any-point + resume renders byte-identically to an
    uninterrupted run (pinned by the property suite at [jobs] 1
    and 4).

    [Error] when the journal is unreadable, corrupt in its manifest
    section, or fingerprint-mismatched (the journaled outcomes were
    recorded under a different configuration and replaying them would
    be unsound).

    [?incremental] behaves as in {!run} and applies only to the
    missing tasks; it is deliberately NOT part of the campaign
    fingerprint — a journal written by a full campaign resumes
    incrementally (and vice versa) to a byte-identical table. *)
val resume :
  ?jobs:int -> ?mode:[ `Auto | `Sequential | `Parallel ] ->
  ?obs:Ldx_obs.Sink.t -> ?retry:retry_policy -> ?deadline:int ->
  ?runner:runner -> journal:string ->
  ?stop:(unit -> bool) -> ?sync:bool -> ?incremental:bool ->
  config:Engine.config ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> slave_params list ->
  (outcome list, string) result

(** The configuration fingerprint {!run} stores and {!resume} checks:
    a digest over the program, the world, the master-side config
    fields, every task's slave parameters, and the retry/deadline
    controls.  Exposed for tools that want to check resumability
    without loading the engine. *)
val fingerprint :
  ?retry:retry_policy -> ?deadline:int ->
  config:Engine.config ->
  Ldx_cfg.Ir.program -> Ldx_osim.World.t -> slave_params list -> string

(** Encode a task's fate as the single-line journal payload {!run}'s
    [?journal] writes and the service workers exchange — the inverse of
    {!decode_outcome}.  Payloads are [Marshal]ed [Engine.result]s in
    hex, so they are only meaningful under the {!fingerprint} that
    guarded them. *)
val encode_outcome : status -> int -> string

val decode_outcome : string -> (status * int) option

(** {1 The cross-process campaign service}

    The same campaign run by N {e processes} instead of N domains: the
    journal (a v2 store file) doubles as a lease-based work queue
    ([Ldx_queue.Queue]), each worker process claims tasks, heartbeats,
    executes through the exact {!run} task runner (containment, retry,
    deadline and quarantine all apply per attempt), and appends
    outcomes.  Every worker records its own master pass — the recording
    is deterministic, so all copies are byte-identical and any worker
    can run any task.  Outcome payloads and first-wins dedup make the
    collected table byte-identical to a single-process [--jobs 1] run,
    which the test suite pins under SIGKILL at arbitrary points.

    [ldx_worker] wraps {!Service.worker} in a binary; [ldx_campaignd]
    supervises a fleet of them (spawn, missed-heartbeat detection,
    respawn with backoff, {!Service.escalate}, then
    {!Service.collect} + {!render}). *)
module Service : sig
  (** [init ~path ~config prog world params] checkpoints a fresh v2
      journal (manifest only, no outcomes).  Idempotent restart: if
      [path] already holds a journal with the {e same} fingerprint, its
      entries are kept (outcomes and leases) and its torn records are
      healed on disk — restarting the supervisor resumes the campaign;
      a fingerprint mismatch re-initializes from scratch. *)
  val init :
    ?sync:bool -> ?retry:retry_policy -> ?deadline:int -> path:string ->
    config:Engine.config ->
    Ldx_cfg.Ir.program -> Ldx_osim.World.t -> slave_params list -> unit

  (** One worker process's whole life: validate the journal fingerprint
      against the spec this worker was launched with, then claim /
      heartbeat / execute / journal until the queue drains
      ([`Complete]) or [stop] turns true ([`Drained] — the in-flight
      task finishes first; see [Ldx_queue.Queue.Worker.run] for
      [ttl_us]/[heartbeat_us]/[poll_us]).  [?master] shares a
      pre-recorded master pass (in-process callers: bench, tests);
      without it the worker records its own, lazily, so joining a
      drained queue costs nothing. *)
  val worker :
    ?obs:Ldx_obs.Sink.t -> ?stop:(unit -> bool) -> ?sync:bool ->
    ?retry:retry_policy -> ?deadline:int -> ?runner:runner ->
    ?master:Engine.master_out ->
    path:string -> owner:string -> ttl_us:int -> heartbeat_us:int ->
    poll_us:int ->
    config:Engine.config ->
    Ldx_cfg.Ir.program -> Ldx_osim.World.t -> slave_params list ->
    ([ `Complete | `Drained ], string) result

  (** [escalate ~path ~kills ()] parks every unfinished task whose
      lease has expired under [kills] or more {e distinct} owners as a
      cross-process [Quarantined] outcome ("this task keeps killing
      workers") and returns how many were parked.  Run by the
      supervisor after it buries a worker. *)
  val escalate : ?sync:bool -> path:string -> kills:int -> unit ->
    (int, string) result

  (** Decode a {e complete} service campaign back into outcomes, in
      task order — feed to {!render}.  [Error] if any task is
      unfinished or fails to decode. *)
  val collect :
    path:string -> slave_params list -> (outcome list, string) result
end

(** Fixed-width summary table of a campaign's outcomes, including each
    task's final status, attempt count and per-side failure classes
    ({!Engine.failure_class}). *)
val render : outcome list -> string
