(** The LDX dual-execution engine (Sec. 3-7 of the paper).

    The master executes against the (simulated) OS and publishes every
    syscall outcome tagged with its {!Align.t} position.  The slave
    consumes outcomes by position: an outcome at the slave's exact
    position with the same PC and parameters is coupled (the result is
    copied, mutated when the syscall is a configured source); the paper's
    three divergence cases — syscall missing in one execution, same
    counter but different PC, aligned but different parameters — fall
    out of the position order, are tolerated, and are reported at sinks.

    Master and slave are composed sequentially with virtual two-CPU
    timing (outcomes carry the producing clock; the slave's clock
    fast-forwards on copies) — DESIGN.md argues observation-equivalence
    with the paper's spin-loop coupling. *)

module Machine = Ldx_vm.Machine
module Sched = Ldx_sched.Scheduler
module Schedule = Ldx_sched.Schedule
module Os = Ldx_osim.Os
module Sval = Ldx_osim.Sval
module World = Ldx_osim.World
module Ir = Ldx_cfg.Ir

(** {1 Configuration} *)

(** Which dynamic syscalls are mutated sources.  All present fields must
    match; [src_nth] selects the n-th dynamic match (1-based). *)
type source_spec = {
  src_sys : string option;    (** syscall name, e.g. ["recv"] *)
  src_site : int option;      (** static site id *)
  src_arg : string option;    (** substring of arg0 or touched resource *)
  src_nth : int option;
}

val source :
  ?sys:string -> ?site:int -> ?arg:string -> ?nth:int -> unit -> source_spec

type sink_config =
  | Output_syscalls           (** write/send/print/malloc/retaddr *)
  | Network_outputs           (** send only *)
  | File_outputs              (** write/print *)
  | Attack_sinks              (** retaddr + malloc sizes (Sec. 8 attacks) *)
  | Custom_sinks of (string -> int -> Sval.t list -> bool)

type config = {
  sources : source_spec list;
  sinks : sink_config;
  strategy : Mutation.strategy;
  master_seed : int;          (** scheduler seed of the master *)
  slave_seed : int;
  max_steps : int;            (** per-execution fuel *)
  record_trace : bool;        (** keep the per-syscall alignment log *)
  check_final_state : bool;
      (** future-work extension: after the run, diff the two
          filesystems (contents and mtimes) and report divergent files
          — leaks through file state/metadata that never cross a
          configured sink syscall *)
  faults : Ldx_osim.Fault.t option;
      (** environment fault plan, shared by both sides (a master-side
          field like [sinks]): each OS instantiates the same immutable
          plan with fresh occurrence counters, so a decoupled slave
          replays faults identically while coupled slaves copy faulted
          results — DESIGN.md "Fault model" *)
  master_sched : Sched.spec option;
      (** scheduler spec of the master pass; [None] = the legacy
          round-robin seeded with [master_seed].  Specs are immutable
          ({!Ldx_sched.Scheduler}): each pass instantiates its own
          state *)
  slave_sched : Sched.spec option;
      (** scheduler spec of slave passes; [None] = legacy from
          [slave_seed].  A slave-side field: campaign tasks may
          override it per task *)
  record_sched : bool;
      (** record both sides' scheduling decision logs; the master's is
          exposed as [master_out.msched] / [result.master_schedule]
          (the input of schedule replay and bounded exploration) *)
}

(** recv sources, output sinks, off-by-one, seeds 0, tracing off,
    no faults, legacy schedulers. *)
val default_config : config

(** The scheduler state one side instantiates: the given spec, or the
    legacy round-robin from [seed] when [None]. *)
val sched_state_of : record:bool -> Sched.spec option -> seed:int -> Sched.state

(** The sink predicate of a configuration (sys, site, args). *)
val sink_pred : sink_config -> string -> int -> Sval.t list -> bool

(** {1 Reports} *)

type divergence_kind =
  | Args_differ          (** aligned sink, different parameters (case 3) *)
  | Different_syscall    (** aligned counter, different PC (case 2) *)
  | Missing_in_slave     (** master-only sink (case 1) *)
  | Missing_in_master    (** slave-only sink *)
  | File_state_differs   (** final-state check: contents diverged *)
  | File_metadata_differs(** final-state check: same data, mtimes off *)

val kind_to_string : divergence_kind -> string

(** The paper's divergence-case number of a report kind: 1 for
    missing-in-either-execution, 2 for different-syscall, 3 for
    args-differ; 0 for the final-state extension kinds.  This is the
    [case] carried by [Ldx_obs.Event.Divergence] events, so a recording
    sink's [divergence.caseN] counters tally the run's reports. *)
val case_of_kind : divergence_kind -> int

type sink_report = {
  kind : divergence_kind;
  sys : string;
  site : int;
  position : string;
  master_args : Sval.t list option;
  slave_args : Sval.t list option;
}

val report_to_string : sink_report -> string

type exec_summary = {
  cycles : int;
  steps : int;
  syscalls : int;
  stdout : string;
  trap : string option;
  exit_code : int option;
  faults_injected : int;   (** environment faults fired in this side *)
}

(** Structured failure taxonomy over [exec_summary.trap] — the variant
    form of {!Ldx_obs.Event.trap_class} (the single string-level source
    of truth shared with the metrics counters). *)
type failure_class = Healthy | Fuel | Deadlock | Os_failure | Vm_trap

val classify_trap : string option -> failure_class
val failure_class_to_string : failure_class -> string

(** One alignment decision of the slave-side wrapper (in slave order);
    recorded only under [config.record_trace]. *)
type trace_action =
  | T_copied
  | T_sink_match
  | T_args_differ
  | T_path_diff
  | T_slave_only
  | T_master_only
  | T_decoupled

val trace_action_to_string : trace_action -> string

type trace_entry = {
  t_pos : string;
  t_action : trace_action;
  t_master : (string * Sval.t list) option;
  t_slave : (string * Sval.t list) option;
}

type result = {
  trace : trace_entry list;
  reports : sink_report list;
  leak : bool;                     (** any sink report at all *)
  tainted_sinks : int;             (** = [List.length reports] *)
  total_sinks : int;               (** sinks seen by either execution *)
  syscall_diffs : int;             (** misaligned/decoupled syscalls *)
  diffs_before_first_report : int; (** Table 2's "before the sink diff" *)
  total_syscalls : int;            (** master's dynamic syscalls *)
  mutated_inputs : int;            (** sources whose mutation changed a value *)
  master : exec_summary;
  slave : exec_summary;
  wall_cycles : int;               (** max of the two clocks (two CPUs) *)
  dyn_cnt_avg : float;             (** Table 1 dynamic counter stats *)
  dyn_cnt_max : int;
  max_seg_depth : int;             (** deepest counter stack observed *)
  master_schedule : Ldx_sched.Schedule.t option;
      (** the master's recorded schedule, under [config.record_sched] *)
}

(** {1 Passes}

    Exposed so baselines ({!Tightlip}), the campaign layer
    ({!Campaign}) and tools can replay the master's outcome log; most
    callers only need {!run}. *)

type record = {
  rpos : Align.t;
  rsite : int;
  rsys : string;
  rargs : Sval.t list;
  rresult : Sval.t;
  rcyc : int;
  rsink : bool;
}

(** The master's outcome log, frozen after the pass.  [mlog] holds one
    record array per thread, sorted by spawn index; consumers keep
    their own cursors, so a recording is immutable and replayable from
    any number of slave passes — including concurrently from several
    domains ({!Campaign}). *)
type master_out = {
  mlog : (int * record array) array;  (** per spawn_index, ascending *)
  mlock_trace : (string * int) list;  (** chronological grants *)
  msummary : exec_summary;
  mtotal_sinks : int;
  mmachine : Machine.t;
  msched : Schedule.t option;         (** under [config.record_sched] *)
}

(** The master's records for one spawn index ([| |] if it never made a
    syscall). *)
val records_for : master_out -> int -> record array

(** [source_matcher config] is a stateful predicate over one execution's
    dynamic syscall stream: does this event match a configured source?
    [src_nth] occurrence counters are kept per spec {e index} in
    [config.sources], so structurally equal specs count independently
    and distinct specs can never collide. *)
val source_matcher :
  config ->
  sys:string -> site:int -> args:Sval.t list -> resources:string list -> bool

(** Drive one execution to completion, servicing thread ops internally
    and non-thread syscalls through [on_os_syscall]; [on_stuck] is asked
    once when every thread is blocked (return [true] after unblocking
    something, e.g. by tainting a gated lock). *)
val run_side :
  Machine.t ->
  on_os_syscall:(Machine.thread -> Machine.pending -> Ldx_vm.Value.t) ->
  on_stuck:(Machine.thread list -> bool) ->
  unit

(** Run the master: execute everything for real, record outcomes.
    [?obs] installs the observability hooks on the master machine and
    its OS and emits a run summary (see {!run}); [?prof] attaches a
    cost-attribution profile to the master machine (see {!profiles}). *)
val master_pass :
  ?obs:Ldx_obs.Sink.t -> ?prof:Ldx_vm.Profile.t -> config -> Ir.program ->
  World.t -> master_out

(** {1 Decouple-point snapshots}

    The incremental dual-execution path: run the shared slave prefix
    ONCE, pause at the first syscall any fan-out task's source spec
    base-matches — before it is serviced or mutated, and before any
    [src_nth] occurrence counter advances — capture the complete slave
    state, then replay each task's suffix from the capture.  Suffix
    replays are bit-identical to from-scratch slave passes under the
    same config ([test_snapshot.ml] asserts this). *)

(** One slave pass's outcome, before it is folded into a {!result}. *)
type slave_out = {
  sreports : sink_report list;
  sdiffs : int;
  sdiffs_before_first : int;
  smutated : int;
  ssummary : exec_summary;
  strace : trace_entry list;
  sos : Os.t;                 (** the slave's private OS (final state) *)
}

(** Complete slave-side state at a decouple point: the machine/OS/profile
    snapshot ({!Ldx_snap.Snap.t}) plus the engine bookkeeping layered on
    top — unconsumed lock grants, taint sets, master-log cursors,
    divergence accumulators, the paused and blocked threads — and a
    fingerprint pinning the (program, world, shared slave config) it is
    valid against.  Pure data: structurally comparable, marshalable,
    and safely shared read-only across domains (every resume copies). *)
type slave_snapshot = {
  ss_snap : Ldx_snap.Snap.t;
  ss_grants : (string * int list) list;
  ss_tainted_locks : string list;
  ss_tainted_resources : string list;
  ss_cursors : (int * int) list;
  ss_reports : sink_report list;     (** reversed, as accumulated *)
  ss_diffs : int;
  ss_diffs_before_first : int;       (** raw accumulator: -1 if none yet *)
  ss_mutated : int;
  ss_trace : trace_entry list;       (** reversed *)
  ss_blocked : int list;
  ss_paused : int;
  ss_fingerprint : string;
}

(** What a snapshot is valid against — see {!slave_snapshot}.  Per-task
    fields ([sources], [strategy], [check_final_state]) are deliberately
    not pinned. *)
val slave_fingerprint : config -> Ir.program -> World.t -> string

type prefix_out =
  | Prefix_paused of slave_snapshot
      (** the decouple point was reached; resume per task *)
  | Prefix_done of slave_out
      (** no syscall base-matched any spec: the whole run is shared and
          each task finalizes this same outcome *)

(** Run the shared slave prefix under [config] — whose own [sources]
    must be a subset of [specs], the union of every fan-out task's
    sources — and pause at the first base match of any spec.  Emits
    [Snapshot_captured] on pause. *)
val slave_prefix :
  ?obs:Ldx_obs.Sink.t -> ?prof:Ldx_vm.Profile.t -> config ->
  specs:source_spec list -> Ir.program -> World.t -> master_out ->
  prefix_out

(** Resume one task's suffix from a prefix snapshot; emits
    [Snapshot_restored] (tagged [?label]) when the suffix completes.
    The snapshot's profile counters are rebuilt into a private profile,
    so per-resume profiles stay exact.  [?sched] replaces the restored
    machine's scheduler state — the suffix-replay exploration hook
    ({!Sched_sweep.explore_suffix} perturbs only the interleaving after
    the decouple point); omitted, the suffix continues the snapshot's
    recorded schedule exactly.  Raises [Invalid_argument] if the
    snapshot's fingerprint does not match (program, world, shared slave
    config). *)
val slave_resume :
  ?obs:Ldx_obs.Sink.t -> ?sched:Sched.state -> ?label:string -> config ->
  Ir.program -> World.t -> master_out -> slave_snapshot -> slave_out

(** Fold one slave outcome against its master recording into a
    {!result} — the tail of {!run_with_master}, exposed so incremental
    callers can finalize a shared or resumed [slave_out] under each
    per-task config. *)
val finalize_result :
  ?obs:Ldx_obs.Sink.t -> config -> master_out -> slave_out -> result

(** {1 Entry points}

    [?obs] threads an observability sink ({!Ldx_obs.Sink.t}) through
    the run: phase begin/end events, per-syscall events from both VM
    machines, OS dispatches, the slave's per-syscall coupling decisions,
    divergence reports (tagged with the paper's case number), source
    mutations, and per-side run summaries.  With [?obs] omitted the
    engine pays one pointer comparison per emission point and results
    are unchanged — observation never perturbs the experiment
    (asserted by [test_obs.ml]).

    [?prof] attaches deterministic cost-attribution profiles
    ({!Ldx_vm.Profile}): per-opcode / per-CFG-block / per-syscall
    virtual-cycle counters, one profile per side so dual-execution
    overhead is decomposable.  Same zero-perturbation contract as
    [?obs] (asserted by [test_prof.ml]); pass the same pair to several
    runs of one program to aggregate. *)

(** One cost-attribution profile per execution side. *)
type profiles = {
  prof_master : Ldx_vm.Profile.t;
  prof_slave : Ldx_vm.Profile.t;
}

(** A fresh, empty profile pair. *)
val fresh_profiles : unit -> profiles

(** Dual-execute an (instrumented) program. *)
val run :
  ?config:config -> ?obs:Ldx_obs.Sink.t -> ?prof:profiles -> Ir.program ->
  World.t -> result

(** Run one slave pass (plus the optional final-state check) against an
    already-recorded master and assemble the full {!result}.  Sound
    because [master_pass] never reads the slave-only config fields
    ([sources], [strategy], [slave_seed], [record_trace]) and
    [run_with_master] never mutates [mo]: callers may fan out many
    configs — even from concurrent domains — over one recording.
    [config] must agree with the recording's config on the master-side
    fields ([master_seed], [max_steps], [sinks], [faults]).
    [?prof] attaches a profile to the slave machine. *)
val run_with_master :
  ?obs:Ldx_obs.Sink.t -> ?prof:Ldx_vm.Profile.t -> config -> Ir.program ->
  World.t -> master_out -> result

(** Parse, check, lower, instrument, dual-execute. *)
val run_source :
  ?config:config -> ?instrument_config:Ldx_instrument.Counter.config ->
  ?obs:Ldx_obs.Sink.t -> ?prof:profiles -> string -> World.t -> result

(** Uninstrumented single-execution cycles — the Fig. 6 baseline. *)
val native_cycles :
  ?seed:int -> ?max_steps:int -> string -> World.t -> int
